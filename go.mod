module hybridstore

go 1.24
