#!/usr/bin/env bash
# Server smoke: build hsqld + hsql, start the daemon against a temp data
# directory, drive it through the remote-mode shell, kill -9 the daemon,
# restart it on the same data directory, and verify every acknowledged
# write survived. Exercises the full stack: wire protocol, sessions,
# WAL durability and crash recovery.
set -euo pipefail

work="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

data="$work/data"
port="${SMOKE_PORT:-17878}"
http_port="${SMOKE_HTTP_PORT:-17978}"

go build -o "$work/hsqld" ./cmd/hsqld
go build -o "$work/hsql" ./cmd/hsql

wait_ready() {
  local p="$1"
  for _ in $(seq 1 100); do
    if printf '%s\n' '\ping' | "$work/hsql" -connect "127.0.0.1:$p" 2>/dev/null | grep -q pong; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: hsqld exited during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "FAIL: hsqld never became ready on port $p" >&2
  return 1
}

echo "== start hsqld (durable, with debug HTTP) =="
"$work/hsqld" -listen "127.0.0.1:$port" -data "$data" -http "127.0.0.1:$http_port" &
pid=$!
wait_ready "$port"

echo "== remote hsql: DDL + DML =="
"$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
CREATE TABLE kv (k BIGINT NOT NULL, v VARCHAR, PRIMARY KEY (k));
INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three');
UPDATE kv SET v = 'THREE' WHERE k = 3;
DELETE FROM kv WHERE k = 1;
INSERT INTO kv VALUES (4, 'four');
SELECT COUNT(*) FROM kv;
EOF

echo "== EXPLAIN ANALYZE over the wire =="
ea="$("$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
EXPLAIN ANALYZE SELECT v FROM kv WHERE k >= 2;
EOF
)"
echo "$ea"
echo "$ea" | grep -q '^scan'  || { echo "FAIL: EXPLAIN ANALYZE missing scan stage" >&2; exit 1; }
echo "$ea" | grep -q '^total' || { echo "FAIL: EXPLAIN ANALYZE missing total row" >&2; exit 1; }

echo "== /metrics: valid Prometheus exposition =="
metrics="$(curl -sf "http://127.0.0.1:$http_port/metrics")"
echo "$metrics" | head -n 20
# Loaded-daemon signals must be present.
for want in hs_wal_fsync_seconds_bucket hs_engine_read_seconds_bucket hs_pool_slots hs_server_statements_total; do
  echo "$metrics" | grep -q "^$want" || { echo "FAIL: /metrics missing $want" >&2; exit 1; }
done
# Every non-comment line must match the exposition text format:
# name{optional labels} value
bad="$(echo "$metrics" | grep -v '^#' | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$' || true)"
if [ -n "$bad" ]; then
  echo "FAIL: malformed Prometheus exposition lines:" >&2
  echo "$bad" >&2
  exit 1
fi

echo "== /status: JSON snapshot =="
status="$(curl -sf "http://127.0.0.1:$http_port/status")"
echo "$status"
echo "$status" | grep -q '"kv"'         || { echo "FAIL: /status missing table kv" >&2; exit 1; }
echo "$status" | grep -q '"slots"'      || { echo "FAIL: /status missing pool stats" >&2; exit 1; }
echo "$status" | python3 -c 'import json,sys; json.load(sys.stdin)' 2>/dev/null \
  || { echo "FAIL: /status is not valid JSON" >&2; exit 1; }

echo "== kill -9 =="
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart on the same data dir =="
port=$((port + 1))
"$work/hsqld" -listen "127.0.0.1:$port" -data "$data" &
pid=$!
wait_ready "$port"

echo "== verify recovery =="
out="$("$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
SELECT COUNT(*) FROM kv;
SELECT v FROM kv ORDER BY k;
EOF
)"
echo "$out"
echo "$out" | grep -q '^3$'     || { echo "FAIL: expected 3 rows after recovery" >&2; exit 1; }
echo "$out" | grep -q '^THREE$' || { echo "FAIL: acknowledged UPDATE lost" >&2; exit 1; }
echo "$out" | grep -q '^four$'  || { echo "FAIL: acknowledged INSERT lost" >&2; exit 1; }
if echo "$out" | grep -q '^one$'; then
  echo "FAIL: deleted row resurrected" >&2
  exit 1
fi

echo "== graceful drain =="
kill -TERM "$pid"
wait "$pid"
pid=""

echo "server smoke: OK"
