#!/usr/bin/env bash
# Server smoke: build hsqld + hsql, start the daemon against a temp data
# directory, drive it through the remote-mode shell, kill -9 the daemon,
# restart it on the same data directory, and verify every acknowledged
# write survived. Exercises the full stack: wire protocol, sessions,
# WAL durability and crash recovery.
set -euo pipefail

work="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

data="$work/data"
port="${SMOKE_PORT:-17878}"

go build -o "$work/hsqld" ./cmd/hsqld
go build -o "$work/hsql" ./cmd/hsql

wait_ready() {
  local p="$1"
  for _ in $(seq 1 100); do
    if printf '%s\n' '\ping' | "$work/hsql" -connect "127.0.0.1:$p" 2>/dev/null | grep -q pong; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: hsqld exited during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "FAIL: hsqld never became ready on port $p" >&2
  return 1
}

echo "== start hsqld (durable) =="
"$work/hsqld" -listen "127.0.0.1:$port" -data "$data" &
pid=$!
wait_ready "$port"

echo "== remote hsql: DDL + DML =="
"$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
CREATE TABLE kv (k BIGINT NOT NULL, v VARCHAR, PRIMARY KEY (k));
INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three');
UPDATE kv SET v = 'THREE' WHERE k = 3;
DELETE FROM kv WHERE k = 1;
INSERT INTO kv VALUES (4, 'four');
EOF

echo "== kill -9 =="
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart on the same data dir =="
port=$((port + 1))
"$work/hsqld" -listen "127.0.0.1:$port" -data "$data" &
pid=$!
wait_ready "$port"

echo "== verify recovery =="
out="$("$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
SELECT COUNT(*) FROM kv;
SELECT v FROM kv ORDER BY k;
EOF
)"
echo "$out"
echo "$out" | grep -q '^3$'     || { echo "FAIL: expected 3 rows after recovery" >&2; exit 1; }
echo "$out" | grep -q '^THREE$' || { echo "FAIL: acknowledged UPDATE lost" >&2; exit 1; }
echo "$out" | grep -q '^four$'  || { echo "FAIL: acknowledged INSERT lost" >&2; exit 1; }
if echo "$out" | grep -q '^one$'; then
  echo "FAIL: deleted row resurrected" >&2
  exit 1
fi

echo "== graceful drain =="
kill -TERM "$pid"
wait "$pid"
pid=""

echo "server smoke: OK"
