#!/usr/bin/env bash
# Ingest smoke: start a durable hsqld, stream 100k rows over TCP through
# the COPY fast path (client.CopyIn via scripts/ingest_copy.go) plus one
# SQL-level COPY ... FROM VALUES statement, kill -9 the daemon, restart
# it on the same data directory, and verify every acknowledged row
# survived — exact count and id range, zero lost, zero duplicated.
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

data="$work/data"
port="${SMOKE_PORT:-17890}"
rows=100000

go build -o "$work/hsqld" ./cmd/hsqld
go build -o "$work/hsql" ./cmd/hsql

wait_ready() {
  local p="$1"
  for _ in $(seq 1 100); do
    if printf '%s\n' '\ping' | "$work/hsql" -connect "127.0.0.1:$p" 2>/dev/null | grep -q pong; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: hsqld exited during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "FAIL: hsqld never became ready on port $p" >&2
  return 1
}

echo "== start hsqld (durable) =="
"$work/hsqld" -listen "127.0.0.1:$port" -data "$data" &
pid=$!
wait_ready "$port"

echo "== create table + SQL-level COPY =="
"$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
CREATE TABLE ing (k BIGINT NOT NULL, v VARCHAR, PRIMARY KEY (k));
COPY ing FROM VALUES (1000000, 'sql-a'), (1000001, 'sql-b'), (1000002, 'sql-c');
EOF

echo "== stream $rows rows via client.CopyIn =="
acked="$(go run scripts/ingest_copy.go -addr "127.0.0.1:$port" -table ing -rows "$rows")"
[ "$acked" = "$rows" ] || { echo "FAIL: CopyIn acknowledged $acked rows, want $rows" >&2; exit 1; }

want=$((rows + 3))
pre="$(printf '%s\n' 'SELECT COUNT(*) FROM ing;' | "$work/hsql" -connect "127.0.0.1:$port")"
echo "$pre" | grep -q "^$want$" || { echo "FAIL: pre-crash count is not $want" >&2; echo "$pre" >&2; exit 1; }

echo "== kill -9 =="
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart on the same data dir, verify every acknowledged row =="
port=$((port + 1))
"$work/hsqld" -listen "127.0.0.1:$port" -data "$data" &
pid=$!
wait_ready "$port"

out="$("$work/hsql" -connect "127.0.0.1:$port" <<'EOF'
SELECT COUNT(*) FROM ing;
SELECT MIN(k) FROM ing;
SELECT MAX(k) FROM ing;
EOF
)"
echo "$out"
echo "$out" | grep -q "^$want$"   || { echo "FAIL: recovered count is not $want (lost or duplicated rows)" >&2; exit 1; }
echo "$out" | grep -q '^0$'       || { echo "FAIL: MIN(k) is not 0" >&2; exit 1; }
echo "$out" | grep -q '^1000002$' || { echo "FAIL: MAX(k) is not 1000002 (SQL COPY batch lost)" >&2; exit 1; }

echo "== graceful drain =="
kill -TERM "$pid"
wait "$pid"
pid=""

echo "ingest smoke: OK"
