//go:build ignore

// ingest_copy streams rows into a running hsqld through the driver's
// COPY fast path (client.CopyIn) and prints the durably acknowledged
// row count. Run from the repo root, typically via
// scripts/ingest_smoke.sh:
//
//	go run scripts/ingest_copy.go -addr 127.0.0.1:7878 -table ing -rows 100000
//
// Rows are (k BIGINT, v VARCHAR) with k = start, start+1, ... so the
// caller can verify the exact id set after a crash and restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"hybridstore/internal/client"
	"hybridstore/internal/value"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "hsqld address")
	table := flag.String("table", "ing", "target table (k BIGINT PRIMARY KEY, v VARCHAR)")
	rows := flag.Int("rows", 100_000, "rows to stream")
	start := flag.Int("start", 0, "first id")
	flag.Parse()

	c, err := client.Dial(*addr, client.Options{Name: "ingest-smoke"})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	cp, err := c.CopyIn(context.Background(), *table, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *rows; i++ {
		id := int64(*start + i)
		if err := cp.Send(value.NewBigint(id), value.NewVarchar(fmt.Sprintf("r%d", id))); err != nil {
			log.Fatal(err)
		}
	}
	n, err := cp.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
}
