#!/usr/bin/env bash
# Benchmark snapshot: run the parallel-execution, concurrent-clients and
# planner experiments and record their BENCH_<experiment>.json snapshots
# in the repo root. The JSON embeds GOMAXPROCS/NumCPU, so snapshots taken on
# different machines stay comparable — re-run after executor changes and
# commit the updated files when the shape moved.
#
# Usage: scripts/bench_snapshot.sh [scale]   (default scale 0.25)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-0.25}"

go run ./cmd/hsbench -exp parallel -scale "$scale" -json .
go run ./cmd/hsbench -exp concurrent-clients -scale "$scale" -json .
go run ./cmd/hsbench -exp planner -scale "$scale" -json .
go run ./cmd/hsbench -exp ingest -scale "$scale" -json .

echo "bench snapshot: OK (scale $scale)"
