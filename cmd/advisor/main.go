// Command advisor is the offline storage advisor: given a schema script
// and a workload script (both in the engine's SQL dialect), it loads the
// schema, derives or loads table statistics, estimates the workload cost
// for row-store, column-store and mixed placements, and prints the
// recommended storage layout together with the DDL to apply it — the
// paper's offline mode (Figure 4).
//
// Usage:
//
//	advisor -schema schema.sql -workload workload.sql [-rows table=N,...]
//	        [-model model.json] [-calibrate] [-save-model model.json]
//
// The schema script contains CREATE TABLE statements; the workload script
// contains the SELECT/INSERT/UPDATE/DELETE statements of the recorded or
// expected workload. Because no data is loaded, per-table row counts are
// supplied with -rows (default 100000 per table); statistics are
// approximated from the schema and row counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	calib "hybridstore/internal/costmodel/calibrate"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/sql"
	"hybridstore/internal/value"
)

func main() {
	var (
		schemaPath   = flag.String("schema", "", "path to a CREATE TABLE script")
		workloadPath = flag.String("workload", "", "path to the workload SQL script")
		rowsFlag     = flag.String("rows", "", "per-table row counts, e.g. orders=1500000,lineitem=6000000")
		modelPath    = flag.String("model", "", "load a calibrated cost model from JSON")
		calibrate    = flag.Bool("calibrate", false, "calibrate the cost model against this machine (slower, more accurate)")
		saveModel    = flag.String("save-model", "", "write the used cost model to JSON")
		defaultRows  = flag.Int("default-rows", 100_000, "row count assumed for tables not listed in -rows")
	)
	flag.Parse()
	if *schemaPath == "" || *workloadPath == "" {
		fmt.Fprintln(os.Stderr, "advisor: -schema and -workload are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*schemaPath, *workloadPath, *rowsFlag, *modelPath, *saveModel, *calibrate, *defaultRows); err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}
}

func run(schemaPath, workloadPath, rowsFlag, modelPath, saveModel string, calibrate bool, defaultRows int) error {
	// Parse the schema script.
	schemaSQL, err := os.ReadFile(schemaPath)
	if err != nil {
		return err
	}
	cat := catalog.New()
	var tables []*schema.Table
	stmts, err := sql.ParseScript(string(schemaSQL), nil)
	if err != nil {
		return fmt.Errorf("parsing schema: %w", err)
	}
	for _, st := range stmts {
		if st.CreateTable == nil {
			return fmt.Errorf("schema script must contain only CREATE TABLE statements")
		}
		tables = append(tables, st.CreateTable)
	}
	if len(tables) == 0 {
		return fmt.Errorf("no tables in schema script")
	}
	resolver := func(name string) *schema.Table {
		for _, t := range tables {
			if strings.EqualFold(t.Name, name) {
				return t
			}
		}
		return nil
	}

	// Row counts.
	rowCounts := map[string]int{}
	if rowsFlag != "" {
		for _, part := range strings.Split(rowsFlag, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -rows entry %q", part)
			}
			n, err := strconv.Atoi(kv[1])
			if err != nil || n < 0 {
				return fmt.Errorf("bad -rows count %q", kv[1])
			}
			rowCounts[strings.ToLower(strings.TrimSpace(kv[0]))] = n
		}
	}

	// Register tables with approximate statistics.
	for _, t := range tables {
		rows := defaultRows
		if n, ok := rowCounts[strings.ToLower(t.Name)]; ok {
			rows = n
		}
		if err := cat.Add(&catalog.TableEntry{
			Schema: t,
			Store:  catalog.RowStore,
			Stats:  approximateStats(t, rows),
		}); err != nil {
			return err
		}
	}

	// Parse the workload.
	workloadSQL, err := os.ReadFile(workloadPath)
	if err != nil {
		return err
	}
	wstmts, err := sql.ParseScript(string(workloadSQL), resolver)
	if err != nil {
		return fmt.Errorf("parsing workload: %w", err)
	}
	w := &query.Workload{}
	for _, st := range wstmts {
		if st.Query == nil {
			return fmt.Errorf("workload script must not contain DDL")
		}
		w.Add(st.Query)
	}
	if w.Len() == 0 {
		return fmt.Errorf("empty workload")
	}

	// Cost model: loaded, calibrated, or the analytic default.
	var model *costmodel.Model
	switch {
	case modelPath != "":
		data, err := os.ReadFile(modelPath)
		if err != nil {
			return err
		}
		model = &costmodel.Model{}
		if err := json.Unmarshal(data, model); err != nil {
			return fmt.Errorf("loading model: %w", err)
		}
		fmt.Printf("loaded cost model from %s\n", modelPath)
	case calibrate:
		fmt.Println("calibrating cost model against this machine...")
		model, err = calib.Calibrate(calib.DefaultConfig())
		if err != nil {
			return err
		}
	default:
		model = costmodel.DefaultModel()
		fmt.Println("using the built-in analytic cost model (use -calibrate for machine-specific estimates)")
	}
	if saveModel != "" {
		data, err := json.MarshalIndent(model, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(saveModel, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote cost model to %s\n", saveModel)
	}

	adv := advisor.New(model)
	rec := adv.RecommendOffline(advisor.OfflineInput{Catalog: cat, Workload: w})

	fmt.Printf("\nworkload: %d statements, %.2f%% OLAP, tables: %s\n",
		w.Len(), w.OLAPFraction()*100, strings.Join(w.Tables(), ", "))
	fmt.Printf("\nestimated workload runtimes:\n")
	fmt.Printf("  all tables in the row store:    %10.2f ms\n", rec.RowOnlyCost/1e6)
	fmt.Printf("  all tables in the column store: %10.2f ms\n", rec.ColumnOnlyCost/1e6)
	fmt.Printf("  recommended table-level layout: %10.2f ms\n", rec.TableLevelCost/1e6)
	fmt.Printf("  recommended partitioned layout: %10.2f ms\n", rec.PartitionedCost/1e6)

	fmt.Printf("\nrecommended storage layout:\n")
	for _, ddl := range rec.DDL {
		fmt.Printf("  %s\n", ddl)
	}
	if len(rec.Reasons) > 0 {
		fmt.Printf("\npartitioning rationale:\n")
		for t, r := range rec.Reasons {
			fmt.Printf("  %-12s %s\n", t+":", r)
		}
	}
	return nil
}

// approximateStats fabricates table statistics from the schema and a row
// count: key columns are assumed unique, low-cardinality types get small
// distinct counts. Offline mode works from "basic table statistics"; when
// only the schema is available this is the documented approximation.
func approximateStats(t *schema.Table, rows int) *catalog.TableStats {
	n := t.NumColumns()
	st := &catalog.TableStats{
		NumRows:     rows,
		DistinctN:   make([]int, n),
		MinV:        make([]value.Value, n),
		MaxV:        make([]value.Value, n),
		HasRange:    make([]bool, n),
		Compression: make([]float64, n),
		AvgVarchar:  make([]int, n),
	}
	for i, c := range t.Columns {
		switch {
		case t.IsPrimaryKey(i):
			st.DistinctN[i] = rows
		case c.Type == value.Varchar:
			st.DistinctN[i] = 100
			st.AvgVarchar[i] = 16
		case c.Type == value.Date:
			st.DistinctN[i] = 2500
		default:
			st.DistinctN[i] = rows / 10
			if st.DistinctN[i] < 1 {
				st.DistinctN[i] = 1
			}
		}
		if c.Type != value.Varchar {
			st.HasRange[i] = true
			switch c.Type {
			case value.Integer:
				st.MinV[i], st.MaxV[i] = value.NewInt(0), value.NewInt(int64(rows-1))
			case value.Bigint:
				st.MinV[i], st.MaxV[i] = value.NewBigint(0), value.NewBigint(int64(rows-1))
			case value.Double:
				st.MinV[i], st.MaxV[i] = value.NewDouble(0), value.NewDouble(float64(rows-1))
			case value.Date:
				st.MinV[i], st.MaxV[i] = value.NewDate(8035), value.NewDate(10441)
			}
		}
	}
	sc := 0.0
	for i := range st.Compression {
		st.Compression[i] = 0.6
		sc += 0.6
	}
	return st
}
