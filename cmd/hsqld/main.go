// Command hsqld is the hybrid-store network daemon: it serves one
// engine over TCP using the internal/wire protocol, with sessions,
// prepared statements, admission control and graceful drain.
//
// Usage:
//
//	hsqld -listen :7878 -data /var/lib/hsql [-auto 30s] [-max-sessions 128]
//	      [-http 127.0.0.1:7879] [-slow-query 250ms] [-slow-log /path/queries.log]
//
// With -data the engine is durable: statements are write-ahead logged
// before acknowledgment and a restart (even after kill -9) recovers
// every acknowledged write. Bulk loads should use COPY <table> FROM
// VALUES ... (client.CopyIn in the Go driver): each batch is one
// atomic WAL record and one group-commit wait, so durable ingest runs
// far faster than per-row INSERT at the same durability. With -auto
// the online advisor watches the live workload — attributed per client
// session — and migrates table layouts in the background; the same
// loop merges column-store deltas on an adaptive cadence between
// -compact-min-interval (under ingest pressure) and the -auto interval
// (idle), triggering at -compact-delta rows.
//
// With -http a debug HTTP listener is bound alongside the protocol
// port, serving /metrics (Prometheus text exposition of the process
// registry: query latency histograms, WAL fsync latency, pool
// utilization, codec mix, ...), /status (JSON snapshot), /slowlog
// (GET/PUT the slow-query threshold) and /debug/pprof. Bind it to
// loopback: it is an operator surface, not a client one.
//
// With -slow-query every statement slower than the threshold is logged
// as one JSON line (to stderr, or to the -slow-log file) carrying its
// per-stage execution trace; the threshold is adjustable at runtime via
// the debug listener.
//
// SIGINT/SIGTERM drain gracefully: accepted requests finish, sessions
// close, and the engine checkpoints before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/migrate"
	"hybridstore/internal/monitor"
	"hybridstore/internal/server"
)

func main() {
	var (
		listen      = flag.String("listen", ":7878", "TCP listen address")
		dataDir     = flag.String("data", "", "data directory for durable mode (WAL + snapshots; empty = in-memory)")
		groupCommit = flag.Int("group-commit", 0, "max WAL records per fsync batch (0 = default)")
		auto        = flag.Duration("auto", 0, "auto-advise interval for background layout migration; also the idle ceiling of the delta-merge cadence (0 disables)")
		hysteresis  = flag.Float64("hysteresis", -1, "min relative improvement before auto-migrating (-1 = default)")
		compactRows = flag.Int("compact-delta", 0, "delta rows that trigger a background merge on a column store (0 = default 50000)")
		compactMin  = flag.Duration("compact-min-interval", 0, "floor of the adaptive delta-merge cadence under bulk-ingest (COPY) pressure; needs -auto (0 = default 1s, negative disables adaptation)")
		maxSessions = flag.Int("max-sessions", 0, "max concurrent client sessions (0 = default 128)")
		workers     = flag.Int("workers", 0, "worker-pool slots shared by statement admission and morsel-parallel scans (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 0, "pipelined requests buffered per session (0 = default 32)")
		maxFrame    = flag.Int("max-frame", 0, "max request/response frame bytes (0 = default 8 MiB)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-drain budget on shutdown")
		httpAddr    = flag.String("http", "", "debug HTTP listen address for /metrics, /status, /slowlog, /debug/pprof (empty = disabled; bind to loopback)")
		slowQuery   = flag.Duration("slow-query", 0, "slow-query log threshold (0 = disabled; adjustable at runtime via /slowlog)")
		slowLogPath = flag.String("slow-log", "", "slow-query log file (empty = stderr; JSON lines)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "hsqld: ", log.LstdFlags)

	var db *engine.Database
	var err error
	if *dataDir != "" {
		db, err = engine.OpenOptions(*dataDir, engine.Options{GroupCommit: *groupCommit})
		if err != nil {
			logger.Fatalf("open %s: %v", *dataDir, err)
		}
		logger.Printf("durable mode: %s (%d tables recovered)", *dataDir, len(db.Catalog().Names()))
	} else {
		db = engine.New()
		logger.Printf("in-memory mode (no -data): a restart loses all data")
	}

	// The slow-query log is attached even with a zero threshold when a
	// debug listener is requested, so /slowlog can arm it at runtime.
	if *slowQuery > 0 || *httpAddr != "" {
		slowW := io.Writer(os.Stderr)
		if *slowLogPath != "" {
			f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				logger.Fatalf("slow-log: %v", err)
			}
			defer f.Close()
			slowW = f
		}
		db.SetSlowQueryLog(engine.NewSlowQueryLog(slowW, *slowQuery))
		if *slowQuery > 0 {
			logger.Printf("slow-query log armed at %v", *slowQuery)
		}
	}

	mon := monitor.New(db, monitor.DefaultConfig())
	mcfg := migrate.DefaultConfig()
	if *compactRows > 0 {
		mcfg.CompactDeltaRows = *compactRows
	}
	if *compactMin != 0 {
		mcfg.CompactMinInterval = *compactMin
	}
	mgr := migrate.NewManager(db, advisor.New(costmodel.DefaultModel()), mon, mcfg)
	if *auto > 0 {
		if err := mgr.AutoAdvise(*auto, *hysteresis); err != nil {
			logger.Fatalf("auto-advise: %v", err)
		}
		logger.Printf("auto-advise every %v", *auto)
	}

	srv, err := server.Serve(db, *listen, server.Config{
		MaxSessions: *maxSessions,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		MaxFrame:    *maxFrame,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Printf("listening on %s", srv.Addr())

	if *httpAddr != "" {
		ds, err := srv.ServeDebug(*httpAddr)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		defer ds.Close()
		logger.Printf("debug HTTP on http://%s (/metrics /status /slowlog /debug/pprof)", ds.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	logger.Printf("%v: draining (budget %v)...", sig, *drain)
	if *auto > 0 {
		mgr.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	hits, misses := srv.StmtCacheStats()
	logger.Printf("stopped cleanly (stmt cache: %d hits, %d misses)", hits, misses)
	fmt.Println("bye")
}
