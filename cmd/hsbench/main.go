// Command hsbench regenerates the paper's evaluation figures against the
// live hybrid-store engine. Each experiment prints the series the paper
// plots; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
//
// Usage:
//
//	hsbench [-exp fig7a] [-scale 1.0] [-seed 2012] [-reps 3] [-calib 20000] [-data dir]
//
// With -exp all (the default) every experiment runs in order, sharing one
// calibrated cost model.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridstore/internal/bench"
	"hybridstore/internal/exec"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run (fig6a, fig6b, fig7a, fig7b, fig8, fig9a, fig9b, fig10, ablation, durability, concurrent-clients, parallel, planner, ingest, all)")
		scale = flag.Float64("scale", 1.0, "table-size scale factor (1.0 = default scaled-down sizes)")
		seed  = flag.Int64("seed", 2012, "random seed for data and workload generation")
		reps  = flag.Int("reps", 3, "repetitions per direct measurement (median reported)")
		calib = flag.Int("calib", 50000, "calibration reference table size")
		data  = flag.String("data", "", "directory for the durability experiment's data dirs (default: system temp)")
		list  = flag.Bool("list", false, "list experiments and exit")

		workers = flag.Int("workers", 0, "worker-pool slots for morsel-parallel scans (0 = GOMAXPROCS)")
		jsonDir = flag.String("json", "", "write a BENCH_<experiment>.json snapshot per experiment into this directory")
	)
	flag.Parse()
	if *workers > 0 {
		exec.SetDefaultSize(*workers)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Scale:     *scale,
		Seed:      *seed,
		Reps:      *reps,
		CalibRows: *calib,
		DataDir:   *data,
		Out:       os.Stdout,
	}

	writeJSON := func(results ...*bench.Result) {
		if *jsonDir == "" {
			return
		}
		for _, r := range results {
			path, err := bench.WriteJSON(*jsonDir, r, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hsbench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}

	if strings.EqualFold(*exp, "all") {
		fmt.Println("calibrating cost model against this machine...")
		results, err := bench.RunAll(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hsbench:", err)
			os.Exit(1)
		}
		writeJSON(results...)
		return
	}
	res, err := bench.Run(*exp, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsbench:", err)
		os.Exit(1)
	}
	writeJSON(res)
}
