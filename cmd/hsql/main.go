// Command hsql is an interactive SQL shell for the hybrid-store engine.
// It supports the engine's SQL dialect (CREATE TABLE, SELECT with
// aggregates and joins, INSERT, UPDATE, DELETE, and COPY <table> FROM
// VALUES ... — the bulk-ingest fast path: one atomic WAL record and
// one group-commit wait for the whole batch) plus shell commands:
//
//	\store <table> row|column     move a table between stores (blocking)
//	\stats                        show the live rolling workload window
//	\stats <table>                collect and show table statistics
//	\tables                       list tables with store and row count
//	\advise                       recommend a layout for the observed workload
//	\apply                        apply the last recommendation (blocking)
//	\migrate                      apply it as a background migration
//	\checkpoint                   snapshot durable state and truncate the WAL
//	\metrics                      dump the process metrics registry (same as SHOW METRICS)
//	\slowlog <dur>|off            arm the slow-query log at a threshold (JSON lines on stderr)
//	\quit
//
// EXPLAIN ANALYZE <statement> executes the statement with tracing armed
// and prints one row per execution stage (wall time, rows in/out,
// storage counters such as blocks decoded vs zone-map-skipped, morsel
// and per-worker busy breakdown) instead of the statement's rows.
// SHOW METRICS dumps the process-wide metrics registry; both also work
// over -connect since they travel as ordinary result sets.
//
// With -data <dir> the session is durable: every statement is logged to
// a write-ahead log before it is acknowledged, and restarting hsql with
// the same -data recovers the database (tables, layouts, indexes, data).
//
// With -connect <host:port> hsql is a remote shell instead: statements
// go to a running hsqld over the wire protocol and execute server-side
// (only \quit and \ping work among the shell commands).
//
// Every query prints its result and engine-measured execution time; the
// session's statements feed the live workload monitor, so \advise and
// \migrate reflect the workload actually executed. With -auto the
// advisory loop runs in the background and migrates stores on its own
// once the predicted improvement clears -hysteresis.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/metrics"
	"hybridstore/internal/migrate"
	"hybridstore/internal/monitor"
	"hybridstore/internal/schema"
	"hybridstore/internal/sql"
)

// session bundles the engine with its online-advisory stack.
type session struct {
	db      *engine.Database
	mon     *monitor.Monitor
	mgr     *migrate.Manager
	lastRec *advisor.Recommendation
}

func main() {
	auto := flag.Duration("auto", 0, "auto-advise interval; also the idle ceiling of the delta-merge cadence (0 disables, e.g. 30s)")
	hysteresis := flag.Float64("hysteresis", -1, "min relative improvement before auto-migrating (-1 = default)")
	compactRows := flag.Int("compact-delta", 0, "delta rows that trigger a background merge on a column store (0 = default 50000)")
	compactMin := flag.Duration("compact-min-interval", 0, "floor of the adaptive delta-merge cadence under bulk-ingest (COPY) pressure; needs -auto (0 = default 1s, negative disables adaptation)")
	dataDir := flag.String("data", "", "data directory for durable mode (WAL + snapshots; empty = in-memory)")
	groupCommit := flag.Int("group-commit", 0, "max WAL records per fsync batch (0 = default)")
	connect := flag.String("connect", "", "connect to a running hsqld at host:port instead of embedding the engine")
	workers := flag.Int("workers", 0, "worker-pool slots for morsel-parallel scans (0 = GOMAXPROCS)")
	flag.Parse()
	if *workers > 0 {
		exec.SetDefaultSize(*workers)
	}

	if *connect != "" {
		remoteShell(*connect)
		return
	}

	var db *engine.Database
	if *dataDir != "" {
		var err error
		db, err = engine.OpenOptions(*dataDir, engine.Options{GroupCommit: *groupCommit})
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(1)
		}
		defer func() {
			if err := db.Close(); err != nil {
				fmt.Println("close error:", err)
			}
		}()
		fmt.Printf("durable mode: %s (%d tables recovered)\n", *dataDir, len(db.Catalog().Names()))
	} else {
		db = engine.New()
	}
	adv := advisor.New(costmodel.DefaultModel())
	mon := monitor.New(db, monitor.DefaultConfig())
	mcfg := migrate.DefaultConfig()
	if *compactRows > 0 {
		mcfg.CompactDeltaRows = *compactRows
	}
	if *compactMin != 0 {
		mcfg.CompactMinInterval = *compactMin
	}
	s := &session{
		db:  db,
		mon: mon,
		mgr: migrate.NewManager(db, adv, mon, mcfg),
	}
	if *auto > 0 {
		if err := s.mgr.AutoAdvise(*auto, *hysteresis); err != nil {
			fmt.Println("error:", err)
			os.Exit(1)
		}
		defer s.mgr.Stop()
		fmt.Printf("auto-advise every %v\n", *auto)
	}

	resolver := func(name string) *schema.Table {
		if e := db.Catalog().Table(name); e != nil {
			return e.Schema
		}
		return nil
	}

	fmt.Println("hybrid-store SQL shell — \\quit to exit, \\tables, \\stats, \\advise, \\migrate, \\store <t> row|column")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("hsql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !s.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		for _, stmtText := range sql.SplitStatements(buf.String()) {
			execute(db, resolver, stmtText)
		}
		buf.Reset()
		prompt()
	}
}

// remoteShell is the -connect mode: statements are sent verbatim to an
// hsqld server over the Go driver (parsing, execution and the workload
// monitor all run server-side), results print exactly like local mode.
func remoteShell(addr string) {
	conn, err := client.Dial(addr, client.Options{Name: "hsql"})
	if err != nil {
		fmt.Println("error:", err)
		os.Exit(1)
	}
	defer conn.Close()
	fmt.Printf("connected to %s — \\quit to exit, \\ping to probe\n", addr)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("hsql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch strings.Fields(trimmed)[0] {
			case "\\quit", "\\q":
				return
			case "\\ping":
				start := time.Now()
				if err := conn.Ping(context.Background()); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Printf("pong (%v)\n", time.Since(start))
				}
			case "\\metrics":
				res, err := conn.Exec(context.Background(), "SHOW METRICS;")
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				printResult(&engine.Result{
					Cols: res.Cols, Rows: res.Rows,
					Affected: res.Affected, Duration: res.Duration,
				})
			case "\\stats":
				res, err := conn.Exec(context.Background(), "SHOW METRICS;")
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				vals := map[string]float64{}
				for _, row := range res.Rows {
					if len(row) == 2 {
						vals[row[0].String()] = row[1].Float()
					}
				}
				hits, miss := vals["hs_plan_cache_hits_total"], vals["hs_plan_cache_misses_total"]
				if total := hits + miss; total > 0 {
					fmt.Printf("plan cache: %d entries, %.0f hits / %.0f misses (%.1f%% hit rate)\n",
						int(vals["hs_plan_cache_size"]), hits, miss, 100*hits/total)
				} else {
					fmt.Println("plan cache: no planned reads yet")
				}
				fmt.Printf("stmt cache: %.0f hits / %.0f misses\n",
					vals["hs_server_stmt_cache_hits"], vals["hs_server_stmt_cache_misses"])
				fmt.Printf("txns: %.0f active, %.0f begun, %.0f committed, %.0f aborted, %.0f conflicts\n",
					vals["hs_txn_active"], vals["hs_txn_begin_total"], vals["hs_txn_commit_total"],
					vals["hs_txn_abort_total"], vals["hs_txn_conflict_total"])
			default:
				fmt.Println("unknown remote command (only \\quit, \\ping, \\metrics and \\stats work over -connect):", trimmed)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		for _, stmtText := range sql.SplitStatements(buf.String()) {
			res, err := conn.Exec(context.Background(), stmtText)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(&engine.Result{
				Cols: res.Cols, Rows: res.Rows,
				Affected: res.Affected, Duration: res.Duration,
			})
		}
		buf.Reset()
		prompt()
	}
}

func execute(db *engine.Database, resolver sql.Resolver, stmtText string) {
	st, err := sql.Parse(stmtText, resolver)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if st.Txn != sql.TxnNone {
		fmt.Println("error: BEGIN/COMMIT/ROLLBACK need a server session (connect with -connect)")
		return
	}
	if st.CreateTable != nil {
		if err := db.CreateTable(st.CreateTable, catalog.RowStore); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("created table %s (row store)\n", st.CreateTable.Name)
		return
	}
	var res *engine.Result
	switch {
	case st.ShowMetrics:
		res = engine.MetricsResult()
	case st.Explain:
		res, err = db.ExplainContext(context.Background(), st.Query)
	case st.ExplainAnalyze:
		res, err = db.ExplainAnalyzeContext(context.Background(), st.Query)
	default:
		res, err = db.Exec(st.Query)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
}

func printResult(res *engine.Result) {
	if len(res.Cols) > 0 {
		fmt.Println(strings.Join(res.Cols, " | "))
		limit := len(res.Rows)
		const maxShown = 25
		if limit > maxShown {
			limit = maxShown
		}
		for _, row := range res.Rows[:limit] {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		if len(res.Rows) > limit {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
		}
	}
	fmt.Printf("(%d rows, %v)\n", res.Affected, res.Duration)
}

// command handles backslash commands; it returns false on \quit.
func (s *session) command(line string) bool {
	db := s.db
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\tables":
		for _, name := range db.Catalog().Names() {
			e := db.Catalog().Table(name)
			n, _ := db.Rows(name)
			fmt.Printf("  %-20s %-12s %10d rows", name, e.Store, n)
			if e.Partitioning != nil {
				fmt.Printf("  %s", e.Partitioning)
			}
			if db.Migrating(name) {
				fmt.Print("  (migrating)")
			}
			fmt.Println()
		}
	case "\\store":
		if len(fields) != 3 {
			fmt.Println("usage: \\store <table> row|column")
			break
		}
		store := catalog.RowStore
		if strings.EqualFold(fields[2], "column") {
			store = catalog.ColumnStore
		}
		if err := db.SetLayout(fields[1], store, nil); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("moved %s to the %s store\n", fields[1], store)
	case "\\checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("checkpoint written; WAL truncated")
	case "\\metrics":
		printResult(engine.MetricsResult())
	case "\\slowlog":
		if len(fields) != 2 {
			fmt.Println("usage: \\slowlog <threshold, e.g. 100ms> | off")
			break
		}
		if strings.EqualFold(fields[1], "off") {
			db.SlowQueryLogHandle().SetThreshold(0)
			fmt.Println("slow-query log disarmed")
			break
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d <= 0 {
			fmt.Println("bad threshold:", fields[1])
			break
		}
		if sl := db.SlowQueryLogHandle(); sl != nil {
			sl.SetThreshold(d)
		} else {
			db.SetSlowQueryLog(engine.NewSlowQueryLog(os.Stderr, d))
		}
		fmt.Printf("slow-query log armed at %v (JSON lines on stderr)\n", d)
	case "\\stats":
		if len(fields) == 1 {
			ps := s.db.Pool().Stats()
			fmt.Printf("worker pool: %d slots (%d in use, %d queued; %d tasks done, peak queue %d)\n",
				ps.Size, ps.InUse, ps.Queued, ps.Done, ps.PeakQueued)
			ts := db.TxnStats()
			fmt.Printf("txns: %d active, %d begun, %d committed, %d aborted, %d conflicts\n",
				ts.Active, ts.Begins, ts.Commits, ts.Aborts, ts.Conflicts)
			snap := s.mon.Snapshot()
			fmt.Printf("observed %d queries (%d in window)\n", snap.Seen, snap.WindowSeen)
			ph := metrics.Default().Histogram("hs_planning_seconds",
				"query planning latency (plan IR construction and costing)", "seconds")
			if c := ph.Count(); c > 0 {
				fmt.Printf("planning: %d plans, mean %.1fus, p50 %.1fus, p99 %.1fus\n",
					c, float64(ph.Sum())/float64(c)/1e3, ph.Quantile(0.5)/1e3, ph.Quantile(0.99)/1e3)
			}
			for _, tw := range snap.Tables {
				fmt.Println(" ", tw)
			}
			for _, sw := range snap.Sessions {
				fmt.Println("  session", sw)
			}
			break
		}
		if len(fields) != 2 {
			fmt.Println("usage: \\stats [table]")
			break
		}
		st, err := db.CollectStats(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		e := db.Catalog().Table(fields[1])
		fmt.Printf("  %s; per-column distinct/compression:\n", st)
		for i, c := range e.Schema.Columns {
			fmt.Printf("    %-20s %-8s distinct=%-8d compression=%.2f\n",
				c.Name, c.Type, st.Distinct(i), st.CompressionOf(i))
		}
	case "\\advise":
		rec, err := s.mgr.Advise()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		s.lastRec = rec
		fmt.Printf("estimated runtimes: RS-only %.2fms, CS-only %.2fms, table-level %.2fms, partitioned %.2fms\n",
			rec.RowOnlyCost/1e6, rec.ColumnOnlyCost/1e6, rec.TableLevelCost/1e6, rec.PartitionedCost/1e6)
		for _, ddl := range rec.DDL {
			fmt.Println(" ", ddl)
		}
	case "\\apply":
		if s.lastRec == nil {
			fmt.Println("no recommendation yet — run \\advise first")
			break
		}
		moved, err := s.mgr.Migrate(s.lastRec)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("layout applied (%d tables moved)\n", len(moved))
	case "\\migrate":
		if s.lastRec == nil {
			fmt.Println("no recommendation yet — run \\advise first")
			break
		}
		rec := s.lastRec
		go func() {
			moved, err := s.mgr.Migrate(rec)
			switch {
			case err != nil:
				fmt.Printf("\nmigration error: %v\nhsql> ", err)
			case len(moved) > 0:
				fmt.Printf("\nbackground migration done: %s\nhsql> ", strings.Join(moved, ", "))
			default:
				fmt.Print("\nbackground migration: layout already in place, nothing moved\nhsql> ")
			}
		}()
		fmt.Println("background migration started — \\tables shows progress")
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return true
}
