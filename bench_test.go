package hybridstore

// One testing.B benchmark per figure of the paper's evaluation plus the
// ablation suite. Each benchmark executes the corresponding experiment of
// internal/bench (the same harness cmd/hsbench drives) and reports the
// headline series as benchmark metrics, printing the full experiment
// table to stdout.
//
// The experiments run at a reduced scale (HSBENCH_SCALE, default 0.25) so
// `go test -bench=.` finishes in minutes; run `cmd/hsbench -scale 1` for
// the full-size tables recorded in EXPERIMENTS.md. The first benchmark
// calibrates a cost model against this machine; it is cached for the rest
// of the run.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"hybridstore/internal/bench"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/costmodel/calibrate"
)

var (
	modelOnce   sync.Once
	sharedModel *costmodel.Model
	modelErr    error
)

func benchScale() float64 {
	if s := os.Getenv("HSBENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

func benchConfig(b *testing.B) bench.Config {
	b.Helper()
	modelOnce.Do(func() {
		sharedModel, modelErr = calibrate.Calibrate(calibrate.Config{
			RefRows: 30_000, Reps: 3, Seed: 2012,
		})
	})
	if modelErr != nil {
		b.Fatalf("calibration failed: %v", modelErr)
	}
	return bench.Config{
		Scale: benchScale(),
		Seed:  2012,
		Reps:  3,
		Model: sharedModel,
		Out:   os.Stdout,
	}
}

// runExperiment executes one paper experiment per benchmark iteration and
// reports the key series as metrics.
func runExperiment(b *testing.B, name string, metrics func(*bench.Result, *testing.B)) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && metrics != nil {
			metrics(res, b)
		}
	}
}

// last returns the final point of a series (0 when absent).
func last(r *bench.Result, key string) float64 {
	s := r.Series[key]
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// BenchmarkFig6aDataScale regenerates Figure 6(a): estimation accuracy as
// the data volume grows.
func BenchmarkFig6aDataScale(b *testing.B) {
	runExperiment(b, "fig6a", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(100*costmodel.MeanAbsError(r.Series["rs_est"], r.Series["rs_act"]), "rs_err_%")
		b.ReportMetric(100*costmodel.MeanAbsError(r.Series["cs_est"], r.Series["cs_act"]), "cs_err_%")
	})
}

// BenchmarkFig6bAggregates regenerates Figure 6(b): estimation accuracy as
// the number of aggregates grows.
func BenchmarkFig6bAggregates(b *testing.B) {
	runExperiment(b, "fig6b", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(100*costmodel.MeanAbsError(r.Series["rs_est"], r.Series["rs_act"]), "rs_err_%")
		b.ReportMetric(100*costmodel.MeanAbsError(r.Series["cs_est"], r.Series["cs_act"]), "cs_err_%")
	})
}

// BenchmarkFig7aSingleTable regenerates Figure 7(a): table-level
// recommendation quality on a single table across OLAP fractions.
func BenchmarkFig7aSingleTable(b *testing.B) {
	runExperiment(b, "fig7a", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(last(r, "rs_only")/1e6, "rs@5%_ms")
		b.ReportMetric(last(r, "cs_only")/1e6, "cs@5%_ms")
		b.ReportMetric(last(r, "advisor")/1e6, "advisor@5%_ms")
	})
}

// BenchmarkFig7bJoins regenerates Figure 7(b): recommendation quality for
// star-schema join workloads (dimension pinned to the row store).
func BenchmarkFig7bJoins(b *testing.B) {
	runExperiment(b, "fig7b", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(last(r, "rs_only")/1e6, "rs@5%_ms")
		b.ReportMetric(last(r, "cs_only")/1e6, "cs@5%_ms")
		b.ReportMetric(last(r, "advisor")/1e6, "advisor@5%_ms")
	})
}

// BenchmarkFig8Horizontal regenerates Figure 8: the horizontal
// partitioning sweep with its minimum at the advisor-recommended split.
func BenchmarkFig8Horizontal(b *testing.B) {
	runExperiment(b, "fig8", func(r *bench.Result, b *testing.B) {
		series := r.Series["runtime"]
		if len(series) > 0 {
			best, bestIdx := series[0], 0
			for i, v := range series {
				if v < best {
					best, bestIdx = v, i
				}
			}
			b.ReportMetric(100*r.Series["rs_fraction"][bestIdx], "best_rs_frac_%")
		}
	})
}

// BenchmarkFig9aVerticalOLAP regenerates Figure 9(a): vertical
// partitioning in the OLAP setting.
func BenchmarkFig9aVerticalOLAP(b *testing.B) {
	runExperiment(b, "fig9a", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(last(r, "vertical")/1e6, "vertical@2.5%_ms")
		b.ReportMetric(last(r, "cs_only")/1e6, "cs@2.5%_ms")
	})
}

// BenchmarkFig9bVerticalOLTP regenerates Figure 9(b): vertical
// partitioning in the OLTP setting.
func BenchmarkFig9bVerticalOLTP(b *testing.B) {
	runExperiment(b, "fig9b", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(last(r, "vertical")/1e6, "vertical@2.5%_ms")
		b.ReportMetric(last(r, "rs_only")/1e6, "rs@2.5%_ms")
	})
}

// BenchmarkFig10TPCH regenerates Figure 10: the TPC-H combination and
// comparison of RS-only, CS-only, table-level and partitioned layouts.
func BenchmarkFig10TPCH(b *testing.B) {
	runExperiment(b, "fig10", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(last(r, "rs_only")/1e6, "rs_only_ms")
		b.ReportMetric(last(r, "cs_only")/1e6, "cs_only_ms")
		b.ReportMetric(last(r, "table")/1e6, "table_ms")
		b.ReportMetric(last(r, "partitioned")/1e6, "partitioned_ms")
	})
}

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls out:
// per-code aggregation, the write-optimized delta, the placement-search
// strategy and the compression adjustment.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablation", func(r *bench.Result, b *testing.B) {
		b.ReportMetric(last(r, "codeagg_speedup"), "codeagg_x")
		b.ReportMetric(last(r, "delta_speedup"), "delta_x")
	})
}

// BenchmarkCalibration measures a full cost-model calibration pass (the
// paper's "initialize cost model" step, Figure 5).
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := calibrate.Calibrate(calibrate.Config{
			RefRows: 10_000, Reps: 1, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("calibrated: RS SUM base %.0fns, CS SUM base %.0fns\n",
				m.RS.AggBase["SUM"], m.CS.AggBase["SUM"])
		}
	}
}
