// Package hybridstore is a from-scratch Go reproduction of "A Storage
// Advisor for Hybrid-Store Databases" (Rösch, Dannecker, Hackenbroich,
// Färber; PVLDB 5(12), 2012): an in-memory hybrid-store database engine
// (row store + dictionary-compressed column store, store-aware horizontal
// and vertical partitioning, SQL subset) together with the paper's
// storage advisor — a calibrated cost model that recommends, per table and
// per partition, whether data should live in the row store or the column
// store.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable entry points are:
//
//   - cmd/advisor — offline storage advisor over SQL schema+workload files
//   - cmd/hsbench — regenerates every figure of the paper's evaluation
//   - cmd/hsql — interactive SQL shell for the hybrid engine (local or
//     remote via -connect)
//   - cmd/hsqld — the network daemon serving the engine over TCP
//   - examples/ — quickstart, mixed-workload, partitioning, TPC-H and
//     network-service demos
//
// The benchmarks in bench_test.go wrap the same experiment harness that
// cmd/hsbench runs; EXPERIMENTS.md records paper-vs-measured results.
//
// # Execution model
//
// The column store executes scans and aggregates as a block-based
// vectorized pipeline rather than row at a time:
//
//   - Predicates compile to code ranges on the sorted main dictionaries
//     and are evaluated by fused decode+test kernels
//     (compress.CodeVector.RangeMatchWords) that emit uint64 bitset
//     words — 64 rows per word — directly into a reused match bitset.
//     Conjuncts combine with word-wide ANDs (most selective first, so
//     later conjuncts skip decode for already-zero words), and the
//     tombstone mask is itself a maintained bitset ANDed in
//     word-at-a-time.
//   - Merged main columns pick their coding per column: bit-packed
//     codes (compress.Packed), run-length runs for sorted or clustered
//     data (compress.RLE), or per-block frame-of-reference deltas
//     (compress.FoR) — whichever is smallest by a margin. All three
//     implement the same decode-free filter kernels: RLE answers a code
//     range per run with word fills (work proportional to runs, not
//     rows) and FoR skips whole 1024-row blocks whose local code window
//     misses the range.
//   - Each main-fragment column keeps per-block (1024-row) zone maps:
//     min/max dictionary code plus NULL presence. Blocks whose zone
//     misses the predicate's code range are skipped without decoding;
//     blocks fully inside it match wholesale as all-ones words. In-place
//     updates widen zones conservatively; merges rebuild them tight.
//   - colstore.Table.ScanBatches streams matching rows in 1024-row
//     batches with the requested columns bulk-decoded column-at-a-time
//     (compress.Packed.UnpackBlock) into reused buffers. The row-at-a-time
//     Scan is a thin adapter over it; the engine's vertical-partition
//     scans and hash-join build sides consume batches directly.
//   - Grouped aggregation runs on dense per-(group, spec) scalar
//     accumulators indexed by dictionary codes: SUM accumulates
//     pre-decoded per-code floats and MIN/MAX track code extrema (sorted
//     dictionaries make code order value order), so the per-row work is
//     integer/float scalar ops with no value comparisons. Ungrouped
//     aggregates count per code and fold one weighted add per distinct
//     value — the paper's f_compression advantage.
//   - Horizontally partitioned tables compute partial aggregates for the
//     hot and cold partitions concurrently on the shared worker pool and
//     merge them (the paper's "union of both partitions"), falling back
//     inline when the pool is saturated.
//
// # Parallel execution
//
// Query execution is morsel-driven: one process-wide worker pool
// (internal/exec, GOMAXPROCS slots by default, -workers on every
// binary) feeds every parallel path, and scans split into morsels —
// 1024-row blocks in the column store, slot ranges in the row store —
// that workers claim dynamically, so a skewed block doesn't stall the
// scan. The statement's own goroutine is always worker zero and helpers
// are try-acquired, never awaited: with no idle slot a scan simply runs
// serially, and results are identical either way.
//
//   - Column-store match bitmaps are built block-parallel (each worker
//     applies every conjunct to its blocks; word alignment keeps
//     workers on disjoint bitset words), aggregation runs per-worker —
//     dense per-code accumulators, counting global paths, generic
//     group maps — and merges once at the end, and SELECT collection
//     reassembles batches by block index so parallel row order equals
//     serial row order.
//   - Hash joins build per-block and insert serially in block order
//     (deterministic bucket chains), then probe in parallel: the
//     columnar dictionary probe keeps per-worker match/group caches,
//     the generic aggregate probe per-worker partial results.
//   - The network server admits statements through the same pool
//     (session slot = worker slot), so intra-query parallelism scales
//     down automatically as concurrent statements scale up instead of
//     oversubscribing cores.
//   - Cancellation is polled at morsel claims and batch boundaries;
//     tombstones, zone maps, the delta fragment and monitor attribution
//     behave identically in serial and parallel runs. The differential
//     suite (internal/engine parallel tests) forces an 8-slot pool and
//     asserts bit-identical serial/parallel results across layouts,
//     NULLs, tombstones and migration churn; `hsbench -exp parallel`
//     records serial-vs-parallel speedups into BENCH_parallel.json.
//
// # Query planning
//
// Every read statement (SELECT or aggregate, with or without a join)
// lowers into an explicit physical plan before execution — internal/plan
// builds a tree of typed operators (Scan, Filter, Project, HashJoin,
// Aggregate, Sort, TopK, Limit), each carrying a cardinality and cost
// estimate, and the engine executes the tree. The planner is cost-based:
// it prices alternatives with the calibrated store cost model
// (internal/costmodel, the same model the advisor uses) fed by collected
// table statistics, falling back to the workload monitor's live observed
// predicate selectivities for tables never analyzed.
//
//   - Predicate pushdown: join predicates split structurally into
//     left-only, right-only and cross-side conjuncts; single-side
//     conjuncts push below the join into the storage scans (where zone
//     maps and dictionary kernels evaluate them), shrinking the build
//     side before a hash table is ever allocated.
//   - Join ordering: the smaller estimated post-pushdown input builds
//     the hash table, so a selective dimension filter flips the build
//     side away from the fact table.
//   - ORDER BY + LIMIT fuses into a single-pass bounded-heap TopK that
//     retains exactly the stable-sort-then-limit prefix (ties broken by
//     arrival sequence), accumulating per-worker under the morsel
//     scheduler and merging order-independently.
//   - Plans are parameter-independent: the executor consumes only the
//     plan's structural decisions and re-derives predicates and columns
//     from the bound statement, so one plan serves every binding of a
//     prepared statement. The server caches plans on its prepared-
//     statement cache keyed by normalized text; each plan is stamped
//     with the catalog version at build time and revalidated per
//     execution, so DDL, layout migration cutover, compaction and stats
//     refresh (all of which bump the version) invalidate cached plans
//     without any registration machinery.
//   - EXPLAIN <stmt> renders the chosen plan tree with per-node row and
//     cost estimates as an ordinary result set; EXPLAIN ANALYZE tags its
//     spans with plan-node ids ("scan#3", "hashjoin#5") so observed
//     rows can be read against estimates. hs_plan_cache_{hits,misses}_total
//     and hs_planning_seconds quantify cache effectiveness; `hsbench
//     -exp planner` measures the pushdown/join-order/top-K wins against
//     forcibly degraded plans (BENCH_planner.json), and the planner
//     differential wall (internal/engine) checks planned execution
//     against a naive oracle across all four layouts.
//
// # Live advisory & migration
//
// The paper's online mode (§4) runs as a full subsystem on top of the
// offline advisor:
//
//   - internal/monitor attaches to the engine as its query observer and
//     maintains rolling per-table — and per-partition, for horizontal
//     layouts — workload statistics over a ring of epoch buckets:
//     operation mix, touched columns, estimated predicate selectivities,
//     live row and delta-fragment counts, plus a bounded sample of the
//     observed queries. Rotating epochs age an old workload phase out of
//     the window, so a mix shift changes the recommendation instead of
//     being outvoted by history. Measured monitoring overhead on the hot
//     scan path is well under 2% (see internal/monitor benchmarks).
//   - advisor.RecommendSnapshot consumes monitor snapshots in place of
//     parsed workload files.
//   - internal/migrate executes recommendations as background store
//     migrations with hysteresis (a minimum predicted improvement over
//     staying put, plus a per-table cooldown) so a stable mix never
//     oscillates, and triggers Compact when a column store's
//     write-optimized delta crosses a size threshold.
//     Manager.AutoAdvise(interval, hysteresis) runs the whole loop
//     unattended.
//   - engine.MigrateLayout performs the actual move without blocking
//     queries: the target store is built off to the side from a
//     consistent snapshot, DML executed meanwhile is buffered in a tail
//     and replayed in order, and the storage handle is swapped atomically
//     under the write lock once the tail drains. Concurrent queries see
//     either the old or the new storage, never a partial state.
//
// The hsql shell surfaces the subsystem: \stats prints the live rolling
// window, \advise recommends from it, \migrate applies the
// recommendation as a background migration, and the -auto flag starts
// the self-driving advisory loop.
//
// # Durability & recovery
//
// engine.Open(dir) runs the engine durably; engine.New() stays purely
// in-memory. A durable data directory holds two files:
//
//   - wal.log — an append-only write-ahead log of CRC32C-checked frames,
//     each carrying one logical record (CREATE/DROP TABLE, CREATE INDEX,
//     SET LAYOUT, INSERT with coerced rows, UPDATE, DELETE) plus a
//     monotonically increasing sequence number. Every statement is
//     enqueued under the engine's write lock (so log order equals apply
//     order) and acknowledged only after its frame is written and
//     fsynced. Commits are grouped: the first waiter becomes the flush
//     leader and syncs every pending frame (up to Options.GroupCommit,
//     default 256) in one batch, so concurrent writers share fsyncs.
//   - snapshot — the catalog plus every table's storage payload,
//     written by Checkpoint as snapshot.tmp → fsync → rename → directory
//     fsync, then the WAL is truncated. Serialization is fragment-
//     preserving: the column store records its main and delta fragments
//     separately (reload rebuilds the sorted-dictionary main and leaves
//     the delta unmerged, preserving merge debt), and partitioned
//     layouts serialize each partition recursively. The snapshot is
//     stamped with the WAL sequence it covers, so a crash between the
//     rename and the truncate cannot double-apply the stale tail.
//
// Recovery invariants: Open restores the snapshot, replays intact WAL
// frames in sequence order through the same replayOps machinery
// migration tails use, stops cleanly at the first torn or corrupt frame
// (a partial frame is by construction an unacknowledged statement), and
// truncates the file back to the last valid frame before appending.
// Acknowledged statements are exactly the recovered ones. A background
// MigrateLayout logs a single SET LAYOUT record only after its atomic
// cutover; a crash mid-migration therefore leaves no trace of it, and
// the table recovers in its pre-migration layout with all acknowledged
// DML applied — the in-flight migration aborts cleanly. After replay,
// Open folds the tail into a fresh checkpoint so the next start needs
// no replay. Checkpoint cadence is explicit (Checkpoint/Close, or the
// hsql \checkpoint command); the WAL grows unbounded between
// checkpoints by design.
//
// cmd/hsql -data <dir> runs a durable shell; cmd/hsbench -exp
// durability measures the insert-throughput cost of durability across
// group-commit batch sizes against the in-memory engine.
//
// # Transactions
//
// The engine runs multi-statement transactions under MVCC snapshot
// isolation (internal/txn). BEGIN / COMMIT / ROLLBACK thread through
// the parser, the wire protocol and the Go driver:
//
//	tx, err := conn.Begin(ctx)          // client.Tx over TCP
//	tx.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = ?", ...)
//	tx.Query(ctx, "SELECT ...")          // sees its own writes
//	err = tx.Commit(ctx)                 // or tx.Rollback(ctx)
//
// engine.Database.Begin is the same thing in-process. Semantics:
//
//   - Snapshot isolation: every statement reads as of its transaction's
//     begin timestamp (auto-commit statements as of the newest commit).
//     Writers never block readers and readers never block writers: a
//     long analytical scan runs concurrently with committing OLTP
//     transactions and still sees a point-in-time-consistent state.
//     Uncommitted writes live in per-primary-key version chains (the
//     overlay) layered over whichever physical layout the table uses;
//     chains carry no physical positions, so an online layout migration
//     can cut over underneath an open transaction.
//   - First-updater-wins conflicts: claiming a key already claimed by a
//     live transaction, or modified since the claimant's snapshot,
//     fails immediately (no waiting, no deadlocks) with a
//     serialization-conflict error. Over the wire it carries
//     CodeTxnConflict; client.IsRetryable(err) (or Error.Retryable)
//     tells the application to retry the whole transaction from Begin.
//     The server already rolled it back — further statements keep
//     failing until the client acknowledges with ROLLBACK. Disjoint-row
//     writers commit fully concurrently.
//   - Atomic durable commit: a transaction's whole effect is one WAL
//     commit record through the same group-commit path as auto-commit
//     statements. Recovery replays committed transactions exactly and
//     discards in-flight ones — a torn tail mid-record rolls the whole
//     transaction back, never part of it (asserted per byte cut in the
//     recovery tests).
//   - DDL is auto-commit only; statements on tables without a primary
//     key cannot join a transaction.
//   - Committed versions are folded into base storage behind the commit
//     (opportunistically after each commit, and by the migrate
//     scheduler's maintenance tick via engine.Vacuum), then pruned once
//     no live snapshot can still need them, so the overlay stays small
//     and reads keep the vectorized base-scan fast paths.
//
// Failure handling in the driver: losing the connection inside a
// transaction surfaces an error instead of transparently redialing —
// the server rolled the transaction back with the session, so a silent
// reconnect would replay statements outside it. Rollback then releases
// the transaction and the connection resumes normal auto-reconnect.
//
// Observability: hs_txn_{begin,commit,abort,conflict}_total and the
// hs_txn_active gauge are exported via SHOW METRICS, /metrics and
// /status; \stats in hsql prints the same counters, and the workload
// monitor attributes commits/aborts per session. The transactional
// variant of `hsbench -exp concurrent-clients` measures mixed
// transactional throughput and abort rate against the single-RW-lock
// baseline (engine.SetSerialWrites: each transaction holds a global
// gate from BEGIN to COMMIT and auto-commit reads wait it out — the
// blocking a lock-based engine needs for the same atomicity).
// examples/txn is a runnable tour: visibility, a conflict with retry,
// and recovery.
//
// # Streaming ingest & delta merge
//
// COPY <table> FROM VALUES (...), (...) is the bulk-ingest fast path:
// the whole batch applies atomically as one WAL record and one
// group-commit wait — per batch, not per row — at exactly the
// durability of a single-row INSERT. Recovery surfaces each batch
// completely or not at all (asserted per byte of torn WAL tail in the
// engine recovery tests, across all four layouts). Over the wire the
// Go driver streams it:
//
//	cp, err := conn.CopyIn(ctx, "events", 4)  // table, column count
//	for _, r := range rows {
//		err = cp.Send(r...)                   // buffers, flushes ~4096-row frames
//	}
//	n, err := cp.Close()                      // n = rows durably acknowledged
//
// CopyIn slices the stream into frames and keeps a bounded window of
// them in flight on the session pipeline, overlapping client-side
// encoding with the server's fsync batches. Atomicity is per frame,
// not per stream: on failure Close reports the first error together
// with the rows already durable, and a frame that collides with an
// existing primary key is rejected whole. COPY refuses to run inside
// an open transaction (CodeUnsupported) — each batch is its own
// atomic unit.
//
// Sustained ingest into a column store grows its write-optimized
// delta; the migrate manager's merge scheduler keeps that bounded
// adaptively. It diffs the workload monitor's per-table ingest totals
// into a live rows/sec rate and schedules the next delta-merge check
// for when that rate would fill Config.CompactDeltaRows, clamped
// between Config.CompactMinInterval (the floor a firehose pins it to,
// default 1s) and the AutoAdvise interval (the idle ceiling).
// hs_ingest_* counters and the hs_delta_merge_* family (merges run,
// rows merged, live cadence and observed ingest rate) expose the loop;
// `hsbench -exp ingest` measures COPY vs single-statement INSERT at
// equal durability (acceptance: >= 5x), differential-checks that
// acknowledged rows are exactly the durable ones, and soaks a column
// store to assert the delta stays bounded mid-stream
// (BENCH_ingest.json).
//
// # Network service
//
// cmd/hsqld serves one engine over TCP; internal/client is the Go
// driver and cmd/hsql -connect the remote shell. The stack is a
// vertical slice through internal/wire (protocol), internal/server
// (sessions and execution) and context plumbing down to the storage
// scan loops.
//
// Frame format (internal/wire): a frame is [uint32 LE payload length]
// [payload]; the payload's first byte is the message type and the rest
// is encoded with the internal/wal codec — values, rows and schemas
// share one binary encoding across the log, the snapshot and the wire.
// Requests: Hello (client name, protocol version, optional per-statement
// timeout), Exec (SQL text + '?' parameters), Prepare, StmtExec,
// StmtClose, Ping, Cancel, Quit. Responses: Welcome, OK, Rows,
// Prepared, Error (with a code: SQL, shutdown, cancelled, protocol,
// too-busy), Pong. Each request gets exactly one response, in request
// order — ordering is the correlation mechanism, which makes client
// pipelining free. Oversized frames are rejected before allocation and
// truncated frames surface as clean errors (fuzzed in internal/wire).
//
// Session lifecycle (internal/server): a connection becomes a session
// with a reader goroutine (decodes frames into a bounded queue,
// intercepts out-of-band Cancel frames) and an executor goroutine
// (serves the queue in order). Prepared statements are tokenized once
// into a server-wide statement cache keyed by text — sessions hold
// handles into it — and re-bound against the live catalog per
// execution, so they survive schema and layout migrations. Every
// statement runs under a per-session context; cancel frames and
// statement deadlines abort in-flight scans and aggregates at the
// engine's next batch boundary (~1024 rows) via engine.ExecContext.
// The workload monitor attributes statements per session
// (engine.WithSession → monitor Snapshot.Sessions), so the advisor
// sees the real multi-tenant mix.
//
// Admission control: concurrent sessions are capped (excess connections
// are refused with a too-busy error frame), statement execution passes
// through a bounded worker pool, and a session whose pipeline queue
// fills stops being read — backpressure reaches the client through the
// TCP window instead of accumulating goroutines. Shutdown drains
// gracefully: the listener closes, accepted requests finish (in-flight
// statements are hard-cancelled only past the drain deadline), then the
// engine closes — checkpointing durable state — so kill -9 after a
// drained shutdown, or even instead of one, never loses an acknowledged
// write. Statements racing the close fail with engine.ErrClosed.
//
// cmd/hsbench -exp concurrent-clients sweeps concurrent writer and
// analytical reader sessions over TCP, reports p50/p99 latency and
// aggregate throughput per client count, and differential-checks the
// final table against a single-session oracle replay (zero lost, zero
// duplicated writes).
//
// # Observability
//
// Three instruments share one design rule: zero measurable cost when
// off. internal/trace is a per-statement span collector; every method
// is nil-receiver safe, so the storage and pool code calls it
// unconditionally and an untraced statement pays one predictable
// branch per span boundary (a guard test in internal/engine enforces
// <2% overhead on the hot scan path, under -race in CI). A trace rides
// in the context (trace.WithTrace / trace.FromContext) and in exec.Ctx
// down to the batch kernels. Spans are engine stages — apply, wal_wait,
// scan, aggregate, join — each with wall time, rows in/out and named
// counters; the trace additionally accumulates statement-wide storage
// counters (blocks_decoded, blocks_zone_skipped, blocks_zone_wholesale,
// main_rows, delta_rows) and parallel-loop activity (morsels, runs,
// per-worker busy time).
//
// EXPLAIN ANALYZE <statement> executes the statement under a fresh
// trace and returns the trace as an ordinary result set — columns
// stage, time_ns, rows_in, rows_out, detail, plus synthetic "storage",
// "parallel" and "total" rows — so it needs no wire-protocol support
// and works identically in the local shell, over TCP and through the
// driver. A differential test runs scan/group-by/join under every
// layout and checks the trace's row counts against the real result.
//
// internal/metrics is a dependency-free registry of counters, gauges
// (including callback gauges) and fixed-bucket exponential histograms
// with p50/p99 estimation. Names follow Prometheus convention: hs_
// prefix, _total suffix on counters, *_seconds histograms (observed in
// nanoseconds, scaled to seconds on export). The engine, WAL,
// checkpointer, migrator, compression paths, worker pool and server
// all register into metrics.Default; cmd/hsbench reads the same
// histograms for its p50/p99 columns. Exposure: "SHOW METRICS" (or
// \metrics in hsql) renders the registry as a result set, and hsqld
// -http serves GET /metrics in Prometheus text exposition format
// alongside /status (JSON snapshot: uptime, sessions, pool, tables),
// /slowlog (GET threshold, PUT ?threshold=100ms|off) and
// /debug/pprof/*.
//
// The slow-query log (engine.SlowQueryLog, hsqld -slow-query /
// -slow-log, \slowlog in hsql) writes one JSON line per statement
// crossing a runtime-adjustable threshold: {"time", "session", "kind",
// "query", "duration_ms", "rows", "trace"} — the trace field is the
// compact per-stage summary, because while the threshold is armed
// every statement is traced (that is the point: the entry answers
// "why was it slow", not just "it was slow"). Entries are rate-limited
// to 50/sec with drops counted in hs_slowlog_dropped_total; threshold
// 0 disarms both the log and the per-statement tracing.
package hybridstore
