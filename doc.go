// Package hybridstore is a from-scratch Go reproduction of "A Storage
// Advisor for Hybrid-Store Databases" (Rösch, Dannecker, Hackenbroich,
// Färber; PVLDB 5(12), 2012): an in-memory hybrid-store database engine
// (row store + dictionary-compressed column store, store-aware horizontal
// and vertical partitioning, SQL subset) together with the paper's
// storage advisor — a calibrated cost model that recommends, per table and
// per partition, whether data should live in the row store or the column
// store.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable entry points are:
//
//   - cmd/advisor — offline storage advisor over SQL schema+workload files
//   - cmd/hsbench — regenerates every figure of the paper's evaluation
//   - cmd/hsql — interactive SQL shell for the hybrid engine
//   - examples/ — quickstart, mixed-workload, partitioning and TPC-H demos
//
// The benchmarks in bench_test.go wrap the same experiment harness that
// cmd/hsbench runs; EXPERIMENTS.md records paper-vs-measured results.
package hybridstore
