// Mixed-workload demo (the paper's Figure 7a scenario): the same table
// and the same query stream, executed with the table in the row store, in
// the column store, and in the store the advisor recommends — across a
// sweep of OLAP fractions. Shows the crossover the paper's Figure 7(a)
// plots and how the advisor tracks the better store.
//
//	go run ./examples/mixed_workload
package main

import (
	"fmt"
	"log"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/workload"
)

const tableRows = 60_000

func main() {
	spec := workload.StandardTable("exp")

	// Statistics for the advisor (data characteristics are the same in
	// either store, so one load suffices).
	statsDB := engine.New()
	if err := spec.Load(statsDB, catalog.ColumnStore, tableRows, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := statsDB.CollectStats("exp"); err != nil {
		log.Fatal(err)
	}
	info := advisor.InfoFromCatalog(statsDB.Catalog())
	adv := advisor.New(costmodel.DefaultModel())

	fmt.Println("OLAP%   row store   column store   advisor picks")
	for _, frac := range []float64{0, 0.01, 0.02, 0.03, 0.05} {
		w := workload.GenMixed(spec, workload.MixConfig{
			Queries: 300, OLAPFraction: frac, TableRows: tableRows,
			UpdateRowsPerQuery: 20, Seed: 42,
		})
		rec := adv.RecommendTables(w, info, nil)

		times := map[catalog.StoreKind]time.Duration{}
		for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
			db := engine.New()
			if err := spec.Load(db, store, tableRows, 1); err != nil {
				log.Fatal(err)
			}
			var total time.Duration
			for _, q := range w.Queries {
				res, err := db.Exec(q)
				if err != nil {
					log.Fatal(err)
				}
				total += res.Duration
			}
			times[store] = total
		}
		fmt.Printf("%4.1f%%   %9v   %12v   %s\n",
			frac*100,
			times[catalog.RowStore].Round(time.Millisecond),
			times[catalog.ColumnStore].Round(time.Millisecond),
			rec.Placement.StoreOf("exp"))
	}
	fmt.Println("\nthe row store wins OLTP-heavy mixes; a few percent of analytical")
	fmt.Println("queries flip the decision — exactly the paper's Figure 7(a).")
}
