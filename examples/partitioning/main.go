// Store-aware partitioning demo (the paper's §3.2): a table whose recent
// rows are update-hot and whose history is analyzed is split horizontally
// (hot rows in the row store, historic rows in the column store) and the
// historic part additionally vertically (status attributes row-oriented,
// keyfigures columnar). The engine rewrites queries transparently: unions
// and partial-aggregate merges across the horizontal split, primary-key
// joins across the vertical split.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/workload"
)

const tableRows = 60_000

func run(label string, store catalog.StoreKind, spec *catalog.PartitionSpec, w *query.Workload) time.Duration {
	db := engine.New()
	ts := workload.StandardTable("exp")
	if err := ts.LoadLayout(db, store, spec, tableRows, 1); err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for _, q := range w.Queries {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		total += res.Duration
	}
	fmt.Printf("  %-28s %v\n", label, total.Round(time.Millisecond))
	return total
}

func main() {
	spec := workload.StandardTable("exp")

	// A workload whose updates concentrate on the most recent 10% of the
	// keys — the hot/cold pattern of the paper's Figure 8.
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 400, OLAPFraction: 0.05, TableRows: tableRows,
		HotDataFraction: 0.10, UpdateRowsPerQuery: 50, Seed: 7,
	})

	// Ask the advisor what to do with this table.
	statsDB := engine.New()
	if err := spec.Load(statsDB, catalog.ColumnStore, tableRows, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := statsDB.CollectStats("exp"); err != nil {
		log.Fatal(err)
	}
	adv := advisor.New(costmodel.DefaultModel())
	rec := adv.Recommend(w, advisor.InfoFromCatalog(statsDB.Catalog()), nil, nil)

	fmt.Println("advisor recommendation:")
	for _, ddl := range rec.DDL {
		fmt.Println(" ", ddl)
	}
	for t, reason := range rec.Reasons {
		fmt.Printf("  (%s: %s)\n", t, reason)
	}

	fmt.Println("\nmeasured workload runtimes:")
	run("row store only", catalog.RowStore, nil, w)
	run("column store only", catalog.ColumnStore, nil, w)
	if s := rec.Layout.SpecFor("exp"); s != nil {
		run("advisor's partitioned layout", catalog.Partitioned, s, w)
	} else {
		run("advisor's layout", rec.Layout.Stores.StoreOf("exp"), nil, w)
	}
	fmt.Println("\nthe hot row-store partition absorbs the updates while the")
	fmt.Println("column-store partition keeps analytics fast (paper Figures 8/9).")
}
