// TPC-H end-to-end demo (the paper's Figure 10 scenario at a small scale
// factor): load all eight TPC-H tables, run a mixed enterprise workload,
// let the advisor recommend a layout, and compare the measured runtimes of
// the four strategies the paper evaluates.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"
	"time"

	"hybridstore/internal/advisor"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/tpch"
)

const (
	sf      = 0.01
	queries = 1500
)

func measure(label string, layout func(string) (catalog.StoreKind, *catalog.PartitionSpec), g *tpch.Generator) {
	db := engine.New()
	if _, err := tpch.LoadLayout(db, sf, 1, layout); err != nil {
		log.Fatal(err)
	}
	db.CreateIndex("lineitem", 0)
	db.CreateIndex("partsupp", 0)
	w := tpch.GenWorkload(g, tpch.WorkloadConfig{Queries: queries, OLAPFraction: 0.01, Seed: 1})
	var total time.Duration
	for _, q := range w.Queries {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		total += res.Duration
	}
	fmt.Printf("  %-14s %v\n", label, total.Round(time.Millisecond))
}

func main() {
	fmt.Printf("loading TPC-H at SF %.2f and recommending a layout...\n", sf)

	// Stats pass: load once, collect statistics, derive the workload's
	// recommendation offline.
	statsDB := engine.New()
	g, err := tpch.Load(statsDB, sf, 1, catalog.ColumnStore)
	if err != nil {
		log.Fatal(err)
	}
	statsDB.CreateIndex("lineitem", 0)
	statsDB.CreateIndex("partsupp", 0)
	for _, t := range tpch.TableNames {
		if _, err := statsDB.CollectStats(t); err != nil {
			log.Fatal(err)
		}
	}
	adv := advisor.New(costmodel.DefaultModel())
	adv.Config.MinPartitionRows = 500
	w := tpch.GenWorkload(g, tpch.WorkloadConfig{Queries: queries, OLAPFraction: 0.01, Seed: 1})
	rec := adv.Recommend(w, advisor.InfoFromCatalog(statsDB.Catalog()), nil, nil)

	fmt.Println("\nrecommended layout:")
	for _, ddl := range rec.DDL {
		fmt.Println(" ", ddl)
	}

	fmt.Println("\nmeasured workload runtimes (paper Figure 10):")
	measure("RS only", func(string) (catalog.StoreKind, *catalog.PartitionSpec) {
		return catalog.RowStore, nil
	}, g)
	measure("CS only", func(string) (catalog.StoreKind, *catalog.PartitionSpec) {
		return catalog.ColumnStore, nil
	}, g)
	measure("Table", func(t string) (catalog.StoreKind, *catalog.PartitionSpec) {
		return rec.TableOnly.StoreOf(t), nil
	}, g)
	measure("Partitioned", func(t string) (catalog.StoreKind, *catalog.PartitionSpec) {
		return rec.Layout.Stores.StoreOf(t), rec.Layout.SpecFor(t)
	}, g)
}
