// Netservice demonstrates the network stack end to end inside one
// process: it starts an hsqld-equivalent server on a loopback port,
// connects the Go driver, runs DDL + prepared DML + ordered analytics
// over TCP, cancels an in-flight scan, and drains the server.
//
// Against a real daemon the server half is just:
//
//	hsqld -listen :7878 -data /var/lib/hsql
//
// and the client half is unchanged (or use `hsql -connect :7878`).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/server"
	"hybridstore/internal/value"
)

func main() {
	// Server side: one engine behind a TCP listener. With engine.Open
	// instead of engine.New this is durable, exactly like hsqld -data.
	srv, err := server.Serve(engine.New(), "127.0.0.1:0", server.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Client side: the Go driver. Options.Name labels this session in
	// the server's workload monitor.
	ctx := context.Background()
	conn, err := client.Dial(srv.Addr().String(), client.Options{Name: "example"})
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Exec(ctx, `CREATE TABLE orders (
		o_id BIGINT NOT NULL,
		o_region INTEGER,
		o_total DOUBLE,
		PRIMARY KEY (o_id))`); err != nil {
		log.Fatal(err)
	}

	// Prepared statements bind '?' parameters per execution and are
	// cached server-side.
	ins, err := conn.Prepare(ctx, "INSERT INTO orders VALUES (?, ?, ?)")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, err := ins.Exec(ctx,
			value.NewBigint(int64(i)),
			value.NewBigint(int64(i%4)),
			value.NewDouble(float64(i)*1.5)); err != nil {
			log.Fatal(err)
		}
	}

	// Analytics with deterministic result order for remote consumers.
	res, err := conn.Query(ctx,
		"SELECT o_region, COUNT(*), SUM(o_total) FROM orders WHERE o_total >= ? GROUP BY o_region ORDER BY o_region",
		value.NewDouble(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("region | count | sum (server-side", res.Duration, ")")
	for _, row := range res.Rows {
		fmt.Printf("%6s | %5s | %s\n", row[0], row[1], row[2])
	}

	// Cancelling the context aborts an in-flight scan at the engine's
	// next batch boundary (~1024 rows).
	cctx, cancel := context.WithTimeout(ctx, 500*time.Microsecond)
	defer cancel()
	if _, err := conn.Query(cctx, "SELECT o_region, SUM(o_total) FROM orders GROUP BY o_region"); err != nil {
		fmt.Println("cancelled in flight:", client.IsCancelled(err))
	} else {
		fmt.Println("scan beat the 500µs deadline")
	}

	// Graceful drain: accepted work finishes, then the engine closes
	// (checkpointing, when durable).
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
