// Quickstart: create a hybrid-store database, load a table, run a small
// mixed workload, and ask the storage advisor where the table should live.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hybridstore/internal/advisor"
	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func main() {
	// 1. A hybrid-store database holds row-store and column-store tables
	//    behind one uniform query interface.
	db := engine.New()

	sales := schema.MustNew("sales", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "region", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "status", Type: value.Varchar},
	}, "id")
	if err := db.CreateTable(sales, catalog.RowStore); err != nil {
		log.Fatal(err)
	}

	// 2. Load some data.
	var rows [][]value.Value
	for i := 0; i < 50_000; i++ {
		rows = append(rows, []value.Value{
			value.NewBigint(int64(i)),
			value.NewInt(int64(i % 8)),
			value.NewDouble(float64(i%1000) / 10),
			value.NewVarchar([]string{"OPEN", "PAID", "SHIPPED"}[i%3]),
		})
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		log.Fatal(err)
	}

	// 3. Run a small mixed workload: analytical aggregates plus point
	//    updates, measuring each statement.
	workload := &query.Workload{}
	for i := 0; i < 50; i++ {
		if i%10 == 0 {
			workload.Add(&query.Query{
				Kind: query.Aggregate, Table: "sales",
				Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
				GroupBy: []int{1},
			})
		} else {
			workload.Add(&query.Query{
				Kind: query.Update, Table: "sales",
				Set:  map[int]value.Value{3: value.NewVarchar("PAID")},
				Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(int64(i * 97))},
			})
		}
	}
	for _, q := range workload.Queries {
		if _, err := db.Exec(q); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Collect table statistics (data characteristics) and ask the
	//    advisor. DefaultModel is the deterministic analytic cost model;
	//    use costmodel.Calibrate for machine-specific estimates.
	if _, err := db.CollectStats("sales"); err != nil {
		log.Fatal(err)
	}
	adv := advisor.New(costmodel.DefaultModel())
	rec := adv.RecommendOffline(advisor.OfflineInput{
		Catalog:  db.Catalog(),
		Workload: workload,
	})

	fmt.Println("estimated workload runtimes:")
	fmt.Printf("  row store only:    %8.2f ms\n", rec.RowOnlyCost/1e6)
	fmt.Printf("  column store only: %8.2f ms\n", rec.ColumnOnlyCost/1e6)
	fmt.Printf("  recommended:       %8.2f ms\n", rec.TableLevelCost/1e6)
	fmt.Println("recommended layout:")
	for _, ddl := range rec.DDL {
		fmt.Println(" ", ddl)
	}

	// 5. Apply the recommendation and verify the table still answers
	//    queries (the move is transparent).
	store := rec.Layout.Stores.StoreOf("sales")
	if err := db.SetLayout("sales", store, rec.Layout.SpecFor("sales")); err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after moving to %s: SUM(amount) = %s (in %v)\n",
		store, res.Rows[0][0], res.Duration)
}
