// Txn demonstrates multi-statement transactions over the network stack:
// snapshot-isolation visibility across two sessions, a write-write
// conflict resolved first-updater-wins with a driver-level retry, and
// the transaction counters the server exports.
//
// Against a real daemon the server half is just `hsqld -listen :7878`;
// the client half is unchanged (or use BEGIN/COMMIT interactively with
// `hsql -connect :7878`).
package main

import (
	"context"
	"fmt"
	"log"

	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/server"
	"hybridstore/internal/value"
)

func main() {
	db := engine.New()
	srv, err := server.Serve(db, "127.0.0.1:0", server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	alice, err := client.Dial(srv.Addr().String(), client.Options{Name: "alice"})
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := client.Dial(srv.Addr().String(), client.Options{Name: "bob"})
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	must := func(_ *client.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(alice.Exec(ctx, "CREATE TABLE acct (id BIGINT NOT NULL, bal DOUBLE, PRIMARY KEY (id))"))
	for id := 0; id < 3; id++ {
		must(alice.Exec(ctx, "INSERT INTO acct VALUES (?, ?)",
			value.NewBigint(int64(id)), value.NewDouble(100)))
	}

	// --- Snapshot visibility -------------------------------------------
	// Alice moves 30 from account 0 to account 1 in one transaction. Bob
	// never sees the intermediate state: before the commit he reads the
	// old balances, after it both legs at once.
	tx, err := alice.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	must(tx.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = 0", value.NewDouble(70)))
	must(tx.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = 1", value.NewDouble(130)))
	balances := func(c *client.Conn) (float64, float64) {
		res, err := c.Query(ctx, "SELECT bal FROM acct WHERE id < 2 ORDER BY id")
		if err != nil {
			log.Fatal(err)
		}
		return res.Rows[0][0].Float(), res.Rows[1][0].Float()
	}
	b0, b1 := balances(bob)
	fmt.Printf("mid-transfer, bob reads %.0f / %.0f (transfer invisible)\n", b0, b1)
	if err := tx.Commit(ctx); err != nil {
		log.Fatal(err)
	}
	b0, b1 = balances(bob)
	fmt.Printf("after commit,  bob reads %.0f / %.0f (both legs atomically)\n", b0, b1)

	// --- Conflict, first-updater-wins, retry ---------------------------
	// Both sessions try to update account 2. The first claim wins; the
	// second fails immediately with a retryable conflict — the idiomatic
	// driver loop retries the whole transaction from Begin.
	txA, err := alice.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	must(txA.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = 2", value.NewDouble(111)))

	for attempt := 1; ; attempt++ {
		txB, err := bob.Begin(ctx)
		if err != nil {
			log.Fatal(err)
		}
		_, err = txB.Exec(ctx, "UPDATE acct SET bal = ? WHERE id = 2", value.NewDouble(222))
		if err == nil {
			err = txB.Commit(ctx)
		}
		if err == nil {
			fmt.Printf("bob's transaction committed on attempt %d\n", attempt)
			break
		}
		txB.Rollback(ctx)
		if !client.IsRetryable(err) {
			log.Fatal(err)
		}
		fmt.Printf("attempt %d: %v — retrying from BEGIN\n", attempt, err)
		// First retry: let alice finish so the next claim succeeds.
		if err := txA.Commit(ctx); err != nil {
			log.Fatal(err)
		}
	}

	// --- Counters ------------------------------------------------------
	ts := db.TxnStats()
	fmt.Printf("txn stats: %d begins, %d commits, %d aborts (%d conflicts)\n",
		ts.Begins, ts.Commits, ts.Aborts, ts.Conflicts)

	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
