// Package value defines the typed scalar values stored and processed by the
// hybrid-store engine. A Value is a small, immutable union of the supported
// SQL data types; the storage layers keep values in columnar dictionaries or
// row arenas, and the execution engine compares, hashes and aggregates them.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the data types supported by the engine. The set mirrors
// the types the paper's cost model distinguishes (c_dataType is a per-type
// constant): integers, doubles, variable-length strings and dates.
type Type uint8

const (
	// Integer is a 32-bit signed integer (stored widened to int64).
	Integer Type = iota
	// Bigint is a 64-bit signed integer.
	Bigint
	// Double is a 64-bit IEEE-754 floating point number.
	Double
	// Varchar is a variable-length string.
	Varchar
	// Date is a calendar date, stored as days since 1970-01-01.
	Date
)

// Types lists all supported types, in declaration order.
var Types = []Type{Integer, Bigint, Double, Varchar, Date}

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Integer:
		return "INTEGER"
	case Bigint:
		return "BIGINT"
	case Double:
		return "DOUBLE"
	case Varchar:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a SQL type name into a Type. It accepts the names
// produced by Type.String plus common aliases (INT, FLOAT, STRING, TEXT).
func ParseType(s string) (Type, error) {
	switch s {
	case "INTEGER", "INT":
		return Integer, nil
	case "BIGINT":
		return Bigint, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL":
		return Double, nil
	case "VARCHAR", "STRING", "TEXT", "CHAR":
		return Varchar, nil
	case "DATE":
		return Date, nil
	default:
		return 0, fmt.Errorf("value: unknown type %q", s)
	}
}

// Numeric reports whether values of the type can be aggregated with
// SUM/AVG.
func (t Type) Numeric() bool {
	switch t {
	case Integer, Bigint, Double:
		return true
	default:
		return false
	}
}

// Value is a typed scalar. The zero Value is a NULL Integer.
type Value struct {
	str  string
	num  int64
	typ  Type
	null bool
}

// NewInt returns an Integer value.
func NewInt(v int64) Value { return Value{typ: Integer, num: v} }

// NewBigint returns a Bigint value.
func NewBigint(v int64) Value { return Value{typ: Bigint, num: v} }

// NewDouble returns a Double value.
func NewDouble(v float64) Value { return Value{typ: Double, num: int64(math.Float64bits(v))} }

// NewVarchar returns a Varchar value.
func NewVarchar(s string) Value { return Value{typ: Varchar, str: s} }

// NewDate returns a Date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{typ: Date, num: days} }

// epochDay is the reference for DateFromTime / ParseDate conversions.
var epochDay = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateFromTime returns a Date value for the calendar day of t (UTC).
func DateFromTime(t time.Time) Value {
	days := t.UTC().Truncate(24*time.Hour).Sub(epochDay) / (24 * time.Hour)
	return NewDate(int64(days))
}

// ParseDate parses a YYYY-MM-DD string into a Date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("value: bad date %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// Null returns a NULL value of the given type.
func Null(t Type) Value { return Value{typ: t, null: true} }

// Type returns the value's data type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null }

// Int returns the integer payload of an Integer, Bigint or Date value.
func (v Value) Int() int64 { return v.num }

// Double returns the floating-point payload of a Double value.
func (v Value) Double() float64 { return math.Float64frombits(uint64(v.num)) }

// Varchar returns the string payload of a Varchar value.
func (v Value) Varchar() string { return v.str }

// Float returns the value widened to float64 for aggregation. NULLs and
// non-numeric types yield 0.
func (v Value) Float() float64 {
	if v.null {
		return 0
	}
	switch v.typ {
	case Integer, Bigint, Date:
		return float64(v.num)
	case Double:
		return v.Double()
	default:
		return 0
	}
}

// String formats the value for display.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.typ {
	case Integer, Bigint:
		return strconv.FormatInt(v.num, 10)
	case Double:
		return strconv.FormatFloat(v.Double(), 'g', -1, 64)
	case Varchar:
		return v.str
	case Date:
		return epochDay.AddDate(0, 0, int(v.num)).Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(%d)", v.num)
	}
}

// Compare orders two values of the same type. NULL sorts before any
// non-NULL value. It panics if the types differ, as that indicates a
// planner bug rather than a data error.
func Compare(a, b Value) int {
	if a.typ != b.typ {
		panic(fmt.Sprintf("value: comparing %s with %s", a.typ, b.typ))
	}
	switch {
	case a.null && b.null:
		return 0
	case a.null:
		return -1
	case b.null:
		return 1
	}
	switch a.typ {
	case Integer, Bigint, Date:
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	case Double:
		af, bf := a.Double(), b.Double()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case Varchar:
		switch {
		case a.str < b.str:
			return -1
		case a.str > b.str:
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Equal reports whether two values are identical (same type, same payload,
// with NULL equal to NULL).
func Equal(a, b Value) bool {
	if a.typ != b.typ || a.null != b.null {
		return false
	}
	if a.null {
		return true
	}
	if a.typ == Varchar {
		return a.str == b.str
	}
	return a.num == b.num
}

// Less reports whether a sorts before b. See Compare for NULL ordering.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// FNV-1a constants, used inline to keep Hash allocation-free (it runs on
// every hash-join probe and index operation).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

// Hash returns a 64-bit hash of the value, suitable for hash joins and
// group-by tables. Values that are Equal hash identically.
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset)
	tag := byte(v.typ)
	if v.null {
		return fnvByte(h, tag|0x80)
	}
	h = fnvByte(h, tag)
	if v.typ == Varchar {
		for i := 0; i < len(v.str); i++ {
			h = fnvByte(h, v.str[i])
		}
		return h
	}
	n := uint64(v.num)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(n>>(8*i)))
	}
	return h
}

// HashRow combines the hashes of a slice of values (e.g. a composite key).
func HashRow(vals []Value) uint64 {
	h := uint64(fnvOffset)
	for _, v := range vals {
		h ^= v.Hash()
		h *= fnvPrime
	}
	return h
}

// Key returns a comparable string key uniquely identifying the value within
// its type. It is used for map-based dictionaries and group-by keys.
func (v Value) Key() string {
	if v.null {
		return "\x00N"
	}
	if v.typ == Varchar {
		return "s" + v.str
	}
	var b [9]byte
	b[0] = 'n'
	n := uint64(v.num)
	for i := 0; i < 8; i++ {
		b[1+i] = byte(n >> (8 * i))
	}
	return string(b[:])
}

// TupleKey returns a collision-free comparable key for a tuple of
// values (e.g. a composite primary key): each component's Key is
// length-prefixed, so component boundaries stay unambiguous even when a
// VARCHAR contains a would-be separator byte.
func TupleKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		k := v.Key()
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// Coerce converts v to type t where a lossless or standard SQL conversion
// exists (integer widening, integer→double, string→typed parse). It returns
// an error for unsupported conversions.
func Coerce(v Value, t Type) (Value, error) {
	if v.typ == t {
		return v, nil
	}
	if v.null {
		return Null(t), nil
	}
	switch t {
	case Bigint:
		if v.typ == Integer {
			return NewBigint(v.num), nil
		}
	case Integer:
		if v.typ == Bigint {
			return NewInt(v.num), nil
		}
	case Double:
		if v.typ == Integer || v.typ == Bigint {
			return NewDouble(float64(v.num)), nil
		}
	case Date:
		if v.typ == Varchar {
			return ParseDate(v.str)
		}
		if v.typ == Integer || v.typ == Bigint {
			return NewDate(v.num), nil
		}
	case Varchar:
		return NewVarchar(v.String()), nil
	}
	return Value{}, fmt.Errorf("value: cannot coerce %s to %s", v.typ, t)
}

// Bytes returns the approximate in-memory size of the value payload in an
// uncompressed representation, used for compression-rate accounting.
func (v Value) Bytes() int {
	switch v.typ {
	case Integer:
		return 4
	case Bigint, Double, Date:
		return 8
	case Varchar:
		return len(v.str)
	default:
		return 8
	}
}
