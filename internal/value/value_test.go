package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Integer: "INTEGER", Bigint: "BIGINT", Double: "DOUBLE",
		Varchar: "VARCHAR", Date: "DATE",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", typ, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestParseType(t *testing.T) {
	for _, typ := range Types {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	aliases := map[string]Type{"INT": Integer, "FLOAT": Double, "STRING": Varchar, "TEXT": Varchar}
	for s, want := range aliases {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestNumeric(t *testing.T) {
	numeric := map[Type]bool{Integer: true, Bigint: true, Double: true, Varchar: false, Date: false}
	for typ, want := range numeric {
		if got := typ.Numeric(); got != want {
			t.Errorf("%v.Numeric() = %v, want %v", typ, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Type() != Integer || v.Int() != 42 || v.IsNull() {
		t.Errorf("NewInt broken: %+v", v)
	}
	if v := NewBigint(-7); v.Type() != Bigint || v.Int() != -7 {
		t.Errorf("NewBigint broken: %+v", v)
	}
	if v := NewDouble(3.25); v.Type() != Double || v.Double() != 3.25 {
		t.Errorf("NewDouble broken: %+v", v)
	}
	if v := NewVarchar("abc"); v.Type() != Varchar || v.Varchar() != "abc" {
		t.Errorf("NewVarchar broken: %+v", v)
	}
	if v := NewDate(100); v.Type() != Date || v.Int() != 100 {
		t.Errorf("NewDate broken: %+v", v)
	}
	if v := Null(Double); !v.IsNull() || v.Type() != Double {
		t.Errorf("Null broken: %+v", v)
	}
}

func TestDateConversions(t *testing.T) {
	d, err := ParseDate("1970-01-11")
	if err != nil {
		t.Fatal(err)
	}
	if d.Int() != 10 {
		t.Errorf("1970-01-11 = day %d, want 10", d.Int())
	}
	if s := d.String(); s != "1970-01-11" {
		t.Errorf("String() = %q", s)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate should fail on garbage")
	}
	ts := time.Date(2012, 8, 27, 15, 4, 5, 0, time.UTC) // VLDB 2012 started Aug 27
	d2 := DateFromTime(ts)
	if d2.String() != "2012-08-27" {
		t.Errorf("DateFromTime = %s", d2.String())
	}
}

func TestFloatWidening(t *testing.T) {
	if f := NewInt(5).Float(); f != 5 {
		t.Errorf("int Float = %v", f)
	}
	if f := NewDouble(2.5).Float(); f != 2.5 {
		t.Errorf("double Float = %v", f)
	}
	if f := Null(Integer).Float(); f != 0 {
		t.Errorf("null Float = %v", f)
	}
	if f := NewVarchar("x").Float(); f != 0 {
		t.Errorf("varchar Float = %v", f)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(7), "7"},
		{NewBigint(-9), "-9"},
		{NewDouble(1.5), "1.5"},
		{NewVarchar("hi"), "hi"},
		{Null(Varchar), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewDouble(1.5), NewDouble(2.5), -1},
		{NewDouble(2.5), NewDouble(2.5), 0},
		{NewVarchar("a"), NewVarchar("b"), -1},
		{NewVarchar("b"), NewVarchar("b"), 0},
		{Null(Integer), NewInt(-100), -1},
		{NewInt(-100), Null(Integer), 1},
		{Null(Integer), Null(Integer), 0},
		{NewDate(5), NewDate(9), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Less(c.a, c.b); got != (c.want < 0) {
			t.Errorf("Less(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestCompareTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compare across types should panic")
		}
	}()
	Compare(NewInt(1), NewDouble(1))
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(3), NewInt(3)) {
		t.Error("3 != 3")
	}
	if Equal(NewInt(3), NewInt(4)) {
		t.Error("3 == 4")
	}
	if Equal(NewInt(3), NewBigint(3)) {
		t.Error("types should not mix")
	}
	if !Equal(Null(Double), Null(Double)) {
		t.Error("NULL should equal NULL for Equal")
	}
	if Equal(Null(Double), NewDouble(0)) {
		t.Error("NULL != 0")
	}
	if !Equal(NewVarchar("x"), NewVarchar("x")) {
		t.Error("varchar equality broken")
	}
}

func TestHashConsistency(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(12345), NewInt(12345)},
		{NewVarchar("hello"), NewVarchar("hello")},
		{Null(Date), Null(Date)},
		{NewDouble(math.Pi), NewDouble(math.Pi)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values hash differently: %v", p[0])
		}
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("suspicious: 1 and 2 collide")
	}
}

func TestHashRow(t *testing.T) {
	a := []Value{NewInt(1), NewVarchar("x")}
	b := []Value{NewInt(1), NewVarchar("x")}
	c := []Value{NewInt(2), NewVarchar("x")}
	if HashRow(a) != HashRow(b) {
		t.Error("equal rows hash differently")
	}
	if HashRow(a) == HashRow(c) {
		t.Error("suspicious row collision")
	}
}

func TestKeyUniqueness(t *testing.T) {
	vals := []Value{
		NewInt(0), NewInt(1), NewInt(-1), Null(Integer),
		NewVarchar(""), NewVarchar("a"), NewDouble(0), NewDouble(1),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok && !Equal(prev, v) && prev.Type() == v.Type() {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(5), Double)
	if err != nil || v.Double() != 5 {
		t.Errorf("int->double: %v, %v", v, err)
	}
	v, err = Coerce(NewInt(5), Bigint)
	if err != nil || v.Int() != 5 || v.Type() != Bigint {
		t.Errorf("int->bigint: %v, %v", v, err)
	}
	v, err = Coerce(NewBigint(5), Integer)
	if err != nil || v.Int() != 5 || v.Type() != Integer {
		t.Errorf("bigint->int: %v, %v", v, err)
	}
	v, err = Coerce(NewVarchar("2000-01-01"), Date)
	if err != nil || v.Type() != Date {
		t.Errorf("varchar->date: %v, %v", v, err)
	}
	v, err = Coerce(Null(Integer), Double)
	if err != nil || !v.IsNull() || v.Type() != Double {
		t.Errorf("null coercion: %v, %v", v, err)
	}
	if _, err := Coerce(NewVarchar("x"), Integer); err == nil {
		t.Error("varchar->int should fail")
	}
	v, err = Coerce(NewInt(42), Varchar)
	if err != nil || v.Varchar() != "42" {
		t.Errorf("int->varchar: %v, %v", v, err)
	}
}

func TestBytes(t *testing.T) {
	if NewInt(1).Bytes() != 4 {
		t.Error("int bytes")
	}
	if NewDouble(1).Bytes() != 8 {
		t.Error("double bytes")
	}
	if NewVarchar("abcd").Bytes() != 4 {
		t.Error("varchar bytes")
	}
}

// Property: Compare is antisymmetric and Equal implies Compare==0 for
// same-typed integer values.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if Compare(va, vb) != -Compare(vb, va) {
			return false
		}
		if Equal(va, vb) != (Compare(va, vb) == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hash respects Equal for varchar values.
func TestHashEqualProperty(t *testing.T) {
	f := func(s string) bool {
		return NewVarchar(s).Hash() == NewVarchar(s).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double round-trips through the bits representation.
func TestDoubleRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		v := NewDouble(x)
		return v.Double() == x || (math.IsNaN(x) && math.IsNaN(v.Double()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
