package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// TestServerSoakConcurrentSessions drives concurrent sessions issuing
// mixed DML and analytics over TCP while the table migrates between
// stores underneath, then differential-checks the final contents
// against a single-session oracle replaying exactly the acknowledged
// statements: zero lost writes, zero duplicated writes. Run under
// -race in CI, this is the protocol/session/engine interleaving soak.
func TestServerSoakConcurrentSessions(t *testing.T) {
	const (
		writers     = 5
		readers     = 3
		insertsPerW = 300
		updateEvery = 4
		readsPerR   = 60
		migrations  = 6
	)
	db := engine.New()
	sch := schema.MustNew("soak", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "note", Type: value.Varchar, Nullable: true},
	}, "id")
	if err := db.CreateTable(sch, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, db, Config{MaxSessions: writers + readers + 2})
	defer shutdown(t, srv)
	addr := srv.Addr().String()
	ctx := context.Background()

	// ackedOp is one acknowledged statement, replayed into the oracle in
	// per-writer order (writers own disjoint key ranges, so cross-writer
	// order is irrelevant to the final state).
	type ackedOp struct {
		insert bool
		id     int64
		grp    int64
		amount float64
	}
	acked := make([][]ackedOp, writers)

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("writer%d", w)})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			ins, err := c.Prepare(ctx, "INSERT INTO soak VALUES (?, ?, ?, ?)")
			if err != nil {
				errCh <- err
				return
			}
			upd, err := c.Prepare(ctx, "UPDATE soak SET amount = ? WHERE id = ?")
			if err != nil {
				errCh <- err
				return
			}
			base := int64(w) * 1_000_000
			for i := 0; i < insertsPerW; i++ {
				id := base + int64(i)
				grp := int64(i % 7)
				amount := float64(i)
				if _, err := ins.Exec(ctx,
					value.NewBigint(id), value.NewBigint(grp),
					value.NewDouble(amount), value.NewVarchar("s")); err != nil {
					errCh <- fmt.Errorf("writer %d insert %d: %w", w, id, err)
					return
				}
				acked[w] = append(acked[w], ackedOp{insert: true, id: id, grp: grp, amount: amount})
				if i%updateEvery == 0 && i > 0 {
					target := base + int64(i-1)
					na := float64(i) * 2
					if _, err := upd.Exec(ctx, value.NewDouble(na), value.NewBigint(target)); err != nil {
						errCh <- fmt.Errorf("writer %d update %d: %w", w, target, err)
						return
					}
					acked[w] = append(acked[w], ackedOp{id: target, amount: na})
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Name: fmt.Sprintf("reader%d", r)})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			agg, err := c.Prepare(ctx, "SELECT grp, COUNT(*), SUM(amount) FROM soak WHERE grp >= ? GROUP BY grp ORDER BY grp")
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < readsPerR; i++ {
				if _, err := agg.Exec(ctx, value.NewBigint(int64(i%3))); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	// Migration churn: flip the layout row↔column while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stores := []catalog.StoreKind{catalog.ColumnStore, catalog.RowStore}
		for i := 0; i < migrations; i++ {
			err := db.MigrateLayout("soak", stores[i%2], nil)
			if err != nil && !errors.Is(err, engine.ErrClosed) {
				// A migration already in flight is the only tolerable
				// failure here.
				if fmt.Sprint(err) != `engine: "soak" has a migration in flight` {
					errCh <- fmt.Errorf("migration %d: %w", i, err)
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Oracle: a fresh single-session engine replaying the acknowledged
	// statements.
	oracle := engine.New()
	osch := schema.MustNew("soak", sch.Columns, "id")
	if err := oracle.CreateTable(osch, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	for w := range acked {
		for _, op := range acked[w] {
			if op.insert {
				_, err := oracle.Exec(&query.Query{Kind: query.Insert, Table: "soak", Rows: [][]value.Value{{
					value.NewBigint(op.id), value.NewInt(op.grp), value.NewDouble(op.amount), value.NewVarchar("s"),
				}}})
				if err != nil {
					t.Fatalf("oracle insert: %v", err)
				}
			} else {
				_, err := oracle.Exec(&query.Query{Kind: query.Update, Table: "soak",
					Set:  map[int]value.Value{2: value.NewDouble(op.amount)},
					Pred: pkEq(op.id),
				})
				if err != nil {
					t.Fatalf("oracle update: %v", err)
				}
			}
		}
	}
	assertSameTable(t, db, oracle, "soak")
}

func pkEq(id int64) expr.Predicate {
	return &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}
}

// assertSameTable compares the full ordered contents of one table in
// two databases — the zero-lost, zero-duplicated differential check.
func assertSameTable(t *testing.T, got, want *engine.Database, table string) {
	t.Helper()
	dump := func(db *engine.Database) *engine.Result {
		res, err := db.Exec(&query.Query{
			Kind: query.Select, Table: table,
			OrderBy: []query.Order{{Col: 0}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	g, w := dump(got), dump(want)
	if len(g.Rows) != len(w.Rows) {
		t.Fatalf("row count: server %d vs oracle %d (lost or duplicated writes)", len(g.Rows), len(w.Rows))
	}
	for i := range g.Rows {
		for j := range g.Rows[i] {
			if !value.Equal(g.Rows[i][j], w.Rows[i][j]) {
				t.Fatalf("row %d col %d: server %v vs oracle %v", i, j, g.Rows[i][j], w.Rows[i][j])
			}
		}
	}
}
