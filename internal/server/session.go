package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hybridstore/internal/engine"
	"hybridstore/internal/sql"
	"hybridstore/internal/value"
	"hybridstore/internal/wire"
)

// session is one client connection: a reader goroutine feeding a
// bounded request queue and an executor goroutine (run) serving it in
// order. The state machine is deliberately small — created → (hello) →
// serving → draining → gone — with the hello optional so bare clients
// can fire statements immediately.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn

	// label attributes the session's statements in the workload
	// monitor; Hello refines it with the client's name.
	label string

	// timeout is the per-statement deadline from Hello (0 = none).
	timeout time.Duration

	// ctx parents every statement context; cancelled on server
	// hard-stop.
	ctx context.Context

	// reqCh is the bounded pipeline queue; the reader blocks when it is
	// full, which is the per-session backpressure.
	reqCh chan *wire.Request

	// stopRead aborts a blocked read during drain.
	readMu      sync.Mutex
	readStopped bool

	// curCancel aborts the statement the executor is running (nil when
	// idle); Cancel frames call it from the reader goroutine.
	cancelMu  sync.Mutex
	curCancel context.CancelFunc

	// writeMu serializes response frames: the executor is the main
	// writer, but the reader emits a best-effort protocol-error frame
	// when a session dies on garbage input.
	writeMu sync.Mutex

	// stmts maps this session's prepared-statement handles (issued from
	// the server-wide counter) into the shared cache's templates. Only
	// the executor touches it.
	stmts map[uint64]*cachedStmt

	// tx is the session's open explicit transaction (BEGIN…COMMIT); nil
	// outside one. Only the executor touches it; statements executed
	// while it is set join the transaction instead of auto-committing.
	// After a statement failure the engine has already aborted the
	// transaction, but tx stays set (statements keep returning the abort
	// reason) until the client acknowledges with ROLLBACK — mirroring
	// the usual SQL session contract.
	tx *engine.Txn
}

func newSession(s *Server, id uint64, conn net.Conn) *session {
	return &session{
		srv:   s,
		id:    id,
		conn:  conn,
		label: fmt.Sprintf("sess#%d", id),
		ctx:   s.baseCtx,
		reqCh: make(chan *wire.Request, s.cfg.QueueDepth),
		stmts: make(map[uint64]*cachedStmt),
		// The configured cap applies from the first statement, so a
		// client that never sends Hello cannot dodge it.
		timeout: s.cfg.MaxStmtTimeout,
	}
}

// stopReading wakes a blocked read and prevents further ones; queued
// requests still execute (graceful drain).
func (se *session) stopReading() {
	se.readMu.Lock()
	se.readStopped = true
	se.readMu.Unlock()
	se.conn.SetReadDeadline(time.Now())
}

// reqProtoErr marks a poison queue entry the reader enqueues when the
// request stream turns to garbage: the executor emits it as an error
// frame IN ORDER — after every response already owed — and terminates
// the session. Writing it directly from the reader would interleave it
// ahead of queued responses and mis-correlate the client's positional
// matching. The value is a response type, which no valid request can
// carry.
const reqProtoErr = wire.MsgError

// run is the session's executor loop (and lifecycle owner).
func (se *session) run() {
	defer func() {
		// A connection dying mid-transaction must not leave write claims
		// pinning other writers: roll back whatever is still open.
		if se.tx != nil {
			se.tx.Rollback()
			se.tx = nil
		}
		se.conn.Close()
		se.srv.dropSession(se)
	}()
	go se.readLoop()
	for rq := range se.reqCh {
		if rq.Type == reqProtoErr {
			se.write(&wire.Response{Type: wire.MsgError, Code: wire.CodeProtocol, Err: rq.SQL})
			break
		}
		rs := se.handle(rq)
		if rs == nil { // Quit
			break
		}
		if err := se.write(rs); err != nil {
			break
		}
	}
	// Let the reader's queue drain so it can exit (it may be blocked on
	// a full queue while we stop consuming).
	se.stopReading()
	for range se.reqCh {
	}
}

// readLoop decodes frames into the queue, intercepting out-of-band
// cancels. It owns closing reqCh.
func (se *session) readLoop() {
	defer close(se.reqCh)
	for {
		rq, err := wire.ReadRequest(se.conn, se.srv.cfg.MaxFrame)
		if err != nil {
			se.readMu.Lock()
			stopped := se.readStopped
			se.readMu.Unlock()
			if !stopped {
				// Protocol-level garbage earns a final error frame, but
				// it must flow through the executor queue so it lands
				// after every response already owed (response order is
				// the client's correlation mechanism). EOF is a normal
				// hangup and net errors (resets, closed conns) are not
				// worth one.
				var ne net.Error
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.As(err, &ne) {
					se.reqCh <- &wire.Request{Type: reqProtoErr, SQL: err.Error()}
				}
			}
			return
		}
		if rq.Type == wire.MsgCancel {
			se.cancelCurrent()
			continue
		}
		se.reqCh <- rq
		if rq.Type == wire.MsgQuit {
			return
		}
	}
}

func (se *session) cancelCurrent() {
	se.cancelMu.Lock()
	if se.curCancel != nil {
		se.curCancel()
	}
	se.cancelMu.Unlock()
}

// write serializes one response frame; responses that would exceed the
// frame limit are replaced by an error so the client's reader survives.
func (se *session) write(rs *wire.Response) error {
	payload := wire.EncodeResponse(rs)
	if len(payload) > se.srv.cfg.MaxFrame {
		payload = wire.EncodeResponse(&wire.Response{
			Type: wire.MsgError, Code: wire.CodeProtocol,
			Err: fmt.Sprintf("result of %d bytes exceeds the %d-byte frame limit (page with LIMIT)", len(payload), se.srv.cfg.MaxFrame),
		})
	}
	se.writeMu.Lock()
	defer se.writeMu.Unlock()
	return wire.WriteFrame(se.conn, payload)
}

// handle serves one request, returning its response (nil for Quit).
func (se *session) handle(rq *wire.Request) *wire.Response {
	switch rq.Type {
	case wire.MsgHello:
		if rq.Version != wire.ProtocolVersion {
			return &wire.Response{Type: wire.MsgError, Code: wire.CodeProtocol,
				Err: fmt.Sprintf("protocol version %d not supported (server speaks %d)", rq.Version, wire.ProtocolVersion)}
		}
		if rq.ClientName != "" {
			se.label = fmt.Sprintf("%s#%d", rq.ClientName, se.id)
		}
		se.timeout = rq.Timeout
		if max := se.srv.cfg.MaxStmtTimeout; max > 0 && (se.timeout == 0 || se.timeout > max) {
			se.timeout = max
		}
		return &wire.Response{Type: wire.MsgWelcome, Session: se.id}
	case wire.MsgPing:
		return &wire.Response{Type: wire.MsgPong}
	case wire.MsgQuit:
		return nil
	case wire.MsgPrepare:
		cs, err := se.prepare(rq.SQL)
		if err != nil {
			return sqlError(err)
		}
		id := se.srv.stmtIDs.Add(1)
		se.stmts[id] = cs
		return &wire.Response{Type: wire.MsgPrepared, Stmt: id, NumParams: cs.pp.NumParams}
	case wire.MsgStmtClose:
		delete(se.stmts, rq.Stmt)
		return &wire.Response{Type: wire.MsgOK}
	case wire.MsgExec:
		cs, err := se.srv.cache.get(rq.SQL)
		if err != nil {
			return sqlError(err)
		}
		return se.execPrepared(cs, rq.Params)
	case wire.MsgStmtExec:
		cs, ok := se.stmts[rq.Stmt]
		if !ok {
			// CodeUnknownStmt tells the driver the statement provably
			// did not execute (safe to re-prepare and retry).
			return &wire.Response{Type: wire.MsgError, Code: wire.CodeUnknownStmt,
				Err: fmt.Sprintf("unknown statement handle %d", rq.Stmt)}
		}
		return se.execPrepared(cs, rq.Params)
	case wire.MsgCopy:
		return se.execCopy(rq)
	default:
		return &wire.Response{Type: wire.MsgError, Code: wire.CodeProtocol,
			Err: fmt.Sprintf("unexpected request type 0x%02x", rq.Type)}
	}
}

// prepare resolves a statement template through the shared cache and
// validates it against the current catalog by a throwaway bind with
// NULL parameters, so syntax and column errors surface at Prepare time.
func (se *session) prepare(text string) (*cachedStmt, error) {
	cs, err := se.srv.cache.get(text)
	if err != nil {
		return nil, err
	}
	nulls := make([]value.Value, cs.pp.NumParams)
	for i := range nulls {
		nulls[i] = value.Null(value.Varchar)
	}
	if _, err := cs.pp.Bind(se.srv.resolver, nulls); err != nil {
		return nil, err
	}
	return cs, nil
}

// execPrepared binds and executes one statement under a fresh statement
// context (session deadline applied, cancel registered for out-of-band
// Cancel frames) on a worker-pool slot.
func (se *session) execPrepared(cs *cachedStmt, params []value.Value) *wire.Response {
	st, err := cs.pp.Bind(se.srv.resolver, params)
	if err != nil {
		return sqlError(err)
	}
	if st.Txn != sql.TxnNone {
		return se.execTxnCtl(st.Txn)
	}
	if se.tx != nil && st.CreateTable != nil {
		return sqlError(errors.New("server: DDL is not allowed inside a transaction"))
	}

	ctx := engine.WithSession(se.ctx, se.label)
	if se.tx != nil {
		ctx = engine.WithTxn(ctx, se.tx)
	}
	var cancel context.CancelFunc
	if se.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, se.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	se.cancelMu.Lock()
	se.curCancel = cancel
	se.cancelMu.Unlock()
	defer func() {
		se.cancelMu.Lock()
		se.curCancel = nil
		se.cancelMu.Unlock()
		cancel()
	}()

	// Shared worker pool: wait for an execution slot (or hard-stop).
	// The statement runs on this slot; any additional parallelism the
	// engine finds comes from try-acquiring idle slots of the same pool.
	if err := se.srv.pool.Acquire(ctx); err != nil {
		return ctxError(err)
	}
	defer se.srv.pool.Release()

	rs, err := se.srv.execStatement(ctx, st, cs)
	mStatements.Inc()
	if err != nil {
		mStmtErrors.Inc()
		return execError(err)
	}
	return rs
}

// execCopy serves one MsgCopy bulk-ingest frame: the whole batch is
// applied and made durable atomically through the engine's ingest fast
// path. It takes a worker-pool slot and registers for out-of-band
// cancel exactly like a statement, but skips SQL parsing entirely —
// the frame already carries typed rows.
func (se *session) execCopy(rq *wire.Request) *wire.Response {
	if se.tx != nil {
		// The ingest path bypasses MVCC versioning, so its rows cannot
		// join a snapshot transaction; the typed code tells drivers not
		// to retry the same frame on this session.
		return &wire.Response{Type: wire.MsgError, Code: wire.CodeUnsupported,
			Err: "server: COPY inside an open transaction is not supported (COMMIT or ROLLBACK first)"}
	}
	ctx := engine.WithSession(se.ctx, se.label)
	var cancel context.CancelFunc
	if se.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, se.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	se.cancelMu.Lock()
	se.curCancel = cancel
	se.cancelMu.Unlock()
	defer func() {
		se.cancelMu.Lock()
		se.curCancel = nil
		se.cancelMu.Unlock()
		cancel()
	}()

	if err := se.srv.pool.Acquire(ctx); err != nil {
		return ctxError(err)
	}
	defer se.srv.pool.Release()

	res, err := se.srv.db.CopyRows(ctx, rq.Table, rq.Rows)
	mStatements.Inc()
	if err != nil {
		mStmtErrors.Inc()
		return execError(err)
	}
	return &wire.Response{Type: wire.MsgOK, Affected: res.Affected, Duration: res.Duration}
}

// execError maps an execution failure onto the wire's error codes.
func execError(err error) *wire.Response {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ctxError(err)
	case errors.Is(err, engine.ErrClosed):
		return &wire.Response{Type: wire.MsgError, Code: wire.CodeShutdown, Err: err.Error()}
	case engine.IsConflict(err):
		// First-updater-wins abort: the engine already rolled the
		// transaction back (explicit transactions stay open for
		// ROLLBACK; auto-commit statements exhausted their internal
		// retries). The client should retry from BEGIN.
		return &wire.Response{Type: wire.MsgError, Code: wire.CodeTxnConflict, Err: err.Error()}
	case engine.IsUnsupported(err):
		// Well-formed but the engine genuinely cannot execute it;
		// retrying unchanged will never succeed.
		return &wire.Response{Type: wire.MsgError, Code: wire.CodeUnsupported, Err: err.Error()}
	default:
		return sqlError(err)
	}
}

// execTxnCtl serves BEGIN/COMMIT/ROLLBACK. Transaction control runs on
// the executor goroutine without a worker-pool slot: BEGIN and ROLLBACK
// are instant, and COMMIT's cost is the WAL group-commit wait, which
// holds no engine resources a pool slot would meter.
func (se *session) execTxnCtl(kind sql.TxnKind) *wire.Response {
	switch kind {
	case sql.TxnBegin:
		if se.tx != nil {
			return sqlError(errors.New("server: transaction already open (COMMIT or ROLLBACK it first)"))
		}
		tx, err := se.srv.db.Begin(engine.WithSession(se.ctx, se.label))
		if err != nil {
			if errors.Is(err, engine.ErrClosed) {
				return &wire.Response{Type: wire.MsgError, Code: wire.CodeShutdown, Err: err.Error()}
			}
			return sqlError(err)
		}
		se.tx = tx
		return &wire.Response{Type: wire.MsgOK}
	case sql.TxnCommit:
		if se.tx == nil {
			return sqlError(errors.New("server: COMMIT outside a transaction"))
		}
		tx := se.tx
		se.tx = nil
		if err := tx.Commit(engine.WithSession(se.ctx, se.label)); err != nil {
			switch {
			case engine.IsConflict(err):
				return &wire.Response{Type: wire.MsgError, Code: wire.CodeTxnConflict, Err: err.Error()}
			case errors.Is(err, engine.ErrClosed):
				return &wire.Response{Type: wire.MsgError, Code: wire.CodeShutdown, Err: err.Error()}
			default:
				return sqlError(err)
			}
		}
		return &wire.Response{Type: wire.MsgOK}
	default: // sql.TxnRollback
		if se.tx != nil {
			se.tx.Rollback()
			se.tx = nil
		}
		// ROLLBACK outside a transaction is a no-op, not an error: it is
		// how drivers reset session state after seeing an ambiguous
		// failure.
		return &wire.Response{Type: wire.MsgOK}
	}
}

func sqlError(err error) *wire.Response {
	return &wire.Response{Type: wire.MsgError, Code: wire.CodeSQL, Err: err.Error()}
}

func ctxError(err error) *wire.Response {
	return &wire.Response{Type: wire.MsgError, Code: wire.CodeCancelled, Err: err.Error()}
}
