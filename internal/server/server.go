// Package server implements the hsqld network service: a TCP server
// speaking the internal/wire protocol in front of one engine.Database.
//
// Each accepted connection becomes a session with two goroutines: a
// reader that decodes request frames (intercepting out-of-band cancels)
// into a bounded pipeline queue, and an executor that serves the queue
// in order — so clients can pipeline requests while responses stay in
// request order. Statement execution passes through a server-wide
// bounded worker pool: at most Config.Workers statements run in the
// engine at once, excess requests wait in their session's queue, and a
// full queue stops the session's reader — backpressure propagates to
// the client's TCP window instead of accumulating goroutines or buffers.
// Admission control also caps concurrent sessions; connections beyond
// the cap are refused with a CodeTooBusy error frame.
//
// Prepared statements are tokenized once and cached server-wide keyed
// by statement text (sessions hold handles into the shared cache), then
// re-bound against the live catalog per execution, so they survive
// schema and layout changes. Every statement executes under a
// per-session context: Hello can set a per-statement deadline, and a
// Cancel frame aborts the in-flight statement at the engine's next
// batch boundary.
//
// Shutdown drains gracefully: the listener closes, session readers
// stop, executors finish every request already accepted (in-flight
// statements are hard-cancelled only if the drain deadline expires),
// and finally the engine is closed — which checkpoints durable state —
// so a drained shutdown never loses an acknowledged write.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/sql"
	"hybridstore/internal/wire"
)

// Config tunes a server.
type Config struct {
	// MaxSessions caps concurrent sessions; further connections are
	// refused with CodeTooBusy. 0 = 128.
	MaxSessions int
	// Workers sizes the shared worker pool that bounds both statements
	// executing concurrently and the morsel helpers each statement's
	// scans may recruit. 0 = the process-wide default pool
	// (GOMAXPROCS slots unless exec.SetDefaultSize overrode it).
	Workers int
	// QueueDepth bounds the pipelined requests buffered per session
	// before the reader stops reading (TCP backpressure). 0 = 32.
	QueueDepth int
	// MaxFrame caps accepted request frames and emitted response
	// frames. 0 = wire.DefaultMaxFrame.
	MaxFrame int
	// StmtCache caps the shared prepared-statement cache entries.
	// 0 = 256.
	StmtCache int
	// MaxStmtTimeout caps the per-statement deadline a session may
	// request in Hello; sessions asking for more (or for none) get
	// this. 0 = no cap.
	MaxStmtTimeout time.Duration
	// DrainTimeout bounds Shutdown's graceful phase when the caller's
	// context has no deadline. 0 = 5s.
	DrainTimeout time.Duration
	// Logf receives server diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.StmtCache <= 0 {
		c.StmtCache = 256
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server serves one engine.Database over TCP.
type Server struct {
	db  *engine.Database
	cfg Config
	ln  net.Listener

	// baseCtx is the parent of every session context; cancelling it is
	// the hard-stop that aborts in-flight statements.
	baseCtx context.Context
	cancel  context.CancelFunc

	// pool is the shared worker pool: one slot per statement executing
	// in the engine. The engine draws its intra-statement morsel
	// helpers from the same pool (Serve installs it via db.SetPool), so
	// statement admission and scan parallelism share one budget and a
	// loaded server degrades to one-core-per-statement instead of
	// oversubscribing.
	pool *exec.Pool

	cache *stmtCache

	draining atomic.Bool

	mu       sync.Mutex
	sessions map[uint64]*session
	nextSess uint64

	// stmtIDs issues prepared-statement handles unique across the whole
	// server, not per session: a handle from a dead session can never
	// alias a freshly issued one, so a driver retrying after a
	// reconnect gets CodeUnknownStmt instead of silently executing the
	// wrong statement.
	stmtIDs atomic.Uint64

	wg sync.WaitGroup // accept loop + sessions
}

// Serve listens on addr (e.g. ":7878" or "127.0.0.1:0") and starts
// accepting sessions against db. The caller owns db until Shutdown,
// which closes it.
func Serve(db *engine.Database, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	cfg = cfg.withDefaults()
	pool := exec.Default()
	if cfg.Workers > 0 {
		pool = exec.NewPool(cfg.Workers)
	}
	cfg.Workers = pool.Size()
	db.SetPool(pool)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:       db,
		cfg:      cfg,
		ln:       ln,
		baseCtx:  ctx,
		cancel:   cancel,
		pool:     pool,
		cache:    newStmtCache(cfg.StmtCache),
		sessions: make(map[uint64]*session),
	}
	s.registerGauges()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		if s.draining.Load() {
			mSessionsRefused.Inc()
			_ = wire.WriteResponse(conn, &wire.Response{
				Type: wire.MsgError, Code: wire.CodeShutdown, Err: "server is shutting down",
			})
			conn.Close()
			continue
		}
		s.mu.Lock()
		// Re-check draining under the lock: Shutdown sets the flag and
		// then stops every registered session's reader under this same
		// mutex, so a connection that slips past the first check is
		// either refused here or registered in time to be drained.
		if s.draining.Load() {
			s.mu.Unlock()
			_ = wire.WriteResponse(conn, &wire.Response{
				Type: wire.MsgError, Code: wire.CodeShutdown, Err: "server is shutting down",
			})
			conn.Close()
			continue
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.mu.Unlock()
			mSessionsRefused.Inc()
			_ = wire.WriteResponse(conn, &wire.Response{
				Type: wire.MsgError, Code: wire.CodeTooBusy,
				Err: fmt.Sprintf("server at its session limit (%d)", s.cfg.MaxSessions),
			})
			conn.Close()
			continue
		}
		s.nextSess++
		sess := newSession(s, s.nextSess, conn)
		s.sessions[sess.id] = sess
		s.mu.Unlock()
		mSessionsOpened.Inc()
		s.wg.Add(1)
		go sess.run()
	}
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.wg.Done()
}

// resolver adapts the engine catalog to the SQL parser.
func (s *Server) resolver(name string) *schema.Table {
	if e := s.db.Catalog().Table(name); e != nil {
		return e.Schema
	}
	return nil
}

// Sessions reports the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Shutdown drains the server and closes the engine (checkpointing
// durable state): the listener stops accepting, session readers are
// stopped, executors finish every request already read off the wire,
// and once every session has exited the database is closed. If ctx
// expires first (or, without a deadline, after Config.DrainTimeout),
// in-flight statements are hard-cancelled — they abort at the engine's
// next batch boundary — and connections are torn down before the
// engine closes.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("server: already shut down")
	}
	s.ln.Close()
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	// Stop every session's reader: queued requests still execute, new
	// frames are no longer read.
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.stopReading()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	graceful := true
	select {
	case <-done:
	case <-ctx.Done():
		graceful = false
		s.cancel() // abort in-flight statements at their next batch
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.cancel()
	err := s.db.Close()
	if err == nil && !graceful {
		err = fmt.Errorf("server: drain deadline expired; in-flight statements were cancelled")
	}
	return err
}

// cachedStmt is one shared statement-cache entry: the tokenized
// template plus the last plan built for it. Plans are generic
// (parameter-independent), so one plan serves every binding; it is
// stamped with the catalog version it was built against and rebuilt —
// not trusted — when the catalog has moved (DDL, stats refresh, layout
// migration all bump the version).
type cachedStmt struct {
	pp   *sql.Prepared
	plan atomic.Pointer[plan.Plan]
}

// stmtCache is the server-wide prepared-statement and plan cache:
// tokenized templates keyed by whitespace/case-normalized statement
// text, shared across sessions. Eviction is clock-ish: when full, an
// arbitrary entry makes room (statement texts in a workload are few;
// the cap is a memory bound, not a tuning surface).
type stmtCache struct {
	mu    sync.Mutex
	cap   int
	stmts map[string]*cachedStmt
	hits  atomic.Int64
	miss  atomic.Int64
	// planHits/planMiss count executions served by a cached plan vs.
	// those that (re)planned — the plan-cache effectiveness signal.
	planHits atomic.Int64
	planMiss atomic.Int64
}

func newStmtCache(cap int) *stmtCache {
	return &stmtCache{cap: cap, stmts: make(map[string]*cachedStmt)}
}

// normalizeSQL canonicalizes a statement text for cache keying:
// whitespace runs collapse to one space and characters outside
// single-quoted strings fold to lower case, so "SELECT  A FROM T" and
// "select a from t" share one cache entry (and one plan).
func normalizeSQL(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	inStr := false
	space := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '\'':
			inStr = true
			b.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}

// get returns the cached entry for text, preparing and caching it on a
// miss.
func (c *stmtCache) get(text string) (*cachedStmt, error) {
	key := normalizeSQL(text)
	c.mu.Lock()
	if cs, ok := c.stmts[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return cs, nil
	}
	c.mu.Unlock()
	pp, err := sql.Prepare(text)
	if err != nil {
		return nil, err
	}
	c.miss.Add(1)
	c.mu.Lock()
	if cs, ok := c.stmts[key]; ok { // lost the prepare race: share the winner
		c.mu.Unlock()
		return cs, nil
	}
	if len(c.stmts) >= c.cap {
		for k := range c.stmts {
			delete(c.stmts, k)
			break
		}
	}
	cs := &cachedStmt{pp: pp}
	c.stmts[key] = cs
	c.mu.Unlock()
	return cs, nil
}

// Stats reports cache hits and misses since start.
func (c *stmtCache) Stats() (hits, misses int64) { return c.hits.Load(), c.miss.Load() }

// size reports the number of cached statement entries.
func (c *stmtCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stmts)
}

// StmtCacheStats exposes the shared statement cache's hit/miss counters
// (observability for the hsqld daemon and tests).
func (s *Server) StmtCacheStats() (hits, misses int64) { return s.cache.Stats() }

// PlanCacheStats exposes the plan cache's effectiveness counters and
// current size: hits are executions that reused a cached, still-valid
// plan; misses planned (first execution, or invalidated by a catalog
// change).
func (s *Server) PlanCacheStats() (hits, misses int64, size int) {
	return s.cache.planHits.Load(), s.cache.planMiss.Load(), s.cache.size()
}

// execCachedRead executes a read statement through the plan cache: a
// cached plan stamped with the current catalog version is reused as-is;
// otherwise the statement is planned and the plan published for
// subsequent executions. DDL, statistics refresh and layout migration
// all bump the catalog version, so stale plans are never trusted.
func (s *Server) execCachedRead(ctx context.Context, cs *cachedStmt, q *query.Query) (*engine.Result, error) {
	if p := cs.plan.Load(); p != nil && p.CatalogVersion == s.db.Catalog().Version() {
		s.cache.planHits.Add(1)
		mPlanCacheHits.Inc()
		return s.db.ExecPlannedContext(ctx, q, p)
	}
	s.cache.planMiss.Add(1)
	mPlanCacheMiss.Inc()
	p, err := s.db.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	cs.plan.Store(p)
	return s.db.ExecPlannedContext(ctx, q, p)
}

// execStatement runs one bound statement against the engine under the
// statement context. cs is the statement's shared cache entry (nil for
// uncached paths); reads execute through its plan slot.
func (s *Server) execStatement(ctx context.Context, st *sql.Statement, cs *cachedStmt) (*wire.Response, error) {
	if st.CreateTable != nil {
		if err := s.db.CreateTable(st.CreateTable, catalog.RowStore); err != nil {
			return nil, err
		}
		return &wire.Response{Type: wire.MsgOK}, nil
	}
	var res *engine.Result
	var err error
	switch {
	case st.ShowMetrics:
		res = engine.MetricsResult()
	case st.Copy:
		// Bulk-ingest fast path: one atomic WAL record for the whole
		// batch. CopyRows itself rejects execution inside an explicit
		// transaction with a typed unsupported error.
		res, err = s.db.CopyRows(ctx, st.Query.Table, st.Query.Rows)
	case st.Explain:
		res, err = s.db.ExplainContext(ctx, st.Query)
	case st.ExplainAnalyze:
		res, err = s.db.ExplainAnalyzeContext(ctx, st.Query)
	case cs != nil && (st.Query.Kind == query.Select || st.Query.Kind == query.Aggregate):
		res, err = s.execCachedRead(ctx, cs, st.Query)
	default:
		res, err = s.db.ExecContext(ctx, st.Query)
	}
	if err != nil {
		return nil, err
	}
	if len(res.Cols) == 0 {
		return &wire.Response{Type: wire.MsgOK, Affected: res.Affected, Duration: res.Duration}, nil
	}
	return &wire.Response{
		Type: wire.MsgRows, Affected: res.Affected, Duration: res.Duration,
		Cols: res.Cols, Rows: res.Rows,
	}, nil
}
