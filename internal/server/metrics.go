package server

import "hybridstore/internal/metrics"

// Wire-protocol statement counters; latency distributions live on the
// engine side (hs_engine_read_seconds / hs_engine_dml_seconds).
var (
	mStatements = metrics.Default().Counter("hs_server_statements_total",
		"statements executed over the wire protocol")
	mStmtErrors = metrics.Default().Counter("hs_server_statement_errors_total",
		"wire statements that returned an error frame")
	mSessionsOpened = metrics.Default().Counter("hs_server_sessions_opened_total",
		"client sessions accepted")
	mSessionsRefused = metrics.Default().Counter("hs_server_sessions_refused_total",
		"connections refused by admission control (session limit or drain)")

	mPlanCacheHits = metrics.Default().Counter("hs_plan_cache_hits_total",
		"read executions served by a cached, still-valid plan")
	mPlanCacheMiss = metrics.Default().Counter("hs_plan_cache_misses_total",
		"read executions that (re)planned: first execution or catalog change")
)

// registerGauges binds the registry's pool/session gauges to this
// server. GaugeFunc re-registration replaces the callback, so when a
// process starts a new server (tests do) the freshest one owns them.
func (s *Server) registerGauges() {
	reg := metrics.Default()
	reg.GaugeFunc("hs_pool_slots",
		"worker pool size (statement admission + morsel helpers)",
		func() int64 { return int64(s.pool.Stats().Size) })
	reg.GaugeFunc("hs_pool_in_use",
		"worker pool slots currently held",
		func() int64 { return int64(s.pool.Stats().InUse) })
	reg.GaugeFunc("hs_pool_queued",
		"acquirers currently waiting for a pool slot",
		func() int64 { return int64(s.pool.Stats().Queued) })
	reg.GaugeFunc("hs_pool_queued_peak",
		"high-water mark of waiting acquirers",
		func() int64 { return int64(s.pool.Stats().PeakQueued) })
	reg.GaugeFunc("hs_pool_tasks_done",
		"pool slot acquisitions completed since start",
		func() int64 { return int64(s.pool.Stats().Done) })
	reg.GaugeFunc("hs_server_sessions",
		"live client sessions",
		func() int64 { return int64(s.Sessions()) })
	reg.GaugeFunc("hs_server_stmt_cache_hits",
		"shared prepared-statement cache hits",
		func() int64 { h, _ := s.cache.Stats(); return h })
	reg.GaugeFunc("hs_server_stmt_cache_misses",
		"shared prepared-statement cache misses",
		func() int64 { _, m := s.cache.Stats(); return m })
	reg.GaugeFunc("hs_plan_cache_size",
		"statement entries in the shared plan cache",
		func() int64 { return int64(s.cache.size()) })
}
