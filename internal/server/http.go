// Debug HTTP listener: Prometheus metrics, pprof and a JSON status
// endpoint for one running Server. It binds a second (typically
// loopback-only) address so operational scraping never competes with —
// or is exposed on — the client protocol port.
package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hybridstore/internal/engine"
	"hybridstore/internal/metrics"
)

// DebugServer is the HTTP side-listener started by ServeDebug.
//
//	GET /metrics          Prometheus text exposition of the process registry
//	GET /status           JSON snapshot: sessions, pool, stmt cache, tables
//	GET /debug/pprof/...  standard Go profiling endpoints
//	GET /slowlog          current slow-query threshold
//	PUT /slowlog?threshold=100ms   adjust it at runtime (0 or "off" disarms)
type DebugServer struct {
	ln    net.Listener
	http  *http.Server
	start time.Time
}

// ServeDebug starts the debug HTTP listener on addr (e.g.
// "127.0.0.1:7879"). It shares the server's engine and metrics registry
// and is independent of the wire-protocol listener's lifecycle: close it
// with Close.
func (s *Server) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		ds.writeStatus(w, s)
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		handleSlowlog(w, r, s.db)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds.http = &http.Server{Handler: mux}
	go ds.http.Serve(ln)
	return ds, nil
}

// Addr returns the debug listener's bound address.
func (ds *DebugServer) Addr() net.Addr { return ds.ln.Addr() }

// Close stops the debug listener.
func (ds *DebugServer) Close() error { return ds.http.Close() }

// statusPool is the pool section of /status.
type statusPool struct {
	Slots      int   `json:"slots"`
	InUse      int   `json:"in_use"`
	Queued     int   `json:"queued"`
	Done       int64 `json:"tasks_done"`
	PeakQueued int64 `json:"peak_queued"`
}

// statusTable is one table line of /status.
type statusTable struct {
	Name  string `json:"name"`
	Store string `json:"store"`
	Rows  int    `json:"rows"`
}

// statusTxns is the transaction section of /status, mirroring the
// hs_txn_* instruments.
type statusTxns struct {
	Active    int64 `json:"active"`
	Begins    int64 `json:"begins"`
	Commits   int64 `json:"commits"`
	Aborts    int64 `json:"aborts"`
	Conflicts int64 `json:"conflicts"`
}

type statusBody struct {
	Addr          string        `json:"addr"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Sessions      int           `json:"sessions"`
	Pool          statusPool    `json:"pool"`
	StmtCacheHits int64         `json:"stmt_cache_hits"`
	StmtCacheMiss int64         `json:"stmt_cache_misses"`
	PlanCacheHits int64         `json:"plan_cache_hits"`
	PlanCacheMiss int64         `json:"plan_cache_misses"`
	PlanCacheSize int           `json:"plan_cache_size"`
	Txns          statusTxns    `json:"txns"`
	SlowThreshold string        `json:"slow_query_threshold"`
	Tables        []statusTable `json:"tables"`
}

func (ds *DebugServer) writeStatus(w http.ResponseWriter, s *Server) {
	ps := s.pool.Stats()
	hits, misses := s.cache.Stats()
	pHits, pMiss, pSize := s.PlanCacheStats()
	ts := s.db.TxnStats()
	body := statusBody{
		Addr:          s.Addr().String(),
		UptimeSeconds: time.Since(ds.start).Seconds(),
		Sessions:      s.Sessions(),
		Pool: statusPool{
			Slots: ps.Size, InUse: ps.InUse, Queued: ps.Queued,
			Done: ps.Done, PeakQueued: ps.PeakQueued,
		},
		StmtCacheHits: hits,
		StmtCacheMiss: misses,
		PlanCacheHits: pHits,
		PlanCacheMiss: pMiss,
		PlanCacheSize: pSize,
		Txns: statusTxns{
			Active: ts.Active, Begins: ts.Begins, Commits: ts.Commits,
			Aborts: ts.Aborts, Conflicts: ts.Conflicts,
		},
		SlowThreshold: s.db.SlowQueryLogHandle().Threshold().String(),
		Tables:        []statusTable{},
	}
	for _, name := range s.db.Catalog().Names() {
		e := s.db.Catalog().Table(name)
		n, _ := s.db.Rows(name)
		body.Tables = append(body.Tables, statusTable{Name: name, Store: e.Store.String(), Rows: n})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// handleSlowlog reads (GET) or adjusts (PUT/POST ?threshold=100ms|off)
// the slow-query log threshold at runtime.
func handleSlowlog(w http.ResponseWriter, r *http.Request, db *engine.Database) {
	sl := db.SlowQueryLogHandle()
	if r.Method == http.MethodPut || r.Method == http.MethodPost {
		if sl == nil {
			http.Error(w, "no slow-query log attached (start hsqld with -slow-query)", http.StatusConflict)
			return
		}
		raw := r.URL.Query().Get("threshold")
		var d time.Duration
		if raw != "off" && raw != "0" {
			var err error
			d, err = time.ParseDuration(raw)
			if err != nil || d < 0 {
				http.Error(w, "bad threshold (want e.g. 100ms, or off)", http.StatusBadRequest)
				return
			}
		}
		sl.SetThreshold(d)
	}
	fmt.Fprintf(w, "%s\n", sl.Threshold())
}
