package server

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/value"
	"hybridstore/internal/wire"
)

// TestCopyEndToEnd drives the bulk-ingest path over TCP: the streaming
// driver API, the COPY SQL statement, duplicate-key rejection, and the
// typed unsupported error for COPY inside a transaction.
func TestCopyEndToEnd(t *testing.T) {
	srv := startServer(t, engine.New(), Config{})
	defer shutdown(t, srv)
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "copy-e2e"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Exec(ctx, "CREATE TABLE kv (k BIGINT NOT NULL, grp INTEGER, v VARCHAR, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}

	// Streaming driver API: enough rows to flush several frames.
	const n = 10000
	cp, err := c.CopyIn(ctx, "kv", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := cp.Send(value.NewBigint(int64(i)), value.NewBigint(int64(i%7)), value.NewVarchar(fmt.Sprintf("v%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	total, err := cp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("CopyIn acknowledged %d rows, want %d", total, n)
	}
	res, err := c.Query(ctx, "SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != n {
		t.Fatalf("COUNT(*) = %d after CopyIn, want %d", got, n)
	}
	// Close is idempotent and keeps reporting the same outcome.
	if again, err := cp.Close(); err != nil || again != n {
		t.Fatalf("second Close = (%d, %v)", again, err)
	}

	// The COPY SQL statement takes the same fast path.
	r, err := c.Exec(ctx, "COPY kv FROM VALUES (100000, 1, 'a'), (100001, 2, 'b')")
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Fatalf("COPY affected %d rows, want 2", r.Affected)
	}

	// A duplicate primary key rejects the whole batch atomically.
	if _, err := c.Exec(ctx, "COPY kv FROM VALUES (200000, 1, 'x'), (0, 1, 'dup')"); err == nil {
		t.Fatal("duplicate key in a COPY batch was accepted")
	}
	res, err = c.Query(ctx, "SELECT COUNT(*) FROM kv WHERE k = 200000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("failed COPY batch applied some of its rows")
	}

	// COPY inside an explicit transaction is a typed unsupported error —
	// on both the statement path and the dedicated frame path — and the
	// session survives it.
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tx.Exec(ctx, "COPY kv FROM VALUES (300000, 1, 'y')")
	var se *client.Error
	if !errors.As(err, &se) || se.Code != wire.CodeUnsupported {
		t.Fatalf("COPY statement inside txn: got %v, want CodeUnsupported", err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	tx, err = c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := c.CopyIn(ctx, "kv", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Send(value.NewBigint(300001), value.NewBigint(1), value.NewVarchar("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := cp2.Close(); !errors.As(err, &se) || se.Code != wire.CodeUnsupported {
		t.Fatalf("copy frame inside txn: got %v, want CodeUnsupported", err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("session died after rejected COPY: %v", err)
	}
}
