package server

import (
	"context"
	"strings"
	"testing"

	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/value"
)

// TestTxnEndToEnd drives multi-statement transactions over the wire:
// visibility across sessions, conflict surfacing as a retryable error,
// and the session staying usable through commit/rollback cycles.
func TestTxnEndToEnd(t *testing.T) {
	srv := startServer(t, engine.New(), Config{})
	defer shutdown(t, srv)
	ctx := context.Background()
	c1, err := client.Dial(srv.Addr().String(), client.Options{Name: "txn-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(srv.Addr().String(), client.Options{Name: "txn-2"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := c1.Exec(ctx, "CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c1.Exec(ctx, "INSERT INTO kv VALUES (?, ?)",
			value.NewBigint(int64(i)), value.NewBigint(0)); err != nil {
			t.Fatal(err)
		}
	}

	count := func(c *client.Conn) int {
		t.Helper()
		res, err := c.Query(ctx, "SELECT k FROM kv")
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}

	// Uncommitted writes are invisible to the other session; commit
	// publishes them atomically.
	tx, err := c1.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO kv VALUES (10, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, "UPDATE kv SET v = 5 WHERE k = 0"); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Query(ctx, "SELECT v FROM kv WHERE k = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("txn does not see its own write: %v", res.Rows[0][0])
	}
	if n := count(c2); n != 4 {
		t.Fatalf("uncommitted insert leaked: other session sees %d rows", n)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if n := count(c2); n != 5 {
		t.Fatalf("after commit: other session sees %d rows", n)
	}

	// Rollback discards everything and the session keeps working.
	tx, err = c1.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, "DELETE FROM kv WHERE k = 10"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if n := count(c1); n != 5 {
		t.Fatalf("rollback lost rows: %d", n)
	}

	// Write-write conflict: exactly one winner, the loser gets a
	// retryable CodeTxnConflict and its transaction is gone.
	txA, err := c1.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	txB, err := c2.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Exec(ctx, "UPDATE kv SET v = 100 WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	_, errB := txB.Exec(ctx, "UPDATE kv SET v = 200 WHERE k = 1")
	if !client.IsRetryable(errB) {
		t.Fatalf("conflicting update: got %v, want retryable txn conflict", errB)
	}
	// The aborted transaction rejects further statements until rolled back.
	if _, err := txB.Exec(ctx, "SELECT k FROM kv"); err == nil {
		t.Fatal("statement accepted inside an aborted transaction")
	}
	if err := txB.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if err := txA.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = c2.Query(ctx, "SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("winner's write lost: v = %v", res.Rows[0][0])
	}

	// Both sessions stay healthy for plain statements afterwards.
	if err := c1.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTxnStatementRules pins the session-level transaction-control
// contract: BEGIN nesting, COMMIT outside a transaction, bare ROLLBACK,
// and DDL inside a transaction.
func TestTxnStatementRules(t *testing.T) {
	srv := startServer(t, engine.New(), Config{})
	defer shutdown(t, srv)
	ctx := context.Background()
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "txn-rules"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(ctx, "CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}

	// ROLLBACK outside a transaction is a harmless no-op.
	if _, err := c.Exec(ctx, "ROLLBACK"); err != nil {
		t.Fatalf("bare ROLLBACK: %v", err)
	}
	// COMMIT outside a transaction is an error.
	if _, err := c.Exec(ctx, "COMMIT"); err == nil {
		t.Fatal("COMMIT outside a transaction accepted")
	}

	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Nested BEGIN is rejected without killing the open transaction.
	if _, err := tx.Exec(ctx, "BEGIN"); err == nil {
		t.Fatal("nested BEGIN accepted")
	}
	// DDL inside a transaction is rejected; the transaction survives.
	if _, err := tx.Exec(ctx, "CREATE TABLE t2 (k BIGINT NOT NULL, PRIMARY KEY (k))"); err == nil {
		t.Fatal("DDL inside a transaction accepted")
	} else if !strings.Contains(err.Error(), "transaction") {
		t.Fatalf("DDL rejection message: %v", err)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO kv VALUES (1, 1)"); err != nil {
		t.Fatalf("transaction unusable after rejected statements: %v", err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("committed insert missing: %d rows", len(res.Rows))
	}

	// An empty transaction commits cleanly.
	tx, err = c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("empty commit: %v", err)
	}

	// Begin while a transaction is open on the same conn is a client error.
	tx, err = c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(ctx); err == nil {
		t.Fatal("second Begin on one connection accepted")
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}
