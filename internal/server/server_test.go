package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func startServer(t testing.TB, db *engine.Database, cfg Config) *Server {
	t.Helper()
	srv, err := Serve(db, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func shutdown(t testing.TB, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv := startServer(t, engine.New(), Config{})
	defer shutdown(t, srv)
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "CREATE TABLE kv (k BIGINT NOT NULL, grp INTEGER, v VARCHAR, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	// Prepared insert with parameters.
	ins, err := c.Prepare(ctx, "INSERT INTO kv VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 3 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	for i := 0; i < 100; i++ {
		res, err := ins.Exec(ctx, value.NewBigint(int64(i)), value.NewBigint(int64(i%4)), value.NewVarchar(fmt.Sprintf("v%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 1 {
			t.Fatalf("affected = %d", res.Affected)
		}
	}
	// Duplicate key errors surface as SQL errors, not dead sessions.
	if _, err := ins.Exec(ctx, value.NewBigint(7), value.NewBigint(0), value.NewVarchar("dup")); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("session died after statement error: %v", err)
	}

	// Remote ORDER BY + LIMIT with a parameterized predicate.
	res, err := c.Query(ctx, "SELECT k, v FROM kv WHERE grp = ? ORDER BY k DESC LIMIT 3", value.NewBigint(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 97 || res.Rows[2][0].Int() != 89 {
		t.Fatalf("ordered rows: %v", res.Rows)
	}
	// Aggregate.
	res, err = c.Query(ctx, "SELECT grp, COUNT(*) FROM kv GROUP BY grp ORDER BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][1].Int() != 25 {
		t.Fatalf("aggregate rows: %v", res.Rows)
	}
	// Update through the one-shot path (cached server-side).
	for i := 0; i < 3; i++ {
		if _, err := c.Exec(ctx, "UPDATE kv SET v = ? WHERE k = ?", value.NewVarchar("upd"), value.NewBigint(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The three identical one-shot UPDATE texts share one cache entry:
	// one miss, two hits (prepared-statement executions bypass the
	// cache entirely — that is the point of the handle).
	hits, misses := srv.StmtCacheStats()
	if hits < 2 || misses == 0 {
		t.Fatalf("statement cache counters off: hits=%d misses=%d", hits, misses)
	}
	if err := ins.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Statement errors: unknown handle after close.
	if _, err := ins.Exec(ctx, value.NewBigint(1000), value.NewBigint(0), value.NewVarchar("x")); err == nil {
		// Stmt re-prepares transparently after Close, which is also fine.
		t.Log("stmt transparently re-prepared after Close")
	}
}

// analyticsTable loads n rows into a fresh engine directly (no wire
// overhead), so cancellation tests get a scan long enough to hit
// mid-flight even on single-CPU machines where the cancel goroutine is
// scheduled with ~10ms granularity.
func analyticsTable(t testing.TB, n int) *engine.Database {
	t.Helper()
	db := engine.New()
	sch := schema.MustNew("big", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "x", Type: value.Double},
	}, "id")
	if err := db.CreateTable(sch, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	batch := make([][]value.Value, 0, 8192)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "big", Rows: batch}); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	for i := 0; i < n; i++ {
		batch = append(batch, []value.Value{
			value.NewBigint(int64(i)), value.NewInt(int64(i % 32)), value.NewDouble(float64(i) + 0.5),
		})
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	return db
}

func TestServerCancelAbortsAnalyticalScan(t *testing.T) {
	db := analyticsTable(t, 1_500_000)
	srv := startServer(t, db, Config{})
	defer shutdown(t, srv)
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "cancel"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const aggSQL = "SELECT grp, SUM(x), MIN(x), MAX(x) FROM big WHERE x >= 0 GROUP BY grp"

	// Time an uncancelled analytical scan for scale.
	start := time.Now()
	if _, err := c.Query(ctx, aggSQL); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// Now cancel it in flight via the out-of-band Cancel frame.
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(full / 10)
		cancel()
	}()
	start = time.Now()
	_, err = c.Query(cctx, aggSQL)
	aborted := time.Since(start)
	if err == nil {
		t.Skip("query finished before the cancel landed (scan too fast on this machine)")
	}
	if !client.IsCancelled(err) && !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	// The abort must land well below the full scan time: one batch
	// boundary is ~1024 rows out of 1.5M, so the only slack we allow is
	// scheduling noise.
	if aborted > full*3/4 {
		t.Fatalf("cancel did not abort the scan promptly: full=%v aborted=%v", full, aborted)
	}
	// The session survives and serves the next statement.
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	// Server-side statement deadlines: a session that asks for a tiny
	// per-statement timeout gets its scan aborted without any client
	// round trip.
	tc, err := client.Dial(srv.Addr().String(), client.Options{Name: "deadline", StatementTimeout: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	start = time.Now()
	_, err = tc.Query(ctx, aggSQL)
	if err == nil {
		t.Skip("scan beat the 2ms statement deadline")
	}
	if !client.IsCancelled(err) {
		t.Fatalf("want deadline cancellation, got %v", err)
	}
	if d := time.Since(start); d > full*3/4 {
		t.Fatalf("deadline did not abort promptly: %v of %v", d, full)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	srv := startServer(t, engine.New(), Config{MaxSessions: 2})
	defer shutdown(t, srv)
	c1, err := client.Dial(srv.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(srv.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = client.Dial(srv.Addr().String(), client.Options{NoReconnect: true})
	if err == nil {
		t.Fatal("third session admitted past MaxSessions=2")
	}
	var se *client.Error
	if !errors.As(err, &se) {
		t.Fatalf("want a server error, got %v", err)
	}
	// Freeing a slot admits again.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := client.Dial(srv.Addr().String(), client.Options{})
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerDrainShutdown(t *testing.T) {
	dir := t.TempDir()
	db, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, db, Config{})
	addr := srv.Addr().String()
	c, err := client.Dial(addr, client.Options{NoReconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Exec(ctx, "CREATE TABLE d (k BIGINT NOT NULL, v VARCHAR, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "INSERT INTO d VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	shutdown(t, srv)
	// New connections are refused.
	if _, err := client.Dial(addr, client.Options{NoReconnect: true}); err == nil {
		t.Fatal("connection accepted after shutdown")
	}
	// The drain checkpointed through engine.Close: reopening shows the
	// data with an empty WAL tail.
	re, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := re.Rows("d")
	if err != nil || n != 2 {
		t.Fatalf("rows after drain+reopen: %d, %v", n, err)
	}
	re.Close()
	c.Close()
}

func TestServerPipelining(t *testing.T) {
	srv := startServer(t, engine.New(), Config{Workers: 2})
	defer shutdown(t, srv)
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(ctx, "CREATE TABLE p (k BIGINT NOT NULL, v INTEGER, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	// Many goroutines share one connection; requests pipeline and every
	// response matches its request.
	const goroutines = 8
	const perG = 50
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				k := int64(g*perG + i)
				res, err := c.Exec(ctx, "INSERT INTO p VALUES (?, ?)", value.NewBigint(k), value.NewBigint(k%7))
				if err != nil {
					errCh <- fmt.Errorf("insert %d: %w", k, err)
					return
				}
				if res.Affected != 1 {
					errCh <- fmt.Errorf("insert %d: affected %d", k, res.Affected)
					return
				}
			}
			errCh <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Query(ctx, "SELECT COUNT(*) FROM p")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
}

func TestClientReconnectAndRePrepare(t *testing.T) {
	db := engine.New()
	srv := startServer(t, db, Config{})
	addr := srv.Addr().String()
	c, err := client.Dial(addr, client.Options{Name: "re"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(ctx, "CREATE TABLE r (k BIGINT NOT NULL, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare(ctx, "INSERT INTO r VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(ctx, value.NewBigint(1)); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address with the same engine.
	shutdownNoClose := func(s *Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx) // closes the (in-memory) engine: only a flag
	}
	shutdownNoClose(srv)
	// The engine's closed flag survives in db; serve a fresh engine and
	// recreate state to prove the client side reconnects cleanly.
	db2 := engine.New()
	rsch := schema.MustNew("r", []schema.Column{{Name: "k", Type: value.Bigint}}, "k")
	if err := db2.CreateTable(rsch, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(db2, addr, Config{})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer shutdown(t, srv2)

	// The first call after the outage may fail (connection lost mid-air
	// is reported, not retried, for write safety); the one after must
	// transparently redial and re-prepare.
	var ok bool
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := st.Exec(ctx, value.NewBigint(int64(10+attempt))); err == nil {
			ok = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ok {
		t.Fatal("prepared statement never recovered after reconnect")
	}
	n, err := db2.Rows("r")
	if err != nil || n == 0 {
		t.Fatalf("rows after reconnect: %d, %v", n, err)
	}
}
