package server

import (
	"context"
	"sync"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/client"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// planCacheTable loads a small analytics table directly into a fresh
// engine for plan-cache tests.
func planCacheTable(t testing.TB, n int) *engine.Database {
	t.Helper()
	db := engine.New()
	sch := schema.MustNew("pc", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "x", Type: value.Integer},
	}, "id")
	if err := db.CreateTable(sch, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = []value.Value{
			value.NewBigint(int64(i)), value.NewInt(int64(i % 8)), value.NewInt(int64(i % 100)),
		}
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "pc", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlanCacheHitsMissesAndDDLInvalidation(t *testing.T) {
	db := planCacheTable(t, 1000)
	srv := startServer(t, db, Config{})
	defer shutdown(t, srv)
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "plancache"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	st, err := c.Prepare(ctx, "SELECT id, x FROM pc WHERE grp = ? ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := srv.PlanCacheStats()
	for i := 0; i < 5; i++ {
		res, err := st.Exec(ctx, value.NewInt(int64(i%3)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("exec %d: %d rows", i, len(res.Rows))
		}
	}
	h1, m1, size := srv.PlanCacheStats()
	if m1-m0 != 1 {
		t.Fatalf("plan misses = %d, want 1 (first execution plans)", m1-m0)
	}
	if h1-h0 != 4 {
		t.Fatalf("plan hits = %d, want 4 (plans are parameter-independent)", h1-h0)
	}
	if size < 1 {
		t.Fatalf("plan cache size = %d", size)
	}

	// The cache keys on normalized text: a differently-spelled duplicate
	// shares the entry and its cached plan.
	st2, err := c.Prepare(ctx, "select  ID, x  from PC where grp = ? order by id limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Exec(ctx, value.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	h2, m2, _ := srv.PlanCacheStats()
	if m2 != m1 || h2 != h1+1 {
		t.Fatalf("normalized duplicate did not reuse the plan: hits %d->%d misses %d->%d", h1, h2, m1, m2)
	}

	// DDL bumps the catalog version: the cached plan is stale, the next
	// execution replans exactly once and caches the fresh plan.
	if _, err := c.Exec(ctx, "CREATE TABLE other (k BIGINT NOT NULL, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(ctx, value.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(ctx, value.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	h3, m3, _ := srv.PlanCacheStats()
	if m3-m2 != 1 {
		t.Fatalf("plan misses after DDL = %d, want exactly 1", m3-m2)
	}
	if h3-h2 != 1 {
		t.Fatalf("plan hits after DDL = %d, want 1", h3-h2)
	}
}

// TestPlanCacheUnderLayoutChurn executes cached reads while the table
// migrates back and forth between row and column layouts. Every cutover
// bumps the catalog version, so stale plans must be detected and
// replaced — never executed against the wrong store — and results stay
// correct throughout. Run under -race this also exercises the
// cachedStmt plan pointer's concurrent load/store discipline.
func TestPlanCacheUnderLayoutChurn(t *testing.T) {
	const rows = 2000
	db := planCacheTable(t, rows)
	srv := startServer(t, db, Config{MaxSessions: 8})
	defer shutdown(t, srv)
	c, err := client.Dial(srv.Addr().String(), client.Options{Name: "churn"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	agg, err := c.Prepare(ctx, "SELECT COUNT(*) FROM pc")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := c.Prepare(ctx, "SELECT id FROM pc WHERE x < ? ORDER BY id DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stores := []catalog.StoreKind{catalog.ColumnStore, catalog.RowStore}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.MigrateLayout("pc", stores[i%2], nil); err != nil {
				t.Errorf("migrate %d: %v", i, err)
				return
			}
		}
	}()

	for i := 0; i < 200; i++ {
		res, err := agg.Exec(ctx)
		if err != nil {
			t.Fatalf("count exec %d: %v", i, err)
		}
		if got := res.Rows[0][0].Int(); got != rows {
			t.Fatalf("count exec %d: %d rows, want %d", i, got, rows)
		}
		res, err = sel.Exec(ctx, value.NewInt(50))
		if err != nil {
			t.Fatalf("select exec %d: %v", i, err)
		}
		if len(res.Rows) != 3 || res.Rows[0][0].Int() != 1949 {
			t.Fatalf("select exec %d: %v", i, res.Rows)
		}
	}
	close(stop)
	wg.Wait()

	// The churn must have invalidated plans: misses beyond the two
	// initial compilations.
	_, misses, _ := srv.PlanCacheStats()
	if misses <= 2 {
		t.Fatalf("misses = %d: layout churn never invalidated a plan", misses)
	}

	// With the catalog quiet again, the cache must converge back to
	// serving hits: one replan at most, then reuse.
	h0, _, _ := srv.PlanCacheStats()
	for i := 0; i < 5; i++ {
		if _, err := agg.Exec(ctx); err != nil {
			t.Fatal(err)
		}
	}
	h1, _, _ := srv.PlanCacheStats()
	if h1-h0 < 4 {
		t.Fatalf("post-churn hits = %d, want >= 4", h1-h0)
	}
}
