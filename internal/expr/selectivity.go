package expr

import "hybridstore/internal/value"

// ColumnStats supplies the per-column statistics needed for selectivity
// estimation. The catalog's table statistics implement it.
type ColumnStats interface {
	// Rows returns the table cardinality.
	Rows() int
	// Distinct returns the number of distinct values in column col
	// (0 when unknown).
	Distinct(col int) int
	// MinMax returns the value range of column col; ok is false when
	// unknown or non-numeric.
	MinMax(col int) (lo, hi value.Value, ok bool)
}

// defaultSel is the selectivity assumed when statistics give no signal.
const defaultSel = 0.1

// EstimateSelectivity predicts the fraction of rows matching the predicate
// using textbook independence assumptions: equality is 1/NDV, ranges are
// interpolated over [min, max], conjunctions multiply and disjunctions
// combine by inclusion–exclusion. The estimate is clamped to [0, 1].
func EstimateSelectivity(p Predicate, st ColumnStats) float64 {
	return clamp01(estimate(p, st))
}

func estimate(p Predicate, st ColumnStats) float64 {
	switch q := p.(type) {
	case nil, True:
		return 1
	case *Comparison:
		return estimateCmp(q, st)
	case *Between:
		return rangeFraction(q.Col, &q.Lo, &q.Hi, st)
	case *In:
		d := st.Distinct(q.Col)
		if d <= 0 {
			return defaultSel
		}
		s := float64(len(q.Vals)) / float64(d)
		return clamp01(s)
	case *And:
		s := 1.0
		for _, sub := range q.Preds {
			s *= estimate(sub, st)
		}
		return s
	case *Or:
		inv := 1.0
		for _, sub := range q.Preds {
			inv *= 1 - estimate(sub, st)
		}
		return 1 - inv
	case *Not:
		return 1 - estimate(q.P, st)
	default:
		return defaultSel
	}
}

func estimateCmp(c *Comparison, st ColumnStats) float64 {
	switch c.Op {
	case Eq:
		d := st.Distinct(c.Col)
		if d <= 0 {
			return defaultSel
		}
		return 1 / float64(d)
	case Ne:
		d := st.Distinct(c.Col)
		if d <= 0 {
			return 1 - defaultSel
		}
		return 1 - 1/float64(d)
	case Lt, Le:
		return rangeFraction(c.Col, nil, &c.Val, st)
	case Gt, Ge:
		return rangeFraction(c.Col, &c.Val, nil, st)
	default:
		return defaultSel
	}
}

// rangeFraction interpolates the fraction of [min, max] covered by
// [lo, hi], assuming a uniform distribution.
func rangeFraction(col int, lo, hi *value.Value, st ColumnStats) float64 {
	mn, mx, ok := st.MinMax(col)
	if !ok || mn.IsNull() || mx.IsNull() {
		return defaultSel
	}
	lof, hif := mn.Float(), mx.Float()
	width := hif - lof
	if width <= 0 {
		// Single-valued column: either the bound covers it or not.
		v := mn.Float()
		if lo != nil && lo.Float() > v {
			return 0
		}
		if hi != nil && hi.Float() < v {
			return 0
		}
		return 1
	}
	a, b := lof, hif
	if lo != nil {
		a = lo.Float()
	}
	if hi != nil {
		b = hi.Float()
	}
	if a < lof {
		a = lof
	}
	if b > hif {
		b = hif
	}
	if b < a {
		return 0
	}
	return clamp01((b - a) / width)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
