package expr

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hybridstore/internal/value"
)

func row(vals ...int64) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestCmpOpApply(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{Eq, 0, true}, {Eq, 1, false},
		{Ne, 0, false}, {Ne, -1, true},
		{Lt, -1, true}, {Lt, 0, false},
		{Le, 0, true}, {Le, 1, false},
		{Gt, 1, true}, {Gt, 0, false},
		{Ge, 0, true}, {Ge, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.cmp); got != c.want {
			t.Errorf("%v.Apply(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestComparison(t *testing.T) {
	p := &Comparison{Col: 1, Op: Gt, Val: value.NewInt(10)}
	if !p.Matches(row(0, 11)) {
		t.Error("11 > 10 should match")
	}
	if p.Matches(row(0, 10)) {
		t.Error("10 > 10 should not match")
	}
	if p.Matches([]value.Value{value.NewInt(0), value.Null(value.Integer)}) {
		t.Error("NULL comparison should be false")
	}
	if !strings.Contains(p.String(), ">") {
		t.Errorf("String: %q", p.String())
	}
}

func TestBetween(t *testing.T) {
	p := &Between{Col: 0, Lo: value.NewInt(5), Hi: value.NewInt(10)}
	for v, want := range map[int64]bool{4: false, 5: true, 7: true, 10: true, 11: false} {
		if got := p.Matches(row(v)); got != want {
			t.Errorf("BETWEEN match(%d) = %v, want %v", v, got, want)
		}
	}
	if p.Matches([]value.Value{value.Null(value.Integer)}) {
		t.Error("NULL BETWEEN should be false")
	}
}

func TestIn(t *testing.T) {
	p := &In{Col: 0, Vals: []value.Value{value.NewInt(1), value.NewInt(3)}}
	if !p.Matches(row(3)) || p.Matches(row(2)) {
		t.Error("IN broken")
	}
	if p.Matches([]value.Value{value.Null(value.Integer)}) {
		t.Error("NULL IN should be false")
	}
	if !strings.Contains(p.String(), "IN (1, 3)") {
		t.Errorf("String: %q", p.String())
	}
}

func TestBooleanCombinators(t *testing.T) {
	a := &Comparison{Col: 0, Op: Ge, Val: value.NewInt(5)}
	b := &Comparison{Col: 1, Op: Eq, Val: value.NewInt(1)}
	and := &And{Preds: []Predicate{a, b}}
	or := &Or{Preds: []Predicate{a, b}}
	not := &Not{P: a}

	if !and.Matches(row(5, 1)) || and.Matches(row(5, 2)) || and.Matches(row(4, 1)) {
		t.Error("And broken")
	}
	if !or.Matches(row(5, 2)) || !or.Matches(row(0, 1)) || or.Matches(row(0, 0)) {
		t.Error("Or broken")
	}
	if not.Matches(row(5)) || !not.Matches(row(4)) {
		t.Error("Not broken")
	}
	if (&And{}).Matches(row(1)) != true {
		t.Error("empty And should be true")
	}
	if (&Or{}).Matches(row(1)) != false {
		t.Error("empty Or should be false")
	}
	if !(True{}).Matches(nil) {
		t.Error("True should match")
	}
}

func TestColumnSet(t *testing.T) {
	p := &And{Preds: []Predicate{
		&Comparison{Col: 3, Op: Eq, Val: value.NewInt(1)},
		&Or{Preds: []Predicate{
			&Comparison{Col: 1, Op: Gt, Val: value.NewInt(2)},
			&Between{Col: 3, Lo: value.NewInt(0), Hi: value.NewInt(9)},
		}},
	}}
	got := ColumnSet(p)
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("ColumnSet = %v", got)
	}
	if ColumnSet(nil) != nil {
		t.Error("nil predicate columns")
	}
	if ColumnSet(True{}) != nil {
		t.Error("True has no columns")
	}
}

func TestConjuncts(t *testing.T) {
	a := &Comparison{Col: 0, Op: Eq, Val: value.NewInt(1)}
	b := &Comparison{Col: 1, Op: Eq, Val: value.NewInt(2)}
	c := &Comparison{Col: 2, Op: Eq, Val: value.NewInt(3)}
	nested := &And{Preds: []Predicate{a, &And{Preds: []Predicate{b, c}}}}
	got := Conjuncts(nested)
	if len(got) != 3 {
		t.Errorf("Conjuncts = %d, want 3", len(got))
	}
	if got := Conjuncts(a); len(got) != 1 || got[0] != Predicate(a) {
		t.Error("single conjunct broken")
	}
	if Conjuncts(nil) != nil || Conjuncts(True{}) != nil {
		t.Error("empty conjuncts broken")
	}
}

func TestEqualityOnAndPKEquality(t *testing.T) {
	p := &And{Preds: []Predicate{
		&Comparison{Col: 0, Op: Eq, Val: value.NewInt(7)},
		&Comparison{Col: 2, Op: Eq, Val: value.NewInt(9)},
		&Comparison{Col: 1, Op: Gt, Val: value.NewInt(0)},
	}}
	if v, ok := EqualityOn(p, 0); !ok || v.Int() != 7 {
		t.Errorf("EqualityOn(0) = %v, %v", v, ok)
	}
	if _, ok := EqualityOn(p, 1); ok {
		t.Error("Gt is not equality")
	}
	key, ok := PKEquality(p, []int{0, 2})
	if !ok || key[0].Int() != 7 || key[1].Int() != 9 {
		t.Errorf("PKEquality = %v, %v", key, ok)
	}
	if _, ok := PKEquality(p, []int{0, 1}); ok {
		t.Error("incomplete PK equality accepted")
	}
	if _, ok := PKEquality(p, nil); ok {
		t.Error("empty PK should not match")
	}
}

func TestRangeOn(t *testing.T) {
	p := &And{Preds: []Predicate{
		&Comparison{Col: 0, Op: Ge, Val: value.NewInt(10)},
		&Comparison{Col: 0, Op: Lt, Val: value.NewInt(20)},
		&Comparison{Col: 1, Op: Eq, Val: value.NewInt(5)},
	}}
	r, ok := RangeOn(p, 0)
	if !ok || r.Lo == nil || r.Hi == nil || r.Lo.Int() != 10 || r.Hi.Int() != 20 {
		t.Errorf("RangeOn(0) = %+v, %v", r, ok)
	}
	r, ok = RangeOn(p, 1)
	if !ok || r.Lo.Int() != 5 || r.Hi.Int() != 5 {
		t.Errorf("RangeOn(1) = %+v, %v", r, ok)
	}
	if _, ok := RangeOn(p, 2); ok {
		t.Error("unconstrained column reported a range")
	}
	b := &Between{Col: 0, Lo: value.NewInt(1), Hi: value.NewInt(3)}
	r, ok = RangeOn(b, 0)
	if !ok || r.Lo.Int() != 1 || r.Hi.Int() != 3 {
		t.Errorf("RangeOn(between) = %+v", r)
	}
}

func TestRemap(t *testing.T) {
	p := &And{Preds: []Predicate{
		&Comparison{Col: 2, Op: Eq, Val: value.NewInt(1)},
		&Not{P: &Between{Col: 4, Lo: value.NewInt(0), Hi: value.NewInt(9)}},
	}}
	mapped, ok := Remap(p, map[int]int{2: 0, 4: 1})
	if !ok {
		t.Fatal("Remap failed")
	}
	if !mapped.Matches(row(1, 100)) {
		t.Error("remapped predicate should match (1, 100)")
	}
	if mapped.Matches(row(1, 5)) {
		t.Error("remapped predicate should reject (1, 5)")
	}
	if _, ok := Remap(p, map[int]int{2: 0}); ok {
		t.Error("partial mapping should fail")
	}
	if m, ok := Remap(True{}, nil); !ok || !m.Matches(nil) {
		t.Error("True remap broken")
	}
	or := &Or{Preds: []Predicate{&In{Col: 1, Vals: []value.Value{value.NewInt(1)}}}}
	if _, ok := Remap(or, map[int]int{1: 0}); !ok {
		t.Error("Or/In remap should succeed")
	}
}

// Property: And of a predicate with itself is equivalent to the predicate.
func TestAndIdempotentProperty(t *testing.T) {
	f := func(threshold, v int64) bool {
		p := &Comparison{Col: 0, Op: Lt, Val: value.NewInt(threshold)}
		and := &And{Preds: []Predicate{p, p}}
		r := row(v)
		return p.Matches(r) == and.Matches(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Not(Not(p)) is equivalent to p.
func TestDoubleNegationProperty(t *testing.T) {
	f := func(threshold, v int64) bool {
		p := &Comparison{Col: 0, Op: Ge, Val: value.NewInt(threshold)}
		nn := &Not{P: &Not{P: p}}
		r := row(v)
		return p.Matches(r) == nn.Matches(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type fakeStats struct {
	rows     int
	distinct map[int]int
	min, max map[int]int64
}

func (f *fakeStats) Rows() int { return f.rows }
func (f *fakeStats) Distinct(col int) int {
	return f.distinct[col]
}
func (f *fakeStats) MinMax(col int) (value.Value, value.Value, bool) {
	mn, ok := f.min[col]
	if !ok {
		return value.Value{}, value.Value{}, false
	}
	return value.NewInt(mn), value.NewInt(f.max[col]), true
}

func TestEstimateSelectivity(t *testing.T) {
	st := &fakeStats{
		rows:     1000,
		distinct: map[int]int{0: 100, 1: 10},
		min:      map[int]int64{0: 0, 1: 0},
		max:      map[int]int64{0: 999, 1: 9},
	}
	approx := func(got, want float64) bool {
		d := got - want
		return d < 0.02 && d > -0.02
	}
	if s := EstimateSelectivity(&Comparison{Col: 0, Op: Eq, Val: value.NewInt(5)}, st); !approx(s, 0.01) {
		t.Errorf("eq selectivity = %v", s)
	}
	if s := EstimateSelectivity(&Comparison{Col: 1, Op: Lt, Val: value.NewInt(3)}, st); !approx(s, 3.0/9) {
		t.Errorf("lt selectivity = %v", s)
	}
	if s := EstimateSelectivity(&Between{Col: 0, Lo: value.NewInt(0), Hi: value.NewInt(499)}, st); !approx(s, 0.5) {
		t.Errorf("between selectivity = %v", s)
	}
	and := &And{Preds: []Predicate{
		&Comparison{Col: 0, Op: Eq, Val: value.NewInt(5)},
		&Comparison{Col: 1, Op: Eq, Val: value.NewInt(5)},
	}}
	if s := EstimateSelectivity(and, st); !approx(s, 0.001) {
		t.Errorf("and selectivity = %v", s)
	}
	or := &Or{Preds: []Predicate{
		&Comparison{Col: 1, Op: Eq, Val: value.NewInt(1)},
		&Comparison{Col: 1, Op: Eq, Val: value.NewInt(2)},
	}}
	if s := EstimateSelectivity(or, st); !approx(s, 0.19) {
		t.Errorf("or selectivity = %v", s)
	}
	if s := EstimateSelectivity(&Not{P: &Comparison{Col: 1, Op: Eq, Val: value.NewInt(1)}}, st); !approx(s, 0.9) {
		t.Errorf("not selectivity = %v", s)
	}
	if s := EstimateSelectivity(True{}, st); s != 1 {
		t.Errorf("true selectivity = %v", s)
	}
	if s := EstimateSelectivity(&In{Col: 1, Vals: []value.Value{value.NewInt(1), value.NewInt(2)}}, st); !approx(s, 0.2) {
		t.Errorf("in selectivity = %v", s)
	}
	// Unknown stats fall back to the default.
	if s := EstimateSelectivity(&Comparison{Col: 9, Op: Eq, Val: value.NewInt(0)}, st); s != 0.1 {
		t.Errorf("default selectivity = %v", s)
	}
	// Range on a column without min/max falls back too.
	if s := EstimateSelectivity(&Comparison{Col: 9, Op: Lt, Val: value.NewInt(0)}, st); s != 0.1 {
		t.Errorf("default range selectivity = %v", s)
	}
}

func TestEstimateSelectivityClamped(t *testing.T) {
	st := &fakeStats{rows: 10, distinct: map[int]int{0: 2}, min: map[int]int64{0: 5}, max: map[int]int64{0: 5}}
	// Degenerate single-value range.
	if s := EstimateSelectivity(&Comparison{Col: 0, Op: Le, Val: value.NewInt(10)}, st); s != 1 {
		t.Errorf("degenerate range = %v", s)
	}
	if s := EstimateSelectivity(&Comparison{Col: 0, Op: Ge, Val: value.NewInt(10)}, st); s != 0 {
		t.Errorf("impossible range = %v", s)
	}
	in := &In{Col: 0, Vals: []value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3)}}
	if s := EstimateSelectivity(in, st); s != 1 {
		t.Errorf("IN clamp = %v", s)
	}
}
