// Package expr defines the predicate language used by queries: comparisons
// of columns against constants combined with AND/OR/NOT, plus BETWEEN and
// IN. Predicates are kept in this analyzable normal form (rather than an
// opaque expression tree) so that the storage layers can push them down to
// dictionary codes and the advisor can extract query characteristics such
// as selectivity and the set of referenced attributes.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"hybridstore/internal/value"
)

// CmpOp is a comparison operator.
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Apply evaluates the operator on a comparison result from value.Compare.
func (op CmpOp) Apply(cmp int) bool {
	switch op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// Predicate is a boolean filter over a row. Rows are positional value
// slices; column references are indexes into the row.
type Predicate interface {
	// Matches reports whether the row satisfies the predicate. NULL
	// comparisons evaluate to false (SQL three-valued logic collapsed).
	Matches(row []value.Value) bool
	// Columns appends the referenced column indexes to dst.
	Columns(dst []int) []int
	String() string
}

// True is the always-true predicate (no WHERE clause).
type True struct{}

func (True) Matches([]value.Value) bool { return true }
func (True) Columns(dst []int) []int    { return dst }
func (True) String() string             { return "TRUE" }

// Comparison compares a column against a constant.
type Comparison struct {
	Col int
	Op  CmpOp
	Val value.Value
}

func (c *Comparison) Matches(row []value.Value) bool {
	v := row[c.Col]
	if v.IsNull() || c.Val.IsNull() {
		return false
	}
	return c.Op.Apply(value.Compare(v, c.Val))
}

func (c *Comparison) Columns(dst []int) []int { return append(dst, c.Col) }

func (c *Comparison) String() string {
	return fmt.Sprintf("col%d %s %s", c.Col, c.Op, c.Val)
}

// Between matches Lo <= col <= Hi (inclusive).
type Between struct {
	Col    int
	Lo, Hi value.Value
}

func (b *Between) Matches(row []value.Value) bool {
	v := row[b.Col]
	if v.IsNull() || b.Lo.IsNull() || b.Hi.IsNull() {
		return false
	}
	return value.Compare(v, b.Lo) >= 0 && value.Compare(v, b.Hi) <= 0
}

func (b *Between) Columns(dst []int) []int { return append(dst, b.Col) }

func (b *Between) String() string {
	return fmt.Sprintf("col%d BETWEEN %s AND %s", b.Col, b.Lo, b.Hi)
}

// In matches col = any of Vals.
type In struct {
	Col  int
	Vals []value.Value
}

func (in *In) Matches(row []value.Value) bool {
	v := row[in.Col]
	if v.IsNull() {
		return false
	}
	for _, w := range in.Vals {
		if !w.IsNull() && value.Compare(v, w) == 0 {
			return true
		}
	}
	return false
}

func (in *In) Columns(dst []int) []int { return append(dst, in.Col) }

func (in *In) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("col%d IN (%s)", in.Col, strings.Join(parts, ", "))
}

// And is the conjunction of its sub-predicates; an empty And is true.
type And struct {
	Preds []Predicate
}

func (a *And) Matches(row []value.Value) bool {
	for _, p := range a.Preds {
		if !p.Matches(row) {
			return false
		}
	}
	return true
}

func (a *And) Columns(dst []int) []int {
	for _, p := range a.Preds {
		dst = p.Columns(dst)
	}
	return dst
}

func (a *And) String() string {
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is the disjunction of its sub-predicates; an empty Or is false.
type Or struct {
	Preds []Predicate
}

func (o *Or) Matches(row []value.Value) bool {
	for _, p := range o.Preds {
		if p.Matches(row) {
			return true
		}
	}
	return false
}

func (o *Or) Columns(dst []int) []int {
	for _, p := range o.Preds {
		dst = p.Columns(dst)
	}
	return dst
}

func (o *Or) String() string {
	parts := make([]string, len(o.Preds))
	for i, p := range o.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Not negates a predicate.
type Not struct {
	P Predicate
}

func (n *Not) Matches(row []value.Value) bool { return !n.P.Matches(row) }
func (n *Not) Columns(dst []int) []int        { return n.P.Columns(dst) }
func (n *Not) String() string                 { return "NOT " + n.P.String() }

// ColumnSet returns the sorted, de-duplicated set of columns referenced by
// the predicate.
func ColumnSet(p Predicate) []int {
	if p == nil {
		return nil
	}
	cols := p.Columns(nil)
	if len(cols) == 0 {
		return nil
	}
	sort.Ints(cols)
	out := cols[:1]
	for _, c := range cols[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// Conjuncts flattens nested ANDs into a list of conjuncts. Any other
// predicate is returned as a single conjunct.
func Conjuncts(p Predicate) []Predicate {
	if p == nil {
		return nil
	}
	if _, ok := p.(True); ok {
		return nil
	}
	a, ok := p.(*And)
	if !ok {
		return []Predicate{p}
	}
	var out []Predicate
	for _, sub := range a.Preds {
		out = append(out, Conjuncts(sub)...)
	}
	return out
}

// EqualityOn returns the constant the predicate pins column col to, if the
// predicate implies col = const (as a top-level conjunct).
func EqualityOn(p Predicate, col int) (value.Value, bool) {
	for _, c := range Conjuncts(p) {
		if cmp, ok := c.(*Comparison); ok && cmp.Col == col && cmp.Op == Eq {
			return cmp.Val, true
		}
	}
	return value.Value{}, false
}

// PKEquality reports whether the predicate pins every primary-key column to
// a constant; if so it returns the key values in PK order. This is what the
// row store uses to answer point queries from its hash index and what the
// paper's cost model treats as an indexed point access.
func PKEquality(p Predicate, pk []int) ([]value.Value, bool) {
	if len(pk) == 0 {
		return nil, false
	}
	key := make([]value.Value, len(pk))
	for i, col := range pk {
		v, ok := EqualityOn(p, col)
		if !ok {
			return nil, false
		}
		key[i] = v
	}
	return key, true
}

// Range describes the interval a predicate restricts a column to. Nil
// bounds are unbounded; both bounds are inclusive.
type Range struct {
	Lo, Hi *value.Value
}

// RangeOn extracts the tightest [lo, hi] interval the top-level conjuncts
// impose on column col. The boolean result is false when the predicate does
// not constrain the column at all. Exclusive bounds are widened to their
// inclusive neighbours only for integer-like types; otherwise the exclusive
// bound is kept as-is (a safe over-approximation for routing decisions).
func RangeOn(p Predicate, col int) (Range, bool) {
	var r Range
	found := false
	setLo := func(v value.Value) {
		if r.Lo == nil || value.Compare(v, *r.Lo) > 0 {
			vv := v
			r.Lo = &vv
		}
	}
	setHi := func(v value.Value) {
		if r.Hi == nil || value.Compare(v, *r.Hi) < 0 {
			vv := v
			r.Hi = &vv
		}
	}
	for _, c := range Conjuncts(p) {
		switch q := c.(type) {
		case *Comparison:
			if q.Col != col || q.Val.IsNull() {
				continue
			}
			switch q.Op {
			case Eq:
				setLo(q.Val)
				setHi(q.Val)
				found = true
			case Lt, Le:
				setHi(q.Val)
				found = true
			case Gt, Ge:
				setLo(q.Val)
				found = true
			}
		case *Between:
			if q.Col != col {
				continue
			}
			setLo(q.Lo)
			setHi(q.Hi)
			found = true
		}
	}
	return r, found
}

// Remap rewrites the predicate's column references through mapping
// (old index → new index). It returns false if any referenced column is
// missing from the mapping; the engine uses this to decide whether a
// predicate can be pushed into a vertical partition.
func Remap(p Predicate, mapping map[int]int) (Predicate, bool) {
	switch q := p.(type) {
	case nil:
		return nil, true
	case True:
		return q, true
	case *Comparison:
		n, ok := mapping[q.Col]
		if !ok {
			return nil, false
		}
		return &Comparison{Col: n, Op: q.Op, Val: q.Val}, true
	case *Between:
		n, ok := mapping[q.Col]
		if !ok {
			return nil, false
		}
		return &Between{Col: n, Lo: q.Lo, Hi: q.Hi}, true
	case *In:
		n, ok := mapping[q.Col]
		if !ok {
			return nil, false
		}
		return &In{Col: n, Vals: q.Vals}, true
	case *And:
		out := &And{Preds: make([]Predicate, len(q.Preds))}
		for i, sub := range q.Preds {
			r, ok := Remap(sub, mapping)
			if !ok {
				return nil, false
			}
			out.Preds[i] = r
		}
		return out, true
	case *Or:
		out := &Or{Preds: make([]Predicate, len(q.Preds))}
		for i, sub := range q.Preds {
			r, ok := Remap(sub, mapping)
			if !ok {
				return nil, false
			}
			out.Preds[i] = r
		}
		return out, true
	case *Not:
		r, ok := Remap(q.P, mapping)
		if !ok {
			return nil, false
		}
		return &Not{P: r}, true
	default:
		return nil, false
	}
}
