// Package metrics is the engine's dependency-free instrumentation
// registry: atomic counters, gauges (including callback gauges) and
// bounded exponential-bucket histograms with quantile estimation,
// exported in Prometheus text exposition format and as name/value rows
// for the SHOW METRICS statement.
//
// The package sits below every other internal package (it imports only
// the standard library), so the WAL, the exec pool, the storage layers
// and the server can all record into one process-wide registry without
// import cycles. Recording is wait-free — a counter Add is one atomic
// add, a histogram Observe is two — so instruments are safe to touch
// from scan inner loops and fsync paths alike.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a value that can go up and down.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// gaugeFunc is a gauge whose value is computed by a callback at
// collection time — used for values another subsystem already tracks
// (pool queue depth, live session count) so they need no duplicate
// bookkeeping.
type gaugeFunc struct {
	name string
	help string
	fn   func() int64
}

// Histogram is a bounded exponential-bucket latency/size histogram.
// Buckets grow by a fixed ratio from a minimum bound, so a fixed, small
// number of buckets (default 40) spans nanoseconds to minutes with
// ~20% relative quantile error — plenty for p50/p99 reporting, and the
// whole structure is a flat array of atomics with no allocation on the
// record path.
type Histogram struct {
	name   string
	help   string
	unit   string // exposition hint, e.g. "seconds" (values recorded in ns)
	min    float64
	ratio  float64
	counts []atomic.Int64 // len = buckets + 1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64 // sum of raw observed values
}

const (
	histBuckets = 40
	histMin     = 1000.0 // 1µs in ns: everything below lands in bucket 0
	histRatio   = 1.6
)

// Observe records one value (typically nanoseconds for latency
// histograms, raw counts for size histograms).
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucket(float64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func (h *Histogram) bucket(v float64) int {
	if v < h.min {
		return 0
	}
	b := int(math.Log(v/h.min)/math.Log(h.ratio)) + 1
	if b >= len(h.counts) {
		return len(h.counts) - 1
	}
	return b
}

// upperBound returns the exclusive upper bound of bucket b (inf for the
// overflow bucket).
func (h *Histogram) upperBound(b int) float64 {
	if b >= len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.min * math.Pow(h.ratio, float64(b))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q < 1) of the observed values
// from the bucket counts, returning 0 when the histogram is empty. The
// estimate is the upper bound of the bucket the quantile falls in, so
// it errs high by at most one bucket ratio.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := range h.counts {
		seen += h.counts[b].Load()
		if seen >= rank {
			if b == len(h.counts)-1 {
				// Overflow bucket: the mean of what landed there is the
				// least-wrong point estimate available.
				return float64(h.sum.Load()) / float64(total)
			}
			return h.upperBound(b)
		}
	}
	return h.upperBound(len(h.counts) - 1)
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Reset zeroes the histogram. Benchmark harnesses use it to scope
// quantiles to one experiment; it is not atomic against concurrent
// Observe calls (a racing observation may straddle the wipe), which is
// acceptable for that use and for nothing stricter.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Registry holds named instruments and renders them. Registration is
// idempotent by name: asking for an existing name returns the existing
// instrument, so packages can declare their metrics independently
// without coordinating init order.
type Registry struct {
	mu     sync.Mutex
	order  []string
	byName map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]any{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every subsystem records into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) lookup(name string) (any, bool) {
	m, ok := r.byName[name]
	return m, ok
}

func (r *Registry) register(name string, m any) {
	r.byName[name] = m
	r.order = append(r.order, name)
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		if c, ok := m.(*Counter); ok {
			return c
		}
		panic(fmt.Sprintf("metrics: %s already registered with a different type", name))
	}
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		if g, ok := m.(*Gauge); ok {
			return g
		}
		panic(fmt.Sprintf("metrics: %s already registered with a different type", name))
	}
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// GaugeFunc registers a callback gauge under name. Re-registering an
// existing name replaces the callback (the latest owner wins — a server
// restart within one process re-binds its pool gauges).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		if g, ok := m.(*gaugeFunc); ok {
			g.fn = fn
			return
		}
		panic(fmt.Sprintf("metrics: %s already registered with a different type", name))
	}
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

// NewHistogram creates a standalone, unregistered histogram — for
// short-lived measurement (the benchmark harness computes per-sweep
// p50/p99 from one) where registering into a process-wide registry
// would accumulate across runs.
func NewHistogram() *Histogram {
	h := &Histogram{min: histMin, ratio: histRatio}
	h.counts = make([]atomic.Int64, histBuckets+1)
	return h
}

// Histogram returns the histogram registered under name, creating it on
// first use. unit is an exposition hint only ("seconds" histograms are
// recorded in nanoseconds and scaled on export).
func (r *Registry) Histogram(name, help, unit string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		if h, ok := m.(*Histogram); ok {
			return h
		}
		panic(fmt.Sprintf("metrics: %s already registered with a different type", name))
	}
	h := &Histogram{
		name: name, help: help, unit: unit,
		min: histMin, ratio: histRatio,
	}
	h.counts = make([]atomic.Int64, histBuckets+1)
	r.register(name, h)
	return h
}

// snapshot returns the instruments in registration order.
func (r *Registry) snapshot() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]any, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// scale converts a recorded value to exposition units: histograms with
// unit "seconds" record nanoseconds internally.
func (h *Histogram) scale(v float64) float64 {
	if h.unit == "seconds" {
		return v / 1e9
	}
	return v
}

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (version 0.0.4): HELP/TYPE comments, counter
// and gauge samples, and full histogram series (cumulative _bucket
// lines with le labels, _sum, _count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		var err error
		switch m := m.(type) {
		case *Counter:
			err = writeSample(w, m.name, m.help, "counter", float64(m.Value()))
		case *Gauge:
			err = writeSample(w, m.name, m.help, "gauge", float64(m.Value()))
		case *gaugeFunc:
			err = writeSample(w, m.name, m.help, "gauge", float64(m.fn()))
		case *Histogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name, help, typ string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, formatValue(v))
	return err
}

func writeHistogram(w io.Writer, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
		return err
	}
	var cum int64
	for b := range h.counts {
		cum += h.counts[b].Load()
		le := "+Inf"
		if b < len(h.counts)-1 {
			le = formatValue(h.scale(h.upperBound(b)))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		h.name, formatValue(h.scale(float64(h.Sum()))), h.name, h.Count())
	return err
}

// formatValue renders a float without exponent noise for integral
// values, which keeps counters readable.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// Row is one name/value pair for SHOW METRICS output. Histograms expand
// into count/sum/p50/p99 rows.
type Row struct {
	Name  string
	Value float64
}

// Rows renders every instrument as sorted name/value rows; histograms
// expand into _count, _sum, _p50 and _p99 pseudo-samples (in exposition
// units).
func (r *Registry) Rows() []Row {
	var rows []Row
	for _, m := range r.snapshot() {
		switch m := m.(type) {
		case *Counter:
			rows = append(rows, Row{m.name, float64(m.Value())})
		case *Gauge:
			rows = append(rows, Row{m.name, float64(m.Value())})
		case *gaugeFunc:
			rows = append(rows, Row{m.name, float64(m.fn())})
		case *Histogram:
			rows = append(rows,
				Row{m.name + "_count", float64(m.Count())},
				Row{m.name + "_sum", m.scale(float64(m.Sum()))},
				Row{m.name + "_p50", m.scale(m.Quantile(0.50))},
				Row{m.name + "_p99", m.scale(m.Quantile(0.99))},
			)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}
