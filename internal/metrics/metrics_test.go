package metrics

import (
	"bufio"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if c2 := r.Counter("test_ops_total", "ops"); c2 != c {
		t.Fatalf("re-registration returned a different counter")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency", "latency", "seconds")
	// 1000 observations spread 1ms..100ms uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 100_000) // 0.1ms steps in ns
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	// True p50 = 50ms, p99 = 99ms; bucket estimates err high by at most
	// one ratio step (1.6x).
	if p50 < 50e6*0.9 || p50 > 50e6*1.7 {
		t.Fatalf("p50 = %g ns, want ~5e7 within bucket error", p50)
	}
	if p99 < 99e6*0.9 || p99 > 99e6*1.7 {
		t.Fatalf("p99 = %g ns, want ~9.9e7 within bucket error", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	h2 := r.Histogram("test_empty", "", "")
	if q := h2.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc", "", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// sampleLine matches a valid Prometheus text-format sample line.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fmt_ops_total", "total ops").Add(42)
	r.Gauge("fmt_depth", "queue depth").Set(3)
	r.GaugeFunc("fmt_live", "live things", func() int64 { return 9 })
	h := r.Histogram("fmt_latency_seconds", "latency", "seconds")
	h.Observe(1_500_000)
	h.Observe(2_000_000_000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	sc := bufio.NewScanner(strings.NewReader(out))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no sample lines written")
	}
	for _, want := range []string{
		"fmt_ops_total 42", "fmt_depth 3", "fmt_live 9",
		"fmt_latency_seconds_count 2", `fmt_latency_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRows(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_ops", "").Add(1)
	r.Gauge("a_depth", "").Set(2)
	h := r.Histogram("m_lat", "", "")
	h.Observe(100)
	rows := r.Rows()
	if len(rows) != 6 { // counter + gauge + 4 histogram rows
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Name < rows[i-1].Name {
			t.Fatalf("rows not sorted: %q after %q", rows[i].Name, rows[i-1].Name)
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono", "", "")
	last := -1
	for v := 1.0; v < 1e12; v *= 2 {
		b := h.bucket(v)
		if b < last {
			t.Fatalf("bucket(%g) = %d < previous %d", v, b, last)
		}
		last = b
	}
	if !math.IsInf(h.upperBound(len(h.counts)-1), 1) {
		t.Fatal("overflow bucket bound must be +Inf")
	}
}
