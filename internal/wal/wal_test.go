package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func testSchema(t *testing.T) *schema.Table {
	t.Helper()
	return schema.MustNew("orders", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "region", Type: value.Varchar, Nullable: true},
		{Name: "amount", Type: value.Double, Nullable: true},
		{Name: "day", Type: value.Date},
	}, "id")
}

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.NewInt(-42),
		value.NewBigint(1 << 60),
		value.NewDouble(3.25),
		value.NewDouble(-0.0),
		value.NewVarchar(""),
		value.NewVarchar("héllo"),
		value.NewDate(19000),
		value.Null(value.Integer),
		value.Null(value.Varchar),
		value.Null(value.Double),
	}
	e := NewEncoder()
	for _, v := range vals {
		e.Value(v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		got := d.Value()
		if !value.Equal(got, want) || got.Type() != want.Type() {
			t.Fatalf("value %d: got %v (%s), want %v (%s)", i, got, got.Type(), want, want.Type())
		}
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestPredicateRoundTrip(t *testing.T) {
	preds := []expr.Predicate{
		nil,
		expr.True{},
		&expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(1.5)},
		&expr.Between{Col: 3, Lo: value.NewDate(10), Hi: value.NewDate(20)},
		&expr.In{Col: 1, Vals: []value.Value{value.NewVarchar("eu"), value.NewVarchar("us")}},
		&expr.Not{P: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)}},
		&expr.And{Preds: []expr.Predicate{
			&expr.Comparison{Col: 0, Op: expr.Gt, Val: value.NewBigint(5)},
			&expr.Or{Preds: []expr.Predicate{
				&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewVarchar("eu")},
				&expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewDouble(9)},
			}},
		}},
	}
	for i, p := range preds {
		e := NewEncoder()
		e.Predicate(p)
		d := NewDecoder(e.Bytes())
		got := d.Predicate()
		if err := d.Err(); err != nil {
			t.Fatalf("pred %d: %v", i, err)
		}
		switch {
		case p == nil:
			if got != nil {
				t.Fatalf("pred %d: want nil, got %v", i, got)
			}
		case got == nil || got.String() != p.String():
			t.Fatalf("pred %d: got %v, want %v", i, got, p)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	sch := testSchema(t)
	spec := &catalog.PartitionSpec{
		Horizontal: &catalog.HorizontalSpec{
			SplitCol: 3, SplitVal: value.NewDate(15000),
			HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
		},
		Vertical: &catalog.VerticalSpec{RowCols: []int{0, 1}, ColCols: []int{0, 2, 3}},
	}
	recs := []*Record{
		{Kind: RecCreateTable, Table: "orders", Schema: sch, Store: catalog.Partitioned, Spec: spec},
		{Kind: RecCreateTable, Table: "orders", Schema: sch, Store: catalog.RowStore},
		{Kind: RecDropTable, Table: "orders"},
		{Kind: RecCreateIndex, Table: "orders", Col: 1},
		{Kind: RecSetLayout, Table: "orders", Store: catalog.ColumnStore},
		{Kind: RecInsert, Table: "orders", Width: 4, Rows: [][]value.Value{
			{value.NewBigint(1), value.NewVarchar("eu"), value.NewDouble(10), value.NewDate(100)},
			{value.NewBigint(2), value.Null(value.Varchar), value.Null(value.Double), value.NewDate(200)},
		}},
		{Kind: RecUpdate, Table: "orders",
			Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
			Set:  map[int]value.Value{2: value.NewDouble(99), 1: value.NewVarchar("us")}},
		{Kind: RecDelete, Table: "orders", Pred: &expr.Comparison{Col: 3, Op: expr.Lt, Val: value.NewDate(150)}},
		{Kind: RecDelete, Table: "orders"}, // no predicate: delete all
	}
	for i, rec := range recs {
		e := NewEncoder()
		rec.encode(e)
		d := NewDecoder(e.Bytes())
		got, err := decodeRecord(d)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != rec.Kind || got.Table != rec.Table || got.Col != rec.Col || got.Store != rec.Store {
			t.Fatalf("record %d: header mismatch: %+v vs %+v", i, got, rec)
		}
		if (rec.Spec == nil) != (got.Spec == nil) || (rec.Spec != nil && got.Spec.String() != rec.Spec.String()) {
			t.Fatalf("record %d: spec mismatch", i)
		}
		if rec.Schema != nil {
			if got.Schema == nil || got.Schema.Name != rec.Schema.Name ||
				got.Schema.NumColumns() != rec.Schema.NumColumns() ||
				!reflect.DeepEqual(got.Schema.PrimaryKey, rec.Schema.PrimaryKey) {
				t.Fatalf("record %d: schema mismatch", i)
			}
		}
		if !reflect.DeepEqual(got.Rows, rec.Rows) {
			t.Fatalf("record %d: rows mismatch", i)
		}
		if (rec.Pred == nil) != (got.Pred == nil) || (rec.Pred != nil && got.Pred.String() != rec.Pred.String()) {
			t.Fatalf("record %d: pred mismatch", i)
		}
		if !reflect.DeepEqual(got.Set, rec.Set) {
			t.Fatalf("record %d: set mismatch", i)
		}
	}
}

func insertRec(id int64) *Record {
	return &Record{Kind: RecInsert, Table: "t", Width: 1,
		Rows: [][]value.Value{{value.NewBigint(id)}}}
}

func TestAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	var ids []int64
	info, err := Recover(path, func(seq uint64, rec *Record) error {
		seqs = append(seqs, seq)
		ids = append(ids, rec.Rows[0][0].Int())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != n || info.MaxSeq != n {
		t.Fatalf("recovered %d records, maxSeq %d; want %d", info.Records, info.MaxSeq, n)
	}
	for i := range seqs {
		if seqs[i] != uint64(i+1) || ids[i] != int64(i) {
			t.Fatalf("record %d: seq %d id %d", i, seqs[i], ids[i])
		}
	}
	st, _ := os.Stat(path)
	if info.ValidLen != st.Size() {
		t.Fatalf("validLen %d != file size %d", info.ValidLen, st.Size())
	}
}

func TestRecoverTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the tail: every truncation point must recover a
	// clean prefix, never error.
	for cut := 1; cut < 30; cut++ {
		torn := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := Recover(torn, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if info.Records >= 10 || info.Records < 5 {
			t.Fatalf("cut %d: recovered %d records", cut, info.Records)
		}
	}
	// Flip a byte mid-file: replay stops at the corrupt frame.
	flipped := append([]byte(nil), data...)
	flipped[len(data)/2] ^= 0xff
	corrupt := filepath.Join(t.TempDir(), "corrupt.log")
	if err := os.WriteFile(corrupt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Recover(corrupt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records >= 10 {
		t.Fatalf("corrupt mid-file frame not detected (%d records)", info.Records)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644) // tear the last frame
	info, err := Recover(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 4 {
		t.Fatalf("recovered %d records, want 4", info.Records)
	}
	// Reopen at the valid prefix and append: the torn frame must not
	// shadow the new one.
	l, err = Open(path, info.MaxSeq+1, info.ValidLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(insertRec(99)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var ids []int64
	info, err = Recover(path, func(seq uint64, rec *Record) error {
		ids = append(ids, rec.Rows[0][0].Int())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 5 || ids[4] != 99 || info.MaxSeq != 5 {
		t.Fatalf("after reopen: %d records, ids %v, maxSeq %d", info.Records, ids, info.MaxSeq)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 1, 0, Options{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(insertRec(int64(w*per + i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	info, err := Recover(path, func(seq uint64, rec *Record) error {
		seen[rec.Rows[0][0].Int()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != writers*per || len(seen) != writers*per {
		t.Fatalf("recovered %d records (%d distinct), want %d", info.Records, len(seen), writers*per)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(insertRec(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	// Sequence numbers keep rising across the reset.
	if got := l.NextSeq(); got != 6 {
		t.Fatalf("NextSeq after reset = %d, want 6", got)
	}
	if err := l.Append(insertRec(7)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	info, err := Recover(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1 || info.MaxSeq != 6 {
		t.Fatalf("after reset: %d records, maxSeq %d", info.Records, info.MaxSeq)
	}
}

func TestEnqueueWaitSplit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 3; i++ {
		seq, err := l.Enqueue(insertRec(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	for _, s := range seqs {
		if err := l.WaitDurable(s); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	info, err := Recover(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 {
		t.Fatalf("recovered %d records, want 3", info.Records)
	}
}
