package wal

import (
	"fmt"

	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// RecordKind identifies a logical log record.
type RecordKind uint8

const (
	// RecCreateTable registers a table (schema, store, partitioning).
	RecCreateTable RecordKind = iota + 1
	// RecDropTable removes a table.
	RecDropTable
	// RecCreateIndex declares a secondary index on a column.
	RecCreateIndex
	// RecSetLayout moves a table to a new placement. Completed
	// MigrateLayout swaps log this record too: a migration is durable
	// only once its swap record is on disk, so a crash mid-migration
	// replays as if the migration never started.
	RecSetLayout
	// RecInsert appends rows (already coerced to the schema's types).
	RecInsert
	// RecUpdate assigns values to rows matching a predicate.
	RecUpdate
	// RecDelete removes rows matching a predicate.
	RecDelete
	// RecTxnCommit is one committed transaction's atomic effect: for
	// each touched table, the primary keys whose rows the transaction
	// superseded or deleted, and the full images of the rows it left
	// live. The record is physical (net row images, not the statements
	// that produced them) so replay order only needs to respect commit
	// order — which the engine guarantees equals log order. A crash
	// before the record is durable loses the whole transaction; there
	// is no partial replay.
	RecTxnCommit
	// RecCopy appends one bulk-ingest batch (already coerced rows). It
	// is encoded exactly like RecInsert but kept distinct so recovery
	// and tooling can tell streamed batches from single statements; one
	// record covers a whole client frame, making the batch atomic under
	// crash recovery — a torn tail replays every row of the batch or
	// none of them.
	RecCopy
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecCreateTable:
		return "CREATE-TABLE"
	case RecDropTable:
		return "DROP-TABLE"
	case RecCreateIndex:
		return "CREATE-INDEX"
	case RecSetLayout:
		return "SET-LAYOUT"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecTxnCommit:
		return "TXN-COMMIT"
	case RecCopy:
		return "COPY"
	default:
		return fmt.Sprintf("RecordKind(%d)", uint8(k))
	}
}

// Record is one logical WAL entry. Only the fields relevant to Kind are
// populated; the encoding writes exactly those.
type Record struct {
	Kind  RecordKind
	Table string

	// DDL payload.
	Schema *schema.Table          // RecCreateTable
	Store  catalog.StoreKind      // RecCreateTable, RecSetLayout
	Spec   *catalog.PartitionSpec // RecCreateTable, RecSetLayout
	Col    int                    // RecCreateIndex

	// DML payload. Width is the table arity, needed to frame Rows.
	Width int
	Rows  [][]value.Value     // RecInsert
	Pred  expr.Predicate      // RecUpdate, RecDelete
	Set   map[int]value.Value // RecUpdate

	// Txn is the per-table payload of a RecTxnCommit.
	Txn []TxnTable
}

// TxnTable is one table's slice of a committed transaction: delete the
// rows carrying DelPKs, then insert Rows. DelPKs lists every primary key
// the transaction wrote (including keys of rows it re-inserts), so
// replay is delete-then-insert without needing the pre-state.
type TxnTable struct {
	Name    string
	Width   int // table arity, frames Rows
	PKWidth int // primary-key arity, frames DelPKs
	DelPKs  [][]value.Value
	Rows    [][]value.Value
}

// encode appends the record payload to the encoder.
func (r *Record) encode(e *Encoder) {
	e.Byte(byte(r.Kind))
	e.String(r.Table)
	switch r.Kind {
	case RecCreateTable:
		e.Schema(r.Schema)
		e.Byte(byte(r.Store))
		e.Spec(r.Spec)
	case RecDropTable:
		// Table name only.
	case RecCreateIndex:
		e.Varint(int64(r.Col))
	case RecSetLayout:
		e.Byte(byte(r.Store))
		e.Spec(r.Spec)
	case RecInsert, RecCopy:
		e.Varint(int64(r.Width))
		e.Rows(r.Rows)
	case RecUpdate:
		e.Predicate(r.Pred)
		e.Set(r.Set)
	case RecDelete:
		e.Predicate(r.Pred)
	case RecTxnCommit:
		e.Uvarint(uint64(len(r.Txn)))
		for _, tt := range r.Txn {
			e.String(tt.Name)
			e.Varint(int64(tt.Width))
			e.Varint(int64(tt.PKWidth))
			e.Rows(tt.DelPKs)
			e.Rows(tt.Rows)
		}
	}
}

// decodeRecord reads one record payload.
func decodeRecord(d *Decoder) (*Record, error) {
	r := &Record{Kind: RecordKind(d.Byte()), Table: d.String()}
	switch r.Kind {
	case RecCreateTable:
		r.Schema = d.Schema()
		r.Store = catalog.StoreKind(d.Byte())
		r.Spec = d.Spec()
	case RecDropTable:
	case RecCreateIndex:
		r.Col = d.Int()
	case RecSetLayout:
		r.Store = catalog.StoreKind(d.Byte())
		r.Spec = d.Spec()
	case RecInsert, RecCopy:
		r.Width = d.Int()
		if d.Err() == nil && (r.Width <= 0 || r.Width > d.Remaining()+1) {
			return nil, fmt.Errorf("wal: implausible insert width %d", r.Width)
		}
		r.Rows = d.Rows(r.Width)
	case RecUpdate:
		r.Pred = d.Predicate()
		r.Set = d.Set()
	case RecDelete:
		r.Pred = d.Predicate()
	case RecTxnCommit:
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Remaining()) {
			return nil, fmt.Errorf("wal: implausible txn table count %d", n)
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			tt := TxnTable{Name: d.String(), Width: d.Int(), PKWidth: d.Int()}
			// PKWidth 0 is legal: PK-less tables commit buffered inserts
			// with no delete set (there is no key to delete by).
			if d.Err() == nil && (tt.Width <= 0 || tt.Width > d.Remaining()+1 || tt.PKWidth < 0 || tt.PKWidth > tt.Width) {
				return nil, fmt.Errorf("wal: implausible txn table framing (width %d, pk %d)", tt.Width, tt.PKWidth)
			}
			if tt.PKWidth > 0 {
				tt.DelPKs = d.Rows(tt.PKWidth)
			} else if dels := d.Uvarint(); d.Err() == nil && dels != 0 {
				return nil, fmt.Errorf("wal: %d delete keys on pk-less txn table", dels)
			}
			tt.Rows = d.Rows(tt.Width)
			r.Txn = append(r.Txn, tt)
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}
