// Package wal implements the write-ahead log and the binary codec behind
// the engine's durability subsystem. The log is an append-only file of
// CRC-checked frames, each carrying one logical record (DDL, DML or a
// layout change) with a monotonically increasing sequence number.
// Appends are group-committed: writers enqueue encoded frames under a
// short lock and then wait for durability; whichever waiter arrives
// while no flush is running becomes the leader and writes+syncs every
// pending frame (up to MaxBatch) in a single batch, so N concurrent
// writers share one fsync instead of paying one each.
//
// Recovery tolerates a torn tail: replay stops cleanly at the first
// truncated or CRC-corrupt frame, and Open truncates the file back to
// the last valid frame before appending — a partially written record is
// exactly an unacknowledged one, so dropping it preserves the "committed
// iff acknowledged" invariant.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hybridstore/internal/metrics"
)

// Group-commit metrics: one histogram observation per flush batch (not
// per record), so the recording cost is amortized across every writer
// sharing the fsync.
var (
	mFsyncSeconds = metrics.Default().Histogram("hs_wal_fsync_seconds",
		"WAL group-commit write+fsync latency per flush batch", "seconds")
	mBatchFrames = metrics.Default().Histogram("hs_wal_batch_frames",
		"frames merged into one WAL group-commit flush", "")
	mFlushes = metrics.Default().Counter("hs_wal_flushes_total",
		"WAL group-commit flush batches")
	mRecords = metrics.Default().Counter("hs_wal_records_total",
		"records appended to the WAL")
)

// DefaultMaxBatch is the default cap on frames merged into one fsync
// batch. It is the group-commit knob: larger batches amortize syncs
// across more concurrent writers at the cost of per-flush latency.
const DefaultMaxBatch = 256

// frameHeaderLen is the fixed frame prefix: payload length + CRC32C.
const frameHeaderLen = 8

// castagnoli is the CRC polynomial used for frame checksums (hardware-
// accelerated on common platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// MaxBatch caps the frames a group-commit leader flushes in one
	// write+sync round; 0 means DefaultMaxBatch.
	MaxBatch int
	// NoSync skips fsync after batch writes. Only for tests and bulk
	// loads that checkpoint afterwards: a crash can lose acknowledged
	// records.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	return o
}

// Log is an append-only record log with group commit.
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	opts Options

	pending  [][]byte // encoded frames awaiting write, in seq order
	nextSeq  uint64   // seq assigned to the next enqueued record
	durable  uint64   // highest seq known written+synced
	flushing bool     // a leader is currently writing a batch
	err      error    // sticky I/O error; the log is dead once set
}

// Open opens (creating if needed) the log at path for appending.
// nextSeq is the sequence number the next enqueued record receives; it
// must be greater than every sequence already in the file (recovery
// passes maxSeq+1). validLen is the byte offset of the end of the last
// valid frame — the file is truncated to it so appends never follow a
// torn frame; pass the size reported by Recover, or 0 for a fresh log.
func Open(path string, nextSeq uint64, validLen int64, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	// Make the (possibly just-created) log's directory entry durable up
	// front: without this, every record acknowledged before the first
	// checkpoint could vanish wholesale if power is lost while the
	// directory entry is still only in the page cache.
	if !opts.NoSync {
		if err := syncParentDir(path); err != nil {
			f.Close()
			return nil, err
		}
	}
	if nextSeq == 0 {
		nextSeq = 1
	}
	l := &Log{f: f, opts: opts.withDefaults(), nextSeq: nextSeq, durable: nextSeq - 1}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// encodeFrame builds [len][crc][seq uvarint + payload].
func encodeFrame(seq uint64, rec *Record) []byte {
	e := NewEncoder()
	e.buf = append(e.buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	e.Uvarint(seq)
	rec.encode(e)
	payload := e.buf[frameHeaderLen:]
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.buf[4:8], crc32.Checksum(payload, castagnoli))
	return e.buf
}

// Enqueue appends a record to the in-memory pending queue and returns
// its sequence number. The record is NOT durable yet — callers must not
// acknowledge until WaitDurable(seq) returns. Callers serialize Enqueue
// in apply order (the engine enqueues under its write lock), which is
// what makes replay order match apply order.
func (l *Log) Enqueue(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	seq := l.nextSeq
	l.nextSeq++
	l.pending = append(l.pending, encodeFrame(seq, rec))
	mRecords.Inc()
	return seq, nil
}

// WaitDurable blocks until every record up to and including seq is
// written and synced. The first waiter that finds no flush in progress
// becomes the group-commit leader and flushes the whole pending batch.
func (l *Log) WaitDurable(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		// Durability is checked before the sticky error: a record that
		// made it to disk is committed even if the log was closed (or
		// died) afterwards, and must not be reported as lost.
		if l.durable >= seq {
			return nil
		}
		if l.err != nil {
			return l.err
		}
		if l.flushing {
			l.cond.Wait()
			continue
		}
		l.flushBatchLocked()
	}
}

// flushBatchLocked writes and syncs up to MaxBatch pending frames,
// releasing the lock for the I/O. Callers hold l.mu and have checked
// that no flush is in progress.
func (l *Log) flushBatchLocked() {
	batch := l.pending
	if len(batch) > l.opts.MaxBatch {
		batch = batch[:l.opts.MaxBatch]
	}
	if len(batch) == 0 {
		return
	}
	l.pending = l.pending[len(batch):]
	// Frames carry consecutive seqs and pending holds the tail, so the
	// last flushed seq is nextSeq-1 minus what remains queued.
	hi := l.nextSeq - 1 - uint64(len(l.pending))
	l.flushing = true
	f := l.f
	l.mu.Unlock()

	start := time.Now()
	var err error
	for _, frame := range batch {
		if _, werr := f.Write(frame); werr != nil {
			err = werr
			break
		}
	}
	if err == nil && !l.opts.NoSync {
		err = f.Sync()
	}
	mFsyncSeconds.Observe(time.Since(start).Nanoseconds())
	mBatchFrames.Observe(int64(len(batch)))
	mFlushes.Inc()

	l.mu.Lock()
	l.flushing = false
	if err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
	} else {
		l.durable = hi
	}
	l.cond.Broadcast()
}

// Append enqueues a record and waits for it to become durable — the
// convenience path for callers without an enqueue/ack split.
func (l *Log) Append(rec *Record) error {
	seq, err := l.Enqueue(rec)
	if err != nil {
		return err
	}
	return l.WaitDurable(seq)
}

// Sync flushes every pending record to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.nextSeq - 1
	l.mu.Unlock()
	return l.WaitDurable(target)
}

// NextSeq returns the sequence number the next enqueued record will
// receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Size returns the current file size in bytes.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Reset truncates the log file to empty after a checkpoint has made its
// contents redundant. Sequence numbers keep increasing monotonically —
// the checkpoint records the cut, so replay can skip stale frames if a
// crash lands between the snapshot rename and this truncate. Callers
// must ensure no concurrent Enqueue (the engine holds its write lock).
func (l *Log) Reset() error {
	if err := l.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.f.Truncate(0); err != nil {
		l.err = fmt.Errorf("wal: reset: %w", err)
		return l.err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.err = fmt.Errorf("wal: reset seek: %w", err)
		return l.err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: reset sync: %w", err)
			return l.err
		}
	}
	return nil
}

// Abort closes the log file WITHOUT flushing the pending queue: frames
// not yet written stay unwritten, exactly as a process kill would leave
// them. Pending records were by definition never acknowledged (their
// WaitDurable has not returned), so dropping them preserves the
// committed-iff-acknowledged invariant. It exists for crash simulation;
// production shutdown wants Close.
func (l *Log) Abort() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	l.pending = nil
	if l.err == nil {
		l.err = fmt.Errorf("wal: log is closed")
	}
	l.cond.Broadcast()
	return err
}

// Close flushes pending records and closes the file.
func (l *Log) Close() error {
	syncErr := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	closeErr := l.f.Close()
	l.f = nil
	if l.err == nil {
		l.err = fmt.Errorf("wal: log is closed")
	}
	l.cond.Broadcast()
	if syncErr != nil && !isClosedErr(syncErr) {
		return syncErr
	}
	return closeErr
}

func isClosedErr(err error) bool {
	return err != nil && err.Error() == "wal: log is closed"
}

// syncParentDir fsyncs the directory containing path so a just-created
// file inside it survives a crash.
func syncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: open dir of %s: %w", path, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir of %s: %w", path, err)
	}
	return nil
}

// RecoveryInfo summarizes a Recover pass.
type RecoveryInfo struct {
	// MaxSeq is the highest sequence number of a valid frame (0 when
	// the log is empty).
	MaxSeq uint64
	// Records is the number of valid frames read.
	Records int
	// ValidLen is the byte offset of the end of the last valid frame;
	// Open truncates the file to it.
	ValidLen int64
}

// Recover reads the log at path, calling fn for each intact record in
// sequence order. It stops cleanly at the first torn or corrupt frame
// (the un-acknowledged tail of a crash) and reports how far the log was
// valid. A missing file is an empty log, not an error.
func Recover(path string, fn func(seq uint64, rec *Record) error) (RecoveryInfo, error) {
	var info RecoveryInfo
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, fmt.Errorf("wal: read %s: %w", path, err)
	}
	off := 0
	for off+frameHeaderLen <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+frameHeaderLen:]
		if n <= 0 || n > len(body) {
			break // torn tail: length runs past the file
		}
		payload := body[:n]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // torn or corrupt frame
		}
		d := NewDecoder(payload)
		seq := d.Uvarint()
		rec, derr := decodeRecord(d)
		if derr != nil {
			// CRC was valid but the payload does not parse: this is not
			// a torn tail but a format error worth surfacing.
			return info, fmt.Errorf("wal: frame at offset %d (seq %d): %w", off, seq, derr)
		}
		if fn != nil {
			if err := fn(seq, rec); err != nil {
				return info, err
			}
		}
		if seq > info.MaxSeq {
			info.MaxSeq = seq
		}
		info.Records++
		off += frameHeaderLen + n
		info.ValidLen = int64(off)
	}
	return info, nil
}
