// Binary encoding shared by WAL records and engine snapshots. The format
// is a flat byte stream of uvarint-framed primitives: no reflection, no
// per-field tags, so encoding a DML record costs little more than copying
// its payload. Decoders carry a sticky error — callers chain reads and
// check Err once — because a torn WAL tail must surface as a clean "stop
// here", not a panic.

package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// Encoder appends primitives to a growing byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the buffer for reuse, keeping its capacity. Snapshot
// writers encode and flush one table at a time so peak memory is
// bounded by the largest table, not the whole database.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a signed varint (zig-zag).
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Ints appends a length-prefixed []int.
func (e *Encoder) Ints(xs []int) {
	e.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		e.Varint(int64(x))
	}
}

// Value appends a typed scalar. Layout: one tag byte (type, with the high
// bit marking NULL), then the payload — nothing for NULL, a
// length-prefixed string for VARCHAR, raw IEEE-754 bits for DOUBLE, and a
// signed varint for the integer-backed types.
func (e *Encoder) Value(v value.Value) {
	tag := byte(v.Type())
	if v.IsNull() {
		e.Byte(tag | 0x80)
		return
	}
	e.Byte(tag)
	switch v.Type() {
	case value.Varchar:
		e.String(v.Varchar())
	case value.Double:
		e.Uvarint(math.Float64bits(v.Double()))
	default:
		e.Varint(v.Int())
	}
}

// Row appends the values of a row (arity is framed by the caller).
func (e *Encoder) Row(row []value.Value) {
	for _, v := range row {
		e.Value(v)
	}
}

// Rows appends a length-prefixed batch of rows of the given width.
func (e *Encoder) Rows(rows [][]value.Value) {
	e.Uvarint(uint64(len(rows)))
	for _, r := range rows {
		e.Row(r)
	}
}

// Schema appends a table schema: name, columns and primary key.
func (e *Encoder) Schema(sch *schema.Table) {
	e.String(sch.Name)
	e.Uvarint(uint64(len(sch.Columns)))
	for _, c := range sch.Columns {
		e.String(c.Name)
		e.Byte(byte(c.Type))
		if c.Nullable {
			e.Byte(1)
		} else {
			e.Byte(0)
		}
	}
	e.Ints(sch.PrimaryKey)
}

// Spec appends an optional partitioning annotation. A leading flags byte
// records which halves are present.
func (e *Encoder) Spec(spec *catalog.PartitionSpec) {
	if spec == nil {
		e.Byte(0)
		return
	}
	var flags byte
	if spec.Horizontal != nil {
		flags |= 1
	}
	if spec.Vertical != nil {
		flags |= 2
	}
	e.Byte(flags)
	if h := spec.Horizontal; h != nil {
		e.Varint(int64(h.SplitCol))
		e.Value(h.SplitVal)
		e.Byte(byte(h.HotStore))
		e.Byte(byte(h.ColdStore))
	}
	if v := spec.Vertical; v != nil {
		e.Ints(v.RowCols)
		e.Ints(v.ColCols)
	}
}

// Predicate appends a predicate tree. Tag 0 is the nil predicate.
func (e *Encoder) Predicate(p expr.Predicate) {
	switch q := p.(type) {
	case nil:
		e.Byte(0)
	case expr.True:
		e.Byte(1)
	case *expr.Comparison:
		e.Byte(2)
		e.Varint(int64(q.Col))
		e.Byte(byte(q.Op))
		e.Value(q.Val)
	case *expr.Between:
		e.Byte(3)
		e.Varint(int64(q.Col))
		e.Value(q.Lo)
		e.Value(q.Hi)
	case *expr.In:
		e.Byte(4)
		e.Varint(int64(q.Col))
		e.Uvarint(uint64(len(q.Vals)))
		for _, v := range q.Vals {
			e.Value(v)
		}
	case *expr.And:
		e.Byte(5)
		e.Uvarint(uint64(len(q.Preds)))
		for _, sub := range q.Preds {
			e.Predicate(sub)
		}
	case *expr.Or:
		e.Byte(6)
		e.Uvarint(uint64(len(q.Preds)))
		for _, sub := range q.Preds {
			e.Predicate(sub)
		}
	case *expr.Not:
		e.Byte(7)
		e.Predicate(q.P)
	default:
		// Unknown node types cannot round-trip; encode as True so the
		// frame stays well-formed and flag it loudly at decode time via
		// a reserved tag instead of silently matching everything.
		e.Byte(255)
	}
}

// Set appends an update assignment map in sorted column order (sorted so
// encoding is deterministic and test-comparable).
func (e *Encoder) Set(set map[int]value.Value) {
	cols := make([]int, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	e.Uvarint(uint64(len(cols)))
	for _, c := range cols {
		e.Varint(int64(c))
		e.Value(set[c])
	}
}

// Decoder reads primitives from a byte buffer with a sticky error: after
// the first failure every subsequent read returns a zero value, and Err
// reports the cause.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Byte reads one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("wal: truncated buffer (byte at %d)", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("wal: bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("wal: bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a varint-encoded int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(d.Remaining()) < n {
		d.fail("wal: truncated string (%d of %d bytes)", d.Remaining(), n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(d.Remaining()) { // each element takes >= 1 byte
		d.fail("wal: implausible int-slice length %d", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Value reads a typed scalar.
func (d *Decoder) Value() value.Value {
	tag := d.Byte()
	if d.err != nil {
		return value.Value{}
	}
	typ := value.Type(tag &^ 0x80)
	if tag&0x80 != 0 {
		return value.Null(typ)
	}
	switch typ {
	case value.Integer:
		return value.NewInt(d.Varint())
	case value.Bigint:
		return value.NewBigint(d.Varint())
	case value.Double:
		return value.NewDouble(math.Float64frombits(d.Uvarint()))
	case value.Varchar:
		return value.NewVarchar(d.String())
	case value.Date:
		return value.NewDate(d.Varint())
	default:
		d.fail("wal: unknown value type tag %d", tag)
		return value.Value{}
	}
}

// Row reads width values.
func (d *Decoder) Row(width int) []value.Value {
	row := make([]value.Value, width)
	for i := range row {
		row[i] = d.Value()
	}
	if d.err != nil {
		return nil
	}
	return row
}

// Rows reads a length-prefixed batch of rows of the given width. The
// claimed count only seeds a bounded capacity — memory beyond it is
// committed row by row as bytes actually decode, so a corrupt or
// hostile count cannot amplify into a huge up-front allocation (the
// wire protocol feeds this decoder untrusted frames).
func (d *Decoder) Rows(width int) [][]value.Value {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if width < 1 || n > uint64(d.Remaining()) { // each row takes >= width >= 1 bytes
		d.fail("wal: implausible row count %d (width %d)", n, width)
		return nil
	}
	const rowAllocBatch = 4096
	rows := make([][]value.Value, 0, min(n, rowAllocBatch))
	for i := uint64(0); i < n; i++ {
		row := d.Row(width)
		if d.err != nil {
			return nil
		}
		rows = append(rows, row)
	}
	return rows
}

// Schema reads a table schema.
func (d *Decoder) Schema() *schema.Table {
	name := d.String()
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 || n > uint64(d.Remaining()) {
		d.fail("wal: implausible column count %d", n)
		return nil
	}
	cols := make([]schema.Column, n)
	for i := range cols {
		cols[i].Name = d.String()
		cols[i].Type = value.Type(d.Byte())
		cols[i].Nullable = d.Byte() != 0
	}
	pk := d.Ints()
	if d.err != nil {
		return nil
	}
	pkNames := make([]string, len(pk))
	for i, k := range pk {
		if k < 0 || k >= len(cols) {
			d.fail("wal: primary-key column %d out of range", k)
			return nil
		}
		pkNames[i] = cols[k].Name
	}
	sch, err := schema.New(name, cols, pkNames...)
	if err != nil {
		d.fail("wal: bad schema: %v", err)
		return nil
	}
	return sch
}

// Spec reads an optional partitioning annotation.
func (d *Decoder) Spec() *catalog.PartitionSpec {
	flags := d.Byte()
	if d.err != nil || flags == 0 {
		return nil
	}
	spec := &catalog.PartitionSpec{}
	if flags&1 != 0 {
		h := &catalog.HorizontalSpec{}
		h.SplitCol = d.Int()
		h.SplitVal = d.Value()
		h.HotStore = catalog.StoreKind(d.Byte())
		h.ColdStore = catalog.StoreKind(d.Byte())
		spec.Horizontal = h
	}
	if flags&2 != 0 {
		spec.Vertical = &catalog.VerticalSpec{RowCols: d.Ints(), ColCols: d.Ints()}
	}
	if d.err != nil {
		return nil
	}
	return spec
}

// Predicate reads a predicate tree.
func (d *Decoder) Predicate() expr.Predicate {
	tag := d.Byte()
	if d.err != nil {
		return nil
	}
	switch tag {
	case 0:
		return nil
	case 1:
		return expr.True{}
	case 2:
		c := &expr.Comparison{Col: d.Int()}
		c.Op = expr.CmpOp(d.Byte())
		c.Val = d.Value()
		return c
	case 3:
		b := &expr.Between{Col: d.Int()}
		b.Lo = d.Value()
		b.Hi = d.Value()
		return b
	case 4:
		in := &expr.In{Col: d.Int()}
		n := d.Uvarint()
		if d.err != nil || n > uint64(d.Remaining()) {
			d.fail("wal: implausible IN list length %d", n)
			return nil
		}
		in.Vals = make([]value.Value, n)
		for i := range in.Vals {
			in.Vals[i] = d.Value()
		}
		return in
	case 5, 6:
		n := d.Uvarint()
		if d.err != nil || n > uint64(d.Remaining()) {
			d.fail("wal: implausible predicate arity %d", n)
			return nil
		}
		preds := make([]expr.Predicate, n)
		for i := range preds {
			preds[i] = d.Predicate()
		}
		if tag == 5 {
			return &expr.And{Preds: preds}
		}
		return &expr.Or{Preds: preds}
	case 7:
		return &expr.Not{P: d.Predicate()}
	default:
		d.fail("wal: unknown predicate tag %d", tag)
		return nil
	}
}

// Set reads an update assignment map.
func (d *Decoder) Set() map[int]value.Value {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("wal: implausible set size %d", n)
		return nil
	}
	set := make(map[int]value.Value, n)
	for i := uint64(0); i < n; i++ {
		c := d.Int()
		set[c] = d.Value()
	}
	if d.err != nil {
		return nil
	}
	return set
}
