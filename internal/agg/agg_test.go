package agg

import (
	"math"
	"testing"
	"testing/quick"

	"hybridstore/internal/value"
)

func TestFuncString(t *testing.T) {
	want := map[Func]string{Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX", Count: "COUNT"}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%v.String() = %q", f, f.String())
		}
		got, err := ParseFunc(s)
		if err != nil || got != f {
			t.Errorf("ParseFunc(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFunc("MEDIAN"); err == nil {
		t.Error("unknown func should fail")
	}
}

func TestSpecString(t *testing.T) {
	if s := (Spec{Func: Sum, Col: 2}).String(); s != "SUM(col2)" {
		t.Errorf("Spec.String = %q", s)
	}
	if s := (Spec{Func: Count, Col: -1}).String(); s != "COUNT(*)" {
		t.Errorf("Spec.String = %q", s)
	}
}

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(value.NewDouble(x))
	}
	if got := a.Final(Sum).Double(); got != 10 {
		t.Errorf("SUM = %v", got)
	}
	if got := a.Final(Avg).Double(); got != 2.5 {
		t.Errorf("AVG = %v", got)
	}
	if got := a.Final(Min).Double(); got != 1 {
		t.Errorf("MIN = %v", got)
	}
	if got := a.Final(Max).Double(); got != 4 {
		t.Errorf("MAX = %v", got)
	}
	if got := a.Final(Count).Int(); got != 4 {
		t.Errorf("COUNT = %v", got)
	}
}

func TestAccIgnoresNull(t *testing.T) {
	var a Acc
	a.Add(value.Null(value.Double))
	a.Add(value.NewDouble(5))
	if a.Count() != 1 || a.Final(Sum).Double() != 5 {
		t.Errorf("NULL not ignored: count=%d", a.Count())
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if !a.Final(Sum).IsNull() || !a.Final(Avg).IsNull() || !a.Final(Min).IsNull() || !a.Final(Max).IsNull() {
		t.Error("empty aggregates should be NULL")
	}
	if a.Final(Count).Int() != 0 {
		t.Error("empty COUNT should be 0")
	}
}

func TestAddWeighted(t *testing.T) {
	var a, b Acc
	for i := 0; i < 5; i++ {
		a.Add(value.NewInt(7))
	}
	b.AddWeighted(value.NewInt(7), 5)
	if a.Final(Sum).Double() != b.Final(Sum).Double() {
		t.Error("weighted sum mismatch")
	}
	if a.Final(Count).Int() != b.Final(Count).Int() {
		t.Error("weighted count mismatch")
	}
	b.AddWeighted(value.NewInt(1), 0)
	if b.Final(Count).Int() != 5 {
		t.Error("zero weight should be ignored")
	}
}

func TestAddCount(t *testing.T) {
	var a Acc
	a.AddCount(42)
	if a.Final(Count).Int() != 42 {
		t.Errorf("AddCount = %v", a.Final(Count))
	}
}

func TestMergeAcc(t *testing.T) {
	var a, b, whole Acc
	for i := 1; i <= 6; i++ {
		v := value.NewInt(int64(i))
		whole.Add(v)
		if i <= 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	for _, f := range []Func{Sum, Avg, Min, Max, Count} {
		av, wv := a.Final(f), whole.Final(f)
		if av.Type() != wv.Type() || av.Float() != wv.Float() {
			t.Errorf("%v: merged=%v whole=%v", f, av, wv)
		}
	}
	// Merging an empty Acc changes nothing.
	var empty Acc
	before := a.Final(Sum).Double()
	a.Merge(&empty)
	if a.Final(Sum).Double() != before {
		t.Error("empty merge changed state")
	}
	// Merging into an empty Acc copies.
	var target Acc
	target.Merge(&whole)
	if target.Final(Min).Float() != 1 || target.Final(Max).Float() != 6 {
		t.Error("merge into empty broken")
	}
}

func TestResultUngrouped(t *testing.T) {
	r := NewResult([]Spec{{Func: Sum, Col: 0}, {Func: Count, Col: -1}}, nil)
	r.Global().Accs[0].Add(value.NewDouble(2))
	r.Global().Accs[0].Add(value.NewDouble(3))
	r.Global().Accs[1].AddCount(2)
	rows := r.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0].Double() != 5 || rows[0][1].Int() != 2 {
		t.Errorf("row = %v", rows[0])
	}
	if r.NumGroups() != 1 {
		t.Errorf("NumGroups = %d", r.NumGroups())
	}
}

func TestResultGrouped(t *testing.T) {
	r := NewResult([]Spec{{Func: Sum, Col: 1}}, []int{0})
	add := func(k int64, v float64) {
		g := r.GroupFor([]value.Value{value.NewInt(k)})
		g.Accs[0].Add(value.NewDouble(v))
	}
	add(1, 10)
	add(2, 20)
	add(1, 5)
	if r.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", r.NumGroups())
	}
	rows := r.Rows()
	sums := map[int64]float64{}
	for _, row := range rows {
		sums[row[0].Int()] = row[1].Double()
	}
	if sums[1] != 15 || sums[2] != 20 {
		t.Errorf("sums = %v", sums)
	}
}

func TestGroupKeyReuse(t *testing.T) {
	r := NewResult([]Spec{{Func: Count, Col: -1}}, []int{0, 1})
	buf := []value.Value{value.NewInt(1), value.NewVarchar("a")}
	g1 := r.GroupFor(buf)
	buf[0] = value.NewInt(2) // mutate caller buffer
	g2 := r.GroupFor(buf)
	if g1 == g2 {
		t.Fatal("distinct keys mapped to same group")
	}
	if g1.Key[0].Int() != 1 {
		t.Error("group key was not copied")
	}
}

func TestResultMergeGrouped(t *testing.T) {
	mk := func(pairs map[int64]float64) *Result {
		r := NewResult([]Spec{{Func: Sum, Col: 1}}, []int{0})
		for k, v := range pairs {
			r.GroupFor([]value.Value{value.NewInt(k)}).Accs[0].Add(value.NewDouble(v))
		}
		return r
	}
	a := mk(map[int64]float64{1: 10, 2: 20})
	b := mk(map[int64]float64{2: 5, 3: 7})
	a.Merge(b)
	a.Merge(nil) // no-op
	sums := map[int64]float64{}
	for _, row := range a.Rows() {
		sums[row[0].Int()] = row[1].Double()
	}
	want := map[int64]float64{1: 10, 2: 25, 3: 7}
	for k, v := range want {
		if sums[k] != v {
			t.Errorf("group %d = %v, want %v", k, sums[k], v)
		}
	}
}

func TestResultMergeUngrouped(t *testing.T) {
	a := NewResult([]Spec{{Func: Min, Col: 0}}, nil)
	b := NewResult([]Spec{{Func: Min, Col: 0}}, nil)
	a.Global().Accs[0].Add(value.NewInt(5))
	b.Global().Accs[0].Add(value.NewInt(3))
	a.Merge(b)
	if got := a.Global().Accs[0].Final(Min).Int(); got != 3 {
		t.Errorf("merged MIN = %d", got)
	}
}

// Property: splitting a value sequence at any point and merging partial
// accumulators equals accumulating the whole sequence.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			// Skip degenerate floats and magnitudes where summation order
			// changes overflow behaviour; the property is about merge
			// semantics, not IEEE-754 edge cases.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		cut := int(split) % len(xs)
		var a, b, whole Acc
		for i, x := range xs {
			v := value.NewDouble(x)
			whole.Add(v)
			if i < cut {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		const eps = 1e-6
		close := func(p, q float64) bool {
			d := p - q
			scale := math.Abs(p) + math.Abs(q) + 1
			return math.Abs(d) < eps*scale
		}
		return close(a.Final(Sum).Float(), whole.Final(Sum).Float()) &&
			a.Final(Count).Int() == whole.Final(Count).Int() &&
			a.Final(Min).Float() == whole.Final(Min).Float() &&
			a.Final(Max).Float() == whole.Final(Max).Float()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCountDoesNotPoisonMinMax(t *testing.T) {
	// A count-only accumulator (a COUNT(*) partial from one partition)
	// must contribute its count on merge without injecting its
	// zero-valued min/max — the old code marked it "seen" and could
	// propagate an Integer 0 into a Bigint accumulator.
	var countOnly Acc
	countOnly.AddCount(5)
	var real Acc
	real.Add(value.NewBigint(10))
	real.Merge(&countOnly)
	if got := real.Final(Count).Int(); got != 6 {
		t.Errorf("merged count = %d, want 6", got)
	}
	if got := real.Final(Min); got.Type() != value.Bigint || got.Int() != 10 {
		t.Errorf("merged min = %v (%s), want BIGINT 10", got, got.Type())
	}
	if got := real.Final(Max); got.Type() != value.Bigint || got.Int() != 10 {
		t.Errorf("merged max = %v (%s), want BIGINT 10", got, got.Type())
	}
	// The other direction: merging real values into a count-only
	// accumulator adopts them.
	var target Acc
	target.AddCount(3)
	target.Merge(&real)
	if got := target.Final(Count).Int(); got != 9 {
		t.Errorf("count-only target count = %d, want 9", got)
	}
	if got := target.Final(Min); got.Type() != value.Bigint || got.Int() != 10 {
		t.Errorf("count-only target min = %v, want 10", got)
	}
	// Merging two count-only accumulators still sums counts (the old
	// early-return on !b.seen was saved only by AddCount lying about
	// seen).
	var a, b Acc
	a.AddCount(2)
	b.AddCount(3)
	a.Merge(&b)
	if got := a.Final(Count).Int(); got != 5 {
		t.Errorf("count-only merge = %d, want 5", got)
	}
}

func TestFinalTypedEmptyMinMax(t *testing.T) {
	var a Acc
	for _, tc := range []struct {
		f   Func
		typ value.Type
	}{
		{Min, value.Varchar}, {Max, value.Varchar},
		{Min, value.Bigint}, {Max, value.Date},
	} {
		got := a.FinalTyped(tc.f, tc.typ)
		if !got.IsNull() || got.Type() != tc.typ {
			t.Errorf("empty %v as %s = %v (%s)", tc.f, tc.typ, got, got.Type())
		}
	}
	// Non-empty accumulators ignore the hint and return the real value.
	a.Add(value.NewVarchar("x"))
	if got := a.FinalTyped(Min, value.Varchar); got.IsNull() || got.Varchar() != "x" {
		t.Errorf("non-empty FinalTyped = %v", got)
	}
}

func TestOutputType(t *testing.T) {
	if got := Count.OutputType(value.Varchar); got != value.Bigint {
		t.Errorf("COUNT output = %s", got)
	}
	if got := Sum.OutputType(value.Integer); got != value.Double {
		t.Errorf("SUM output = %s", got)
	}
	if got := Avg.OutputType(value.Bigint); got != value.Double {
		t.Errorf("AVG output = %s", got)
	}
	if got := Min.OutputType(value.Varchar); got != value.Varchar {
		t.Errorf("MIN output = %s", got)
	}
	if got := Max.OutputType(value.Date); got != value.Date {
		t.Errorf("MAX output = %s", got)
	}
}

func TestResultTypedEmptyRows(t *testing.T) {
	specs := []Spec{{Func: Count, Col: -1}, {Func: Min, Col: 1}, {Func: Max, Col: 0}}
	r := NewResult(specs, nil)
	r.SetOutputTypes([]value.Type{value.Bigint, value.Varchar})
	rows := r.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row[0].Type() != value.Bigint || row[0].Int() != 0 {
		t.Errorf("COUNT(*) over empty = %v (%s)", row[0], row[0].Type())
	}
	if !row[1].IsNull() || row[1].Type() != value.Varchar {
		t.Errorf("MIN(varchar) over empty = %v (%s)", row[1], row[1].Type())
	}
	if !row[2].IsNull() || row[2].Type() != value.Bigint {
		t.Errorf("MAX(bigint) over empty = %v (%s)", row[2], row[2].Type())
	}
	// Merge propagates types into an untyped result.
	other := NewResult(specs, nil)
	other.Merge(r)
	if len(other.Types) != len(specs) {
		t.Error("Merge did not propagate output types")
	}
}
