// Package agg implements aggregation accumulators and grouped aggregation
// results shared by the row store (tuple-at-a-time accumulation), the
// column store (per-dictionary-code weighted accumulation) and the engine
// (merging partial results across horizontal partitions; the paper's
// "union of both partitions" for queries that span them).
package agg

import (
	"fmt"

	"hybridstore/internal/value"
)

// Func is an aggregation function.
type Func uint8

const (
	Sum Func = iota
	Avg
	Min
	Max
	Count
)

// String returns the SQL name of the function.
func (f Func) String() string {
	switch f {
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Count:
		return "COUNT"
	default:
		return fmt.Sprintf("Func(%d)", uint8(f))
	}
}

// ParseFunc converts a SQL aggregate name into a Func.
func ParseFunc(s string) (Func, error) {
	switch s {
	case "SUM":
		return Sum, nil
	case "AVG":
		return Avg, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	case "COUNT":
		return Count, nil
	default:
		return 0, fmt.Errorf("agg: unknown aggregate %q", s)
	}
}

// Spec is one aggregate in a query: a function applied to a column.
// Col may be -1 for COUNT(*).
type Spec struct {
	Func Func
	Col  int
}

// String renders the spec with positional column naming.
func (s Spec) String() string {
	if s.Col < 0 {
		return s.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(col%d)", s.Func, s.Col)
}

// Acc accumulates one aggregate. A single Acc tracks enough state to answer
// any Func, so partial results can be merged regardless of function.
type Acc struct {
	sum      float64
	count    int64
	min, max value.Value
	seen     bool
}

// Add folds a single value into the accumulator. NULLs are ignored except
// by COUNT(*) (which callers express by adding a non-null dummy or using
// AddWeighted with the row count).
func (a *Acc) Add(v value.Value) {
	if v.IsNull() {
		return
	}
	a.AddWeighted(v, 1)
}

// AddWeighted folds a value occurring weight times. This is the column
// store's per-code fast path: one call per distinct value rather than one
// per row.
func (a *Acc) AddWeighted(v value.Value, weight int64) {
	if v.IsNull() || weight <= 0 {
		return
	}
	a.sum += v.Float() * float64(weight)
	a.count += weight
	if !a.seen {
		a.min, a.max = v, v
		a.seen = true
		return
	}
	if value.Less(v, a.min) {
		a.min = v
	}
	if value.Less(a.max, v) {
		a.max = v
	}
}

// AddSummary folds a precomputed partial aggregate — the Float-sum, the
// non-NULL row count and the min/max value of a batch of rows — into the
// accumulator. Vectorized aggregators accumulate these per dictionary code
// with integer/float scalar ops and fold once per group, instead of paying
// a value comparison per row.
func (a *Acc) AddSummary(sum float64, count int64, min, max value.Value) {
	if count <= 0 {
		return
	}
	a.sum += sum
	a.count += count
	if !a.seen {
		a.min, a.max, a.seen = min, max, true
		return
	}
	if value.Less(min, a.min) {
		a.min = min
	}
	if value.Less(a.max, max) {
		a.max = max
	}
}

// AddCount increments only the row counter; used for COUNT(*) where no
// column value is inspected. It deliberately does not mark min/max as
// seen: a count-only accumulator holds zero-valued min/max, and marking
// them valid would let Merge propagate that garbage into a real
// accumulator.
func (a *Acc) AddCount(n int64) {
	a.count += n
}

// Merge folds another accumulator into a. Used when combining partial
// results from horizontal partitions. Counts and sums always combine;
// min/max transfer only when b actually observed values, so a COUNT(*)
// partial from an empty or count-only partition neither loses its count
// nor injects zero-valued extrema.
func (a *Acc) Merge(b *Acc) {
	a.sum += b.sum
	a.count += b.count
	if !b.seen {
		return
	}
	if !a.seen {
		a.min, a.max, a.seen = b.min, b.max, true
		return
	}
	if value.Less(b.min, a.min) {
		a.min = b.min
	}
	if value.Less(a.max, b.max) {
		a.max = b.max
	}
}

// Count returns the number of accumulated (non-NULL) values.
func (a *Acc) Count() int64 { return a.count }

// OutputType returns the result type of the function applied to a
// column of type colType: COUNT yields BIGINT, SUM and AVG widen to
// DOUBLE, and MIN/MAX preserve the column's own type.
func (f Func) OutputType(colType value.Type) value.Type {
	switch f {
	case Count:
		return value.Bigint
	case Min, Max:
		return colType
	default:
		return value.Double
	}
}

// FinalTyped computes the aggregate value for the requested function
// with a known output type: an empty MIN/MAX yields a NULL of the
// column's type (a VARCHAR column's empty MIN is a VARCHAR NULL), where
// the untyped Final can only guess Double.
func (a *Acc) FinalTyped(f Func, typ value.Type) value.Value {
	if (f == Min || f == Max) && !a.seen {
		return value.Null(typ)
	}
	return a.Final(f)
}

// Final computes the aggregate value for the requested function.
func (a *Acc) Final(f Func) value.Value {
	switch f {
	case Count:
		return value.NewBigint(a.count)
	case Sum:
		if a.count == 0 {
			return value.Null(value.Double)
		}
		return value.NewDouble(a.sum)
	case Avg:
		if a.count == 0 {
			return value.Null(value.Double)
		}
		return value.NewDouble(a.sum / float64(a.count))
	case Min:
		if !a.seen {
			return value.Null(value.Double)
		}
		return a.min
	case Max:
		if !a.seen {
			return value.Null(value.Double)
		}
		return a.max
	default:
		return value.Null(value.Double)
	}
}

// Group is one group-by bucket: the key values and one accumulator per
// aggregate spec.
type Group struct {
	Key  []value.Value
	Accs []Acc
}

// Result is a grouped aggregation result. With no group-by columns it
// holds exactly one global group.
type Result struct {
	Specs     []Spec
	GroupCols []int
	Groups    []*Group

	// Types holds the output type of each spec (see Func.OutputType).
	// When set — the stores set it from their schemas — empty-group
	// MIN/MAX produce correctly typed NULLs; when nil, Rows falls back
	// to the untyped Final.
	Types []value.Type

	index map[string]int
}

// SetOutputTypes records each spec's result type given the source
// table's column types (COUNT(*) specs need no column).
func (r *Result) SetOutputTypes(colTypes []value.Type) {
	r.Types = make([]value.Type, len(r.Specs))
	for i, s := range r.Specs {
		ct := value.Double
		if s.Col >= 0 && s.Col < len(colTypes) {
			ct = colTypes[s.Col]
		}
		r.Types[i] = s.Func.OutputType(ct)
	}
}

// NewResult allocates an empty result for the given aggregates and
// grouping columns.
func NewResult(specs []Spec, groupCols []int) *Result {
	r := &Result{Specs: specs, GroupCols: groupCols}
	if len(groupCols) == 0 {
		r.Groups = []*Group{{Accs: make([]Acc, len(specs))}}
		return r
	}
	r.index = make(map[string]int)
	return r
}

// Global returns the single group of an ungrouped result.
func (r *Result) Global() *Group { return r.Groups[0] }

// GroupFor returns (creating if needed) the bucket for the given key. The
// key slice is copied on first use so callers may reuse their buffer.
func (r *Result) GroupFor(key []value.Value) *Group {
	k := groupKey(key)
	if i, ok := r.index[k]; ok {
		return r.Groups[i]
	}
	kc := make([]value.Value, len(key))
	copy(kc, key)
	g := &Group{Key: kc, Accs: make([]Acc, len(r.Specs))}
	r.index[k] = len(r.Groups)
	r.Groups = append(r.Groups, g)
	return g
}

func groupKey(key []value.Value) string {
	if len(key) == 1 {
		return key[0].Key()
	}
	s := ""
	for _, v := range key {
		s += v.Key() + "\x1f"
	}
	return s
}

// Merge folds a compatible partial result (same specs and grouping) into r.
func (r *Result) Merge(other *Result) {
	if other == nil {
		return
	}
	if r.Types == nil {
		r.Types = other.Types
	}
	if len(r.GroupCols) == 0 {
		for i := range r.Global().Accs {
			r.Global().Accs[i].Merge(&other.Global().Accs[i])
		}
		return
	}
	for _, g := range other.Groups {
		dst := r.GroupFor(g.Key)
		for i := range dst.Accs {
			dst.Accs[i].Merge(&g.Accs[i])
		}
	}
}

// NumGroups returns the number of result groups.
func (r *Result) NumGroups() int { return len(r.Groups) }

// Rows materializes the result as output rows: group-key columns followed
// by one value per aggregate spec.
func (r *Result) Rows() [][]value.Value {
	out := make([][]value.Value, 0, len(r.Groups))
	for _, g := range r.Groups {
		row := make([]value.Value, 0, len(g.Key)+len(r.Specs))
		row = append(row, g.Key...)
		for i, s := range r.Specs {
			if r.Types != nil {
				row = append(row, g.Accs[i].FinalTyped(s.Func, r.Types[i]))
			} else {
				row = append(row, g.Accs[i].Final(s.Func))
			}
		}
		out = append(out, row)
	}
	return out
}
