// Package schema describes logical table schemas: column names and types
// plus primary-key information. Schemas are shared by both stores, the
// catalog, the SQL front end and the advisor.
package schema

import (
	"fmt"
	"strings"

	"hybridstore/internal/value"
)

// Column describes one attribute of a table.
type Column struct {
	Name     string
	Type     value.Type
	Nullable bool
}

// Table describes a logical table: ordered columns and the primary key.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []int // indexes into Columns; may be empty

	byName map[string]int
}

// New constructs a validated table schema. The primary-key columns are given
// by name and must exist.
func New(name string, cols []Column, pk ...string) (*Table, error) {
	t := &Table{Name: name, Columns: cols}
	if err := t.init(); err != nil {
		return nil, err
	}
	for _, k := range pk {
		i, ok := t.byName[strings.ToLower(k)]
		if !ok {
			return nil, fmt.Errorf("schema: primary key column %q not in table %q", k, name)
		}
		t.PrimaryKey = append(t.PrimaryKey, i)
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and generators
// with known-good schemas.
func MustNew(name string, cols []Column, pk ...string) *Table {
	t, err := New(name, cols, pk...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) init() error {
	if t.Name == "" {
		return fmt.Errorf("schema: table has no name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %q has no columns", t.Name)
	}
	t.byName = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema: table %q column %d has no name", t.Name, i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := t.byName[key]; dup {
			return fmt.Errorf("schema: table %q has duplicate column %q", t.Name, c.Name)
		}
		t.byName[key] = i
	}
	return nil
}

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.Columns) }

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (t *Table) ColIndex(name string) int {
	if t.byName == nil {
		if err := t.init(); err != nil {
			return -1
		}
	}
	if i, ok := t.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ColTypes returns the column types in order.
func (t *Table) ColTypes() []value.Type {
	types := make([]value.Type, len(t.Columns))
	for i, c := range t.Columns {
		types[i] = c.Type
	}
	return types
}

// ColNames returns the column names in order.
func (t *Table) ColNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// IsPrimaryKey reports whether column index i is part of the primary key.
func (t *Table) IsPrimaryKey(i int) bool {
	for _, k := range t.PrimaryKey {
		if k == i {
			return true
		}
	}
	return false
}

// ValidateRow checks that a row matches the schema's arity, types and
// nullability. Integer values are accepted for Bigint columns and vice
// versa only via explicit Coerce by the caller; ValidateRow is strict.
func (t *Table) ValidateRow(row []value.Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("schema: table %q expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	for i, v := range row {
		c := t.Columns[i]
		if v.IsNull() {
			if !c.Nullable {
				return fmt.Errorf("schema: column %q of table %q is NOT NULL", c.Name, t.Name)
			}
			continue
		}
		if v.Type() != c.Type {
			return fmt.Errorf("schema: column %q of table %q expects %s, got %s", c.Name, t.Name, c.Type, v.Type())
		}
	}
	return nil
}

// CoerceRow converts row values to the column types where possible,
// returning a new slice. It is the lenient counterpart to ValidateRow used
// by the SQL front end.
func (t *Table) CoerceRow(row []value.Value) ([]value.Value, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("schema: table %q expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	out := make([]value.Value, len(row))
	for i, v := range row {
		cv, err := value.Coerce(v, t.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("schema: column %q: %w", t.Columns[i].Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// PKValues extracts the primary-key values from a row.
func (t *Table) PKValues(row []value.Value) []value.Value {
	if len(t.PrimaryKey) == 0 {
		return nil
	}
	out := make([]value.Value, len(t.PrimaryKey))
	for i, k := range t.PrimaryKey {
		out[i] = row[k]
	}
	return out
}

// Project returns a new schema containing only the given column indexes (in
// the given order), named name. Primary-key columns retain their PK status
// if all PK columns are included.
func (t *Table) Project(name string, cols []int) (*Table, error) {
	sub := make([]Column, len(cols))
	pos := make(map[int]int, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(t.Columns) {
			return nil, fmt.Errorf("schema: project column %d out of range for %q", c, t.Name)
		}
		sub[i] = t.Columns[c]
		pos[c] = i
	}
	nt := &Table{Name: name, Columns: sub}
	if err := nt.init(); err != nil {
		return nil, err
	}
	allPK := len(t.PrimaryKey) > 0
	for _, k := range t.PrimaryKey {
		if _, ok := pos[k]; !ok {
			allPK = false
			break
		}
	}
	if allPK {
		for _, k := range t.PrimaryKey {
			nt.PrimaryKey = append(nt.PrimaryKey, pos[k])
		}
	}
	return nt, nil
}

// Clone returns a deep copy of the schema with a new name.
func (t *Table) Clone(name string) *Table {
	cols := make([]Column, len(t.Columns))
	copy(cols, t.Columns)
	pk := make([]int, len(t.PrimaryKey))
	copy(pk, t.PrimaryKey)
	nt := &Table{Name: name, Columns: cols, PrimaryKey: pk}
	_ = nt.init()
	return nt
}

// DDL renders the schema as a CREATE TABLE statement.
func (t *Table) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", t.Name)
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if !c.Nullable {
			b.WriteString(" NOT NULL")
		}
	}
	if len(t.PrimaryKey) > 0 {
		b.WriteString(", PRIMARY KEY (")
		for i, k := range t.PrimaryKey {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.Columns[k].Name)
		}
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}
