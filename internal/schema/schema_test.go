package schema

import (
	"strings"
	"testing"

	"hybridstore/internal/value"
)

func demo(t *testing.T) *Table {
	t.Helper()
	s, err := New("orders",
		[]Column{
			{Name: "id", Type: value.Bigint},
			{Name: "customer", Type: value.Integer},
			{Name: "total", Type: value.Double},
			{Name: "status", Type: value.Varchar, Nullable: true},
			{Name: "placed", Type: value.Date},
		}, "id")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", []Column{{Name: "a", Type: value.Integer}}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := New("t", nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := New("t", []Column{{Name: "a", Type: value.Integer}, {Name: "A", Type: value.Integer}}); err == nil {
		t.Error("duplicate (case-insensitive) column should fail")
	}
	if _, err := New("t", []Column{{Name: "a", Type: value.Integer}}, "nope"); err == nil {
		t.Error("unknown PK column should fail")
	}
	if _, err := New("t", []Column{{Name: ""}}); err == nil {
		t.Error("unnamed column should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid schema")
		}
	}()
	MustNew("t", nil)
}

func TestColIndex(t *testing.T) {
	s := demo(t)
	if i := s.ColIndex("total"); i != 2 {
		t.Errorf("ColIndex(total) = %d", i)
	}
	if i := s.ColIndex("TOTAL"); i != 2 {
		t.Errorf("case-insensitive lookup failed: %d", i)
	}
	if i := s.ColIndex("missing"); i != -1 {
		t.Errorf("ColIndex(missing) = %d", i)
	}
	if n := s.NumColumns(); n != 5 {
		t.Errorf("NumColumns = %d", n)
	}
}

func TestColNames(t *testing.T) {
	s := demo(t)
	names := s.ColNames()
	want := []string{"id", "customer", "total", "status", "placed"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("ColNames[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestIsPrimaryKey(t *testing.T) {
	s := demo(t)
	if !s.IsPrimaryKey(0) {
		t.Error("id should be PK")
	}
	if s.IsPrimaryKey(1) {
		t.Error("customer should not be PK")
	}
}

func TestValidateRow(t *testing.T) {
	s := demo(t)
	good := []value.Value{value.NewBigint(1), value.NewInt(7), value.NewDouble(9.5), value.NewVarchar("OPEN"), value.NewDate(100)}
	if err := s.ValidateRow(good); err != nil {
		t.Errorf("good row rejected: %v", err)
	}
	if err := s.ValidateRow(good[:3]); err == nil {
		t.Error("short row accepted")
	}
	bad := append([]value.Value{}, good...)
	bad[2] = value.NewInt(9)
	if err := s.ValidateRow(bad); err == nil {
		t.Error("type mismatch accepted")
	}
	withNull := append([]value.Value{}, good...)
	withNull[3] = value.Null(value.Varchar)
	if err := s.ValidateRow(withNull); err != nil {
		t.Errorf("nullable NULL rejected: %v", err)
	}
	withNull[0] = value.Null(value.Bigint)
	if err := s.ValidateRow(withNull); err == nil {
		t.Error("NOT NULL violation accepted")
	}
}

func TestCoerceRow(t *testing.T) {
	s := demo(t)
	row := []value.Value{value.NewInt(1), value.NewInt(7), value.NewInt(9), value.NewVarchar("OPEN"), value.NewVarchar("2012-08-27")}
	out, err := s.CoerceRow(row)
	if err != nil {
		t.Fatalf("CoerceRow: %v", err)
	}
	if out[0].Type() != value.Bigint || out[2].Type() != value.Double || out[4].Type() != value.Date {
		t.Errorf("coercion wrong: %v", out)
	}
	if _, err := s.CoerceRow(row[:2]); err == nil {
		t.Error("arity mismatch accepted")
	}
	row[4] = value.NewVarchar("garbage")
	if _, err := s.CoerceRow(row); err == nil {
		t.Error("bad date accepted")
	}
}

func TestPKValues(t *testing.T) {
	s := demo(t)
	row := []value.Value{value.NewBigint(42), value.NewInt(7), value.NewDouble(9.5), value.NewVarchar("x"), value.NewDate(0)}
	pk := s.PKValues(row)
	if len(pk) != 1 || pk[0].Int() != 42 {
		t.Errorf("PKValues = %v", pk)
	}
	noPK := MustNew("t", []Column{{Name: "a", Type: value.Integer}})
	if got := noPK.PKValues([]value.Value{value.NewInt(1)}); got != nil {
		t.Errorf("PKValues without PK = %v", got)
	}
}

func TestProject(t *testing.T) {
	s := demo(t)
	p, err := s.Project("orders_oltp", []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumColumns() != 2 || p.Columns[1].Name != "status" {
		t.Errorf("projection wrong: %v", p.ColNames())
	}
	if len(p.PrimaryKey) != 1 || p.PrimaryKey[0] != 0 {
		t.Errorf("PK not carried over: %v", p.PrimaryKey)
	}
	// Dropping the PK column loses PK status.
	p2, err := s.Project("nopk", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.PrimaryKey) != 0 {
		t.Errorf("PK should be dropped: %v", p2.PrimaryKey)
	}
	if _, err := s.Project("bad", []int{99}); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestClone(t *testing.T) {
	s := demo(t)
	c := s.Clone("orders2")
	if c.Name != "orders2" || c.NumColumns() != s.NumColumns() {
		t.Errorf("clone wrong: %v", c)
	}
	c.Columns[0].Name = "mutated"
	if s.Columns[0].Name != "id" {
		t.Error("clone shares column slice")
	}
	if c.ColIndex("customer") != 1 {
		t.Error("clone lookup broken")
	}
}

func TestDDL(t *testing.T) {
	s := demo(t)
	ddl := s.DDL()
	for _, frag := range []string{"CREATE TABLE orders", "id BIGINT NOT NULL", "status VARCHAR,", "PRIMARY KEY (id)"} {
		if !strings.Contains(ddl, frag) {
			t.Errorf("DDL missing %q: %s", frag, ddl)
		}
	}
}
