package stats

import (
	"sync"
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

func TestObserveInsert(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{
		Kind: query.Insert, Table: "T1",
		Rows: [][]value.Value{{value.NewInt(1)}, {value.NewInt(2)}},
	}, time.Millisecond)
	ts := r.Table("t1")
	if ts == nil || ts.Inserts != 1 || ts.InsertedRows != 2 {
		t.Fatalf("insert stats = %+v", ts)
	}
	if r.TotalQueries() != 1 || r.TotalElapsed() != time.Millisecond {
		t.Error("totals wrong")
	}
	if ts.InsertFraction() != 1 {
		t.Errorf("insert fraction = %v", ts.InsertFraction())
	}
}

func TestObserveUpdate(t *testing.T) {
	r := NewRecorder()
	q := &query.Query{
		Kind: query.Update, Table: "t",
		Set:  map[int]value.Value{2: value.NewInt(1), 3: value.NewInt(2)},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewInt(7)},
	}
	r.Observe(q, 0)
	ts := r.Table("t")
	if ts.Updates != 1 || ts.UpdatedCols != 2 {
		t.Errorf("update counters: %+v", ts)
	}
	if ts.AttrUpdates[2] != 1 || ts.AttrUpdates[3] != 1 {
		t.Errorf("attr updates: %v", ts.AttrUpdates)
	}
	if ts.AttrPreds[0] != 1 {
		t.Errorf("attr preds: %v", ts.AttrPreds)
	}
	// 2 set cols + 1 pred col = 3 >= threshold: wide update.
	if ts.WideUpdates != 1 {
		t.Errorf("wide updates = %d", ts.WideUpdates)
	}
}

func TestObserveUpdateRangeTracking(t *testing.T) {
	r := NewRecorder()
	mk := func(lo, hi int64) *query.Query {
		return &query.Query{
			Kind: query.Update, Table: "t",
			Set: map[int]value.Value{1: value.NewInt(0)},
			Pred: &expr.And{Preds: []expr.Predicate{
				&expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(lo)},
				&expr.Comparison{Col: 0, Op: expr.Le, Val: value.NewBigint(hi)},
			}},
		}
	}
	r.Observe(mk(900, 950), 0)
	r.Observe(mk(920, 990), 0)
	r.Observe(mk(880, 910), 0)
	ts := r.Table("t")
	if !ts.UpdateRangeSeen || ts.UpdateRangeCol != 0 {
		t.Fatalf("range not tracked: %+v", ts)
	}
	if ts.UpdateRangeLo.Int() != 880 || ts.UpdateRangeHi.Int() != 990 {
		t.Errorf("range = [%v, %v]", ts.UpdateRangeLo, ts.UpdateRangeHi)
	}
	if ts.UpdateRangeCount != 3 {
		t.Errorf("range count = %d", ts.UpdateRangeCount)
	}
}

func TestObserveSelectPointVsRange(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{
		Kind: query.Select, Table: "t",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewInt(1)},
	}, 0)
	r.Observe(&query.Query{
		Kind: query.Select, Table: "t",
		Pred: &expr.Comparison{Col: 0, Op: expr.Gt, Val: value.NewInt(1)},
	}, 0)
	r.Observe(&query.Query{Kind: query.Select, Table: "t"}, 0)
	ts := r.Table("t")
	if ts.PointSelects != 1 || ts.RangeSelects != 2 {
		t.Errorf("point=%d range=%d", ts.PointSelects, ts.RangeSelects)
	}
}

func TestObserveAggregate(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{
		Kind: query.Aggregate, Table: "t",
		Aggs:    []agg.Spec{{Func: agg.Sum, Col: 4}, {Func: agg.Count, Col: -1}},
		GroupBy: []int{1},
		Pred:    &expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewInt(9)},
	}, 0)
	ts := r.Table("t")
	if ts.Aggregations != 1 {
		t.Errorf("aggs = %d", ts.Aggregations)
	}
	if ts.AttrAggs[4] != 1 || ts.AttrGroupBys[1] != 1 || ts.AttrPreds[2] != 1 {
		t.Errorf("attr counters: aggs=%v gb=%v preds=%v", ts.AttrAggs, ts.AttrGroupBys, ts.AttrPreds)
	}
}

func TestObserveJoins(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{
		Kind: query.Aggregate, Table: "fact",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 0}},
		Join: &query.Join{Table: "dim"},
	}, 0)
	r.Observe(&query.Query{
		Kind: query.Select, Table: "dim",
		Join: &query.Join{Table: "fact"},
	}, 0)
	if got := r.JoinCount("fact", "dim"); got != 2 {
		t.Errorf("JoinCount = %d", got)
	}
	if got := r.JoinCount("dim", "fact"); got != 2 {
		t.Errorf("JoinCount symmetric = %d", got)
	}
	if r.Table("fact").JoinQueries != 1 {
		t.Errorf("fact join queries = %d", r.Table("fact").JoinQueries)
	}
}

func TestObserveDelete(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{
		Kind: query.Delete, Table: "t",
		Pred: &expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(0)},
	}, 0)
	ts := r.Table("t")
	if ts.Deletes != 1 || ts.AttrPreds[1] != 1 {
		t.Errorf("delete stats: %+v", ts)
	}
}

func TestOLTPAttrScore(t *testing.T) {
	r := NewRecorder()
	// Column 1 is updated often; column 2 is aggregated often.
	for i := 0; i < 10; i++ {
		r.Observe(&query.Query{
			Kind: query.Update, Table: "t",
			Set:  map[int]value.Value{1: value.NewInt(0)},
			Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewInt(int64(i))},
		}, 0)
	}
	for i := 0; i < 5; i++ {
		r.Observe(&query.Query{
			Kind: query.Aggregate, Table: "t",
			Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
		}, 0)
	}
	scores := r.Table("t").OLTPAttrScore()
	if scores[1] <= 0 {
		t.Errorf("updated column score = %v", scores[1])
	}
	if scores[2] >= 0 {
		t.Errorf("aggregated column score = %v", scores[2])
	}
}

func TestTablesAndReset(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{Kind: query.Select, Table: "b"}, 0)
	r.Observe(&query.Query{Kind: query.Select, Table: "A"}, 0)
	names := r.Tables()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Tables = %v", names)
	}
	r.Reset()
	if r.TotalQueries() != 0 || len(r.Tables()) != 0 || r.TotalElapsed() != 0 {
		t.Error("Reset incomplete")
	}
}

// TestConcurrentObserveAndRead exercises the recorder the way the live
// monitor does — parallel Observe calls racing snapshot reads and merges
// (run with -race): Table returns deep copies, so readers never see the
// live counters mid-update.
func TestConcurrentObserveAndRead(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(&query.Query{
					Kind: query.Update, Table: "t",
					Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewInt(int64(i))},
					Set:  map[int]value.Value{1: value.NewInt(int64(g))},
				}, time.Microsecond)
				r.Observe(&query.Query{
					Kind: query.Aggregate, Table: "t",
					Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
				}, time.Microsecond)
			}
		}(g)
	}
	merged := NewRecorder()
	for i := 0; i < 50; i++ {
		if ts := r.Table("t"); ts != nil {
			_ = ts.TotalQueries()
			_ = ts.OLTPAttrScore()
		}
		merged.Merge(r)
		_ = r.Tables()
		_ = r.TotalQueries()
	}
	wg.Wait()
	ts := r.Table("t")
	if ts == nil || ts.Updates != 2000 || ts.Aggregations != 2000 {
		t.Fatalf("final counts: %+v", ts)
	}
	if r.TotalQueries() != 4000 {
		t.Errorf("total = %d", r.TotalQueries())
	}
}

func TestTableReturnsSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Observe(&query.Query{
		Kind: query.Update, Table: "t",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewInt(1)},
		Set:  map[int]value.Value{1: value.NewInt(9)},
	}, 0)
	snap := r.Table("t")
	snap.Updates = 99
	snap.AttrUpdates[1] = 99
	if ts := r.Table("t"); ts.Updates != 1 || ts.AttrUpdates[1] != 1 {
		t.Error("Table must return a deep copy, not the live record")
	}
}

func TestRecorderMerge(t *testing.T) {
	mk := func(n int) *Recorder {
		r := NewRecorder()
		for i := 0; i < n; i++ {
			r.Observe(&query.Query{
				Kind: query.Update, Table: "t",
				Pred: &expr.Between{Col: 0, Lo: value.NewInt(int64(10 * i)), Hi: value.NewInt(int64(10*i + 5))},
				Set:  map[int]value.Value{1: value.NewInt(1)},
			}, time.Millisecond)
		}
		return r
	}
	a, b := mk(3), mk(2)
	b.Observe(&query.Query{Kind: query.Select, Table: "u"}, time.Millisecond)
	a.Merge(b)
	ts := a.Table("t")
	if ts.Updates != 5 {
		t.Errorf("merged updates = %d", ts.Updates)
	}
	if !ts.UpdateRangeSeen || ts.UpdateRangeCount != 5 {
		t.Errorf("merged range tracking: seen=%v count=%d", ts.UpdateRangeSeen, ts.UpdateRangeCount)
	}
	if hi := ts.UpdateRangeHi.Int(); hi != 25 {
		t.Errorf("merged range hi = %d", hi)
	}
	if a.Table("u") == nil || a.TotalQueries() != 6 {
		t.Errorf("merge missed table u (total %d)", a.TotalQueries())
	}
	if a.TotalElapsed() != 6*time.Millisecond {
		t.Errorf("merged elapsed = %v", a.TotalElapsed())
	}
}
