// Package stats implements the extended workload statistics of the paper's
// online mode: per-table query-type counters, per-attribute update and
// aggregation counters, join counters between table pairs, and the
// update-locality tracking ("tuples that are frequently updated as a
// whole") that feeds the horizontal-partitioning heuristic in §3.2/§4.
package stats

import (
	"sort"
	"strings"
	"sync"
	"time"

	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// wideUpdateCols is the threshold above which an update counts as touching
// a tuple "as a whole" (many attributes assigned or referenced by the
// predicate).
const wideUpdateCols = 3

// TableStats accumulates workload statistics for one table.
type TableStats struct {
	// Query-type counters.
	Inserts      int
	InsertedRows int
	Updates      int
	UpdatedCols  int // total assigned columns over all updates
	Deletes      int
	PointSelects int
	RangeSelects int
	Aggregations int
	JoinQueries  int

	// Per-attribute counters, sized to the table's column count on first
	// use.
	AttrUpdates   []int // column assigned by an UPDATE
	AttrAggs      []int // column aggregated
	AttrGroupBys  []int // column grouped by
	AttrPreds     []int // column referenced by any WHERE predicate
	AttrOLAPPreds []int // column referenced by an aggregation query's predicate

	// Wide updates: updates addressing many attributes — the signal for a
	// row-store partition of "tuples frequently updated as a whole".
	WideUpdates int

	// Update key-range tracking on the table's first PK (or predicate)
	// column, used to locate the hot tuple region for horizontal
	// partitioning.
	UpdateRangeCol   int
	UpdateRangeSeen  bool
	UpdateRangeLo    value.Value
	UpdateRangeHi    value.Value
	UpdateRangeCount int
}

// Clone deep-copies the statistics so callers can read them without
// synchronizing against a live recorder.
func (ts *TableStats) Clone() *TableStats {
	if ts == nil {
		return nil
	}
	cp := *ts
	dup := func(s []int) []int {
		if s == nil {
			return nil
		}
		ns := make([]int, len(s))
		copy(ns, s)
		return ns
	}
	cp.AttrUpdates = dup(ts.AttrUpdates)
	cp.AttrAggs = dup(ts.AttrAggs)
	cp.AttrGroupBys = dup(ts.AttrGroupBys)
	cp.AttrPreds = dup(ts.AttrPreds)
	cp.AttrOLAPPreds = dup(ts.AttrOLAPPreds)
	return &cp
}

// Merge folds another table's statistics into ts (used when rolling
// epoch buckets are combined into a window snapshot).
func (ts *TableStats) Merge(o *TableStats) {
	if o == nil {
		return
	}
	ts.Inserts += o.Inserts
	ts.InsertedRows += o.InsertedRows
	ts.Updates += o.Updates
	ts.UpdatedCols += o.UpdatedCols
	ts.Deletes += o.Deletes
	ts.PointSelects += o.PointSelects
	ts.RangeSelects += o.RangeSelects
	ts.Aggregations += o.Aggregations
	ts.JoinQueries += o.JoinQueries
	ts.WideUpdates += o.WideUpdates
	ts.ensureCols(len(o.AttrUpdates))
	addInto := func(dst, src []int) {
		for i, v := range src {
			dst[i] += v
		}
	}
	addInto(ts.AttrUpdates, o.AttrUpdates)
	addInto(ts.AttrAggs, o.AttrAggs)
	addInto(ts.AttrGroupBys, o.AttrGroupBys)
	addInto(ts.AttrPreds, o.AttrPreds)
	addInto(ts.AttrOLAPPreds, o.AttrOLAPPreds)
	// Update-range tracking merges only when both sides watched the same
	// column (or ts never chose one).
	if o.UpdateRangeSeen {
		switch {
		case !ts.UpdateRangeSeen && (ts.UpdateRangeCol < 0 || ts.UpdateRangeCol == o.UpdateRangeCol):
			ts.UpdateRangeCol = o.UpdateRangeCol
			ts.UpdateRangeSeen = true
			ts.UpdateRangeLo, ts.UpdateRangeHi = o.UpdateRangeLo, o.UpdateRangeHi
			ts.UpdateRangeCount += o.UpdateRangeCount
		case ts.UpdateRangeSeen && ts.UpdateRangeCol == o.UpdateRangeCol:
			if value.Less(o.UpdateRangeLo, ts.UpdateRangeLo) {
				ts.UpdateRangeLo = o.UpdateRangeLo
			}
			if value.Less(ts.UpdateRangeHi, o.UpdateRangeHi) {
				ts.UpdateRangeHi = o.UpdateRangeHi
			}
			ts.UpdateRangeCount += o.UpdateRangeCount
		}
	}
}

func (ts *TableStats) ensureCols(n int) {
	if len(ts.AttrUpdates) >= n {
		return
	}
	grow := func(s []int) []int {
		ns := make([]int, n)
		copy(ns, s)
		return ns
	}
	ts.AttrUpdates = grow(ts.AttrUpdates)
	ts.AttrAggs = grow(ts.AttrAggs)
	ts.AttrGroupBys = grow(ts.AttrGroupBys)
	ts.AttrPreds = grow(ts.AttrPreds)
	ts.AttrOLAPPreds = grow(ts.AttrOLAPPreds)
}

// TotalQueries returns all recorded statements against the table.
func (ts *TableStats) TotalQueries() int {
	return ts.Inserts + ts.Updates + ts.Deletes + ts.PointSelects + ts.RangeSelects + ts.Aggregations
}

// InsertFraction returns the fraction of inserts among the table's
// statements — the paper's first horizontal-partitioning signal.
func (ts *TableStats) InsertFraction() float64 {
	tot := ts.TotalQueries()
	if tot == 0 {
		return 0
	}
	return float64(ts.Inserts) / float64(tot)
}

// OLTPAttrScore returns, per column, how strongly it is used by OLTP
// operations (updates, selective predicates) versus OLAP operations
// (aggregates, group-bys). Positive scores mark OLTP attributes — the
// vertical-partitioning signal.
func (ts *TableStats) OLTPAttrScore() []float64 {
	n := len(ts.AttrUpdates)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		oltp := float64(ts.AttrUpdates[i])
		olap := float64(ts.AttrAggs[i] + ts.AttrGroupBys[i])
		out[i] = oltp - olap
	}
	return out
}

// Recorder collects extended workload statistics; it is safe for
// concurrent use and is attached to the engine as a query observer in
// online mode.
type Recorder struct {
	mu      sync.Mutex
	tables  map[string]*TableStats
	joins   map[[2]string]int
	total   int
	elapsed time.Duration
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		tables: make(map[string]*TableStats),
		joins:  make(map[[2]string]int),
	}
}

func (r *Recorder) tableLocked(name string) *TableStats {
	k := strings.ToLower(name)
	ts, ok := r.tables[k]
	if !ok {
		ts = &TableStats{UpdateRangeCol: -1}
		r.tables[k] = ts
	}
	return ts
}

// Observe records one executed query and its runtime. It implements the
// engine's QueryObserver interface.
func (r *Recorder) Observe(q *query.Query, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.elapsed += d
	ts := r.tableLocked(q.Table)
	switch q.Kind {
	case query.Insert:
		ts.Inserts++
		ts.InsertedRows += len(q.Rows)
	case query.Update:
		ts.Updates++
		ts.UpdatedCols += len(q.Set)
		maxCol := -1
		for c := range q.Set {
			if c > maxCol {
				maxCol = c
			}
		}
		predCols := expr.ColumnSet(q.Pred)
		for _, c := range predCols {
			if c > maxCol {
				maxCol = c
			}
		}
		ts.ensureCols(maxCol + 1)
		for c := range q.Set {
			ts.AttrUpdates[c]++
		}
		for _, c := range predCols {
			ts.AttrPreds[c]++
		}
		if len(q.Set)+len(predCols) >= wideUpdateCols {
			ts.WideUpdates++
		}
		r.trackUpdateRange(ts, q)
	case query.Delete:
		ts.Deletes++
		r.bumpPreds(ts, q.Pred)
	case query.Select:
		if len(expr.ColumnSet(q.Pred)) > 0 && isPoint(q.Pred) {
			ts.PointSelects++
		} else {
			ts.RangeSelects++
		}
		r.bumpPreds(ts, q.Pred)
		if q.Join != nil {
			r.recordJoin(q)
		}
	case query.Aggregate:
		ts.Aggregations++
		maxCol := -1
		for _, s := range q.Aggs {
			if s.Col > maxCol {
				maxCol = s.Col
			}
		}
		for _, c := range q.GroupBy {
			if c > maxCol {
				maxCol = c
			}
		}
		predCols := expr.ColumnSet(q.Pred)
		for _, c := range predCols {
			if c > maxCol {
				maxCol = c
			}
		}
		ts.ensureCols(maxCol + 1)
		for _, s := range q.Aggs {
			if s.Col >= 0 {
				ts.AttrAggs[s.Col]++
			}
		}
		for _, c := range q.GroupBy {
			ts.AttrGroupBys[c]++
		}
		for _, c := range predCols {
			ts.AttrPreds[c]++
			ts.AttrOLAPPreds[c]++
		}
		if q.Join != nil {
			ts.JoinQueries++
			r.recordJoin(q)
		}
	}
}

// isPoint treats a predicate as a point lookup when it contains an
// equality conjunct.
func isPoint(p expr.Predicate) bool {
	for _, c := range expr.Conjuncts(p) {
		if cmp, ok := c.(*expr.Comparison); ok && cmp.Op == expr.Eq {
			return true
		}
	}
	return false
}

func (r *Recorder) bumpPreds(ts *TableStats, p expr.Predicate) {
	cols := expr.ColumnSet(p)
	maxCol := -1
	for _, c := range cols {
		if c > maxCol {
			maxCol = c
		}
	}
	ts.ensureCols(maxCol + 1)
	for _, c := range cols {
		ts.AttrPreds[c]++
	}
}

// trackUpdateRange widens the observed update key range. The range column
// is the first predicate column seen carrying a range; once chosen it
// stays fixed so ranges accumulate consistently.
func (r *Recorder) trackUpdateRange(ts *TableStats, q *query.Query) {
	col := ts.UpdateRangeCol
	if col < 0 {
		for _, c := range expr.ColumnSet(q.Pred) {
			if _, ok := expr.RangeOn(q.Pred, c); ok {
				col = c
				break
			}
		}
		if col < 0 {
			return
		}
		ts.UpdateRangeCol = col
	}
	rg, ok := expr.RangeOn(q.Pred, col)
	if !ok || rg.Lo == nil || rg.Hi == nil {
		return
	}
	ts.UpdateRangeCount++
	if !ts.UpdateRangeSeen {
		ts.UpdateRangeLo, ts.UpdateRangeHi = *rg.Lo, *rg.Hi
		ts.UpdateRangeSeen = true
		return
	}
	if value.Less(*rg.Lo, ts.UpdateRangeLo) {
		ts.UpdateRangeLo = *rg.Lo
	}
	if value.Less(ts.UpdateRangeHi, *rg.Hi) {
		ts.UpdateRangeHi = *rg.Hi
	}
}

func (r *Recorder) recordJoin(q *query.Query) {
	a, b := strings.ToLower(q.Table), strings.ToLower(q.Join.Table)
	if a > b {
		a, b = b, a
	}
	r.joins[[2]string{a, b}]++
}

// Table returns a snapshot of the recorded statistics for a table (nil
// if never seen). The snapshot is a deep copy, so callers may read it
// freely while concurrent Observe calls keep mutating the live counters
// — returning the live pointer would race under the online monitor.
func (r *Recorder) Table(name string) *TableStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tables[strings.ToLower(name)].Clone()
}

// Merge folds another recorder's statistics into r. The other recorder
// is locked while it is read, so both sides may be live.
func (r *Recorder) Merge(o *Recorder) {
	if o == nil || o == r {
		return
	}
	o.mu.Lock()
	tables := make(map[string]*TableStats, len(o.tables))
	for k, ts := range o.tables {
		tables[k] = ts.Clone()
	}
	joins := make(map[[2]string]int, len(o.joins))
	for k, n := range o.joins {
		joins[k] = n
	}
	total, elapsed := o.total, o.elapsed
	o.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for k, ts := range tables {
		if mine, ok := r.tables[k]; ok {
			mine.Merge(ts)
		} else {
			r.tables[k] = ts
		}
	}
	for k, n := range joins {
		r.joins[k] += n
	}
	r.total += total
	r.elapsed += elapsed
}

// Tables returns the sorted names of observed tables.
func (r *Recorder) Tables() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.tables))
	for k := range r.tables {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// JoinCount returns how often the two tables were joined.
func (r *Recorder) JoinCount(a, b string) int {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a > b {
		a, b = b, a
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.joins[[2]string{a, b}]
}

// TotalQueries returns the number of observed queries.
func (r *Recorder) TotalQueries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TotalElapsed returns the accumulated execution time of observed queries.
func (r *Recorder) TotalElapsed() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.elapsed
}

// Reset clears all statistics (used when re-evaluation intervals roll
// over).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables = make(map[string]*TableStats)
	r.joins = make(map[[2]string]int)
	r.total = 0
	r.elapsed = 0
}
