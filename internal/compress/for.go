package compress

// forBlock is the frame size: per-block minima are stored alongside
// bit-packed deltas. It matches the column store's scan block so block
// kernels never straddle a frame.
const forBlock = 1024

// FoR is a frame-of-reference code vector: each forBlock-sized block
// stores its minimum code, and every code is kept as a bit-packed delta
// from its block's base. When codes cluster locally — sorted columns,
// time-correlated loads — the delta width is far below the global code
// width, and predicates still evaluate directly on the coded data: a
// range test against [lo, hi) becomes a per-block test against
// [lo-base, hi-base) on the packed deltas, with no decode.
type FoR struct {
	n      int
	base   []uint32 // per-block minimum code
	deltas *Packed  // code - base[i/forBlock], single global width
}

// NewFoR builds a frame-of-reference vector from codes.
func NewFoR(codes []uint32) *FoR {
	f := &FoR{n: len(codes)}
	var maxDelta uint32
	for b0 := 0; b0 < len(codes); b0 += forBlock {
		end := min(b0+forBlock, len(codes))
		lo, hi := codes[b0], codes[b0]
		for _, c := range codes[b0+1 : end] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		f.base = append(f.base, lo)
		if d := hi - lo; d > maxDelta {
			maxDelta = d
		}
	}
	deltas := make([]uint32, len(codes))
	for i, c := range codes {
		deltas[i] = c - f.base[i/forBlock]
	}
	f.deltas = Pack(deltas, int(maxDelta)+1)
	return f
}

// Len returns the number of codes.
func (f *FoR) Len() int { return f.n }

// Width returns the bits used per delta.
func (f *FoR) Width() uint { return f.deltas.Width() }

// Get returns the i-th code.
func (f *FoR) Get(i int) uint32 { return f.base[i/forBlock] + f.deltas.Get(i) }

// UnpackBlock bulk-decodes positions [start, start+len(dst)) into dst.
func (f *FoR) UnpackBlock(start int, dst []uint32) {
	f.deltas.UnpackBlock(start, dst)
	end := start + len(dst)
	for s := start; s < end; {
		blockEnd := min((s/forBlock+1)*forBlock, end)
		b := f.base[s/forBlock]
		if b != 0 {
			for i := s; i < blockEnd; i++ {
				dst[i-start] += b
			}
		}
		s = blockEnd
	}
}

// blockRange clamps the global range [lo, hi) into block blk's delta
// space: a delta d in the block matches iff d is in [dlo, dhi).
func (f *FoR) blockRange(blk int, lo, hi uint32) (dlo, dhi uint32) {
	b := f.base[blk]
	if hi <= b {
		return 0, 0
	}
	dhi = hi - b
	if lo > b {
		dlo = lo - b
	}
	return dlo, dhi
}

// RangeMatchWords writes the [lo, hi) match bits for positions
// [start, start+n). Block segments map the range into delta space and
// reuse the bit-packed kernel; a 64-aligned start keeps every segment
// word-aligned in out (the column store's block scans always are), and
// unaligned starts take a per-position path.
func (f *FoR) RangeMatchWords(start, n int, lo, hi uint32, out []uint64) {
	if start&63 != 0 {
		f.matchSlow(start, n, lo, hi, out, false)
		return
	}
	end := start + n
	for s := start; s < end; {
		segEnd := min((s/forBlock+1)*forBlock, end)
		dlo, dhi := f.blockRange(s/forBlock, lo, hi)
		f.deltas.RangeMatchWords(s, segEnd-s, dlo, dhi, out[(s-start)>>6:])
		s = segEnd
	}
}

// RangeMatchWordsAnd is RangeMatchWords ANDed into out; bits at
// positions >= n in the final word are preserved.
func (f *FoR) RangeMatchWordsAnd(start, n int, lo, hi uint32, out []uint64) {
	if start&63 != 0 {
		f.matchSlow(start, n, lo, hi, out, true)
		return
	}
	end := start + n
	for s := start; s < end; {
		segEnd := min((s/forBlock+1)*forBlock, end)
		dlo, dhi := f.blockRange(s/forBlock, lo, hi)
		f.deltas.RangeMatchWordsAnd(s, segEnd-s, dlo, dhi, out[(s-start)>>6:])
		s = segEnd
	}
}

// matchSlow is the per-position fallback for starts that are not
// 64-aligned (never hit by the column store's block-aligned scans).
func (f *FoR) matchSlow(start, n int, lo, hi uint32, out []uint64, and bool) {
	for i := 0; i < n; i++ {
		bit := uint64(1) << (uint(i) & 63)
		m := f.Get(start+i)-lo < hi-lo && hi > lo
		if and {
			if !m {
				out[i>>6] &^= bit
			}
		} else if m {
			out[i>>6] |= bit
		} else {
			out[i>>6] &^= bit
		}
	}
	if !and {
		// Zero trailing bits of the final word, matching the fast path.
		if rem := uint(n) & 63; rem != 0 {
			out[n>>6] &= 1<<rem - 1
		}
	}
}

// SizeBytes returns the in-memory payload size.
func (f *FoR) SizeBytes() int { return len(f.base)*4 + f.deltas.SizeBytes() }
