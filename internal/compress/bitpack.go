package compress

import "math/bits"

// Packed is a fixed-width bit-packed vector of uint32 codes. With a
// dictionary of d distinct values each code occupies ceil(log2(d)) bits,
// which is the compression the column store's main fragment gets from
// dictionary encoding.
type Packed struct {
	words []uint64
	width uint // bits per code; 0 means all codes are 0
	n     int
}

// BitsFor returns the number of bits needed to represent codes in
// [0, distinct).
func BitsFor(distinct int) uint {
	if distinct <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(distinct - 1)))
}

// Pack builds a packed vector from codes, sized for maxCode distinct codes.
func Pack(codes []uint32, distinct int) *Packed {
	w := BitsFor(distinct)
	p := &Packed{width: w, n: len(codes)}
	if w == 0 {
		return p
	}
	totalBits := uint64(len(codes)) * uint64(w)
	p.words = make([]uint64, (totalBits+63)/64)
	for i, c := range codes {
		p.set(i, c)
	}
	return p
}

func (p *Packed) set(i int, c uint32) {
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos / 64
	off := bitPos % 64
	p.words[word] |= uint64(c) << off
	if spill := off + uint64(p.width); spill > 64 {
		p.words[word+1] |= uint64(c) >> (64 - off)
	}
}

// Set overwrites the i-th code in place. The new code must fit the vector's
// width (i.e. be a valid code for the dictionary the vector was packed
// against).
func (p *Packed) Set(i int, c uint32) {
	if p.width == 0 {
		return // only code 0 exists
	}
	mask := uint64(1)<<p.width - 1
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos / 64
	off := bitPos % 64
	p.words[word] = p.words[word]&^(mask<<off) | uint64(c)<<off
	if spill := off + uint64(p.width); spill > 64 {
		rem := spill - 64
		remMask := uint64(1)<<rem - 1
		p.words[word+1] = p.words[word+1]&^remMask | uint64(c)>>(64-off)
	}
}

// Len returns the number of codes.
func (p *Packed) Len() int { return p.n }

// Width returns the bits used per code.
func (p *Packed) Width() uint { return p.width }

// Get returns the i-th code.
func (p *Packed) Get(i int) uint32 {
	if p.width == 0 {
		return 0
	}
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos / 64
	off := bitPos % 64
	v := p.words[word] >> off
	if spill := off + uint64(p.width); spill > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	return uint32(v & ((1 << p.width) - 1))
}

// ForEach streams all codes in order to fn. It is the sequential-scan fast
// path: codes are unpacked word-by-word without per-element bounds math.
func (p *Packed) ForEach(fn func(i int, code uint32)) {
	if p.width == 0 {
		for i := 0; i < p.n; i++ {
			fn(i, 0)
		}
		return
	}
	mask := uint64(1)<<p.width - 1
	for i := 0; i < p.n; i++ {
		bitPos := uint64(i) * uint64(p.width)
		word := bitPos / 64
		off := bitPos % 64
		v := p.words[word] >> off
		if spill := off + uint64(p.width); spill > 64 {
			v |= p.words[word+1] << (64 - off)
		}
		fn(i, uint32(v&mask))
	}
}

// RangeMatch writes, for every position i, whether the code lies in
// [lo, hi) into match[i]. It is the column store's hot predicate-scan
// loop, written without per-element closures.
func (p *Packed) RangeMatch(lo, hi uint32, match []bool) {
	n := p.n
	if len(match) < n {
		n = len(match)
	}
	if p.width == 0 {
		m := lo == 0 && hi > 0
		for i := 0; i < n; i++ {
			match[i] = m
		}
		return
	}
	width := uint64(p.width)
	mask := uint64(1)<<width - 1
	bitPos := uint64(0)
	for i := 0; i < n; i++ {
		word := bitPos >> 6
		off := bitPos & 63
		v := p.words[word] >> off
		if off+width > 64 {
			v |= p.words[word+1] << (64 - off)
		}
		code := uint32(v & mask)
		match[i] = code >= lo && code < hi
		bitPos += width
	}
}

// RangeMatchAnd is RangeMatch but ANDs into an already-initialized bitmap.
func (p *Packed) RangeMatchAnd(lo, hi uint32, match []bool) {
	n := p.n
	if len(match) < n {
		n = len(match)
	}
	if p.width == 0 {
		if lo == 0 && hi > 0 {
			return
		}
		for i := 0; i < n; i++ {
			match[i] = false
		}
		return
	}
	width := uint64(p.width)
	mask := uint64(1)<<width - 1
	bitPos := uint64(0)
	for i := 0; i < n; i++ {
		if match[i] {
			word := bitPos >> 6
			off := bitPos & 63
			v := p.words[word] >> off
			if off+width > 64 {
				v |= p.words[word+1] << (64 - off)
			}
			code := uint32(v & mask)
			match[i] = code >= lo && code < hi
		}
		bitPos += width
	}
}

// SizeBytes returns the in-memory size of the packed payload.
func (p *Packed) SizeBytes() int { return len(p.words) * 8 }
