package compress

import "math/bits"

// Packed is a fixed-width bit-packed vector of uint32 codes. With a
// dictionary of d distinct values each code occupies ceil(log2(d)) bits,
// which is the compression the column store's main fragment gets from
// dictionary encoding.
type Packed struct {
	words []uint64
	width uint // bits per code; 0 means all codes are 0
	n     int
}

// BitsFor returns the number of bits needed to represent codes in
// [0, distinct).
func BitsFor(distinct int) uint {
	if distinct <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(distinct - 1)))
}

// Pack builds a packed vector from codes, sized for maxCode distinct codes.
// The word array is padded by one zero word so readers can fetch two
// adjacent words unconditionally (a shift by 64-off yields 0 when off is
// 0, per Go's defined shift semantics), removing the code-straddles-a-word
// branch from every decode loop.
func Pack(codes []uint32, distinct int) *Packed {
	w := BitsFor(distinct)
	p := &Packed{width: w, n: len(codes)}
	if w == 0 {
		return p
	}
	totalBits := uint64(len(codes)) * uint64(w)
	p.words = make([]uint64, (totalBits+63)/64+1)
	for i, c := range codes {
		p.set(i, c)
	}
	return p
}

func (p *Packed) set(i int, c uint32) {
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos / 64
	off := bitPos % 64
	p.words[word] |= uint64(c) << off
	if spill := off + uint64(p.width); spill > 64 {
		p.words[word+1] |= uint64(c) >> (64 - off)
	}
}

// Set overwrites the i-th code in place. The new code must fit the vector's
// width (i.e. be a valid code for the dictionary the vector was packed
// against).
func (p *Packed) Set(i int, c uint32) {
	if p.width == 0 {
		return // only code 0 exists
	}
	mask := uint64(1)<<p.width - 1
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos / 64
	off := bitPos % 64
	p.words[word] = p.words[word]&^(mask<<off) | uint64(c)<<off
	if spill := off + uint64(p.width); spill > 64 {
		rem := spill - 64
		remMask := uint64(1)<<rem - 1
		p.words[word+1] = p.words[word+1]&^remMask | uint64(c)>>(64-off)
	}
}

// Len returns the number of codes.
func (p *Packed) Len() int { return p.n }

// Width returns the bits used per code.
func (p *Packed) Width() uint { return p.width }

// Get returns the i-th code.
func (p *Packed) Get(i int) uint32 {
	if p.width == 0 {
		return 0
	}
	bitPos := uint64(i) * uint64(p.width)
	word := bitPos / 64
	off := bitPos % 64
	v := p.words[word] >> off
	if spill := off + uint64(p.width); spill > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	return uint32(v & ((1 << p.width) - 1))
}

// UnpackBlock bulk-decodes the codes at positions [start, start+len(dst))
// into dst. It is the vectorized scan's decode primitive: callers decode a
// block of rows once into a reused buffer and then evaluate predicates or
// gather values over plain uint32 slices, instead of paying per-row Get
// calls with repeated bit-position math. start+len(dst) must not exceed
// Len().
func (p *Packed) UnpackBlock(start int, dst []uint32) {
	if p.width == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	width := uint64(p.width)
	mask := uint64(1)<<width - 1
	bitPos := uint64(start) * width
	words := p.words
	for i := range dst {
		word := bitPos >> 6
		off := bitPos & 63
		v := words[word] >> off
		if off+width > 64 {
			v |= words[word+1] << (64 - off)
		}
		dst[i] = uint32(v & mask)
		bitPos += width
	}
}

// RangeMatchWords is the fused predicate-scan kernel: for positions
// [start, start+n) it sets bit i of out iff code(start+i) lies in
// [lo, hi), packing 64 results per word. Decode and test happen in one
// pass with a branchless in-range check (unsigned code-lo < hi-lo), so
// the loop has no data-dependent branches. out must hold (n+63)/64
// words; trailing bits of the final word are zeroed. start must be
// word-aligned-free — any position works.
func (p *Packed) RangeMatchWords(start, n int, lo, hi uint32, out []uint64) {
	nw := n >> 6
	if hi <= lo {
		for i := range out[:(n+63)>>6] {
			out[i] = 0
		}
		return
	}
	if p.width == 0 {
		// Only code 0 exists; it matches iff lo == 0 (hi > lo >= 0).
		var fill uint64
		if lo == 0 {
			fill = ^uint64(0)
		}
		for i := 0; i < nw; i++ {
			out[i] = fill
		}
		if rem := uint(n) & 63; rem != 0 {
			out[nw] = fill & (1<<rem - 1)
		}
		return
	}
	width := uint64(p.width)
	mask := uint64(1)<<width - 1
	span := hi - lo
	words := p.words
	bitPos := uint64(start) * width
	for wi := 0; wi < nw; wi++ {
		var w uint64
		for j := 0; j < 64; j++ {
			word := bitPos >> 6
			off := bitPos & 63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			var b uint64
			if uint32(v&mask)-lo < span {
				b = 1
			}
			w |= b << uint(j)
			bitPos += width
		}
		out[wi] = w
	}
	if rem := n & 63; rem != 0 {
		var w uint64
		for j := 0; j < rem; j++ {
			word := bitPos >> 6
			off := bitPos & 63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			var b uint64
			if uint32(v&mask)-lo < span {
				b = 1
			}
			w |= b << uint(j)
			bitPos += width
		}
		out[nw] = w
	}
}

// RangeMatchWordsAnd is RangeMatchWords ANDed into an already-initialized
// bitmap: out[wi] &= <64 match bits>. Output words that are already zero
// skip their 64 decodes entirely, which is why callers evaluate the most
// selective conjunct first. Bits at positions >= n in the final word are
// preserved.
func (p *Packed) RangeMatchWordsAnd(start, n int, lo, hi uint32, out []uint64) {
	nw := n >> 6
	rem := n & 63
	if hi <= lo || p.width == 0 {
		all := hi > lo && lo == 0 // width 0: every code is 0
		if all {
			return // AND with all-ones
		}
		for i := 0; i < nw; i++ {
			out[i] = 0
		}
		if rem != 0 {
			out[nw] &= ^uint64(0) << uint(rem)
		}
		return
	}
	width := uint64(p.width)
	mask := uint64(1)<<width - 1
	span := hi - lo
	words := p.words
	bitPos := uint64(start) * width
	for wi := 0; wi < nw; wi++ {
		cur := out[wi]
		if cur == 0 {
			bitPos += 64 * width
			continue
		}
		var w uint64
		for j := 0; j < 64; j++ {
			word := bitPos >> 6
			off := bitPos & 63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			var b uint64
			if uint32(v&mask)-lo < span {
				b = 1
			}
			w |= b << uint(j)
			bitPos += width
		}
		out[wi] = cur & w
	}
	if rem != 0 {
		lowMask := uint64(1)<<uint(rem) - 1
		if out[nw]&lowMask == 0 {
			return
		}
		var w uint64
		for j := 0; j < rem; j++ {
			word := bitPos >> 6
			off := bitPos & 63
			v := words[word] >> off
			if off+width > 64 {
				v |= words[word+1] << (64 - off)
			}
			var b uint64
			if uint32(v&mask)-lo < span {
				b = 1
			}
			w |= b << uint(j)
			bitPos += width
		}
		out[nw] &= w | ^lowMask
	}
}

// SizeBytes returns the in-memory size of the packed payload (excluding
// the read-padding word).
func (p *Packed) SizeBytes() int {
	totalBits := uint64(p.n) * uint64(p.width)
	return int((totalBits + 63) / 64 * 8)
}
