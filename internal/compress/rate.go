package compress

import "hybridstore/internal/value"

// Rate quantifies how much dictionary encoding shrinks a column. It is
// defined as 1 - compressed/uncompressed, so 0 means incompressible and
// values toward 1 mean highly repetitive data. The paper's f_compression
// adjustment is a function of this rate (their example uses a rate of 0.7).
func Rate(uncompressedBytes, compressedBytes int) float64 {
	if uncompressedBytes <= 0 {
		return 0
	}
	r := 1 - float64(compressedBytes)/float64(uncompressedBytes)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// ColumnRate computes the dictionary-compression rate for a column with the
// given row count, distinct count and element type: packed codes plus the
// dictionary payload versus the uncompressed value payload.
func ColumnRate(rows, distinct int, typ value.Type, avgVarcharLen int) float64 {
	if rows == 0 {
		return 0
	}
	elem := 8
	switch typ {
	case value.Integer:
		elem = 4
	case value.Varchar:
		elem = avgVarcharLen
		if elem <= 0 {
			elem = 16
		}
	}
	uncompressed := rows * elem
	codeBits := BitsFor(distinct)
	compressed := (rows*int(codeBits))/8 + distinct*elem
	return Rate(uncompressed, compressed)
}
