package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/value"
)

func intVals(xs ...int64) []value.Value {
	out := make([]value.Value, len(xs))
	for i, x := range xs {
		out[i] = value.NewInt(x)
	}
	return out
}

func TestNewDictSortedDistinct(t *testing.T) {
	d := NewDict(intVals(5, 3, 5, 1, 3, 9))
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	want := []int64{1, 3, 5, 9}
	for i, w := range want {
		if d.Value(uint32(i)).Int() != w {
			t.Errorf("Value(%d) = %v, want %d", i, d.Value(uint32(i)), w)
		}
	}
}

func TestDictExcludesNull(t *testing.T) {
	d := NewDict([]value.Value{value.NewInt(1), value.Null(value.Integer), value.NewInt(2)})
	if d.Len() != 2 {
		t.Errorf("NULL should be excluded: len=%d", d.Len())
	}
}

func TestDictCode(t *testing.T) {
	d := NewDict(intVals(10, 20, 30))
	if c, ok := d.Code(value.NewInt(20)); !ok || c != 1 {
		t.Errorf("Code(20) = %d, %v", c, ok)
	}
	if _, ok := d.Code(value.NewInt(25)); ok {
		t.Error("Code(25) should miss")
	}
}

func TestDictCodeRange(t *testing.T) {
	d := NewDict(intVals(10, 20, 30, 40))
	cases := []struct {
		op     CodeRangeOp
		v      int64
		lo, hi uint32
	}{
		{RangeEq, 20, 1, 2},
		{RangeEq, 25, 2, 2}, // empty
		{RangeLt, 30, 0, 2},
		{RangeLe, 30, 0, 3},
		{RangeGt, 20, 2, 4},
		{RangeGe, 20, 1, 4},
		{RangeLt, 5, 0, 0},
		{RangeGe, 45, 4, 4},
	}
	for _, c := range cases {
		lo, hi := d.CodeRange(c.op, value.NewInt(c.v))
		if lo != c.lo || hi != c.hi {
			t.Errorf("CodeRange(%v, %d) = [%d,%d), want [%d,%d)", c.op, c.v, lo, hi, c.lo, c.hi)
		}
	}
}

func TestDictVarchar(t *testing.T) {
	d := NewDict([]value.Value{value.NewVarchar("b"), value.NewVarchar("a"), value.NewVarchar("b")})
	if d.Len() != 2 || d.Value(0).Varchar() != "a" {
		t.Errorf("varchar dict broken: %v", d.Values())
	}
}

func TestUDict(t *testing.T) {
	d := NewUDict()
	c1 := d.GetOrAdd(value.NewInt(100))
	c2 := d.GetOrAdd(value.NewInt(50))
	c3 := d.GetOrAdd(value.NewInt(100))
	if c1 != 0 || c2 != 1 || c3 != 0 {
		t.Errorf("codes = %d,%d,%d", c1, c2, c3)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if v := d.Value(1); v.Int() != 50 {
		t.Errorf("Value(1) = %v", v)
	}
	if c, ok := d.Code(value.NewInt(50)); !ok || c != 1 {
		t.Errorf("Code(50) = %d, %v", c, ok)
	}
	if _, ok := d.Code(value.NewInt(1)); ok {
		t.Error("Code(1) should miss")
	}
	if len(d.Values()) != 2 {
		t.Error("Values broken")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]uint{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8, 257: 9, 1 << 20: 20}
	for d, w := range cases {
		if got := BitsFor(d); got != w {
			t.Errorf("BitsFor(%d) = %d, want %d", d, got, w)
		}
	}
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, distinct := range []int{1, 2, 3, 7, 31, 100, 4096, 1 << 17} {
		n := 1000
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(rng.Intn(distinct))
		}
		p := Pack(codes, distinct)
		if p.Len() != n {
			t.Fatalf("Len = %d", p.Len())
		}
		for i, c := range codes {
			if got := p.Get(i); got != c {
				t.Fatalf("distinct=%d Get(%d) = %d, want %d", distinct, i, got, c)
			}
		}
		dst := make([]uint32, n)
		p.UnpackBlock(0, dst)
		for idx, code := range dst {
			if code != codes[idx] {
				t.Fatalf("UnpackBlock code %d at %d, want %d", code, idx, codes[idx])
			}
		}
	}
}

func TestPackWidthZero(t *testing.T) {
	p := Pack([]uint32{0, 0, 0}, 1)
	if p.Width() != 0 || p.SizeBytes() != 0 {
		t.Errorf("width-0 vector should occupy no payload: w=%d size=%d", p.Width(), p.SizeBytes())
	}
	if p.Get(2) != 0 {
		t.Error("width-0 Get should be 0")
	}
	dst := []uint32{7, 7, 7}
	p.UnpackBlock(0, dst)
	for i, c := range dst {
		if c != 0 {
			t.Errorf("width-0 UnpackBlock[%d] = %d", i, c)
		}
	}
}

func TestPackSizeBytes(t *testing.T) {
	p := Pack(make([]uint32, 64), 2) // 64 codes × 1 bit = 1 word
	if p.SizeBytes() != 8 {
		t.Errorf("SizeBytes = %d, want 8", p.SizeBytes())
	}
}

// Property: pack/unpack round-trips for arbitrary code slices.
func TestPackProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		codes := make([]uint32, len(raw))
		maxC := 0
		for i, r := range raw {
			codes[i] = uint32(r)
			if int(r) >= maxC {
				maxC = int(r) + 1
			}
		}
		p := Pack(codes, maxC)
		for i, c := range codes {
			if p.Get(i) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	if r := Rate(100, 30); r != 0.7 {
		t.Errorf("Rate(100,30) = %v", r)
	}
	if r := Rate(100, 150); r != 0 {
		t.Errorf("incompressible should clamp to 0: %v", r)
	}
	if r := Rate(0, 10); r != 0 {
		t.Errorf("empty input rate = %v", r)
	}
	if r := Rate(100, -1); r != 1 {
		t.Errorf("over-compression clamps to 1: %v", r)
	}
}

func TestColumnRate(t *testing.T) {
	// Few distinct values over many rows compress well.
	high := ColumnRate(1_000_000, 10, value.Bigint, 0)
	low := ColumnRate(1_000_000, 1_000_000, value.Bigint, 0)
	if high < 0.9 {
		t.Errorf("10 distinct over 1m rows should compress well: %v", high)
	}
	if low > 0.5 {
		t.Errorf("unique column should compress poorly: %v", low)
	}
	if high <= low {
		t.Errorf("rate ordering violated: %v <= %v", high, low)
	}
	if r := ColumnRate(0, 0, value.Integer, 0); r != 0 {
		t.Errorf("empty column rate = %v", r)
	}
	// Varchar uses the average length.
	v := ColumnRate(10000, 20, value.Varchar, 40)
	if v < 0.9 {
		t.Errorf("repetitive varchar should compress well: %v", v)
	}
}

// Property: column rate is monotonically non-increasing in distinct count.
func TestColumnRateMonotonic(t *testing.T) {
	rows := 100000
	prev := 2.0
	for _, d := range []int{1, 10, 100, 1000, 10000, 100000} {
		r := ColumnRate(rows, d, value.Bigint, 0)
		if r > prev {
			t.Errorf("rate increased with distinct: d=%d r=%v prev=%v", d, r, prev)
		}
		prev = r
	}
}

func TestUnpackBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, distinct := range []int{1, 2, 3, 31, 100, 4096, 1 << 17} {
		n := 1500
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(rng.Intn(distinct))
		}
		p := Pack(codes, distinct)
		dst := make([]uint32, n)
		for i := range dst {
			dst[i] = ^uint32(0) // must be overwritten
		}
		// Arbitrary block boundaries, including word-straddling starts.
		for _, blk := range [][2]int{{0, 64}, {1, 63}, {63, 130}, {500, 1000}, {0, n}, {n - 1, 1}, {n, 0}} {
			start, ln := blk[0], blk[1]
			p.UnpackBlock(start, dst[:ln])
			for i := 0; i < ln; i++ {
				if dst[i] != codes[start+i] {
					t.Fatalf("distinct=%d UnpackBlock(%d)[%d] = %d, want %d",
						distinct, start, i, dst[i], codes[start+i])
				}
			}
		}
	}
}
