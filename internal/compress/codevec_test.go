package compress

import (
	"math/rand"
	"testing"
)

// genCodes produces code vectors with the distributions each coding
// targets: runny (RLE), locally clustered (FoR) and uniform (Packed).
func genCodes(rng *rand.Rand, n, distinct int, shape string) []uint32 {
	codes := make([]uint32, n)
	switch shape {
	case "runs":
		c := uint32(rng.Intn(distinct))
		for i := range codes {
			if rng.Intn(200) == 0 {
				c = uint32(rng.Intn(distinct))
			}
			codes[i] = c
		}
	case "clustered":
		for i := range codes {
			base := uint32(i / forBlock * 7 % distinct)
			codes[i] = (base + uint32(rng.Intn(16))) % uint32(distinct)
		}
	default:
		for i := range codes {
			codes[i] = uint32(rng.Intn(distinct))
		}
	}
	return codes
}

func vectorsFor(t *testing.T, codes []uint32, distinct int) map[string]CodeVector {
	t.Helper()
	return map[string]CodeVector{
		"packed": Pack(codes, distinct),
		"rle":    NewRLE(codes),
		"for":    NewFoR(codes),
		"encode": Encode(codes, distinct),
	}
}

// TestCodeVectorRoundTrip: Get and UnpackBlock reproduce the source codes
// for every coding.
func TestCodeVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []string{"runs", "clustered", "uniform"} {
		for _, n := range []int{0, 1, 63, 64, 1000, 1024, 5000} {
			codes := genCodes(rng, n, 300, shape)
			for name, v := range vectorsFor(t, codes, 300) {
				if v.Len() != n {
					t.Fatalf("%s/%s n=%d: Len=%d", name, shape, n, v.Len())
				}
				for i, want := range codes {
					if got := v.Get(i); got != want {
						t.Fatalf("%s/%s n=%d: Get(%d)=%d want %d", name, shape, n, i, got, want)
					}
				}
				// UnpackBlock at assorted offsets and lengths.
				for trial := 0; trial < 20 && n > 0; trial++ {
					start := rng.Intn(n)
					ln := rng.Intn(n - start + 1)
					dst := make([]uint32, ln)
					v.UnpackBlock(start, dst)
					for i, got := range dst {
						if got != codes[start+i] {
							t.Fatalf("%s/%s: UnpackBlock(%d)[%d]=%d want %d", name, shape, start, i, got, codes[start+i])
						}
					}
				}
			}
		}
	}
}

// TestRangeMatchKernelEquivalence: every coding's fused kernels agree with
// decode-then-filter, including trailing-bit handling and the And
// variant's preservation of bits at positions >= n.
func TestRangeMatchKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const distinct = 120
	for _, shape := range []string{"runs", "clustered", "uniform"} {
		codes := genCodes(rng, 4096+257, distinct, shape)
		vectors := vectorsFor(t, codes, distinct)
		for trial := 0; trial < 200; trial++ {
			// Block-aligned and word-aligned starts (the scan's shapes)
			// plus arbitrary ones.
			var start int
			switch trial % 3 {
			case 0:
				start = (rng.Intn(4) * 1024)
			case 1:
				start = rng.Intn(60) * 64
			default:
				start = rng.Intn(len(codes))
			}
			n := rng.Intn(len(codes) - start + 1)
			lo := uint32(rng.Intn(distinct + 2))
			hi := uint32(rng.Intn(distinct + 2))
			if trial%7 == 0 {
				hi = lo // empty range edge case
			}
			nw := (n + 63) / 64
			want := make([]uint64, nw+1)
			for i := 0; i < n; i++ {
				c := codes[start+i]
				if hi > lo && c >= lo && c < hi {
					want[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			for name, v := range vectors {
				got := make([]uint64, nw+1)
				for i := range got {
					got[i] = 0xdeadbeefdeadbeef // kernels must overwrite [0, nw)
				}
				v.RangeMatchWords(start, n, lo, hi, got)
				for w := 0; w < nw; w++ {
					if got[w] != want[w] {
						t.Fatalf("%s/%s RangeMatchWords(start=%d n=%d lo=%d hi=%d) word %d = %x want %x",
							name, shape, start, n, lo, hi, w, got[w], want[w])
					}
				}

				// And variant over a random pre-bitmap: result must equal
				// pre & match below n and preserve pre at/above n.
				pre := make([]uint64, nw+1)
				for i := range pre {
					pre[i] = rng.Uint64()
				}
				gotAnd := append([]uint64(nil), pre...)
				v.RangeMatchWordsAnd(start, n, lo, hi, gotAnd)
				for w := 0; w <= nw; w++ {
					mask := ^uint64(0)
					var expect uint64
					if w < nw {
						if rem := n & 63; w == nw-1 && rem != 0 {
							low := uint64(1)<<uint(rem) - 1
							expect = pre[w]&want[w]&low | pre[w]&^low
						} else {
							expect = pre[w] & want[w]
						}
					} else {
						expect = pre[w] // untouched word past the range
					}
					if gotAnd[w]&mask != expect {
						t.Fatalf("%s/%s RangeMatchWordsAnd(start=%d n=%d lo=%d hi=%d) word %d = %x want %x",
							name, shape, start, n, lo, hi, w, gotAnd[w], expect)
					}
				}
			}
		}
	}
}

// TestEncodeChoosesByShape: Encode returns the coding that fits the data
// and never loses information.
func TestEncodeChoosesByShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8 * forBlock

	runs := genCodes(rng, n, 1000, "runs")
	if _, ok := Encode(runs, 1000).(*RLE); !ok {
		t.Errorf("runny data: Encode did not choose RLE")
	}
	clustered := make([]uint32, n)
	for i := range clustered {
		clustered[i] = uint32(i/forBlock*5000) + uint32(rng.Intn(16))
	}
	if _, ok := Encode(clustered, 5000*(n/forBlock)+16).(*FoR); !ok {
		t.Errorf("clustered data: Encode did not choose FoR")
	}
	uniform := genCodes(rng, n, 60000, "uniform")
	if _, ok := Encode(uniform, 60000).(*Packed); !ok {
		t.Errorf("uniform data: Encode did not choose Packed")
	}

	// Whatever is chosen, the payload must round-trip.
	for _, codes := range [][]uint32{runs, clustered, uniform} {
		distinct := 0
		for _, c := range codes {
			if int(c) >= distinct {
				distinct = int(c) + 1
			}
		}
		v := Encode(codes, distinct)
		for i, want := range codes {
			if got := v.Get(i); got != want {
				t.Fatalf("Encode round-trip: Get(%d)=%d want %d (%T)", i, got, want, v)
			}
		}
	}

	// Small vectors always stay bit-packed (mutable).
	small := genCodes(rng, forBlock, 4, "runs")
	if _, ok := Encode(small, 4).(*Packed); !ok {
		t.Errorf("small vector: Encode did not stay Packed")
	}
}

// TestEncodeSizes: a chosen alternative coding is actually smaller.
func TestEncodeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range []string{"runs", "clustered", "uniform"} {
		codes := genCodes(rng, 8*forBlock, 2000, shape)
		v := Encode(codes, 2000)
		if _, ok := v.(*Packed); ok {
			continue
		}
		packed := Pack(codes, 2000)
		if v.SizeBytes() >= packed.SizeBytes() {
			t.Errorf("%s: Encode chose %T with %d bytes >= packed %d", shape, v, v.SizeBytes(), packed.SizeBytes())
		}
	}
}
