package compress

import "hybridstore/internal/metrics"

// Codec-mix counters: one increment per Encode decision, so /metrics
// shows which codings the merged main fragments actually ended up with.
var (
	mEncodePacked = metrics.Default().Counter("hs_compress_encode_packed_total",
		"main-fragment columns encoded bit-packed")
	mEncodeRLE = metrics.Default().Counter("hs_compress_encode_rle_total",
		"main-fragment columns encoded run-length")
	mEncodeFoR = metrics.Default().Counter("hs_compress_encode_for_total",
		"main-fragment columns encoded frame-of-reference")
)

// CodeVector is the read interface of a main-fragment code vector: a
// sequence of dictionary codes supporting bulk decode and the fused
// predicate kernels. Pack (bit-packed), NewRLE (run-length) and NewFoR
// (frame-of-reference) all produce one; Encode picks the smallest.
type CodeVector interface {
	// Len returns the number of codes.
	Len() int
	// Get returns the i-th code.
	Get(i int) uint32
	// UnpackBlock bulk-decodes positions [start, start+len(dst)) into dst.
	UnpackBlock(start int, dst []uint32)
	// RangeMatchWords sets bit i of out iff code(start+i) is in [lo, hi),
	// for i in [0, n), 64 results per word. out must hold (n+63)/64
	// words; trailing bits of the final word are zeroed.
	RangeMatchWords(start, n int, lo, hi uint32, out []uint64)
	// RangeMatchWordsAnd is RangeMatchWords ANDed into out; bits at
	// positions >= n in the final word are preserved.
	RangeMatchWordsAnd(start, n int, lo, hi uint32, out []uint64)
	// SizeBytes returns the in-memory payload size.
	SizeBytes() int
}

// Mutable is implemented by code vectors that support in-place overwrite
// of a single code (bit-packed vectors). RLE and FoR vectors are
// immutable — callers route updates through delete + re-append instead.
type Mutable interface {
	Set(i int, c uint32)
}

// encodeMinRows is the vector length below which Encode does not bother
// considering alternative codings: the absolute savings are tiny and
// bit-packed vectors keep in-place updates.
const encodeMinRows = 2 * forBlock

// encode-wins threshold: an alternative coding must save at least 25%
// over bit-packing to give up in-place mutability.
func beats(candidate, packed int) bool { return candidate*4 <= packed*3 }

// Encode builds the smallest code vector for codes drawn from a
// dictionary of `distinct` values: bit-packed by default, run-length when
// long runs dominate, frame-of-reference when codes cluster locally
// (e.g. sorted or time-correlated columns) so per-block deltas need
// fewer bits than global codes. The alternative codings answer range
// predicates directly on coded data — RLE kernels skip whole runs
// without unpacking — at the cost of in-place updates (see Mutable).
func Encode(codes []uint32, distinct int) CodeVector {
	p := Pack(codes, distinct)
	if len(codes) < encodeMinRows || p.SizeBytes() == 0 {
		mEncodePacked.Inc()
		return p
	}
	packedSize := p.SizeBytes()

	// Candidate sizes from one metadata pass each.
	runs := 1
	for i := 1; i < len(codes); i++ {
		if codes[i] != codes[i-1] {
			runs++
		}
	}
	rleSize := runs * 8

	var maxDelta uint32
	nblocks := 0
	for b0 := 0; b0 < len(codes); b0 += forBlock {
		end := min(b0+forBlock, len(codes))
		lo, hi := codes[b0], codes[b0]
		for _, c := range codes[b0+1 : end] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if d := hi - lo; d > maxDelta {
			maxDelta = d
		}
		nblocks++
	}
	forSize := nblocks*4 + int((uint64(len(codes))*uint64(BitsFor(int(maxDelta)+1))+63)/64*8)

	switch {
	case beats(rleSize, packedSize) && rleSize <= forSize:
		mEncodeRLE.Inc()
		return NewRLE(codes)
	case beats(forSize, packedSize):
		mEncodeFoR.Inc()
		return NewFoR(codes)
	default:
		mEncodePacked.Inc()
		return p
	}
}
