// Package compress implements the dictionary encoding and bit-packing
// primitives of the column store: a sorted, read-optimized dictionary for
// the main fragment, an unsorted append-friendly dictionary for the delta
// fragment, and fixed-width bit-packed code vectors. It also defines the
// compression-rate metric that the paper's cost model consumes through
// f_compression.
package compress

import (
	"sort"

	"hybridstore/internal/value"
)

// Dict is a sorted, immutable dictionary mapping codes to values. Because
// the values are sorted, order-preserving code comparisons can answer
// range predicates directly on the encoded representation — this is the
// "implicit index" the paper ascribes to the column store.
type Dict struct {
	vals []value.Value
}

// NewDict builds a sorted dictionary from the distinct values of vals.
// NULLs are excluded; callers track them separately.
func NewDict(vals []value.Value) *Dict {
	distinct := make([]value.Value, 0, len(vals))
	seen := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		k := v.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		distinct = append(distinct, v)
	}
	sort.Slice(distinct, func(i, j int) bool { return value.Less(distinct[i], distinct[j]) })
	return &Dict{vals: distinct}
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// Value returns the value for a code. Codes are dense in [0, Len).
func (d *Dict) Value(code uint32) value.Value { return d.vals[code] }

// Code finds the code of v via binary search.
func (d *Dict) Code(v value.Value) (uint32, bool) {
	i := sort.Search(len(d.vals), func(i int) bool { return value.Compare(d.vals[i], v) >= 0 })
	if i < len(d.vals) && value.Equal(d.vals[i], v) {
		return uint32(i), true
	}
	return 0, false
}

// CodeRange returns the half-open code interval [lo, hi) of values
// satisfying op against v. This turns a value predicate into an integer
// range check on codes.
func (d *Dict) CodeRange(op CodeRangeOp, v value.Value) (lo, hi uint32) {
	n := len(d.vals)
	first := sort.Search(n, func(i int) bool { return value.Compare(d.vals[i], v) >= 0 })
	firstGreater := sort.Search(n, func(i int) bool { return value.Compare(d.vals[i], v) > 0 })
	switch op {
	case RangeEq:
		return uint32(first), uint32(firstGreater)
	case RangeLt:
		return 0, uint32(first)
	case RangeLe:
		return 0, uint32(firstGreater)
	case RangeGt:
		return uint32(firstGreater), uint32(n)
	case RangeGe:
		return uint32(first), uint32(n)
	default:
		return 0, 0
	}
}

// CodeRangeOp selects the comparison for CodeRange.
type CodeRangeOp uint8

const (
	RangeEq CodeRangeOp = iota
	RangeLt
	RangeLe
	RangeGt
	RangeGe
)

// Values exposes the sorted value slice (read-only by convention); the
// merge path uses it to combine dictionaries without re-sorting.
func (d *Dict) Values() []value.Value { return d.vals }

// UDict is an unsorted dictionary used by the write-optimized delta
// fragment. Codes are assigned in arrival order; lookup is via a hash map,
// so inserts are O(1) but there is no order-preserving code comparison.
type UDict struct {
	vals  []value.Value
	index map[string]uint32
}

// NewUDict returns an empty unsorted dictionary.
func NewUDict() *UDict {
	return &UDict{index: make(map[string]uint32)}
}

// Len returns the number of distinct values.
func (d *UDict) Len() int { return len(d.vals) }

// Value returns the value for a code.
func (d *UDict) Value(code uint32) value.Value { return d.vals[code] }

// Code returns the existing code for v.
func (d *UDict) Code(v value.Value) (uint32, bool) {
	c, ok := d.index[v.Key()]
	return c, ok
}

// GetOrAdd returns the code for v, inserting it if new.
func (d *UDict) GetOrAdd(v value.Value) uint32 {
	k := v.Key()
	if c, ok := d.index[k]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.vals = append(d.vals, v)
	d.index[k] = c
	return c
}

// Values exposes the value slice in code order.
func (d *UDict) Values() []value.Value { return d.vals }
