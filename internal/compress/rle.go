package compress

import "sort"

// RLE is a run-length-encoded code vector: maximal runs of equal codes
// stored as (code, cumulative exclusive end). Merged column-store
// fragments of clustered data (few distinct values, or sorted arrival)
// collapse to a handful of runs, and the predicate kernels then work
// run-at-a-time — a whole run matches or misses with one comparison and
// a word-wide bit fill, so morsels over RLE data skip entire runs
// without unpacking a single code.
type RLE struct {
	n     int
	codes []uint32 // value of each run
	ends  []int32  // exclusive cumulative end of each run, ascending
}

// NewRLE run-length-encodes codes.
func NewRLE(codes []uint32) *RLE {
	r := &RLE{n: len(codes)}
	for i := 0; i < len(codes); {
		j := i + 1
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		r.codes = append(r.codes, codes[i])
		r.ends = append(r.ends, int32(j))
		i = j
	}
	return r
}

// Len returns the number of codes.
func (r *RLE) Len() int { return r.n }

// Runs returns the number of runs.
func (r *RLE) Runs() int { return len(r.codes) }

// runAt returns the index of the run containing position i.
func (r *RLE) runAt(i int) int {
	return sort.Search(len(r.ends), func(k int) bool { return int(r.ends[k]) > i })
}

// runStart returns the first position of run k.
func (r *RLE) runStart(k int) int {
	if k == 0 {
		return 0
	}
	return int(r.ends[k-1])
}

// Get returns the i-th code.
func (r *RLE) Get(i int) uint32 { return r.codes[r.runAt(i)] }

// UnpackBlock bulk-decodes positions [start, start+len(dst)) into dst.
func (r *RLE) UnpackBlock(start int, dst []uint32) {
	if len(dst) == 0 {
		return
	}
	end := start + len(dst)
	for k := r.runAt(start); k < len(r.ends); k++ {
		runEnd := min(int(r.ends[k]), end)
		c := r.codes[k]
		for i := max(r.runStart(k), start); i < runEnd; i++ {
			dst[i-start] = c
		}
		if runEnd == end {
			return
		}
	}
}

// setBits sets bits [from, to) of out (word-wide fills).
func setBits(out []uint64, from, to int) {
	if from >= to {
		return
	}
	fw, tw := from>>6, (to-1)>>6
	loMask := ^uint64(0) << (uint(from) & 63)
	hiMask := ^uint64(0) >> (63 - uint(to-1)&63)
	if fw == tw {
		out[fw] |= loMask & hiMask
		return
	}
	out[fw] |= loMask
	for w := fw + 1; w < tw; w++ {
		out[w] = ^uint64(0)
	}
	out[tw] |= hiMask
}

// clearBits clears bits [from, to) of out.
func clearBits(out []uint64, from, to int) {
	if from >= to {
		return
	}
	fw, tw := from>>6, (to-1)>>6
	loMask := ^uint64(0) << (uint(from) & 63)
	hiMask := ^uint64(0) >> (63 - uint(to-1)&63)
	if fw == tw {
		out[fw] &^= loMask & hiMask
		return
	}
	out[fw] &^= loMask
	for w := fw + 1; w < tw; w++ {
		out[w] = 0
	}
	out[tw] &^= hiMask
}

// RangeMatchWords writes the [lo, hi) match bits for positions
// [start, start+n): the output is zeroed, then each overlapping run
// whose code matches fills its clipped bit range — runs that miss cost
// one comparison regardless of their length.
func (r *RLE) RangeMatchWords(start, n int, lo, hi uint32, out []uint64) {
	for i := range out[:(n+63)>>6] {
		out[i] = 0
	}
	if hi <= lo || n <= 0 {
		return
	}
	end := start + n
	for k := r.runAt(start); k < len(r.ends); k++ {
		rs := max(r.runStart(k), start)
		re := min(int(r.ends[k]), end)
		if c := r.codes[k]; c-lo < hi-lo {
			setBits(out, rs-start, re-start)
		}
		if re == end {
			return
		}
	}
}

// RangeMatchWordsAnd ANDs the match bits into out: runs whose code
// misses clear their clipped bit range, matching runs leave out
// untouched. Bits at positions >= n in the final word are preserved.
func (r *RLE) RangeMatchWordsAnd(start, n int, lo, hi uint32, out []uint64) {
	if n <= 0 {
		return
	}
	if hi <= lo {
		clearBits(out, 0, n)
		return
	}
	end := start + n
	for k := r.runAt(start); k < len(r.ends); k++ {
		rs := max(r.runStart(k), start)
		re := min(int(r.ends[k]), end)
		if c := r.codes[k]; c-lo >= hi-lo {
			clearBits(out, rs-start, re-start)
		}
		if re == end {
			return
		}
	}
}

// SizeBytes returns the in-memory payload size.
func (r *RLE) SizeBytes() int { return len(r.codes)*4 + len(r.ends)*4 }
