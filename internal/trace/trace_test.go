package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("scan")
	if sp != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	sp.AddRowsIn(5)
	sp.AddRowsOut(3)
	sp.Add("blocks", 2)
	sp.End()
	if sp.Duration() != 0 || sp.RowsOut() != 0 || sp.Stage() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	tr.AddMorselRun(10, 4)
	tr.AddWorkerBusy(1, time.Millisecond)
	if tr.Summary() != "" || tr.Spans() != nil {
		t.Fatal("nil trace accessors must return zero values")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("context without trace must return nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("nil context must return nil")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New()
	sp := tr.Start("scan")
	sp.AddRowsIn(100)
	sp.AddRowsOut(40)
	sp.Add("blocks_scanned", 3)
	sp.Add("blocks_skipped", 7)
	sp.Add("blocks_scanned", 2) // accumulates
	time.Sleep(time.Millisecond)
	sp.End()
	d := sp.Duration()
	if d <= 0 {
		t.Fatalf("duration = %v, want > 0", d)
	}
	sp.End() // second End must not reset the duration
	if sp.Duration() != d {
		t.Fatal("second End changed the duration")
	}
	if sp.RowsIn() != 100 || sp.RowsOut() != 40 {
		t.Fatalf("rows = %d/%d, want 100/40", sp.RowsIn(), sp.RowsOut())
	}
	kv := sp.Detail()
	if len(kv) != 2 || kv[0].Key != "blocks_scanned" || kv[0].Val != 5 {
		t.Fatalf("detail = %v, want blocks_scanned=5 first", kv)
	}
	if got := sp.DetailString(); got != "blocks_scanned=5 blocks_skipped=7" {
		t.Fatalf("detail string = %q", got)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0] != sp {
		t.Fatalf("trace spans = %v", spans)
	}
}

func TestWorkerBusyAndMorsels(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr.AddWorkerBusy(w, time.Duration(w+1)*time.Millisecond)
			tr.AddMorselRun(10, 4)
		}(w)
	}
	wg.Wait()
	m, runs := tr.Morsels()
	if m != 40 || runs != 4 {
		t.Fatalf("morsels = %d runs = %d, want 40/4", m, runs)
	}
	busy := tr.WorkerBusy()
	if len(busy) != 4 {
		t.Fatalf("workers = %d, want 4", len(busy))
	}
	for i := 1; i < len(busy); i++ {
		if busy[i].Worker < busy[i-1].Worker {
			t.Fatal("worker busy not sorted by id")
		}
	}
}

func TestSummaryAndContext(t *testing.T) {
	tr := New()
	sp := tr.Start("scan")
	sp.AddRowsOut(7)
	sp.Add("blocks_scanned", 1)
	sp.End()
	tr.AddMorselRun(5, 2)
	tr.AddWorkerBusy(0, time.Millisecond)
	sum := tr.Summary()
	for _, want := range []string{"stage=scan", "rows_out=7", "blocks_scanned=1", "morsels=5"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if got := WithTrace(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("attaching a nil trace must be a no-op")
	}
}
