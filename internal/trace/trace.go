// Package trace is the engine's per-statement execution tracer: a
// lightweight span collector threaded from engine.ExecContext through
// the storage scan/aggregate/join paths and the worker pool, recording
// per-stage wall time, row counts and storage-level counters (blocks
// scanned vs. zone-map-skipped, delta-vs-main rows, morsel and worker
// activity, WAL group-commit wait).
//
// Every method is nil-receiver safe: a nil *Trace (the default — tracing
// is off unless the statement is an EXPLAIN ANALYZE or the slow-query
// log armed it) costs one predictable branch at span boundaries and
// nothing at all in row loops, because instrumented code accumulates
// counters locally and reports them once per span. The overhead budget
// with tracing disabled is the same as internal/monitor's: under 2% on
// the hot scan path, enforced by an engine benchmark test.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// KV is one named counter attached to a span ("blocks_scanned", 12).
type KV struct {
	Key string
	Val int64
}

// Span is one traced execution stage. Counters are accumulated with Add
// and the span is closed with End; a nil *Span ignores every call, so
// callers never need to guard on whether tracing is active.
type Span struct {
	mu      sync.Mutex
	stage   string
	start   time.Time
	dur     time.Duration
	rowsIn  int64
	rowsOut int64
	kv      []KV
	done    bool
}

// End closes the span, fixing its duration. Safe to call twice (the
// first call wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	s.mu.Unlock()
}

// AddRowsIn accumulates input rows (rows entering the stage).
func (s *Span) AddRowsIn(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.rowsIn += n
	s.mu.Unlock()
}

// AddRowsOut accumulates output rows (rows the stage produced).
func (s *Span) AddRowsOut(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.rowsOut += n
	s.mu.Unlock()
}

// Add accumulates a named counter on the span. Keys keep first-add
// order in the rendered detail.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.kv {
		if s.kv[i].Key == key {
			s.kv[i].Val += n
			s.mu.Unlock()
			return
		}
	}
	s.kv = append(s.kv, KV{key, n})
	s.mu.Unlock()
}

// Stage returns the span's stage name.
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.stage
}

// Duration returns the span's wall time (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return time.Since(s.start)
	}
	return s.dur
}

// RowsIn returns the accumulated input row count.
func (s *Span) RowsIn() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rowsIn
}

// RowsOut returns the accumulated output row count.
func (s *Span) RowsOut() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rowsOut
}

// Detail returns the span's named counters in first-add order.
func (s *Span) Detail() []KV {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]KV(nil), s.kv...)
}

// DetailString renders the counters as "k=v k=v".
func (s *Span) DetailString() string {
	kv := s.Detail()
	if len(kv) == 0 {
		return ""
	}
	parts := make([]string, len(kv))
	for i, e := range kv {
		parts[i] = fmt.Sprintf("%s=%d", e.Key, e.Val)
	}
	return strings.Join(parts, " ")
}

// Trace collects the spans of one statement execution plus pool-level
// activity (morsel counts, per-worker busy time). A nil *Trace no-ops
// on every method.
type Trace struct {
	mu         sync.Mutex
	start      time.Time
	spans      []*Span
	kv         []KV // trace-level storage counters (blocks, delta/main rows)
	workerBusy map[int]time.Duration
	morsels    int64
	runs       int64
}

// New starts an empty trace.
func New() *Trace {
	return &Trace{start: time.Now()}
}

// Start opens a new span for the given stage and appends it to the
// trace. Returns nil (a safe no-op span) on a nil trace.
func (t *Trace) Start(stage string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{stage: stage, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Spans returns the spans in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Duration returns wall time since the trace began.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Add accumulates a trace-level named counter. The storage layers use
// it for counters that cross span boundaries (blocks scanned vs.
// zone-map-skipped, delta-vs-main rows) without needing a span handle.
func (t *Trace) Add(key string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	for i := range t.kv {
		if t.kv[i].Key == key {
			t.kv[i].Val += n
			t.mu.Unlock()
			return
		}
	}
	t.kv = append(t.kv, KV{key, n})
	t.mu.Unlock()
}

// Counters returns the trace-level counters in first-add order.
func (t *Trace) Counters() []KV {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]KV(nil), t.kv...)
}

// CountersString renders the trace-level counters as "k=v k=v".
func (t *Trace) CountersString() string {
	kv := t.Counters()
	if len(kv) == 0 {
		return ""
	}
	parts := make([]string, len(kv))
	for i, e := range kv {
		parts[i] = fmt.Sprintf("%s=%d", e.Key, e.Val)
	}
	return strings.Join(parts, " ")
}

// AddMorselRun records one parallel loop: n morsels processed across
// the given number of workers.
func (t *Trace) AddMorselRun(morsels int64, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.morsels += morsels
	t.runs++
	t.mu.Unlock()
	_ = workers
}

// AddWorkerBusy accumulates busy wall time for one worker id across the
// statement's parallel loops.
func (t *Trace) AddWorkerBusy(worker int, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.mu.Lock()
	if t.workerBusy == nil {
		t.workerBusy = map[int]time.Duration{}
	}
	t.workerBusy[worker] += d
	t.mu.Unlock()
}

// Morsels returns the total morsels processed and the number of
// parallel loops that ran.
func (t *Trace) Morsels() (morsels, runs int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.morsels, t.runs
}

// WorkerBusy returns per-worker busy time sorted by worker id.
func (t *Trace) WorkerBusy() []struct {
	Worker int
	Busy   time.Duration
} {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		Worker int
		Busy   time.Duration
	}, 0, len(t.workerBusy))
	for w, d := range t.workerBusy {
		out = append(out, struct {
			Worker int
			Busy   time.Duration
		}{w, d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Summary renders the whole trace as one compact line for the
// slow-query log: "stage=scan dur=1.2ms rows_out=500 blocks_scanned=12;
// stage=walwait dur=0.8ms".
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	var parts []string
	for _, s := range t.Spans() {
		p := fmt.Sprintf("stage=%s dur=%s", s.Stage(), s.Duration().Round(time.Microsecond))
		if in := s.RowsIn(); in > 0 {
			p += fmt.Sprintf(" rows_in=%d", in)
		}
		if out := s.RowsOut(); out > 0 {
			p += fmt.Sprintf(" rows_out=%d", out)
		}
		if d := s.DetailString(); d != "" {
			p += " " + d
		}
		parts = append(parts, p)
	}
	if c := t.CountersString(); c != "" {
		parts = append(parts, "stage=storage "+c)
	}
	if m, runs := t.Morsels(); runs > 0 {
		busy := t.WorkerBusy()
		var bparts []string
		for _, wb := range busy {
			bparts = append(bparts, fmt.Sprintf("w%d=%s", wb.Worker, wb.Busy.Round(time.Microsecond)))
		}
		parts = append(parts, fmt.Sprintf("stage=parallel morsels=%d runs=%d workers=%d busy[%s]",
			m, runs, len(busy), strings.Join(bparts, " ")))
	}
	return strings.Join(parts, "; ")
}

type ctxKey struct{}

// WithTrace attaches a trace to the context for the storage layers to
// pick up via FromContext.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil when the statement is
// untraced.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
