package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// topKOracle is the specification topKAcc must match: stable-sort every
// offered row by the ORDER BY keys, take the first k.
func topKOracle(rows, keys [][]value.Value, order []query.Order, k int) [][]value.Value {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return compareKeys(keys[idx[a]], keys[idx[b]], order) < 0
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([][]value.Value, len(idx))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}

// randTopKInput generates rows with deliberately heavy key duplication
// so tie-breaking by arrival sequence is exercised constantly.
func randTopKInput(rng *rand.Rand, n int) (rows, keys [][]value.Value) {
	for i := 0; i < n; i++ {
		k1 := value.NewInt(int64(rng.Intn(8)))
		k2 := value.NewInt(int64(rng.Intn(4)))
		if rng.Intn(10) == 0 {
			k2 = value.Null(value.Integer)
		}
		rows = append(rows, []value.Value{value.NewBigint(int64(i)), k1, k2})
		keys = append(keys, []value.Value{k1, k2})
	}
	return rows, keys
}

func TestTopKAccMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orders := [][]query.Order{
		{{Col: 1}},
		{{Col: 1, Desc: true}},
		{{Col: 1}, {Col: 2, Desc: true}},
		{{Col: 2, Desc: true}, {Col: 1}},
	}
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, k := range []int{1, 3, 16, 150} {
			for oi, order := range orders {
				rows, keys := randTopKInput(rng, n)
				acc := newTopK(k, order)
				for i := range rows {
					acc.Add(rows[i], keys[i], int64(i))
				}
				got := acc.Finish()
				want := topKOracle(rows, keys, order, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d k=%d order=%d: heap diverged from stable sort\ngot:  %v\nwant: %v",
						n, k, oi, got, want)
				}
			}
		}
	}
}

// TestTopKAccMergeOrderIndependent shards one input across several
// accumulators and merges them in two different orders: both must equal
// the single-accumulator result, since the retained set is a pure
// function of the (row, key, seq) multiset.
func TestTopKAccMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	order := []query.Order{{Col: 1}, {Col: 2, Desc: true}}
	rows, keys := randTopKInput(rng, 500)
	const k = 20

	single := newTopK(k, order)
	shards := make([]*topKAcc, 4)
	for i := range shards {
		shards[i] = newTopK(k, order)
	}
	for i := range rows {
		single.Add(rows[i], keys[i], int64(i))
		shards[i%len(shards)].Add(rows[i], keys[i], int64(i))
	}

	forward := newTopK(k, order)
	for _, s := range shards {
		forward.Merge(s)
	}
	backward := newTopK(k, order)
	for i := len(shards) - 1; i >= 0; i-- {
		backward.Merge(shards[i])
	}

	want := single.Finish()
	if got := forward.Finish(); !reflect.DeepEqual(got, want) {
		t.Fatalf("forward merge diverged\ngot:  %v\nwant: %v", got, want)
	}
	if got := backward.Finish(); !reflect.DeepEqual(got, want) {
		t.Fatalf("backward merge diverged\ngot:  %v\nwant: %v", got, want)
	}
}
