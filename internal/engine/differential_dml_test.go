package engine

import (
	"reflect"
	"sort"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// The differential DML suite runs identical statement sequences against
// every layout and asserts identical visible state after every single
// statement — the properties the per-layout DML fast paths must not
// break: PK-changing updates, split-column moves, NULL assignments and
// failing statements.

func dmlSchema() *schema.Table {
	return schema.MustNew("dml", []schema.Column{
		{Name: "id", Type: value.Bigint},                    // 0: PK
		{Name: "grp", Type: value.Integer},                  // 1: horizontal split column
		{Name: "amt", Type: value.Double, Nullable: true},   // 2
		{Name: "note", Type: value.Varchar, Nullable: true}, // 3
	}, "id")
}

func dmlRow(id int64) []value.Value {
	return []value.Value{
		value.NewBigint(id),
		value.NewInt(id),
		value.NewDouble(float64(id) * 1.5),
		value.NewVarchar([]string{"a", "b", "c"}[id%3]),
	}
}

// dmlLayouts enumerates every physical layout the engine supports.
func dmlLayouts() []struct {
	name  string
	store catalog.StoreKind
	spec  *catalog.PartitionSpec
} {
	horiz := &catalog.HorizontalSpec{
		SplitCol: 1, SplitVal: value.NewInt(50),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}
	vert := &catalog.VerticalSpec{RowCols: []int{0, 1, 3}, ColCols: []int{0, 2}}
	return []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"horizontal", catalog.Partitioned, &catalog.PartitionSpec{Horizontal: horiz}},
		{"vertical", catalog.Partitioned, &catalog.PartitionSpec{Vertical: vert}},
		{"horizontal+vertical", catalog.Partitioned, &catalog.PartitionSpec{Horizontal: horiz, Vertical: vert}},
	}
}

// dmlStep is one statement with a short label for failure messages.
type dmlStep struct {
	name string
	q    *query.Query
}

// differentialSteps is the shared statement sequence. Statements that
// must fail are designed to fail identically on every layout (schema
// violations and single-partition PK collisions), so the visible state
// stays comparable throughout.
func differentialSteps() []dmlStep {
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, dmlRow(int64(i)))
	}
	eqID := func(id int64) expr.Predicate {
		return &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}
	}
	return []dmlStep{
		{"bulk insert", &query.Query{Kind: query.Insert, Table: "dml", Rows: rows}},
		{"range update", &query.Query{Kind: query.Update, Table: "dml",
			Pred: &expr.Between{Col: 1, Lo: value.NewInt(20), Hi: value.NewInt(60)},
			Set:  map[int]value.Value{2: value.NewDouble(999.5)}}},
		{"null set", &query.Query{Kind: query.Update, Table: "dml",
			Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(10)},
			Set:  map[int]value.Value{3: value.Null(value.Varchar)}}},
		{"split move hot to cold", &query.Query{Kind: query.Update, Table: "dml",
			Pred: &expr.Between{Col: 0, Lo: value.NewBigint(50), Hi: value.NewBigint(59)},
			Set:  map[int]value.Value{1: value.NewInt(10)}}},
		{"split move cold to hot", &query.Query{Kind: query.Update, Table: "dml",
			Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(5)},
			Set:  map[int]value.Value{1: value.NewInt(90)}}},
		{"pk change", &query.Query{Kind: query.Update, Table: "dml",
			Pred: eqID(3), Set: map[int]value.Value{0: value.NewBigint(1003)}}},
		// id 1003 carries grp 90 (hot); id 60 also has grp >= 50 (hot):
		// the collision is within one partition, so every layout must
		// reject it — and reject it atomically.
		{"pk change duplicate (fails)", &query.Query{Kind: query.Update, Table: "dml",
			Pred: eqID(1003), Set: map[int]value.Value{0: value.NewBigint(60)}}},
		// Multi-row update assigning the full PK a constant: intra-
		// statement duplicate, rejected everywhere.
		{"pk constant multi-row (fails)", &query.Query{Kind: query.Update, Table: "dml",
			Pred: &expr.Between{Col: 0, Lo: value.NewBigint(70), Hi: value.NewBigint(72)},
			Set:  map[int]value.Value{0: value.NewBigint(2000)}}},
		{"not null violation (fails)", &query.Query{Kind: query.Update, Table: "dml",
			Pred: eqID(80), Set: map[int]value.Value{1: value.Null(value.Integer)}}},
		{"type mismatch (fails)", &query.Query{Kind: query.Update, Table: "dml",
			Pred: eqID(80), Set: map[int]value.Value{2: value.NewVarchar("oops")}}},
		{"split move with pk change", &query.Query{Kind: query.Update, Table: "dml",
			Pred: eqID(62), Set: map[int]value.Value{0: value.NewBigint(1062), 1: value.NewInt(5)}}},
		{"range delete", &query.Query{Kind: query.Delete, Table: "dml",
			Pred: &expr.Between{Col: 1, Lo: value.NewInt(0), Hi: value.NewInt(15)}}},
		{"in-list delete", &query.Query{Kind: query.Delete, Table: "dml",
			Pred: &expr.In{Col: 0, Vals: []value.Value{
				value.NewBigint(75), value.NewBigint(76), value.NewBigint(9999)}}}},
		{"reinsert after delete", &query.Query{Kind: query.Insert, Table: "dml",
			Rows: [][]value.Value{dmlRow(7), dmlRow(300)}}},
		// Atomic batch failures: no layout may keep a prefix of a batch
		// that failed partway through validation.
		{"insert batch with intra-batch dup (fails)", &query.Query{Kind: query.Insert, Table: "dml",
			Rows: [][]value.Value{dmlRow(400), dmlRow(401), dmlRow(400)}}},
		{"insert batch colliding with existing (fails)", &query.Query{Kind: query.Insert, Table: "dml",
			Rows: [][]value.Value{dmlRow(500), dmlRow(7)}}}, // id 7 re-inserted above
		{"delete everything", &query.Query{Kind: query.Delete, Table: "dml"}},
		{"insert into empty", &query.Query{Kind: query.Insert, Table: "dml",
			Rows: [][]value.Value{dmlRow(1), dmlRow(2)}}},
	}
}

func TestDifferentialDML(t *testing.T) {
	layouts := dmlLayouts()
	dbs := make([]*Database, len(layouts))
	for i, lay := range layouts {
		dbs[i] = New()
		if err := dbs[i].CreateTableWithLayout(dmlSchema(), lay.store, lay.spec); err != nil {
			t.Fatalf("%s: %v", lay.name, err)
		}
	}
	for _, step := range differentialSteps() {
		var refState []string
		var refAffected int
		var refFailed bool
		for i, lay := range layouts {
			res, err := dbs[i].Exec(step.q)
			failed := err != nil
			affected := 0
			if res != nil {
				affected = res.Affected
			}
			state := visibleState(t, dbs[i], "dml")
			if i == 0 {
				refState, refAffected, refFailed = state, affected, failed
				continue
			}
			if failed != refFailed {
				t.Fatalf("step %q: layout %s failed=%v, layout %s failed=%v (err=%v)",
					step.name, lay.name, failed, layouts[0].name, refFailed, err)
			}
			if affected != refAffected {
				t.Errorf("step %q: layout %s affected %d, layout %s affected %d",
					step.name, lay.name, affected, layouts[0].name, refAffected)
			}
			if !reflect.DeepEqual(state, refState) {
				t.Fatalf("step %q: layout %s diverged from %s: %d vs %d rows",
					step.name, lay.name, layouts[0].name, len(state), len(refState))
			}
		}
	}
}

// TestDifferentialDMLAggregates runs the shared sequence on every
// layout and then compares aggregate results — including an aggregate
// over a predicate matching nothing, whose empty MIN/MAX must come back
// as identically typed NULLs on every layout.
func TestDifferentialDMLAggregates(t *testing.T) {
	layouts := dmlLayouts()
	dbs := make([]*Database, len(layouts))
	for i, lay := range layouts {
		dbs[i] = New()
		if err := dbs[i].CreateTableWithLayout(dmlSchema(), lay.store, lay.spec); err != nil {
			t.Fatalf("%s: %v", lay.name, err)
		}
		for _, step := range differentialSteps() {
			dbs[i].Exec(step.q) // failures are part of the sequence
		}
	}
	aggQueries := []*query.Query{
		{Kind: query.Aggregate, Table: "dml", Aggs: []agg.Spec{
			{Func: agg.Count, Col: -1}, {Func: agg.Sum, Col: 2},
			{Func: agg.Min, Col: 3}, {Func: agg.Max, Col: 0}}},
		{Kind: query.Aggregate, Table: "dml", GroupBy: []int{1}, Aggs: []agg.Spec{
			{Func: agg.Count, Col: -1}, {Func: agg.Avg, Col: 2}, {Func: agg.Max, Col: 3}}},
		// Predicate matches nothing: MIN(note) must be a VARCHAR NULL
		// and MAX(id) a BIGINT NULL on every layout.
		{Kind: query.Aggregate, Table: "dml",
			Pred: &expr.Comparison{Col: 0, Op: expr.Gt, Val: value.NewBigint(1 << 40)},
			Aggs: []agg.Spec{
				{Func: agg.Count, Col: -1}, {Func: agg.Min, Col: 3}, {Func: agg.Max, Col: 0}}},
	}
	render := func(db *Database, q *query.Query) []string {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("agg exec: %v", err)
		}
		out := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			s := ""
			for _, v := range row {
				s += v.Type().String() + ":" + v.String() + "|"
			}
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}
	for qi, q := range aggQueries {
		ref := render(dbs[0], q)
		for i := 1; i < len(dbs); i++ {
			if got := render(dbs[i], q); !reflect.DeepEqual(got, ref) {
				t.Errorf("aggregate %d: layout %s = %v, layout %s = %v",
					qi, layouts[i].name, got, layouts[0].name, ref)
			}
		}
	}
	// Spot-check the empty-aggregate typing explicitly.
	res, err := dbs[0].Exec(aggQueries[2])
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Type() != value.Bigint || row[0].Int() != 0 {
		t.Errorf("empty COUNT(*) = %v (%s), want BIGINT 0", row[0], row[0].Type())
	}
	if !row[1].IsNull() || row[1].Type() != value.Varchar {
		t.Errorf("empty MIN(varchar) = %v (%s), want VARCHAR NULL", row[1], row[1].Type())
	}
	if !row[2].IsNull() || row[2].Type() != value.Bigint {
		t.Errorf("empty MAX(bigint) = %v (%s), want BIGINT NULL", row[2], row[2].Type())
	}
}

// TestMigratingUpdateRestoresOnFailure pins the horizontal data-loss
// fix: a split-column move whose re-insert collides on the primary key
// must fail without dropping the original rows (the old code deleted
// from both partitions before inserting, so the rows simply vanished).
func TestMigratingUpdateRestoresOnFailure(t *testing.T) {
	db := New()
	spec := &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 1, SplitVal: value.NewInt(50),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
	if err := db.CreateTableWithLayout(dmlSchema(), catalog.Partitioned, spec); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "dml",
		Rows: [][]value.Value{dmlRow(1), dmlRow(60)}}) // 1 cold, 60 hot
	before := visibleState(t, db, "dml")

	// Move row 1 to the hot partition AND assign it id 60: the insert
	// into the hot partition collides with the existing row 60.
	res, err := db.Exec(&query.Query{Kind: query.Update, Table: "dml",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
		Set:  map[int]value.Value{0: value.NewBigint(60), 1: value.NewInt(90)}})
	if err == nil {
		t.Fatalf("duplicate-PK migrating update succeeded (affected %d)", res.Affected)
	}
	after := visibleState(t, db, "dml")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("failing migrating update changed state:\nbefore %v\nafter  %v", before, after)
	}
	if n, _ := db.Rows("dml"); n != 2 {
		t.Fatalf("rows = %d, want 2 (row lost by failed migrating update)", n)
	}

	// A NOT NULL violation on the split column must also leave state
	// untouched (validated before any delete).
	if _, err := db.Exec(&query.Query{Kind: query.Update, Table: "dml",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
		Set:  map[int]value.Value{1: value.Null(value.Integer)}}); err == nil {
		t.Fatal("NULL split-column update succeeded")
	}
	if got := visibleState(t, db, "dml"); !reflect.DeepEqual(before, got) {
		t.Fatal("failing NULL split-column update changed state")
	}

	// And the happy path still moves rows and reports the right count.
	res = mustExec(t, db, &query.Query{Kind: query.Update, Table: "dml",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
		Set:  map[int]value.Value{1: value.NewInt(70)}})
	if res.Affected != 1 {
		t.Fatalf("migrating update affected %d, want 1", res.Affected)
	}
	sel := mustExec(t, db, &query.Query{Kind: query.Select, Table: "dml",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)}})
	if len(sel.Rows) != 1 || sel.Rows[0][1].Int() != 70 {
		t.Fatalf("moved row wrong: %v", sel.Rows)
	}
}

// TestHorizontalCrossPartitionPKUniqueness pins the table-wide PK
// invariant on horizontal layouts: a key collision sitting in the OTHER
// partition must reject both inserts and PK-changing updates (the
// per-partition stores each see only their own side).
func TestHorizontalCrossPartitionPKUniqueness(t *testing.T) {
	for _, withVertical := range []bool{false, true} {
		name := "horizontal"
		spec := &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
			SplitCol: 1, SplitVal: value.NewInt(50),
			HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
		}}
		if withVertical {
			name = "horizontal+vertical"
			spec.Vertical = &catalog.VerticalSpec{RowCols: []int{0, 1, 3}, ColCols: []int{0, 2}}
		}
		t.Run(name, func(t *testing.T) {
			db := New()
			if err := db.CreateTableWithLayout(dmlSchema(), catalog.Partitioned, spec); err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, &query.Query{Kind: query.Insert, Table: "dml",
				Rows: [][]value.Value{dmlRow(1), dmlRow(60)}}) // 1 cold, 60 hot
			// Insert a key that exists on the OTHER side than it routes to:
			// id 60 with a cold-side grp.
			dup := dmlRow(60)
			dup[1] = value.NewInt(5)
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "dml",
				Rows: [][]value.Value{dup}}); err == nil {
				t.Fatal("cross-partition duplicate insert accepted")
			}
			if n, _ := db.Rows("dml"); n != 2 {
				t.Fatalf("rows = %d, want 2", n)
			}
			// Update the cold row's key to collide with the hot row.
			if _, err := db.Exec(&query.Query{Kind: query.Update, Table: "dml",
				Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
				Set:  map[int]value.Value{0: value.NewBigint(60)}}); err == nil {
				t.Fatal("cross-partition duplicate PK update accepted")
			}
			// Both rows intact, keys unchanged.
			for _, id := range []int64{1, 60} {
				res := mustExec(t, db, &query.Query{Kind: query.Select, Table: "dml",
					Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}})
				if len(res.Rows) != 1 {
					t.Fatalf("id %d: %d rows after rejected statements", id, len(res.Rows))
				}
			}
		})
	}
}
