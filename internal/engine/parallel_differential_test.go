package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// The parallel differential suite runs randomized analytics on tables
// large enough to trip every morsel-parallel path (the column store
// parallelizes past 8×1024 main rows, the row store past 2×4096 slots)
// and asserts the parallel results are bit-identical to serial ones —
// across every layout, with NULLs, tombstones, a live delta and
// migration churn in the data. Parallelism is forced with an 8-slot
// pool, so the suite exercises the concurrent paths even on single-core
// hosts. All numeric data is integer-valued, so float aggregation is
// exact and "identical" really means bit-identical, not approximately
// equal.

const parRows = 24_000

func parSchema() *schema.Table {
	return schema.MustNew("par", []schema.Column{
		{Name: "id", Type: value.Bigint},                    // 0: PK
		{Name: "grp", Type: value.Integer},                  // 1: card 8, horizontal split col
		{Name: "cat", Type: value.Integer},                  // 2: card 50, join key
		{Name: "amt", Type: value.Double, Nullable: true},   // 3: integer-valued
		{Name: "qty", Type: value.Integer, Nullable: true},  // 4
		{Name: "note", Type: value.Varchar, Nullable: true}, // 5
	}, "id")
}

func parRow(rng *rand.Rand, id int64) []value.Value {
	amt := value.NewDouble(float64(rng.Intn(100_000)))
	if rng.Intn(20) == 0 {
		amt = value.Null(value.Double)
	}
	qty := value.NewInt(rng.Int63n(1000))
	if rng.Intn(25) == 0 {
		qty = value.Null(value.Integer)
	}
	note := value.NewVarchar(fmt.Sprintf("n-%02d", rng.Intn(40)))
	if rng.Intn(30) == 0 {
		note = value.Null(value.Varchar)
	}
	return []value.Value{
		value.NewBigint(id),
		value.NewInt(rng.Int63n(8)),
		value.NewInt(rng.Int63n(50)),
		amt, qty, note,
	}
}

// parLayouts is every layout whose scans have a parallel path to check.
func parLayouts() []struct {
	name  string
	store catalog.StoreKind
	spec  *catalog.PartitionSpec
} {
	horiz := &catalog.HorizontalSpec{
		SplitCol: 1, SplitVal: value.NewInt(4),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}
	vert := &catalog.VerticalSpec{RowCols: []int{0, 1, 5}, ColCols: []int{0, 2, 3, 4}}
	return []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"horizontal", catalog.Partitioned, &catalog.PartitionSpec{Horizontal: horiz}},
		{"vertical", catalog.Partitioned, &catalog.PartitionSpec{Vertical: vert}},
	}
}

// buildParDB loads the par table (plus the pardim join dimension) in the
// given layout and churns it: bulk load, compact, a delta of late
// inserts, range updates, NULL writes and deletes leaving tombstones.
func buildParDB(t *testing.T, store catalog.StoreKind, spec *catalog.PartitionSpec) *Database {
	t.Helper()
	db := New()
	if err := db.CreateTableWithLayout(parSchema(), store, spec); err != nil {
		t.Fatal(err)
	}
	dimSch := schema.MustNew("pardim", []schema.Column{
		{Name: "dkey", Type: value.Integer},
		{Name: "dgrp", Type: value.Integer},
		{Name: "dname", Type: value.Varchar},
	}, "dkey")
	if err := db.CreateTable(dimSch, catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	dimRows := make([][]value.Value, 0, 50)
	for i := int64(0); i < 50; i++ {
		dimRows = append(dimRows, []value.Value{
			value.NewInt(i), value.NewInt(i % 5), value.NewVarchar(fmt.Sprintf("d%02d", i)),
		})
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "pardim", Rows: dimRows}); err != nil {
		t.Fatal(err)
	}

	batch := make([][]value.Value, 0, 4096)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "par", Rows: batch}); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	for id := int64(0); id < parRows-2000; id++ {
		batch = append(batch, parRow(rng, id))
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	// Compress the bulk into the read-optimized main fragment, then keep
	// a live delta on top of it.
	if err := db.Compact("par"); err != nil {
		t.Fatal(err)
	}
	for id := int64(parRows - 2000); id < parRows; id++ {
		batch = append(batch, parRow(rng, id))
	}
	flush()

	churn := []*query.Query{
		{Kind: query.Update, Table: "par",
			Pred: &expr.Between{Col: 0, Lo: value.NewBigint(3000), Hi: value.NewBigint(4500)},
			Set:  map[int]value.Value{3: value.NewDouble(123456)}},
		{Kind: query.Update, Table: "par",
			Pred: &expr.Between{Col: 0, Lo: value.NewBigint(9000), Hi: value.NewBigint(9400)},
			Set:  map[int]value.Value{3: value.Null(value.Double), 4: value.Null(value.Integer)}},
		{Kind: query.Delete, Table: "par",
			Pred: &expr.Between{Col: 0, Lo: value.NewBigint(5000), Hi: value.NewBigint(6200)}},
		{Kind: query.Delete, Table: "par",
			Pred: &expr.Between{Col: 0, Lo: value.NewBigint(22_800), Hi: value.NewBigint(23_100)}},
	}
	for _, q := range churn {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// parQueries is the randomized analytics mix: global and grouped
// aggregates over nullable columns, predicated scans and star joins.
func parQueries(seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	funcs := []agg.Func{agg.Sum, agg.Count, agg.Min, agg.Max, agg.Avg}
	aggCols := []int{3, 4, 0}
	randPred := func() expr.Predicate {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			lo := rng.Int63n(parRows)
			return &expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(lo + rng.Int63n(parRows))}
		case 2:
			return &expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewInt(rng.Int63n(50))}
		default:
			return &expr.Comparison{Col: 1, Op: expr.Ge, Val: value.NewInt(rng.Int63n(8))}
		}
	}
	var qs []*query.Query
	for i := 0; i < 20; i++ {
		specs := make([]agg.Spec, 1+rng.Intn(3))
		for j := range specs {
			col := aggCols[rng.Intn(len(aggCols))]
			f := funcs[rng.Intn(len(funcs))]
			if rng.Intn(6) == 0 {
				col = -1
				f = agg.Count
			}
			specs[j] = agg.Spec{Func: f, Col: col}
		}
		var groupBy []int
		switch rng.Intn(3) {
		case 1:
			groupBy = []int{1}
		case 2:
			groupBy = []int{1, 2}
		}
		qs = append(qs, &query.Query{
			Kind: query.Aggregate, Table: "par",
			Aggs: specs, GroupBy: groupBy, Pred: randPred(),
		})
	}
	for i := 0; i < 5; i++ {
		qs = append(qs, &query.Query{
			Kind: query.Select, Table: "par",
			Cols: []int{0, 1, 3, 5}, Pred: randPred(),
		})
	}
	for i := 0; i < 5; i++ {
		qs = append(qs, &query.Query{
			Kind: query.Aggregate, Table: "par",
			Join:    &query.Join{Table: "pardim", LeftCol: 2, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 3}, {Func: agg.Count, Col: -1}},
			GroupBy: []int{6 + 1}, // pardim.dgrp in combined indexing
			Pred:    randPred(),
		})
	}
	return qs
}

// sortedRows canonicalizes a result for order-insensitive comparison.
func sortedRows(rows [][]value.Value) [][]value.Value {
	out := make([][]value.Value, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}

// assertSerialParallelEqual runs q under a 1-slot pool and an 8-slot
// pool and requires bit-identical (order-insensitive) results.
func assertSerialParallelEqual(t *testing.T, db *Database, q *query.Query, label string) {
	t.Helper()
	db.SetPool(exec.NewPool(1))
	serial, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: serial: %v", label, err)
	}
	db.SetPool(exec.NewPool(8))
	parallel, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: parallel: %v", label, err)
	}
	s, p := sortedRows(serial.Rows), sortedRows(parallel.Rows)
	if !reflect.DeepEqual(s, p) {
		t.Fatalf("%s: parallel diverged from serial\nserial   (%d rows): %.300v\nparallel (%d rows): %.300v",
			label, len(s), s, len(p), p)
	}
}

func TestParallelSerialDifferential(t *testing.T) {
	queries := parQueries(42)
	for _, l := range parLayouts() {
		l := l
		t.Run(l.name, func(t *testing.T) {
			db := buildParDB(t, l.store, l.spec)
			for i, q := range queries {
				assertSerialParallelEqual(t, db, q, fmt.Sprintf("%s q%d", l.name, i))
			}
		})
	}
}

// TestParallelDifferentialMigrationChurn re-checks serial/parallel
// agreement while the same table is migrated through every layout —
// each migration rebuilds fragments (fresh mains, empty deltas, row
// arenas), so the morsel boundaries shift under the same logical data.
func TestParallelDifferentialMigrationChurn(t *testing.T) {
	layouts := parLayouts()
	db := buildParDB(t, layouts[0].store, layouts[0].spec)
	queries := parQueries(99)[:12]
	for _, l := range layouts[1:] {
		if err := db.SetLayout("par", l.store, l.spec); err != nil {
			t.Fatalf("migrate to %s: %v", l.name, err)
		}
		for i, q := range queries {
			assertSerialParallelEqual(t, db, q, fmt.Sprintf("after-migrate-%s q%d", l.name, i))
		}
	}
}
