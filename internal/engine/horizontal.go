package engine

import (
	"fmt"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// horizontalStorage splits a table into a hot partition (rows with
// SplitCol >= SplitVal — current and newly arriving tuples, typically in
// the row store for fast inserts and updates) and a cold partition
// (historic tuples, typically in the column store for fast analysis). New
// rows are routed by the split predicate; queries run against the relevant
// partitions and aggregation results are merged — the paper's "union of
// both partitions" (Figure 2).
type horizontalStorage struct {
	sch  *schema.Table
	spec *catalog.HorizontalSpec

	hot  storage
	cold storage
}

func newHorizontalStorage(sch *schema.Table, spec *catalog.HorizontalSpec, hot, cold storage) *horizontalStorage {
	return &horizontalStorage{sch: sch, spec: spec, hot: hot, cold: cold}
}

func (h *horizontalStorage) Rows() int { return h.hot.Rows() + h.cold.Rows() }

// isHot routes a row by the split column.
func (h *horizontalStorage) isHot(row []value.Value) bool {
	v := row[h.spec.SplitCol]
	if v.IsNull() {
		return false
	}
	return value.Compare(v, h.spec.SplitVal) >= 0
}

func (h *horizontalStorage) Insert(rows [][]value.Value) error {
	// Validate the whole batch before touching either partition —
	// schema, duplicates within the batch (across both sides, which the
	// per-partition stores cannot see), and each row's key against BOTH
	// partitions (uniqueness is a table invariant, not a per-side one) —
	// so a failing INSERT never leaves the hot side mutated while the
	// cold side rejects, and no cross-partition duplicate can form.
	for _, row := range rows {
		if err := h.sch.ValidateRow(row); err != nil {
			return err
		}
	}
	if err := checkInsertPKs(h.sch, rows, h.HasPK); err != nil {
		return err
	}
	var hotRows, coldRows [][]value.Value
	for _, row := range rows {
		if h.isHot(row) {
			hotRows = append(hotRows, row)
		} else {
			coldRows = append(coldRows, row)
		}
	}
	if len(hotRows) > 0 {
		if err := h.hot.Insert(hotRows); err != nil {
			return err
		}
	}
	if len(coldRows) > 0 {
		if err := h.cold.Insert(coldRows); err != nil {
			return err
		}
	}
	return nil
}

// HasPK reports whether either partition holds a live row with the
// given primary-key values.
func (h *horizontalStorage) HasPK(key []value.Value) bool {
	if lp, ok := h.hot.(pkLookuper); ok && lp.HasPK(key) {
		return true
	}
	if lp, ok := h.cold.(pkLookuper); ok && lp.HasPK(key) {
		return true
	}
	return false
}

// sides returns the partitions a predicate can touch, pruning by the
// range the predicate imposes on the split column.
func (h *horizontalStorage) sides(pred expr.Predicate) (useHot, useCold bool) {
	useHot, useCold = true, true
	rg, ok := expr.RangeOn(pred, h.spec.SplitCol)
	if !ok {
		return
	}
	if rg.Hi != nil && value.Compare(*rg.Hi, h.spec.SplitVal) < 0 {
		useHot = false
	}
	if rg.Lo != nil && value.Compare(*rg.Lo, h.spec.SplitVal) >= 0 {
		useCold = false
	}
	return
}

func (h *horizontalStorage) Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	useHot, useCold := h.sides(pred)
	stopped := false
	wrapped := func(row []value.Value) bool {
		if !fn(row) {
			stopped = true
			return false
		}
		return true
	}
	if useHot {
		h.hot.Scan(pred, cols, wrapped)
	}
	if useCold && !stopped {
		h.cold.Scan(pred, cols, wrapped)
	}
}

// Aggregate computes partial aggregates per relevant partition and merges
// them. When both partitions participate, the partial aggregates fan out
// on the shared worker pool via ex.Do — the partitions are independent
// stores, and agg.Result merging is exactly the "union of both partitions"
// the paper's rewrite produces, so the fan-out is transparent. Each
// partition's aggregate gets the same ex, so a partition that lands on a
// column store can still claim leftover pool slots for its own morsels.
func (h *horizontalStorage) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result {
	useHot, useCold := h.sides(pred)
	switch {
	case useHot && !useCold:
		return h.hot.Aggregate(specs, groupBy, pred, ex)
	case useCold && !useHot:
		return h.cold.Aggregate(specs, groupBy, pred, ex)
	default:
		var coldRes, hotRes *agg.Result
		ex.Do(
			func() { coldRes = h.cold.Aggregate(specs, groupBy, pred, ex) },
			func() { hotRes = h.hot.Aggregate(specs, groupBy, pred, ex) },
		)
		coldRes.Merge(hotRes)
		return coldRes
	}
}

func (h *horizontalStorage) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	if _, movesSplitCol := set[h.spec.SplitCol]; movesSplitCol {
		return h.migratingUpdate(pred, set)
	}
	if err := h.validatePKUpdate(pred, set); err != nil {
		return 0, err
	}
	useHot, useCold := h.sides(pred)
	total := 0
	if useHot {
		n, err := h.hot.Update(pred, set)
		if err != nil {
			return total, err
		}
		total += n
	}
	if useCold {
		n, err := h.cold.Update(pred, set)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// validatePKUpdate pre-validates a PK-changing update across both
// partitions: the per-partition stores each re-check their own rows, but
// only a whole-table pass catches a collision sitting in the cold side
// after the hot side has already been updated, or two matched rows on
// different sides converging on one new key. Updates here never change
// the split column (those route to migratingUpdate), so each row's new
// key stays on the row's own side.
func (h *horizontalStorage) validatePKUpdate(pred expr.Predicate, set map[int]value.Value) error {
	if len(h.sch.PrimaryKey) == 0 {
		return nil
	}
	changed := false
	for _, k := range h.sch.PrimaryKey {
		if _, ok := set[k]; ok {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	seen := make(map[string]struct{})
	var conflict error
	h.Scan(pred, nil, func(row []value.Value) bool {
		newKey := make([]value.Value, len(h.sch.PrimaryKey))
		same := true
		for i, k := range h.sch.PrimaryKey {
			if v, ok := set[k]; ok {
				newKey[i] = v
				if !value.Equal(v, row[k]) {
					same = false
				}
			} else {
				newKey[i] = row[k]
			}
		}
		ks := value.TupleKey(newKey)
		if _, dup := seen[ks]; dup {
			conflict = fmt.Errorf("engine: update would assign duplicate primary key %v to multiple rows in %q", newKey, h.sch.Name)
			return false
		}
		seen[ks] = struct{}{}
		if same {
			return true // the row keeps its own key
		}
		// Check BOTH partitions: the colliding row may live on the
		// other side, which the per-partition store check cannot see.
		if h.HasPK(newKey) {
			conflict = fmt.Errorf("engine: update would duplicate primary key %v in table %q", newKey, h.sch.Name)
			return false
		}
		return true
	})
	return conflict
}

// migratingUpdate handles updates that change the split column: affected
// rows may have to move between partitions, so they are collected, deleted
// and re-inserted with the new values through the normal routing. The
// originals are kept until the re-insert succeeds: on failure every row
// that made it in is removed and the originals are restored, so a failing
// statement can no longer drop rows on the floor.
func (h *horizontalStorage) migratingUpdate(pred expr.Predicate, set map[int]value.Value) (int, error) {
	var originals, moved [][]value.Value
	h.Scan(pred, nil, func(row []value.Value) bool {
		orig := make([]value.Value, len(row))
		copy(orig, row)
		originals = append(originals, orig)
		cp := make([]value.Value, len(row))
		copy(cp, row)
		for c, v := range set {
			cp[c] = v
		}
		moved = append(moved, cp)
		return true
	})
	if len(moved) == 0 {
		return 0, nil
	}
	// Validate before touching anything: schema violations (the common
	// failure) then reject without mutating.
	for _, row := range moved {
		if err := h.sch.ValidateRow(row); err != nil {
			return 0, err
		}
	}
	h.hot.Delete(pred)
	h.cold.Delete(pred)
	if err := h.Insert(moved); err != nil {
		// Insert pre-validates the whole batch (schema, intra-batch
		// duplicates and per-side key collisions) before inserting
		// anything, so a failure means neither partition was touched:
		// restoring the originals returns the table to its exact
		// pre-statement state.
		if rerr := h.Insert(originals); rerr != nil {
			return 0, fmt.Errorf("engine: migrating update failed (%w) and restore failed: %v", err, rerr)
		}
		return 0, err
	}
	return len(moved), nil
}

func (h *horizontalStorage) Delete(pred expr.Predicate) int {
	useHot, useCold := h.sides(pred)
	n := 0
	if useHot {
		n += h.hot.Delete(pred)
	}
	if useCold {
		n += h.cold.Delete(pred)
	}
	return n
}

func (h *horizontalStorage) CreateIndex(col int) {
	h.hot.CreateIndex(col)
	h.cold.CreateIndex(col)
}

func (h *horizontalStorage) SupportsIndex(col int) bool {
	return h.hot.SupportsIndex(col) || h.cold.SupportsIndex(col)
}

func (h *horizontalStorage) DeltaRows() int {
	return h.hot.DeltaRows() + h.cold.DeltaRows()
}

func (h *horizontalStorage) Compact() {
	h.hot.Compact()
	h.cold.Compact()
}

func (h *horizontalStorage) MemoryBytes() int {
	return h.hot.MemoryBytes() + h.cold.MemoryBytes()
}

func (h *horizontalStorage) persist(enc *wal.Encoder) {
	h.hot.persist(enc)
	h.cold.persist(enc)
}

func (h *horizontalStorage) restore(dec *wal.Decoder) error {
	if err := h.hot.restore(dec); err != nil {
		return err
	}
	return h.cold.restore(dec)
}
