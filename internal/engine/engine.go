// Package engine implements the hybrid-store database engine: tables
// placed in a row store, a column store, or partitioned across both, with
// a uniform execution layer for selections, aggregations, joins and DML.
// Partitioned tables are rewritten transparently (unions and partial-
// aggregate merges across horizontal partitions, primary-key joins across
// vertical partitions) based on the catalog's partitioning annotations,
// mirroring the query-rewrite mechanism of the paper's §4.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/colstore"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/exec"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/rowstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/trace"
	"hybridstore/internal/txn"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// QueryObserver receives every executed query with its measured runtime.
// The online-mode statistics recorder implements it.
type QueryObserver interface {
	Observe(q *query.Query, d time.Duration)
}

// SessionObserver is an optional extension of QueryObserver: observers
// that implement it additionally receive the session label attached to
// the statement's context (empty for unattributed statements), so the
// workload monitor can expose the real multi-tenant mix to the advisor.
type SessionObserver interface {
	ObserveSession(session string, q *query.Query, d time.Duration)
}

// ErrClosed is returned by Exec/ExecContext (and wrapped into durability
// errors) once Close has been called. The network server relies on it to
// drain sessions racing a shutdown cleanly.
var ErrClosed = errors.New("engine: database is closed")

// sessionKey is the context key WithSession stores the session label
// under.
type sessionKey struct{}

// WithSession tags a context with a session/client label; statements
// executed under it are attributed to that session by session-aware
// observers (see SessionObserver).
func WithSession(ctx context.Context, session string) context.Context {
	return context.WithValue(ctx, sessionKey{}, session)
}

// SessionFromContext returns the session label attached by WithSession
// (empty when absent).
func SessionFromContext(ctx context.Context) string {
	s, _ := ctx.Value(sessionKey{}).(string)
	return s
}

// Result is the outcome of one executed query.
type Result struct {
	Cols     []string
	Rows     [][]value.Value
	Affected int
	Duration time.Duration
}

// tableRuntime pairs a catalog entry with its physical storage. While a
// background migration is in flight, tail buffers every DML applied to
// store so the migrator can replay it onto the new storage before the
// atomic swap.
type tableRuntime struct {
	entry *catalog.TableEntry
	store storage
	tail  *migrationTail

	// ov is the table's MVCC version overlay (nil for tables without a
	// primary key, which stay on the legacy serial write path). It is
	// created with the table and survives layout migrations — chains
	// reference primary keys, never physical row positions.
	ov *txn.Table
}

// Database is a hybrid-store database instance. New creates a purely
// in-memory database; Open creates a durable one backed by a write-ahead
// log and snapshot checkpoints in a data directory.
type Database struct {
	mu     sync.RWMutex
	cat    *catalog.Catalog
	tables map[string]*tableRuntime
	obs    QueryObserver

	// pool is the worker pool analytical reads draw morsel helpers
	// from. It defaults to the shared process-wide pool; the network
	// server replaces it with the pool it also admits statements on, so
	// admission plus intra-query parallelism stay bounded together.
	pool *exec.Pool

	// Durability state; nil/empty for in-memory databases. log is set
	// once by Open before the database is shared and never reassigned.
	dir string
	log *wal.Log

	// closed flips once in Close, before the final checkpoint takes the
	// write lock: statements that acquire a lock afterwards observe it
	// and fail with ErrClosed instead of mutating a checkpointed (or
	// log-less) database.
	closed atomic.Bool

	// slow holds the attached slow-query log (boxed so a nil log is
	// still an atomic swap); see SetSlowQueryLog.
	slow atomic.Pointer[slowLogBox]

	// costModel is the calibrated cost model the planner prices
	// alternatives with; nil falls back to the deterministic default
	// profile (see SetCostModel).
	costModel atomic.Pointer[costmodel.Model]

	// txns issues MVCC timestamps and tracks live transactions; commits
	// publish to the version overlays under the read lock, and pending
	// lists the committed transactions not yet folded into base storage
	// (applied in commit order under the write lock; see mvcc.go).
	// foldedTS is the newest folded commit timestamp (write-lock
	// guarded); serialWrites forces the legacy single-write-lock DML
	// path for benchmarking baselines.
	txns         *txn.Manager
	pendingMu    sync.Mutex
	pending      []pendingCommit
	foldedTS     uint64
	serialWrites atomic.Bool

	// txnGate is the single-RW-lock baseline (serialWrites on): explicit
	// transactions hold it exclusively from Begin to Commit/Rollback and
	// auto-commit statements take the shared side, so readers are
	// excluded from in-flight write transactions — the classic lock-based
	// way to make a multi-statement transaction atomic to observers,
	// and exactly the blocking MVCC snapshot reads avoid.
	txnGate sync.RWMutex
}

// defaultPlanModel caches the analytic default cost model shared by
// every database without an attached calibrated model.
var defaultPlanModel = sync.OnceValue(costmodel.DefaultModel)

// New creates an empty database.
func New() *Database {
	return &Database{
		cat:    catalog.New(),
		tables: make(map[string]*tableRuntime),
		pool:   exec.Default(),
		txns:   txn.NewManager(),
	}
}

// SetPool replaces the worker pool reads fan out on (nil forces serial
// execution). The server calls it before serving so session admission and
// query parallelism share one bounded pool; it must not be called while
// statements are executing.
func (db *Database) SetPool(p *exec.Pool) { db.pool = p }

// Pool returns the database's worker pool (nil when serial).
func (db *Database) Pool() *exec.Pool { return db.pool }

// execCtx derives one statement's execution context: the database pool,
// the context-backed cancellation hook, and the statement trace (nil for
// untraced statements — every trace consumer is nil-safe).
func (db *Database) execCtx(ctx context.Context) *exec.Ctx {
	return &exec.Ctx{Pool: db.pool, Stop: stopFunc(ctx), Trace: trace.FromContext(ctx)}
}

// Catalog exposes the system catalog.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// SetObserver attaches a query observer (nil detaches).
func (db *Database) SetObserver(obs QueryObserver) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs = obs
}

func tableKey(name string) string { return strings.ToLower(name) }

// buildStorage constructs the physical storage for a placement.
func buildStorage(sch *schema.Table, store catalog.StoreKind, spec *catalog.PartitionSpec) (storage, error) {
	single := func(kind catalog.StoreKind, s *schema.Table) (storage, error) {
		switch kind {
		case catalog.RowStore:
			return &rowStorage{t: rowstore.New(s)}, nil
		case catalog.ColumnStore:
			return &colStorage{t: colstore.New(s)}, nil
		default:
			return nil, fmt.Errorf("engine: invalid leaf store %v", kind)
		}
	}
	if spec == nil {
		return single(store, sch)
	}
	if err := spec.Validate(sch); err != nil {
		return nil, err
	}
	// Cold side: plain store or vertical split.
	buildCold := func(kind catalog.StoreKind) (storage, error) {
		if spec.Vertical != nil {
			return newVerticalStorage(sch, spec.Vertical)
		}
		return single(kind, sch)
	}
	if h := spec.Horizontal; h != nil {
		hot, err := single(h.HotStore, sch)
		if err != nil {
			return nil, err
		}
		cold, err := buildCold(h.ColdStore)
		if err != nil {
			return nil, err
		}
		return newHorizontalStorage(sch, h, hot, cold), nil
	}
	return newVerticalStorage(sch, spec.Vertical)
}

// CreateTable registers a new table in the given store.
func (db *Database) CreateTable(sch *schema.Table, store catalog.StoreKind) error {
	return db.CreateTableWithLayout(sch, store, nil)
}

// CreateTableWithLayout registers a new table with an explicit
// partitioning layout.
func (db *Database) CreateTableWithLayout(sch *schema.Table, store catalog.StoreKind, spec *catalog.PartitionSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.createTableLocked(sch, store, spec); err != nil {
		return err
	}
	return db.logRecord(&wal.Record{
		Kind: wal.RecCreateTable, Table: sch.Name,
		Schema: sch, Store: store, Spec: spec,
	})
}

// createTableLocked is the un-logged core of CreateTableWithLayout;
// callers hold the write lock.
func (db *Database) createTableLocked(sch *schema.Table, store catalog.StoreKind, spec *catalog.PartitionSpec) error {
	k := tableKey(sch.Name)
	if _, dup := db.tables[k]; dup {
		return fmt.Errorf("engine: table %q already exists", sch.Name)
	}
	if spec != nil {
		store = catalog.Partitioned
	}
	st, err := buildStorage(sch, store, spec)
	if err != nil {
		return err
	}
	entry := &catalog.TableEntry{Schema: sch, Store: store, Partitioning: spec}
	if err := db.cat.Add(entry); err != nil {
		return err
	}
	rt := &tableRuntime{entry: entry, store: st}
	if len(sch.PrimaryKey) > 0 {
		rt.ov = txn.NewTable(sch.Name)
	}
	db.tables[k] = rt
	return nil
}

// DropTable removes a table.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.dropTableLocked(name); err != nil {
		return err
	}
	return db.logRecord(&wal.Record{Kind: wal.RecDropTable, Table: name})
}

// dropTableLocked is the un-logged core of DropTable.
func (db *Database) dropTableLocked(name string) error {
	k := tableKey(name)
	if _, ok := db.tables[k]; !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	delete(db.tables, k)
	db.cat.Remove(name)
	return nil
}

// runtime resolves a table; callers hold the lock.
func (db *Database) runtime(name string) (*tableRuntime, error) {
	rt, ok := db.tables[tableKey(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return rt, nil
}

// Rows returns a table's live row count.
func (db *Database) Rows(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(name)
	if err != nil {
		return 0, err
	}
	n := rt.store.Rows()
	if rt.ov != nil {
		// Committed-but-unfolded overlay versions are part of the
		// table's current state even though base storage hasn't
		// absorbed them yet.
		n += rt.ov.NetRows(db.txns.ReadTS(), db.foldedTS)
	}
	return n, nil
}

// ErrIndexNotMaterialized reports that an index declaration could not be
// materialized under the table's current layout (column stores rely on
// their sorted dictionaries instead). The declaration is still recorded
// in the catalog — it materializes when the table (re)gains row-store
// storage — but callers and the advisor cost model can now distinguish
// this from an actual secondary index instead of a silent no-op.
var ErrIndexNotMaterialized = fmt.Errorf("engine: index not materialized under current layout")

// CreateIndex declares a secondary index on a column; it is materialized
// wherever the table's current layout has row-store storage and recorded
// in the catalog so the cost model sees it (f_selectivity depends on index
// availability for the row store). When the current layout cannot
// materialize the index the declaration is still recorded, but the call
// returns an error wrapping ErrIndexNotMaterialized.
func (db *Database) CreateIndex(name string, col int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.createIndexLocked(name, col)
	if err != nil && !errors.Is(err, ErrIndexNotMaterialized) {
		return err
	}
	// The declaration was recorded (even when not materialized), so it
	// must be logged: on recovery the catalog must show it again.
	if lerr := db.logRecord(&wal.Record{Kind: wal.RecCreateIndex, Table: name, Col: col}); lerr != nil {
		return lerr
	}
	return err
}

// createIndexLocked is the un-logged core of CreateIndex.
func (db *Database) createIndexLocked(name string, col int) error {
	rt, err := db.runtime(name)
	if err != nil {
		return err
	}
	if col < 0 || col >= rt.entry.Schema.NumColumns() {
		return fmt.Errorf("engine: index column %d out of range for %q", col, name)
	}
	supported := rt.store.SupportsIndex(col)
	if supported {
		rt.store.CreateIndex(col)
	}
	// The declaration is recorded through the catalog so the append
	// synchronizes with concurrent catalog snapshot readers.
	db.cat.AddIndex(name, col)
	if !supported {
		return fmt.Errorf("%w: column %d of %q", ErrIndexNotMaterialized, col, name)
	}
	return nil
}

// SupportsIndex reports whether a secondary index on col would be
// materialized under the table's current layout.
func (db *Database) SupportsIndex(name string, col int) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(name)
	if err != nil {
		return false, err
	}
	if col < 0 || col >= rt.entry.Schema.NumColumns() {
		return false, fmt.Errorf("engine: index column %d out of range for %q", col, name)
	}
	return rt.store.SupportsIndex(col), nil
}

// layoutBatch is the row-buffer size used when rebuilding layouts.
const layoutBatch = 4096

// SetLayout moves a table to a new placement: a plain store (spec nil) or
// a partitioned layout. All data is streamed from the old storage into the
// new one; indexes recorded in the catalog are re-created. This implements
// the "statements to move the data into the recommended store" that the
// advisor hands to the administrator (§4).
func (db *Database) SetLayout(name string, store catalog.StoreKind, spec *catalog.PartitionSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.setLayoutLocked(name, store, spec); err != nil {
		return err
	}
	if spec != nil {
		store = catalog.Partitioned
	}
	return db.logRecord(&wal.Record{Kind: wal.RecSetLayout, Table: name, Store: store, Spec: spec})
}

// setLayoutLocked is the un-logged core of SetLayout.
func (db *Database) setLayoutLocked(name string, store catalog.StoreKind, spec *catalog.PartitionSpec) error {
	rt, err := db.runtime(name)
	if err != nil {
		return err
	}
	if rt.tail != nil {
		return fmt.Errorf("engine: %q has a migration in flight", name)
	}
	if spec != nil {
		store = catalog.Partitioned
	}
	newStore, err := buildStorage(rt.entry.Schema, store, spec)
	if err != nil {
		return err
	}
	// Stream rows across in batches, reusing row buffers (Insert copies).
	width := rt.entry.Schema.NumColumns()
	batch := make([][]value.Value, 0, layoutBatch)
	bufs := make([]value.Value, layoutBatch*width)
	var insertErr error
	i := 0
	rt.store.Scan(nil, nil, func(row []value.Value) bool {
		dst := bufs[i*width : (i+1)*width]
		copy(dst, row)
		batch = append(batch, dst)
		i++
		if i == layoutBatch {
			if insertErr = newStore.Insert(batch); insertErr != nil {
				return false
			}
			batch = batch[:0]
			i = 0
		}
		return true
	})
	if insertErr != nil {
		return insertErr
	}
	if len(batch) > 0 {
		if err := newStore.Insert(batch); err != nil {
			return err
		}
	}
	for _, c := range rt.entry.Indexes {
		newStore.CreateIndex(c)
	}
	if err := db.cat.SetPlacement(name, store, spec); err != nil {
		return err
	}
	rt.store = newStore
	return nil
}

// Compact brings a table's storage to its read-optimized steady state
// (column-store delta merged, row-store tombstones reclaimed). Bulk
// loaders call it so measurements start from a merged state instead of an
// arbitrary delta fill.
func (db *Database) Compact(name string) error {
	db.mu.Lock()
	rt, err := db.runtime(name)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	// Fold pending commits first: compaction should see (and merge) the
	// committed reality, and the fold doubles as the version-chain GC
	// hook of the compaction scheduler.
	db.foldLocked()
	rt.store.Compact()
	db.mu.Unlock()
	// Refresh catalog statistics to match the compacted state (fresh
	// compression rates, reclaimed rows) so planner estimates don't
	// drift; the refresh bumps the catalog version, invalidating cached
	// plans. Runs under its own read lock so readers were never blocked
	// behind the full-table statistics scan. A failure (the table was
	// concurrently dropped) doesn't undo the compaction.
	db.CollectStats(name)
	return nil
}

// DeltaRows reports how many rows sit in the table's write-optimized
// delta fragments; the migration scheduler triggers Compact when this
// crosses its threshold.
func (db *Database) DeltaRows(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(name)
	if err != nil {
		return 0, err
	}
	return rt.store.DeltaRows(), nil
}

// CollectStats refreshes the catalog statistics of a table from its data.
func (db *Database) CollectStats(name string) (*catalog.TableStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(name)
	if err != nil {
		return nil, err
	}
	types := make([]value.Type, rt.entry.Schema.NumColumns())
	for i, c := range rt.entry.Schema.Columns {
		types[i] = c.Type
	}
	sc := catalog.NewStatsCollector(types)
	rt.store.Scan(nil, nil, func(row []value.Value) bool {
		sc.Add(row)
		return true
	})
	st := sc.Finish()
	db.cat.SetStats(name, st)
	return st, nil
}

// MemoryBytes returns the estimated payload size of a table.
func (db *Database) MemoryBytes(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(name)
	if err != nil {
		return 0, err
	}
	return rt.store.MemoryBytes(), nil
}

// Exec executes one query, measuring its runtime and notifying the
// observer. DML on tables with a primary key runs through the MVCC
// overlay under the read lock; reads take the read lock with a snapshot
// timestamp, so neither blocks the other.
func (db *Database) Exec(q *query.Query) (*Result, error) {
	return db.ExecContext(context.Background(), q)
}

// ExecContext is Exec with a statement context: cancelling (or timing
// out) ctx aborts an in-flight read at the next batch boundary — scans
// and aggregates poll the context roughly every 1024 rows — and the
// statement returns ctx.Err(). DML is not interrupted once applied (a
// half-applied statement could not be rolled back), but the context is
// checked before the statement starts. A session label attached via
// WithSession is forwarded to session-aware observers.
func (db *Database) ExecContext(ctx context.Context, q *query.Query) (*Result, error) {
	return db.execWithPlan(ctx, q, nil)
}

// execWithPlan is the statement entry point. Reads execute through the
// plan IR: a supplied plan (the server's plan cache) is used when its
// catalog version still matches, otherwise the statement is (re)planned
// under the read lock.
func (db *Database) execWithPlan(ctx context.Context, q *query.Query, planned *plan.Plan) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// An armed slow-query log traces every statement so slow ones carry
	// their per-stage breakdown; EXPLAIN ANALYZE arrives with a trace
	// already in ctx and keeps it.
	tr := trace.FromContext(ctx)
	sl := db.SlowQueryLogHandle()
	if tr == nil && sl.Threshold() > 0 {
		tr = trace.New()
		ctx = trace.WithTrace(ctx, tr)
	}
	var (
		res *Result
		err error
	)
	isDML := false
	start := time.Now()
	etx := TxnFromContext(ctx)
	switch q.Kind {
	case query.Insert, query.Update, query.Delete:
		isDML = true
		// Routing: statements of an explicit transaction claim versions
		// on the MVCC overlay; auto-commit statements on MVCC-capable
		// tables run as single-statement transactions (read lock only,
		// disjoint writers in parallel); primary-key-less tables — and
		// the SetSerialWrites bench baseline — keep the legacy
		// single-write-lock path.
		switch {
		case etx != nil:
			res, err = db.execTxnDML(tr, etx, q)
		case db.useMVCCDML(q.Table):
			res, err = db.execAutoTxnDML(ctx, tr, q)
		default:
			res, err = db.execSerialDML(ctx, tr, q)
		}
	default:
		notifyScanStarted(ctx, q.Table)
		if etx != nil {
			if err := etx.usable(); err != nil {
				return nil, err
			}
		} else if db.serialWrites.Load() {
			// Single-RW-lock baseline: an auto-commit read waits out any
			// open write transaction (which holds txnGate exclusively),
			// the way a lock-based engine keeps in-flight transactions
			// invisible. MVCC mode never takes this lock — snapshot
			// reads proceed against committed versions.
			db.txnGate.RLock()
			defer db.txnGate.RUnlock()
		}
		db.mu.RLock()
		if db.closed.Load() {
			db.mu.RUnlock()
			return nil, ErrClosed
		}
		// The statement's snapshot: its transaction's begin timestamp
		// (plus its own uncommitted writes), or the newest committed
		// state for auto-commit reads. The fold holds the write lock, so
		// base+overlay cannot shift underneath this read lock.
		snap := stmtSnap{ts: db.txns.ReadTS()}
		if etx != nil {
			snap = stmtSnap{ts: etx.tx.BeginTS, tx: etx.tx}
		}
		// A cached plan is honored only while the catalog version it
		// was built against is current; DDL, migrations, index changes
		// and statistics refreshes all move the version and force a
		// replan (still under this read lock, so the check is stable).
		p := planned
		if p == nil || p.CatalogVersion != db.cat.Version() {
			p, err = db.planReadLocked(q)
		}
		if err == nil {
			sp := tr.Start(readStage(q))
			res, err = db.execPlan(ctx, q, p, snap)
			if err == nil {
				sp.AddRowsOut(int64(len(res.Rows)))
			}
			sp.End()
		}
		db.mu.RUnlock()
	}
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	kindCounter(q.Kind).Inc()
	if isDML {
		mDMLSeconds.Observe(res.Duration.Nanoseconds())
	} else {
		mReadSeconds.Observe(res.Duration.Nanoseconds())
	}
	if obs := db.observer(); obs != nil {
		if so, ok := obs.(SessionObserver); ok {
			so.ObserveSession(SessionFromContext(ctx), q, res.Duration)
		} else {
			obs.Observe(q, res.Duration)
		}
	}
	sl.observe(SessionFromContext(ctx), q, res.Duration, resultRows(res), tr)
	return res, nil
}

// readStage names the trace span of a read statement.
func readStage(q *query.Query) string {
	switch {
	case q.Join != nil:
		return "join"
	case q.Kind == query.Aggregate:
		return "aggregate"
	default:
		return "scan"
	}
}

// resultRows is the row count reported to the slow-query log: result
// rows for reads, affected rows for DML.
func resultRows(res *Result) int {
	if len(res.Rows) > 0 {
		return len(res.Rows)
	}
	return res.Affected
}

// stopFunc derives the batch-boundary cancellation poll from a context;
// contexts that can never be cancelled poll nothing.
func stopFunc(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

func (db *Database) observer() QueryObserver {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.obs
}

// execDML applies one DML statement under the write lock. When the
// database is durable the statement is enqueued to the WAL in apply
// order and the returned sequence number must be waited on (outside the
// lock) before acknowledging.
func (db *Database) execDML(q *query.Query) (*Result, uint64, error) {
	rt, err := db.runtime(q.Table)
	if err != nil {
		return nil, 0, err
	}
	switch q.Kind {
	case query.Insert:
		coerced := make([][]value.Value, len(q.Rows))
		for i, row := range q.Rows {
			cr, err := rt.entry.Schema.CoerceRow(row)
			if err != nil {
				return nil, 0, err
			}
			coerced[i] = cr
		}
		if err := rt.store.Insert(coerced); err != nil {
			return nil, 0, err
		}
		rt.recordTail(dmlOp{kind: query.Insert, rows: coerced})
		seq, err := db.enqueueDML(&wal.Record{
			Kind: wal.RecInsert, Table: q.Table,
			Width: rt.entry.Schema.NumColumns(), Rows: coerced,
		})
		if err != nil {
			return nil, 0, err
		}
		return &Result{Affected: len(coerced)}, seq, nil
	case query.Update:
		n, err := rt.store.Update(q.Pred, q.Set)
		if err != nil {
			return nil, 0, err
		}
		rt.recordTail(dmlOp{kind: query.Update, pred: q.Pred, set: q.Set})
		seq, err := db.enqueueDML(&wal.Record{Kind: wal.RecUpdate, Table: q.Table, Pred: q.Pred, Set: q.Set})
		if err != nil {
			return nil, 0, err
		}
		return &Result{Affected: n}, seq, nil
	case query.Delete:
		n := rt.store.Delete(q.Pred)
		rt.recordTail(dmlOp{kind: query.Delete, pred: q.Pred})
		seq, err := db.enqueueDML(&wal.Record{Kind: wal.RecDelete, Table: q.Table, Pred: q.Pred})
		if err != nil {
			return nil, 0, err
		}
		return &Result{Affected: n}, seq, nil
	}
	return nil, 0, fmt.Errorf("engine: bad DML kind %v", q.Kind)
}

// enqueueDML hands a DML record to the WAL while the caller holds the
// write lock (so WAL order equals apply order) and returns the sequence
// number to wait on; 0 means the database is in-memory.
func (db *Database) enqueueDML(rec *wal.Record) (uint64, error) {
	if db.log == nil {
		return 0, nil
	}
	return db.log.Enqueue(rec)
}

// logRecord appends a record and waits for durability; used by the DDL
// paths, which hold the write lock for the (rare) sync.
func (db *Database) logRecord(rec *wal.Record) error {
	if db.log == nil {
		return nil
	}
	return db.log.Append(rec)
}

func specName(sch *schema.Table, s agg.Spec) string {
	if s.Col < 0 {
		return s.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Func, sch.Columns[s.Col].Name)
}
