package engine

import (
	"fmt"

	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// dmlOp is one buffered write recorded while a background migration is in
// flight. Insert rows are deep-copied at record time so later in-place
// mutations of store-internal buffers cannot alias the tail; predicates
// are immutable expression trees and are shared.
type dmlOp struct {
	kind query.Kind
	rows [][]value.Value
	pred expr.Predicate
	set  map[int]value.Value
}

// migrationTail buffers the DML applied to a table's live storage while a
// migration builds the replacement storage off to the side. Appends happen
// under the database write lock (execDML holds it); the migrator reads the
// slice under the read lock, so no separate mutex is needed — DML cannot
// interleave with a reader holding db.mu.RLock.
type migrationTail struct {
	ops []dmlOp
}

// recordTail buffers a DML op when a migration is in flight. Callers hold
// the database write lock.
func (rt *tableRuntime) recordTail(op dmlOp) {
	if rt.tail == nil {
		return
	}
	if op.kind == query.Insert {
		rows := make([][]value.Value, len(op.rows))
		for i, r := range op.rows {
			cp := make([]value.Value, len(r))
			copy(cp, r)
			rows[i] = cp
		}
		op.rows = rows
	}
	if op.set != nil {
		set := make(map[int]value.Value, len(op.set))
		for c, v := range op.set {
			set[c] = v
		}
		op.set = set
	}
	rt.tail.ops = append(rt.tail.ops, op)
}

// replayOps applies buffered DML to the target storage in original order.
// The target starts from the exact source state at the snapshot mark and
// ops are replayed in sequence, so each op executes against the same state
// it originally saw — no idempotency tricks are needed.
func replayOps(st storage, ops []dmlOp) error {
	for _, op := range ops {
		switch op.kind {
		case query.Insert:
			if err := st.Insert(op.rows); err != nil {
				return err
			}
		case query.Update:
			if _, err := st.Update(op.pred, op.set); err != nil {
				return err
			}
		case query.Delete:
			st.Delete(op.pred)
		}
	}
	return nil
}

// Migration-pacing knobs: the catch-up loop hands off to the final locked
// drain once the pending tail is small (the remaining replay under the
// write lock is then bounded) or after enough rounds under sustained
// write pressure.
const (
	migrateFinalDrainMax = 1024
	migrateMaxCatchup    = 8
)

// Migrating reports whether a background migration is in flight for the
// table.
func (db *Database) Migrating(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(name)
	return err == nil && rt.tail != nil
}

// MigrateLayout moves a table to a new placement like SetLayout, but
// without blocking queries for the duration of the move: the target
// storage is built off to the side from a consistent snapshot while reads
// and writes keep hitting the old storage, DML executed meanwhile is
// buffered in a tail and replayed onto the target, and the storage handle
// is swapped atomically under the write lock once the tail has drained.
// The call itself blocks until the migration completes (run it on a
// background goroutine — internal/migrate does); concurrent queries
// observe either the old or the new storage, never a partial state.
//
// Phases and their locking:
//
//  1. install the tail (brief write lock) — from here on every DML is
//     buffered alongside its normal execution;
//  2. snapshot the source (read lock: concurrent reads proceed, writers
//     queue only for the duration of the raw row copy);
//  3. build the target from the snapshot and materialize declared
//     indexes (no lock — this dictionary-encoding-heavy phase is why the
//     blocking SetLayout is unsuitable online);
//  4. catch up: repeatedly replay newly buffered ops (tail reads under
//     the read lock, replay unlocked);
//  5. cut over (brief write lock): replay the remaining tail, swap the
//     storage handle, update the catalog.
func (db *Database) MigrateLayout(name string, store catalog.StoreKind, spec *catalog.PartitionSpec) error {
	// Phase 1: resolve the table, build the empty target, install the tail.
	db.mu.Lock()
	rt, err := db.runtime(name)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	if rt.tail != nil {
		db.mu.Unlock()
		return fmt.Errorf("engine: %q already has a migration in flight", name)
	}
	if spec != nil {
		store = catalog.Partitioned
	}
	target, err := buildStorage(rt.entry.Schema, store, spec)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	tail := &migrationTail{}
	rt.tail = tail
	db.mu.Unlock()

	abort := func(cause error) error {
		db.mu.Lock()
		if cur, err := db.runtime(name); err == nil && cur.tail == tail {
			cur.tail = nil
		}
		db.mu.Unlock()
		return cause
	}

	// Phase 2: snapshot under the read lock. DML needs the write lock, so
	// the tail cannot grow while we scan: every op before mark is fully
	// reflected in the snapshot, every op at or after mark is not at all.
	db.mu.RLock()
	mark := len(tail.ops)
	width := rt.entry.Schema.NumColumns()
	var snapshot [][]value.Value
	rt.store.Scan(nil, nil, func(row []value.Value) bool {
		cp := make([]value.Value, width)
		copy(cp, row)
		snapshot = append(snapshot, cp)
		return true
	})
	indexes := append([]int(nil), rt.entry.Indexes...)
	db.mu.RUnlock()

	// Phase 3: build the target off to the side.
	for off := 0; off < len(snapshot); off += layoutBatch {
		end := off + layoutBatch
		if end > len(snapshot) {
			end = len(snapshot)
		}
		if err := target.Insert(snapshot[off:end]); err != nil {
			return abort(fmt.Errorf("engine: migrating %q: %w", name, err))
		}
	}
	snapshot = nil
	for _, c := range indexes {
		target.CreateIndex(c)
	}

	// Phase 4: catch up on buffered writes without blocking new ones.
	applied := mark
	for round := 0; round < migrateMaxCatchup; round++ {
		db.mu.RLock()
		pending := append([]dmlOp(nil), tail.ops[applied:]...)
		db.mu.RUnlock()
		if len(pending) <= migrateFinalDrainMax {
			break
		}
		if err := replayOps(target, pending); err != nil {
			return abort(fmt.Errorf("engine: migrating %q: %w", name, err))
		}
		applied += len(pending)
	}

	// Phase 5: final drain and atomic cutover.
	db.mu.Lock()
	cur, err := db.runtime(name)
	if err != nil || cur.tail != tail {
		// The table was dropped (or the migration superseded) meanwhile.
		if err == nil {
			err = fmt.Errorf("engine: migration of %q superseded", name)
		}
		db.mu.Unlock()
		return err
	}
	if err := replayOps(target, tail.ops[applied:]); err != nil {
		cur.tail = nil
		db.mu.Unlock()
		return fmt.Errorf("engine: migrating %q: %w", name, err)
	}
	// Indexes declared after the off-lock materialization pass.
	for _, c := range cur.entry.Indexes {
		if !containsCol(indexes, c) {
			target.CreateIndex(c)
		}
	}
	if err := db.cat.SetPlacement(name, store, spec); err != nil {
		cur.tail = nil
		db.mu.Unlock()
		return err
	}
	cur.store = target
	cur.tail = nil
	mMigrations.Inc()
	// A migration becomes durable only here, as a single layout-change
	// record logged after the swap: a crash at any earlier point leaves
	// no trace of it in the WAL, so recovery replays the buffered DML
	// against the old layout — the in-flight migration aborts cleanly.
	werr := db.logRecord(&wal.Record{Kind: wal.RecSetLayout, Table: name, Store: store, Spec: spec})
	db.mu.Unlock()
	// Refresh statistics against the new layout so planner estimates
	// (and the catalog version plan caches key on) track the cutover;
	// a failure means the table was concurrently dropped, which doesn't
	// undo the completed migration.
	db.CollectStats(name)
	return werr
}

func containsCol(cols []int, c int) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}
