package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// commitTxnWorkload runs one explicit transaction touching several rows
// (update, delete, insert) and commits it, so its WAL commit record is a
// multi-row unit that recovery must apply atomically or not at all.
func commitTxnWorkload(t *testing.T, db *Database, round int64) {
	t.Helper()
	tx := begin(t, db)
	if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
		Pred: idEq(round), Set: map[int]value.Value{2: value.NewDouble(9000 + float64(round))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(&query.Query{Kind: query.Delete, Table: "sales",
		Pred: idEq(round + 4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(&query.Query{Kind: query.Insert, Table: "sales",
		Rows: [][]value.Value{salesRow(100 + round)}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTxnRecoveryTruncatedCommitRecord cuts the WAL at every byte length
// across two transactional commit records and checks each recovery lands
// on exactly one of the legal committed states — a torn commit record
// rolls the whole transaction back, never replaying part of it.
func TestTxnRecoveryTruncatedCommitRecord(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	// Base state arrives as one multi-row insert so every legal recovery
	// image is an atomic state, not an insert prefix.
	base := make([][]value.Value, 0, 10)
	for i := 0; i < 10; i++ {
		base = append(base, salesRow(int64(i)))
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: base})
	stateBase := visibleState(t, db, "sales")

	commitTxnWorkload(t, db, 1)
	stateA := visibleState(t, db, "sales")
	commitTxnWorkload(t, db, 2)
	stateB := visibleState(t, db, "sales")
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	legal := [][]string{{}, stateBase, stateA, stateB}
	names := []string{"empty", "base", "after-txn-A", "after-both"}
	reached := make([]bool, len(legal))
	for cut := 0; cut <= len(data); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "wal.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re := openTestDB(t, cutDir)
		if _, err := re.Rows("sales"); err != nil {
			// Cut inside the create-table record: the table never existed.
			re.Close()
			continue
		}
		got := visibleState(t, re, "sales")
		matched := -1
		for i, want := range legal {
			if reflect.DeepEqual(got, want) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Fatalf("cut at %d/%d bytes: recovered a partial transaction: %v", cut, len(data), got)
		}
		reached[matched] = true
		re.Close()
	}
	// Sanity: the sweep actually visited every atomic state, including the
	// full replay — otherwise the loop could pass vacuously.
	for i, ok := range reached {
		if !ok {
			t.Fatalf("truncation sweep never produced the %q state", names[i])
		}
	}
}

// TestTxnRecoveryCommittedOnly crashes with one transaction committed and
// another still open; recovery must replay the committed one in full and
// show no trace of the open one.
func TestTxnRecoveryCommittedOnly(t *testing.T) {
	for _, spec := range layoutSpecs() {
		t.Run(spec.name, func(t *testing.T) {
			dir := t.TempDir()
			db := openTestDB(t, dir)
			if err := db.CreateTableWithLayout(salesSchema(), spec.store, spec.spec); err != nil {
				t.Fatal(err)
			}
			rows := make([][]value.Value, 0, 10)
			for i := 0; i < 10; i++ {
				rows = append(rows, salesRow(int64(i)))
			}
			mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})

			commitTxnWorkload(t, db, 3)
			want := visibleState(t, db, "sales")

			// Open transaction with pending writes at crash time: its
			// versions live only in the overlay, never in the WAL.
			open := begin(t, db)
			if _, err := open.Exec(&query.Query{Kind: query.Update, Table: "sales",
				Pred: idEq(0), Set: map[int]value.Value{2: value.NewDouble(-1)}}); err != nil {
				t.Fatal(err)
			}
			if _, err := open.Exec(&query.Query{Kind: query.Insert, Table: "sales",
				Rows: [][]value.Value{salesRow(999)}}); err != nil {
				t.Fatal(err)
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}

			re := openTestDB(t, dir)
			defer re.Close()
			if got := visibleState(t, re, "sales"); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovery state diverged:\n got %v\nwant %v", got, want)
			}
		})
	}
}
