package engine

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/metrics"
	"hybridstore/internal/query"
	"hybridstore/internal/trace"
)

// slowLogMaxPerSec caps slow-query log entries per second; a storm of
// slow statements (a saturated server is exactly when everything turns
// slow) must not amplify itself with logging I/O. Dropped entries are
// counted and surfaced as a metric.
const slowLogMaxPerSec = 50

var mSlowlogDropped = metrics.Default().Counter("hs_slowlog_dropped_total",
	"slow-query log entries dropped by rate limiting")
var mSlowlogWritten = metrics.Default().Counter("hs_slowlog_written_total",
	"slow-query log entries written")

// SlowQueryLog writes one JSON line per statement whose latency crosses
// a runtime-adjustable threshold. While the threshold is non-zero every
// statement is traced, so each entry carries the per-stage trace
// summary that answers "why was this statement slow?"; with the
// threshold at zero the log is fully disarmed and statements run with
// tracing off (one atomic load of overhead).
type SlowQueryLog struct {
	w         io.Writer
	mu        sync.Mutex // serializes writes and rate-limit state
	threshold atomic.Int64
	winStart  int64 // unix second of the current rate window
	winCount  int64
}

// NewSlowQueryLog creates a slow-query log writing JSON lines to w with
// the given initial threshold (0 = disarmed).
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	sl := &SlowQueryLog{w: w}
	sl.threshold.Store(int64(threshold))
	return sl
}

// SetThreshold adjusts the slow-statement threshold at runtime; 0
// disarms the log (and stops arming traces).
func (sl *SlowQueryLog) SetThreshold(d time.Duration) {
	if sl == nil {
		return
	}
	sl.threshold.Store(int64(d))
}

// Threshold returns the current threshold (0 = disarmed).
func (sl *SlowQueryLog) Threshold() time.Duration {
	if sl == nil {
		return 0
	}
	return time.Duration(sl.threshold.Load())
}

// slowLogEntry is the JSON shape of one slow-query log line.
type slowLogEntry struct {
	Time       string  `json:"time"` // RFC 3339 with millis
	Session    string  `json:"session,omitempty"`
	Kind       string  `json:"kind"`
	Query      string  `json:"query"`
	DurationMS float64 `json:"duration_ms"`
	Rows       int     `json:"rows"`
	Trace      string  `json:"trace,omitempty"`
}

// observe records one finished statement, writing an entry when its
// duration crosses the armed threshold and the rate limit allows.
func (sl *SlowQueryLog) observe(session string, q *query.Query, d time.Duration, rows int, tr *trace.Trace) {
	if sl == nil {
		return
	}
	th := sl.threshold.Load()
	if th <= 0 || int64(d) < th {
		return
	}
	now := time.Now()
	sl.mu.Lock()
	sec := now.Unix()
	if sec != sl.winStart {
		sl.winStart = sec
		sl.winCount = 0
	}
	if sl.winCount >= slowLogMaxPerSec {
		sl.mu.Unlock()
		mSlowlogDropped.Inc()
		return
	}
	sl.winCount++
	entry := slowLogEntry{
		Time:       now.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		Session:    session,
		Kind:       q.Kind.String(),
		Query:      q.String(),
		DurationMS: float64(d) / float64(time.Millisecond),
		Rows:       rows,
		Trace:      tr.Summary(),
	}
	line, err := json.Marshal(entry)
	if err == nil {
		line = append(line, '\n')
		sl.w.Write(line)
	}
	sl.mu.Unlock()
	mSlowlogWritten.Inc()
}

// SetSlowQueryLog attaches (or with nil detaches) the database's
// slow-query log. Safe to call while statements execute.
func (db *Database) SetSlowQueryLog(sl *SlowQueryLog) {
	db.slow.Store(&slowLogBox{sl: sl})
}

// SlowQueryLogHandle returns the attached slow-query log (nil when
// detached) so CLIs and the debug listener can adjust its threshold at
// runtime.
func (db *Database) SlowQueryLogHandle() *SlowQueryLog {
	if b := db.slow.Load(); b != nil {
		return b.sl
	}
	return nil
}

// slowLogBox wraps the pointer for atomic.Pointer (which needs a
// concrete type even for a nil slow log).
type slowLogBox struct{ sl *SlowQueryLog }
