package engine

import (
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func TestJoinEmptySides(t *testing.T) {
	db := New()
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(dimSchema(), catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		Kind: query.Aggregate, Table: "sales",
		Join: &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
	}
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("empty join count = %v", res.Rows[0][0])
	}
	// One side populated, other empty: still zero matches.
	rows := [][]value.Value{salesRow(1), salesRow(2)}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("half-empty join count = %v", res.Rows[0][0])
	}
}

func TestJoinNullKeysIgnored(t *testing.T) {
	db := New()
	left := schema.MustNew("l", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "k", Type: value.Integer, Nullable: true},
	}, "id")
	right := schema.MustNew("r", []schema.Column{
		{Name: "rk", Type: value.Integer},
		{Name: "v", Type: value.Double},
	}, "rk")
	if err := db.CreateTable(left, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(right, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	lrows := [][]value.Value{
		{value.NewBigint(1), value.NewInt(7)},
		{value.NewBigint(2), value.Null(value.Integer)},
	}
	rrows := [][]value.Value{{value.NewInt(7), value.NewDouble(1.5)}}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "l", Rows: lrows}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "r", Rows: rrows}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(&query.Query{
		Kind: query.Select, Table: "l",
		Join: &query.Join{Table: "r", LeftCol: 1, RightCol: 0},
		Cols: []int{0, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("NULL keys must not join: %v", res.Rows)
	}
}

func TestJoinBadColumns(t *testing.T) {
	db := newJoinDB(t, catalog.RowStore, catalog.RowStore, 10)
	q := &query.Query{
		Kind: query.Aggregate, Table: "sales",
		Join: &query.Join{Table: "dim", LeftCol: 99, RightCol: 0},
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
	}
	if _, err := db.Exec(q); err == nil {
		t.Error("out-of-range join column accepted")
	}
	q.Join = &query.Join{Table: "ghost", LeftCol: 1, RightCol: 0}
	if _, err := db.Exec(q); err == nil {
		t.Error("unknown join table accepted")
	}
}

func TestJoinDuplicateBuildKeys(t *testing.T) {
	// Multiple dim rows share the same key: each probe row matches all of
	// them (many-to-many join semantics).
	db := New()
	left := schema.MustNew("l", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "k", Type: value.Integer},
	}, "id")
	right := schema.MustNew("r", []schema.Column{
		{Name: "rid", Type: value.Bigint},
		{Name: "rk", Type: value.Integer},
	}, "rid")
	if err := db.CreateTable(left, catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(right, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "l", Rows: [][]value.Value{
		{value.NewBigint(1), value.NewInt(5)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "r", Rows: [][]value.Value{
		{value.NewBigint(10), value.NewInt(5)},
		{value.NewBigint(11), value.NewInt(5)},
		{value.NewBigint(12), value.NewInt(6)},
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "l",
		Join: &query.Join{Table: "r", LeftCol: 1, RightCol: 1},
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("many-to-many join count = %v, want 2", res.Rows[0][0])
	}
}

func TestSplitJoinPred(t *testing.T) {
	// Combined space: left 0..4, right 5..6.
	pred := &expr.And{Preds: []expr.Predicate{
		&expr.Comparison{Col: 2, Op: expr.Gt, Val: value.NewDouble(1)},    // left
		&expr.Comparison{Col: 6, Op: expr.Eq, Val: value.NewVarchar("x")}, // right
		&expr.Or{Preds: []expr.Predicate{ // mixed → post
			&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
			&expr.Comparison{Col: 5, Op: expr.Eq, Val: value.NewInt(2)},
		}},
	}}
	l, r, post := plan.SplitJoinPred(pred, 5, 2)
	if l == nil || len(expr.ColumnSet(l)) != 1 || expr.ColumnSet(l)[0] != 2 {
		t.Errorf("left pred = %v", l)
	}
	if r == nil || expr.ColumnSet(r)[0] != 1 { // remapped to right-local
		t.Errorf("right pred = %v", r)
	}
	if post == nil {
		t.Error("mixed conjunct should be post-filtered")
	}
	l, r, post = plan.SplitJoinPred(nil, 5, 2)
	if l != nil || r != nil || post != nil {
		t.Error("nil pred should split to nils")
	}
}

func TestJoinBuildSideSelection(t *testing.T) {
	// Join works regardless of which side is smaller (build-side swap).
	for _, factRows := range []int{5, 500} {
		db := newJoinDB(t, catalog.RowStore, catalog.RowStore, factRows)
		res, err := db.Exec(&query.Query{
			Kind: query.Aggregate, Table: "sales",
			Join: &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
			Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != int64(factRows) {
			t.Errorf("factRows=%d: count = %v", factRows, res.Rows[0][0])
		}
	}
}

// The columnar dictionary-probe fast path and the generic probe must agree
// for every grouping shape (build-side grouping takes the fast path,
// probe-side grouping falls back).
func TestColumnarJoinFastPathParity(t *testing.T) {
	rsdb := newJoinDB(t, catalog.RowStore, catalog.RowStore, 300)
	csdb := newJoinDB(t, catalog.ColumnStore, catalog.RowStore, 300)
	queries := []*query.Query{
		{ // build-side grouping: fast path on the CS database
			Kind: query.Aggregate, Table: "sales",
			Join:    &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
			GroupBy: []int{6},
		},
		{ // probe-side grouping: generic path
			Kind: query.Aggregate, Table: "sales",
			Join:    &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}},
			GroupBy: []int{3},
		},
		{ // probe-side filter + build-side aggregate source
			Kind: query.Aggregate, Table: "sales",
			Join: &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
			Aggs: []agg.Spec{{Func: agg.Max, Col: 5}}, // dim.rid (build side)
			Pred: &expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewDouble(150)},
		},
		{ // ungrouped with aggregate on the join key itself
			Kind: query.Aggregate, Table: "sales",
			Join: &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
			Aggs: []agg.Spec{{Func: agg.Sum, Col: 1}},
		},
	}
	for qi, q := range queries {
		rres, err := rsdb.Exec(q)
		if err != nil {
			t.Fatalf("query %d rs: %v", qi, err)
		}
		cres, err := csdb.Exec(q)
		if err != nil {
			t.Fatalf("query %d cs: %v", qi, err)
		}
		if len(rres.Rows) != len(cres.Rows) {
			t.Fatalf("query %d: group counts %d vs %d", qi, len(rres.Rows), len(cres.Rows))
		}
		want := map[string][]value.Value{}
		for _, row := range rres.Rows {
			want[row[0].String()] = row
		}
		for _, row := range cres.Rows {
			w, ok := want[row[0].String()]
			if !ok {
				t.Fatalf("query %d: unexpected group %v", qi, row[0])
			}
			for i := range row {
				if !row[i].IsNull() && row[i].Float() != w[i].Float() {
					t.Fatalf("query %d group %v col %d: cs=%v rs=%v", qi, row[0], i, row[i], w[i])
				}
			}
		}
	}
}
