package engine

import (
	"hybridstore/internal/metrics"
	"hybridstore/internal/query"
)

// Engine-level instruments in the process-wide registry. Statement
// metrics are recorded once per ExecContext (never per row), so the
// cost is two atomic adds per statement; the WAL-wait histogram
// isolates the group-commit share of DML latency from apply time.
var (
	mReadSeconds = metrics.Default().Histogram("hs_engine_read_seconds",
		"read statement (select/aggregate/join) latency", "seconds")
	mDMLSeconds = metrics.Default().Histogram("hs_engine_dml_seconds",
		"DML statement latency including the durability wait", "seconds")
	mWALWaitSeconds = metrics.Default().Histogram("hs_engine_wal_wait_seconds",
		"time DML statements spend waiting on WAL group commit", "seconds")
	mCheckpointSeconds = metrics.Default().Histogram("hs_engine_checkpoint_seconds",
		"snapshot checkpoint duration", "seconds")
	mPlanningSeconds = metrics.Default().Histogram("hs_planning_seconds",
		"query planning latency (plan IR construction and costing)", "seconds")

	mSelects = metrics.Default().Counter("hs_engine_select_total",
		"SELECT statements executed")
	mAggregates = metrics.Default().Counter("hs_engine_aggregate_total",
		"aggregate statements executed")
	mInserts = metrics.Default().Counter("hs_engine_insert_total",
		"INSERT statements executed")
	mUpdates = metrics.Default().Counter("hs_engine_update_total",
		"UPDATE statements executed")
	mDeletes = metrics.Default().Counter("hs_engine_delete_total",
		"DELETE statements executed")

	mMigrations = metrics.Default().Counter("hs_engine_migrations_total",
		"completed online layout migrations")
	mCheckpoints = metrics.Default().Counter("hs_engine_checkpoints_total",
		"completed snapshot checkpoints")

	// Transaction instruments. begin/commit/abort/active count explicit
	// (BEGIN…COMMIT) transactions; conflicts additionally counts the
	// first-updater-wins aborts auto-commit statements retry through
	// internally, so it is the contention signal even without explicit
	// transactions.
	mTxnBegins = metrics.Default().Counter("hs_txn_begin_total",
		"explicit transactions begun")
	mTxnCommits = metrics.Default().Counter("hs_txn_commit_total",
		"explicit transactions committed")
	mTxnAborts = metrics.Default().Counter("hs_txn_abort_total",
		"explicit transactions aborted (rollback, statement failure or conflict)")
	mTxnConflicts = metrics.Default().Counter("hs_txn_conflict_total",
		"snapshot-isolation write-write conflicts detected (including internal auto-commit retries)")
	mTxnFoldErrors = metrics.Default().Counter("hs_txn_fold_errors_total",
		"commit folds re-queued after a base-storage error")
	mTxnActive = metrics.Default().Gauge("hs_txn_active",
		"explicit transactions currently open")
)

func kindCounter(k query.Kind) *metrics.Counter {
	switch k {
	case query.Aggregate:
		return mAggregates
	case query.Select:
		return mSelects
	case query.Insert:
		return mInserts
	case query.Update:
		return mUpdates
	default:
		return mDeletes
	}
}
