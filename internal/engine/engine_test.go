package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func salesSchema() *schema.Table {
	return schema.MustNew("sales", []schema.Column{
		{Name: "id", Type: value.Bigint},      // 0
		{Name: "region", Type: value.Integer}, // 1
		{Name: "amount", Type: value.Double},  // 2
		{Name: "qty", Type: value.Integer},    // 3
		{Name: "status", Type: value.Varchar}, // 4
	}, "id")
}

func salesRow(id int64) []value.Value {
	return []value.Value{
		value.NewBigint(id),
		value.NewInt(id % 4),
		value.NewDouble(float64(id)),
		value.NewInt(id % 10),
		value.NewVarchar(fmt.Sprintf("S%d", id%3)),
	}
}

func newDB(t *testing.T, store catalog.StoreKind, n int) *Database {
	t.Helper()
	db := New()
	if err := db.CreateTable(salesSchema(), store); err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		rows := make([][]value.Value, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, salesRow(int64(i)))
		}
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateDropTable(t *testing.T) {
	db := New()
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err == nil {
		t.Error("duplicate create accepted")
	}
	if db.Catalog().Table("sales") == nil {
		t.Error("catalog entry missing")
	}
	if err := db.DropTable("sales"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("sales"); err == nil {
		t.Error("double drop accepted")
	}
	if db.Catalog().Table("sales") != nil {
		t.Error("catalog entry not removed")
	}
}

func TestExecValidates(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	if _, err := db.Exec(&query.Query{Kind: query.Select, Table: "ghost"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Exec(&query.Query{Kind: query.Select}); err == nil {
		t.Error("missing table name accepted")
	}
	if _, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales", Cols: []int{99}}); err == nil {
		t.Error("bad projection accepted")
	}
}

func TestInsertCoerces(t *testing.T) {
	db := newDB(t, catalog.RowStore, 0)
	// amount given as int, id as int: must be coerced.
	row := []value.Value{value.NewInt(1), value.NewInt(0), value.NewInt(5), value.NewInt(1), value.NewVarchar("x")}
	res, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: [][]value.Value{row}})
	if err != nil || res.Affected != 1 {
		t.Fatalf("insert: %v, %v", res, err)
	}
	sel, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales"})
	if err != nil || len(sel.Rows) != 1 {
		t.Fatal(err)
	}
	if sel.Rows[0][2].Type() != value.Double {
		t.Errorf("amount not coerced: %v", sel.Rows[0][2].Type())
	}
}

func execBothStores(t *testing.T, n int, q *query.Query) (*Result, *Result) {
	t.Helper()
	rdb := newDB(t, catalog.RowStore, n)
	cdb := newDB(t, catalog.ColumnStore, n)
	rres, err := rdb.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cdb.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	return rres, cres
}

func TestSelectParity(t *testing.T) {
	q := &query.Query{
		Kind: query.Select, Table: "sales", Cols: []int{0, 2},
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)},
	}
	rres, cres := execBothStores(t, 100, q)
	if len(rres.Rows) != 25 || len(cres.Rows) != 25 {
		t.Errorf("row/col select sizes: %d vs %d", len(rres.Rows), len(cres.Rows))
	}
	if rres.Cols[0] != "id" || rres.Cols[1] != "amount" {
		t.Errorf("col names: %v", rres.Cols)
	}
}

func TestSelectLimit(t *testing.T) {
	q := &query.Query{Kind: query.Select, Table: "sales", Limit: 7}
	rres, cres := execBothStores(t, 100, q)
	if len(rres.Rows) != 7 || len(cres.Rows) != 7 {
		t.Errorf("limit: %d vs %d", len(rres.Rows), len(cres.Rows))
	}
}

func TestAggregateParity(t *testing.T) {
	q := &query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
		GroupBy: []int{1},
	}
	rres, cres := execBothStores(t, 200, q)
	if len(rres.Rows) != 4 || len(cres.Rows) != 4 {
		t.Fatalf("groups: %d vs %d", len(rres.Rows), len(cres.Rows))
	}
	rsum := map[int64]float64{}
	for _, r := range rres.Rows {
		rsum[r[0].Int()] = r[1].Double()
	}
	for _, c := range cres.Rows {
		if rsum[c[0].Int()] != c[1].Double() {
			t.Errorf("group %v: col=%v row=%v", c[0], c[1], rsum[c[0].Int()])
		}
	}
	if rres.Cols[0] != "region" || rres.Cols[1] != "SUM(amount)" {
		t.Errorf("agg col names: %v", rres.Cols)
	}
}

func TestUpdateDelete(t *testing.T) {
	for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
		db := newDB(t, store, 50)
		upd := &query.Query{
			Kind: query.Update, Table: "sales",
			Set:  map[int]value.Value{2: value.NewDouble(-5)},
			Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(3)},
		}
		res, err := db.Exec(upd)
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 12 { // ids 3,7,...,47
			t.Errorf("%v: updated %d", store, res.Affected)
		}
		del := &query.Query{
			Kind: query.Delete, Table: "sales",
			Pred: &expr.Comparison{Col: 2, Op: expr.Eq, Val: value.NewDouble(-5)},
		}
		res, err = db.Exec(del)
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 12 {
			t.Errorf("%v: deleted %d", store, res.Affected)
		}
		n, _ := db.Rows("sales")
		if n != 38 {
			t.Errorf("%v: rows after delete = %d", store, n)
		}
	}
}

func dimSchema() *schema.Table {
	return schema.MustNew("dim", []schema.Column{
		{Name: "rid", Type: value.Integer},  // 0 → combined 5
		{Name: "name", Type: value.Varchar}, // 1 → combined 6
	}, "rid")
}

func newJoinDB(t *testing.T, factStore, dimStore catalog.StoreKind, n int) *Database {
	t.Helper()
	db := New()
	if err := db.CreateTable(salesSchema(), factStore); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(dimSchema(), dimStore); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	var dimRows [][]value.Value
	for r := 0; r < 4; r++ {
		dimRows = append(dimRows, []value.Value{value.NewInt(int64(r)), value.NewVarchar(fmt.Sprintf("region-%d", r))})
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "dim", Rows: dimRows}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestJoinAggregate(t *testing.T) {
	for _, stores := range [][2]catalog.StoreKind{
		{catalog.RowStore, catalog.RowStore},
		{catalog.ColumnStore, catalog.RowStore},
		{catalog.RowStore, catalog.ColumnStore},
		{catalog.ColumnStore, catalog.ColumnStore},
	} {
		db := newJoinDB(t, stores[0], stores[1], 100)
		// SELECT dim.name, SUM(sales.amount) FROM sales JOIN dim ON region=rid GROUP BY dim.name
		q := &query.Query{
			Kind: query.Aggregate, Table: "sales",
			Join:    &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}},
			GroupBy: []int{6}, // dim.name
		}
		res, err := db.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("%v: groups = %d", stores, len(res.Rows))
		}
		total := 0.0
		for _, r := range res.Rows {
			total += r[1].Double()
		}
		if total != 4950 { // sum 0..99
			t.Errorf("%v: total = %v", stores, total)
		}
	}
}

func TestJoinSelectWithPredicates(t *testing.T) {
	db := newJoinDB(t, catalog.ColumnStore, catalog.RowStore, 100)
	q := &query.Query{
		Kind: query.Select, Table: "sales",
		Join: &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
		Cols: []int{0, 6},
		Pred: &expr.And{Preds: []expr.Predicate{
			&expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewDouble(50)},          // left side
			&expr.Comparison{Col: 6, Op: expr.Eq, Val: value.NewVarchar("region-1")}, // right side
			&expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(0)},           // left side
		}},
	}
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// ids 1,5,...,49 with region 1: 13 rows
	if len(res.Rows) != 13 {
		t.Errorf("join select rows = %d", len(res.Rows))
	}
	if res.Cols[1] != "dim.name" {
		t.Errorf("join col names = %v", res.Cols)
	}
}

func TestJoinLimit(t *testing.T) {
	db := newJoinDB(t, catalog.RowStore, catalog.RowStore, 100)
	q := &query.Query{
		Kind: query.Select, Table: "sales",
		Join:  &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
		Cols:  []int{0},
		Limit: 9,
	}
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Errorf("join limit rows = %d", len(res.Rows))
	}
}

func horizontalSpec() *catalog.PartitionSpec {
	return &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(80),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
}

func TestHorizontalPartitioning(t *testing.T) {
	db := New()
	if err := db.CreateTableWithLayout(salesSchema(), catalog.RowStore, horizontalSpec()); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	if e := db.Catalog().Table("sales"); e.Store != catalog.Partitioned {
		t.Errorf("store kind = %v", e.Store)
	}
	// Aggregate over everything: merged across partitions.
	res, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Double() != 4950 || res.Rows[0][1].Int() != 100 {
		t.Errorf("merged aggregate = %v", res.Rows[0])
	}
	// Grouped aggregate across partitions.
	res, err = db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs:    []agg.Spec{{Func: agg.Count, Col: -1}},
		GroupBy: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int() != 25 {
			t.Errorf("group %v count = %v", r[0], r[1])
		}
	}
	// Range-pruned select: only hot side touched (ids >= 80).
	res, err = db.Exec(&query.Query{
		Kind: query.Select, Table: "sales",
		Pred: &expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(90)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("pruned select rows = %d", len(res.Rows))
	}
	// Update in the hot region.
	res, err = db.Exec(&query.Query{
		Kind: query.Update, Table: "sales",
		Set:  map[int]value.Value{4: value.NewVarchar("HOT")},
		Pred: &expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(95)},
	})
	if err != nil || res.Affected != 5 {
		t.Fatalf("hot update: %v %v", res, err)
	}
	// Delete spanning both sides.
	res, err = db.Exec(&query.Query{
		Kind: query.Delete, Table: "sales",
		Pred: &expr.Between{Col: 0, Lo: value.NewBigint(75), Hi: value.NewBigint(84)},
	})
	if err != nil || res.Affected != 10 {
		t.Fatalf("spanning delete: %v %v", res, err)
	}
	n, _ := db.Rows("sales")
	if n != 90 {
		t.Errorf("rows after delete = %d", n)
	}
}

func TestHorizontalMigratingUpdate(t *testing.T) {
	db := New()
	if err := db.CreateTableWithLayout(salesSchema(), catalog.RowStore, horizontalSpec()); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	// Move a cold row into the hot range by updating the split column.
	res, err := db.Exec(&query.Query{
		Kind: query.Update, Table: "sales",
		Set:  map[int]value.Value{0: value.NewBigint(200)},
		Pred: &expr.Comparison{Col: 2, Op: expr.Eq, Val: value.NewDouble(10)},
	})
	if err != nil || res.Affected != 1 {
		t.Fatalf("migrating update: %v %v", res, err)
	}
	// The row must now be visible in the hot range.
	sel, err := db.Exec(&query.Query{
		Kind: query.Select, Table: "sales",
		Pred: &expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(100)},
	})
	if err != nil || len(sel.Rows) != 1 {
		t.Fatalf("migrated row not found: %v %v", sel, err)
	}
	n, _ := db.Rows("sales")
	if n != 100 {
		t.Errorf("row count changed: %d", n)
	}
}

func verticalSpec() *catalog.PartitionSpec {
	return &catalog.PartitionSpec{Vertical: &catalog.VerticalSpec{
		RowCols: []int{0, 4},       // id, status (OLTP attrs)
		ColCols: []int{0, 1, 2, 3}, // id, region, amount, qty (OLAP attrs)
	}}
}

func TestVerticalPartitioning(t *testing.T) {
	db := New()
	if err := db.CreateTableWithLayout(salesSchema(), catalog.RowStore, verticalSpec()); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	// OLAP aggregate fully served by the column partition.
	res, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}},
		GroupBy: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("groups = %d", len(res.Rows))
	}
	// OLTP update fully served by the row partition.
	ures, err := db.Exec(&query.Query{
		Kind: query.Update, Table: "sales",
		Set:  map[int]value.Value{4: value.NewVarchar("PAID")},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)},
	})
	if err != nil || ures.Affected != 1 {
		t.Fatalf("row-part update: %v %v", ures, err)
	}
	// Spanning select needs the PK join.
	sres, err := db.Exec(&query.Query{
		Kind: query.Select, Table: "sales",
		Cols: []int{0, 2, 4},
		Pred: &expr.Comparison{Col: 4, Op: expr.Eq, Val: value.NewVarchar("PAID")},
	})
	if err != nil || len(sres.Rows) != 1 {
		t.Fatalf("spanning select: %d rows, %v", len(sres.Rows), err)
	}
	if sres.Rows[0][1].Double() != 7 {
		t.Errorf("joined value = %v", sres.Rows[0])
	}
	// Update spanning both partitions (assignments on each side).
	ures, err = db.Exec(&query.Query{
		Kind: query.Update, Table: "sales",
		Set: map[int]value.Value{
			2: value.NewDouble(1000), // column part
			4: value.NewVarchar("X"), // row part
		},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
	})
	if err != nil || ures.Affected != 1 {
		t.Fatalf("spanning update: %v %v", ures, err)
	}
	check, err := db.Exec(&query.Query{
		Kind: query.Select, Table: "sales",
		Cols: []int{2, 4},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
	})
	if err != nil || len(check.Rows) != 1 {
		t.Fatal(err)
	}
	if check.Rows[0][0].Double() != 1000 || check.Rows[0][1].Varchar() != "X" {
		t.Errorf("spanning update result = %v", check.Rows[0])
	}
	// Delete removes from both partitions.
	dres, err := db.Exec(&query.Query{
		Kind: query.Delete, Table: "sales",
		Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(10)},
	})
	if err != nil || dres.Affected != 10 {
		t.Fatalf("vertical delete: %v %v", dres, err)
	}
	n, _ := db.Rows("sales")
	if n != 90 {
		t.Errorf("rows = %d", n)
	}
	// Aggregate still consistent after mutations.
	ares, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
	})
	if err != nil || ares.Rows[0][0].Int() != 90 {
		t.Fatalf("count after delete: %v %v", ares, err)
	}
}

func TestCombinedHorizontalVertical(t *testing.T) {
	spec := &catalog.PartitionSpec{
		Horizontal: horizontalSpec().Horizontal,
		Vertical:   verticalSpec().Vertical,
	}
	db := New()
	if err := db.CreateTableWithLayout(salesSchema(), catalog.RowStore, spec); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 120)
	for i := 0; i < 120; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Int() != 120 {
		t.Errorf("count = %v", res.Rows[0][1])
	}
	if res.Rows[0][0].Double() != float64(119*120)/2 {
		t.Errorf("sum = %v", res.Rows[0][0])
	}
	// Status update on a historic row goes through the vertical row part.
	ures, err := db.Exec(&query.Query{
		Kind: query.Update, Table: "sales",
		Set:  map[int]value.Value{4: value.NewVarchar("OLD")},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(5)},
	})
	if err != nil || ures.Affected != 1 {
		t.Fatalf("historic update: %v %v", ures, err)
	}
}

// SetLayout must preserve data across every layout transition.
func TestSetLayoutTransitions(t *testing.T) {
	layouts := []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"horizontal", catalog.Partitioned, horizontalSpec()},
		{"vertical", catalog.Partitioned, verticalSpec()},
		{"both", catalog.Partitioned, &catalog.PartitionSpec{
			Horizontal: horizontalSpec().Horizontal,
			Vertical:   verticalSpec().Vertical,
		}},
	}
	db := newDB(t, catalog.RowStore, 200)
	wantSum := float64(199*200) / 2
	for _, l := range layouts {
		if err := db.SetLayout("sales", l.store, l.spec); err != nil {
			t.Fatalf("SetLayout(%s): %v", l.name, err)
		}
		res, err := db.Exec(&query.Query{
			Kind: query.Aggregate, Table: "sales",
			Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
		})
		if err != nil {
			t.Fatalf("%s: %v", l.name, err)
		}
		if res.Rows[0][0].Double() != wantSum || res.Rows[0][1].Int() != 200 {
			t.Errorf("%s: sum=%v count=%v", l.name, res.Rows[0][0], res.Rows[0][1])
		}
		if got := db.Catalog().Table("sales").Store; l.spec == nil && got != l.store {
			t.Errorf("%s: catalog store = %v", l.name, got)
		}
	}
}

func TestCollectStats(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 500)
	st, err := db.CollectStats("sales")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows != 500 {
		t.Errorf("rows = %d", st.NumRows)
	}
	if st.Distinct(1) != 4 {
		t.Errorf("distinct regions = %d", st.Distinct(1))
	}
	if db.Catalog().Table("sales").Stats != st {
		t.Error("stats not stored in catalog")
	}
	if _, err := db.CollectStats("ghost"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestCreateIndex(t *testing.T) {
	db := newDB(t, catalog.RowStore, 100)
	if err := db.CreateIndex("sales", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("sales", 1); err != nil {
		t.Fatal(err) // idempotent
	}
	e := db.Catalog().Table("sales")
	if !e.HasIndex(1) {
		t.Error("index not recorded")
	}
	if err := db.CreateIndex("sales", 99); err == nil {
		t.Error("bad index column accepted")
	}
	if err := db.CreateIndex("ghost", 0); err == nil {
		t.Error("unknown table accepted")
	}
	// Index survives a layout change.
	if err := db.SetLayout("sales", catalog.Partitioned, horizontalSpec()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(&query.Query{
		Kind: query.Select, Table: "sales",
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)},
	})
	if err != nil || len(res.Rows) != 25 {
		t.Fatalf("indexed select after layout change: %d, %v", len(res.Rows), err)
	}
}

type captureObserver struct {
	queries []*query.Query
	total   time.Duration
}

func (c *captureObserver) Observe(q *query.Query, d time.Duration) {
	c.queries = append(c.queries, q)
	c.total += d
}

func TestObserverInvoked(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	obs := &captureObserver{}
	db.SetObserver(obs)
	if _, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
	}); err != nil {
		t.Fatal(err)
	}
	if len(obs.queries) != 2 {
		t.Errorf("observer saw %d queries", len(obs.queries))
	}
	db.SetObserver(nil)
	if _, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales"}); err != nil {
		t.Fatal(err)
	}
	if len(obs.queries) != 2 {
		t.Error("detached observer still invoked")
	}
}

func TestResultDurationPositive(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 1000)
	res, err := db.Exec(&query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Errorf("duration = %v", res.Duration)
	}
}

func TestMemoryBytes(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 100)
	n, err := db.MemoryBytes("sales")
	if err != nil || n <= 0 {
		t.Errorf("MemoryBytes = %d, %v", n, err)
	}
	if _, err := db.MemoryBytes("ghost"); err == nil {
		t.Error("unknown table accepted")
	}
}

// Randomized equivalence across all five layouts: the same query stream
// must produce identical aggregates regardless of the physical layout.
func TestLayoutEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	specs := []*catalog.PartitionSpec{nil, nil, horizontalSpec(), verticalSpec(), {
		Horizontal: horizontalSpec().Horizontal,
		Vertical:   verticalSpec().Vertical,
	}}
	stores := []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore, catalog.Partitioned, catalog.Partitioned, catalog.Partitioned}
	dbs := make([]*Database, len(specs))
	for i := range specs {
		db := New()
		if err := db.CreateTableWithLayout(salesSchema(), stores[i], specs[i]); err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	exec := func(q *query.Query) []*Result {
		out := make([]*Result, len(dbs))
		for i, db := range dbs {
			res, err := db.Exec(q)
			if err != nil {
				t.Fatalf("layout %d: %v", i, err)
			}
			out[i] = res
		}
		return out
	}
	nextID := int64(0)
	for step := 0; step < 120; step++ {
		switch rng.Intn(4) {
		case 0: // insert a batch
			var rows [][]value.Value
			for j := 0; j < 5; j++ {
				rows = append(rows, salesRow(nextID))
				nextID++
			}
			exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows})
		case 1: // update by id
			if nextID == 0 {
				continue
			}
			exec(&query.Query{
				Kind: query.Update, Table: "sales",
				Set:  map[int]value.Value{2: value.NewDouble(float64(rng.Intn(500)))},
				Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(rng.Int63n(nextID))},
			})
		case 2: // delete occasionally
			if step%20 != 2 || nextID == 0 {
				continue
			}
			exec(&query.Query{
				Kind: query.Delete, Table: "sales",
				Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(rng.Int63n(nextID))},
			})
		case 3: // check aggregate equivalence
			results := exec(&query.Query{
				Kind: query.Aggregate, Table: "sales",
				Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
			})
			base := results[0].Rows[0]
			for i, r := range results[1:] {
				if len(r.Rows) != 1 {
					t.Fatalf("step %d layout %d: %d rows", step, i+1, len(r.Rows))
				}
				if base[1].Int() != r.Rows[0][1].Int() {
					t.Fatalf("step %d layout %d: count %v != %v", step, i+1, r.Rows[0][1], base[1])
				}
				if base[0].IsNull() != r.Rows[0][0].IsNull() {
					t.Fatalf("step %d layout %d: null mismatch", step, i+1)
				}
				if !base[0].IsNull() && base[0].Double() != r.Rows[0][0].Double() {
					t.Fatalf("step %d layout %d: sum %v != %v", step, i+1, r.Rows[0][0], base[0])
				}
			}
		}
	}
}
