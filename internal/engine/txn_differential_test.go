package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// diffLayouts enumerates the four layouts the differential wall runs
// against: plain row, plain column, horizontal-only partitioning and
// vertical-only partitioning.
func diffLayouts() []struct {
	name  string
	store catalog.StoreKind
	spec  *catalog.PartitionSpec
} {
	return []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"horizontal", catalog.Partitioned, &catalog.PartitionSpec{
			Horizontal: &catalog.HorizontalSpec{
				SplitCol: 1, SplitVal: value.NewInt(2),
				HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
			},
		}},
		{"vertical", catalog.Partitioned, &catalog.PartitionSpec{
			Vertical: &catalog.VerticalSpec{RowCols: []int{0, 1, 4}, ColCols: []int{0, 2, 3}},
		}},
	}
}

func acctRow(id int64, bal int64) []value.Value {
	return []value.Value{
		value.NewBigint(id),
		value.NewInt(id % 4),
		value.NewDouble(float64(id)),
		value.NewInt(bal),
		value.NewVarchar(fmt.Sprintf("A%d", id%3)),
	}
}

// commitImage is one committed transfer: the commit timestamp and the
// full row images (id -> new balance) it wrote. Replaying images in
// commit-timestamp order is the serial oracle: under snapshot isolation
// with first-updater-wins, every write a transaction commits was derived
// from the latest committed version of that same row, so the serial
// replay must land on the identical final state.
type commitImage struct {
	ts   uint64
	rows map[int64]int64
}

// TestTxnDifferentialWall runs concurrent transactional transfer
// histories against a serial oracle across all four layouts, with an
// analytical reader asserting snapshot-consistent sums and a migration
// churn goroutine flipping the layout underneath open transactions.
func TestTxnDifferentialWall(t *testing.T) {
	const (
		accounts   = 32
		startBal   = 100
		workers    = 4
		txnsPer    = 30
		maxRetries = 500
	)
	for _, lay := range diffLayouts() {
		t.Run(lay.name, func(t *testing.T) {
			db := New()
			if err := db.CreateTableWithLayout(salesSchema(), lay.store, lay.spec); err != nil {
				t.Fatal(err)
			}
			rows := make([][]value.Value, 0, accounts)
			for i := int64(0); i < accounts; i++ {
				rows = append(rows, acctRow(i, startBal))
			}
			mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})

			var (
				logMu  sync.Mutex
				images []commitImage
			)
			ctx := context.Background()
			readBal := func(tx *Txn, id int64) (int64, error) {
				res, err := tx.Exec(&query.Query{Kind: query.Select, Table: "sales", Pred: idEq(id)})
				if err != nil {
					return 0, err
				}
				if len(res.Rows) != 1 {
					return 0, fmt.Errorf("account %d: %d rows", id, len(res.Rows))
				}
				return res.Rows[0][3].Int(), nil
			}

			var wg sync.WaitGroup
			errCh := make(chan error, workers+2)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < txnsPer; i++ {
						committed := false
						for attempt := 0; attempt < maxRetries && !committed; attempt++ {
							a := rng.Int63n(accounts)
							b := rng.Int63n(accounts)
							if a == b {
								continue
							}
							delta := 1 + rng.Int63n(5)
							tx, err := db.Begin(ctx)
							if err != nil {
								errCh <- err
								return
							}
							balA, err := readBal(tx, a)
							if err == nil {
								_, err = tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
									Pred: idEq(a), Set: map[int]value.Value{3: value.NewInt(balA - delta)}})
							}
							var balB int64
							if err == nil {
								balB, err = readBal(tx, b)
							}
							if err == nil {
								_, err = tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
									Pred: idEq(b), Set: map[int]value.Value{3: value.NewInt(balB + delta)}})
							}
							if err == nil {
								err = tx.Commit(ctx)
							}
							if err != nil {
								tx.Rollback()
								if IsConflict(err) {
									continue // first-updater-wins: lost the race, retry whole txn
								}
								errCh <- err
								return
							}
							logMu.Lock()
							images = append(images, commitImage{ts: tx.CommitTS(),
								rows: map[int64]int64{a: balA - delta, b: balB + delta}})
							logMu.Unlock()
							committed = true
						}
						if !committed {
							errCh <- fmt.Errorf("worker %d: txn %d never committed in %d attempts", seed, i, maxRetries)
							return
						}
					}
				}(int64(w))
			}

			// Analytical reader: every transfer preserves the total, so any
			// snapshot-consistent SUM sees exactly accounts*startBal. A scan
			// mixing pre- and post-commit versions of one transfer would not.
			done := make(chan struct{})
			var auxWg sync.WaitGroup
			auxWg.Add(1)
			go func() {
				defer auxWg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					res, err := db.Exec(&query.Query{Kind: query.Aggregate, Table: "sales",
						Aggs: []agg.Spec{{Func: agg.Sum, Col: 3}}})
					if err != nil {
						errCh <- err
						return
					}
					if got := res.Rows[0][0].Float(); got != accounts*startBal {
						errCh <- fmt.Errorf("scan saw a torn snapshot: SUM(bal) = %v", got)
						return
					}
				}
			}()

			// Migration churn: flip the layout underneath the open
			// transactions; the overlay rides on the table runtime, so a
			// cutover must not disturb in-flight snapshots or claims.
			auxWg.Add(1)
			go func() {
				defer auxWg.Done()
				flips := []struct {
					store catalog.StoreKind
					spec  *catalog.PartitionSpec
				}{
					{catalog.ColumnStore, nil},
					{lay.store, lay.spec},
					{catalog.RowStore, nil},
					{lay.store, lay.spec},
				}
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					f := flips[i%len(flips)]
					if err := db.MigrateLayout("sales", f.store, f.spec); err != nil {
						errCh <- fmt.Errorf("migration churn: %w", err)
						return
					}
				}
			}()

			wg.Wait()
			close(done)
			auxWg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			db.Vacuum()

			// Serial oracle: replay the committed images in commit order.
			sort.Slice(images, func(i, j int) bool { return images[i].ts < images[j].ts })
			oracle := map[int64]int64{}
			for i := int64(0); i < accounts; i++ {
				oracle[i] = startBal
			}
			var lastTS uint64
			for _, im := range images {
				if im.ts == lastTS {
					t.Fatalf("two commits share timestamp %d", im.ts)
				}
				lastTS = im.ts
				for id, bal := range im.rows {
					oracle[id] = bal
				}
			}
			if len(images) != workers*txnsPer {
				t.Fatalf("logged %d commits, want %d", len(images), workers*txnsPer)
			}

			res := mustExec(t, db, &query.Query{Kind: query.Select, Table: "sales"})
			if len(res.Rows) != accounts {
				t.Fatalf("final state has %d rows, want %d", len(res.Rows), accounts)
			}
			var total int64
			for _, row := range res.Rows {
				id, bal := row[0].Int(), row[3].Int()
				if bal != oracle[id] {
					t.Errorf("account %d: final balance %d, oracle %d", id, bal, oracle[id])
				}
				total += bal
			}
			if total != accounts*startBal {
				t.Fatalf("final total %d, want %d", total, accounts*startBal)
			}
		})
	}
}
