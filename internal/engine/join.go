package engine

import (
	"context"
	"fmt"

	"hybridstore/internal/agg"
	"hybridstore/internal/colstore"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/trace"
	"hybridstore/internal/value"
)

// execJoinPlan executes a planned equi-join (Select or Aggregate with a
// Join clause) as a hash join. The plan contributes the structural
// decisions — which side builds the hash table and whether single-side
// conjuncts are pushed below the join — while the concrete predicate
// fragments are re-derived from the bound query (the classification is
// structural, so a cached generic plan and the bound statement always
// agree). Column references in the query use combined indexing: left
// columns first, then right columns.
func (db *Database) execJoinPlan(ctx context.Context, q *query.Query, p *plan.Plan, sh *readShape, snap stmtSnap) (*Result, error) {
	left, err := db.runtime(q.Table)
	if err != nil {
		return nil, err
	}
	right, err := db.runtime(q.Join.Table)
	if err != nil {
		return nil, err
	}
	nL := left.entry.Schema.NumColumns()
	nR := right.entry.Schema.NumColumns()
	if q.Join.LeftCol < 0 || q.Join.LeftCol >= nL || q.Join.RightCol < 0 || q.Join.RightCol >= nR {
		return nil, fmt.Errorf("engine: join columns out of range")
	}
	stop := stopFunc(ctx)
	ex := db.execCtx(ctx)

	// Planner decision: predicate pushdown below the join.
	var leftPred, rightPred, postPred expr.Predicate
	if p.Pushdown {
		leftPred, rightPred, postPred = plan.SplitJoinPred(q.Pred, nL, nR)
	} else {
		postPred = q.Pred
	}

	// Columns each side must materialize.
	needL, needR := plan.JoinNeededCols(q, nL, nR)

	// Planner decision: the smaller estimated (post-pushdown) input
	// builds the hash table.
	buildLeft := p.BuildLeft

	// Snapshot views: a side whose version overlay contributes rows at
	// the statement's snapshot scans through the merged serial path; a
	// nil view keeps that side's vectorized fast paths.
	ls := joinSide{rt: left, view: db.tableView(left, snap.ts, snap.tx),
		pred: leftPred, need: needL, joinCol: q.Join.LeftCol, width: nL, offset: 0}
	rs := joinSide{rt: right, view: db.tableView(right, snap.ts, snap.tx),
		pred: rightPred, need: needR, joinCol: q.Join.RightCol, width: nR, offset: nL}
	build, probe := rs, ls
	if buildLeft {
		build, probe = ls, rs
	}

	tr := trace.FromContext(ctx)
	var bsp *trace.Span
	if tr != nil {
		bsp = tr.Start(nodeSpanName(sh.join.Build))
	}

	// Build phase: materialize the needed columns of matching build rows.
	// A column-store build side feeds the hash table through the
	// vectorized batch scan — columns arrive column-at-a-time without the
	// full-width scratch copy per row.
	hash := make(map[uint64][]*buildRow)
	buildNeed := append(append([]int{}, build.need...), build.joinCol)
	if bs, ok := build.rt.store.(execBatchScanner); ok && build.view == nil && ex.Parallel(bs.NumBlocks()) {
		// Parallel build: blocks materialize their rows concurrently;
		// the hash inserts run serially afterwards in block order, so
		// bucket chains match the serial build exactly.
		keyIdx := len(buildNeed) - 1 // joinCol is last in buildNeed
		perBlock := make([][]*buildRow, bs.NumBlocks())
		bs.ScanBatchesExec(build.pred, buildNeed, ex, func(w, block int, rids []int32, colVals [][]value.Value) bool {
			rows := make([]*buildRow, 0, len(rids))
			for k := range rids {
				key := colVals[keyIdx][k]
				if key.IsNull() {
					continue
				}
				vals := make([]value.Value, build.width)
				for j, c := range buildNeed {
					vals[c] = colVals[j][k]
				}
				rows = append(rows, &buildRow{key: key, vals: vals})
			}
			perBlock[block] = rows
			return true
		})
		for _, rows := range perBlock {
			for _, br := range rows {
				h := br.key.Hash()
				hash[h] = append(hash[h], br)
			}
		}
	} else if bs, ok := build.rt.store.(batchScanner); ok && build.view == nil {
		keyIdx := len(buildNeed) - 1 // joinCol is last in buildNeed
		bs.ScanBatches(build.pred, buildNeed, func(rids []int32, colVals [][]value.Value) bool {
			if stop != nil && stop() {
				return false
			}
			for k := range rids {
				key := colVals[keyIdx][k]
				if key.IsNull() {
					continue
				}
				vals := make([]value.Value, build.width)
				for j, c := range buildNeed {
					vals[c] = colVals[j][k]
				}
				h := key.Hash()
				hash[h] = append(hash[h], &buildRow{key: key, vals: vals})
			}
			return true
		})
	} else {
		buildVisited := 0
		mergedScan(build.rt, build.view, build.pred, buildNeed, func(row []value.Value) bool {
			if stop != nil {
				buildVisited++
				if buildVisited%scanCancelBatch == 0 && stop() {
					return false
				}
			}
			k := row[build.joinCol]
			if k.IsNull() {
				return true
			}
			vals := make([]value.Value, build.width)
			for _, c := range buildNeed {
				vals[c] = row[c]
			}
			h := k.Hash()
			hash[h] = append(hash[h], &buildRow{key: k, vals: vals})
			return true
		})
	}

	if bsp != nil {
		var nb int64
		for _, rows := range hash {
			nb += int64(len(rows))
		}
		bsp.AddRowsOut(nb)
		bsp.End()
	}
	var psp *trace.Span
	if tr != nil {
		psp = tr.Start(nodeSpanName(sh.join.Probe))
	}

	// Probe phase.
	combined := make([]value.Value, nL+nR)
	var res *Result
	var aggRes *agg.Result
	if q.Kind == query.Aggregate {
		aggRes = agg.NewResult(q.Aggs, q.GroupBy)
		// Combined-row indexing: left column types first, then right.
		aggRes.SetOutputTypes(append(left.entry.Schema.ColTypes(), right.entry.Schema.ColTypes()...))
	} else {
		res = &Result{}
	}
	groupKey := make([]value.Value, len(q.GroupBy))
	outCols := q.Cols
	if q.Kind == query.Select && outCols == nil {
		outCols = allCols(nL + nR)
	}

	// Columnar probe fast path: when the probe side is an unpartitioned
	// column-store table and the aggregate's grouping lives entirely on
	// the build side (the star-query shape), the join is probed by
	// dictionary code — the build side is resolved once per distinct key
	// and group buckets once per build row, so the per-row work is a code
	// extraction plus accumulator updates. This is the dictionary-join
	// advantage real columnar engines have over value-at-a-time probing.
	ordered := len(q.OrderBy) > 0
	var keys [][]value.Value
	var acc *topKAcc
	var seq int64
	if sh.topk != nil {
		acc = newTopK(q.Limit, q.OrderBy)
	}
	if cs, ok := probe.rt.store.(*colStorage); ok && probe.view == nil &&
		q.Kind == query.Aggregate && postPred == nil &&
		groupsOnSide(q.GroupBy, build.offset, build.width) {
		probeJoinColumnar(cs.t, q, &probe, &build, hash, aggRes, ex)
	} else if bs, ok := probe.rt.store.(execBatchScanner); ok && probe.view == nil &&
		q.Kind == query.Aggregate && ex.Parallel(bs.NumBlocks()) {
		probeJoinParallel(bs, q, &probe, &build, buildNeed, hash, aggRes, postPred, nL+nR, ex)
	} else {
		limitHit := false
		probeVisited := 0
		probeNeed := append(append([]int{}, probe.need...), probe.joinCol)
		mergedScan(probe.rt, probe.view, probe.pred, probeNeed, func(row []value.Value) bool {
			if stop != nil {
				probeVisited++
				if probeVisited%scanCancelBatch == 0 && stop() {
					return false
				}
			}
			k := row[probe.joinCol]
			if k.IsNull() {
				return true
			}
			matches := hash[k.Hash()]
			if len(matches) == 0 {
				return true
			}
			// Fill the probe side of the combined row once.
			for _, c := range probeNeed {
				combined[probe.offset+c] = row[c]
			}
			for _, m := range matches {
				if !value.Equal(m.key, k) {
					continue // hash collision
				}
				for _, c := range buildNeed {
					combined[build.offset+c] = m.vals[c]
				}
				if postPred != nil && !postPred.Matches(combined) {
					continue
				}
				if q.Kind == query.Aggregate {
					var g *agg.Group
					if len(q.GroupBy) > 0 {
						for i, c := range q.GroupBy {
							groupKey[i] = combined[c]
						}
						g = aggRes.GroupFor(groupKey)
					} else {
						g = aggRes.Global()
					}
					for i, s := range q.Aggs {
						if s.Col < 0 {
							g.Accs[i].AddCount(1)
						} else {
							g.Accs[i].Add(combined[s.Col])
						}
					}
				} else {
					out := make([]value.Value, len(outCols))
					for i, c := range outCols {
						out[i] = combined[c]
					}
					if acc != nil {
						// Planned single-pass top-K over the probe
						// output: arrival order is the serial probe
						// emission order, matching stable sort+limit.
						key := make([]value.Value, len(q.OrderBy))
						for i, o := range q.OrderBy {
							key[i] = combined[o.Col]
						}
						acc.Add(out, key, seq)
						seq++
						continue
					}
					res.Rows = append(res.Rows, out)
					if ordered {
						key := make([]value.Value, len(q.OrderBy))
						for i, o := range q.OrderBy {
							key[i] = combined[o.Col]
						}
						keys = append(keys, key)
						continue
					}
					if q.Limit > 0 && len(res.Rows) >= q.Limit {
						limitHit = true
						return false
					}
				}
			}
			return !limitHit
		})
	}

	if err := ctx.Err(); err != nil {
		psp.End()
		return nil, err
	}
	if acc != nil {
		res.Rows = acc.Finish()
	}
	if psp != nil {
		if q.Kind != query.Aggregate { // grouped rows are assembled below
			psp.AddRowsOut(int64(len(res.Rows)))
		}
		psp.End()
	}

	// Assemble the result.
	names := func(c int) string {
		if c < nL {
			return q.Table + "." + left.entry.Schema.Columns[c].Name
		}
		return q.Join.Table + "." + right.entry.Schema.Columns[c-nL].Name
	}
	if q.Kind == query.Aggregate {
		res = &Result{Rows: aggRes.Rows()}
		for _, g := range q.GroupBy {
			res.Cols = append(res.Cols, names(g))
		}
		for _, s := range q.Aggs {
			if s.Col < 0 {
				res.Cols = append(res.Cols, "COUNT(*)")
			} else {
				res.Cols = append(res.Cols, fmt.Sprintf("%s(%s)", s.Func, names(s.Col)))
			}
		}
	} else {
		for _, c := range outCols {
			res.Cols = append(res.Cols, names(c))
		}
	}
	if q.Kind == query.Aggregate {
		if err := sortAggRows(res.Rows, q); err != nil {
			return nil, err
		}
	} else if ordered && acc == nil {
		sortRowsByKeys(res.Rows, keys, q.OrderBy)
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// joinSide describes one input of a hash join.
type joinSide struct {
	rt      *tableRuntime
	view    *overlayView // statement's MVCC view (nil: base is current)
	pred    expr.Predicate
	need    []int
	joinCol int
	width   int
	offset  int // offset of this side's columns in the combined row
}

// buildRow is one materialized row of the hash join's build side.
type buildRow struct {
	key  value.Value
	vals []value.Value // full side width (needed cols filled)
}

// groupsOnSide reports whether every group-by column (combined indexing)
// falls within [offset, offset+width).
func groupsOnSide(groupBy []int, offset, width int) bool {
	for _, c := range groupBy {
		if c < offset || c >= offset+width {
			return false
		}
	}
	return true
}

// probeJoinColumnar probes the hash join by dictionary code: the build
// side is resolved once per distinct probe-key code and group buckets once
// per build row, so the per-probe-row work reduces to a code extraction,
// an array lookup and accumulator updates. Under a parallel execution
// context each probe worker keeps a private code→matches cache, group
// cache and partial result (re-resolving a code on two workers is cheap
// and race-free); the partials merge into aggRes in worker order.
func probeJoinColumnar(t *colstore.Table, q *query.Query, probe, build *joinSide, hash map[uint64][]*buildRow, aggRes *agg.Result, ex *exec.Ctx) {
	keyVals := t.KeyDictValues(probe.joinCol)

	// Map each aggregate to its source: COUNT(*), a probe-side column
	// (decoded into extraVals), or a build-side column.
	type aggSrc struct {
		countStar  bool
		probeExtra int // index into extraVals, -1 if build-side
		buildCol   int // side-local build column, -1 if probe-side
	}
	srcs := make([]aggSrc, len(q.Aggs))
	var extra []int
	extraIdx := map[int]int{}
	for i, sp := range q.Aggs {
		switch {
		case sp.Col < 0:
			srcs[i] = aggSrc{countStar: true, probeExtra: -1, buildCol: -1}
		case sp.Col >= probe.offset && sp.Col < probe.offset+probe.width:
			local := sp.Col - probe.offset
			idx, ok := extraIdx[local]
			if !ok {
				idx = len(extra)
				extraIdx[local] = idx
				extra = append(extra, local)
			}
			srcs[i] = aggSrc{probeExtra: idx, buildCol: -1}
		default:
			srcs[i] = aggSrc{probeExtra: -1, buildCol: sp.Col - build.offset}
		}
	}

	type pjState struct {
		res      *agg.Result
		matches  [][]*buildRow
		resolved []bool
		groups   map[*buildRow]*agg.Group
		groupKey []value.Value
	}
	states := make([]*pjState, ex.Workers(t.NumBlocks()))

	t.JoinProbeExec(probe.joinCol, extra, probe.pred, ex, func(w int, code int64, extraVals []value.Value) bool {
		st := states[w]
		if st == nil {
			st = &pjState{
				res:      agg.NewResult(q.Aggs, q.GroupBy),
				matches:  make([][]*buildRow, len(keyVals)),
				resolved: make([]bool, len(keyVals)),
				groupKey: make([]value.Value, len(q.GroupBy)),
			}
			if len(q.GroupBy) > 0 {
				st.groups = make(map[*buildRow]*agg.Group)
			}
			states[w] = st
		}
		if code < 0 {
			return true // NULL join keys never match
		}
		if !st.resolved[code] {
			st.resolved[code] = true
			k := keyVals[code]
			for _, m := range hash[k.Hash()] {
				if value.Equal(m.key, k) {
					st.matches[code] = append(st.matches[code], m)
				}
			}
		}
		ms := st.matches[code]
		if len(ms) == 0 {
			return true
		}
		for _, m := range ms {
			var g *agg.Group
			if len(q.GroupBy) == 0 {
				g = st.res.Global()
			} else if cached, ok := st.groups[m]; ok {
				g = cached
			} else {
				for i, c := range q.GroupBy {
					st.groupKey[i] = m.vals[c-build.offset]
				}
				g = st.res.GroupFor(st.groupKey)
				st.groups[m] = g
			}
			for i := range q.Aggs {
				switch {
				case srcs[i].countStar:
					g.Accs[i].AddCount(1)
				case srcs[i].probeExtra >= 0:
					g.Accs[i].Add(extraVals[srcs[i].probeExtra])
				default:
					g.Accs[i].Add(m.vals[srcs[i].buildCol])
				}
			}
		}
		return true
	})
	if ex.Stopped() {
		return // caller surfaces ctx.Err(); partials are discarded
	}
	for _, st := range states {
		if st != nil {
			aggRes.Merge(st.res)
		}
	}
}

// probeJoinParallel is the generic aggregate probe fanned out across
// morsel workers: each worker materializes probe batches, walks the
// shared (read-only) hash table and accumulates into a private partial
// result; the partials merge in worker order after the scan. Select
// joins stay serial — their limit/order semantics want the serial row
// order — and stopped contexts leave aggRes untouched.
func probeJoinParallel(bs execBatchScanner, q *query.Query, probe, build *joinSide, buildNeed []int, hash map[uint64][]*buildRow, aggRes *agg.Result, postPred expr.Predicate, combinedWidth int, ex *exec.Ctx) {
	probeNeed := append(append([]int{}, probe.need...), probe.joinCol)
	keyIdx := len(probeNeed) - 1
	type gpState struct {
		res      *agg.Result
		combined []value.Value
		groupKey []value.Value
	}
	states := make([]*gpState, ex.Workers(bs.NumBlocks()))
	bs.ScanBatchesExec(probe.pred, probeNeed, ex, func(w, block int, rids []int32, colVals [][]value.Value) bool {
		st := states[w]
		if st == nil {
			st = &gpState{
				res:      agg.NewResult(q.Aggs, q.GroupBy),
				combined: make([]value.Value, combinedWidth),
				groupKey: make([]value.Value, len(q.GroupBy)),
			}
			states[w] = st
		}
		for k := range rids {
			kv := colVals[keyIdx][k]
			if kv.IsNull() {
				continue
			}
			matches := hash[kv.Hash()]
			if len(matches) == 0 {
				continue
			}
			for j, c := range probeNeed {
				st.combined[probe.offset+c] = colVals[j][k]
			}
			for _, m := range matches {
				if !value.Equal(m.key, kv) {
					continue // hash collision
				}
				for _, c := range buildNeed {
					st.combined[build.offset+c] = m.vals[c]
				}
				if postPred != nil && !postPred.Matches(st.combined) {
					continue
				}
				var g *agg.Group
				if len(q.GroupBy) > 0 {
					for i, c := range q.GroupBy {
						st.groupKey[i] = st.combined[c]
					}
					g = st.res.GroupFor(st.groupKey)
				} else {
					g = st.res.Global()
				}
				for i, s := range q.Aggs {
					if s.Col < 0 {
						g.Accs[i].AddCount(1)
					} else {
						g.Accs[i].Add(st.combined[s.Col])
					}
				}
			}
		}
		return true
	})
	if ex.Stopped() {
		return
	}
	for _, st := range states {
		if st != nil {
			aggRes.Merge(st.res)
		}
	}
}
