package engine

import (
	"context"
	"sort"
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/trace"
	"hybridstore/internal/value"
)

// The trace-overhead guard enforces the observability budget: with
// tracing disabled (no trace in the context, slow-query log disarmed)
// the hot scan path must not pay for the instrumentation. Since the
// un-instrumented binary no longer exists to compare against, the guard
// measures the other direction: a fully-traced run may cost at most 2%
// more than an untraced one. The disabled path does a strict subset of
// the traced path's instrumentation work (nil-receiver no-ops instead
// of span bookkeeping), so its overhead is bounded by what this guard
// measures.
//
// Same budget discipline as internal/monitor's observer benchmarks:
//
//	go test ./internal/engine -bench TraceOverhead -benchtime 2s

func overheadDB(tb testing.TB, rows int) *Database {
	tb.Helper()
	db := New()
	db.SetPool(nil) // serial: measurement variance, not parallelism, is the enemy here
	if err := db.CreateTable(salesSchema(), catalog.ColumnStore); err != nil {
		tb.Fatal(err)
	}
	ins := make([][]value.Value, 0, rows)
	for i := 0; i < rows; i++ {
		ins = append(ins, salesRow(int64(i)))
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: ins}); err != nil {
		tb.Fatal(err)
	}
	if err := db.Compact("sales"); err != nil {
		tb.Fatal(err)
	}
	return db
}

// overheadQuery is a selective aggregate over the compressed main
// fragment — the hot analytical path the tracing hooks sit on.
func overheadQuery() *query.Query {
	return &query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
		Pred: &expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(2)},
	}
}

func medianScanNS(tb testing.TB, db *Database, ctx context.Context, reps int) float64 {
	tb.Helper()
	q := overheadQuery()
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := db.ExecContext(ctx, q); err != nil {
			tb.Fatal(err)
		}
		times = append(times, float64(time.Since(start).Nanoseconds()))
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// TestTraceOverheadGuard interleaves untraced and traced runs of the
// same scan and asserts the traced median costs <2% extra — which
// bounds the disabled-path overhead from above (see file comment). A
// noisy scheduler gets three attempts before the guard fails.
func TestTraceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	db := overheadDB(t, 100000)
	plain := context.Background()
	const reps = 21

	// Warm up both paths (allocator, caches, lazily-built scan state).
	medianScanNS(t, db, plain, 3)
	medianScanNS(t, db, trace.WithTrace(plain, trace.New()), 3)

	var worst float64
	for attempt := 0; attempt < 3; attempt++ {
		bare := medianScanNS(t, db, plain, reps)
		traced := medianScanNS(t, db, trace.WithTrace(plain, trace.New()), reps)
		overhead := (traced - bare) / bare
		t.Logf("attempt %d: untraced median %.0fns, traced median %.0fns, overhead %.2f%%",
			attempt, bare, traced, overhead*100)
		if overhead < 0.02 {
			return
		}
		if overhead > worst {
			worst = overhead
		}
	}
	t.Errorf("tracing overhead %.2f%% exceeds the 2%% budget in all attempts", worst*100)
}

func BenchmarkTraceOverheadDisabled(b *testing.B) {
	db := overheadDB(b, 100000)
	q := overheadQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceOverheadEnabled(b *testing.B) {
	db := overheadDB(b, 100000)
	q := overheadQuery()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecContext(trace.WithTrace(ctx, trace.New()), q); err != nil {
			b.Fatal(err)
		}
	}
}
