package engine

import (
	"fmt"
	"sort"

	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// scanCancelBatch is how many callback rows a context-aware scan
// processes between cancellation polls — the engine-side batch boundary
// (the column store streams blocks of the same size underneath).
const scanCancelBatch = 1024

// orderCols extracts the column indexes of an ORDER BY clause.
func orderCols(order []query.Order) []int {
	cols := make([]int, len(order))
	for i, o := range order {
		cols[i] = o.Col
	}
	return cols
}

// unionCols returns cols plus any extras not already present, preserving
// cols' order (projection positions must not move). The result is a
// fresh slice.
func unionCols(cols, extras []int) []int {
	out := append(make([]int, 0, len(cols)+len(extras)), cols...)
	for _, e := range extras {
		found := false
		for _, c := range out {
			if c == e {
				found = true
				break
			}
		}
		if !found {
			out = append(out, e)
		}
	}
	return out
}

// compareKeys orders two extracted key tuples under the ORDER BY
// directions. NULLs sort first ascending (value.Compare's order).
func compareKeys(a, b []value.Value, order []query.Order) int {
	for i, o := range order {
		c := value.Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if o.Desc {
			return -c
		}
		return c
	}
	return 0
}

// sortRowsByKeys stably sorts rows by their parallel key tuples.
func sortRowsByKeys(rows, keys [][]value.Value, order []query.Order) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return compareKeys(keys[idx[i]], keys[idx[j]], order) < 0
	})
	permuted := make([][]value.Value, len(rows))
	for i, j := range idx {
		permuted[i] = rows[j]
	}
	copy(rows, permuted)
}

// sortAggRows sorts an aggregate result's rows by its ORDER BY keys,
// which must be group-by columns (result rows lead with the group key in
// q.GroupBy order).
func sortAggRows(rows [][]value.Value, q *query.Query) error {
	if len(q.OrderBy) == 0 {
		return nil
	}
	pos := make([]int, len(q.OrderBy))
	for i, o := range q.OrderBy {
		pos[i] = -1
		for gi, g := range q.GroupBy {
			if g == o.Col {
				pos[i] = gi
				break
			}
		}
		if pos[i] < 0 {
			return fmt.Errorf("engine: ORDER BY column %d of an aggregate must be grouped", o.Col)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, p := range pos {
			c := value.Compare(rows[i][p], rows[j][p])
			if c == 0 {
				continue
			}
			if q.OrderBy[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
