package engine

import (
	"context"
	"sync/atomic"
)

// scanStartedHook, when installed, is invoked at the start of every read
// statement (before any engine lock is taken). See SetScanStartedHook.
var scanStartedHook atomic.Pointer[func(ctx context.Context, table string)]

// SetScanStartedHook installs a process-wide test/bench hook invoked
// when a read statement is about to execute, with the statement's
// context and target table. It runs before the engine takes any lock,
// so the hook may block (e.g. until the context is cancelled) without
// stalling other statements. Cancellation probes use it to synchronize
// on "the scan is in flight" instead of sizing scans by wall clock,
// which made them timing-sensitive on single-CPU machines. Pass nil to
// clear. Not for production use.
func SetScanStartedHook(fn func(ctx context.Context, table string)) {
	if fn == nil {
		scanStartedHook.Store(nil)
		return
	}
	scanStartedHook.Store(&fn)
}

// notifyScanStarted invokes the hook, if any.
func notifyScanStarted(ctx context.Context, table string) {
	if h := scanStartedHook.Load(); h != nil {
		(*h)(ctx, table)
	}
}
