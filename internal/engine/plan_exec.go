package engine

import (
	"context"
	"fmt"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/trace"
	"hybridstore/internal/value"
)

// SelectivityHinter is an optional extension of QueryObserver: observers
// that implement it (the workload monitor) feed their observed average
// predicate selectivity per table back to the planner, the cardinality
// fallback for tables whose statistics were never collected.
type SelectivityHinter interface {
	AvgSelectivity(table string) (float64, bool)
}

// planEnvLocked snapshots the planner's inputs. The returned Env's
// closures read runtime state directly, so they are only valid while the
// caller holds db.mu (read or write).
func (db *Database) planEnvLocked() plan.Env {
	env := plan.Env{
		Meta: func(table string) (plan.TableMeta, bool) {
			rt, ok := db.tables[tableKey(table)]
			if !ok {
				return plan.TableMeta{}, false
			}
			// Statistics are published under the catalog's own lock
			// (CollectStats runs concurrent with readers holding only
			// db.mu.RLock), so the entry must be read through the
			// catalog's copying accessor, not rt.entry directly.
			e := db.cat.Table(table)
			if e == nil {
				return plan.TableMeta{}, false
			}
			return plan.TableMeta{
				Schema:   e.Schema,
				Store:    e.Store,
				Rows:     rt.store.Rows(),
				Stats:    e.Stats,
				HasIndex: e.HasIndex,
			}, true
		},
		Model:          db.planModel(),
		CatalogVersion: db.cat.Version(),
	}
	if h, ok := db.obs.(SelectivityHinter); ok {
		env.LiveSelectivity = h.AvgSelectivity
	}
	return env
}

// planModel returns the cost model the planner prices alternatives with:
// an attached calibrated model, or the deterministic default profile.
func (db *Database) planModel() *costmodel.Model {
	if m := db.costModel.Load(); m != nil {
		return m
	}
	return defaultPlanModel()
}

// SetCostModel attaches a calibrated cost model for the planner to use
// (nil reverts to the default analytic profile).
func (db *Database) SetCostModel(m *costmodel.Model) { db.costModel.Store(m) }

// planReadLocked plans one read statement under the held lock, recording
// planning latency.
func (db *Database) planReadLocked(q *query.Query) (*plan.Plan, error) {
	return db.planReadOptsLocked(q, plan.Options{})
}

func (db *Database) planReadOptsLocked(q *query.Query, opts plan.Options) (*plan.Plan, error) {
	start := time.Now()
	p, err := plan.BuildOptions(q, db.planEnvLocked(), opts)
	if err != nil {
		return nil, err
	}
	mPlanningSeconds.Observe(time.Since(start).Nanoseconds())
	return p, nil
}

// PlanQuery plans a read statement against the current catalog state
// without executing it. The plan records the catalog version it was
// built against; ExecPlannedContext replans transparently if the catalog
// has moved by execution time.
func (db *Database) PlanQuery(q *query.Query) (*plan.Plan, error) {
	return db.PlanQueryOptions(q, plan.Options{})
}

// PlanQueryOptions is PlanQuery with forced planner decisions (used by
// EXPLAIN variants and the planner bench's degraded baselines).
func (db *Database) PlanQueryOptions(q *query.Query, opts plan.Options) (*plan.Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Kind != query.Select && q.Kind != query.Aggregate {
		return nil, fmt.Errorf("engine: cannot plan %v statement", q.Kind)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	return db.planReadOptsLocked(q, opts)
}

// ExecPlannedContext executes a read statement through a previously
// built plan (typically the server's plan cache). A stale plan — its
// CatalogVersion no longer matching — is discarded and the statement is
// replanned under the same lock, so results are always correct.
func (db *Database) ExecPlannedContext(ctx context.Context, q *query.Query, p *plan.Plan) (*Result, error) {
	return db.execWithPlan(ctx, q, p)
}

// readShape is the executor's decomposition of a plan tree: the
// decorator chain above the terminal Scan or HashJoin. The engine's
// storage kernels fuse several of these operators (scan+filter,
// scan+aggregate), so execution dispatches on the shape rather than
// interpreting node-by-node.
type readShape struct {
	scan    *plan.Scan
	join    *plan.HashJoin
	filter  *plan.Filter
	agg     *plan.Aggregate
	sort    *plan.Sort
	topk    *plan.TopK
	limit   *plan.Limit
	project *plan.Project
}

// shapeOf walks a plan root down to its terminal node.
func shapeOf(p *plan.Plan) (readShape, error) {
	var sh readShape
	n := p.Root
	for n != nil {
		switch t := n.(type) {
		case *plan.Project:
			sh.project = t
			n = t.Input
		case *plan.TopK:
			sh.topk = t
			n = t.Input
		case *plan.Sort:
			sh.sort = t
			n = t.Input
		case *plan.Limit:
			sh.limit = t
			n = t.Input
		case *plan.Aggregate:
			sh.agg = t
			n = t.Input
		case *plan.Filter:
			sh.filter = t
			n = t.Input
		case *plan.HashJoin:
			sh.join = t
			return sh, nil
		case *plan.Scan:
			sh.scan = t
			return sh, nil
		default:
			return sh, fmt.Errorf("engine: unknown plan node %T", n)
		}
	}
	return sh, fmt.Errorf("engine: plan has no scan node")
}

// nodeSpanName tags a trace span with its plan node ("scan#1"), letting
// EXPLAIN ANALYZE line actuals up against EXPLAIN's estimates. Callers
// only pay the formatting when a trace is armed.
func nodeSpanName(n plan.Node) string { return fmt.Sprintf("%s#%d", n.Kind(), n.ID()) }

// execPlan executes a read statement through its plan. The concrete
// predicates, projections and keys are re-derived from the bound query q
// — plans are generic over parameter values — while the plan contributes
// the structural decisions (build side, pushdown, top-K) and the node
// ids for tracing. snap is the statement's MVCC snapshot; tables whose
// version overlay contributes nothing at it (the common case) run the
// unchanged fast paths. Caller holds db.mu.RLock.
func (db *Database) execPlan(ctx context.Context, q *query.Query, p *plan.Plan, snap stmtSnap) (*Result, error) {
	sh, err := shapeOf(p)
	if err != nil {
		return nil, err
	}
	if sh.join != nil {
		return db.execJoinPlan(ctx, q, p, &sh, snap)
	}
	if q.Kind == query.Aggregate {
		return db.execAggPlan(ctx, q, &sh, snap)
	}
	return db.execScanPlan(ctx, q, &sh, snap)
}

// execScanPlan executes a planned single-table SELECT.
func (db *Database) execScanPlan(ctx context.Context, q *query.Query, sh *readShape, snap stmtSnap) (*Result, error) {
	rt, err := db.runtime(q.Table)
	if err != nil {
		return nil, err
	}
	view := db.tableView(rt, snap.ts, snap.tx)
	sch := rt.entry.Schema
	cols := q.Cols
	if cols == nil {
		cols = allCols(sch.NumColumns())
	}
	res := &Result{Cols: make([]string, len(cols))}
	for i, c := range cols {
		res.Cols[i] = sch.Columns[c].Name
	}
	ordered := len(q.OrderBy) > 0
	scanCols := cols
	if ordered {
		scanCols = unionCols(cols, orderCols(q.OrderBy))
	}
	useTopK := sh.topk != nil

	tr := trace.FromContext(ctx)
	var ssp *trace.Span
	if tr != nil {
		ssp = tr.Start(nodeSpanName(sh.scan))
	}

	// With an ORDER BY the limit cannot short-circuit the scan, and
	// sort keys (which may not be projected) ride along per row.
	var keys [][]value.Value
	// Morsel-parallel collection: when the store exposes a parallel
	// batch scan and the limit cannot short-circuit (no limit, or an
	// ORDER BY that must see every row anyway), blocks are projected
	// concurrently and reassembled in block order — the exact row
	// order of the serial scan. A traced statement takes this path
	// even serially, because only the batch kernels report the
	// storage counters (blocks decoded vs zone-map-skipped,
	// main/delta rows) the trace wants.
	ex := db.execCtx(ctx)
	if bs, ok := rt.store.(execBatchScanner); ok && view == nil &&
		(ex.Parallel(bs.NumBlocks()) || ex.Tracer() != nil) &&
		(q.Limit <= 0 || ordered) {
		pos := make([]int, sch.NumColumns())
		for j, c := range scanCols {
			pos[c] = j
		}
		if useTopK {
			// Planned single-pass top-K: per-worker bounded heaps with
			// block/row arrival sequences, merged after the scan. The
			// retained set is a pure function of the scanned rows, so
			// the result matches the serial stable-sort+limit exactly
			// regardless of worker schedule.
			states := make([]*topKAcc, ex.Workers(bs.NumBlocks()))
			bs.ScanBatchesExec(q.Pred, scanCols, ex, func(w, block int, rids []int32, colVals [][]value.Value) bool {
				st := states[w]
				if st == nil {
					st = newTopK(q.Limit, q.OrderBy)
					states[w] = st
				}
				for k := range rids {
					out := make([]value.Value, len(cols))
					for i, c := range cols {
						out[i] = colVals[pos[c]][k]
					}
					key := make([]value.Value, len(q.OrderBy))
					for i, o := range q.OrderBy {
						key[i] = colVals[pos[o.Col]][k]
					}
					st.Add(out, key, int64(block)<<32|int64(k))
				}
				return true
			})
			if err := ctx.Err(); err != nil {
				ssp.End()
				return nil, err
			}
			acc := newTopK(q.Limit, q.OrderBy)
			for _, st := range states {
				if st != nil {
					acc.Merge(st)
				}
			}
			res.Rows = acc.Finish()
			finishScanSpan(tr, ssp, sh, len(res.Rows))
			res.Affected = len(res.Rows)
			return res, nil
		}
		perBlock := make([][][]value.Value, bs.NumBlocks())
		var perKeys [][][]value.Value
		if ordered {
			perKeys = make([][][]value.Value, bs.NumBlocks())
		}
		bs.ScanBatchesExec(q.Pred, scanCols, ex, func(w, block int, rids []int32, colVals [][]value.Value) bool {
			rows := make([][]value.Value, len(rids))
			for k := range rids {
				out := make([]value.Value, len(cols))
				for i, c := range cols {
					out[i] = colVals[pos[c]][k]
				}
				rows[k] = out
			}
			perBlock[block] = rows
			if ordered {
				bkeys := make([][]value.Value, len(rids))
				for k := range rids {
					key := make([]value.Value, len(q.OrderBy))
					for i, o := range q.OrderBy {
						key[i] = colVals[pos[o.Col]][k]
					}
					bkeys[k] = key
				}
				perKeys[block] = bkeys
			}
			return true
		})
		if err := ctx.Err(); err != nil {
			ssp.End()
			return nil, err
		}
		for b, rows := range perBlock {
			res.Rows = append(res.Rows, rows...)
			if ordered {
				keys = append(keys, perKeys[b]...)
			}
		}
		ssp.AddRowsOut(int64(len(res.Rows)))
		ssp.End()
		if ordered {
			var sosp *trace.Span
			if tr != nil {
				sosp = tr.Start(nodeSpanName(sh.sort))
				sosp.AddRowsIn(int64(len(res.Rows)))
			}
			sortRowsByKeys(res.Rows, keys, q.OrderBy)
			if q.Limit > 0 && len(res.Rows) > q.Limit {
				res.Rows = res.Rows[:q.Limit]
			}
			if sosp != nil {
				sosp.AddRowsOut(int64(len(res.Rows)))
				sosp.End()
			}
		}
		res.Affected = len(res.Rows)
		return res, nil
	}
	stop := stopFunc(ctx)
	visited := 0
	var acc *topKAcc
	if useTopK {
		acc = newTopK(q.Limit, q.OrderBy)
	}
	var seq int64
	mergedScan(rt, view, q.Pred, scanCols, func(row []value.Value) bool {
		if stop != nil {
			visited++
			if visited%scanCancelBatch == 0 && stop() {
				return false
			}
		}
		out := make([]value.Value, len(cols))
		for i, c := range cols {
			out[i] = row[c]
		}
		if useTopK {
			key := make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				key[i] = row[o.Col]
			}
			acc.Add(out, key, seq)
			seq++
			return true
		}
		res.Rows = append(res.Rows, out)
		if ordered {
			key := make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				key[i] = row[o.Col]
			}
			keys = append(keys, key)
			return true
		}
		return q.Limit <= 0 || len(res.Rows) < q.Limit
	})
	if err := ctx.Err(); err != nil {
		ssp.End()
		return nil, err
	}
	if useTopK {
		res.Rows = acc.Finish()
		finishScanSpan(tr, ssp, sh, len(res.Rows))
		res.Affected = len(res.Rows)
		return res, nil
	}
	ssp.AddRowsOut(int64(len(res.Rows)))
	ssp.End()
	if ordered {
		sortRowsByKeys(res.Rows, keys, q.OrderBy)
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// finishScanSpan closes the scan span and records the fused top-K as its
// own span (the heap runs inside the scan loop, so only the output
// cardinality is separately attributable).
func finishScanSpan(tr *trace.Trace, ssp *trace.Span, sh *readShape, rows int) {
	ssp.End()
	if tr != nil && sh.topk != nil {
		tsp := tr.Start(nodeSpanName(sh.topk))
		tsp.AddRowsOut(int64(rows))
		tsp.End()
	}
}

// execAggPlan executes a planned single-table aggregate through the
// storage layer's fused scan+aggregate kernel — or, when the statement's
// snapshot view overlays versioned rows, through a merged row-at-a-time
// accumulation (the kernels only see base storage, which would miss or
// double-count versioned keys).
func (db *Database) execAggPlan(ctx context.Context, q *query.Query, sh *readShape, snap stmtSnap) (*Result, error) {
	rt, err := db.runtime(q.Table)
	if err != nil {
		return nil, err
	}
	sch := rt.entry.Schema
	tr := trace.FromContext(ctx)
	var asp *trace.Span
	if tr != nil && sh.agg != nil {
		asp = tr.Start(nodeSpanName(sh.agg))
	}
	var ar *agg.Result
	if view := db.tableView(rt, snap.ts, snap.tx); view != nil {
		ar = agg.NewResult(q.Aggs, q.GroupBy)
		ar.SetOutputTypes(sch.ColTypes())
		stop := stopFunc(ctx)
		visited := 0
		groupKey := make([]value.Value, len(q.GroupBy))
		mergedScan(rt, view, q.Pred, nil, func(row []value.Value) bool {
			if stop != nil {
				visited++
				if visited%scanCancelBatch == 0 && stop() {
					return false
				}
			}
			var g *agg.Group
			if len(q.GroupBy) > 0 {
				for i, c := range q.GroupBy {
					groupKey[i] = row[c]
				}
				g = ar.GroupFor(groupKey)
			} else {
				g = ar.Global()
			}
			for i, s := range q.Aggs {
				if s.Col < 0 {
					g.Accs[i].AddCount(1)
				} else {
					g.Accs[i].Add(row[s.Col])
				}
			}
			return true
		})
	} else {
		ar = rt.store.Aggregate(q.Aggs, q.GroupBy, q.Pred, db.execCtx(ctx))
	}
	if err := ctx.Err(); err != nil {
		asp.End()
		return nil, err
	}
	res := &Result{Rows: ar.Rows()}
	if asp != nil {
		asp.AddRowsOut(int64(len(res.Rows)))
		asp.End()
	}
	for _, g := range q.GroupBy {
		res.Cols = append(res.Cols, sch.Columns[g].Name)
	}
	for _, s := range q.Aggs {
		res.Cols = append(res.Cols, specName(sch, s))
	}
	if err := sortAggRows(res.Rows, q); err != nil {
		return nil, err
	}
	res.Affected = len(res.Rows)
	return res, nil
}
