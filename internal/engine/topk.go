package engine

import (
	"sort"

	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// topKAcc selects the k smallest rows under the lexicographic order
// (ORDER BY keys, arrival sequence) in one pass with O(k) memory — the
// exact prefix a stable sort followed by LIMIT k would produce, so the
// planned TopK operator is differentially indistinguishable from
// Sort+Limit. It is a bounded binary max-heap ordered by "worseness":
// the root is the worst retained row and is evicted first.
//
// Arrival sequences make the result schedule-independent: the retained
// set is a pure function of the (row, key, seq) multiset, so parallel
// scans can accumulate into per-worker heaps (with seqs derived from
// block/row position) and merge in any order.
type topKAcc struct {
	k     int
	order []query.Order
	rows  [][]value.Value
	keys  [][]value.Value
	seqs  []int64
}

func newTopK(k int, order []query.Order) *topKAcc {
	return &topKAcc{
		k:     k,
		order: order,
		rows:  make([][]value.Value, 0, k),
		keys:  make([][]value.Value, 0, k),
		seqs:  make([]int64, 0, k),
	}
}

// worse reports whether entry i sorts strictly after entry j (and is
// therefore dropped first).
func (t *topKAcc) worse(i, j int) bool {
	if c := compareKeys(t.keys[i], t.keys[j], t.order); c != 0 {
		return c > 0
	}
	return t.seqs[i] > t.seqs[j]
}

// worseThan reports whether entry i sorts strictly after (key, seq).
func (t *topKAcc) worseThan(i int, key []value.Value, seq int64) bool {
	if c := compareKeys(t.keys[i], key, t.order); c != 0 {
		return c > 0
	}
	return t.seqs[i] > seq
}

// Add offers one row. row and key must not be reused by the caller.
func (t *topKAcc) Add(row, key []value.Value, seq int64) {
	if len(t.rows) < t.k {
		t.rows = append(t.rows, row)
		t.keys = append(t.keys, key)
		t.seqs = append(t.seqs, seq)
		t.up(len(t.rows) - 1)
		return
	}
	// Full: keep only if strictly better than the current worst.
	if !t.worseThan(0, key, seq) {
		return
	}
	t.rows[0], t.keys[0], t.seqs[0] = row, key, seq
	t.down(0)
}

func (t *topKAcc) swap(i, j int) {
	t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
	t.keys[i], t.keys[j] = t.keys[j], t.keys[i]
	t.seqs[i], t.seqs[j] = t.seqs[j], t.seqs[i]
}

func (t *topKAcc) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(i, p) {
			break
		}
		t.swap(i, p)
		i = p
	}
}

func (t *topKAcc) down(i int) {
	n := len(t.rows)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.worse(l, worst) {
			worst = l
		}
		if r < n && t.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.swap(i, worst)
		i = worst
	}
}

// Merge folds another accumulator's retained rows into this one.
func (t *topKAcc) Merge(o *topKAcc) {
	for i := range o.rows {
		t.Add(o.rows[i], o.keys[i], o.seqs[i])
	}
}

// Finish returns the retained rows in ascending (key, seq) order. The
// accumulator must not be used afterwards.
func (t *topKAcc) Finish() [][]value.Value {
	idx := make([]int, len(t.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.worse(idx[b], idx[a]) })
	out := make([][]value.Value, len(idx))
	for i, j := range idx {
		out[i] = t.rows[j]
	}
	return out
}
