package engine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// The planner differential wall checks the planned executor against a
// deliberately naive oracle — full scans, predicate evaluation per row,
// nested-loop joins, stable sorts — that shares none of the planner's
// decisions (pushdown, build side, top-K, fused kernels). Every filter,
// join, group-by and order+limit shape must agree on every layout, with
// NULLs, tombstones and a live delta in the data, under both a serial
// and a forced-parallel pool.

// oracleTable materializes every live row of a table through the raw
// storage scan, bypassing the planner entirely.
func oracleTable(t *testing.T, db *Database, table string) [][]value.Value {
	t.Helper()
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.tables[tableKey(table)]
	if !ok {
		t.Fatalf("oracle: no table %q", table)
	}
	n := rt.entry.Schema.NumColumns()
	cols := allCols(n)
	var out [][]value.Value
	rt.store.Scan(nil, cols, func(row []value.Value) bool {
		cp := make([]value.Value, n)
		copy(cp, row)
		out = append(out, cp)
		return true
	})
	return out
}

// oracleExec evaluates q naively over pre-materialized table rows.
// Unordered LIMIT results are prefix-free, so the caller compares those
// by count and containment instead.
func oracleExec(q *query.Query, left, right [][]value.Value, nL int) [][]value.Value {
	rows := left
	if q.Join != nil {
		var joined [][]value.Value
		for _, l := range left {
			lk := l[q.Join.LeftCol]
			if lk.IsNull() {
				continue
			}
			for _, r := range right {
				rk := r[q.Join.RightCol]
				if rk.IsNull() || value.Compare(lk, rk) != 0 {
					continue
				}
				combined := make([]value.Value, 0, len(l)+len(r))
				combined = append(combined, l...)
				combined = append(combined, r...)
				joined = append(joined, combined)
			}
		}
		rows = joined
	}
	if q.Pred != nil {
		var kept [][]value.Value
		for _, row := range rows {
			if q.Pred.Matches(row) {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	if q.Kind == query.Aggregate {
		ar := agg.NewResult(q.Aggs, q.GroupBy)
		key := make([]value.Value, len(q.GroupBy))
		for _, row := range rows {
			var g *agg.Group
			if len(q.GroupBy) > 0 {
				for i, c := range q.GroupBy {
					key[i] = row[c]
				}
				g = ar.GroupFor(key)
			} else {
				g = ar.Global()
			}
			for i, s := range q.Aggs {
				if s.Col < 0 {
					g.Accs[i].AddCount(1)
				} else {
					g.Accs[i].Add(row[s.Col])
				}
			}
		}
		return ar.Rows()
	}
	// Select: order on the full-width rows, then project, then limit.
	if len(q.OrderBy) > 0 {
		keys := make([][]value.Value, len(rows))
		for i, row := range rows {
			k := make([]value.Value, len(q.OrderBy))
			for j, o := range q.OrderBy {
				k[j] = row[o.Col]
			}
			keys[i] = k
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return compareKeys(keys[idx[a]], keys[idx[b]], q.OrderBy) < 0
		})
		ordered := make([][]value.Value, len(rows))
		for i, j := range idx {
			ordered[i] = rows[j]
		}
		rows = ordered
	}
	cols := q.Cols
	if cols == nil {
		w := nL
		if q.Join != nil && len(rows) > 0 {
			w = len(rows[0])
		}
		cols = allCols(w)
	}
	projected := make([][]value.Value, len(rows))
	for i, row := range rows {
		out := make([]value.Value, len(cols))
		for j, c := range cols {
			out[j] = row[c]
		}
		projected[i] = out
	}
	if q.Limit > 0 && len(projected) > q.Limit {
		projected = projected[:q.Limit]
	}
	return projected
}

// plannerWallQueries covers every read shape the planner makes decisions
// about: predicated scans and projections, grouped aggregates, joins
// with left-only / right-only / mixed predicates, and ORDER BY + LIMIT
// in all combinations (top-K, full sort, bare limit), standalone and
// through a join. Combined join indexing: par columns 0..5, pardim 6..8.
func plannerWallQueries() []*query.Query {
	half := value.NewBigint(parRows / 2)
	return []*query.Query{
		// Scans and filters.
		{Kind: query.Select, Table: "par"},
		{Kind: query.Select, Table: "par", Cols: []int{0, 3, 5},
			Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: half}},
		{Kind: query.Select, Table: "par", Cols: []int{1, 4},
			Pred: &expr.And{Preds: []expr.Predicate{
				&expr.Comparison{Col: 1, Op: expr.Ge, Val: value.NewInt(3)},
				&expr.Comparison{Col: 2, Op: expr.Lt, Val: value.NewInt(30)},
			}}},
		// Grouped and global aggregates over nullable columns.
		{Kind: query.Aggregate, Table: "par",
			Aggs: []agg.Spec{{Func: agg.Sum, Col: 3}, {Func: agg.Count, Col: -1}}},
		{Kind: query.Aggregate, Table: "par", GroupBy: []int{1},
			Aggs: []agg.Spec{{Func: agg.Min, Col: 4}, {Func: agg.Max, Col: 3}, {Func: agg.Avg, Col: 3}},
			Pred: &expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewInt(10)}},
		{Kind: query.Aggregate, Table: "par", GroupBy: []int{1, 2},
			Aggs: []agg.Spec{{Func: agg.Sum, Col: 4}}},
		// Joins: left-only, right-only and mixed predicates exercise the
		// pushdown classifier; the dimension is smaller, so the planner's
		// build side differs from a flipped baseline.
		{Kind: query.Select, Table: "par",
			Join: &query.Join{Table: "pardim", LeftCol: 2, RightCol: 0},
			Cols: []int{0, 3, 8},
			Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: half}},
		{Kind: query.Select, Table: "par",
			Join: &query.Join{Table: "pardim", LeftCol: 2, RightCol: 0},
			Cols: []int{0, 7},
			Pred: &expr.Comparison{Col: 7, Op: expr.Lt, Val: value.NewInt(2)}},
		{Kind: query.Aggregate, Table: "par",
			Join:    &query.Join{Table: "pardim", LeftCol: 2, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 4}, {Func: agg.Count, Col: -1}},
			GroupBy: []int{7},
			Pred: &expr.And{Preds: []expr.Predicate{
				&expr.Comparison{Col: 1, Op: expr.Ge, Val: value.NewInt(2)},
				&expr.Comparison{Col: 7, Op: expr.Lt, Val: value.NewInt(4)},
			}}},
		{Kind: query.Aggregate, Table: "par",
			Join: &query.Join{Table: "pardim", LeftCol: 2, RightCol: 0},
			Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
			Pred: &expr.Or{Preds: []expr.Predicate{
				&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(0)},
				&expr.Comparison{Col: 7, Op: expr.Eq, Val: value.NewInt(1)},
			}}},
		// ORDER BY + LIMIT: single-pass top-K (asc, desc, multi-key),
		// full sort without limit, and a join-probe top-K.
		{Kind: query.Select, Table: "par", Cols: []int{0, 2},
			OrderBy: []query.Order{{Col: 2}, {Col: 0, Desc: true}}, Limit: 17},
		{Kind: query.Select, Table: "par", Cols: []int{0, 3},
			OrderBy: []query.Order{{Col: 3, Desc: true}}, Limit: 5,
			Pred: &expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(6)}},
		{Kind: query.Select, Table: "par", Cols: []int{0, 1},
			OrderBy: []query.Order{{Col: 1}, {Col: 0}}},
		{Kind: query.Select, Table: "par",
			Join:    &query.Join{Table: "pardim", LeftCol: 2, RightCol: 0},
			Cols:    []int{0, 8},
			OrderBy: []query.Order{{Col: 8}, {Col: 0}}, Limit: 11,
			Pred:    &expr.Comparison{Col: 0, Op: expr.Lt, Val: half}},
	}
}

// assertPlannedMatchesOracle executes q through the planner and compares
// with the naive oracle. Ordered results compare exactly (the planner's
// top-K must reproduce the stable sort+limit prefix); unordered LIMIT
// results compare by cardinality and containment; everything else
// compares as an order-insensitive multiset.
func assertPlannedMatchesOracle(t *testing.T, db *Database, q *query.Query, left, right [][]value.Value, nL int, label string) {
	t.Helper()
	got, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: planned exec: %v", label, err)
	}
	want := oracleExec(q, left, right, nL)
	switch {
	case len(q.OrderBy) > 0 && q.Kind == query.Select:
		if !reflect.DeepEqual(got.Rows, want) {
			t.Fatalf("%s: ordered result diverged\nplanned (%d rows): %.400v\noracle  (%d rows): %.400v",
				label, len(got.Rows), got.Rows, len(want), want)
		}
	case q.Limit > 0 && q.Kind == query.Select:
		if len(got.Rows) != len(want) {
			t.Fatalf("%s: limit cardinality: planned %d, oracle %d", label, len(got.Rows), len(want))
		}
		// Any q.Limit matching rows are acceptable: check containment in
		// the unlimited matching multiset.
		unlimited := *q
		unlimited.Limit = 0
		pool := map[string]int{}
		for _, row := range oracleExec(&unlimited, left, right, nL) {
			pool[fmt.Sprint(row)]++
		}
		for _, row := range got.Rows {
			k := fmt.Sprint(row)
			if pool[k] == 0 {
				t.Fatalf("%s: planned row %v not in oracle's matching set", label, row)
			}
			pool[k]--
		}
	default:
		g, w := sortedRows(got.Rows), sortedRows(want)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: result diverged\nplanned (%d rows): %.400v\noracle  (%d rows): %.400v",
				label, len(g), g, len(w), w)
		}
	}
}

func TestPlannerDifferentialWall(t *testing.T) {
	queries := plannerWallQueries()
	for _, l := range parLayouts() {
		l := l
		t.Run(l.name, func(t *testing.T) {
			db := buildParDB(t, l.store, l.spec)
			// Collected statistics give the planner real cardinalities
			// and bump the catalog version mid-wall.
			if _, err := db.CollectStats("par"); err != nil {
				t.Fatal(err)
			}
			left := oracleTable(t, db, "par")
			right := oracleTable(t, db, "pardim")
			for _, pool := range []int{1, 8} {
				db.SetPool(exec.NewPool(pool))
				for i, q := range queries {
					assertPlannedMatchesOracle(t, db, q, left, right, 6,
						fmt.Sprintf("%s pool=%d q%d", l.name, pool, i))
				}
			}
		})
	}
}

// TestPlannerPlansEveryWallQuery pins the tentpole invariant: every read
// the wall executes flows through an explicit plan whose shape matches
// the statement (join plans have a HashJoin, ordered+limited selects a
// TopK, aggregates an Aggregate node).
func TestPlannerPlansEveryWallQuery(t *testing.T) {
	db := buildParDB(t, parLayouts()[1].store, nil)
	for i, q := range plannerWallQueries() {
		p, err := db.PlanQuery(q)
		if err != nil {
			t.Fatalf("q%d: plan: %v", i, err)
		}
		var kinds []string
		plan.Walk(p.Root, func(n plan.Node, _ int) { kinds = append(kinds, n.Kind()) })
		has := func(k string) bool {
			for _, x := range kinds {
				if x == k {
					return true
				}
			}
			return false
		}
		if q.Join != nil && !has("hashjoin") {
			t.Errorf("q%d: join query planned without hashjoin: %v", i, kinds)
		}
		if q.Kind == query.Aggregate && !has("aggregate") {
			t.Errorf("q%d: aggregate planned without aggregate node: %v", i, kinds)
		}
		if q.Kind == query.Select && len(q.OrderBy) > 0 && q.Limit > 0 && !has("topk") {
			t.Errorf("q%d: order+limit planned without topk: %v", i, kinds)
		}
		if !has("scan") {
			t.Errorf("q%d: plan has no scan: %v", i, kinds)
		}
	}
}
