// Durability: snapshot checkpoints plus write-ahead logging. A durable
// database directory holds two files:
//
//   - snapshot — the catalog and every table's storage payload
//     (fragment-preserving: the column store's main/delta split survives
//     a round trip), stamped with the WAL sequence number the snapshot
//     covers;
//   - wal.log — the ordered log of every DDL/DML statement (and every
//     completed migration swap) acknowledged since that snapshot.
//
// Open loads the snapshot, replays the WAL tail through the same
// replayOps machinery migrations use, then folds the tail into a fresh
// snapshot and truncates the log. Checkpoints write snapshot.tmp,
// fsync, rename, fsync the directory, and only then truncate the WAL;
// because frames carry sequence numbers and the snapshot records its
// cut, a crash between the rename and the truncate cannot double-apply
// the stale tail.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/query"
	"hybridstore/internal/wal"
)

const (
	snapshotFile    = "snapshot"
	walFile         = "wal.log"
	snapshotMagic   = "HSSNAP"
	snapshotVersion = 1
)

// Options tunes a durable database.
type Options struct {
	// GroupCommit caps the WAL records merged into one fsync batch
	// (0 = wal.DefaultMaxBatch). It is the insert-throughput knob:
	// concurrent writers share one fsync per batch.
	GroupCommit int
	// NoSync skips fsyncs on WAL flushes. Only for tests and bulk loads
	// that checkpoint afterwards; a crash can lose acknowledged writes.
	NoSync bool
}

// Open loads (or initializes) a durable database in dir: the latest
// snapshot is restored, the WAL tail is replayed on top of it, any
// migration that was in flight at the crash is absent (its swap was
// never logged, so the tables come back in their pre-migration layout
// with all replayed DML applied), and the replayed tail is folded into
// a fresh checkpoint. Every subsequent DDL/DML statement is logged and
// group-committed before it is acknowledged.
func Open(dir string) (*Database, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open with explicit tuning.
func OpenOptions(dir string, opts Options) (*Database, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create data directory: %w", err)
	}
	db := New()
	db.dir = dir

	// 1. Latest snapshot, if any.
	startSeq := uint64(1)
	snapPath := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		s, lerr := db.loadSnapshot(data)
		if lerr != nil {
			return nil, fmt.Errorf("engine: load snapshot %s: %w", snapPath, lerr)
		}
		startSeq = s
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// 2. Replay the WAL tail. Frames below startSeq are already folded
	// into the snapshot (a crash can leave them behind when it lands
	// between the snapshot rename and the log truncate) and are skipped.
	walPath := filepath.Join(dir, walFile)
	info, err := wal.Recover(walPath, func(seq uint64, rec *wal.Record) error {
		if seq < startSeq {
			return nil
		}
		return db.applyRecord(rec)
	})
	if err != nil {
		return nil, fmt.Errorf("engine: replay %s: %w", walPath, err)
	}

	// 3. Open the log for appending, truncating any torn tail.
	nextSeq := startSeq
	if info.MaxSeq+1 > nextSeq {
		nextSeq = info.MaxSeq + 1
	}
	log, err := wal.Open(walPath, nextSeq, info.ValidLen, wal.Options{
		MaxBatch: opts.GroupCommit, NoSync: opts.NoSync,
	})
	if err != nil {
		return nil, err
	}
	db.log = log

	// 4. Fold a non-empty tail into a fresh snapshot so the next open
	// starts from the snapshot alone.
	if info.Records > 0 {
		if err := db.Checkpoint(); err != nil {
			log.Close()
			return nil, err
		}
	}
	return db, nil
}

// Durable reports whether the database is backed by a data directory.
func (db *Database) Durable() bool { return db.log != nil }

// applyRecord replays one WAL record during recovery. DML goes through
// the same replayOps machinery that migration tail replay uses; DDL
// goes through the un-logged cores of the public methods. The caller is
// the only goroutine touching the database.
func (db *Database) applyRecord(rec *wal.Record) error {
	switch rec.Kind {
	case wal.RecCreateTable:
		return db.createTableLocked(rec.Schema, rec.Store, rec.Spec)
	case wal.RecDropTable:
		return db.dropTableLocked(rec.Table)
	case wal.RecCreateIndex:
		err := db.createIndexLocked(rec.Table, rec.Col)
		if errors.Is(err, ErrIndexNotMaterialized) {
			// The declaration is recorded; it materializes when the
			// table regains row storage, exactly as it did originally.
			return nil
		}
		return err
	case wal.RecSetLayout:
		return db.setLayoutLocked(rec.Table, rec.Store, rec.Spec)
	case wal.RecInsert, wal.RecCopy, wal.RecUpdate, wal.RecDelete:
		rt, err := db.runtime(rec.Table)
		if err != nil {
			return err
		}
		op := dmlOp{rows: rec.Rows, pred: rec.Pred, set: rec.Set}
		switch rec.Kind {
		case wal.RecInsert, wal.RecCopy:
			// A COPY batch replays exactly like an insert of its rows; the
			// record boundary is the atomicity unit — a torn tail dropped
			// the whole frame, so recovery never sees a partial batch.
			op.kind = query.Insert
		case wal.RecUpdate:
			op.kind = query.Update
		default:
			op.kind = query.Delete
		}
		return replayOps(rt.store, []dmlOp{op})
	case wal.RecTxnCommit:
		// One committed transaction's atomic effect. Log order equals
		// commit order, so the physical delete-then-insert images replay
		// to exactly the folded state; a transaction whose commit record
		// never became durable contributes nothing (rolled back). Tables
		// dropped later in the log no longer exist when their drop record
		// precedes this one's fold on the live side — tolerate them.
		for i := range rec.Txn {
			tt := &rec.Txn[i]
			rt, err := db.runtime(tt.Name)
			if err != nil {
				continue
			}
			if err := applyTxnTable(rt, tt); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("engine: unknown WAL record kind %v", rec.Kind)
	}
}

// Checkpoint serializes the catalog and every table's storage to the
// snapshot file and truncates the WAL. Durable databases call it
// explicitly (or via Close); recovery calls it to fold a replayed tail.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	if db.log == nil {
		return fmt.Errorf("engine: database is not durable (create it with engine.Open)")
	}
	cpStart := time.Now()
	defer func() {
		mCheckpointSeconds.Observe(time.Since(cpStart).Nanoseconds())
		mCheckpoints.Inc()
	}()
	// Fold every pending committed transaction first: the snapshot
	// serializes base storage only, and the WAL reset below discards the
	// commit records. We hold the write lock, so no commit is in flight
	// (commits run under the read lock) — after the fold, base storage
	// IS the committed state. Uncommitted claims live only in version
	// chains and are correctly absent from the snapshot.
	db.foldLocked()
	// Everything acknowledged must be on disk in the log before the
	// snapshot claims to supersede it.
	if err := db.log.Sync(); err != nil {
		return err
	}
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	// Encode and flush one section at a time: peak memory is bounded by
	// the largest table's payload, not the whole database.
	enc := wal.NewEncoder()
	flush := func() error {
		_, werr := f.Write(enc.Bytes())
		enc.Reset()
		return werr
	}
	names := make([]string, 0, len(db.tables))
	for k := range db.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	enc.String(snapshotMagic)
	enc.Uvarint(snapshotVersion)
	enc.Uvarint(db.log.NextSeq())
	enc.Uvarint(uint64(len(names)))
	writeErr := flush()
	for _, k := range names {
		if writeErr != nil {
			break
		}
		rt := db.tables[k]
		e := rt.entry
		enc.Schema(e.Schema)
		enc.Byte(byte(e.Store))
		enc.Spec(e.Partitioning)
		enc.Ints(e.Indexes)
		rt.store.persist(enc)
		writeErr = flush()
	}
	if writeErr != nil {
		f.Close()
		return fmt.Errorf("engine: checkpoint write: %w", writeErr)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("engine: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("engine: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return fmt.Errorf("engine: checkpoint rename: %w", err)
	}
	if err := syncDir(db.dir); err != nil {
		return fmt.Errorf("engine: checkpoint dir sync: %w", err)
	}
	// Safe only now: the renamed snapshot covers every logged record.
	return db.log.Reset()
}

// Close marks the database closed — statements arriving afterwards fail
// with ErrClosed — then checkpoints a durable database and closes its
// WAL. The final checkpoint takes the write lock, so every statement
// admitted before the close completes (and, for DML, reaches the log)
// before the snapshot is cut; this is what lets the network server drain
// racing sessions cleanly. Closing an in-memory database only sets the
// flag.
func (db *Database) Close() error {
	db.closed.Store(true)
	if db.log == nil {
		return nil
	}
	cpErr := db.Checkpoint()
	clErr := db.log.Close()
	if cpErr != nil {
		return cpErr
	}
	return clErr
}

// Crash closes the WAL file WITHOUT checkpointing or flushing, leaving
// the data directory exactly as a process kill would: the snapshot of
// the last checkpoint plus the log of everything acknowledged since —
// enqueued-but-unacknowledged records are dropped, not quietly made
// durable. It exists for crash-recovery tests and fault-injection
// drills; production code wants Close.
func (db *Database) Crash() error {
	if db.log == nil {
		return nil
	}
	return db.log.Abort()
}

// loadSnapshot restores database state from snapshot bytes and returns
// the WAL sequence number the snapshot covers up to.
func (db *Database) loadSnapshot(data []byte) (uint64, error) {
	dec := wal.NewDecoder(data)
	if magic := dec.String(); magic != snapshotMagic {
		return 0, fmt.Errorf("engine: bad snapshot magic %q", magic)
	}
	if v := dec.Uvarint(); dec.Err() == nil && v != snapshotVersion {
		return 0, fmt.Errorf("engine: unsupported snapshot version %d", v)
	}
	startSeq := dec.Uvarint()
	n := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	for i := uint64(0); i < n; i++ {
		sch := dec.Schema()
		store := catalog.StoreKind(dec.Byte())
		spec := dec.Spec()
		indexes := dec.Ints()
		if err := dec.Err(); err != nil {
			return 0, err
		}
		if err := db.createTableLocked(sch, store, spec); err != nil {
			return 0, err
		}
		rt, err := db.runtime(sch.Name)
		if err != nil {
			return 0, err
		}
		if err := rt.store.restore(dec); err != nil {
			return 0, fmt.Errorf("engine: restore table %q: %w", sch.Name, err)
		}
		for _, c := range indexes {
			if rt.store.SupportsIndex(c) {
				rt.store.CreateIndex(c)
			}
			db.cat.AddIndex(sch.Name, c)
		}
	}
	return startSeq, dec.Err()
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
