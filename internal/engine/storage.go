package engine

import (
	"hybridstore/internal/agg"
	"hybridstore/internal/colstore"
	"hybridstore/internal/expr"
	"hybridstore/internal/rowstore"
	"hybridstore/internal/value"
)

// storage is the uniform interface the engine executes against. All
// implementations speak full-table-width rows, so unpartitioned tables,
// vertically split tables and horizontally split tables are
// interchangeable — the transparency the paper requires of store-aware
// partitioning ("the query rewriting must be realized automatically and
// transparently to the user", §4).
type storage interface {
	Rows() int
	Insert(rows [][]value.Value) error
	Update(pred expr.Predicate, set map[int]value.Value) (int, error)
	Delete(pred expr.Predicate) int
	// Scan streams rows matching pred. cols lists the columns the caller
	// will read (nil = all); implementations may leave other positions
	// stale. The row slice is scratch — do not retain.
	Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool)
	Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate) *agg.Result
	// CreateIndex adds a secondary index where the underlying store
	// supports one (row stores); otherwise it is a no-op. Callers that
	// need to distinguish must consult SupportsIndex first.
	CreateIndex(col int)
	// SupportsIndex reports whether CreateIndex(col) would materialize a
	// secondary index under the current layout. Column stores answer
	// false (their sorted dictionaries are the implicit index the paper
	// describes); partitioned layouts answer true when at least one
	// partition holding the column is row-oriented.
	SupportsIndex(col int) bool
	// Compact brings the storage to its read-optimized steady state:
	// column stores merge their delta, row stores reclaim tombstones.
	Compact()
	// DeltaRows reports the rows sitting in write-optimized delta
	// fragments (column stores); the migration scheduler triggers
	// Compact when it crosses a threshold.
	DeltaRows() int
	MemoryBytes() int
}

// rowStorage adapts rowstore.Table to the storage interface.
type rowStorage struct {
	t *rowstore.Table
}

func (s *rowStorage) Rows() int { return s.t.Rows() }

func (s *rowStorage) Insert(rows [][]value.Value) error { return s.t.Insert(rows) }

func (s *rowStorage) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	return s.t.Update(pred, set)
}

func (s *rowStorage) Delete(pred expr.Predicate) int { return s.t.Delete(pred) }

func (s *rowStorage) Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	s.t.Scan(pred, func(rid int, row []value.Value) bool { return fn(row) })
}

func (s *rowStorage) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate) *agg.Result {
	return s.t.Aggregate(specs, groupBy, pred)
}

func (s *rowStorage) CreateIndex(col int) { s.t.CreateIndex(col) }

func (s *rowStorage) SupportsIndex(col int) bool { return true }

func (s *rowStorage) DeltaRows() int { return 0 }

func (s *rowStorage) Compact() { s.t.Compact() }

func (s *rowStorage) MemoryBytes() int { return s.t.MemoryBytes() }

// colStorage adapts colstore.Table to the storage interface.
type colStorage struct {
	t *colstore.Table
}

func (s *colStorage) Rows() int { return s.t.Rows() }

func (s *colStorage) Insert(rows [][]value.Value) error { return s.t.Insert(rows) }

func (s *colStorage) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	return s.t.Update(pred, set)
}

func (s *colStorage) Delete(pred expr.Predicate) int { return s.t.Delete(pred) }

func (s *colStorage) Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	s.t.Scan(pred, cols, func(rid int, row []value.Value) bool { return fn(row) })
}

// ScanBatches exposes the column store's vectorized batch scan (for an
// unpartitioned table, storage columns are table columns). Callers that
// consume columns directly avoid the per-row full-width scratch copy the
// row-at-a-time Scan adapter pays.
func (s *colStorage) ScanBatches(pred expr.Predicate, cols []int, fn func(rids []int32, colVals [][]value.Value) bool) {
	s.t.ScanBatches(pred, cols, fn)
}

// batchScanner is implemented by storages that expose the column store's
// vectorized batch scan; the engine's hot paths (join build sides,
// vertical-partition scans) type-assert against it.
type batchScanner interface {
	ScanBatches(pred expr.Predicate, cols []int, fn func(rids []int32, colVals [][]value.Value) bool)
}

func (s *colStorage) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate) *agg.Result {
	return s.t.Aggregate(specs, groupBy, pred)
}

// CreateIndex is a no-op: the column store's sorted dictionaries already
// provide the implicit index the paper describes. SupportsIndex lets
// callers detect this instead of assuming an index was materialized.
func (s *colStorage) CreateIndex(col int) {}

func (s *colStorage) SupportsIndex(col int) bool { return false }

func (s *colStorage) DeltaRows() int { return s.t.DeltaRows() }

func (s *colStorage) Compact() { s.t.Merge() }

func (s *colStorage) MemoryBytes() int { return s.t.MemoryBytes() }
