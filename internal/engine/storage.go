package engine

import (
	"fmt"

	"hybridstore/internal/agg"
	"hybridstore/internal/colstore"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/rowstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// storage is the uniform interface the engine executes against. All
// implementations speak full-table-width rows, so unpartitioned tables,
// vertically split tables and horizontally split tables are
// interchangeable — the transparency the paper requires of store-aware
// partitioning ("the query rewriting must be realized automatically and
// transparently to the user", §4).
type storage interface {
	Rows() int
	Insert(rows [][]value.Value) error
	Update(pred expr.Predicate, set map[int]value.Value) (int, error)
	Delete(pred expr.Predicate) int
	// Scan streams rows matching pred. cols lists the columns the caller
	// will read (nil = all); implementations may leave other positions
	// stale. The row slice is scratch — do not retain.
	Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool)
	// Aggregate computes grouped aggregates over rows matching pred. ex
	// carries the statement's execution context: its Stop hook (derived
	// from the statement context) is polled at batch boundaries —
	// roughly every 1024 rows — and a true return abandons the
	// aggregation, whose partial result must then be discarded; its Pool
	// lets the stores fan the scan out across morsel workers. A nil ex
	// (or nil ex.Pool) runs serially without cancellation.
	Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result
	// CreateIndex adds a secondary index where the underlying store
	// supports one (row stores); otherwise it is a no-op. Callers that
	// need to distinguish must consult SupportsIndex first.
	CreateIndex(col int)
	// SupportsIndex reports whether CreateIndex(col) would materialize a
	// secondary index under the current layout. Column stores answer
	// false (their sorted dictionaries are the implicit index the paper
	// describes); partitioned layouts answer true when at least one
	// partition holding the column is row-oriented.
	SupportsIndex(col int) bool
	// Compact brings the storage to its read-optimized steady state:
	// column stores merge their delta, row stores reclaim tombstones.
	Compact()
	// DeltaRows reports the rows sitting in write-optimized delta
	// fragments (column stores); the migration scheduler triggers
	// Compact when it crosses a threshold.
	DeltaRows() int
	MemoryBytes() int
	// persist serializes the storage payload into a snapshot encoder,
	// fragment-preserving where the layout has fragments (the column
	// store's main/delta split survives a round trip). restore loads a
	// payload written by persist into this freshly built, empty storage
	// of the same layout.
	persist(enc *wal.Encoder)
	restore(dec *wal.Decoder) error
}

// pkLookuper is implemented by storages that can answer primary-key
// point lookups. Partitioned layouts use it to pre-validate inserts and
// PK-changing updates across their partitions, so a multi-partition
// statement fails atomically instead of mutating one partition before
// the other rejects.
type pkLookuper interface {
	// HasPK reports whether a live row with the given primary-key
	// values (in table PK order) exists.
	HasPK(key []value.Value) bool
}

// checkInsertPKs validates an insert batch against the table-wide
// primary-key invariant before any partition is mutated: no key may
// already be live anywhere in the table (hasPK must answer for the
// whole table, not one partition) and no key may appear twice within
// the batch. Partitioned layouts call it so a failing INSERT is atomic
// and cannot create cross-partition duplicates.
func checkInsertPKs(sch *schema.Table, rows [][]value.Value, hasPK func([]value.Value) bool) error {
	if len(sch.PrimaryKey) == 0 {
		return nil
	}
	batchKeys := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		key := sch.PKValues(row)
		ks := value.TupleKey(key)
		if _, dup := batchKeys[ks]; dup {
			return fmt.Errorf("engine: duplicate primary key %v within insert batch in table %q", key, sch.Name)
		}
		batchKeys[ks] = struct{}{}
		if hasPK(key) {
			return fmt.Errorf("engine: duplicate primary key %v in table %q", key, sch.Name)
		}
	}
	return nil
}

// persistRowTable streams a row-store table as a count-prefixed row
// section (tombstones are compacted away by construction of Scan).
func persistRowTable(enc *wal.Encoder, t *rowstore.Table) {
	enc.Uvarint(uint64(t.Rows()))
	t.Scan(nil, func(rid int, row []value.Value) bool {
		enc.Row(row)
		return true
	})
}

// restoreRowTable reads a section written by persistRowTable.
func restoreRowTable(dec *wal.Decoder, sch *schema.Table) (*rowstore.Table, error) {
	rows, err := decodeRowSection(dec, sch.NumColumns())
	if err != nil {
		return nil, err
	}
	return rowstore.Load(sch, rows)
}

func decodeRowSection(dec *wal.Decoder, width int) ([][]value.Value, error) {
	n := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	rows := make([][]value.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		row := dec.Row(width)
		if row == nil {
			break
		}
		rows = append(rows, row)
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// persistColTable writes a column-store table as two count-prefixed row
// sections, main fragment first, so Load reconstructs the same
// main/delta split.
func persistColTable(enc *wal.Encoder, t *colstore.Table) {
	var main, delta [][]value.Value
	t.FragmentRows(func(row []value.Value, inMain bool) bool {
		if inMain {
			main = append(main, row)
		} else {
			delta = append(delta, row)
		}
		return true
	})
	enc.Rows(main)
	enc.Rows(delta)
}

// restoreColTable reads a section pair written by persistColTable.
func restoreColTable(dec *wal.Decoder, sch *schema.Table) (*colstore.Table, error) {
	width := sch.NumColumns()
	main := dec.Rows(width)
	delta := dec.Rows(width)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return colstore.Load(sch, main, delta)
}

// rowStorage adapts rowstore.Table to the storage interface.
type rowStorage struct {
	t *rowstore.Table
}

func (s *rowStorage) Rows() int { return s.t.Rows() }

func (s *rowStorage) Insert(rows [][]value.Value) error { return s.t.Insert(rows) }

func (s *rowStorage) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	return s.t.Update(pred, set)
}

func (s *rowStorage) Delete(pred expr.Predicate) int { return s.t.Delete(pred) }

func (s *rowStorage) Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	s.t.Scan(pred, func(rid int, row []value.Value) bool { return fn(row) })
}

func (s *rowStorage) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result {
	return s.t.AggregateExec(specs, groupBy, pred, ex)
}

func (s *rowStorage) CreateIndex(col int) { s.t.CreateIndex(col) }

func (s *rowStorage) SupportsIndex(col int) bool { return true }

func (s *rowStorage) DeltaRows() int { return 0 }

func (s *rowStorage) Compact() { s.t.Compact() }

func (s *rowStorage) MemoryBytes() int { return s.t.MemoryBytes() }

func (s *rowStorage) HasPK(key []value.Value) bool {
	_, ok := s.t.LookupPK(key)
	return ok
}

func (s *rowStorage) persist(enc *wal.Encoder) { persistRowTable(enc, s.t) }

func (s *rowStorage) restore(dec *wal.Decoder) error {
	t, err := restoreRowTable(dec, s.t.Schema())
	if err != nil {
		return err
	}
	s.t = t
	return nil
}

// colStorage adapts colstore.Table to the storage interface.
type colStorage struct {
	t *colstore.Table
}

func (s *colStorage) Rows() int { return s.t.Rows() }

func (s *colStorage) Insert(rows [][]value.Value) error { return s.t.Insert(rows) }

func (s *colStorage) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	return s.t.Update(pred, set)
}

func (s *colStorage) Delete(pred expr.Predicate) int { return s.t.Delete(pred) }

func (s *colStorage) Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	s.t.Scan(pred, cols, func(rid int, row []value.Value) bool { return fn(row) })
}

// ScanBatches exposes the column store's vectorized batch scan (for an
// unpartitioned table, storage columns are table columns). Callers that
// consume columns directly avoid the per-row full-width scratch copy the
// row-at-a-time Scan adapter pays.
func (s *colStorage) ScanBatches(pred expr.Predicate, cols []int, fn func(rids []int32, colVals [][]value.Value) bool) {
	s.t.ScanBatches(pred, cols, fn)
}

// batchScanner is implemented by storages that expose the column store's
// vectorized batch scan; the engine's hot paths (join build sides,
// vertical-partition scans) type-assert against it.
type batchScanner interface {
	ScanBatches(pred expr.Predicate, cols []int, fn func(rids []int32, colVals [][]value.Value) bool)
}

// NumBlocks exposes the column store's scan-block (morsel) count.
func (s *colStorage) NumBlocks() int { return s.t.NumBlocks() }

// ScanBatchesExec exposes the column store's morsel-parallel batch scan.
func (s *colStorage) ScanBatchesExec(pred expr.Predicate, cols []int, ex *exec.Ctx, fn func(w, block int, rids []int32, colVals [][]value.Value) bool) {
	s.t.ScanBatchesExec(pred, cols, ex, fn)
}

// execBatchScanner is implemented by storages whose batch scan can fan
// out across morsel workers; the engine's parallel SELECT collection and
// join build/probe paths type-assert against it. Batches arrive on
// concurrent workers in arbitrary order — fn must be safe for distinct
// worker ids, and callers reassemble deterministic output via the block
// index (block order is the serial scan order).
type execBatchScanner interface {
	NumBlocks() int
	ScanBatchesExec(pred expr.Predicate, cols []int, ex *exec.Ctx, fn func(w, block int, rids []int32, colVals [][]value.Value) bool)
}

func (s *colStorage) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result {
	return s.t.AggregateExec(specs, groupBy, pred, ex)
}

// CreateIndex is a no-op: the column store's sorted dictionaries already
// provide the implicit index the paper describes. SupportsIndex lets
// callers detect this instead of assuming an index was materialized.
func (s *colStorage) CreateIndex(col int) {}

func (s *colStorage) SupportsIndex(col int) bool { return false }

func (s *colStorage) DeltaRows() int { return s.t.DeltaRows() }

func (s *colStorage) Compact() { s.t.Merge() }

func (s *colStorage) MemoryBytes() int { return s.t.MemoryBytes() }

func (s *colStorage) HasPK(key []value.Value) bool {
	_, ok := s.t.LookupPK(key)
	return ok
}

func (s *colStorage) persist(enc *wal.Encoder) { persistColTable(enc, s.t) }

func (s *colStorage) restore(dec *wal.Decoder) error {
	t, err := restoreColTable(dec, s.t.Schema())
	if err != nil {
		return err
	}
	s.t = t
	return nil
}
