package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/trace"
	"hybridstore/internal/txn"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// This file is the engine side of MVCC snapshot isolation: it routes DML
// through the internal/txn version overlay, publishes commits to the WAL
// as atomic RecTxnCommit records, folds committed versions into base
// storage in the background, and gives every read statement a stable
// snapshot view so analytical scans never block (or are blocked by)
// writers.
//
// Division of labor with internal/txn: the txn package owns timestamps,
// version chains and conflict detection; this file owns everything that
// touches engine state — claim validation against schemas and base
// storage, WAL records, the fold, and the statement-level merged view.
//
// Locking: DML statements and commits run under db.mu.RLock (plus the
// txn manager's commit lock), so disjoint-row writers proceed in
// parallel and readers are never excluded by a writer. Only the fold —
// which mutates base storage — takes db.mu.Lock, the same exclusion the
// legacy serial DML path uses.

// errTxnDone reports use of a transaction after Commit or Rollback.
var errTxnDone = errors.New("engine: transaction has already finished")

// IsConflict reports whether err is a snapshot-isolation write-write
// conflict (first-updater-wins abort). Conflicts are retryable: rerun
// the whole transaction against the newer state.
func IsConflict(err error) bool { return errors.Is(err, txn.ErrConflict) }

// TxnObserver is an optional extension of QueryObserver: observers that
// implement it receive every explicit transaction completion with its
// session label, so the workload monitor can attribute per-session
// commit/abort counts.
type TxnObserver interface {
	ObserveTxn(session string, committed bool)
}

// txnCtxKey is the context key WithTxn stores the session transaction
// under.
type txnCtxKey struct{}

// WithTxn tags a context with an open transaction; statements executed
// under it become part of the transaction instead of auto-committing.
// The server pins its session executor this way.
func WithTxn(ctx context.Context, t *Txn) context.Context {
	return context.WithValue(ctx, txnCtxKey{}, t)
}

// TxnFromContext returns the transaction attached by WithTxn (nil when
// absent).
func TxnFromContext(ctx context.Context) *Txn {
	t, _ := ctx.Value(txnCtxKey{}).(*Txn)
	return t
}

// Txn is an explicit multi-statement transaction. Statements run under
// it via ExecContext (or ExecContext on the database with a WithTxn
// context); nothing is visible to other sessions or durable until
// Commit. Any statement error aborts the whole transaction — further
// statements return the abort reason until Rollback acknowledges it.
// A Txn serves one statement at a time; sessions already serialize
// their statements, which is the intended usage.
type Txn struct {
	db      *Database
	session string

	mu    sync.Mutex
	tx    *txn.Txn
	done  bool  // Commit or Rollback called
	err   error // sticky abort reason (statement failure or conflict)
	gated bool  // holds db.txnGate (serial-writes baseline mode)
}

// ungate releases the serial-writes transaction gate if this
// transaction holds it. Idempotent; called on every path that ends the
// transaction (commit, rollback, statement-failure abort).
func (t *Txn) ungate() {
	t.mu.Lock()
	g := t.gated
	t.gated = false
	t.mu.Unlock()
	if g {
		t.db.txnGate.Unlock()
	}
}

// Begin opens a transaction with a snapshot of the currently committed
// state. The context only contributes the session label for monitor
// attribution.
func (db *Database) Begin(ctx context.Context) (*Txn, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	t := &Txn{db: db, session: SessionFromContext(ctx)}
	if db.serialWrites.Load() {
		// Single-write-lock baseline: hold the global transaction gate
		// for the whole BEGIN..COMMIT window (including client round
		// trips), the way a lock-based engine provides multi-statement
		// atomicity without version chains.
		db.txnGate.Lock()
		t.gated = true
	}
	t.tx = db.txns.Begin()
	mTxnBegins.Inc()
	mTxnActive.Add(1)
	return t, nil
}

// ExecContext runs one statement inside the transaction.
func (t *Txn) ExecContext(ctx context.Context, q *query.Query) (*Result, error) {
	return t.db.execWithPlan(WithTxn(ctx, t), q, nil)
}

// Exec is ExecContext with a background context.
func (t *Txn) Exec(q *query.Query) (*Result, error) {
	return t.ExecContext(context.Background(), q)
}

// usable returns the sticky abort reason, errTxnDone after Commit or
// Rollback, and nil while the transaction can accept statements.
func (t *Txn) usable() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if t.done {
		return errTxnDone
	}
	return nil
}

// fail aborts the transaction because a statement failed: every claim is
// released immediately (other writers stop conflicting on them) and the
// reason sticks until Rollback.
func (t *Txn) fail(cause error) {
	t.mu.Lock()
	if t.done || t.err != nil {
		t.mu.Unlock()
		return
	}
	t.err = fmt.Errorf("engine: transaction aborted: %w", cause)
	t.mu.Unlock()
	t.db.txns.Abort(t.tx)
	t.db.finishTxn(t.session, false)
	t.ungate()
}

// CommitTS returns the commit timestamp (0 before a successful Commit).
func (t *Txn) CommitTS() uint64 { return t.tx.CommitTS() }

// Commit publishes the transaction atomically and waits for durability.
// Committing an already-aborted transaction returns the abort reason.
func (t *Txn) Commit(ctx context.Context) error {
	t.mu.Lock()
	if t.err != nil {
		err := t.err
		t.done = true
		t.mu.Unlock()
		return err
	}
	if t.done {
		t.mu.Unlock()
		return errTxnDone
	}
	t.done = true
	t.mu.Unlock()
	err := t.db.commitTxn(ctx, t)
	t.ungate()
	return err
}

// Rollback discards the transaction. It is a no-op (and success) on a
// transaction that already aborted or finished, so defer t.Rollback()
// is always safe.
func (t *Txn) Rollback() error {
	t.mu.Lock()
	if t.done || t.err != nil {
		t.done = true
		t.mu.Unlock()
		return nil
	}
	t.done = true
	t.mu.Unlock()
	t.db.txns.Abort(t.tx)
	t.db.finishTxn(t.session, false)
	t.ungate()
	return nil
}

// finishTxn records an explicit transaction's completion in the metrics
// and the session monitor.
func (db *Database) finishTxn(session string, committed bool) {
	if committed {
		mTxnCommits.Inc()
	} else {
		mTxnAborts.Inc()
	}
	mTxnActive.Add(-1)
	if obs := db.observer(); obs != nil {
		if to, ok := obs.(TxnObserver); ok {
			to.ObserveTxn(session, committed)
		}
	}
}

// commitTxn is the commit path of an explicit transaction: stamp and
// publish under the read lock, wait for WAL durability outside every
// lock, then opportunistically fold.
//
// Transactions holding buffered PK-less inserts commit under the write
// lock instead and fold immediately: a PK-less table has no version
// overlay readers could resolve the commit through, so its rows must be
// in base storage before any later snapshot can observe the commit
// timestamp — the serialized path PK-less auto-commit DML already uses.
func (db *Database) commitTxn(ctx context.Context, t *Txn) error {
	buffered := false
	t.tx.Buffered(func(*txn.BufferedInsert) { buffered = true })
	if buffered {
		return db.commitTxnSerial(ctx, t)
	}
	db.mu.RLock()
	if db.closed.Load() {
		db.mu.RUnlock()
		db.txns.Abort(t.tx)
		db.finishTxn(t.session, false)
		return ErrClosed
	}
	tr := trace.FromContext(ctx)
	sp := tr.Start("commit")
	seq, enqErr := db.publishCommit(t.tx)
	db.mu.RUnlock()
	sp.End()
	db.finishTxn(t.session, true)
	if enqErr != nil {
		return fmt.Errorf("engine: transaction applied but not durable: %w", enqErr)
	}
	if seq != 0 {
		wsp := tr.Start("wal_wait")
		wstart := time.Now()
		werr := db.log.WaitDurable(seq)
		mWALWaitSeconds.Observe(time.Since(wstart).Nanoseconds())
		wsp.End()
		if werr != nil {
			return fmt.Errorf("engine: transaction applied but not durable: %w", werr)
		}
	}
	db.foldBehind()
	return nil
}

// commitTxnSerial commits a transaction that buffered PK-less inserts:
// publish under the write lock and fold before releasing it, so base
// storage already carries the rows when readers at newer snapshots are
// admitted. The durability wait still happens outside every lock.
func (db *Database) commitTxnSerial(ctx context.Context, t *Txn) error {
	db.mu.Lock()
	if db.closed.Load() {
		db.mu.Unlock()
		db.txns.Abort(t.tx)
		db.finishTxn(t.session, false)
		return ErrClosed
	}
	tr := trace.FromContext(ctx)
	sp := tr.Start("commit")
	seq, enqErr := db.publishCommit(t.tx)
	if enqErr == nil {
		db.foldLocked()
	}
	db.mu.Unlock()
	sp.End()
	db.finishTxn(t.session, true)
	if enqErr != nil {
		return fmt.Errorf("engine: transaction applied but not durable: %w", enqErr)
	}
	if seq != 0 {
		wsp := tr.Start("wal_wait")
		wstart := time.Now()
		werr := db.log.WaitDurable(seq)
		mWALWaitSeconds.Observe(time.Since(wstart).Nanoseconds())
		wsp.End()
		if werr != nil {
			return fmt.Errorf("engine: transaction applied but not durable: %w", werr)
		}
	}
	return nil
}

// publishCommit makes a transaction's writes visible: under the commit
// lock the manager stamps every claimed version with the next timestamp
// while this callback enqueues the atomic WAL commit record and appends
// the fold work item — so commit-timestamp order, WAL order and fold
// order all agree. A transaction with no writes commits vacuously
// without burning a timestamp. Caller holds db.mu.RLock, which excludes
// the fold and checkpoints but not other committers.
func (db *Database) publishCommit(t *txn.Txn) (seq uint64, err error) {
	if t.Writes() == 0 {
		db.txns.Abort(t)
		return 0, nil
	}
	ops := db.collectCommitOps(t)
	db.txns.Commit(t, func(ts uint64) {
		if len(ops) == 0 {
			return // every written table was dropped mid-transaction
		}
		if db.log != nil {
			seq, err = db.log.Enqueue(&wal.Record{Kind: wal.RecTxnCommit, Txn: ops})
		}
		db.pendingMu.Lock()
		db.pending = append(db.pending, pendingCommit{ts: ts, tables: ops})
		db.pendingMu.Unlock()
	})
	return seq, err
}

// collectCommitOps assembles the physical per-table effect of a
// transaction from its write set: for every claimed key the key itself
// (DelPKs, skipped for pure inserts of previously absent keys — bulk
// loads must not pay a delete scan per batch) and, unless the claim is
// a tombstone, the final row image. Caller holds db.mu.RLock.
func (db *Database) collectCommitOps(t *txn.Txn) []wal.TxnTable {
	byTable := make(map[string]*wal.TxnTable)
	t.Pending(func(tb *txn.Table, pk, row []value.Value, fresh bool) {
		name := tb.Name()
		tt := byTable[name]
		if tt == nil {
			rt, err := db.runtime(name)
			if err != nil {
				return // table dropped after the claim; nothing to apply
			}
			tt = &wal.TxnTable{Name: name, Width: rt.entry.Schema.NumColumns(), PKWidth: len(pk)}
			byTable[name] = tt
		}
		if !fresh {
			tt.DelPKs = append(tt.DelPKs, pk)
		}
		if row != nil {
			tt.Rows = append(tt.Rows, row)
		}
	})
	t.Buffered(func(b *txn.BufferedInsert) {
		if _, err := db.runtime(b.Table); err != nil {
			return // table dropped after the insert buffered
		}
		tt := byTable[b.Table]
		if tt == nil {
			// PKWidth 0: a PK-less batch has no delete set.
			tt = &wal.TxnTable{Name: b.Table, Width: b.Width}
			byTable[b.Table] = tt
		}
		tt.Rows = append(tt.Rows, b.Rows...)
	})
	names := make([]string, 0, len(byTable))
	for name := range byTable {
		names = append(names, name)
	}
	sort.Strings(names)
	ops := make([]wal.TxnTable, 0, len(names))
	for _, name := range names {
		ops = append(ops, *byTable[name])
	}
	return ops
}

// pendingCommit is one committed transaction awaiting its fold into base
// storage.
type pendingCommit struct {
	ts     uint64
	tables []wal.TxnTable
}

// foldForceBacklog is the pending-commit depth at which a committer
// stops try-locking and takes the write lock outright: a waiting writer
// gates new read locks, so the fold is admitted even under a constant
// reader stream and the overlay stays bounded. Kept small: every
// unfolded commit pushes concurrent scans onto the merged (overlay-
// aware) path, so a deep backlog taxes every reader, while a forced
// fold of a few commits only stalls for the in-flight readers to drain.
const foldForceBacklog = 16

// foldBehind opportunistically folds pending commits after a commit
// released its locks: free databases fold immediately via TryLock, busy
// ones defer to a later commit, Vacuum or the next checkpoint — unless
// the backlog crossed foldForceBacklog, where the fold blocks.
func (db *Database) foldBehind() {
	db.pendingMu.Lock()
	backlog := len(db.pending)
	db.pendingMu.Unlock()
	if backlog == 0 {
		return
	}
	if backlog < foldForceBacklog {
		if db.mu.TryLock() {
			db.foldLocked()
			db.mu.Unlock()
		}
		return
	}
	db.mu.Lock()
	db.foldLocked()
	db.mu.Unlock()
}

// foldLocked applies every pending committed transaction to base storage
// in commit order, then prunes version chains no possible reader still
// needs (newest committed version both folded and visible to the oldest
// live snapshot). Callers hold db.mu.Lock, which excludes commits (they
// hold the read lock), so the pending list drains without racing new
// appends into the applied prefix.
func (db *Database) foldLocked() {
	db.pendingMu.Lock()
	pend := db.pending
	db.pending = nil
	db.pendingMu.Unlock()
	for i, pc := range pend {
		if err := db.applyCommitLocked(&pc); err != nil {
			// The overlay validated these rows at claim time, so this is
			// a base-storage invariant break (e.g. serial writes toggled
			// under live chains). Re-queue the unapplied suffix — the
			// chains keep serving correct reads — and surface via metric.
			mTxnFoldErrors.Inc()
			db.pendingMu.Lock()
			db.pending = append(pend[i:], db.pending...)
			db.pendingMu.Unlock()
			return
		}
		if pc.ts > db.foldedTS {
			db.foldedTS = pc.ts
		}
	}
	minActive := db.txns.MinActiveTS()
	for _, rt := range db.tables {
		if rt.ov != nil {
			rt.ov.Prune(db.foldedTS, minActive)
		}
	}
}

// applyCommitLocked folds one committed transaction into base storage.
func (db *Database) applyCommitLocked(pc *pendingCommit) error {
	for i := range pc.tables {
		tt := &pc.tables[i]
		rt, err := db.runtime(tt.Name)
		if err != nil {
			continue // dropped since the commit
		}
		if err := applyTxnTable(rt, tt); err != nil {
			return err
		}
	}
	return nil
}

// applyTxnTable applies one table's slice of a committed transaction to
// its base storage: delete every written key, then insert the final row
// images. Shared by the background fold (under db.mu.Lock) and WAL
// recovery; both record into a migration tail if one is installed, so an
// in-flight layout migration replays folded commits too.
func applyTxnTable(rt *tableRuntime, tt *wal.TxnTable) error {
	if len(tt.DelPKs) > 0 {
		pred := pkSetPred(rt.entry.Schema, tt.DelPKs)
		rt.store.Delete(pred)
		rt.recordTail(dmlOp{kind: query.Delete, pred: pred})
	}
	if len(tt.Rows) > 0 {
		if err := rt.store.Insert(tt.Rows); err != nil {
			return err
		}
		rt.recordTail(dmlOp{kind: query.Insert, rows: tt.Rows})
	}
	return nil
}

// pkSetPred builds the predicate matching exactly the given primary
// keys: IN for single-column keys, OR-of-AND equality for composite
// ones.
func pkSetPred(sch *schema.Table, pks [][]value.Value) expr.Predicate {
	pk := sch.PrimaryKey
	if len(pk) == 1 {
		vals := make([]value.Value, len(pks))
		for i, k := range pks {
			vals[i] = k[0]
		}
		return &expr.In{Col: pk[0], Vals: vals}
	}
	ors := make([]expr.Predicate, len(pks))
	for i, k := range pks {
		ands := make([]expr.Predicate, len(pk))
		for j, c := range pk {
			ands[j] = &expr.Comparison{Col: c, Op: expr.Eq, Val: k[j]}
		}
		ors[i] = &expr.And{Preds: ands}
	}
	return &expr.Or{Preds: ors}
}

// Vacuum folds every pending committed transaction into base storage and
// prunes version chains no live snapshot can still need. The migration
// scheduler calls it alongside delta-merge compaction; it is also safe
// to call directly at any time.
func (db *Database) Vacuum() {
	db.mu.Lock()
	db.foldLocked()
	db.mu.Unlock()
}

// SetSerialWrites forces auto-commit DML through the legacy single-
// write-lock path instead of the MVCC overlay, and makes explicit
// transactions hold a global gate from Begin to Commit/Rollback — one
// write transaction at a time, across its client round trips, which is
// how a lock-based engine provides multi-statement atomicity without
// version chains. This is the baseline the transactional
// concurrent-clients bench compares against. Toggle only on a quiesced
// database (no open transactions, overlay folded): serial writes mutate
// base storage in place underneath any surviving version chains. In
// this mode auto-commit reads block behind open write transactions, so
// a server embedding the engine must size its worker pool above the
// concurrent reader count or a blocked reader can hold the slot the
// gate holder needs to finish.
func (db *Database) SetSerialWrites(on bool) { db.serialWrites.Store(on) }

// TxnStats is a point-in-time summary of transaction activity. Counters
// are process-wide instruments (shared across databases in one process,
// like every hs_ metric).
type TxnStats struct {
	Active    int64
	Begins    int64
	Commits   int64
	Aborts    int64
	Conflicts int64
}

// TxnStats reports the transaction counters surfaced in /status and
// the REPL's \stats.
func (db *Database) TxnStats() TxnStats {
	return TxnStats{
		Active:    mTxnActive.Value(),
		Begins:    mTxnBegins.Value(),
		Commits:   mTxnCommits.Value(),
		Aborts:    mTxnAborts.Value(),
		Conflicts: mTxnConflicts.Value(),
	}
}

// mvccCapable reports whether a table's DML runs through the MVCC
// overlay: it needs a primary key (versions are keyed by it) and a
// storage that answers point PK lookups — which every built-in layout
// with a primary key provides, across migrations.
func (rt *tableRuntime) mvccCapable() bool {
	if rt.ov == nil {
		return false
	}
	_, ok := rt.store.(pkLookuper)
	return ok
}

// useMVCCDML decides the write path of one auto-commit DML statement.
func (db *Database) useMVCCDML(table string) bool {
	if db.serialWrites.Load() {
		return false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, err := db.runtime(table)
	return err == nil && rt.mvccCapable()
}

// autoCommitRetries bounds the internal first-updater-wins retry loop of
// auto-commit DML: a single statement is its own transaction, so a
// conflict can be retried transparently against the newer state instead
// of surfacing an abort the client would just replay.
const autoCommitRetries = 100

// backoffConflict pauses between internal conflict retries: yields
// first, then sub-millisecond sleeps, so a hot key degrades into short
// waits instead of a spin.
func backoffConflict(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	d := time.Duration(attempt) * 20 * time.Microsecond
	if d > time.Millisecond {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// execAutoTxnDML runs one auto-commit DML statement as a single-
// statement transaction on the MVCC overlay: claim under the read lock,
// publish, wait for durability, retry internally on conflict. Concurrent
// statements on disjoint rows proceed in parallel; they only share the
// brief commit critical section and the WAL's group commit.
func (db *Database) execAutoTxnDML(ctx context.Context, tr *trace.Trace, q *query.Query) (*Result, error) {
	for attempt := 0; ; attempt++ {
		db.mu.RLock()
		if db.closed.Load() {
			db.mu.RUnlock()
			return nil, ErrClosed
		}
		rt, err := db.runtime(q.Table)
		if err != nil {
			db.mu.RUnlock()
			return nil, err
		}
		if !rt.mvccCapable() {
			// The table was re-created without a primary key between the
			// route decision and here; fall back to the serial path.
			db.mu.RUnlock()
			return db.execSerialDML(ctx, tr, q)
		}
		sp := tr.Start("apply")
		t := db.txns.Begin()
		res, err := db.applyTxnDML(rt, t, q)
		var seq uint64
		var enqErr error
		if err == nil {
			seq, enqErr = db.publishCommit(t)
		} else {
			db.txns.Abort(t)
		}
		db.mu.RUnlock()
		sp.End()
		if err != nil {
			if IsConflict(err) {
				mTxnConflicts.Inc()
				if attempt < autoCommitRetries && ctx.Err() == nil {
					backoffConflict(attempt)
					continue
				}
			}
			return nil, err
		}
		if enqErr != nil {
			return nil, fmt.Errorf("engine: %s applied but not durable: %w", q.Kind, enqErr)
		}
		if seq != 0 {
			wsp := tr.Start("wal_wait")
			wstart := time.Now()
			werr := db.log.WaitDurable(seq)
			mWALWaitSeconds.Observe(time.Since(wstart).Nanoseconds())
			wsp.End()
			if werr != nil {
				return nil, fmt.Errorf("engine: %s applied but not durable: %w", q.Kind, werr)
			}
		}
		sp.AddRowsOut(int64(res.Affected))
		db.foldBehind()
		return res, nil
	}
}

// execTxnDML runs one DML statement inside an explicit transaction: the
// statement claims its rows and returns — nothing reaches base storage
// or the WAL until Commit. Any error (conflict or plain failure) aborts
// the whole transaction, releasing every claim; the abort reason sticks
// until Rollback.
func (db *Database) execTxnDML(tr *trace.Trace, etx *Txn, q *query.Query) (*Result, error) {
	if err := etx.usable(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	if db.closed.Load() {
		db.mu.RUnlock()
		return nil, ErrClosed
	}
	rt, err := db.runtime(q.Table)
	var res *Result
	switch {
	case err != nil:
	case rt.mvccCapable():
		sp := tr.Start("apply")
		res, err = db.applyTxnDML(rt, etx.tx, q)
		sp.End()
	case rt.ov == nil && q.Kind == query.Insert:
		// PK-less table: no primary key means no chain to claim and no
		// row another transaction could conflict on, so inserts simply
		// buffer in the transaction and commit through the serialized
		// (write-lock) path — see commitTxn.
		sp := tr.Start("apply")
		res, err = txnBufferInsert(rt, etx.tx, q)
		sp.End()
	default:
		// Genuinely unsupported overlay path: UPDATE/DELETE need a key to
		// version (PK-less), or the storage lost point-PK lookups.
		err = fmt.Errorf("%w: %s on table %q inside a transaction (no primary key to version rows by)", ErrUnsupported, q.Kind, q.Table)
	}
	db.mu.RUnlock()
	if err != nil {
		if IsConflict(err) {
			mTxnConflicts.Inc()
		}
		etx.fail(err)
		return nil, err
	}
	return res, nil
}

// execSerialDML is the legacy single-write-lock DML path, kept for
// tables without a primary key (nothing to hang version chains off) and
// as the SetSerialWrites bench baseline. It folds first so base storage
// is current before being mutated in place.
func (db *Database) execSerialDML(ctx context.Context, tr *trace.Trace, q *query.Query) (*Result, error) {
	if db.serialWrites.Load() {
		// Baseline mode: auto-commit writes may not land in the middle
		// of an open (gate-holding) transaction's window.
		db.txnGate.RLock()
		defer db.txnGate.RUnlock()
	}
	var seq uint64
	sp := tr.Start("apply")
	db.mu.Lock()
	if db.closed.Load() {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.foldLocked()
	res, seq, err := db.execDML(q)
	db.mu.Unlock()
	sp.End()
	// Group commit: the record was enqueued in apply order under the
	// write lock; the durability wait happens outside it, so concurrent
	// writers share one fsync and readers are never blocked on disk.
	if err == nil && seq != 0 {
		wsp := tr.Start("wal_wait")
		wstart := time.Now()
		if werr := db.log.WaitDurable(seq); werr != nil {
			err = fmt.Errorf("engine: %s applied but not durable: %w", q.Kind, werr)
		}
		mWALWaitSeconds.Observe(time.Since(wstart).Nanoseconds())
		wsp.End()
	}
	if err == nil {
		sp.AddRowsOut(int64(res.Affected))
	}
	return res, err
}

// applyTxnDML runs one DML statement as claims on rt's overlay for
// transaction t. Matching for UPDATE/DELETE happens at t's snapshot;
// primary-key uniqueness (INSERT, key-moving UPDATE) is checked against
// current reality — the overlay's newest committed state, else base
// storage — mirroring the stores' own checks. Conflicts surface wrapping
// txn.ErrConflict. Caller holds db.mu.RLock, so base storage is stable
// (folds and legacy writes hold the write lock).
func (db *Database) applyTxnDML(rt *tableRuntime, t *txn.Txn, q *query.Query) (*Result, error) {
	sch := rt.entry.Schema
	hp := rt.store.(pkLookuper)
	switch q.Kind {
	case query.Insert:
		return txnInsert(rt, sch, hp, t, q)
	case query.Update:
		return db.txnUpdate(rt, sch, hp, t, q)
	case query.Delete:
		return db.txnDelete(rt, sch, t, q)
	}
	return nil, fmt.Errorf("engine: bad DML kind %v", q.Kind)
}

// txnBufferInsert queues an insert into a PK-less table inside an
// explicit transaction: rows are coerced and validated now (statement
// errors must surface at the statement), then wait in the transaction
// until commit applies them to base storage atomically.
func txnBufferInsert(rt *tableRuntime, t *txn.Txn, q *query.Query) (*Result, error) {
	sch := rt.entry.Schema
	coerced := make([][]value.Value, len(q.Rows))
	for i, row := range q.Rows {
		cr, err := sch.CoerceRow(row)
		if err != nil {
			return nil, err
		}
		if err := sch.ValidateRow(cr); err != nil {
			return nil, err
		}
		coerced[i] = cr
	}
	t.BufferInsert(sch.Name, sch.NumColumns(), coerced)
	return &Result{Affected: len(coerced)}, nil
}

func txnInsert(rt *tableRuntime, sch *schema.Table, hp pkLookuper, t *txn.Txn, q *query.Query) (*Result, error) {
	coerced := make([][]value.Value, len(q.Rows))
	batch := make(map[string]struct{}, len(q.Rows))
	for i, row := range q.Rows {
		cr, err := sch.CoerceRow(row)
		if err != nil {
			return nil, err
		}
		if err := sch.ValidateRow(cr); err != nil {
			return nil, err
		}
		pk := sch.PKValues(cr)
		key := value.TupleKey(pk)
		if _, dup := batch[key]; dup {
			return nil, fmt.Errorf("engine: duplicate primary key %v within insert batch in table %q", pk, sch.Name)
		}
		batch[key] = struct{}{}
		coerced[i] = cr
	}
	for _, cr := range coerced {
		pk := sch.PKValues(cr)
		cur, chained := rt.ov.VisibleForWrite(t, pk)
		if (chained && cur != nil) || (!chained && hp.HasPK(pk)) {
			return nil, fmt.Errorf("engine: duplicate primary key %v in table %q", pk, sch.Name)
		}
		// When no chain exists the key has no live base row either (the
		// HasPK check above), so the new chain carries no pre-image.
		if err := rt.ov.Claim(t, pk, cr, nil); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(coerced)}, nil
}

func (db *Database) txnUpdate(rt *tableRuntime, sch *schema.Table, hp pkLookuper, t *txn.Txn, q *query.Query) (*Result, error) {
	// Validate assignments up front, mirroring the stores' strict checks.
	for col, v := range q.Set {
		if col < 0 || col >= sch.NumColumns() {
			return nil, fmt.Errorf("engine: update column %d out of range in %q", col, sch.Name)
		}
		c := sch.Columns[col]
		if v.IsNull() {
			if !c.Nullable {
				return nil, fmt.Errorf("engine: column %q of table %q is NOT NULL", c.Name, sch.Name)
			}
			continue
		}
		if v.Type() != c.Type {
			return nil, fmt.Errorf("engine: column %q of table %q expects %s, got %s", c.Name, sch.Name, c.Type, v.Type())
		}
	}
	olds := db.matchForWrite(rt, t, q.Pred)
	if len(olds) == 0 {
		return &Result{}, nil
	}
	pkChanged := false
	for _, k := range sch.PrimaryKey {
		if _, ok := q.Set[k]; ok {
			pkChanged = true
			break
		}
	}
	news := make([][]value.Value, len(olds))
	for i, old := range olds {
		nr := make([]value.Value, len(old))
		copy(nr, old)
		for c, v := range q.Set {
			nr[c] = v
		}
		news[i] = nr
	}
	if pkChanged {
		// Key-moving updates pre-validate their targets against current
		// reality; a target occupied by any live row — including one this
		// statement also moves — is rejected, like the stores do.
		targets := make(map[string]struct{}, len(news))
		for i, nr := range news {
			npk := sch.PKValues(nr)
			nkey := value.TupleKey(npk)
			if _, dup := targets[nkey]; dup {
				return nil, fmt.Errorf("engine: update would assign duplicate primary key %v to multiple rows in %q", npk, sch.Name)
			}
			targets[nkey] = struct{}{}
			if nkey == value.TupleKey(sch.PKValues(olds[i])) {
				continue
			}
			cur, chained := rt.ov.VisibleForWrite(t, npk)
			if (chained && cur != nil) || (!chained && hp.HasPK(npk)) {
				return nil, fmt.Errorf("engine: update would duplicate primary key %v in table %q", npk, sch.Name)
			}
		}
	}
	for i, old := range olds {
		opk := sch.PKValues(old)
		if pkChanged {
			npk := sch.PKValues(news[i])
			if value.TupleKey(opk) != value.TupleKey(npk) {
				// Key move: tombstone the old key, claim the new one.
				if err := rt.ov.Claim(t, opk, nil, old); err != nil {
					return nil, err
				}
				if err := rt.ov.Claim(t, npk, news[i], nil); err != nil {
					return nil, err
				}
				continue
			}
		}
		if err := rt.ov.Claim(t, opk, news[i], old); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(olds)}, nil
}

func (db *Database) txnDelete(rt *tableRuntime, sch *schema.Table, t *txn.Txn, q *query.Query) (*Result, error) {
	olds := db.matchForWrite(rt, t, q.Pred)
	for _, old := range olds {
		if err := rt.ov.Claim(t, sch.PKValues(old), nil, old); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(olds)}, nil
}

// matchForWrite collects (copies of) the rows matching pred at t's
// snapshot, merged across base storage and the overlay. A matched row
// that came from base IS the key's base row — chains created from it use
// it as the pre-image older snapshots keep reading. Caller holds
// db.mu.RLock.
func (db *Database) matchForWrite(rt *tableRuntime, t *txn.Txn, pred expr.Predicate) [][]value.Value {
	view := db.tableView(rt, t.BeginTS, t)
	var olds [][]value.Value
	mergedScan(rt, view, pred, nil, func(row []value.Value) bool {
		cp := make([]value.Value, len(row))
		copy(cp, row)
		olds = append(olds, cp)
		return true
	})
	return olds
}

// stmtSnap carries one read statement's snapshot: the timestamp it reads
// at and the explicit transaction it runs in (nil outside one, so only
// committed versions are visible).
type stmtSnap struct {
	ts uint64
	tx *txn.Txn
}

// overlayView is one statement's materialized view of a table's version
// overlay: base rows whose primary key appears in masked are superseded
// (the overlay owns those keys), and rows lists every full-width row the
// overlay contributes at the statement's snapshot. The view is built
// once per statement under the read lock and is immune to concurrent
// claims and commits: they only ever add versions newer than the
// snapshot.
type overlayView struct {
	masked map[string]struct{}
	rows   [][]value.Value
}

// tableView builds the statement-level view of rt's overlay. nil means
// the overlay contributes nothing and base storage alone IS the snapshot
// — the common case every vectorized/parallel fast path keys off.
// Caller holds db.mu.RLock (the fold, which moves overlay contents into
// base, holds the write lock, so base+overlay stay consistent for the
// whole statement).
func (db *Database) tableView(rt *tableRuntime, ts uint64, tx *txn.Txn) *overlayView {
	if rt.ov == nil {
		// PK-less tables have no overlay, but a transaction reading its
		// own buffered inserts must see them (read-your-writes); they are
		// invisible to everyone else until commit folds them into base.
		if tx != nil {
			if rows := tx.BufferedRows(rt.entry.Schema.Name); len(rows) > 0 {
				return &overlayView{rows: rows}
			}
		}
		return nil
	}
	if rt.ov.Len() == 0 {
		return nil
	}
	hp, ok := rt.store.(pkLookuper)
	if !ok {
		return nil
	}
	v := &overlayView{masked: make(map[string]struct{})}
	// Delta (not Snapshot): only chains whose visible version diverges
	// from the folded base state reach the view, so an overlay holding
	// nothing but live claims yields nil and reads keep the fast path.
	rt.ov.Delta(ts, db.foldedTS, tx, func(pk, row []value.Value, visible bool) {
		if hp.HasPK(pk) {
			v.masked[value.TupleKey(pk)] = struct{}{}
		}
		if visible {
			v.rows = append(v.rows, row)
		}
	})
	if len(v.masked) == 0 && len(v.rows) == 0 {
		return nil
	}
	return v
}

// mergedScan is the serial base scan merged with a statement's overlay
// view: superseded base rows are skipped, then the overlay's visible
// rows are emitted through the same predicate. With a nil view it is
// exactly the base scan. When a view is present the projection is
// widened to include the primary key (rows are indexed by absolute
// column position either way, and overlay rows always carry full width),
// so callers' column indexing is unaffected.
func mergedScan(rt *tableRuntime, view *overlayView, pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	if view == nil {
		rt.store.Scan(pred, cols, fn)
		return
	}
	sch := rt.entry.Schema
	scanCols := cols
	if scanCols != nil {
		scanCols = unionCols(scanCols, sch.PrimaryKey)
	}
	pkbuf := make([]value.Value, len(sch.PrimaryKey))
	stopped := false
	rt.store.Scan(pred, scanCols, func(row []value.Value) bool {
		for i, c := range sch.PrimaryKey {
			pkbuf[i] = row[c]
		}
		if _, ok := view.masked[value.TupleKey(pkbuf)]; ok {
			return true
		}
		if !fn(row) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, row := range view.rows {
		if pred != nil && !pred.Matches(row) {
			continue
		}
		if !fn(row) {
			return
		}
	}
}
