package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func begin(t *testing.T, db *Database) *Txn {
	t.Helper()
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func idEq(id int64) *expr.Comparison {
	return &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)}
}

func amountOf(t *testing.T, db *Database, id int64) (float64, bool) {
	t.Helper()
	res, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales", Pred: idEq(id)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		return 0, false
	}
	return res.Rows[0][2].Float(), true
}

func TestTxnCommitVisibility(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	tx := begin(t, db)
	if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
		Pred: idEq(3), Set: map[int]value.Value{2: value.NewDouble(999)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(&query.Query{Kind: query.Insert, Table: "sales",
		Rows: [][]value.Value{salesRow(100)}}); err != nil {
		t.Fatal(err)
	}

	// Inside: the transaction reads its own writes.
	res, err := tx.Exec(&query.Query{Kind: query.Select, Table: "sales", Pred: idEq(3)})
	if err != nil || len(res.Rows) != 1 || res.Rows[0][2].Float() != 999 {
		t.Fatalf("own update invisible inside txn: %v %v", res, err)
	}
	// Outside: nothing is visible before commit.
	if amt, ok := amountOf(t, db, 3); !ok || amt != 3 {
		t.Fatalf("uncommitted update leaked: %v %v", amt, ok)
	}
	if _, ok := amountOf(t, db, 100); ok {
		t.Fatal("uncommitted insert leaked")
	}

	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tx.CommitTS() == 0 {
		t.Fatal("commit timestamp not set")
	}
	if amt, ok := amountOf(t, db, 3); !ok || amt != 999 {
		t.Fatalf("committed update invisible: %v %v", amt, ok)
	}
	if _, ok := amountOf(t, db, 100); !ok {
		t.Fatal("committed insert invisible")
	}
	// Counts reconcile after commit.
	res = mustExec(t, db, &query.Query{Kind: query.Select, Table: "sales"})
	if len(res.Rows) != 11 {
		t.Fatalf("row count after commit = %d, want 11", len(res.Rows))
	}
}

func TestTxnRollbackDiscardsEverything(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 10)
	before := visibleState(t, db, "sales")
	tx := begin(t, db)
	for _, q := range []*query.Query{
		{Kind: query.Insert, Table: "sales", Rows: [][]value.Value{salesRow(50)}},
		{Kind: query.Update, Table: "sales", Pred: idEq(1), Set: map[int]value.Value{2: value.NewDouble(-1)}},
		{Kind: query.Delete, Table: "sales", Pred: idEq(2)},
	} {
		if _, err := tx.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := visibleState(t, db, "sales"); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatal("rollback left traces")
	}
	// Finished transactions refuse further statements.
	if _, err := tx.Exec(&query.Query{Kind: query.Select, Table: "sales"}); err == nil {
		t.Fatal("statement accepted after rollback")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal("second rollback should be a no-op")
	}
}

func TestTxnConflictOneWinner(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	t1, t2 := begin(t, db), begin(t, db)
	upd := func(v float64) *query.Query {
		return &query.Query{Kind: query.Update, Table: "sales",
			Pred: idEq(5), Set: map[int]value.Value{2: value.NewDouble(v)}}
	}
	if _, err := t1.Exec(upd(111)); err != nil {
		t.Fatal(err)
	}
	// Second updater loses immediately (no waiting).
	_, err := t2.Exec(upd(222))
	if !IsConflict(err) {
		t.Fatalf("overlapping update: %v", err)
	}
	// The loser is aborted; commit reports the abort reason.
	if err := t2.Commit(context.Background()); err == nil || !IsConflict(err) {
		t.Fatalf("commit of conflicted txn: %v", err)
	}
	if err := t1.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if amt, _ := amountOf(t, db, 5); amt != 111 {
		t.Fatalf("winner's write lost: %v", amt)
	}
}

func TestTxnDisjointWritersBothCommit(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 20)
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, err := db.Begin(context.Background())
			if err != nil {
				errs[w] = err
				return
			}
			if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
				Pred: idEq(int64(w)), Set: map[int]value.Value{2: value.NewDouble(float64(1000 + w))}}); err != nil {
				errs[w] = err
				tx.Rollback()
				return
			}
			errs[w] = tx.Commit(context.Background())
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("disjoint writer %d failed: %v", w, err)
		}
	}
	for w := 0; w < writers; w++ {
		if amt, _ := amountOf(t, db, int64(w)); amt != float64(1000+w) {
			t.Fatalf("writer %d's update lost: %v", w, amt)
		}
	}
}

func TestTxnSnapshotReadsAreStable(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	reader := begin(t, db)
	sum := func() float64 {
		res, err := reader.Exec(&query.Query{Kind: query.Aggregate, Table: "sales",
			Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].Float()
	}
	before := sum()
	// A concurrent writer commits mid-transaction.
	mustExec(t, db, &query.Query{Kind: query.Update, Table: "sales",
		Set: map[int]value.Value{2: value.NewDouble(0)}})
	if after := sum(); after != before {
		t.Fatalf("snapshot read moved: %v -> %v", before, after)
	}
	reader.Rollback()
	// A fresh statement sees the new state.
	res := mustExec(t, db, &query.Query{Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}}})
	if res.Rows[0][0].Float() != 0 {
		t.Fatalf("post-commit read stale: %v", res.Rows[0][0])
	}
}

func TestTxnPKlessTable(t *testing.T) {
	db := New()
	sch := schema.MustNew("nopk", []schema.Column{
		{Name: "a", Type: value.Bigint, Nullable: true},
	})
	if err := db.CreateTable(sch, catalog.RowStore); err != nil {
		t.Fatal(err)
	}

	// BEGIN…INSERT…COMMIT on a PK-less table buffers and commits.
	tx := begin(t, db)
	if _, err := tx.Exec(&query.Query{Kind: query.Insert, Table: "nopk",
		Rows: [][]value.Value{{value.NewBigint(1)}, {value.NewBigint(2)}}}); err != nil {
		t.Fatalf("PK-less insert rejected inside a transaction: %v", err)
	}
	// Read-your-writes inside the transaction…
	res, err := tx.Exec(&query.Query{Kind: query.Select, Table: "nopk"})
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("buffered rows invisible to own txn: %v %v", res, err)
	}
	// …but invisible to everyone else before commit.
	out := mustExec(t, db, &query.Query{Kind: query.Select, Table: "nopk"})
	if len(out.Rows) != 0 {
		t.Fatalf("uncommitted PK-less insert leaked: %d rows", len(out.Rows))
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	out = mustExec(t, db, &query.Query{Kind: query.Select, Table: "nopk"})
	if len(out.Rows) != 2 {
		t.Fatalf("committed PK-less insert: got %d rows, want 2", len(out.Rows))
	}

	// Rollback discards the buffer.
	tx2 := begin(t, db)
	if _, err := tx2.Exec(&query.Query{Kind: query.Insert, Table: "nopk",
		Rows: [][]value.Value{{value.NewBigint(3)}}}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	out = mustExec(t, db, &query.Query{Kind: query.Select, Table: "nopk"})
	if len(out.Rows) != 2 {
		t.Fatalf("rollback left traces: %d rows", len(out.Rows))
	}

	// UPDATE/DELETE have no key to version by — typed unsupported error.
	tx3 := begin(t, db)
	defer tx3.Rollback()
	_, err = tx3.Exec(&query.Query{Kind: query.Delete, Table: "nopk", Pred: idEq(1)})
	if !IsUnsupported(err) {
		t.Fatalf("PK-less delete in txn: got %v, want ErrUnsupported", err)
	}

	// Reads of PK-less tables are fine inside a transaction.
	tx4 := begin(t, db)
	defer tx4.Rollback()
	if _, err := tx4.Exec(&query.Query{Kind: query.Select, Table: "nopk"}); err != nil {
		t.Fatalf("PK-less read rejected: %v", err)
	}
}

func TestTxnStatementErrorAborts(t *testing.T) {
	db := newDB(t, catalog.RowStore, 5)
	tx := begin(t, db)
	if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
		Pred: idEq(1), Set: map[int]value.Value{2: value.NewDouble(7)}}); err != nil {
		t.Fatal(err)
	}
	// Duplicate PK fails the statement and aborts the transaction.
	if _, err := tx.Exec(&query.Query{Kind: query.Insert, Table: "sales",
		Rows: [][]value.Value{salesRow(2)}}); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := tx.Exec(&query.Query{Kind: query.Select, Table: "sales"}); err == nil {
		t.Fatal("statement accepted after abort")
	}
	if err := tx.Commit(context.Background()); err == nil {
		t.Fatal("commit of aborted txn succeeded")
	}
	// The earlier update must be gone.
	if amt, _ := amountOf(t, db, 1); amt != 1 {
		t.Fatalf("aborted txn leaked its update: %v", amt)
	}
	// The claims are released: a new writer proceeds.
	mustExec(t, db, &query.Query{Kind: query.Update, Table: "sales",
		Pred: idEq(1), Set: map[int]value.Value{2: value.NewDouble(42)}})
}

func TestTxnPKChangeAndDelete(t *testing.T) {
	for _, lay := range layoutSpecs() {
		t.Run(lay.name, func(t *testing.T) {
			db := New()
			if err := db.CreateTableWithLayout(salesSchema(), lay.store, lay.spec); err != nil {
				t.Fatal(err)
			}
			rows := make([][]value.Value, 0, 10)
			for i := 0; i < 10; i++ {
				rows = append(rows, salesRow(int64(i)))
			}
			mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})

			tx := begin(t, db)
			// Move key 7 to 707, delete 3, insert 300.
			for _, q := range []*query.Query{
				{Kind: query.Update, Table: "sales", Pred: idEq(7), Set: map[int]value.Value{0: value.NewBigint(707)}},
				{Kind: query.Delete, Table: "sales", Pred: idEq(3)},
				{Kind: query.Insert, Table: "sales", Rows: [][]value.Value{salesRow(300)}},
			} {
				if _, err := tx.Exec(q); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(context.Background()); err != nil {
				t.Fatal(err)
			}
			db.Vacuum()
			if _, ok := amountOf(t, db, 7); ok {
				t.Fatal("moved key still present")
			}
			for _, id := range []int64{707, 300} {
				if _, ok := amountOf(t, db, id); !ok {
					t.Fatalf("key %d missing after commit", id)
				}
			}
			if _, ok := amountOf(t, db, 3); ok {
				t.Fatal("deleted key still present")
			}
			res := mustExec(t, db, &query.Query{Kind: query.Select, Table: "sales"})
			if len(res.Rows) != 10 {
				t.Fatalf("row count = %d, want 10", len(res.Rows))
			}
		})
	}
}

func TestTxnEmptyCommitBurnsNoTimestamp(t *testing.T) {
	db := newDB(t, catalog.RowStore, 3)
	before := db.txns.ReadTS()
	tx := begin(t, db)
	if _, err := tx.Exec(&query.Query{Kind: query.Select, Table: "sales"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := db.txns.ReadTS(); got != before {
		t.Fatalf("read-only commit advanced the clock: %d -> %d", before, got)
	}
}

// TestLongScanAndWriterDoNotBlock is the tentpole non-blocking
// guarantee: a long analytical aggregate and a committing writer make
// progress concurrently (the writer never waits for the scan; the scan
// never sees a torn commit).
func TestLongScanAndWriterDoNotBlock(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 50000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: repeated aggregates
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := db.Exec(&query.Query{Kind: query.Aggregate, Table: "sales",
				Aggs: []agg.Spec{{Func: agg.Sum, Col: 3}}})
			if err != nil {
				t.Error(err)
				return
			}
			_ = res
		}
	}()
	// Writer: 200 transactional updates while scans run. Measure that
	// commits complete promptly (they'd take seconds if scans held the
	// global read lock against them).
	start := time.Now()
	for i := 0; i < 200; i++ {
		tx, err := db.Begin(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
			Pred: idEq(int64(i)), Set: map[int]value.Value{2: value.NewDouble(float64(-i))}}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if elapsed > 30*time.Second {
		t.Fatalf("200 commits under scan load took %v", elapsed)
	}
	for i := 0; i < 200; i++ {
		if amt, ok := amountOf(t, db, int64(i)); !ok || amt != float64(-i) {
			t.Fatalf("write %d lost: %v %v", i, amt, ok)
		}
	}
}

func TestVacuumPrunesFoldedChains(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	for i := 0; i < 10; i++ {
		tx := begin(t, db)
		if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
			Pred: idEq(int64(i)), Set: map[int]value.Value{2: value.NewDouble(1)}}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	db.Vacuum()
	db.mu.RLock()
	rt, err := db.runtime("sales")
	var left int
	if err == nil && rt.ov != nil {
		left = rt.ov.Len()
	}
	db.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("%d chains survived vacuum with no live snapshots", left)
	}
}

// TestSerialWritesTxnGate covers the single-RW-lock baseline mode
// (SetSerialWrites): an open transaction holds the global gate, so
// auto-commit reads block until it finishes — and the gate is released
// on every exit path (commit, rollback, statement-failure abort), so
// the engine never wedges.
func TestSerialWritesTxnGate(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	db.SetSerialWrites(true)
	defer db.SetSerialWrites(false)

	read := func() chan error {
		done := make(chan error, 1)
		go func() {
			_, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales", Pred: idEq(1)})
			done <- err
		}()
		return done
	}
	exits := []struct {
		name string
		end  func(tx *Txn)
	}{
		{"commit", func(tx *Txn) {
			if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "sales",
				Pred: idEq(2), Set: map[int]value.Value{2: value.NewDouble(42)}}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(context.Background()); err != nil {
				t.Fatal(err)
			}
		}},
		{"rollback", func(tx *Txn) {
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		}},
		{"statement failure", func(tx *Txn) {
			if _, err := tx.Exec(&query.Query{Kind: query.Update, Table: "nope",
				Pred: idEq(2), Set: map[int]value.Value{2: value.NewDouble(42)}}); err == nil {
				t.Fatal("update on missing table succeeded")
			}
			tx.Rollback()
		}},
	}
	for _, exit := range exits {
		tx := begin(t, db)
		done := read()
		select {
		case err := <-done:
			t.Fatalf("%s: read finished with open write transaction (err=%v)", exit.name, err)
		case <-time.After(50 * time.Millisecond):
		}
		exit.end(tx)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s: gated read failed: %v", exit.name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: read still blocked after transaction ended — gate leaked", exit.name)
		}
	}
}
