package engine

import (
	"fmt"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/colstore"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/rowstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// verticalStorage splits a table's attributes into a row-store partition
// (OLTP attributes) and a column-store partition (aggregated attributes).
// Both partitions replicate the primary key; queries spanning both
// partitions are answered by a primary-key join, exactly the rewrite the
// paper describes for vertical partitioning (Figure 3).
type verticalStorage struct {
	sch  *schema.Table
	spec *catalog.VerticalSpec

	rowPart *rowstore.Table // projection of spec.RowCols
	colPart *colstore.Table // projection of spec.ColCols

	rowFwd map[int]int // table column -> rowPart column
	colFwd map[int]int // table column -> colPart column
}

// newVerticalStorage builds the two projected partitions.
func newVerticalStorage(sch *schema.Table, spec *catalog.VerticalSpec) (*verticalStorage, error) {
	if err := (&catalog.PartitionSpec{Vertical: spec}).Validate(sch); err != nil {
		return nil, err
	}
	rsSchema, err := sch.Project(sch.Name+"$rs", spec.RowCols)
	if err != nil {
		return nil, err
	}
	csSchema, err := sch.Project(sch.Name+"$cs", spec.ColCols)
	if err != nil {
		return nil, err
	}
	if len(rsSchema.PrimaryKey) == 0 || len(csSchema.PrimaryKey) == 0 {
		return nil, fmt.Errorf("engine: vertical partitions of %q must retain the primary key", sch.Name)
	}
	v := &verticalStorage{
		sch:     sch,
		spec:    spec,
		rowPart: rowstore.New(rsSchema),
		colPart: colstore.New(csSchema),
		rowFwd:  make(map[int]int, len(spec.RowCols)),
		colFwd:  make(map[int]int, len(spec.ColCols)),
	}
	for i, c := range spec.RowCols {
		v.rowFwd[c] = i
	}
	for i, c := range spec.ColCols {
		v.colFwd[c] = i
	}
	return v, nil
}

func (v *verticalStorage) Rows() int { return v.rowPart.Rows() }

func (v *verticalStorage) Insert(rows [][]value.Value) error {
	// Validate the whole batch — schema, existing-key collisions (the
	// row partition is authoritative for the PK) and duplicates within
	// the batch — before touching either partition, so a failing INSERT
	// is atomic.
	for _, row := range rows {
		if err := v.sch.ValidateRow(row); err != nil {
			return err
		}
	}
	if err := checkInsertPKs(v.sch, rows, v.HasPK); err != nil {
		return err
	}
	for _, row := range rows {
		rrow := make([]value.Value, len(v.spec.RowCols))
		for i, c := range v.spec.RowCols {
			rrow[i] = row[c]
		}
		crow := make([]value.Value, len(v.spec.ColCols))
		for i, c := range v.spec.ColCols {
			crow[i] = row[c]
		}
		if err := v.rowPart.Insert([][]value.Value{rrow}); err != nil {
			return err
		}
		if err := v.colPart.Insert([][]value.Value{crow}); err != nil {
			// Keep partitions consistent: roll the row partition back.
			pk := v.rowPart.Schema().PKValues(rrow)
			v.rowPart.Delete(pkPredicate(v.rowPart.Schema().PrimaryKey, pk))
			return err
		}
	}
	return nil
}

// pkPredicate builds col=val conjunctions over the given columns.
func pkPredicate(cols []int, key []value.Value) expr.Predicate {
	preds := make([]expr.Predicate, len(cols))
	for i, c := range cols {
		preds[i] = &expr.Comparison{Col: c, Op: expr.Eq, Val: key[i]}
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return &expr.And{Preds: preds}
}

// coverage reports which partition, if any, contains all the given table
// columns; -1 = neither.
const (
	partRow  = 0
	partCol  = 1
	partNone = -1
)

func (v *verticalStorage) coverage(cols []int) int {
	inRow, inCol := true, true
	for _, c := range cols {
		if _, ok := v.rowFwd[c]; !ok {
			inRow = false
		}
		if _, ok := v.colFwd[c]; !ok {
			inCol = false
		}
	}
	switch {
	case inRow:
		return partRow
	case inCol:
		return partCol
	default:
		return partNone
	}
}

// neededCols unions projection and predicate columns.
func neededCols(cols []int, pred expr.Predicate) []int {
	set := map[int]struct{}{}
	for _, c := range cols {
		set[c] = struct{}{}
	}
	for _, c := range expr.ColumnSet(pred) {
		set[c] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// Scan streams matching rows. When the referenced columns fit a single
// partition it scans that partition alone; otherwise it reconstructs full
// tuples by joining the partitions on the primary key (the cost the paper
// charges queries that span a vertical split).
func (v *verticalStorage) Scan(pred expr.Predicate, cols []int, fn func(row []value.Value) bool) {
	if cols == nil {
		cols = allCols(v.sch.NumColumns())
	}
	need := neededCols(cols, pred)
	scratch := make([]value.Value, v.sch.NumColumns())
	switch v.coverage(need) {
	case partRow:
		rpred, _ := expr.Remap(pred, v.rowFwd)
		v.rowPart.Scan(rpred, func(rid int, prow []value.Value) bool {
			for i, c := range v.spec.RowCols {
				scratch[c] = prow[i]
			}
			return fn(scratch)
		})
	case partCol:
		// Vectorized path: batch-scan only the needed columns of the
		// column partition instead of materializing every partition
		// column row-at-a-time.
		cpred, _ := expr.Remap(pred, v.colFwd)
		localCols := make([]int, len(need))
		for i, c := range need {
			localCols[i] = v.colFwd[c]
		}
		v.colPart.ScanBatches(cpred, localCols, func(rids []int32, colVals [][]value.Value) bool {
			for k := range rids {
				for j, c := range need {
					scratch[c] = colVals[j][k]
				}
				if !fn(scratch) {
					return false
				}
			}
			return true
		})
	default:
		v.scanJoined(pred, fn, scratch)
	}
}

// scanJoined reconstructs full-width tuples via a PK join: the row
// partition drives, the column partition is probed per key (tuple
// reconstruction on the column store side).
func (v *verticalStorage) scanJoined(pred expr.Predicate, fn func(row []value.Value) bool, scratch []value.Value) {
	pkRow := v.rowPart.Schema().PrimaryKey
	key := make([]value.Value, len(pkRow))
	v.rowPart.Scan(nil, func(rid int, prow []value.Value) bool {
		for i, c := range v.spec.RowCols {
			scratch[c] = prow[i]
		}
		for i, k := range pkRow {
			key[i] = prow[k]
		}
		crid, ok := v.colPart.LookupPK(key)
		if !ok {
			return true // partition inconsistency; skip defensively
		}
		crow := v.colPart.Get(crid)
		for i, c := range v.spec.ColCols {
			scratch[c] = crow[i]
		}
		if pred != nil && !pred.Matches(scratch) {
			return true
		}
		return fn(scratch)
	})
}

// Aggregate pushes the aggregation into a single partition when all
// referenced columns live there (the common case after the advisor's
// vertical split: keyfigures and group-bys in the column partition);
// otherwise it accumulates over PK-joined tuples.
func (v *verticalStorage) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result {
	need := expr.ColumnSet(pred)
	for _, s := range specs {
		if s.Col >= 0 {
			need = append(need, s.Col)
		}
	}
	need = append(need, groupBy...)
	remapInto := func(fwd map[int]int) ([]agg.Spec, []int, expr.Predicate, bool) {
		rs := make([]agg.Spec, len(specs))
		for i, s := range specs {
			if s.Col < 0 {
				rs[i] = s
				continue
			}
			n, ok := fwd[s.Col]
			if !ok {
				return nil, nil, nil, false
			}
			rs[i] = agg.Spec{Func: s.Func, Col: n}
		}
		gb := make([]int, len(groupBy))
		for i, c := range groupBy {
			n, ok := fwd[c]
			if !ok {
				return nil, nil, nil, false
			}
			gb[i] = n
		}
		p, ok := expr.Remap(pred, fwd)
		if !ok {
			return nil, nil, nil, false
		}
		return rs, gb, p, true
	}
	switch v.coverage(need) {
	case partCol:
		if rs, gb, p, ok := remapInto(v.colFwd); ok {
			return v.colPart.AggregateExec(rs, gb, p, ex)
		}
	case partRow:
		if rs, gb, p, ok := remapInto(v.rowFwd); ok {
			return v.rowPart.AggregateExec(rs, gb, p, ex)
		}
	}
	// Spanning aggregate: PK-join scan with generic accumulation,
	// polling stop every 1024 joined rows.
	res := agg.NewResult(specs, groupBy)
	res.SetOutputTypes(v.sch.ColTypes())
	key := make([]value.Value, len(groupBy))
	cols := append([]int{}, need...)
	stop := ex.StopHook()
	visited := 0
	v.Scan(pred, cols, func(row []value.Value) bool {
		if stop != nil {
			visited++
			if visited%scanCancelBatch == 0 && stop() {
				return false
			}
		}
		var g *agg.Group
		if len(groupBy) > 0 {
			for i, c := range groupBy {
				key[i] = row[c]
			}
			g = res.GroupFor(key)
		} else {
			g = res.Global()
		}
		for i, s := range specs {
			if s.Col < 0 {
				g.Accs[i].AddCount(1)
			} else {
				g.Accs[i].Add(row[s.Col])
			}
		}
		return true
	})
	return res
}

// Update routes assignments to the partitions holding the assigned
// columns. When the predicate is fully contained in one partition and all
// assignments target that same partition, the update executes there
// directly (this is the fast path the advisor's vertical split creates for
// OLTP attributes). Otherwise matching primary keys are collected first
// and each partition is updated by key.
func (v *verticalStorage) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	rowSet := map[int]value.Value{}
	colSet := map[int]value.Value{}
	for c, val := range set {
		if c < 0 || c >= v.sch.NumColumns() {
			return 0, fmt.Errorf("engine: update column %d out of range in %q", c, v.sch.Name)
		}
		if n, ok := v.rowFwd[c]; ok {
			rowSet[n] = val
		}
		if n, ok := v.colFwd[c]; ok {
			colSet[n] = val
		}
	}
	predCols := expr.ColumnSet(pred)
	// Fast path: everything in the row partition.
	if v.coverage(predCols) == partRow && len(colSet) == 0 {
		rpred, _ := expr.Remap(pred, v.rowFwd)
		return v.rowPart.Update(rpred, rowSet)
	}
	// Fast path: everything in the column partition.
	if v.coverage(predCols) == partCol && len(rowSet) == 0 {
		cpred, _ := expr.Remap(pred, v.colFwd)
		return v.colPart.Update(cpred, colSet)
	}
	// General path: find matching keys, then update both partitions by key.
	keys := v.matchingPKs(pred)
	// A PK-changing update is applied key by key below, so collisions
	// must be rejected up front — both against rows outside the matched
	// set and between the new keys of this statement — or a mid-loop
	// failure would leave the partitions partially updated.
	pkAssigned := false
	for _, k := range v.sch.PrimaryKey {
		if _, ok := set[k]; ok {
			pkAssigned = true
		}
	}
	if pkAssigned {
		seen := make(map[string]struct{}, len(keys))
		for _, key := range keys {
			newKey := make([]value.Value, len(key))
			unchanged := true
			for i, k := range v.sch.PrimaryKey {
				if nv, ok := set[k]; ok {
					newKey[i] = nv
					if !value.Equal(nv, key[i]) {
						unchanged = false
					}
				} else {
					newKey[i] = key[i]
				}
			}
			ks := value.TupleKey(newKey)
			if _, dup := seen[ks]; dup {
				return 0, fmt.Errorf("engine: update would assign duplicate primary key %v to multiple rows in %q", newKey, v.sch.Name)
			}
			seen[ks] = struct{}{}
			if unchanged {
				continue // the row keeps its own key
			}
			if _, exists := v.rowPart.LookupPK(newKey); exists {
				return 0, fmt.Errorf("engine: update would duplicate primary key %v in table %q", newKey, v.sch.Name)
			}
		}
	}
	rowPK := v.rowPart.Schema().PrimaryKey
	colPK := v.colPart.Schema().PrimaryKey
	for _, key := range keys {
		if len(rowSet) > 0 {
			if _, err := v.rowPart.Update(pkPredicate(rowPK, key), rowSet); err != nil {
				return 0, err
			}
		}
		if len(colSet) > 0 {
			if _, err := v.colPart.Update(pkPredicate(colPK, key), colSet); err != nil {
				return 0, err
			}
		}
	}
	return len(keys), nil
}

// matchingPKs returns the primary keys of rows matching pred, scanning the
// cheapest partition that covers the predicate.
func (v *verticalStorage) matchingPKs(pred expr.Predicate) [][]value.Value {
	var keys [][]value.Value
	predCols := expr.ColumnSet(pred)
	pkTable := v.sch.PrimaryKey
	collect := func(row []value.Value) bool {
		key := make([]value.Value, len(pkTable))
		for i, k := range pkTable {
			key[i] = row[k]
		}
		keys = append(keys, key)
		return true
	}
	need := append(append([]int{}, predCols...), pkTable...)
	v.Scan(pred, need, collect)
	return keys
}

func (v *verticalStorage) Delete(pred expr.Predicate) int {
	keys := v.matchingPKs(pred)
	rowPK := v.rowPart.Schema().PrimaryKey
	colPK := v.colPart.Schema().PrimaryKey
	for _, key := range keys {
		v.rowPart.Delete(pkPredicate(rowPK, key))
		v.colPart.Delete(pkPredicate(colPK, key))
	}
	return len(keys)
}

// HasPK reports whether a live row carries the given primary-key values
// (the row partition is authoritative; keys are in table PK order,
// which projection preserves).
func (v *verticalStorage) HasPK(key []value.Value) bool {
	_, ok := v.rowPart.LookupPK(key)
	return ok
}

// CreateIndex indexes the column in the row partition when it lives there.
func (v *verticalStorage) CreateIndex(col int) {
	if n, ok := v.rowFwd[col]; ok {
		v.rowPart.CreateIndex(n)
	}
}

// SupportsIndex reports whether the column lives in the row partition,
// where a secondary index can be materialized.
func (v *verticalStorage) SupportsIndex(col int) bool {
	_, ok := v.rowFwd[col]
	return ok
}

func (v *verticalStorage) DeltaRows() int { return v.colPart.DeltaRows() }

// Compact merges the column partition's delta and reclaims row-partition
// tombstones.
func (v *verticalStorage) Compact() {
	v.rowPart.Compact()
	v.colPart.Merge()
}

func (v *verticalStorage) MemoryBytes() int {
	return v.rowPart.MemoryBytes() + v.colPart.MemoryBytes()
}

func (v *verticalStorage) persist(enc *wal.Encoder) {
	persistRowTable(enc, v.rowPart)
	persistColTable(enc, v.colPart)
}

func (v *verticalStorage) restore(dec *wal.Decoder) error {
	rp, err := restoreRowTable(dec, v.rowPart.Schema())
	if err != nil {
		return err
	}
	cp, err := restoreColTable(dec, v.colPart.Schema())
	if err != nil {
		return err
	}
	v.rowPart, v.colPart = rp, cp
	return nil
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
