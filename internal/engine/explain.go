package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hybridstore/internal/metrics"
	"hybridstore/internal/plan"
	"hybridstore/internal/query"
	"hybridstore/internal/trace"
	"hybridstore/internal/value"
)

// ExplainAnalyzeContext executes q with tracing armed and returns the
// trace — not the statement's rows — as a result set: one row per
// execution stage plus synthetic "storage", "parallel" and "total" rows.
// Because the output is an ordinary Result it travels through the wire
// protocol and driver unchanged.
func (db *Database) ExplainAnalyzeContext(ctx context.Context, q *query.Query) (*Result, error) {
	tr := trace.New()
	res, err := db.ExecContext(trace.WithTrace(ctx, tr), q)
	if err != nil {
		return nil, err
	}
	return explainResult(tr, res), nil
}

// ExplainContext plans q without executing it and renders the chosen
// plan tree — one operator per row with the planner's cost and
// cardinality estimates — as a result set, so EXPLAIN travels through
// the wire protocol and driver like any query. Tree shape is conveyed
// by two-space indentation of the operator column.
func (db *Database) ExplainContext(ctx context.Context, q *query.Query) (*Result, error) {
	p, err := db.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return ExplainPlanResult(p), nil
}

// explainPlanCols is the column set of a plain EXPLAIN result.
var explainPlanCols = []string{"id", "operator", "est_rows", "est_cost_ns", "detail"}

// ExplainPlanResult renders a plan tree as an EXPLAIN result set.
func ExplainPlanResult(p *plan.Plan) *Result {
	out := &Result{Cols: explainPlanCols}
	plan.Walk(p.Root, func(n plan.Node, depth int) {
		est := n.Estimate()
		out.Rows = append(out.Rows, []value.Value{
			value.NewBigint(int64(n.ID())),
			value.NewVarchar(strings.Repeat("  ", depth) + n.Kind()),
			value.NewBigint(int64(est.Rows)),
			value.NewBigint(int64(est.CostNs)),
			value.NewVarchar(n.Detail()),
		})
	})
	out.Affected = len(out.Rows)
	return out
}

// explainCols is the column set of an EXPLAIN ANALYZE result.
var explainCols = []string{"stage", "time_ns", "rows_in", "rows_out", "detail"}

func explainRow(stage string, d time.Duration, rowsIn, rowsOut int64, detail string) []value.Value {
	return []value.Value{
		value.NewVarchar(stage),
		value.NewBigint(d.Nanoseconds()),
		value.NewBigint(rowsIn),
		value.NewBigint(rowsOut),
		value.NewVarchar(detail),
	}
}

// explainResult renders a finished trace as a result set.
func explainResult(tr *trace.Trace, res *Result) *Result {
	out := &Result{Cols: explainCols, Duration: res.Duration}
	for _, s := range tr.Spans() {
		out.Rows = append(out.Rows, explainRow(s.Stage(), s.Duration(), s.RowsIn(), s.RowsOut(), s.DetailString()))
	}
	if c := tr.CountersString(); c != "" {
		out.Rows = append(out.Rows, explainRow("storage", 0, 0, 0, c))
	}
	if morsels, runs := tr.Morsels(); runs > 0 {
		busy := tr.WorkerBusy()
		var bparts []string
		var total time.Duration
		for _, wb := range busy {
			bparts = append(bparts, fmt.Sprintf("w%d=%s", wb.Worker, wb.Busy.Round(time.Microsecond)))
			total += wb.Busy
		}
		detail := fmt.Sprintf("morsels=%d runs=%d workers=%d busy[%s]",
			morsels, runs, len(busy), strings.Join(bparts, " "))
		out.Rows = append(out.Rows, explainRow("parallel", total, 0, 0, detail))
	}
	out.Rows = append(out.Rows, explainRow("total", res.Duration, 0, int64(resultRows(res)), ""))
	out.Affected = len(out.Rows)
	return out
}

// MetricsResult renders the process-wide metrics registry as a result
// set (metric name, value) so SHOW METRICS works over any transport.
// Histograms expand to _count/_sum/_p50/_p99 rows.
func MetricsResult() *Result {
	rows := metrics.Default().Rows()
	res := &Result{Cols: []string{"metric", "value"}}
	for _, r := range rows {
		res.Rows = append(res.Rows, []value.Value{
			value.NewVarchar(r.Name),
			value.NewDouble(r.Value),
		})
	}
	res.Affected = len(res.Rows)
	return res
}
