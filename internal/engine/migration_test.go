package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// checkContents verifies a table holds exactly the expected id->amount
// mapping (column 0 -> column 2).
func checkContents(t *testing.T, db *Database, want map[int64]float64) {
	t.Helper()
	res, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales", Cols: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]float64{}
	for _, row := range res.Rows {
		got[row[0].Int()] = row[1].Float()
	}
	if len(got) != len(want) {
		t.Fatalf("row count: got %d want %d", len(got), len(want))
	}
	for id, amt := range want {
		if g, ok := got[id]; !ok || g != amt {
			t.Fatalf("id %d: got (%v, %v) want %v", id, g, ok, amt)
		}
	}
}

func TestMigrateLayoutBasic(t *testing.T) {
	for _, dir := range []struct {
		name     string
		from, to catalog.StoreKind
	}{
		{"RowToColumn", catalog.RowStore, catalog.ColumnStore},
		{"ColumnToRow", catalog.ColumnStore, catalog.RowStore},
	} {
		t.Run(dir.name, func(t *testing.T) {
			db := newDB(t, dir.from, 500)
			want := map[int64]float64{}
			for i := int64(0); i < 500; i++ {
				want[i] = float64(i)
			}
			if err := db.MigrateLayout("sales", dir.to, nil); err != nil {
				t.Fatal(err)
			}
			if e := db.Catalog().Table("sales"); e.Store != dir.to {
				t.Errorf("catalog store = %v, want %v", e.Store, dir.to)
			}
			if db.Migrating("sales") {
				t.Error("migration flag still set after completion")
			}
			checkContents(t, db, want)
		})
	}
}

func TestMigrateLayoutToPartitioned(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 2000)
	spec := &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(1500),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
	if err := db.MigrateLayout("sales", catalog.RowStore, spec); err != nil {
		t.Fatal(err)
	}
	e := db.Catalog().Table("sales")
	if e.Store != catalog.Partitioned || e.Partitioning == nil {
		t.Fatalf("catalog not updated: store=%v spec=%v", e.Store, e.Partitioning)
	}
	n, _ := db.Rows("sales")
	if n != 2000 {
		t.Errorf("rows after migration = %d", n)
	}
}

func TestMigrateLayoutErrors(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	if err := db.MigrateLayout("ghost", catalog.ColumnStore, nil); err == nil {
		t.Error("unknown table accepted")
	}
	// A second migration (or a blocking SetLayout) must be rejected while
	// one is in flight: install a tail by hand to simulate mid-flight.
	db.mu.Lock()
	rt, _ := db.runtime("sales")
	rt.tail = &migrationTail{}
	db.mu.Unlock()
	if err := db.MigrateLayout("sales", catalog.ColumnStore, nil); err == nil {
		t.Error("concurrent migration accepted")
	}
	if err := db.SetLayout("sales", catalog.ColumnStore, nil); err == nil {
		t.Error("SetLayout accepted during migration")
	}
	if !db.Migrating("sales") {
		t.Error("Migrating should report the in-flight tail")
	}
	db.mu.Lock()
	rt.tail = nil
	db.mu.Unlock()
}

func TestMigrateLayoutDroppedTable(t *testing.T) {
	db := newDB(t, catalog.RowStore, 10)
	db.mu.Lock()
	rt, _ := db.runtime("sales")
	db.mu.Unlock()
	// Drop the table between tail install and cutover by racing a
	// migration against DropTable; whatever interleaving occurs, the
	// engine must not panic and must end without a dangling tail.
	done := make(chan error, 1)
	go func() { done <- db.MigrateLayout("sales", catalog.ColumnStore, nil) }()
	db.DropTable("sales") //nolint:errcheck // either order is fine
	<-done
	if rt.tail != nil && db.Migrating("sales") {
		t.Error("dangling migration tail after drop")
	}
}

// TestMigrationStress is the -race stress test required by the online
// advisor work: concurrent scans, aggregates, inserts and updates run
// while a row->column and then a column->row migration is in flight. It
// asserts no write is lost and reads stay consistent before, during and
// after the atomic storage swap.
func TestMigrationStress(t *testing.T) {
	const (
		seedRows = 2000
		writers  = 4
		readers  = 4
	)
	db := newDB(t, catalog.RowStore, seedRows)

	var nextID atomic.Int64
	nextID.Store(seedRows)
	var updates atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: unique-key inserts plus point updates of seed rows.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%3 == 0 {
					// Point update: amount = -id for a seed row.
					id := int64((w*7919 + i) % seedRows)
					_, err := db.Exec(&query.Query{
						Kind: query.Update, Table: "sales",
						Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(id)},
						Set:  map[int]value.Value{2: value.NewDouble(-float64(id))},
					})
					if err != nil {
						t.Error(err)
						return
					}
					updates.Add(1)
				} else {
					id := nextID.Add(1) - 1
					_, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales",
						Rows: [][]value.Value{salesRow(id)}})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: scans and aggregates must always see a consistent table —
	// in particular COUNT(*) never exceeds the ids handed out and never
	// drops below the seeded rows.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				handedOut := nextID.Load()
				res, err := db.Exec(&query.Query{Kind: query.Aggregate, Table: "sales",
					Aggs: []agg.Spec{{Func: agg.Count, Col: -1}}})
				if err != nil {
					t.Error(err)
					return
				}
				n := res.Rows[0][0].Int()
				if n < seedRows || n > nextID.Load() {
					t.Errorf("inconsistent count %d (seed %d, handed out >= %d)", n, seedRows, handedOut)
					return
				}
				// Point select on a seed row: always exactly one match.
				sel, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales",
					Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(42)}})
				if err != nil {
					t.Error(err)
					return
				}
				if len(sel.Rows) != 1 {
					t.Errorf("point select matched %d rows", len(sel.Rows))
					return
				}
			}
		}()
	}

	// Let traffic build, then migrate row->column and back column->row
	// while the storm continues.
	time.Sleep(20 * time.Millisecond)
	if err := db.MigrateLayout("sales", catalog.ColumnStore, nil); err != nil {
		t.Fatal(err)
	}
	if e := db.Catalog().Table("sales"); e.Store != catalog.ColumnStore {
		t.Fatalf("store after first migration: %v", e.Store)
	}
	time.Sleep(20 * time.Millisecond)
	if err := db.MigrateLayout("sales", catalog.RowStore, nil); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// No lost writes: every handed-out id is present exactly once with
	// either its insert-time amount or its updated (negative) amount.
	total := nextID.Load()
	res, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales", Cols: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Rows)) != total {
		t.Fatalf("row count after migrations: got %d want %d", len(res.Rows), total)
	}
	seen := make(map[int64]bool, total)
	for _, row := range res.Rows {
		id, amt := row[0].Int(), row[1].Float()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if amt != float64(id) && amt != -float64(id) {
			t.Fatalf("id %d has amount %v, want %v or %v", id, amt, float64(id), -float64(id))
		}
	}
	for id := int64(0); id < total; id++ {
		if !seen[id] {
			t.Fatalf("lost row %d", id)
		}
	}
	if updates.Load() == 0 {
		t.Error("stress test executed no updates")
	}
}

// TestMigrationStressPartitioned migrates a plain column store into a
// horizontal hot/cold layout under concurrent inserts and verifies the
// routed partitions together hold every row.
func TestMigrationStressPartitioned(t *testing.T) {
	const seedRows = 1000
	db := newDB(t, catalog.ColumnStore, seedRows)
	var nextID atomic.Int64
	nextID.Store(seedRows)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := nextID.Add(1) - 1
				if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales",
					Rows: [][]value.Value{salesRow(id)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	spec := &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(seedRows),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
	if err := db.MigrateLayout("sales", catalog.RowStore, spec); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	total := nextID.Load()
	n, err := db.Rows("sales")
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != total {
		t.Fatalf("rows after partitioned migration: got %d want %d", n, total)
	}
	// Every id present exactly once across both partitions.
	res, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales", Cols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, total)
	for _, row := range res.Rows {
		if id := row[0].Int(); seen[id] {
			t.Fatalf("duplicate id %d", id)
		} else {
			seen[id] = true
		}
	}
	if int64(len(seen)) != total {
		t.Fatalf("distinct ids = %d, want %d", len(seen), total)
	}
}

// TestMigrateKeepsDeclaredIndexes verifies indexes declared in the
// catalog are re-materialized on the migration target where supported.
func TestMigrateKeepsDeclaredIndexes(t *testing.T) {
	db := newDB(t, catalog.RowStore, 100)
	if err := db.CreateIndex("sales", 1); err != nil {
		t.Fatal(err)
	}
	// Row -> column: index cannot materialize, declaration survives.
	if err := db.MigrateLayout("sales", catalog.ColumnStore, nil); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.SupportsIndex("sales", 1); ok {
		t.Error("column store claims index support")
	}
	if !db.Catalog().Table("sales").HasIndex(1) {
		t.Error("index declaration lost on row->column migration")
	}
	// Column -> row: the declared index re-materializes.
	if err := db.MigrateLayout("sales", catalog.RowStore, nil); err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.SupportsIndex("sales", 1); !ok {
		t.Error("row store should support the index")
	}
	res, err := db.Exec(&query.Query{Kind: query.Select, Table: "sales",
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Errorf("indexed select matched %d rows, want 25", len(res.Rows))
	}
}
