// Streaming bulk ingest: CopyRows appends one client batch to a table
// as a single WAL record — one group-commit fsync amortized over the
// whole frame instead of one per statement — while keeping exactly the
// durability and atomicity contract of single-statement INSERTs: the
// batch is applied all-or-nothing by the store's two-phase insert, and
// after a crash recovery replays either the whole batch or none of it.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hybridstore/internal/metrics"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// ErrUnsupported is the sentinel wrapped by statements the engine
// genuinely cannot execute (as opposed to statements that failed). The
// wire layer maps it to its own error code so drivers can distinguish
// "never retry this" from a plain SQL error.
var ErrUnsupported = errors.New("engine: unsupported operation")

// IsUnsupported reports whether err marks a genuinely unsupported
// statement (see ErrUnsupported).
func IsUnsupported(err error) bool { return errors.Is(err, ErrUnsupported) }

// IngestObserver is an optional extension of QueryObserver: observers
// that implement it receive every bulk-ingest batch with its row count,
// so the workload monitor can track ingest pressure per table and feed
// the adaptive delta-merge cadence.
type IngestObserver interface {
	ObserveIngest(table string, rows int)
}

// Bulk-ingest instruments. Batch granularity, not row granularity: the
// whole point of the path is that per-row costs collapse into per-batch
// ones.
var (
	mIngestBatches = metrics.Default().Counter("hs_ingest_batches_total",
		"bulk-ingest (COPY) batches applied")
	mIngestRows = metrics.Default().Counter("hs_ingest_rows_total",
		"rows applied through bulk ingest (COPY)")
	mIngestBatchRows = metrics.Default().Histogram("hs_ingest_batch_rows",
		"rows per bulk-ingest batch", "rows")
	mIngestSeconds = metrics.Default().Histogram("hs_ingest_batch_seconds",
		"bulk-ingest batch latency including the durability wait", "seconds")
)

// CopyRows appends one bulk-ingest batch to a table. The batch is
// atomic: every row is validated and the store's two-phase insert
// applies all rows or none, one WAL record covers the whole batch (so
// crash recovery can never surface a partial batch), and a single
// group-commit fsync — shared with concurrent writers — makes it
// durable before the call returns.
//
// COPY is an auto-commit operation; inside an explicit transaction it
// fails with ErrUnsupported (buffering a bulk load in a version overlay
// would defeat the point of the fast path). Rows whose primary key is
// claimed by a live uncommitted transaction are rejected like any other
// duplicate: such keys are invisible to base storage's uniqueness check
// but would collide if their owner commits.
func (db *Database) CopyRows(ctx context.Context, table string, rows [][]value.Value) (*Result, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if TxnFromContext(ctx) != nil {
		return nil, fmt.Errorf("%w: COPY inside an explicit transaction", ErrUnsupported)
	}
	if len(rows) == 0 {
		return &Result{}, nil
	}
	if db.serialWrites.Load() {
		// Baseline mode: bulk loads may not land in the middle of an open
		// (gate-holding) transaction's window, same as auto-commit DML.
		db.txnGate.RLock()
		defer db.txnGate.RUnlock()
	}
	start := time.Now()
	db.mu.Lock()
	if db.closed.Load() {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	rt, err := db.runtime(table)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	// Fold first: with every committed version in base storage, the
	// store's own primary-key check covers all committed reality and the
	// overlay only holds uncommitted claims (checked below).
	db.foldLocked()
	sch := rt.entry.Schema
	coerced := make([][]value.Value, len(rows))
	for i, row := range rows {
		cr, cerr := sch.CoerceRow(row)
		if cerr != nil {
			db.mu.Unlock()
			return nil, cerr
		}
		coerced[i] = cr
	}
	if rt.ov != nil {
		if claimed := rt.ov.UncommittedKeys(); len(claimed) > 0 {
			for _, cr := range coerced {
				pk := sch.PKValues(cr)
				if _, hit := claimed[value.TupleKey(pk)]; hit {
					db.mu.Unlock()
					return nil, fmt.Errorf("engine: duplicate primary key %v in table %q (claimed by a live transaction)", pk, table)
				}
			}
		}
	}
	if err := rt.store.Insert(coerced); err != nil {
		db.mu.Unlock()
		return nil, err
	}
	rt.recordTail(dmlOp{kind: query.Insert, rows: coerced})
	seq, err := db.enqueueDML(&wal.Record{
		Kind: wal.RecCopy, Table: table,
		Width: sch.NumColumns(), Rows: coerced,
	})
	db.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("engine: copy applied but not durable: %w", err)
	}
	// Group commit: the record was enqueued in apply order under the
	// write lock; the durability wait happens outside it, so concurrent
	// batches share one fsync.
	if seq != 0 {
		wstart := time.Now()
		werr := db.log.WaitDurable(seq)
		mWALWaitSeconds.Observe(time.Since(wstart).Nanoseconds())
		if werr != nil {
			return nil, fmt.Errorf("engine: copy applied but not durable: %w", werr)
		}
	}
	d := time.Since(start)
	mIngestBatches.Inc()
	mIngestRows.Add(int64(len(coerced)))
	mIngestBatchRows.Observe(int64(len(coerced)))
	mIngestSeconds.Observe(d.Nanoseconds())
	if obs := db.observer(); obs != nil {
		if io, ok := obs.(IngestObserver); ok {
			io.ObserveIngest(table, len(coerced))
		}
	}
	return &Result{Affected: len(coerced), Duration: d}, nil
}
