package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// visibleState returns the full table content sorted by primary key
// rendering, as a canonical comparable form.
func visibleState(t *testing.T, db *Database, table string) []string {
	t.Helper()
	res, err := db.Exec(&query.Query{Kind: query.Select, Table: table})
	if err != nil {
		t.Fatalf("select %s: %v", table, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		s := ""
		for _, v := range row {
			s += v.Type().String() + ":" + v.String() + "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func mustExec(t *testing.T, db *Database, q *query.Query) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("exec %s: %v", q, err)
	}
	return res
}

// testOptions keeps recovery tests fast: fsync on every group commit is
// the production default, but the tests exercise ordering and replay,
// not disk latency.
var testOptions = Options{NoSync: true}

func openTestDB(t *testing.T, dir string) *Database {
	t.Helper()
	db, err := OpenOptions(dir, testOptions)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return db
}

// layoutSpecs returns the three layouts the acceptance criteria name:
// plain row, plain column, and horizontal+vertical partitioned.
func layoutSpecs() []struct {
	name  string
	store catalog.StoreKind
	spec  *catalog.PartitionSpec
} {
	return []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"partitioned", catalog.Partitioned, &catalog.PartitionSpec{
			Horizontal: &catalog.HorizontalSpec{
				SplitCol: 1, SplitVal: value.NewInt(2),
				HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
			},
			Vertical: &catalog.VerticalSpec{RowCols: []int{0, 1, 4}, ColCols: []int{0, 2, 3}},
		}},
	}
}

// applyWorkload runs a mixed DML sequence: inserts, an update, a PK
// change, a split-column move and a delete.
func applyWorkload(t *testing.T, db *Database) {
	t.Helper()
	rows := make([][]value.Value, 0, 60)
	for i := 0; i < 60; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})
	mustExec(t, db, &query.Query{Kind: query.Update, Table: "sales",
		Pred: &expr.Comparison{Col: 3, Op: expr.Lt, Val: value.NewInt(3)},
		Set:  map[int]value.Value{2: value.NewDouble(123.5)}})
	mustExec(t, db, &query.Query{Kind: query.Update, Table: "sales",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)},
		Set:  map[int]value.Value{0: value.NewBigint(1007)}})
	mustExec(t, db, &query.Query{Kind: query.Update, Table: "sales",
		Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(5)},
		Set:  map[int]value.Value{1: value.NewInt(3)}})
	mustExec(t, db, &query.Query{Kind: query.Delete, Table: "sales",
		Pred: &expr.Between{Col: 0, Lo: value.NewBigint(20), Hi: value.NewBigint(29)}})
}

// TestRecoveryCrashAllLayouts is the core crash-recovery guarantee:
// after a crash (no checkpoint since the workload), Open must restore
// exactly the acknowledged state for all three layouts.
func TestRecoveryCrashAllLayouts(t *testing.T) {
	for _, lay := range layoutSpecs() {
		t.Run(lay.name, func(t *testing.T) {
			dir := t.TempDir()
			db := openTestDB(t, dir)
			if err := db.CreateTableWithLayout(salesSchema(), lay.store, lay.spec); err != nil {
				t.Fatal(err)
			}
			applyWorkload(t, db)

			// Reference: the same workload on a plain in-memory database.
			ref := New()
			if err := ref.CreateTableWithLayout(salesSchema(), lay.store, lay.spec); err != nil {
				t.Fatal(err)
			}
			applyWorkload(t, ref)
			want := visibleState(t, ref, "sales")

			if got := visibleState(t, db, "sales"); !reflect.DeepEqual(got, want) {
				t.Fatalf("durable db diverged from in-memory before crash")
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}

			re := openTestDB(t, dir)
			defer re.Close()
			if got := visibleState(t, re, "sales"); !reflect.DeepEqual(got, want) {
				t.Fatalf("layout %s: recovered state diverged\n got %d rows\nwant %d rows", lay.name, len(got), len(want))
			}
			e := re.Catalog().Table("sales")
			if e == nil || e.Store != lay.store || !e.Partitioning.Equal(lay.spec) {
				t.Fatalf("layout %s: catalog placement not recovered: %+v", lay.name, e)
			}
		})
	}
}

// TestRecoverySmoke is the CI smoke sequence: populate → checkpoint →
// more writes → crash with a truncated WAL → restart → verify that
// exactly the acknowledged prefix survived.
func TestRecoverySmoke(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales",
			Rows: [][]value.Value{salesRow(int64(i))}})
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 50; i++ {
		mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales",
			Rows: [][]value.Value{salesRow(int64(i))}})
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Tear the WAL mid-frame: the last insert becomes a torn,
	// unacknowledgeable record and must be dropped by recovery.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTestDB(t, dir)
	defer re.Close()
	n, err := re.Rows("sales")
	if err != nil {
		t.Fatal(err)
	}
	if n != 49 {
		t.Fatalf("recovered %d rows, want 49 (checkpointed 30 + 19 intact WAL inserts)", n)
	}
	// Every surviving row is a complete, acknowledged insert.
	for i := 0; i < 49; i++ {
		res := mustExec(t, re, &query.Query{Kind: query.Select, Table: "sales",
			Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(int64(i))}})
		if len(res.Rows) != 1 {
			t.Fatalf("row %d missing after recovery", i)
		}
	}
}

// TestRecoveryTruncatedWALPrefixes kills the log at every byte offset in
// the tail and checks each recovery yields a consistent prefix: the
// first m inserts, complete, for some m.
func TestRecoveryTruncatedWALPrefixes(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales",
			Rows: [][]value.Value{salesRow(int64(i))}})
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	lastRows := -1
	for cut := 0; cut < len(data); cut += 7 {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "wal.log"), data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re := openTestDB(t, cutDir)
		// A deep enough cut tears the create-table record itself — the
		// image of a crash before even the create was acknowledged — in
		// which case the table is legitimately absent (rows = 0).
		rows := 0
		if n, err := re.Rows("sales"); err == nil {
			rows = n
			// Rows must be the exact prefix 0..rows-1.
			for i := 0; i < rows; i++ {
				res := mustExec(t, re, &query.Query{Kind: query.Select, Table: "sales",
					Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(int64(i))}})
				if len(res.Rows) != 1 {
					t.Fatalf("cut %d: recovered %d rows but row %d missing", cut, rows, i)
				}
			}
		}
		if lastRows >= 0 && rows > lastRows {
			t.Fatalf("cut %d: recovered %d rows after shallower cut gave %d", cut, rows, lastRows)
		}
		lastRows = rows
		re.Close()
	}
}

// TestRecoveryDDL checks that DDL — index declarations, layout moves,
// drops — replays faithfully.
func TestRecoveryDDL(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	other := salesSchema().Clone("doomed")
	if err := db.CreateTable(other, catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales",
		Rows: [][]value.Value{salesRow(1), salesRow(2)}})
	if err := db.CreateIndex("sales", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.SetLayout("sales", catalog.ColumnStore, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	re := openTestDB(t, dir)
	defer re.Close()
	if re.Catalog().Table("doomed") != nil {
		t.Error("dropped table resurrected")
	}
	e := re.Catalog().Table("sales")
	if e == nil {
		t.Fatal("sales missing")
	}
	if e.Store != catalog.ColumnStore {
		t.Errorf("store = %v, want COLUMN", e.Store)
	}
	if !e.HasIndex(1) {
		t.Error("index declaration lost")
	}
	if n, _ := re.Rows("sales"); n != 2 {
		t.Errorf("rows = %d, want 2", n)
	}
}

// TestRecoveryAbortsInFlightMigration simulates a crash while a
// MigrateLayout was running: the WAL holds the DML executed during the
// migration but not the swap record (which is only logged after the
// cutover). Recovery must come back in the pre-migration layout with
// every acknowledged write applied.
func TestRecoveryAbortsInFlightMigration(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 40)
	for i := 0; i < 40; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})
	// Complete a migration (so the WAL contains its swap record), with a
	// write landing mid-flight in program order.
	mustExec(t, db, &query.Query{Kind: query.Update, Table: "sales",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(5)},
		Set:  map[int]value.Value{2: value.NewDouble(55.5)}})
	if err := db.MigrateLayout("sales", catalog.ColumnStore, nil); err != nil {
		t.Fatal(err)
	}
	want := visibleState(t, db, "sales")
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Rebuild the WAL without the swap record and anything after it —
	// the byte image of a crash just before the migration cut over.
	walPath := filepath.Join(dir, "wal.log")
	var recs []*wal.Record
	if _, err := wal.Recover(walPath, func(seq uint64, rec *wal.Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	swapAt := -1
	for i, rec := range recs {
		if rec.Kind == wal.RecSetLayout {
			swapAt = i
			break
		}
	}
	if swapAt < 0 {
		t.Fatal("no SET-LAYOUT record logged for the completed migration")
	}
	if err := os.Remove(walPath); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(walPath, 1, 0, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:swapAt] {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestDB(t, dir)
	defer re.Close()
	e := re.Catalog().Table("sales")
	if e == nil || e.Store != catalog.RowStore {
		t.Fatalf("in-flight migration not aborted: store %v, want ROW", e.Store)
	}
	if re.Migrating("sales") {
		t.Error("migration reported in flight after recovery")
	}
	if got := visibleState(t, re, "sales"); !reflect.DeepEqual(got, want) {
		t.Fatalf("aborted migration lost data: got %d rows, want %d", len(got), len(want))
	}
}

// TestCheckpointTruncatesWAL checks the checkpoint contract: log folded
// into the snapshot, WAL emptied, and a reopen needs no replay.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("WAL is %d bytes after checkpoint, want 0", st.Size())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestDB(t, dir)
	defer re.Close()
	if n, _ := re.Rows("sales"); n != 100 {
		t.Fatalf("rows after snapshot-only reopen = %d, want 100", n)
	}
}

// TestCheckpointStaleWALNotDoubleApplied covers the crash window between
// the snapshot rename and the log truncate: the stale WAL frames carry
// sequence numbers below the snapshot's cut and must be skipped, not
// re-applied (a double-applied insert would duplicate rows or trip the
// PK check).
func TestCheckpointStaleWALNotDoubleApplied(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales",
		Rows: [][]value.Value{salesRow(1), salesRow(2)}})
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	// Preserve the pre-checkpoint WAL bytes.
	walPath := filepath.Join(dir, "wal.log")
	staleWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Reopen (which checkpoints the replayed tail) and cleanly close,
	// then put the stale WAL back — the crash-window image.
	re := openTestDB(t, dir)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	re2 := openTestDB(t, dir)
	defer re2.Close()
	if n, _ := re2.Rows("sales"); n != 2 {
		t.Fatalf("rows = %d, want 2 (stale WAL double-applied?)", n)
	}
}

// TestColumnStoreFragmentsSurviveSnapshot checks the snapshot preserves
// the column store's main/delta split.
func TestColumnStoreFragmentsSurviveSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 0, 200)
	for i := 0; i < 200; i++ {
		rows = append(rows, salesRow(int64(i)))
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales", Rows: rows})
	if err := db.Compact("sales"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, &query.Query{Kind: query.Insert, Table: "sales",
		Rows: [][]value.Value{salesRow(500), salesRow(501), salesRow(502)}})
	before, err := db.DeltaRows("sales")
	if err != nil {
		t.Fatal(err)
	}
	if before != 3 {
		t.Fatalf("delta rows before close = %d, want 3", before)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestDB(t, dir)
	defer re.Close()
	after, err := re.DeltaRows("sales")
	if err != nil {
		t.Fatal(err)
	}
	if after != 3 {
		t.Fatalf("delta rows after reopen = %d, want 3 (main/delta split not preserved)", after)
	}
	if n, _ := re.Rows("sales"); n != 203 {
		t.Fatalf("rows = %d, want 203", n)
	}
}

// TestDurableConcurrentWriters drives parallel writers through the
// group-commit path and verifies every acknowledged row survives a
// crash.
func TestDurableConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenOptions(dir, Options{GroupCommit: 16, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				id := int64(w*1000 + i)
				_, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales",
					Rows: [][]value.Value{salesRow(id)}})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	re := openTestDB(t, dir)
	defer re.Close()
	if n, _ := re.Rows("sales"); n != writers*per {
		t.Fatalf("recovered %d rows, want %d", n, writers*per)
	}
}
