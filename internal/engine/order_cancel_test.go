package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func orderSchema() *schema.Table {
	return schema.MustNew("ord", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "note", Type: value.Varchar, Nullable: true},
	}, "id")
}

// orderLayouts builds the table under every layout the engine supports.
func orderLayouts(t *testing.T, rows [][]value.Value) map[string]*Database {
	t.Helper()
	layouts := map[string]func(db *Database, sch *schema.Table) error{
		"row":    func(db *Database, sch *schema.Table) error { return db.CreateTable(sch, catalog.RowStore) },
		"column": func(db *Database, sch *schema.Table) error { return db.CreateTable(sch, catalog.ColumnStore) },
		"horizontal": func(db *Database, sch *schema.Table) error {
			return db.CreateTableWithLayout(sch, catalog.Partitioned, &catalog.PartitionSpec{
				Horizontal: &catalog.HorizontalSpec{
					SplitCol: 0, SplitVal: value.NewBigint(50),
					HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
				},
			})
		},
		"vertical": func(db *Database, sch *schema.Table) error {
			return db.CreateTableWithLayout(sch, catalog.Partitioned, &catalog.PartitionSpec{
				Vertical: &catalog.VerticalSpec{RowCols: []int{0, 3}, ColCols: []int{0, 1, 2}},
			})
		},
	}
	out := map[string]*Database{}
	for name, mk := range layouts {
		db := New()
		if err := mk(db, orderSchema()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: rows}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = db
	}
	return out
}

func orderRows(n int) [][]value.Value {
	rows := make([][]value.Value, n)
	for i := range rows {
		note := value.NewVarchar(fmt.Sprintf("n%03d", (n-i)%7))
		if i%11 == 0 {
			note = value.Null(value.Varchar)
		}
		rows[i] = []value.Value{
			value.NewBigint(int64(i)),
			value.NewInt(int64(i % 5)),
			value.NewDouble(float64((i * 37) % 100)),
			note,
		}
	}
	return rows
}

func TestOrderByAllLayouts(t *testing.T) {
	const n = 100
	for name, db := range orderLayouts(t, orderRows(n)) {
		t.Run(name, func(t *testing.T) {
			// ORDER BY amount DESC, id ASC with LIMIT applied after the
			// sort.
			res, err := db.Exec(&query.Query{
				Kind: query.Select, Table: "ord",
				Cols:    []int{0},
				OrderBy: []query.Order{{Col: 2, Desc: true}, {Col: 0}},
				Limit:   10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 10 {
				t.Fatalf("limit after sort: %d rows", len(res.Rows))
			}
			// Recompute expected order directly.
			type pair struct {
				id     int64
				amount float64
			}
			all := make([]pair, n)
			for i := range all {
				all[i] = pair{int64(i), float64((i * 37) % 100)}
			}
			// Selection must equal a full stable sort's prefix.
			for i := 0; i < len(res.Rows)-1; i++ {
				// Verify pairwise ordering of the returned prefix.
				a, b := res.Rows[i][0].Int(), res.Rows[i+1][0].Int()
				av, bv := all[a].amount, all[b].amount
				if av < bv || (av == bv && a > b) {
					t.Fatalf("row %d out of order: (%d,%v) before (%d,%v)", i, a, av, b, bv)
				}
			}
			// ORDER BY a nullable column: NULLs first ascending.
			res, err = db.Exec(&query.Query{
				Kind: query.Select, Table: "ord",
				OrderBy: []query.Order{{Col: 3}, {Col: 0}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != n {
				t.Fatalf("rows = %d", len(res.Rows))
			}
			seenNonNull := false
			for _, row := range res.Rows {
				if row[3].IsNull() {
					if seenNonNull {
						t.Fatal("NULL after non-NULL ascending")
					}
				} else {
					seenNonNull = true
				}
			}
			// Aggregate ORDER BY on the group key, DESC.
			res, err = db.Exec(&query.Query{
				Kind: query.Aggregate, Table: "ord",
				Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}},
				GroupBy: []int{1},
				OrderBy: []query.Order{{Col: 1, Desc: true}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 5 {
				t.Fatalf("groups = %d", len(res.Rows))
			}
			for i := 0; i < len(res.Rows)-1; i++ {
				if value.Compare(res.Rows[i][0], res.Rows[i+1][0]) <= 0 {
					t.Fatalf("groups out of order at %d", i)
				}
			}
		})
	}
}

func TestOrderByJoin(t *testing.T) {
	db := New()
	if err := db.CreateTable(orderSchema(), catalog.ColumnStore); err != nil {
		t.Fatal(err)
	}
	dim := schema.MustNew("dim", []schema.Column{
		{Name: "g", Type: value.Integer},
		{Name: "label", Type: value.Varchar},
	}, "g")
	if err := db.CreateTable(dim, catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: orderRows(50)}); err != nil {
		t.Fatal(err)
	}
	var dimRows [][]value.Value
	for g := 0; g < 5; g++ {
		dimRows = append(dimRows, []value.Value{value.NewInt(int64(g)), value.NewVarchar(fmt.Sprintf("g%d", 4-g))})
	}
	if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "dim", Rows: dimRows}); err != nil {
		t.Fatal(err)
	}
	// Order the joined rows by the right table's label (combined index 5)
	// then left id.
	res, err := db.Exec(&query.Query{
		Kind: query.Select, Table: "ord",
		Join:    &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
		Cols:    []int{0, 5},
		OrderBy: []query.Order{{Col: 5}, {Col: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows)-1; i++ {
		c := value.Compare(res.Rows[i][1], res.Rows[i+1][1])
		if c > 0 || (c == 0 && res.Rows[i][0].Int() > res.Rows[i+1][0].Int()) {
			t.Fatalf("join rows out of order at %d", i)
		}
	}
}

func bigAnalyticsDB(t testing.TB, store catalog.StoreKind, n int) *Database {
	db := New()
	if err := db.CreateTable(orderSchema(), store); err != nil {
		t.Fatal(err)
	}
	batch := make([][]value.Value, 0, 4096)
	for i := 0; i < n; i++ {
		batch = append(batch, []value.Value{
			value.NewBigint(int64(i)),
			value.NewInt(int64(i % 64)),
			value.NewDouble(float64(i)),
			value.NewVarchar("payload"),
		})
		if len(batch) == cap(batch) {
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: batch}); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: batch}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact("ord"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecContextCancelAbortsScan verifies that a cancelled context
// aborts in-flight reads at a batch boundary on both store executors.
// The scan-started hook pins the interleaving — the read parks at its
// start until the cancel has landed — so the test asserts the abort
// deterministically instead of racing a wall-clock sleep against scan
// speed and tolerating "finished first" outcomes.
func TestExecContextCancelAbortsScan(t *testing.T) {
	defer SetScanStartedHook(nil)
	for _, store := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
		db := bigAnalyticsDB(t, store, 50_000)
		aggQ := &query.Query{
			Kind: query.Aggregate, Table: "ord",
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Min, Col: 0}, {Func: agg.Max, Col: 0}},
			GroupBy: []int{1},
			Pred:    &expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(0)},
		}
		selQ := &query.Query{Kind: query.Select, Table: "ord"}
		for name, q := range map[string]*query.Query{"aggregate": aggQ, "select": selQ} {
			// Pre-cancelled context: nothing runs.
			SetScanStartedHook(nil)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := db.ExecContext(ctx, q); !errors.Is(err, context.Canceled) {
				t.Fatalf("%v/%s pre-cancelled: err = %v", store, name, err)
			}
			// Cancel mid-flight: the hook signals the scan's start and
			// holds it there until the context dies, so by the time rows
			// flow the cancel is guaranteed to be observable at the first
			// batch boundary.
			started := make(chan struct{})
			SetScanStartedHook(func(hctx context.Context, table string) {
				select {
				case started <- struct{}{}:
				default:
				}
				select {
				case <-hctx.Done():
				case <-time.After(5 * time.Second): // safety: never wedge the suite
				}
			})
			ctx, cancel = context.WithCancel(context.Background())
			errCh := make(chan error, 1)
			go func() {
				_, err := db.ExecContext(ctx, q)
				errCh <- err
			}()
			select {
			case <-started:
			case <-time.After(5 * time.Second):
				t.Fatalf("%v/%s: scan never reached the started hook", store, name)
			}
			cancel()
			select {
			case err := <-errCh:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%v/%s: err = %v, want context.Canceled", store, name, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%v/%s: cancelled query did not return", store, name)
			}
		}
	}
}

func TestExecAfterCloseErrClosed(t *testing.T) {
	// In-memory database.
	db := New()
	if err := db.CreateTable(orderSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := db.Exec(&query.Query{Kind: query.Select, Table: "ord"})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("in-memory read after close: %v", err)
	}
	_, err = db.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: orderRows(1)})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("in-memory write after close: %v", err)
	}

	// Durable database.
	dir := t.TempDir()
	ddb, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ddb.CreateTable(orderSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	if _, err := ddb.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: orderRows(5)}); err != nil {
		t.Fatal(err)
	}
	if err := ddb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ddb.Exec(&query.Query{Kind: query.Insert, Table: "ord", Rows: orderRows(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("durable write after close: %v", err)
	}
	// Racing writers during Close either complete or get ErrClosed —
	// never a panic or a nil-map error.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stopCh := make(chan struct{})
	go func() {
		defer close(stopCh)
		for i := 0; ; i++ {
			_, err := re.Exec(&query.Query{
				Kind: query.Update, Table: "ord",
				Set:  map[int]value.Value{2: value.NewDouble(float64(i))},
				Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
			})
			if err != nil {
				if !errors.Is(err, ErrClosed) && !errors.Is(err, context.Canceled) {
					t.Errorf("racing update: %v", err)
				}
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	<-stopCh
}
