package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/value"
)

// TestParallelMixedDMLSoak hammers one database with concurrent writers
// (inserts, updates, deletes in disjoint PK ranges), readers running the
// morsel-parallel analytics mix on a forced 8-slot pool, and a
// migration goroutine cycling the table through layouts. There is no
// differential oracle here — interleaved DML makes results
// unverifiable — the assertions are that no statement errors and that
// the race detector stays quiet (run under -race in CI).
func TestParallelMixedDMLSoak(t *testing.T) {
	db := buildParDB(t, catalog.ColumnStore, nil)
	db.SetPool(exec.NewPool(8))

	rounds := 40
	if testing.Short() {
		rounds = 10
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	errCh := make(chan error, 8)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
		stopAll()
	}

	// Writers: each owns a disjoint PK range, so concurrent inserts
	// never collide on the primary key.
	for wkr := 0; wkr < 2; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + wkr)))
			base := int64(parRows + 100_000*(wkr+1))
			for n := int64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				rows := make([][]value.Value, 0, 8)
				for k := int64(0); k < 8; k++ {
					rows = append(rows, parRow(rng, base+n*8+k))
				}
				if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "par", Rows: rows}); err != nil {
					fail(fmt.Errorf("writer %d insert: %w", wkr, err))
					return
				}
				lo := base + rng.Int63n(n*8+1)
				if _, err := db.Exec(&query.Query{Kind: query.Update, Table: "par",
					Pred: &expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(lo + 16)},
					Set:  map[int]value.Value{3: value.NewDouble(float64(rng.Intn(1000)))},
				}); err != nil {
					fail(fmt.Errorf("writer %d update: %w", wkr, err))
					return
				}
				if n%4 == 3 {
					if _, err := db.Exec(&query.Query{Kind: query.Delete, Table: "par",
						Pred: &expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(lo + 4)},
					}); err != nil {
						fail(fmt.Errorf("writer %d delete: %w", wkr, err))
						return
					}
				}
			}
		}(wkr)
	}

	// Migration churn: cycle the layout while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		layouts := parLayouts()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l := layouts[i%len(layouts)]
			if err := db.SetLayout("par", l.store, l.spec); err != nil {
				fail(fmt.Errorf("migrate to %s: %w", l.name, err))
				return
			}
		}
	}()

	// Readers: the parallel analytics mix, rounds times each.
	queries := parQueries(7)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(r+i)%len(queries)]
				if _, err := db.Exec(q); err != nil {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
			}
			if r == 0 {
				stopAll() // first reader done ends the soak
			}
		}(r)
	}

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
