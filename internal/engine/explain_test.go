package engine

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// explainStage finds the first row of stage in an EXPLAIN ANALYZE result
// and returns its rows_out; ok=false when the stage is absent.
func explainStage(t *testing.T, res *Result, stage string) (rowsOut int64, detail string, ok bool) {
	t.Helper()
	if len(res.Cols) != 5 || res.Cols[0] != "stage" || res.Cols[3] != "rows_out" {
		t.Fatalf("unexpected explain columns %v", res.Cols)
	}
	for _, row := range res.Rows {
		if row[0].Varchar() == stage {
			return row[3].Int(), row[4].Varchar(), true
		}
	}
	return 0, "", false
}

// TestExplainAnalyzeDifferential runs scan, group-by and join statements
// under every storage layout twice — once plainly, once under EXPLAIN
// ANALYZE — and asserts the trace's reported row counts match the actual
// result row counts.
func TestExplainAnalyzeDifferential(t *testing.T) {
	dimSchema := schema.MustNew("regions", []schema.Column{
		{Name: "region", Type: value.Integer},
		{Name: "label", Type: value.Varchar},
	}, "region")

	layouts := []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"horizontal", catalog.Partitioned, horizontalSpec()},
		{"vertical", catalog.Partitioned, verticalSpec()},
	}

	queries := []struct {
		name  string
		stage string
		q     func() *query.Query
	}{
		{"scan", "scan", func() *query.Query {
			return &query.Query{
				Kind: query.Select, Table: "sales", Cols: []int{0, 2},
				Pred: &expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(2)},
			}
		}},
		{"group-by", "aggregate", func() *query.Query {
			return &query.Query{
				Kind: query.Aggregate, Table: "sales",
				Aggs:    []agg.Spec{{Func: agg.Count, Col: -1}, {Func: agg.Sum, Col: 2}},
				GroupBy: []int{1},
			}
		}},
		{"join", "join", func() *query.Query {
			return &query.Query{
				Kind: query.Aggregate, Table: "sales",
				Join:    &query.Join{Table: "regions", LeftCol: 1, RightCol: 0},
				Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}},
				GroupBy: []int{5 + 1}, // regions.label
			}
		}},
	}

	for _, lo := range layouts {
		t.Run(lo.name, func(t *testing.T) {
			db := New()
			if err := db.CreateTableWithLayout(salesSchema(), lo.store, lo.spec); err != nil {
				t.Fatal(err)
			}
			rows := make([][]value.Value, 0, 500)
			for i := 0; i < 500; i++ {
				rows = append(rows, salesRow(int64(i)))
			}
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "sales", Rows: rows}); err != nil {
				t.Fatal(err)
			}
			if err := db.CreateTable(dimSchema, catalog.RowStore); err != nil {
				t.Fatal(err)
			}
			dim := make([][]value.Value, 0, 4)
			for r := int64(0); r < 4; r++ {
				dim = append(dim, []value.Value{value.NewInt(r), value.NewVarchar(strings.Repeat("r", int(r)+1))})
			}
			if _, err := db.Exec(&query.Query{Kind: query.Insert, Table: "regions", Rows: dim}); err != nil {
				t.Fatal(err)
			}

			for _, qc := range queries {
				plain, err := db.Exec(qc.q())
				if err != nil {
					t.Fatalf("%s: %v", qc.name, err)
				}
				ex, err := db.ExplainAnalyzeContext(context.Background(), qc.q())
				if err != nil {
					t.Fatalf("%s explain: %v", qc.name, err)
				}
				got, _, ok := explainStage(t, ex, qc.stage)
				if !ok {
					t.Fatalf("%s: no %q stage in explain output %v", qc.name, qc.stage, ex.Rows)
				}
				if got != int64(len(plain.Rows)) {
					t.Errorf("%s: explain reports %d rows, actual result has %d", qc.name, got, len(plain.Rows))
				}
				total, _, ok := explainStage(t, ex, "total")
				if !ok || total != int64(len(plain.Rows)) {
					t.Errorf("%s: total row reports %d rows (ok=%v), want %d", qc.name, total, ok, len(plain.Rows))
				}
			}

			// Column-store layouts must surface storage counters (blocks
			// decoded vs zone-map-skipped, main/delta rows) in the trace.
			if lo.name == "column" {
				if err := db.Compact("sales"); err != nil {
					t.Fatal(err)
				}
				ex, err := db.ExplainAnalyzeContext(context.Background(), queries[0].q())
				if err != nil {
					t.Fatal(err)
				}
				_, detail, ok := explainStage(t, ex, "storage")
				if !ok {
					t.Fatalf("no storage counters row in explain output %v", ex.Rows)
				}
				if !strings.Contains(detail, "main_rows") {
					t.Errorf("storage counters %q missing main_rows", detail)
				}
			}
		})
	}
}

// TestExplainAnalyzeDML asserts DML statements report apply/wal_wait
// stages and affected-row counts.
func TestExplainAnalyzeDML(t *testing.T) {
	db := newDB(t, catalog.RowStore, 100)
	ex, err := db.ExplainAnalyzeContext(context.Background(), &query.Query{
		Kind: query.Update, Table: "sales",
		Set:  map[int]value.Value{2: value.NewDouble(1.5)},
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, ok := explainStage(t, ex, "apply")
	if !ok {
		t.Fatalf("no apply stage in %v", ex.Rows)
	}
	if got != 25 {
		t.Errorf("apply rows_out = %d, want 25", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the slow log writes from
// whichever goroutine ran the statement).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

// TestSlowQueryLog asserts the slow-query log captures statements over
// the threshold with a trace summary, and that disarming stops it.
func TestSlowQueryLog(t *testing.T) {
	db := newDB(t, catalog.ColumnStore, 2000)
	var buf syncBuffer
	db.SetSlowQueryLog(NewSlowQueryLog(&buf, 1)) // 1ns: everything is slow
	q := &query.Query{
		Kind: query.Aggregate, Table: "sales",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
		Pred: &expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(3)},
	}
	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"kind":"AGGREGATE"`) {
		t.Fatalf("slow log entry missing kind: %q", out)
	}
	if !strings.Contains(out, "stage=aggregate") {
		t.Errorf("slow log entry missing trace summary: %q", out)
	}

	db.SlowQueryLogHandle().SetThreshold(0)
	buf.Reset()
	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "" {
		t.Errorf("disarmed slow log still wrote %q", buf.String())
	}
}
