package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/value"
)

// copyBatch builds one bulk-ingest batch of sales rows [lo, lo+n).
func copyBatch(lo, n int) [][]value.Value {
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, salesRow(int64(lo+i)))
	}
	return rows
}

// TestCopyRecoveryTruncatedWALPerByte cuts the WAL at every byte of its
// tail and recovers each image: a RecCopy batch is one record, so every
// recovery must surface each batch either completely or not at all —
// the recovered row count is always a multiple of the batch size, and
// monotonically non-increasing as the cut deepens.
func TestCopyRecoveryTruncatedWALPerByte(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if err := db.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const batches, per = 3, 20
	for b := 0; b < batches; b++ {
		if _, err := db.CopyRows(ctx, "sales", copyBatch(b*per, per)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	lastRows := -1
	for cut := 0; cut < len(data); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "wal.log"), data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re := openTestDB(t, cutDir)
		rows := 0
		if n, err := re.Rows("sales"); err == nil {
			// A deep enough cut tears the create-table record itself, in
			// which case the table is legitimately absent.
			rows = n
		}
		if rows%per != 0 {
			re.Close()
			t.Fatalf("cut %d: recovered %d rows — a COPY batch surfaced partially (batch size %d)", cut, rows, per)
		}
		if lastRows >= 0 && rows > lastRows {
			re.Close()
			t.Fatalf("cut %d: recovered %d rows after shallower cut gave %d", cut, rows, lastRows)
		}
		if rows > 0 {
			// The surviving rows are the exact prefix of whole batches.
			if got, want := visibleState(t, re, "sales"), prefixState(t, rows/per, per); !reflect.DeepEqual(got, want) {
				re.Close()
				t.Fatalf("cut %d: recovered %d rows but content diverged from the batch prefix", cut, rows)
			}
		}
		lastRows = rows
		re.Close()
	}
}

// prefixState renders the canonical content of the first k COPY batches.
func prefixState(t *testing.T, k, per int) []string {
	t.Helper()
	ref := New()
	defer ref.Close()
	if err := ref.CreateTable(salesSchema(), catalog.RowStore); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for b := 0; b < k; b++ {
		if _, err := ref.CopyRows(ctx, "sales", copyBatch(b*per, per)); err != nil {
			t.Fatal(err)
		}
	}
	return visibleState(t, ref, "sales")
}

// copyLayoutSpecs covers all four layouts: plain row, plain column,
// horizontal-only, and the combined horizontal+vertical partitioning.
func copyLayoutSpecs() []struct {
	name  string
	store catalog.StoreKind
	spec  *catalog.PartitionSpec
} {
	return []struct {
		name  string
		store catalog.StoreKind
		spec  *catalog.PartitionSpec
	}{
		{"row", catalog.RowStore, nil},
		{"column", catalog.ColumnStore, nil},
		{"horizontal", catalog.Partitioned, &catalog.PartitionSpec{
			Horizontal: &catalog.HorizontalSpec{
				SplitCol: 1, SplitVal: value.NewInt(2),
				HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
			},
		}},
		{"partitioned", catalog.Partitioned, &catalog.PartitionSpec{
			Horizontal: &catalog.HorizontalSpec{
				SplitCol: 1, SplitVal: value.NewInt(2),
				HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
			},
			Vertical: &catalog.VerticalSpec{RowCols: []int{0, 1, 4}, ColCols: []int{0, 2, 3}},
		}},
	}
}

// TestCopyCrashRecoveryAllLayouts interleaves bulk-ingest batches with
// the standard mixed DML workload on every layout, crashes, and
// requires recovery to reproduce exactly the state an in-memory
// reference reaches with the same sequence.
func TestCopyCrashRecoveryAllLayouts(t *testing.T) {
	ctx := context.Background()
	run := func(t *testing.T, db *Database) {
		t.Helper()
		if _, err := db.CopyRows(ctx, "sales", copyBatch(100, 40)); err != nil {
			t.Fatal(err)
		}
		applyWorkload(t, db)
		if _, err := db.CopyRows(ctx, "sales", copyBatch(200, 40)); err != nil {
			t.Fatal(err)
		}
	}
	for _, lay := range copyLayoutSpecs() {
		t.Run(lay.name, func(t *testing.T) {
			dir := t.TempDir()
			db := openTestDB(t, dir)
			if err := db.CreateTableWithLayout(salesSchema(), lay.store, lay.spec); err != nil {
				t.Fatal(err)
			}
			run(t, db)

			ref := New()
			defer ref.Close()
			if err := ref.CreateTableWithLayout(salesSchema(), lay.store, lay.spec); err != nil {
				t.Fatal(err)
			}
			run(t, ref)
			want := visibleState(t, ref, "sales")

			if got := visibleState(t, db, "sales"); !reflect.DeepEqual(got, want) {
				t.Fatal("durable db diverged from in-memory reference before crash")
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}
			re := openTestDB(t, dir)
			defer re.Close()
			if got := visibleState(t, re, "sales"); !reflect.DeepEqual(got, want) {
				t.Fatalf("layout %s: recovered state diverged (%d rows vs %d)", lay.name, len(got), len(want))
			}
		})
	}
}
