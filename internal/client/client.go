// Package client is the Go driver for the hsqld network service. A Conn
// is a single wire-protocol connection that is safe for concurrent use:
// requests from multiple goroutines are written in one order, responses
// arrive in the same order, and callers waiting on a response are
// matched by position — which is also what makes pipelining free: a
// goroutine's request goes on the wire immediately, without waiting for
// earlier responses.
//
// Cancelling a call's context sends an out-of-band Cancel frame; the
// server aborts the session's in-flight statement at the engine's next
// batch boundary and the call returns the server's cancellation error.
// A Conn that loses its connection reconnects automatically on the next
// call, and prepared statements re-prepare themselves transparently
// after a reconnect (handles are per-connection on the server).
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/value"
	"hybridstore/internal/wire"
)

// Options tunes a connection.
type Options struct {
	// Name labels the session in the server's workload monitor.
	Name string
	// StatementTimeout asks the server to deadline each statement.
	StatementTimeout time.Duration
	// MaxFrame caps response frames the client accepts (0 = wire
	// default).
	MaxFrame int
	// DialTimeout bounds connection establishment (0 = 5s).
	DialTimeout time.Duration
	// NoReconnect disables automatic redial after a broken connection.
	NoReconnect bool
	// MaxPipeline bounds requests in flight on the connection; a call
	// arriving with the pipeline full fails fast with a "pipeline
	// full" error rather than blocking (blocking would have to hold
	// the write lock across the wait). 0 = 256.
	MaxPipeline int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.MaxPipeline <= 0 {
		o.MaxPipeline = 256
	}
	return o
}

// Error is a server-reported failure.
type Error struct {
	Code byte
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

// Cancelled reports whether the error is the server's statement
// cancellation (cancel frame or statement deadline).
func (e *Error) Cancelled() bool { return e.Code == wire.CodeCancelled }

// IsCancelled reports whether err is a server-side statement
// cancellation.
func IsCancelled(err error) bool {
	var se *Error
	return errors.As(err, &se) && se.Cancelled()
}

// Retryable reports whether the error is a snapshot-isolation
// write-write conflict: the transaction rolled back cleanly without
// applying anything, so rerunning the whole transaction (from Begin) is
// safe and expected. Individual statements are NOT safe to retry in
// isolation — retry the transaction function.
func (e *Error) Retryable() bool { return e.Code == wire.CodeTxnConflict }

// IsRetryable reports whether err is a retryable transaction conflict.
func IsRetryable(err error) bool {
	var se *Error
	return errors.As(err, &se) && se.Retryable()
}

// Result is one statement's outcome.
type Result struct {
	Cols     []string
	Rows     [][]value.Value
	Affected int
	// Duration is the server-measured execution time.
	Duration time.Duration
}

// call is one in-flight request awaiting its positional response. seq
// is the request's position on its connection: the call is at the head
// of the pipeline — i.e. the one the server is answering next — exactly
// when the connection's response counter equals seq.
type call struct {
	seq  uint64
	rs   *wire.Response
	err  error
	done chan struct{}
}

// Conn is a driver connection. Zero value is not usable; Dial creates
// one.
type Conn struct {
	addr string
	opts Options

	mu      sync.Mutex
	c       net.Conn
	epoch   uint64 // bumped per (re)connect; stale Stmt handles detect it
	pending chan *call
	closed  bool

	// sent counts requests written on the current connection (guarded
	// by mu); recv counts responses matched by its reader. A call's
	// seq == recv means it is the head of the pipeline — the statement
	// the server is executing (or about to) — which is the only call a
	// session-level Cancel frame can safely target.
	sent uint64
	recv atomic.Uint64

	// txn is the open explicit transaction (guarded by mu). While it is
	// set the connection will NOT redial after a connection loss: a
	// server transaction lives in its session, so statements on a fresh
	// session would silently auto-commit outside it. The transaction
	// must be resolved (Commit/Rollback, even failing ones) before the
	// connection becomes usable again.
	txn *Tx
}

// Dial connects to an hsqld server.
func Dial(addr string, opts Options) (*Conn, error) {
	c := &Conn{addr: addr, opts: opts.withDefaults()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection and performs the hello
// handshake synchronously before the response reader starts.
func (c *Conn) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	hello := &wire.Request{
		Type: wire.MsgHello, ClientName: c.opts.Name,
		Version: wire.ProtocolVersion, Timeout: c.opts.StatementTimeout,
	}
	conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	if err := wire.WriteRequest(conn, hello); err != nil {
		conn.Close()
		return fmt.Errorf("client: hello: %w", err)
	}
	rs, err := wire.ReadResponse(conn, c.opts.MaxFrame)
	if err != nil {
		conn.Close()
		return fmt.Errorf("client: hello: %w", err)
	}
	if rs.Type == wire.MsgError {
		conn.Close()
		return &Error{Code: rs.Code, Msg: rs.Err}
	}
	if rs.Type != wire.MsgWelcome {
		conn.Close()
		return fmt.Errorf("client: unexpected hello response type 0x%02x", rs.Type)
	}
	conn.SetDeadline(time.Time{})
	c.c = conn
	c.epoch++
	c.sent = 0
	c.recv.Store(0)
	c.pending = make(chan *call, c.opts.MaxPipeline)
	go c.readLoop(conn, c.pending)
	return nil
}

// readLoop matches response frames to pending calls by position. On any
// read error every in-flight call fails and the connection is marked
// dead (the next request redials).
func (c *Conn) readLoop(conn net.Conn, pending chan *call) {
	var rerr error
	for {
		rs, err := wire.ReadResponse(conn, c.opts.MaxFrame)
		if err != nil {
			rerr = err
			break
		}
		select {
		case cl := <-pending:
			cl.rs = rs
			c.recv.Add(1)
			close(cl.done)
		default:
			rerr = fmt.Errorf("client: unsolicited response type 0x%02x", rs.Type)
		}
		if rerr != nil {
			break
		}
	}
	c.mu.Lock()
	if c.c == conn {
		c.c = nil // next call redials
	}
	c.mu.Unlock()
	conn.Close()
	for {
		select {
		case cl := <-pending:
			cl.err = fmt.Errorf("client: connection lost: %w", rerr)
			close(cl.done)
		default:
			return
		}
	}
}

// roundTrip writes one request and waits for its positional response.
func (c *Conn) roundTrip(ctx context.Context, rq *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("client: connection closed")
	}
	if c.c == nil {
		if c.txn != nil {
			// No transparent redial inside a transaction: the server
			// rolled it back when the session died, and a retried
			// statement on a new session would auto-commit outside it.
			c.mu.Unlock()
			return nil, errors.New("client: connection lost inside a transaction (the server rolled it back; retry from Begin)")
		}
		if c.opts.NoReconnect {
			c.mu.Unlock()
			return nil, errors.New("client: connection lost")
		}
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	conn := c.c
	cl := &call{seq: c.sent, done: make(chan struct{})}
	select {
	case c.pending <- cl:
	default:
		c.mu.Unlock()
		return nil, fmt.Errorf("client: pipeline full (%d requests in flight)", c.opts.MaxPipeline)
	}
	c.sent++
	err := wire.WriteRequest(conn, rq)
	c.mu.Unlock()
	if err != nil {
		// The reader will fail the call when the broken conn surfaces;
		// wait for it so the pending queue stays positionally aligned.
		<-cl.done
		if cl.err != nil {
			return nil, cl.err
		}
		return nil, err
	}

	select {
	case <-cl.done:
	case <-ctx.Done():
		// A Cancel frame aborts whatever the session is currently
		// executing, so it may only be sent once THIS call is at the
		// head of the pipeline — cancelling earlier would abort some
		// other goroutine's statement. Wait for headship (or the
		// response), fire the cancel, then wait for the response so
		// positional matching stays aligned. If the response beats the
		// cancel it is returned faithfully: a write that was applied
		// must not be reported as cancelled. The residual race — the
		// server finishing this statement just as the cancel lands,
		// aborting the session's next one — is inherent to
		// session-level cancellation.
		for {
			if c.recv.Load() == cl.seq {
				c.cancel(conn)
				break
			}
			stillWaiting := false
			select {
			case <-cl.done:
			case <-time.After(time.Millisecond):
				stillWaiting = true
			}
			if !stillWaiting {
				break
			}
		}
		<-cl.done
	}
	if cl.err != nil {
		return nil, cl.err
	}
	if cl.rs.Type == wire.MsgError {
		return nil, &Error{Code: cl.rs.Code, Msg: cl.rs.Err}
	}
	return cl.rs, nil
}

// cancel sends an out-of-band cancel frame on conn (best effort).
func (c *Conn) cancel(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c == conn {
		_ = wire.WriteRequest(conn, &wire.Request{Type: wire.MsgCancel})
	}
}

func toResult(rs *wire.Response) *Result {
	return &Result{
		Cols: rs.Cols, Rows: rs.Rows,
		Affected: rs.Affected, Duration: rs.Duration,
	}
}

// Exec parses and executes one statement server-side, binding params to
// its '?' placeholders.
func (c *Conn) Exec(ctx context.Context, sqlText string, params ...value.Value) (*Result, error) {
	rs, err := c.roundTrip(ctx, &wire.Request{Type: wire.MsgExec, SQL: sqlText, Params: params})
	if err != nil {
		return nil, err
	}
	return toResult(rs), nil
}

// Query is Exec for statements expected to return rows.
func (c *Conn) Query(ctx context.Context, sqlText string, params ...value.Value) (*Result, error) {
	return c.Exec(ctx, sqlText, params...)
}

// Ping round-trips a liveness probe.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &wire.Request{Type: wire.MsgPing})
	return err
}

// Tx is an explicit transaction (BEGIN…COMMIT) on the connection's
// server session. Statements run under snapshot isolation: reads see
// the state committed at Begin plus the transaction's own writes;
// write-write conflicts abort with a Retryable error (first updater
// wins). The whole transaction — not individual statements — is the
// retry unit.
//
// A Tx pins its Conn's session: do not issue non-transactional
// statements on the Conn (from any goroutine) while a Tx is open — they
// would execute inside the transaction. Rollback is always safe to
// defer; it is a no-op after Commit.
type Tx struct {
	c  *Conn
	mu sync.Mutex
	// done: Commit or Rollback already resolved the transaction.
	done bool
}

// Begin opens an explicit transaction. Only one transaction may be open
// per connection.
func (c *Conn) Begin(ctx context.Context) (*Tx, error) {
	tx := &Tx{c: c}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("client: connection closed")
	}
	if c.txn != nil {
		c.mu.Unlock()
		return nil, errors.New("client: transaction already open on this connection")
	}
	// Redial here if needed: once the slot is reserved, roundTrip
	// refuses to reconnect (a fresh session would not hold the
	// transaction), but no transaction exists yet at this point.
	if c.c == nil && !c.opts.NoReconnect {
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	c.txn = tx // reserve before the round trip so concurrent Begins fail fast
	c.mu.Unlock()
	if _, err := c.roundTrip(ctx, &wire.Request{Type: wire.MsgExec, SQL: "BEGIN"}); err != nil {
		c.mu.Lock()
		c.txn = nil
		c.mu.Unlock()
		return nil, err
	}
	return tx, nil
}

// Exec runs one statement inside the transaction. After a statement
// error the server has aborted the transaction; further statements
// return the abort reason until Rollback.
func (tx *Tx) Exec(ctx context.Context, sqlText string, params ...value.Value) (*Result, error) {
	tx.mu.Lock()
	done := tx.done
	tx.mu.Unlock()
	if done {
		return nil, errors.New("client: transaction has already finished")
	}
	rs, err := tx.c.roundTrip(ctx, &wire.Request{Type: wire.MsgExec, SQL: sqlText, Params: params})
	if err != nil {
		return nil, err
	}
	return toResult(rs), nil
}

// Query is Exec for statements expected to return rows.
func (tx *Tx) Query(ctx context.Context, sqlText string, params ...value.Value) (*Result, error) {
	return tx.Exec(ctx, sqlText, params...)
}

// Commit makes the transaction's writes visible and durable. A
// Retryable error means a conflict aborted it (nothing was applied);
// any other error after the request went on the wire leaves the outcome
// unacknowledged, like a failed auto-commit write. Either way the Tx is
// finished and the connection is free again.
func (tx *Tx) Commit(ctx context.Context) error {
	return tx.finish(ctx, "COMMIT")
}

// Rollback discards the transaction. It is a no-op after Commit (or a
// previous Rollback), so defer tx.Rollback(ctx) is always safe; a lost
// connection is also success, since the server rolls back with the
// session.
func (tx *Tx) Rollback(ctx context.Context) error {
	err := tx.finish(ctx, "ROLLBACK")
	if err != nil {
		var se *Error
		if !errors.As(err, &se) {
			// Transport-level failure: the session died and took the
			// transaction with it — the rollback happened server-side.
			return nil
		}
	}
	return err
}

// finish resolves the transaction with COMMIT or ROLLBACK and releases
// the connection's transaction slot whatever the outcome.
func (tx *Tx) finish(ctx context.Context, stmt string) error {
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		if stmt == "ROLLBACK" {
			return nil
		}
		return errors.New("client: transaction has already finished")
	}
	tx.done = true
	tx.mu.Unlock()
	_, err := tx.c.roundTrip(ctx, &wire.Request{Type: wire.MsgExec, SQL: stmt})
	tx.c.mu.Lock()
	if tx.c.txn == tx {
		tx.c.txn = nil
	}
	tx.c.mu.Unlock()
	return err
}

// Stmt is a prepared statement. It survives reconnects: the handle is
// re-prepared transparently when the connection epoch changes.
type Stmt struct {
	c    *Conn
	text string

	mu       sync.Mutex
	id       uint64
	nparams  int
	epoch    uint64
	prepared bool
}

// Prepare registers a statement template server-side and returns its
// handle.
func (c *Conn) Prepare(ctx context.Context, sqlText string) (*Stmt, error) {
	st := &Stmt{c: c, text: sqlText}
	if err := st.ensure(ctx); err != nil {
		return nil, err
	}
	return st, nil
}

// ensure (re)prepares the statement if the connection was rebuilt since
// the handle was issued.
func (st *Stmt) ensure(ctx context.Context) error {
	st.c.mu.Lock()
	epoch := st.c.epoch
	dead := st.c.c == nil
	st.c.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.prepared && !dead && st.epoch == epoch {
		return nil
	}
	rs, err := st.c.roundTrip(ctx, &wire.Request{Type: wire.MsgPrepare, SQL: st.text})
	if err != nil {
		return err
	}
	st.c.mu.Lock()
	st.epoch = st.c.epoch
	st.c.mu.Unlock()
	st.id = rs.Stmt
	st.nparams = rs.NumParams
	st.prepared = true
	return nil
}

// NumParams returns the number of '?' placeholders.
func (st *Stmt) NumParams() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nparams
}

// Exec executes the prepared statement with the given parameters.
//
// Exactly one transparent retry happens, and only on the server's
// CodeUnknownStmt error — the case where another goroutine's reconnect
// invalidated the handle and the server provably did not execute the
// statement. Every other error — including connection loss and generic
// protocol errors — is NOT retried: the server may have applied the
// statement before the failure surfaced, so retrying could double-apply
// a write; the caller must treat such an error as "unacknowledged",
// exactly like an engine error.
func (st *Stmt) Exec(ctx context.Context, params ...value.Value) (*Result, error) {
	if err := st.ensure(ctx); err != nil {
		return nil, err
	}
	st.mu.Lock()
	id := st.id
	st.mu.Unlock()
	rs, err := st.c.roundTrip(ctx, &wire.Request{Type: wire.MsgStmtExec, Stmt: id, Params: params})
	if err != nil {
		var se *Error
		if !errors.As(err, &se) || se.Code != wire.CodeUnknownStmt {
			return nil, err
		}
		st.mu.Lock()
		st.prepared = false // force a fresh handle
		st.mu.Unlock()
		if err := st.ensure(ctx); err != nil {
			return nil, err
		}
		st.mu.Lock()
		id = st.id
		st.mu.Unlock()
		rs, err = st.c.roundTrip(ctx, &wire.Request{Type: wire.MsgStmtExec, Stmt: id, Params: params})
		if err != nil {
			return nil, err
		}
	}
	return toResult(rs), nil
}

// Query is Exec for statements expected to return rows.
func (st *Stmt) Query(ctx context.Context, params ...value.Value) (*Result, error) {
	return st.Exec(ctx, params...)
}

// Close releases the server-side handle (best effort).
func (st *Stmt) Close(ctx context.Context) error {
	st.mu.Lock()
	prepared, id := st.prepared, st.id
	st.prepared = false
	st.mu.Unlock()
	if !prepared {
		return nil
	}
	_, err := st.c.roundTrip(ctx, &wire.Request{Type: wire.MsgStmtClose, Stmt: id})
	return err
}

// Copy batching defaults: a frame flushes when it holds copyBatchRows
// rows or its estimated encoding reaches the frame budget, and at most
// copyMaxInflight frames ride the pipeline unacknowledged (enough to
// overlap encoding with the server's group-commit fsync without turning
// backpressure into "pipeline full" errors).
const (
	copyBatchRows   = 4096
	copyMaxInflight = 4
)

// Copy is a streaming bulk-ingest into one table. Send buffers rows;
// full batches go on the wire as dedicated copy frames, each applied by
// the server as ONE atomic, durable WAL record. Close flushes the rest
// and returns the total rows acknowledged.
//
// Atomicity is per frame, not per stream: if the connection (or server)
// dies mid-stream, every acknowledged frame is fully applied and the
// in-flight one is applied either fully or not at all — the stream as a
// whole is not transactional. A Copy is not safe for concurrent use and
// pins its Conn the same way a Tx does: don't run other statements on
// the connection until Close returns.
type Copy struct {
	c     *Conn
	ctx   context.Context
	table string
	width int

	rows  [][]value.Value
	bytes int

	sem chan struct{} // in-flight frame slots
	wg  sync.WaitGroup

	mu     sync.Mutex // guards err, total (written by flush goroutines)
	err    error
	total  int
	closed bool
}

// CopyIn starts a streaming bulk ingest into table, whose rows must
// have width columns in schema order. The context governs the whole
// stream: cancelling it aborts in-flight frames server-side.
//
// The fast path bypasses MVCC versioning, so CopyIn cannot run inside
// an explicit transaction — the server rejects such frames with a typed
// unsupported error.
func (c *Conn) CopyIn(ctx context.Context, table string, width int) (*Copy, error) {
	if table == "" || width <= 0 {
		return nil, fmt.Errorf("client: CopyIn needs a table and positive width (got %q, %d)", table, width)
	}
	return &Copy{
		c: c, ctx: ctx, table: table, width: width,
		sem: make(chan struct{}, copyMaxInflight),
	}, nil
}

// Send buffers one row, flushing a frame when the batch is full. It
// blocks only when copyMaxInflight frames are already unacknowledged
// (natural backpressure against a slow server). The row slice is
// retained until its frame is acknowledged; do not reuse it.
func (cp *Copy) Send(row ...value.Value) error {
	if len(row) != cp.width {
		return fmt.Errorf("client: copy row has %d values, table %q takes %d", len(row), cp.table, cp.width)
	}
	cp.mu.Lock()
	closed, err := cp.closed, cp.err
	cp.mu.Unlock()
	if closed {
		return errors.New("client: copy already closed")
	}
	if err != nil {
		return err
	}
	cp.rows = append(cp.rows, row)
	cp.bytes += rowWeight(row)
	if len(cp.rows) >= copyBatchRows || cp.bytes >= cp.c.opts.MaxFrame/2 {
		cp.flush()
	}
	return nil
}

// flush ships the buffered batch as one pipelined copy frame.
func (cp *Copy) flush() {
	rows := cp.rows
	cp.rows = nil
	cp.bytes = 0
	if len(rows) == 0 {
		return
	}
	cp.sem <- struct{}{} // wait for an in-flight slot
	cp.wg.Add(1)
	go func() {
		defer func() {
			<-cp.sem
			cp.wg.Done()
		}()
		rs, err := cp.c.roundTrip(cp.ctx, &wire.Request{
			Type: wire.MsgCopy, Table: cp.table, Width: cp.width, Rows: rows,
		})
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if err != nil {
			if cp.err == nil {
				cp.err = err
			}
			return
		}
		cp.total += rs.Affected
	}()
}

// Close flushes the remaining rows, waits for every in-flight frame's
// acknowledgement, and returns the total row count the server applied
// durably. On error, the count still reflects exactly the acknowledged
// frames.
func (cp *Copy) Close() (int, error) {
	cp.mu.Lock()
	if cp.closed {
		total, err := cp.total, cp.err
		cp.mu.Unlock()
		return total, err
	}
	cp.closed = true
	failed := cp.err != nil
	cp.mu.Unlock()
	if !failed {
		cp.flush()
	}
	cp.wg.Wait()
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.total, cp.err
}

// rowWeight estimates a row's wire encoding size for frame budgeting;
// it only needs to be a safe overestimate of the common case.
func rowWeight(row []value.Value) int {
	n := 4
	for _, v := range row {
		n += 12
		if !v.IsNull() && v.Type() == value.Varchar {
			n += len(v.Varchar())
		}
	}
	return n
}

// Close sends Quit and closes the connection. Subsequent calls fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.c != nil {
		_ = wire.WriteRequest(c.c, &wire.Request{Type: wire.MsgQuit})
		err := c.c.Close()
		c.c = nil
		return err
	}
	return nil
}
