package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hybridstore/internal/value"
	"hybridstore/internal/wire"
)

// fakeServer accepts one connection and serves scripted responses: it
// answers Hello with Welcome and every other request via respond.
func fakeServer(t *testing.T, respond func(rq *wire.Request) *wire.Response) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					rq, err := wire.ReadRequest(conn, 0)
					if err != nil {
						return
					}
					var rs *wire.Response
					if rq.Type == wire.MsgHello {
						rs = &wire.Response{Type: wire.MsgWelcome, Session: 1}
					} else if rq.Type == wire.MsgQuit {
						return
					} else {
						rs = respond(rq)
						if rs == nil {
							continue // out-of-band (cancel)
						}
					}
					if err := wire.WriteResponse(conn, rs); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestClientRoundTripAndErrorMapping(t *testing.T) {
	addr := fakeServer(t, func(rq *wire.Request) *wire.Response {
		switch rq.Type {
		case wire.MsgPing:
			return &wire.Response{Type: wire.MsgPong}
		case wire.MsgExec:
			if rq.SQL == "boom" {
				return &wire.Response{Type: wire.MsgError, Code: wire.CodeSQL, Err: "sql: boom"}
			}
			if rq.SQL == "slow" {
				return &wire.Response{Type: wire.MsgError, Code: wire.CodeCancelled, Err: "cancelled"}
			}
			return &wire.Response{Type: wire.MsgRows, Affected: 1,
				Cols: []string{"x"}, Rows: [][]value.Value{{value.NewInt(7)}}}
		default:
			return &wire.Response{Type: wire.MsgOK}
		}
	})
	c, err := Dial(addr, Options{Name: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "ok")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("rows: %v", res.Rows)
	}
	_, err = c.Exec(ctx, "boom")
	var se *Error
	if !errors.As(err, &se) || se.Code != wire.CodeSQL || IsCancelled(err) {
		t.Fatalf("sql error mapping: %v", err)
	}
	_, err = c.Exec(ctx, "slow")
	if !IsCancelled(err) {
		t.Fatalf("cancellation mapping: %v", err)
	}
}

func TestClientPipelineOrdering(t *testing.T) {
	// Responses echo the request's parameter so ordering mismatches are
	// visible.
	addr := fakeServer(t, func(rq *wire.Request) *wire.Response {
		return &wire.Response{Type: wire.MsgRows, Cols: []string{"p"},
			Rows: [][]value.Value{{rq.Params[0]}}}
	})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				want := int64(g*1000 + i)
				res, err := c.Exec(ctx, "echo", value.NewBigint(want))
				if err != nil {
					done <- err
					return
				}
				if got := res.Rows[0][0].Int(); got != want {
					done <- errors.New("response matched to the wrong request")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientConnectionLostSurfaces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Welcome, then die mid-conversation.
		rq, _ := wire.ReadRequest(conn, 0)
		if rq != nil && rq.Type == wire.MsgHello {
			wire.WriteResponse(conn, &wire.Response{Type: wire.MsgWelcome, Session: 1})
		}
		wire.ReadRequest(conn, 0) // swallow the next request...
		conn.Close()              // ...and cut the connection
	}()
	c, err := Dial(ln.Addr().String(), Options{NoReconnect: true, DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Exec(ctx, "anything"); err == nil {
		t.Fatal("lost connection did not surface")
	}
	// With NoReconnect the next call fails fast instead of redialing.
	if _, err := c.Exec(ctx, "anything"); err == nil {
		t.Fatal("NoReconnect redialed anyway")
	}
}

// TestTxnConnectionLossNoRetry pins the reconnect/transaction contract:
// when the connection dies inside an open transaction, the client must
// surface the loss instead of silently redialing and replaying the
// statement outside the (rolled-back) transaction. After Rollback
// releases the transaction, the connection redials normally.
func TestTxnConnectionLossNoRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var conns, statements int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			first := atomic.AddInt32(&conns, 1) == 1
			go func(conn net.Conn, first bool) {
				defer conn.Close()
				for {
					rq, err := wire.ReadRequest(conn, 0)
					if err != nil {
						return
					}
					switch {
					case rq.Type == wire.MsgHello:
						wire.WriteResponse(conn, &wire.Response{Type: wire.MsgWelcome, Session: 1})
					case rq.Type == wire.MsgQuit:
						return
					case first && rq.SQL == "INSERT INTO kv VALUES (1)":
						return // cut the connection mid-transaction
					default:
						atomic.AddInt32(&statements, 1)
						wire.WriteResponse(conn, &wire.Response{Type: wire.MsgOK})
					}
				}
			}(conn, first)
		}
	}()

	c, err := Dial(ln.Addr().String(), Options{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO kv VALUES (1)"); err == nil {
		t.Fatal("statement on a cut connection succeeded")
	}
	// The client must NOT have redialed to retry the insert: the server
	// rolled the transaction back with the session, so a replay would
	// run outside any transaction.
	if n := atomic.LoadInt32(&conns); n != 1 {
		t.Fatalf("client redialed inside a transaction (%d connections)", n)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO kv VALUES (2)"); err == nil {
		t.Fatal("follow-up statement inside a lost transaction succeeded")
	}
	// Rollback acknowledges the server-side rollback; transport errors
	// during it are not the caller's problem.
	if err := tx.Rollback(ctx); err != nil {
		t.Fatalf("rollback after connection loss: %v", err)
	}
	// With the transaction released, auto-reconnect resumes.
	if _, err := c.Exec(ctx, "SELECT 1"); err != nil {
		t.Fatalf("exec after rollback did not redial: %v", err)
	}
	if n := atomic.LoadInt32(&conns); n != 2 {
		t.Fatalf("expected exactly one redial, got %d connections", n)
	}
	if n := atomic.LoadInt32(&statements); n != 2 { // BEGIN + SELECT 1
		t.Fatalf("server answered %d statements, want 2 (no replays)", n)
	}
}
