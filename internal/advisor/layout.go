package advisor

import (
	"strings"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/stats"
)

// Layout is a complete storage layout: a store per table plus optional
// partitioning specs for some tables.
type Layout struct {
	Stores     costmodel.Placement
	Partitions map[string]*catalog.PartitionSpec
}

// Clone deep-copies the layout (specs are shared; they are immutable once
// built).
func (l Layout) Clone() Layout {
	out := Layout{Stores: l.Stores.Clone(), Partitions: map[string]*catalog.PartitionSpec{}}
	for k, v := range l.Partitions {
		out.Partitions[k] = v
	}
	return out
}

// SpecFor returns the partitioning of a table, or nil.
func (l Layout) SpecFor(table string) *catalog.PartitionSpec {
	return l.Partitions[strings.ToLower(table)]
}

// EstimateLayout predicts the workload runtime (ns) under a layout,
// including partitioned tables: queries are virtually rewritten the same
// way the engine rewrites them (per-partition execution, union/merge for
// horizontal splits, single-partition push-down or PK-join penalty for
// vertical splits) and each piece is estimated against the partition's
// store and size.
func (a *Advisor) EstimateLayout(w *query.Workload, info costmodel.InfoSource, layout Layout) float64 {
	total := 0.0
	for _, q := range w.Queries {
		total += a.estimateQueryLayout(q, info, layout)
	}
	return total
}

func (a *Advisor) estimateQueryLayout(q *query.Query, info costmodel.InfoSource, layout Layout) float64 {
	spec := layout.SpecFor(q.Table)
	if spec == nil || q.Join != nil {
		// Unpartitioned (or a join: joins against partitioned tables are
		// approximated by the table-level store — the cold/main partition
		// dominates analytical joins).
		return a.Model.EstimateQuery(q, info, layout.Stores)
	}
	ti, ok := info(q.Table)
	if !ok {
		return 0
	}
	return a.estimatePartitioned(q, ti, spec, layout)
}

// partView is a virtual partition: a TableInfo shrunk to the partition's
// rows together with the store it lives in.
type partView struct {
	info  costmodel.TableInfo
	store catalog.StoreKind
}

// hotFraction estimates the fraction of rows in the hot partition from
// the split column's value range (uniformity assumption, as in the
// selectivity estimator).
func hotFraction(ti costmodel.TableInfo, h *catalog.HorizontalSpec) float64 {
	if ti.Stats == nil {
		return 0.1
	}
	lo, hi, ok := ti.Stats.MinMax(h.SplitCol)
	if !ok {
		return 0.1
	}
	span := hi.Float() - lo.Float()
	if span <= 0 {
		return 0
	}
	f := (hi.Float() - h.SplitVal.Float() + 1) / span
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// virtual returns a TableInfo scaled to a fraction of the table.
func virtual(ti costmodel.TableInfo, frac float64) costmodel.TableInfo {
	out := ti
	out.Rows = int(float64(ti.Rows) * frac)
	if out.Rows < 1 && frac > 0 {
		out.Rows = 1
	}
	return out
}

// estimatePartitioned virtually rewrites a single-table query against a
// partitioned layout and sums the per-partition estimates.
func (a *Advisor) estimatePartitioned(q *query.Query, ti costmodel.TableInfo, spec *catalog.PartitionSpec, layout Layout) float64 {
	// Build the partition views.
	var parts []partView
	coldSpecVertical := spec.Vertical
	if h := spec.Horizontal; h != nil {
		hf := hotFraction(ti, h)
		hot := partView{info: virtual(ti, hf), store: h.HotStore}
		cold := partView{info: virtual(ti, 1-hf), store: h.ColdStore}
		// Routing: does the query's predicate confine it to one side?
		useHot, useCold := true, true
		if q.Kind != query.Insert {
			if rg, ok := expr.RangeOn(q.Pred, h.SplitCol); ok {
				if rg.Hi != nil && rg.Hi.Float() < h.SplitVal.Float() {
					useHot = false
				}
				if rg.Lo != nil && rg.Lo.Float() >= h.SplitVal.Float() {
					useCold = false
				}
			}
		} else {
			// New keys exceed the split point: inserts go to the hot side.
			useCold = false
		}
		if useHot {
			parts = append(parts, hot)
		}
		if useCold {
			if coldSpecVertical != nil {
				return a.estimateVertical(q, cold.info, coldSpecVertical) + boolCost(useHot, a.estimateSingle(q, hot.info, hot.store))
			}
			parts = append(parts, cold)
		}
	} else if spec.Vertical != nil {
		return a.estimateVertical(q, ti, spec.Vertical)
	}
	total := 0.0
	for _, p := range parts {
		total += a.estimateSingle(q, p.info, p.store)
	}
	return total
}

func boolCost(use bool, c float64) float64 {
	if use {
		return c
	}
	return 0
}

// estimateSingle estimates q against one concrete partition.
func (a *Advisor) estimateSingle(q *query.Query, ti costmodel.TableInfo, store catalog.StoreKind) float64 {
	info := func(string) (costmodel.TableInfo, bool) { return ti, true }
	place := costmodel.Placement{strings.ToLower(q.Table): store}
	return a.Model.EstimateQuery(q, info, place)
}

// estimateVertical estimates q against a vertically split table: queries
// whose referenced columns fit one partition run there; spanning queries
// pay for both partitions plus the PK-join reconstruction.
func (a *Advisor) estimateVertical(q *query.Query, ti costmodel.TableInfo, v *catalog.VerticalSpec) float64 {
	inRow := colSet(v.RowCols)
	inCol := colSet(v.ColCols)
	need := referencedCols(q)
	allRow, allCol := true, true
	for _, c := range need {
		if !inRow[c] {
			allRow = false
		}
		if !inCol[c] {
			allCol = false
		}
	}
	switch {
	case q.Kind == query.Insert:
		// Inserts hit both partitions.
		return a.estimateSingle(q, ti, catalog.RowStore) + a.estimateSingle(q, ti, catalog.ColumnStore)
	case allCol:
		return a.estimateSingle(q, ti, catalog.ColumnStore)
	case allRow:
		return a.estimateSingle(q, ti, catalog.RowStore)
	default:
		// Spanning query: both partitions plus a PK-join penalty. Full
		// aggregates pay the whole reconstruction join; point-ish DML and
		// selects only reconstruct the matching rows, so their penalty is
		// scaled by the predicate's selectivity.
		base := a.estimateSingle(q, ti, catalog.RowStore) + a.estimateSingle(q, ti, catalog.ColumnStore)
		join := a.Model.JoinBase["ROW"]["COLUMN"]
		p := float64(ti.Rows) / float64(a.Model.RefRows)
		pen := join * p
		if q.Kind != query.Aggregate && ti.Stats != nil {
			pen *= expr.EstimateSelectivity(q.Pred, ti.Stats)
		}
		return base + pen
	}
}

func colSet(cols []int) map[int]bool {
	out := make(map[int]bool, len(cols))
	for _, c := range cols {
		out[c] = true
	}
	return out
}

// referencedCols collects every column a single-table query touches.
func referencedCols(q *query.Query) []int {
	set := map[int]struct{}{}
	for _, c := range expr.ColumnSet(q.Pred) {
		set[c] = struct{}{}
	}
	for _, s := range q.Aggs {
		if s.Col >= 0 {
			set[s.Col] = struct{}{}
		}
	}
	for _, c := range q.GroupBy {
		set[c] = struct{}{}
	}
	for _, c := range q.Cols {
		set[c] = struct{}{}
	}
	for c := range q.Set {
		set[c] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// Recommendation is the advisor's complete output.
type Recommendation struct {
	// Layout is the recommended layout (stores + partitions).
	Layout Layout
	// TableOnly is the pure table-level placement (no partitioning).
	TableOnly costmodel.Placement
	// Estimated workload runtimes (ns) under the four strategies the
	// paper compares in Figure 10.
	RowOnlyCost, ColumnOnlyCost, TableLevelCost, PartitionedCost float64
	// Reasons explains each partitioning choice per table.
	Reasons map[string]string
	// DDL contains the statements that apply the layout.
	DDL []string
	// Exact reports whether the table-level search was exhaustive.
	Exact bool
}

// Recommend runs the full recommendation process: table-level placement
// first, then partition candidates per table, keeping a candidate only
// when the estimated workload cost improves (the paper's more
// fine-grained decision, §3.2). ws may be nil (offline mode: statistics
// are derived from the workload itself); pinned fixes stores for specific
// tables.
func (a *Advisor) Recommend(w *query.Workload, info costmodel.InfoSource, ws *stats.Recorder, pinned costmodel.Placement) *Recommendation {
	trec := a.RecommendTables(w, info, pinned)
	rec := &Recommendation{
		TableOnly:      trec.Placement,
		RowOnlyCost:    trec.RowOnlyCost,
		ColumnOnlyCost: trec.ColumnOnlyCost,
		TableLevelCost: trec.EstimatedCost,
		Reasons:        map[string]string{},
		Exact:          trec.Exact,
	}
	layout := Layout{Stores: trec.Placement.Clone(), Partitions: map[string]*catalog.PartitionSpec{}}
	candidates := a.PartitionCandidates(w, info, ws, trec.Placement)

	// Group candidates per table and keep the best-improving variant.
	byTable := map[string][]PartitionCandidate{}
	for _, c := range candidates {
		byTable[c.Table] = append(byTable[c.Table], c)
	}
	current := a.EstimateLayout(w, info, layout)
	for table, cands := range byTable {
		bestCost := current
		var best *PartitionCandidate
		for i := range cands {
			trial := layout.Clone()
			trial.Partitions[table] = cands[i].Spec
			if c := a.EstimateLayout(w, info, trial); c < bestCost {
				bestCost = c
				best = &cands[i]
			}
		}
		if best != nil {
			layout.Partitions[table] = best.Spec
			rec.Reasons[table] = best.Reason
			current = bestCost
		}
	}
	rec.Layout = layout
	rec.PartitionedCost = current
	rec.DDL = a.renderDDL(rec, info)
	return rec
}
