package advisor

import (
	"math/rand"
	"strings"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
	"hybridstore/internal/workload"
)

// fabricatedInfo builds an InfoSource for synthetic tables without an
// engine: rows, distinct counts and ranges are made up but consistent.
func fabricatedInfo(tables map[string]*schema.Table, rows map[string]int) costmodel.InfoSource {
	return func(name string) (costmodel.TableInfo, bool) {
		k := strings.ToLower(name)
		sch, ok := tables[k]
		if !ok {
			return costmodel.TableInfo{}, false
		}
		n := rows[k]
		return costmodel.TableInfo{
			Schema:      sch,
			Rows:        n,
			Compression: 0.6,
			Stats:       &fakeStats{rows: n, cols: sch.NumColumns()},
		}, true
	}
}

type fakeStats struct {
	rows, cols int
}

func (f *fakeStats) Rows() int          { return f.rows }
func (f *fakeStats) Distinct(c int) int { return f.rows / 10 }
func (f *fakeStats) MinMax(c int) (value.Value, value.Value, bool) {
	return value.NewBigint(0), value.NewBigint(int64(f.rows - 1)), true
}

func expTable() *schema.Table {
	return workload.StandardTable("exp").Schema
}

func mixedWorkload(olapFrac float64, queries int) *query.Workload {
	spec := workload.StandardTable("exp")
	return workload.GenMixed(spec, workload.MixConfig{
		Queries: queries, OLAPFraction: olapFrac, TableRows: 100000, Seed: 7,
	})
}

func singleTableInfo() costmodel.InfoSource {
	return fabricatedInfo(
		map[string]*schema.Table{"exp": expTable()},
		map[string]int{"exp": 100000},
	)
}

func TestRecommendTablesPureOLTP(t *testing.T) {
	a := New(costmodel.DefaultModel())
	rec := a.RecommendTables(mixedWorkload(0, 500), singleTableInfo(), nil)
	if rec.Placement.StoreOf("exp") != catalog.RowStore {
		t.Errorf("pure OLTP should pick the row store: %v", rec.Placement)
	}
	if !rec.Exact {
		t.Error("single table should use exact search")
	}
	if rec.EstimatedCost > rec.ColumnOnlyCost {
		t.Error("recommended cost should not exceed the CS-only baseline")
	}
}

func TestRecommendTablesOLAPHeavy(t *testing.T) {
	a := New(costmodel.DefaultModel())
	rec := a.RecommendTables(mixedWorkload(0.5, 500), singleTableInfo(), nil)
	if rec.Placement.StoreOf("exp") != catalog.ColumnStore {
		t.Errorf("OLAP-heavy workload should pick the column store: %v", rec.Placement)
	}
}

func TestRecommendTablesCrossoverExists(t *testing.T) {
	a := New(costmodel.DefaultModel())
	info := singleTableInfo()
	prev := catalog.RowStore
	switched := false
	for _, frac := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.3} {
		rec := a.RecommendTables(mixedWorkload(frac, 500), info, nil)
		s := rec.Placement.StoreOf("exp")
		if prev == catalog.ColumnStore && s == catalog.RowStore {
			t.Errorf("recommendation regressed to row store at frac=%v", frac)
		}
		if s == catalog.ColumnStore {
			switched = true
		}
		prev = s
	}
	if !switched {
		t.Error("no crossover to the column store observed")
	}
}

func TestRecommendTablesPinned(t *testing.T) {
	a := New(costmodel.DefaultModel())
	pinned := costmodel.Placement{"exp": catalog.ColumnStore}
	rec := a.RecommendTables(mixedWorkload(0, 500), singleTableInfo(), pinned)
	if rec.Placement.StoreOf("exp") != catalog.ColumnStore {
		t.Error("pinned store ignored")
	}
}

func TestRecommendTablesEmptyWorkload(t *testing.T) {
	a := New(costmodel.DefaultModel())
	rec := a.RecommendTables(&query.Workload{}, singleTableInfo(), nil)
	if len(rec.Placement) != 0 || rec.EstimatedCost != 0 {
		t.Errorf("empty workload rec: %+v", rec)
	}
}

// Join-aware placement: a workload dominated by join queries should
// prefer co-located (or analytically optimal) store combinations over
// per-table independent decisions.
func TestRecommendTablesJoinAware(t *testing.T) {
	a := New(costmodel.DefaultModel())
	fact := workload.FactTable("fact", 1000)
	dim := workload.DimensionTable("dim")
	tables := map[string]*schema.Table{"fact": fact.Schema, "dim": dim.Schema}
	rows := map[string]int{"fact": 200000, "dim": 1000}
	info := fabricatedInfo(tables, rows)
	w := workload.GenJoinMixed(fact, dim, workload.JoinMixConfig{
		Queries: 500, OLAPFraction: 0.2, FactRows: 200000, DimRows: 1000, Seed: 3,
	})
	rec := a.RecommendTables(w, info, nil)
	if rec.Placement.StoreOf("fact") != catalog.ColumnStore {
		t.Errorf("analytical fact table should go columnar: %v", rec.Placement)
	}
	if rec.EstimatedCost > rec.RowOnlyCost || rec.EstimatedCost > rec.ColumnOnlyCost {
		t.Error("recommendation should beat single-store baselines")
	}
}

// Property: local search matches exact enumeration on small random
// instances.
func TestLocalSearchMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nTables := 2 + rng.Intn(5)
		d := &decomposition{index: map[string]int{}}
		for i := 0; i < nTables; i++ {
			d.tables = append(d.tables, string(rune('a'+i)))
			d.single = append(d.single, [2]float64{rng.Float64() * 100, rng.Float64() * 100})
		}
		for j := 0; j < rng.Intn(4); j++ {
			term := joinTerm{left: rng.Intn(nTables), right: rng.Intn(nTables)}
			for x := 0; x < 2; x++ {
				for y := 0; y < 2; y++ {
					term.cost[x][y] = rng.Float64() * 200
				}
			}
			d.joins = append(d.joins, term)
		}
		pinned := make([]int8, nTables)
		for i := range pinned {
			pinned[i] = -1
		}
		_, exactCost := d.enumerate(pinned)
		_, lsCost := d.localSearch(pinned, 5)
		if lsCost < exactCost-1e-9 {
			t.Fatalf("trial %d: local search beat exact?! %v < %v", trial, lsCost, exactCost)
		}
		if (lsCost-exactCost)/exactCost > 0.05 {
			t.Errorf("trial %d: local search gap %.1f%%", trial, 100*(lsCost-exactCost)/exactCost)
		}
	}
}

func TestHorizontalCandidateFromHotUpdates(t *testing.T) {
	a := New(costmodel.DefaultModel())
	spec := workload.StandardTable("exp")
	// Updates concentrated on the last 10% of keys.
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 500, OLAPFraction: 0.05, TableRows: 100000,
		HotDataFraction: 0.1, Seed: 11,
	})
	cands := a.PartitionCandidates(w, singleTableInfo(), nil, costmodel.Placement{"exp": catalog.ColumnStore})
	var horizontal *catalog.HorizontalSpec
	for _, c := range cands {
		if c.Spec.Horizontal != nil && c.Spec.Vertical == nil {
			horizontal = c.Spec.Horizontal
		}
	}
	if horizontal == nil {
		t.Fatal("no horizontal candidate for hot-update workload")
	}
	if horizontal.HotStore != catalog.RowStore {
		t.Error("hot partition should be row store")
	}
	// Split point should isolate roughly the hot 10% (keys >= ~90000).
	if split := horizontal.SplitVal.Float(); split < 85000 || split > 95000 {
		t.Errorf("split value = %v, want ≈90000", split)
	}
	if horizontal.ColdStore != catalog.ColumnStore {
		t.Errorf("cold store should follow table-level placement: %v", horizontal.ColdStore)
	}
}

func TestVerticalCandidateFromAttrRoles(t *testing.T) {
	a := New(costmodel.DefaultModel())
	spec := workload.VerticalOLAPTable("volap")
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 500, OLAPFraction: 0.3, TableRows: 100000,
		OLTPAttrsOnly: true, Seed: 13,
	})
	info := fabricatedInfo(
		map[string]*schema.Table{"volap": spec.Schema},
		map[string]int{"volap": 100000},
	)
	cands := a.PartitionCandidates(w, info, nil, costmodel.Placement{})
	var vert *catalog.VerticalSpec
	for _, c := range cands {
		if c.Spec.Vertical != nil && c.Spec.Horizontal == nil {
			vert = c.Spec.Vertical
		}
	}
	if vert == nil {
		t.Fatal("no vertical candidate")
	}
	if err := (&catalog.PartitionSpec{Vertical: vert}).Validate(spec.Schema); err != nil {
		t.Fatalf("invalid vertical spec: %v", err)
	}
	inRow := map[int]bool{}
	for _, c := range vert.RowCols {
		inRow[c] = true
	}
	for _, c := range spec.OLTPAttrs {
		if !inRow[c] {
			t.Errorf("OLTP attribute %d not in the row partition", c)
		}
	}
	inCol := map[int]bool{}
	for _, c := range vert.ColCols {
		inCol[c] = true
	}
	for _, c := range spec.Keyfigures {
		if !inCol[c] {
			t.Errorf("keyfigure %d not in the column partition", c)
		}
	}
}

func TestPartitionCandidatesSkipsSmallTables(t *testing.T) {
	a := New(costmodel.DefaultModel())
	info := fabricatedInfo(
		map[string]*schema.Table{"exp": expTable()},
		map[string]int{"exp": 100}, // below MinPartitionRows
	)
	w := mixedWorkload(0.05, 200)
	if cands := a.PartitionCandidates(w, info, nil, nil); len(cands) != 0 {
		t.Errorf("tiny table got %d candidates", len(cands))
	}
}

func TestRecommendEndToEnd(t *testing.T) {
	a := New(costmodel.DefaultModel())
	spec := workload.StandardTable("exp")
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 500, OLAPFraction: 0.05, TableRows: 100000,
		HotDataFraction: 0.1, Seed: 17,
	})
	rec := a.Recommend(w, singleTableInfo(), nil, nil)
	if rec.TableLevelCost > rec.RowOnlyCost || rec.TableLevelCost > rec.ColumnOnlyCost {
		t.Error("table-level cost should not exceed baselines")
	}
	if rec.PartitionedCost > rec.TableLevelCost {
		t.Errorf("partitioning made things worse: %v > %v", rec.PartitionedCost, rec.TableLevelCost)
	}
	if len(rec.DDL) == 0 {
		t.Error("no DDL produced")
	}
	for _, ddl := range rec.DDL {
		if !strings.HasPrefix(ddl, "ALTER TABLE") {
			t.Errorf("odd DDL: %s", ddl)
		}
	}
	// With hot updates we expect a partitioning of exp.
	if rec.Layout.SpecFor("exp") == nil {
		t.Log("note: no partition chosen; estimated costs:", rec.TableLevelCost, rec.PartitionedCost)
	}
}

func TestRecommendOffline(t *testing.T) {
	db := engine.New()
	spec := workload.StandardTable("exp")
	if err := spec.Load(db, catalog.RowStore, 5000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CollectStats("exp"); err != nil {
		t.Fatal(err)
	}
	a := New(costmodel.DefaultModel())
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 300, OLAPFraction: 0.2, TableRows: 5000, Seed: 19,
	})
	rec := a.RecommendOffline(OfflineInput{Catalog: db.Catalog(), Workload: w})
	if rec.Layout.Stores.StoreOf("exp") != catalog.ColumnStore {
		t.Errorf("20%% OLAP on 5k rows should go columnar: %+v", rec.Layout.Stores)
	}
}

func TestMonitorOnlineMode(t *testing.T) {
	db := engine.New()
	spec := workload.StandardTable("exp")
	if err := spec.Load(db, catalog.RowStore, 5000, 1); err != nil {
		t.Fatal(err)
	}
	a := New(costmodel.DefaultModel())
	m := NewMonitor(db, a)
	m.AutoApply = true
	// Run an OLAP-heavy workload through the engine.
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 200, OLAPFraction: 0.3, TableRows: 5000, Seed: 23,
	})
	for _, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if m.Seen() != 200 {
		t.Errorf("monitor saw %d queries", m.Seen())
	}
	rec, err := m.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Layout.Stores.StoreOf("exp") != catalog.ColumnStore {
		t.Errorf("online recommendation should be columnar: %v", rec.Layout.Stores)
	}
	// AutoApply moved the table.
	if got := db.Catalog().Table("exp").Store; got != catalog.ColumnStore && got != catalog.Partitioned {
		t.Errorf("layout not applied: %v", got)
	}
	// The data survived the move.
	n, _ := db.Rows("exp")
	if n < 5000 {
		t.Errorf("rows after move = %d", n)
	}
}

func TestMonitorAutoReevaluate(t *testing.T) {
	db := engine.New()
	spec := workload.StandardTable("exp")
	if err := spec.Load(db, catalog.RowStore, 2000, 1); err != nil {
		t.Fatal(err)
	}
	a := New(costmodel.DefaultModel())
	m := NewMonitor(db, a)
	m.EveryN = 50
	var got []*Recommendation
	m.OnRecommendation = func(r *Recommendation) { got = append(got, r) }
	w := workload.GenMixed(spec, workload.MixConfig{
		Queries: 120, OLAPFraction: 0.2, TableRows: 2000, Seed: 29,
	})
	for _, q := range w.Queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) < 2 {
		t.Errorf("automatic re-evaluations = %d, want >= 2", len(got))
	}
}

func TestMonitorReevaluateWithoutWorkload(t *testing.T) {
	db := engine.New()
	a := New(costmodel.DefaultModel())
	m := NewMonitor(db, a)
	if _, err := m.Reevaluate(); err == nil {
		t.Error("re-evaluation without workload should fail")
	}
}

func TestEstimateLayoutPartitionedBeatsWorse(t *testing.T) {
	a := New(costmodel.DefaultModel())
	sch := expTable()
	info := singleTableInfo()
	w := workload.GenMixed(workload.StandardTable("exp"), workload.MixConfig{
		Queries: 500, OLAPFraction: 0.05, TableRows: 100000,
		HotDataFraction: 0.1, Seed: 31,
	})
	flat := Layout{Stores: costmodel.Placement{"exp": catalog.ColumnStore}, Partitions: map[string]*catalog.PartitionSpec{}}
	flatCost := a.EstimateLayout(w, info, flat)

	split := flat.Clone()
	split.Partitions["exp"] = &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(90000),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
	splitCost := a.EstimateLayout(w, info, split)
	if splitCost >= flatCost {
		t.Errorf("hot/cold split should be estimated cheaper: %v vs %v", splitCost, flatCost)
	}
	_ = sch
}

func TestDDLRendering(t *testing.T) {
	a := New(costmodel.DefaultModel())
	info := singleTableInfo()
	rec := &Recommendation{
		Layout: Layout{
			Stores: costmodel.Placement{"exp": catalog.ColumnStore},
			Partitions: map[string]*catalog.PartitionSpec{
				"exp": {
					Horizontal: &catalog.HorizontalSpec{
						SplitCol: 0, SplitVal: value.NewBigint(90000),
						HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
					},
					Vertical: &catalog.VerticalSpec{RowCols: []int{0, 1}, ColCols: append([]int{0}, rangeInts(2, 30)...)},
				},
			},
		},
	}
	ddl := a.renderDDL(rec, info)
	if len(ddl) != 1 {
		t.Fatalf("ddl = %v", ddl)
	}
	for _, frag := range []string{"PARTITION BY RANGE (id)", ">= 90000", "STORE ROW", "VERTICAL"} {
		if !strings.Contains(ddl[0], frag) {
			t.Errorf("DDL missing %q: %s", frag, ddl[0])
		}
	}
	// Unpartitioned move statement.
	rec2 := &Recommendation{Layout: Layout{
		Stores:     costmodel.Placement{"exp": catalog.RowStore},
		Partitions: map[string]*catalog.PartitionSpec{},
	}}
	ddl2 := a.renderDDL(rec2, info)
	if len(ddl2) != 1 || !strings.Contains(ddl2[0], "MOVE TO ROW STORE") {
		t.Errorf("move DDL = %v", ddl2)
	}
}

func rangeInts(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
