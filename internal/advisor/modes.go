package advisor

import (
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/costmodel/calibrate"
	"hybridstore/internal/engine"
	"hybridstore/internal/query"
	"hybridstore/internal/stats"
)

// OfflineInput is the offline mode's input (paper Figure 4): the database
// schema with basic table statistics (via the catalog) and a recorded or
// expected workload.
type OfflineInput struct {
	Catalog  *catalog.Catalog
	Workload *query.Workload
	// Pinned fixes stores for specific tables.
	Pinned costmodel.Placement
}

// RecommendOffline computes an initial storage-layout recommendation from
// offline inputs. Extended workload statistics are approximated by
// replaying the workload through a recorder.
func (a *Advisor) RecommendOffline(in OfflineInput) *Recommendation {
	info := InfoFromCatalog(in.Catalog)
	return a.Recommend(in.Workload, info, deriveStats(in.Workload), in.Pinned)
}

// Monitor implements the online mode (§4): it observes the live query
// stream, records extended workload statistics, keeps a bounded sample of
// queries as the representative workload, and re-evaluates the storage
// layout in certain intervals, optionally applying beneficial adaptations
// automatically.
//
// Monitor applies layouts through the blocking SetLayout path. The newer
// online subsystem — internal/monitor's rolling-window recorder, the
// RecommendSnapshot entry point and internal/migrate's background
// non-blocking migrations with hysteresis — supersedes it for live
// deployments; Monitor remains for simple embedded use.
type Monitor struct {
	db      *engine.Database
	advisor *Advisor

	mu       sync.Mutex
	recorder *stats.Recorder
	sample   []*query.Query
	seen     int

	// EveryN triggers an automatic re-evaluation after every N observed
	// queries (0 disables automatic re-evaluation).
	EveryN int
	// SampleCap bounds the retained workload sample.
	SampleCap int
	// AutoApply applies recommended layout changes to the engine without
	// administrator interaction ("this option should be applied with
	// care", §4).
	AutoApply bool
	// OnRecommendation, when set, receives every recommendation produced
	// by automatic re-evaluation.
	OnRecommendation func(*Recommendation)
}

// NewMonitor attaches a monitor to a database as its query observer.
func NewMonitor(db *engine.Database, adv *Advisor) *Monitor {
	m := &Monitor{
		db:        db,
		advisor:   adv,
		recorder:  stats.NewRecorder(),
		EveryN:    0,
		SampleCap: 5000,
	}
	db.SetObserver(m)
	return m
}

// Recorder exposes the extended workload statistics.
func (m *Monitor) Recorder() *stats.Recorder { return m.recorder }

// Seen returns the number of observed queries.
func (m *Monitor) Seen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

// Observe implements engine.QueryObserver.
func (m *Monitor) Observe(q *query.Query, d time.Duration) {
	m.recorder.Observe(q, d)
	reevaluate := false
	m.mu.Lock()
	m.seen++
	if len(m.sample) < m.SampleCap {
		m.sample = append(m.sample, q)
	} else {
		// Reservoir-style replacement keeps the sample representative
		// without unbounded memory (deterministic stride replacement).
		m.sample[m.seen%m.SampleCap] = q
	}
	if m.EveryN > 0 && m.seen%m.EveryN == 0 {
		reevaluate = true
	}
	m.mu.Unlock()
	if reevaluate {
		rec, err := m.Reevaluate()
		if err != nil {
			return
		}
		if m.OnRecommendation != nil {
			m.OnRecommendation(rec)
		}
	}
}

// workloadSnapshot copies the current sample.
func (m *Monitor) workloadSnapshot() *query.Workload {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &query.Workload{Queries: make([]*query.Query, len(m.sample))}
	copy(w.Queries, m.sample)
	return w
}

// Reevaluate refreshes the table statistics of every observed table,
// recomputes the recommendation from the recorded workload sample and —
// when AutoApply is set — applies layout changes to the engine.
func (m *Monitor) Reevaluate() (*Recommendation, error) {
	w := m.workloadSnapshot()
	if w.Len() == 0 {
		return nil, fmt.Errorf("advisor: no observed workload yet")
	}
	for _, t := range w.Tables() {
		if _, err := m.db.CollectStats(t); err != nil {
			return nil, err
		}
	}
	info := InfoFromCatalog(m.db.Catalog())
	rec := m.advisor.Recommend(w, info, m.recorder, nil)
	if m.AutoApply {
		if err := m.Apply(rec); err != nil {
			return rec, err
		}
	}
	return rec, nil
}

// Apply moves tables whose recommended placement differs from the current
// catalog state.
func (m *Monitor) Apply(rec *Recommendation) error {
	for t, store := range rec.Layout.Stores {
		entry := m.db.Catalog().Table(t)
		if entry == nil {
			continue
		}
		spec := rec.Layout.SpecFor(t)
		target := store
		if spec != nil {
			target = catalog.Partitioned
		}
		if entry.Store == target && entry.Partitioning.Equal(spec) {
			continue
		}
		if err := m.db.SetLayout(t, store, spec); err != nil {
			return fmt.Errorf("advisor: applying layout for %s: %w", t, err)
		}
	}
	return nil
}

// Recalibrate re-initializes the cost model against the current system
// ("to also keep track of changes in hardware or system settings", §4)
// and swaps it into the advisor.
func (m *Monitor) Recalibrate(cfg calibrate.Config) error {
	model, err := calibrate.Calibrate(cfg)
	if err != nil {
		return err
	}
	m.advisor.Model = model
	return nil
}
