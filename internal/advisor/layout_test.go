package advisor

import (
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
	"hybridstore/internal/workload"
)

func layoutInfo() (costmodel.InfoSource, *schema.Table) {
	sch := workload.StandardTable("exp").Schema
	info := fabricatedInfo(
		map[string]*schema.Table{"exp": sch},
		map[string]int{"exp": 100000},
	)
	return info, sch
}

func TestEstimateQueryLayoutUnpartitioned(t *testing.T) {
	a := New(costmodel.DefaultModel())
	info, _ := layoutInfo()
	q := &query.Query{Kind: query.Aggregate, Table: "exp",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 1}}}
	layout := Layout{Stores: costmodel.Placement{"exp": catalog.ColumnStore},
		Partitions: map[string]*catalog.PartitionSpec{}}
	got := a.estimateQueryLayout(q, info, layout)
	want := a.Model.EstimateQuery(q, info, layout.Stores)
	if got != want {
		t.Errorf("unpartitioned layout estimate diverges: %v vs %v", got, want)
	}
}

func TestHorizontalRoutingInEstimate(t *testing.T) {
	a := New(costmodel.DefaultModel())
	info, _ := layoutInfo()
	spec := &catalog.PartitionSpec{Horizontal: &catalog.HorizontalSpec{
		SplitCol: 0, SplitVal: value.NewBigint(90000),
		HotStore: catalog.RowStore, ColdStore: catalog.ColumnStore,
	}}
	layout := Layout{Stores: costmodel.Placement{"exp": catalog.ColumnStore},
		Partitions: map[string]*catalog.PartitionSpec{"exp": spec}}

	// An update confined to the hot range costs less than one spanning
	// both partitions.
	hotUpd := &query.Query{Kind: query.Update, Table: "exp",
		Set:  map[int]value.Value{1: value.NewDouble(1)},
		Pred: &expr.Between{Col: 0, Lo: value.NewBigint(95000), Hi: value.NewBigint(95100)}}
	spanUpd := &query.Query{Kind: query.Update, Table: "exp",
		Set:  map[int]value.Value{1: value.NewDouble(1)},
		Pred: &expr.Between{Col: 0, Lo: value.NewBigint(85000), Hi: value.NewBigint(95000)}}
	hot := a.estimateQueryLayout(hotUpd, info, layout)
	span := a.estimateQueryLayout(spanUpd, info, layout)
	if hot >= span {
		t.Errorf("hot-routed update should be cheaper: hot=%v span=%v", hot, span)
	}
	// Inserts route to the hot partition only.
	ins := &query.Query{Kind: query.Insert, Table: "exp",
		Rows: make([][]value.Value, 1)}
	insCost := a.estimateQueryLayout(ins, info, layout)
	flat := Layout{Stores: costmodel.Placement{"exp": catalog.ColumnStore},
		Partitions: map[string]*catalog.PartitionSpec{}}
	if flatCost := a.estimateQueryLayout(ins, info, flat); insCost >= flatCost {
		t.Errorf("insert into hot RS partition should beat CS insert: %v vs %v", insCost, flatCost)
	}
}

func TestVerticalRoutingInEstimate(t *testing.T) {
	a := New(costmodel.DefaultModel())
	info, sch := layoutInfo()
	// Columns 1,2 columnar; everything else row (PK 0 in both).
	var rowCols []int
	rowCols = append(rowCols, 0)
	for i := 3; i < sch.NumColumns(); i++ {
		rowCols = append(rowCols, i)
	}
	v := &catalog.VerticalSpec{RowCols: rowCols, ColCols: []int{0, 1, 2}}
	layout := Layout{Stores: costmodel.Placement{"exp": catalog.ColumnStore},
		Partitions: map[string]*catalog.PartitionSpec{"exp": {Vertical: v}}}

	colAgg := &query.Query{Kind: query.Aggregate, Table: "exp",
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 1}}}
	spanAgg := &query.Query{Kind: query.Aggregate, Table: "exp",
		Aggs:    []agg.Spec{{Func: agg.Sum, Col: 1}},
		GroupBy: []int{5}} // group col in the row partition → spanning
	cin := a.estimateQueryLayout(colAgg, info, layout)
	span := a.estimateQueryLayout(spanAgg, info, layout)
	if cin >= span {
		t.Errorf("covered aggregate should be cheaper than spanning: %v vs %v", cin, span)
	}
	// A row-partition update is cheaper than a spanning one.
	rowUpd := &query.Query{Kind: query.Update, Table: "exp",
		Set:  map[int]value.Value{5: value.NewInt(1)},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)}}
	spanUpd := &query.Query{Kind: query.Update, Table: "exp",
		Set:  map[int]value.Value{5: value.NewInt(1), 1: value.NewDouble(2)},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)}}
	if a.estimateQueryLayout(rowUpd, info, layout) >= a.estimateQueryLayout(spanUpd, info, layout) {
		t.Error("single-partition update should be cheaper than spanning")
	}
}

func TestHotFraction(t *testing.T) {
	info, _ := layoutInfo()
	ti, _ := info("exp")
	h := &catalog.HorizontalSpec{SplitCol: 0, SplitVal: value.NewBigint(90000)}
	f := hotFraction(ti, h)
	if f < 0.08 || f > 0.12 {
		t.Errorf("hot fraction = %v, want ≈0.1", f)
	}
	// Split above the max: empty hot partition.
	h.SplitVal = value.NewBigint(200000)
	if f := hotFraction(ti, h); f != 0 {
		t.Errorf("out-of-range split fraction = %v", f)
	}
	// No stats: default.
	if f := hotFraction(costmodel.TableInfo{}, h); f != 0.1 {
		t.Errorf("no-stats fraction = %v", f)
	}
}

func TestVerticalVariantsContested(t *testing.T) {
	a := New(costmodel.DefaultModel())
	sch := schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "status", Type: value.Integer}, // updated AND grouped: contested
		{Name: "amount", Type: value.Double},  // aggregated
		{Name: "note", Type: value.Varchar},   // untouched
	}, "id")
	info := fabricatedInfo(map[string]*schema.Table{"t": sch}, map[string]int{"t": 50000})
	w := &query.Workload{}
	for i := 0; i < 20; i++ {
		w.Add(&query.Query{Kind: query.Update, Table: "t",
			Set:  map[int]value.Value{1: value.NewInt(1)},
			Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(int64(i))}})
	}
	for i := 0; i < 5; i++ {
		w.Add(&query.Query{Kind: query.Aggregate, Table: "t",
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}},
			GroupBy: []int{1}})
	}
	cands := a.PartitionCandidates(w, info, nil, nil)
	var rowSide, colSide bool
	for _, c := range cands {
		v := c.Spec.Vertical
		if v == nil || c.Spec.Horizontal != nil {
			continue
		}
		inRow := false
		for _, col := range v.RowCols {
			if col == 1 {
				inRow = true
			}
		}
		if inRow {
			rowSide = true
		} else {
			colSide = true
		}
		if err := (&catalog.PartitionSpec{Vertical: v}).Validate(sch); err != nil {
			t.Errorf("invalid variant: %v", err)
		}
	}
	if !rowSide || !colSide {
		t.Errorf("contested attribute should produce both variants: row=%v col=%v", rowSide, colSide)
	}
}

func TestLayoutClone(t *testing.T) {
	l := Layout{
		Stores:     costmodel.Placement{"a": catalog.RowStore},
		Partitions: map[string]*catalog.PartitionSpec{"a": {}},
	}
	c := l.Clone()
	c.Stores["a"] = catalog.ColumnStore
	delete(c.Partitions, "a")
	if l.Stores.StoreOf("a") != catalog.RowStore || l.SpecFor("a") == nil {
		t.Error("clone aliases original")
	}
}
