// Package advisor implements the paper's storage advisor: given a
// workload, table statistics and a calibrated cost model it recommends,
// for every table, whether to keep the data in the row store or the
// column store (§3.1), and whether to split the table horizontally and/or
// vertically across both stores (§3.2). It supports the offline mode
// (schema + basic statistics + recorded/expected workload) and the online
// mode (live engine, extended workload statistics, periodic re-evaluation
// and optional automatic application), mirroring §4.
package advisor

import (
	"math/rand"
	"sort"
	"strings"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/query"
)

// Config tunes the advisor's search and heuristics.
type Config struct {
	// ExactLimit is the maximum number of tables for exhaustive placement
	// enumeration; beyond it a join-aware local search is used.
	ExactLimit int
	// InsertFractionThreshold is the minimum fraction of insert statements
	// for a table before a row-store insert partition is recommended
	// ("if it is sufficiently high", §3.2).
	InsertFractionThreshold float64
	// HotUpdateMinCount is the minimum number of range-located updates
	// before the advisor trusts the observed hot key range.
	HotUpdateMinCount int
	// HotRangeMaxFraction rejects hot ranges covering more than this
	// fraction of the table (then the whole table is update-hot and a
	// partition would not help).
	HotRangeMaxFraction float64
	// MinPartitionRows skips partitioning recommendations for tiny tables.
	MinPartitionRows int
	// LocalSearchRestarts is the number of random restarts of the local
	// search used beyond ExactLimit.
	LocalSearchRestarts int
}

// DefaultConfig returns the standard thresholds.
func DefaultConfig() Config {
	return Config{
		ExactLimit:              12,
		InsertFractionThreshold: 0.05,
		HotUpdateMinCount:       10,
		HotRangeMaxFraction:     0.5,
		MinPartitionRows:        1000,
		LocalSearchRestarts:     3,
	}
}

// Advisor recommends storage layouts.
type Advisor struct {
	Model  *costmodel.Model
	Config Config
}

// New creates an advisor with default configuration.
func New(m *costmodel.Model) *Advisor {
	return &Advisor{Model: m, Config: DefaultConfig()}
}

// InfoFromCatalog adapts catalog entries to the cost model's InfoSource.
func InfoFromCatalog(cat *catalog.Catalog) costmodel.InfoSource {
	return func(table string) (costmodel.TableInfo, bool) {
		e := cat.Table(table)
		if e == nil {
			return costmodel.TableInfo{}, false
		}
		ti := costmodel.TableInfo{Schema: e.Schema, HasIndex: e.HasIndex}
		if e.Stats != nil {
			ti.Rows = e.Stats.NumRows
			ti.Compression = e.Stats.AvgCompression()
			ti.Stats = e.Stats
		}
		return ti, true
	}
}

// decomposition precomputes per-query costs for both stores so that
// placement search only sums table-indexed terms. A single-table query
// contributes to its table's single-store costs; a join query contributes
// a 2×2 term over the two tables' stores. This makes exhaustive
// enumeration O(2^T · (T + J)) instead of O(2^T · |W|) estimations.
type decomposition struct {
	tables []string
	index  map[string]int
	single [][2]float64 // [table][store] with 0 = row, 1 = column
	joins  []joinTerm
}

type joinTerm struct {
	left, right int
	cost        [2][2]float64
}

var storeOf = [2]catalog.StoreKind{catalog.RowStore, catalog.ColumnStore}

func (a *Advisor) decompose(w *query.Workload, info costmodel.InfoSource) *decomposition {
	d := &decomposition{index: map[string]int{}}
	tableIdx := func(name string) int {
		k := strings.ToLower(name)
		if i, ok := d.index[k]; ok {
			return i
		}
		i := len(d.tables)
		d.index[k] = i
		d.tables = append(d.tables, k)
		d.single = append(d.single, [2]float64{})
		return i
	}
	for _, q := range w.Queries {
		li := tableIdx(q.Table)
		if q.Join == nil {
			for s := 0; s < 2; s++ {
				place := costmodel.Placement{strings.ToLower(q.Table): storeOf[s]}
				d.single[li][s] += a.Model.EstimateQuery(q, info, place)
			}
			continue
		}
		ri := tableIdx(q.Join.Table)
		term := joinTerm{left: li, right: ri}
		for s1 := 0; s1 < 2; s1++ {
			for s2 := 0; s2 < 2; s2++ {
				place := costmodel.Placement{
					strings.ToLower(q.Table):      storeOf[s1],
					strings.ToLower(q.Join.Table): storeOf[s2],
				}
				term.cost[s1][s2] = a.Model.EstimateQuery(q, info, place)
			}
		}
		d.joins = append(d.joins, term)
	}
	return d
}

// cost evaluates a placement assignment (one bit per table).
func (d *decomposition) cost(assign []uint8) float64 {
	total := 0.0
	for t, s := range assign {
		total += d.single[t][s]
	}
	for _, j := range d.joins {
		total += j.cost[assign[j.left]][assign[j.right]]
	}
	return total
}

// TableRecommendation is the result of the table-level decision.
type TableRecommendation struct {
	// Placement maps every workload table to its recommended store.
	Placement costmodel.Placement
	// EstimatedCost is the predicted workload runtime (ns) under Placement.
	EstimatedCost float64
	// RowOnlyCost and ColumnOnlyCost are the predicted runtimes when every
	// table is forced into a single store — the paper's RS-only/CS-only
	// baselines.
	RowOnlyCost, ColumnOnlyCost float64
	// Exact reports whether the placement came from exhaustive enumeration
	// (true) or local search (false).
	Exact bool
}

// RecommendTables performs the table-level recommendation of §3.1: it
// estimates the workload runtime for placements of all tables and returns
// the cheapest. Tables present in pinned keep their assigned store (the
// paper's join experiment pins the small dimension table to the row
// store).
func (a *Advisor) RecommendTables(w *query.Workload, info costmodel.InfoSource, pinned costmodel.Placement) *TableRecommendation {
	d := a.decompose(w, info)
	n := len(d.tables)
	rec := &TableRecommendation{Placement: costmodel.Placement{}}
	if n == 0 {
		rec.Exact = true
		return rec
	}
	pinnedBits := make([]int8, n) // -1 = free, 0 = row, 1 = column
	for i := range pinnedBits {
		pinnedBits[i] = -1
	}
	for t, s := range pinned {
		if i, ok := d.index[strings.ToLower(t)]; ok {
			if s == catalog.ColumnStore {
				pinnedBits[i] = 1
			} else {
				pinnedBits[i] = 0
			}
		}
	}

	// Baselines.
	all := make([]uint8, n)
	rec.RowOnlyCost = d.cost(all)
	for i := range all {
		all[i] = 1
	}
	rec.ColumnOnlyCost = d.cost(all)

	var best []uint8
	var bestCost float64
	free := 0
	for _, p := range pinnedBits {
		if p < 0 {
			free++
		}
	}
	if free <= a.Config.ExactLimit {
		best, bestCost = d.enumerate(pinnedBits)
		rec.Exact = true
	} else {
		best, bestCost = d.localSearch(pinnedBits, a.Config.LocalSearchRestarts)
	}
	for i, t := range d.tables {
		rec.Placement[t] = storeOf[best[i]]
	}
	rec.EstimatedCost = bestCost
	return rec
}

// enumerate exhaustively searches all assignments of the free tables.
func (d *decomposition) enumerate(pinned []int8) ([]uint8, float64) {
	n := len(d.tables)
	var freeIdx []int
	assign := make([]uint8, n)
	for i, p := range pinned {
		switch p {
		case -1:
			freeIdx = append(freeIdx, i)
		default:
			assign[i] = uint8(p)
		}
	}
	best := make([]uint8, n)
	copy(best, assign)
	bestCost := d.cost(assign)
	for mask := 0; mask < 1<<len(freeIdx); mask++ {
		for b, i := range freeIdx {
			assign[i] = uint8(mask >> b & 1)
		}
		if c := d.cost(assign); c < bestCost {
			bestCost = c
			copy(best, assign)
		}
	}
	return best, bestCost
}

// localSearch performs greedy hill climbing with random restarts: start
// from the per-table independent optimum (and random points), then flip
// single tables while the total cost improves. Join terms make the
// problem non-separable, but the join graph of real workloads is sparse,
// so hill climbing converges quickly.
func (d *decomposition) localSearch(pinned []int8, restarts int) ([]uint8, float64) {
	n := len(d.tables)
	rng := rand.New(rand.NewSource(42))
	start := func(random bool) []uint8 {
		assign := make([]uint8, n)
		for i := range assign {
			switch {
			case pinned[i] >= 0:
				assign[i] = uint8(pinned[i])
			case random:
				assign[i] = uint8(rng.Intn(2))
			case d.single[i][1] < d.single[i][0]:
				assign[i] = 1
			}
		}
		return assign
	}
	climb := func(assign []uint8) float64 {
		cost := d.cost(assign)
		for improved := true; improved; {
			improved = false
			for i := 0; i < n; i++ {
				if pinned[i] >= 0 {
					continue
				}
				assign[i] ^= 1
				if c := d.cost(assign); c < cost {
					cost = c
					improved = true
				} else {
					assign[i] ^= 1
				}
			}
		}
		return cost
	}
	best := start(false)
	bestCost := climb(best)
	for r := 0; r < restarts; r++ {
		cand := start(true)
		if c := climb(cand); c < bestCost {
			bestCost = c
			best = cand
		}
	}
	return best, bestCost
}

// WorkloadTables returns the sorted tables of a decomposed workload
// (exposed for recommendation reporting).
func (a *Advisor) WorkloadTables(w *query.Workload) []string {
	tables := w.Tables()
	sort.Strings(tables)
	return tables
}
