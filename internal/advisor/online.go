package advisor

import (
	"fmt"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/monitor"
)

// RecommendSnapshot is the online entry point: it computes a layout
// recommendation from a live monitor snapshot instead of a parsed
// workload file. The snapshot's retained query sample is the
// representative workload and its merged extended statistics replace the
// offline replay-derived recorder; table statistics come from the
// catalog, which callers should refresh (engine.CollectStats) before
// advising so the cost model sees current row counts.
func (a *Advisor) RecommendSnapshot(snap *monitor.Snapshot, cat *catalog.Catalog, pinned costmodel.Placement) (*Recommendation, error) {
	if snap == nil || snap.Queries.Len() == 0 {
		return nil, fmt.Errorf("advisor: snapshot carries no observed workload")
	}
	info := InfoFromCatalog(cat)
	return a.Recommend(snap.Queries, info, snap.Recorder, pinned), nil
}

// CurrentLayout reads the layout the catalog currently records for the
// snapshot's tables, so online callers can compare a recommendation's
// predicted cost against the cost of staying put (the hysteresis test in
// internal/migrate).
func CurrentLayout(snap *monitor.Snapshot, cat *catalog.Catalog) Layout {
	layout := Layout{Stores: costmodel.Placement{}, Partitions: map[string]*catalog.PartitionSpec{}}
	for _, tw := range snap.Tables {
		e := cat.Table(tw.Name)
		if e == nil {
			continue
		}
		if e.Partitioning != nil {
			layout.Partitions[tw.Name] = e.Partitioning
			// Partitioned tables keep their cold-side store for the
			// table-level placement term.
			if h := e.Partitioning.Horizontal; h != nil {
				layout.Stores[tw.Name] = h.ColdStore
			} else {
				layout.Stores[tw.Name] = catalog.ColumnStore
			}
			continue
		}
		layout.Stores[tw.Name] = e.Store
	}
	return layout
}
