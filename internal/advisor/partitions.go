package advisor

import (
	"fmt"
	"strings"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/query"
	"hybridstore/internal/stats"
	"hybridstore/internal/value"
)

// PartitionCandidate is one possible partitioning of one table, with the
// heuristic that produced it.
type PartitionCandidate struct {
	Table  string
	Spec   *catalog.PartitionSpec
	Reason string
}

// deriveStats replays a workload through a statistics recorder — the
// offline-mode approximation of the online mode's recorded extended
// statistics ("we could ... estimate those tuples based on the queries and
// standard table statistics", §3.2).
func deriveStats(w *query.Workload) *stats.Recorder {
	rec := stats.NewRecorder()
	for _, q := range w.Queries {
		rec.Observe(q, 0)
	}
	return rec
}

// PartitionCandidates applies the paper's heuristic (§3.2/§4) per table:
//
//   - a high fraction of insert queries → a row-store partition for newly
//     arriving tuples (horizontal split above the current maximum key);
//   - tuples frequently updated as a whole within a bounded key range →
//     a row-store hot partition (horizontal split at the range start);
//   - attributes mainly used for updates or point selections rather than
//     analysis → a row-store vertical partition (primary key replicated).
//
// For each table it emits up to three candidates (horizontal, vertical,
// both); the caller picks by estimated layout cost.
func (a *Advisor) PartitionCandidates(w *query.Workload, info costmodel.InfoSource, ws *stats.Recorder, coldStores costmodel.Placement) []PartitionCandidate {
	if ws == nil {
		ws = deriveStats(w)
	}
	var out []PartitionCandidate
	for _, table := range a.WorkloadTables(w) {
		ti, ok := info(table)
		if !ok || ti.Schema == nil || ti.Rows < a.Config.MinPartitionRows {
			continue
		}
		ts := ws.Table(table)
		if ts == nil {
			continue
		}
		h, hReason := a.horizontalCandidate(ti, ts)
		verts := a.verticalCandidates(ti, ts)
		key := strings.ToLower(table)
		if h != nil {
			out = append(out, PartitionCandidate{Table: key, Spec: &catalog.PartitionSpec{Horizontal: h}, Reason: hReason})
		}
		for _, v := range verts {
			out = append(out, PartitionCandidate{Table: key, Spec: &catalog.PartitionSpec{Vertical: v.spec}, Reason: v.reason})
			if h != nil {
				out = append(out, PartitionCandidate{
					Table:  key,
					Spec:   &catalog.PartitionSpec{Horizontal: h, Vertical: v.spec},
					Reason: hReason + "; " + v.reason,
				})
			}
		}
	}
	return out
}

// horizontalCandidate derives a horizontal split. The hot partition is
// always row-store (fast inserts and updates) and the cold partition is
// always column-store (fast analysis of historic data) — the paper's
// scheme; whether the split actually pays off is decided by the caller's
// layout cost estimate.
func (a *Advisor) horizontalCandidate(ti costmodel.TableInfo, ts *stats.TableStats) (*catalog.HorizontalSpec, string) {
	sch := ti.Schema
	if len(sch.PrimaryKey) == 0 {
		return nil, ""
	}
	splitCol := sch.PrimaryKey[0]
	if !numericType(sch.Columns[splitCol].Type) {
		return nil, ""
	}
	// Hot update range: updates repeatedly address a bounded key region.
	if ts.UpdateRangeSeen && ts.UpdateRangeCol == splitCol && ts.UpdateRangeCount >= a.Config.HotUpdateMinCount {
		if ti.Stats != nil {
			if lo, hi, ok := ti.Stats.MinMax(splitCol); ok {
				span := hi.Float() - lo.Float()
				if span > 0 {
					frac := (hi.Float() - ts.UpdateRangeLo.Float()) / span
					if frac > 0 && frac <= a.Config.HotRangeMaxFraction {
						return &catalog.HorizontalSpec{
								SplitCol:  splitCol,
								SplitVal:  ts.UpdateRangeLo,
								HotStore:  catalog.RowStore,
								ColdStore: catalog.ColumnStore,
							}, fmt.Sprintf("updates concentrate on keys >= %s (%.0f%% of the data)",
								ts.UpdateRangeLo, frac*100)
					}
				}
			}
		}
	}
	// Insert partition: enough inserts to justify a row-store partition
	// for newly arriving tuples.
	if ts.InsertFraction() >= a.Config.InsertFractionThreshold {
		if ti.Stats != nil {
			if _, hi, ok := ti.Stats.MinMax(splitCol); ok {
				splitVal := nextKey(hi)
				return &catalog.HorizontalSpec{
						SplitCol:  splitCol,
						SplitVal:  splitVal,
						HotStore:  catalog.RowStore,
						ColdStore: catalog.ColumnStore,
					}, fmt.Sprintf("%.1f%% of statements are inserts; new tuples land in a row-store partition",
						ts.InsertFraction()*100)
			}
		}
	}
	return nil, ""
}

// verticalVariant is one derived vertical split.
type verticalVariant struct {
	spec   *catalog.VerticalSpec
	reason string
}

// verticalCandidates derives vertical splits from per-attribute usage.
// Attributes used by both updates and analysis ("contested", e.g. a status
// column that is updated and grouped by) can reasonably live on either
// side, so a second variant with contested attributes in the column
// partition is emitted and the caller decides by estimated cost.
func (a *Advisor) verticalCandidates(ti costmodel.TableInfo, ts *stats.TableStats) []verticalVariant {
	sch := ti.Schema
	if len(sch.PrimaryKey) == 0 || len(ts.AttrUpdates) == 0 {
		return nil
	}
	n := sch.NumColumns()
	attr := func(s []int, i int) int {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	build := func(contestedToCol bool) (*catalog.VerticalSpec, int, int, int) {
		var rowCols, colCols []int
		oltpAttrs, olapAttrs, contested := 0, 0, 0
		for i := 0; i < n; i++ {
			if sch.IsPrimaryKey(i) {
				rowCols = append(rowCols, i)
				colCols = append(colCols, i)
				continue
			}
			updates := attr(ts.AttrUpdates, i)
			olap := attr(ts.AttrAggs, i) + attr(ts.AttrGroupBys, i) + attr(ts.AttrOLAPPreds, i)
			switch {
			case updates > 0 && olap > 0:
				contested++
				if contestedToCol {
					colCols = append(colCols, i)
					olapAttrs++
				} else {
					rowCols = append(rowCols, i)
					oltpAttrs++
				}
			case updates > 0:
				rowCols = append(rowCols, i)
				oltpAttrs++
			case olap > 0:
				colCols = append(colCols, i)
				olapAttrs++
			default:
				// Untouched attributes keep tuple reconstruction cheap in
				// the row partition.
				rowCols = append(rowCols, i)
			}
		}
		// A split needs analytical attributes on the column side and a
		// non-trivial row side: update-hot attributes, or — for the
		// contested-to-column variant — at least the untouched attributes
		// that keep tuple reconstruction out of the column partition.
		rowExtra := len(rowCols) - len(sch.PrimaryKey)
		if olapAttrs == 0 || rowExtra == 0 {
			return nil, 0, 0, 0
		}
		if !contestedToCol && oltpAttrs == 0 {
			return nil, 0, 0, 0
		}
		return &catalog.VerticalSpec{RowCols: rowCols, ColCols: colCols}, oltpAttrs, olapAttrs, contested
	}
	var out []verticalVariant
	if spec, oltp, olap, contested := build(false); spec != nil {
		out = append(out, verticalVariant{spec,
			fmt.Sprintf("%d OLTP attribute(s) vs %d aggregated attribute(s)", oltp, olap)})
		if contested > 0 {
			if alt, oltp2, olap2, _ := build(true); alt != nil {
				out = append(out, verticalVariant{alt,
					fmt.Sprintf("%d OLTP attribute(s) vs %d aggregated attribute(s); %d contested attribute(s) kept columnar", oltp2, olap2, contested)})
			}
		}
	}
	return out
}

func numericType(t value.Type) bool {
	switch t {
	case value.Integer, value.Bigint, value.Double, value.Date:
		return true
	default:
		return false
	}
}

// nextKey returns the smallest key strictly above v for integer-like
// types (used to split "newly arriving tuples" from existing data).
func nextKey(v value.Value) value.Value {
	switch v.Type() {
	case value.Integer:
		return value.NewInt(v.Int() + 1)
	case value.Bigint:
		return value.NewBigint(v.Int() + 1)
	case value.Date:
		return value.NewDate(v.Int() + 1)
	default:
		return value.NewDouble(v.Float() + 1)
	}
}
