package advisor

import (
	"fmt"
	"sort"
	"strings"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
)

// renderDDL produces the statements that move data into the recommended
// layout — the paper's "respective statements to move the data into the
// recommended store" handed to the administrator (§4).
func (a *Advisor) renderDDL(rec *Recommendation, info costmodel.InfoSource) []string {
	var out []string
	tables := make([]string, 0, len(rec.Layout.Stores))
	for t := range rec.Layout.Stores {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		spec := rec.Layout.SpecFor(t)
		if spec == nil {
			out = append(out, fmt.Sprintf("ALTER TABLE %s MOVE TO %s STORE;", t, rec.Layout.Stores.StoreOf(t)))
			continue
		}
		out = append(out, partitionDDL(t, spec, info))
	}
	return out
}

func partitionDDL(table string, spec *catalog.PartitionSpec, info costmodel.InfoSource) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ALTER TABLE %s PARTITION BY", table)
	colName := func(c int) string {
		if ti, ok := info(table); ok && ti.Schema != nil && c < ti.Schema.NumColumns() {
			return ti.Schema.Columns[c].Name
		}
		return fmt.Sprintf("col%d", c)
	}
	if h := spec.Horizontal; h != nil {
		fmt.Fprintf(&b, " RANGE (%s) (PARTITION hot VALUES >= %s STORE %s, PARTITION historic STORE %s",
			colName(h.SplitCol), h.SplitVal, h.HotStore, h.ColdStore)
		if spec.Vertical != nil {
			b.WriteString(" ")
			writeVertical(&b, spec.Vertical, colName)
		}
		b.WriteString(")")
	} else if spec.Vertical != nil {
		b.WriteString(" ")
		writeVertical(&b, spec.Vertical, colName)
	}
	b.WriteString(";")
	return b.String()
}

func writeVertical(b *strings.Builder, v *catalog.VerticalSpec, colName func(int) string) {
	names := func(cols []int) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = colName(c)
		}
		return strings.Join(parts, ", ")
	}
	fmt.Fprintf(b, "VERTICAL ((%s) STORE ROW, (%s) STORE COLUMN)", names(v.RowCols), names(v.ColCols))
}
