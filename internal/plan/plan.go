// Package plan defines the explicit physical plan IR for read
// statements: typed operator nodes (Scan, Filter, Project, HashJoin,
// Aggregate, Sort, TopK, Limit) that the planner lowers a query.Query
// into and the engine executes. Each node carries the planner's cost and
// cardinality estimate so EXPLAIN can render the chosen plan and EXPLAIN
// ANALYZE can compare estimates to actuals (spans are tagged with the
// node id).
//
// Plans are generic: the structural decisions (build side, predicate
// pushdown, top-K vs. full sort) depend only on the statement's shape
// and the catalog state, never on bound parameter values. The executor
// re-derives the concrete predicate fragments from the bound query at
// execution time, so one cached plan serves every parameter binding of
// a prepared statement. The node predicates stored here are the
// planning-time shapes, kept for costing and display.
package plan

import (
	"fmt"
	"strings"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
)

// Estimate is the planner's prediction for one node: output cardinality
// and cumulative cost (children included) in model nanoseconds.
type Estimate struct {
	Rows   float64
	CostNs float64
}

// Node is one physical operator in a plan tree.
type Node interface {
	// ID is the node's plan-unique id; EXPLAIN ANALYZE spans are tagged
	// with it ("scan#1") so estimates can be lined up with actuals.
	ID() int
	// Kind names the operator ("scan", "hashjoin", ...).
	Kind() string
	// Children returns the node's inputs, build side first for joins.
	Children() []Node
	// Estimate returns the planner's cost/cardinality prediction.
	Estimate() Estimate
	// Detail renders operator-specific attributes for EXPLAIN.
	Detail() string
}

// base carries the id and estimate shared by every node.
type base struct {
	id  int
	est Estimate
}

func (b *base) ID() int            { return b.id }
func (b *base) Estimate() Estimate { return b.est }

// Scan reads one table's storage, evaluating a pushed-down predicate
// inside the scan kernels (zone maps, dictionary codes) and
// materializing only Cols.
type Scan struct {
	base
	Table string
	Store catalog.StoreKind
	Pred  expr.Predicate // planning-time shape; nil = full scan
	Cols  []int          // table-local columns the scan materializes
}

func (*Scan) Kind() string       { return "scan" }
func (s *Scan) Children() []Node { return nil }
func (s *Scan) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s store=%s", s.Table, s.Store)
	if s.Pred != nil {
		fmt.Fprintf(&b, " pred=%s", s.Pred)
	}
	fmt.Fprintf(&b, " cols=%v", s.Cols)
	return b.String()
}

// Filter evaluates a residual predicate that could not be pushed into a
// scan (e.g. a post-join conjunct referencing both sides).
type Filter struct {
	base
	Input Node
	Pred  expr.Predicate
}

func (*Filter) Kind() string       { return "filter" }
func (f *Filter) Children() []Node { return []Node{f.Input} }
func (f *Filter) Detail() string   { return fmt.Sprintf("pred=%s", f.Pred) }

// Project narrows rows to the statement's output columns.
type Project struct {
	base
	Input Node
	Cols  []int
}

func (*Project) Kind() string       { return "project" }
func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) Detail() string   { return fmt.Sprintf("cols=%v", p.Cols) }

// HashJoin is an equi-join: Build is materialized into a hash table,
// Probe streams against it. Column references above the join use
// combined indexing (left columns first, then right).
type HashJoin struct {
	base
	Build, Probe Node
	// BuildIsLeft records which query side builds: true when the
	// statement's left table (q.Table) is the build side.
	BuildIsLeft       bool
	LeftCol, RightCol int
}

func (*HashJoin) Kind() string       { return "hashjoin" }
func (j *HashJoin) Children() []Node { return []Node{j.Build, j.Probe} }
func (j *HashJoin) Detail() string {
	side := "right"
	if j.BuildIsLeft {
		side = "left"
	}
	return fmt.Sprintf("on left.%d = right.%d build=%s", j.LeftCol, j.RightCol, side)
}

// Aggregate computes grouped aggregates over its input.
type Aggregate struct {
	base
	Input   Node
	Specs   []agg.Spec
	GroupBy []int
}

func (*Aggregate) Kind() string       { return "aggregate" }
func (a *Aggregate) Children() []Node { return []Node{a.Input} }
func (a *Aggregate) Detail() string {
	names := make([]string, len(a.Specs))
	for i, s := range a.Specs {
		if s.Col < 0 {
			names[i] = s.Func.String() + "(*)"
		} else {
			names[i] = fmt.Sprintf("%s(%d)", s.Func, s.Col)
		}
	}
	if len(a.GroupBy) == 0 {
		return strings.Join(names, ",")
	}
	return fmt.Sprintf("%s group by %v", strings.Join(names, ","), a.GroupBy)
}

// Sort fully orders its input by Keys (stable; ties keep arrival order).
type Sort struct {
	base
	Input Node
	Keys  []query.Order
}

func (*Sort) Kind() string       { return "sort" }
func (s *Sort) Children() []Node { return []Node{s.Input} }
func (s *Sort) Detail() string   { return orderDetail(s.Keys) }

// TopK replaces Sort+Limit: a bounded heap retains the K smallest rows
// under (Keys, arrival order) in one pass with O(K) memory — the exact
// prefix a stable sort followed by LIMIT K would produce.
type TopK struct {
	base
	Input Node
	Keys  []query.Order
	K     int
}

func (*TopK) Kind() string       { return "topk" }
func (t *TopK) Children() []Node { return []Node{t.Input} }
func (t *TopK) Detail() string   { return fmt.Sprintf("%s k=%d", orderDetail(t.Keys), t.K) }

// Limit truncates its input after N rows (unordered: the scan
// short-circuits as soon as N rows matched).
type Limit struct {
	base
	Input Node
	N     int
}

func (*Limit) Kind() string       { return "limit" }
func (l *Limit) Children() []Node { return []Node{l.Input} }
func (l *Limit) Detail() string   { return fmt.Sprintf("n=%d", l.N) }

func orderDetail(keys []query.Order) string {
	parts := make([]string, len(keys))
	for i, o := range keys {
		dir := "asc"
		if o.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("%d %s", o.Col, dir)
	}
	return "by " + strings.Join(parts, ", ")
}

// Plan is one planned read statement: the operator tree plus the
// structural decisions the executor consumes directly.
type Plan struct {
	Root Node

	// BuildLeft records the hash-join build side (meaningful only when
	// the statement joins): true = the left table (q.Table) builds.
	BuildLeft bool
	// Pushdown records whether single-side conjuncts are pushed below
	// the join into the scans; off, the whole predicate is evaluated
	// post-join (used by the planner bench as a degraded baseline).
	Pushdown bool

	// CatalogVersion is the catalog.Catalog.Version the plan was built
	// against; caches compare it to decide whether the plan is stale.
	CatalogVersion uint64
}

// Estimate returns the root node's estimate (whole-statement cost).
func (p *Plan) Estimate() Estimate {
	if p == nil || p.Root == nil {
		return Estimate{}
	}
	return p.Root.Estimate()
}

// Walk visits the tree pre-order (parent before children, build before
// probe), passing each node's depth.
func Walk(n Node, fn func(n Node, depth int)) {
	walk(n, 0, fn)
}

func walk(n Node, depth int, fn func(Node, int)) {
	if n == nil {
		return
	}
	fn(n, depth)
	for _, c := range n.Children() {
		walk(c, depth+1, fn)
	}
}

// String renders the plan tree one node per line, indented by depth.
func (p *Plan) String() string {
	var b strings.Builder
	Walk(p.Root, func(n Node, depth int) {
		est := n.Estimate()
		fmt.Fprintf(&b, "%s%s#%d (rows=%.0f cost=%.0fns) %s\n",
			strings.Repeat("  ", depth), n.Kind(), n.ID(), est.Rows, est.CostNs, n.Detail())
	})
	return b.String()
}
