package plan

import (
	"fmt"
	"math"
	"sort"

	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
)

// TableMeta is the planner's view of one table: everything the cost
// model and cardinality estimation need, snapshotted by the engine under
// its read lock.
type TableMeta struct {
	Schema   *schema.Table
	Store    catalog.StoreKind
	Rows     int
	Stats    *catalog.TableStats // nil when statistics were never collected
	HasIndex func(col int) bool
}

// Env supplies the planner's inputs. Meta (and LiveSelectivity) are only
// guaranteed valid for the duration of the Build call — the engine hands
// out closures that read runtime state under its lock.
type Env struct {
	// Meta resolves a table name to its current characteristics.
	Meta func(table string) (TableMeta, bool)
	// Model is the calibrated cost model used to cost scan and
	// aggregate work; nil leaves node costs at zero (plans still carry
	// cardinality estimates and structural decisions).
	Model *costmodel.Model
	// LiveSelectivity optionally returns the workload monitor's observed
	// mean predicate selectivity for a table — the fallback cardinality
	// signal for tables without collected statistics.
	LiveSelectivity func(table string) (float64, bool)
	// CatalogVersion is stamped into the plan for cache invalidation.
	CatalogVersion uint64
}

// Options force planner decisions; the zero value plans normally. The
// planner bench uses them to measure degraded baselines.
type Options struct {
	// DisablePushdown keeps every predicate conjunct above the join.
	DisablePushdown bool
	// ForceBuildLeft pins the hash-join build side (nil = cost-based).
	ForceBuildLeft *bool
	// DisableTopK forces ORDER BY + LIMIT through a full sort.
	DisableTopK bool
}

// defaultSel is assumed when neither statistics nor live monitor
// observations give a signal (matches expr's default).
const defaultSel = 0.1

// Build plans one read statement (Select or Aggregate, with or without a
// join) into a physical plan.
func Build(q *query.Query, env Env) (*Plan, error) {
	return BuildOptions(q, env, Options{})
}

// BuildOptions is Build with forced planner decisions.
func BuildOptions(q *query.Query, env Env, opts Options) (*Plan, error) {
	if q.Kind != query.Select && q.Kind != query.Aggregate {
		return nil, fmt.Errorf("plan: cannot plan %v statement", q.Kind)
	}
	b := &builder{q: q, env: env, opts: opts}
	var (
		root Node
		err  error
	)
	if q.Join != nil {
		root, err = b.join()
	} else {
		root, err = b.single()
	}
	if err != nil {
		return nil, err
	}
	return &Plan{
		Root:           root,
		BuildLeft:      b.buildLeft,
		Pushdown:       !opts.DisablePushdown,
		CatalogVersion: env.CatalogVersion,
	}, nil
}

type builder struct {
	q    *query.Query
	env  Env
	opts Options

	nextID    int
	buildLeft bool
}

func (b *builder) id() int {
	b.nextID++
	return b.nextID
}

func (b *builder) node(est Estimate) base { return base{id: b.id(), est: est} }

// meta resolves a table or fails with the planner's unknown-table error.
func (b *builder) meta(table string) (TableMeta, error) {
	m, ok := b.env.Meta(table)
	if !ok || m.Schema == nil {
		return TableMeta{}, fmt.Errorf("plan: unknown table %q", table)
	}
	return m, nil
}

// selectivity estimates the fraction of m's rows matching pred:
// collected statistics first, the live monitor's observed average
// second, the textbook default last.
func (b *builder) selectivity(table string, m TableMeta, pred expr.Predicate) float64 {
	if pred == nil {
		return 1
	}
	if m.Stats != nil {
		return expr.EstimateSelectivity(pred, m.Stats)
	}
	if b.env.LiveSelectivity != nil {
		if s, ok := b.env.LiveSelectivity(table); ok {
			return clamp01(s)
		}
	}
	return defaultSel
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// cost runs the calibrated cost model over a synthetic per-node query.
func (b *builder) cost(q *query.Query, m TableMeta) float64 {
	if b.env.Model == nil {
		return 0
	}
	info := func(string) (costmodel.TableInfo, bool) {
		ti := costmodel.TableInfo{
			Schema: m.Schema, Rows: m.Rows, Compression: 1, HasIndex: m.HasIndex,
		}
		if m.Stats != nil {
			ti.Stats = m.Stats
			ti.Compression = m.Stats.AvgCompression()
		}
		return ti, true
	}
	place := costmodel.Placement{}
	if q.Table != "" {
		place[lowerKey(q.Table)] = m.Store
	}
	return b.env.Model.EstimateQuery(q, info, place)
}

func lowerKey(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// scanNode builds a Scan over table m materializing cols under pred.
func (b *builder) scanNode(table string, m TableMeta, pred expr.Predicate, cols []int, limit int) *Scan {
	rows := float64(m.Rows) * b.selectivity(table, m, pred)
	if limit > 0 && float64(limit) < rows {
		rows = float64(limit)
	}
	costQ := &query.Query{Kind: query.Select, Table: table, Cols: cols, Pred: pred, Limit: limit}
	s := &Scan{Table: table, Store: m.Store, Pred: pred, Cols: cols}
	s.base = b.node(Estimate{Rows: rows, CostNs: b.cost(costQ, m)})
	return s
}

// Per-row constants for the operators the calibrated model does not
// cover; display-grade estimates (the model costs the scans and
// aggregates, which dominate).
const (
	sortRowNs   = 50.0
	hashRowNs   = 40.0
	probeRowNs  = 25.0
	filterRowNs = 5.0
)

// single plans a read over one table.
func (b *builder) single() (Node, error) {
	q := b.q
	m, err := b.meta(q.Table)
	if err != nil {
		return nil, err
	}
	n := m.Schema.NumColumns()
	if err := validateCols(q, n, q.Table); err != nil {
		return nil, err
	}

	if q.Kind == query.Aggregate {
		// The storage layer fuses scan+aggregate into one kernel; the
		// plan keeps them as two nodes so the trace can attribute work.
		scanCols := sortedUnique(aggInputCols(q, nil))
		scan := b.scanNode(q.Table, m, q.Pred, scanCols, 0)
		groups := b.groupCount(m, q.GroupBy, scan.est.Rows)
		a := &Aggregate{Input: scan, Specs: q.Aggs, GroupBy: q.GroupBy}
		a.base = b.node(Estimate{Rows: groups, CostNs: b.cost(q, m)})
		return b.aggOrder(a, groups), nil
	}

	cols := q.Cols
	if cols == nil {
		cols = allCols(n)
	}
	ordered := len(q.OrderBy) > 0
	scanCols := cols
	if ordered {
		scanCols = unionCols(cols, orderByCols(q.OrderBy))
	}
	limit := q.Limit
	if ordered {
		limit = 0 // an ORDER BY must see every matching row
	}
	var cur Node = b.scanNode(q.Table, m, q.Pred, scanCols, limit)
	cur = b.orderLimit(cur, q.OrderBy, q.Limit)
	p := &Project{Input: cur, Cols: cols}
	p.base = b.node(Estimate{Rows: cur.Estimate().Rows, CostNs: cur.Estimate().CostNs})
	return p, nil
}

// orderLimit stacks the ordering/limiting operators over cur: TopK for
// ORDER BY + LIMIT (unless disabled), Sort for a bare ORDER BY, Limit
// for a bare LIMIT. A bare unordered LIMIT is estimated at the scan
// already (the scan short-circuits).
func (b *builder) orderLimit(cur Node, keys []query.Order, limit int) Node {
	in := cur.Estimate()
	switch {
	case len(keys) > 0 && limit > 0 && !b.opts.DisableTopK:
		rows := math.Min(in.Rows, float64(limit))
		t := &TopK{Input: cur, Keys: keys, K: limit}
		// One heap update per input row against a bounded heap.
		t.base = b.node(Estimate{Rows: rows, CostNs: in.CostNs + in.Rows*sortRowNs})
		return t
	case len(keys) > 0:
		s := &Sort{Input: cur, Keys: keys}
		s.base = b.node(Estimate{Rows: in.Rows, CostNs: in.CostNs + in.Rows*math.Log2(in.Rows+2)*sortRowNs})
		var out Node = s
		if limit > 0 {
			rows := math.Min(in.Rows, float64(limit))
			l := &Limit{Input: s, N: limit}
			l.base = b.node(Estimate{Rows: rows, CostNs: s.est.CostNs})
			out = l
		}
		return out
	case limit > 0:
		rows := math.Min(in.Rows, float64(limit))
		l := &Limit{Input: cur, N: limit}
		l.base = b.node(Estimate{Rows: rows, CostNs: in.CostNs})
		return l
	default:
		return cur
	}
}

// aggOrder appends the Sort over grouped output an aggregate ORDER BY
// requires (Validate guarantees the keys are group-by columns).
func (b *builder) aggOrder(a *Aggregate, groups float64) Node {
	if len(b.q.OrderBy) == 0 {
		return a
	}
	s := &Sort{Input: a, Keys: b.q.OrderBy}
	s.base = b.node(Estimate{Rows: groups, CostNs: a.est.CostNs + groups*math.Log2(groups+2)*sortRowNs})
	return s
}

// groupCount estimates the number of groups: the product of per-column
// distinct counts (capped by input rows), 1 for a global aggregate.
func (b *builder) groupCount(m TableMeta, groupBy []int, inRows float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, c := range groupBy {
		d := 0
		if m.Stats != nil {
			d = m.Stats.Distinct(c)
		}
		if d <= 0 {
			d = 100 // unknown: assume moderate cardinality
		}
		groups *= float64(d)
	}
	return math.Min(groups, math.Max(inRows, 1))
}

// join plans a two-table hash join, choosing the build side by estimated
// post-pushdown cardinality and pushing single-side conjuncts into the
// scans.
func (b *builder) join() (Node, error) {
	q := b.q
	mL, err := b.meta(q.Table)
	if err != nil {
		return nil, err
	}
	mR, err := b.meta(q.Join.Table)
	if err != nil {
		return nil, err
	}
	nL := mL.Schema.NumColumns()
	nR := mR.Schema.NumColumns()
	if q.Join.LeftCol < 0 || q.Join.LeftCol >= nL || q.Join.RightCol < 0 || q.Join.RightCol >= nR {
		return nil, fmt.Errorf("plan: join columns out of range")
	}
	if err := validateCols(q, nL+nR, q.Table); err != nil {
		return nil, err
	}

	leftPred, rightPred, postPred := SplitJoinPred(q.Pred, nL, nR)
	if b.opts.DisablePushdown {
		leftPred, rightPred, postPred = nil, nil, q.Pred
	}
	needL, needR := JoinNeededCols(q, nL, nR)

	rowsL := float64(mL.Rows) * b.selectivity(q.Table, mL, leftPred)
	rowsR := float64(mR.Rows) * b.selectivity(q.Join.Table, mR, rightPred)

	// Greedy statistics-light join ordering: the smaller estimated
	// (post-pushdown) input builds the hash table.
	buildLeft := rowsL < rowsR
	if b.opts.ForceBuildLeft != nil {
		buildLeft = *b.opts.ForceBuildLeft
	}
	b.buildLeft = buildLeft

	scanL := b.scanNode(q.Table, mL, leftPred, withCol(needL, q.Join.LeftCol), 0)
	scanR := b.scanNode(q.Join.Table, mR, rightPred, withCol(needR, q.Join.RightCol), 0)
	build, probe := scanR, scanL
	buildMeta, buildCol := mR, q.Join.RightCol
	if buildLeft {
		build, probe = scanL, scanR
		buildMeta, buildCol = mL, q.Join.LeftCol
	}

	// Join cardinality: each probe row matches |build| / distinct(build
	// key) rows on average; an unknown distinct count assumes a key
	// (FK-style) join.
	d := 0
	if buildMeta.Stats != nil {
		d = buildMeta.Stats.Distinct(buildCol)
	}
	if d <= 0 {
		d = int(math.Max(build.est.Rows, 1))
	}
	joinRows := probe.est.Rows * build.est.Rows / float64(d)
	j := &HashJoin{
		Build: build, Probe: probe, BuildIsLeft: buildLeft,
		LeftCol: q.Join.LeftCol, RightCol: q.Join.RightCol,
	}
	j.base = b.node(Estimate{
		Rows: joinRows,
		CostNs: build.est.CostNs + probe.est.CostNs +
			build.est.Rows*hashRowNs + probe.est.Rows*probeRowNs,
	})

	var cur Node = j
	if postPred != nil {
		// No cross-table statistics: assume the default selectivity.
		f := &Filter{Input: j, Pred: postPred}
		f.base = b.node(Estimate{
			Rows:   joinRows * defaultSel,
			CostNs: j.est.CostNs + joinRows*filterRowNs,
		})
		cur = f
	}

	if q.Kind == query.Aggregate {
		in := cur.Estimate()
		groups := b.joinGroupCount(q.GroupBy, nL, mL, mR, in.Rows)
		a := &Aggregate{Input: cur, Specs: q.Aggs, GroupBy: q.GroupBy}
		a.base = b.node(Estimate{Rows: groups, CostNs: in.CostNs + in.Rows*float64(len(q.Aggs)+1)*filterRowNs})
		return b.aggOrder(a, groups), nil
	}

	cur = b.orderLimit(cur, q.OrderBy, q.Limit)
	outCols := q.Cols
	if outCols == nil {
		outCols = allCols(nL + nR)
	}
	rows := cur.Estimate().Rows
	if q.Limit > 0 && len(q.OrderBy) == 0 && float64(q.Limit) < rows {
		rows = float64(q.Limit) // the probe short-circuits at the limit
	}
	p := &Project{Input: cur, Cols: outCols}
	p.base = b.node(Estimate{Rows: rows, CostNs: cur.Estimate().CostNs})
	return p, nil
}

// joinGroupCount estimates groups over combined-index group-by columns.
func (b *builder) joinGroupCount(groupBy []int, nL int, mL, mR TableMeta, inRows float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, c := range groupBy {
		d := 0
		if c < nL {
			if mL.Stats != nil {
				d = mL.Stats.Distinct(c)
			}
		} else if mR.Stats != nil {
			d = mR.Stats.Distinct(c - nL)
		}
		if d <= 0 {
			d = 100
		}
		groups *= float64(d)
	}
	return math.Min(groups, math.Max(inRows, 1))
}

// validateCols checks every column reference of q against width n
// (combined width for joins).
func validateCols(q *query.Query, n int, table string) error {
	for _, c := range q.Cols {
		if c < 0 || c >= n {
			return fmt.Errorf("plan: select column %d out of range for %q", c, table)
		}
	}
	for _, o := range q.OrderBy {
		if o.Col < 0 || o.Col >= n {
			return fmt.Errorf("plan: order-by column %d out of range for %q", o.Col, table)
		}
	}
	for _, s := range q.Aggs {
		if s.Col >= n {
			return fmt.Errorf("plan: aggregate column %d out of range for %q", s.Col, table)
		}
	}
	for _, c := range q.GroupBy {
		if c < 0 || c >= n {
			return fmt.Errorf("plan: group-by column %d out of range for %q", c, table)
		}
	}
	for _, c := range expr.ColumnSet(q.Pred) {
		if c < 0 || c >= n {
			return fmt.Errorf("plan: predicate column %d out of range for %q", c, table)
		}
	}
	return nil
}

// aggInputCols collects the table-local columns an aggregate reads.
func aggInputCols(q *query.Query, dst []int) []int {
	for _, s := range q.Aggs {
		if s.Col >= 0 {
			dst = append(dst, s.Col)
		}
	}
	dst = append(dst, q.GroupBy...)
	dst = append(dst, expr.ColumnSet(q.Pred)...)
	return dst
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func orderByCols(keys []query.Order) []int {
	out := make([]int, len(keys))
	for i, o := range keys {
		out[i] = o.Col
	}
	return out
}

// unionCols appends the members of extra missing from cols, preserving
// cols' positions.
func unionCols(cols, extra []int) []int {
	out := append([]int{}, cols...)
	seen := make(map[int]struct{}, len(cols))
	for _, c := range cols {
		seen[c] = struct{}{}
	}
	for _, c := range extra {
		if _, ok := seen[c]; !ok {
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	return out
}

func sortedUnique(cols []int) []int {
	sort.Ints(cols)
	out := cols[:0]
	for i, c := range cols {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// withCol appends c to cols when absent (side-local scan column lists
// always include the join column).
func withCol(cols []int, c int) []int {
	return unionCols(cols, []int{c})
}

// SplitJoinPred partitions a combined-index predicate into conjuncts
// that reference only the left side (returned in left indexing), only
// the right side (remapped to right-local indexing), and the remainder
// evaluated post-join. The classification is purely structural — it
// depends on which columns a conjunct references, never on its bound
// values — so cached plans and fresh executions agree on it.
func SplitJoinPred(pred expr.Predicate, nL, nR int) (leftPred, rightPred, postPred expr.Predicate) {
	if pred == nil {
		return nil, nil, nil
	}
	var lefts, rights, posts []expr.Predicate
	rightMap := make(map[int]int, nR)
	for i := 0; i < nR; i++ {
		rightMap[nL+i] = i
	}
	identLeft := make(map[int]int, nL)
	for i := 0; i < nL; i++ {
		identLeft[i] = i
	}
	for _, c := range expr.Conjuncts(pred) {
		cols := expr.ColumnSet(c)
		side := sideOf(cols, nL)
		switch side {
		case 0:
			if p, ok := expr.Remap(c, identLeft); ok {
				lefts = append(lefts, p)
				continue
			}
			posts = append(posts, c)
		case 1:
			if p, ok := expr.Remap(c, rightMap); ok {
				rights = append(rights, p)
				continue
			}
			posts = append(posts, c)
		default:
			posts = append(posts, c)
		}
	}
	mk := func(ps []expr.Predicate) expr.Predicate {
		switch len(ps) {
		case 0:
			return nil
		case 1:
			return ps[0]
		default:
			return &expr.And{Preds: ps}
		}
	}
	return mk(lefts), mk(rights), mk(posts)
}

// sideOf returns 0 if all columns are left-side, 1 if all right-side,
// -1 if mixed or empty.
func sideOf(cols []int, nL int) int {
	if len(cols) == 0 {
		return -1
	}
	left, right := false, false
	for _, c := range cols {
		if c < nL {
			left = true
		} else {
			right = true
		}
	}
	switch {
	case left && !right:
		return 0
	case right && !left:
		return 1
	default:
		return -1
	}
}

// JoinNeededCols computes, per side, the columns a join query references
// (projection, aggregates, group-by, order-by, predicate) in side-local
// indexing, sorted ascending.
func JoinNeededCols(q *query.Query, nL, nR int) (needL, needR []int) {
	set := map[int]struct{}{}
	add := func(c int) { set[c] = struct{}{} }
	for _, c := range q.Cols {
		add(c)
	}
	if q.Kind == query.Select && q.Cols == nil {
		for c := 0; c < nL+nR; c++ {
			add(c)
		}
	}
	for _, s := range q.Aggs {
		if s.Col >= 0 {
			add(s.Col)
		}
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	for _, o := range q.OrderBy {
		add(o.Col)
	}
	for _, c := range expr.ColumnSet(q.Pred) {
		add(c)
	}
	for c := range set {
		if c < nL {
			needL = append(needL, c)
		} else {
			needR = append(needR, c-nL)
		}
	}
	sort.Ints(needL)
	sort.Ints(needR)
	return needL, needR
}
