package plan

import (
	"strings"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// testEnv builds a two-table environment: "big" (10k rows) and "small"
// (100 rows), both without collected statistics so selectivity falls
// back to the live monitor hint or the textbook default.
func testEnv(live func(string) (float64, bool)) Env {
	big := schema.MustNew("big", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "k", Type: value.Integer},
		{Name: "v", Type: value.Double, Nullable: true},
	}, "id")
	small := schema.MustNew("small", []schema.Column{
		{Name: "dkey", Type: value.Integer},
		{Name: "grp", Type: value.Integer},
	}, "dkey")
	meta := map[string]TableMeta{
		"big":   {Schema: big, Store: catalog.ColumnStore, Rows: 10_000},
		"small": {Schema: small, Store: catalog.RowStore, Rows: 100},
	}
	return Env{
		Meta: func(table string) (TableMeta, bool) {
			m, ok := meta[strings.ToLower(table)]
			return m, ok
		},
		LiveSelectivity: live,
		CatalogVersion:  42,
	}
}

func kinds(p *Plan) []string {
	var out []string
	Walk(p.Root, func(n Node, _ int) { out = append(out, n.Kind()) })
	return out
}

func TestBuildStampsVersionAndIDs(t *testing.T) {
	p, err := Build(&query.Query{Kind: query.Select, Table: "big"}, testEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	if p.CatalogVersion != 42 {
		t.Fatalf("CatalogVersion = %d, want 42", p.CatalogVersion)
	}
	seen := map[int]bool{}
	Walk(p.Root, func(n Node, _ int) {
		if n.ID() <= 0 || seen[n.ID()] {
			t.Fatalf("node %s has invalid/duplicate id %d", n.Kind(), n.ID())
		}
		seen[n.ID()] = true
	})
}

func TestBuildSideFollowsEstimates(t *testing.T) {
	// Without a predicate the 100-row table is the build side, whichever
	// side of the join it sits on.
	q := &query.Query{
		Kind: query.Select, Table: "big",
		Join: &query.Join{Table: "small", LeftCol: 1, RightCol: 0},
	}
	p, err := Build(q, testEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	if p.BuildLeft {
		t.Fatal("small right side should build, got BuildLeft")
	}

	// A selective predicate on the big (left) side — reported by the live
	// monitor, not statistics — shrinks it below the small side and flips
	// the decision.
	live := func(table string) (float64, bool) {
		if table == "big" {
			return 0.001, true // ~10 estimated rows
		}
		return 0, false
	}
	q2 := &query.Query{
		Kind: query.Select, Table: "big",
		Join: &query.Join{Table: "small", LeftCol: 1, RightCol: 0},
		Pred: &expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(10)},
	}
	p2, err := Build(q2, testEnv(live))
	if err != nil {
		t.Fatal(err)
	}
	if !p2.BuildLeft {
		t.Fatal("selective left side should build after pushdown")
	}

	// Forcing the build side overrides the estimate.
	force := false
	p3, err := BuildOptions(q2, testEnv(live), Options{ForceBuildLeft: &force})
	if err != nil {
		t.Fatal(err)
	}
	if p3.BuildLeft {
		t.Fatal("ForceBuildLeft=false ignored")
	}
}

func TestPushdownMovesPredIntoScans(t *testing.T) {
	// One conjunct per side plus a cross-side disjunction that must stay
	// above the join.
	pred := &expr.And{Preds: []expr.Predicate{
		&expr.Comparison{Col: 1, Op: expr.Lt, Val: value.NewInt(5)},      // left
		&expr.Comparison{Col: 3 + 1, Op: expr.Ge, Val: value.NewInt(2)},  // right (grp)
		&expr.Or{Preds: []expr.Predicate{                                 // mixed
			&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)},
			&expr.Comparison{Col: 3, Op: expr.Eq, Val: value.NewInt(1)},
		}},
	}}
	q := &query.Query{
		Kind: query.Select, Table: "big",
		Join: &query.Join{Table: "small", LeftCol: 1, RightCol: 0},
		Pred: pred,
	}
	p, err := Build(q, testEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Pushdown {
		t.Fatal("Pushdown flag not set on default plan")
	}
	var scansWithPred, filters int
	Walk(p.Root, func(n Node, _ int) {
		switch v := n.(type) {
		case *Scan:
			if v.Pred != nil {
				scansWithPred++
			}
		case *Filter:
			filters++
			if len(expr.Conjuncts(v.Pred)) != 1 {
				t.Fatalf("post-join filter should keep only the mixed conjunct, got %s", v.Pred)
			}
		}
	})
	if scansWithPred != 2 {
		t.Fatalf("want both scans predicated after pushdown, got %d", scansWithPred)
	}
	if filters != 1 {
		t.Fatalf("want exactly one residual filter, got %d", filters)
	}

	// Disabled: scans are bare and everything evaluates post-join.
	pd, err := BuildOptions(q, testEnv(nil), Options{DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if pd.Pushdown {
		t.Fatal("Pushdown flag set on degraded plan")
	}
	Walk(pd.Root, func(n Node, _ int) {
		if s, ok := n.(*Scan); ok && s.Pred != nil {
			t.Fatalf("scan on %q predicated despite DisablePushdown", s.Table)
		}
	})
}

func TestOrderLimitOperatorChoice(t *testing.T) {
	base := func() *query.Query {
		return &query.Query{Kind: query.Select, Table: "big", Cols: []int{0, 1}}
	}
	cases := []struct {
		name string
		mut  func(*query.Query)
		opts Options
		want []string
	}{
		{"plain", func(q *query.Query) {}, Options{}, []string{"project", "scan"}},
		{"topk", func(q *query.Query) {
			q.OrderBy = []query.Order{{Col: 1}}
			q.Limit = 10
		}, Options{}, []string{"project", "topk", "scan"}},
		{"topk-disabled", func(q *query.Query) {
			q.OrderBy = []query.Order{{Col: 1}}
			q.Limit = 10
		}, Options{DisableTopK: true}, []string{"project", "limit", "sort", "scan"}},
		{"bare-sort", func(q *query.Query) {
			q.OrderBy = []query.Order{{Col: 1, Desc: true}}
		}, Options{}, []string{"project", "sort", "scan"}},
		{"bare-limit", func(q *query.Query) { q.Limit = 10 }, Options{}, []string{"project", "limit", "scan"}},
	}
	for _, tc := range cases {
		q := base()
		tc.mut(q)
		p, err := BuildOptions(q, testEnv(nil), tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := kinds(p)
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("%s: plan shape %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTopKEstimateBounded(t *testing.T) {
	q := &query.Query{
		Kind: query.Select, Table: "big", Cols: []int{0},
		OrderBy: []query.Order{{Col: 1}}, Limit: 7,
	}
	p, err := Build(q, testEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	Walk(p.Root, func(n Node, _ int) {
		if tk, ok := n.(*TopK); ok {
			if tk.Estimate().Rows > 7 {
				t.Fatalf("topk row estimate %.1f exceeds k", tk.Estimate().Rows)
			}
		}
	})
}

func TestAggregatePlanShape(t *testing.T) {
	q := &query.Query{
		Kind: query.Aggregate, Table: "big",
		Aggs:    []agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}},
		GroupBy: []int{1},
		Pred:    &expr.Comparison{Col: 1, Op: expr.Ge, Val: value.NewInt(1)},
	}
	p, err := Build(q, testEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(p)
	if strings.Join(got, ",") != "aggregate,scan" {
		t.Fatalf("aggregate plan shape %v", got)
	}
	// A grouped aggregate's estimate must not exceed its input estimate.
	var a *Aggregate
	Walk(p.Root, func(n Node, _ int) {
		if v, ok := n.(*Aggregate); ok {
			a = v
		}
	})
	if a.Estimate().Rows > a.Input.Estimate().Rows {
		t.Fatalf("groups %.1f exceed input rows %.1f", a.Estimate().Rows, a.Input.Estimate().Rows)
	}
}

func TestBuildValidation(t *testing.T) {
	env := testEnv(nil)
	cases := []struct {
		name string
		q    *query.Query
		want string
	}{
		{"non-read", &query.Query{Kind: query.Insert, Table: "big"}, "cannot plan"},
		{"unknown-table", &query.Query{Kind: query.Select, Table: "nope"}, "unknown table"},
		{"bad-col", &query.Query{Kind: query.Select, Table: "big", Cols: []int{9}}, "out of range"},
		{"bad-order", &query.Query{Kind: query.Select, Table: "big",
			OrderBy: []query.Order{{Col: -1}}}, "out of range"},
		{"bad-join-col", &query.Query{Kind: query.Select, Table: "big",
			Join: &query.Join{Table: "small", LeftCol: 7, RightCol: 0}}, "out of range"},
		{"bad-pred-col", &query.Query{Kind: query.Select, Table: "big",
			Pred: &expr.Comparison{Col: 5, Op: expr.Eq, Val: value.NewInt(1)}}, "out of range"},
	}
	for _, tc := range cases {
		_, err := Build(tc.q, env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanStringRendersTree(t *testing.T) {
	q := &query.Query{
		Kind: query.Aggregate, Table: "big",
		Join:    &query.Join{Table: "small", LeftCol: 1, RightCol: 0},
		Aggs:    []agg.Spec{{Func: agg.Count, Col: -1}},
		GroupBy: []int{4},
	}
	p, err := Build(q, testEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"aggregate", "hashjoin", "big store=", "small store="} {
		if !strings.Contains(s, want) {
			t.Errorf("Plan.String missing %q:\n%s", want, s)
		}
	}
}
