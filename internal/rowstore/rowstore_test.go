package rowstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func testSchema(t *testing.T) *schema.Table {
	t.Helper()
	return schema.MustNew("items",
		[]schema.Column{
			{Name: "id", Type: value.Bigint},
			{Name: "grp", Type: value.Integer},
			{Name: "amount", Type: value.Double},
			{Name: "note", Type: value.Varchar, Nullable: true},
		}, "id")
}

func mkRow(id int64, grp int64, amount float64, note string) []value.Value {
	return []value.Value{value.NewBigint(id), value.NewInt(grp), value.NewDouble(amount), value.NewVarchar(note)}
}

func loaded(t *testing.T, n int) *Table {
	t.Helper()
	tb := New(testSchema(t))
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, mkRow(int64(i), int64(i%5), float64(i), fmt.Sprintf("n%d", i)))
	}
	if err := tb.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestInsertAndRows(t *testing.T) {
	tb := loaded(t, 10)
	if tb.Rows() != 10 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	row := tb.Row(3)
	if row[0].Int() != 3 || row[2].Double() != 3 {
		t.Errorf("Row(3) = %v", row)
	}
	if !tb.Valid(3) {
		t.Error("row 3 should be valid")
	}
	if tb.Schema().Name != "items" {
		t.Error("Schema accessor broken")
	}
}

func TestInsertValidates(t *testing.T) {
	tb := New(testSchema(t))
	bad := []value.Value{value.NewInt(1), value.NewInt(1), value.NewDouble(1), value.NewVarchar("")}
	if err := tb.Insert([][]value.Value{bad}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestPKUniqueness(t *testing.T) {
	tb := loaded(t, 5)
	err := tb.Insert([][]value.Value{mkRow(3, 0, 0, "dup")})
	if err == nil {
		t.Fatal("duplicate PK accepted")
	}
	if tb.Rows() != 5 {
		t.Errorf("failed insert changed row count: %d", tb.Rows())
	}
}

func TestLookupPK(t *testing.T) {
	tb := loaded(t, 100)
	rid, ok := tb.LookupPK([]value.Value{value.NewBigint(42)})
	if !ok || tb.Row(rid)[0].Int() != 42 {
		t.Errorf("LookupPK(42) = %d, %v", rid, ok)
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(1000)}); ok {
		t.Error("missing key found")
	}
	if _, ok := tb.LookupPK(nil); ok {
		t.Error("arity mismatch should miss")
	}
}

func TestScanFull(t *testing.T) {
	tb := loaded(t, 20)
	count := 0
	tb.Scan(nil, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 20 {
		t.Errorf("full scan visited %d", count)
	}
}

func TestScanPredicate(t *testing.T) {
	tb := loaded(t, 20)
	pred := &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)}
	ids := []int64{}
	tb.Scan(pred, func(rid int, row []value.Value) bool {
		ids = append(ids, row[0].Int())
		return true
	})
	if len(ids) != 4 { // ids 2,7,12,17
		t.Errorf("matched %v", ids)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tb := loaded(t, 20)
	count := 0
	tb.Scan(nil, func(rid int, row []value.Value) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanUsesPKIndex(t *testing.T) {
	tb := loaded(t, 100)
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(77)}
	visited := 0
	tb.Scan(pred, func(rid int, row []value.Value) bool {
		visited++
		return true
	})
	if visited != 1 {
		t.Errorf("PK point scan visited %d rows", visited)
	}
	// Missing PK: index path returns nothing rather than scanning.
	pred = &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(9999)}
	visited = 0
	tb.Scan(pred, func(rid int, row []value.Value) bool {
		visited++
		return true
	})
	if visited != 0 {
		t.Errorf("missing PK visited %d rows", visited)
	}
}

func TestSecondaryIndex(t *testing.T) {
	tb := loaded(t, 50)
	if tb.HasIndex(1) {
		t.Error("no index yet on grp")
	}
	if !tb.HasIndex(0) {
		t.Error("single-column PK should count as indexed")
	}
	tb.CreateIndex(1)
	tb.CreateIndex(1) // idempotent
	if !tb.HasIndex(1) {
		t.Error("index not registered")
	}
	pred := &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(3)}
	got := 0
	tb.Scan(pred, func(rid int, row []value.Value) bool {
		if row[1].Int() != 3 {
			t.Errorf("index returned wrong row %v", row)
		}
		got++
		return true
	})
	if got != 10 {
		t.Errorf("index scan matched %d", got)
	}
}

func TestAggregateGlobal(t *testing.T) {
	tb := loaded(t, 10) // amounts 0..9
	res := tb.Aggregate([]agg.Spec{{Func: agg.Sum, Col: 2}, {Func: agg.Count, Col: -1}}, nil, nil)
	rows := res.Rows()
	if rows[0][0].Double() != 45 {
		t.Errorf("SUM = %v", rows[0][0])
	}
	if rows[0][1].Int() != 10 {
		t.Errorf("COUNT = %v", rows[0][1])
	}
}

func TestAggregateGrouped(t *testing.T) {
	tb := loaded(t, 10)
	res := tb.Aggregate([]agg.Spec{{Func: agg.Count, Col: -1}}, []int{1}, nil)
	if res.NumGroups() != 5 {
		t.Errorf("groups = %d", res.NumGroups())
	}
	for _, row := range res.Rows() {
		if row[1].Int() != 2 {
			t.Errorf("group %v count = %v", row[0], row[1])
		}
	}
}

func TestAggregateWithPredicate(t *testing.T) {
	tb := loaded(t, 10)
	pred := &expr.Comparison{Col: 2, Op: expr.Ge, Val: value.NewDouble(5)}
	res := tb.Aggregate([]agg.Spec{{Func: agg.Min, Col: 2}}, nil, pred)
	if got := res.Rows()[0][0].Double(); got != 5 {
		t.Errorf("MIN = %v", got)
	}
}

func TestUpdate(t *testing.T) {
	tb := loaded(t, 10)
	pred := &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(0)}
	n, err := tb.Update(pred, map[int]value.Value{2: value.NewDouble(-1)})
	if err != nil || n != 2 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	count := 0
	tb.Scan(&expr.Comparison{Col: 2, Op: expr.Eq, Val: value.NewDouble(-1)}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 2 {
		t.Errorf("updated rows visible: %d", count)
	}
}

func TestUpdateValidates(t *testing.T) {
	tb := loaded(t, 5)
	if _, err := tb.Update(nil, map[int]value.Value{2: value.NewInt(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := tb.Update(nil, map[int]value.Value{99: value.NewInt(1)}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := tb.Update(nil, map[int]value.Value{0: value.Null(value.Bigint)}); err == nil {
		t.Error("NULL into NOT NULL accepted")
	}
}

func TestUpdatePKMaintainsIndex(t *testing.T) {
	tb := loaded(t, 10)
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)}
	n, err := tb.Update(pred, map[int]value.Value{0: value.NewBigint(300)})
	if err != nil || n != 1 {
		t.Fatalf("update PK: %d, %v", n, err)
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(3)}); ok {
		t.Error("old PK still indexed")
	}
	rid, ok := tb.LookupPK([]value.Value{value.NewBigint(300)})
	if !ok || tb.Row(rid)[0].Int() != 300 {
		t.Error("new PK not indexed")
	}
}

func TestUpdateMaintainsSecondaryIndex(t *testing.T) {
	tb := loaded(t, 10)
	tb.CreateIndex(1)
	pred := &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(2)} // grp was 2
	if _, err := tb.Update(pred, map[int]value.Value{1: value.NewInt(99)}); err != nil {
		t.Fatal(err)
	}
	count := 0
	tb.Scan(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(99)}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("index lookup after update found %d", count)
	}
	count = 0
	tb.Scan(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 1 { // id 7 remains in grp 2
		t.Errorf("old index entries wrong: %d", count)
	}
}

func TestDelete(t *testing.T) {
	tb := loaded(t, 10)
	n := tb.Delete(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)})
	if n != 2 || tb.Rows() != 8 {
		t.Errorf("Delete = %d, Rows = %d", n, tb.Rows())
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(1)}); ok {
		t.Error("deleted row still in PK index")
	}
	count := 0
	tb.Scan(nil, func(rid int, row []value.Value) bool { count++; return true })
	if count != 8 {
		t.Errorf("scan sees %d rows", count)
	}
	// Re-inserting the deleted key is allowed.
	if err := tb.Insert([][]value.Value{mkRow(1, 1, 1, "back")}); err != nil {
		t.Errorf("re-insert after delete: %v", err)
	}
}

func TestCompact(t *testing.T) {
	tb := loaded(t, 10)
	tb.CreateIndex(1)
	tb.Delete(&expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(5)})
	if got := tb.Compact(); got != 5 {
		t.Errorf("Compact reclaimed %d", got)
	}
	if tb.Rows() != 5 || tb.capacityRows() != 5 {
		t.Errorf("after compact: rows=%d cap=%d", tb.Rows(), tb.capacityRows())
	}
	rid, ok := tb.LookupPK([]value.Value{value.NewBigint(7)})
	if !ok || tb.Row(rid)[0].Int() != 7 {
		t.Error("PK index broken after compact")
	}
	got := 0
	tb.Scan(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(2)}, func(rid int, row []value.Value) bool {
		got++
		return true
	})
	if got != 1 { // only id 7 left in grp 2
		t.Errorf("secondary index after compact matched %d", got)
	}
	if tb.Compact() != 0 {
		t.Error("second compact should be a no-op")
	}
}

func TestMemoryBytes(t *testing.T) {
	tb := loaded(t, 4)
	if tb.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	before := tb.MemoryBytes()
	tb.Delete(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(0)})
	if tb.MemoryBytes() >= before {
		t.Error("deleting should shrink accounted memory")
	}
}

// Property: insert then PK lookup returns the inserted tuple, for arbitrary
// key sets.
func TestInsertLookupProperty(t *testing.T) {
	f := func(keys []int64) bool {
		tb := New(schema.MustNew("t", []schema.Column{
			{Name: "id", Type: value.Bigint},
			{Name: "v", Type: value.Integer},
		}, "id"))
		seen := map[int64]bool{}
		for i, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := tb.Insert([][]value.Value{{value.NewBigint(k), value.NewInt(int64(i))}}); err != nil {
				return false
			}
		}
		for k := range seen {
			rid, ok := tb.LookupPK([]value.Value{value.NewBigint(k)})
			if !ok || tb.Row(rid)[0].Int() != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdatePKDuplicateRejected(t *testing.T) {
	tb := loaded(t, 10)
	// New key collides with an existing row: the statement must fail
	// atomically — no row mutated, both index entries intact.
	n, err := tb.Update(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
		map[int]value.Value{0: value.NewBigint(5), 2: value.NewDouble(999)})
	if err == nil {
		t.Fatalf("duplicate-PK update succeeded (%d rows)", n)
	}
	if tb.Rows() != 10 {
		t.Fatalf("rows = %d, want 10", tb.Rows())
	}
	rid, ok := tb.LookupPK([]value.Value{value.NewBigint(3)})
	if !ok {
		t.Fatal("row 3 lost after failed update")
	}
	if got := tb.Row(rid)[2].Double(); got != 3 {
		t.Fatalf("failed update mutated amount: %v (atomicity broken)", got)
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(5)}); !ok {
		t.Fatal("row 5 lost after failed update")
	}
	// Assigning one constant key to several rows is an intra-statement
	// duplicate even when no existing row carries the key.
	if _, err := tb.Update(&expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)},
		map[int]value.Value{0: value.NewBigint(500)}); err == nil {
		t.Fatal("multi-row constant-PK update succeeded")
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(500)}); ok {
		t.Fatal("partial application of rejected update")
	}
	// A clean PK change still works and maintains the index.
	if n, err := tb.Update(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(3)},
		map[int]value.Value{0: value.NewBigint(300)}); err != nil || n != 1 {
		t.Fatalf("clean PK update: n=%d err=%v", n, err)
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(3)}); ok {
		t.Fatal("old key still resolves")
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(300)}); !ok {
		t.Fatal("new key does not resolve")
	}
	// Updating a row's PK to its own value is not a collision.
	if n, err := tb.Update(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(7)},
		map[int]value.Value{0: value.NewBigint(7), 2: value.NewDouble(70)}); err != nil || n != 1 {
		t.Fatalf("self-assignment: n=%d err=%v", n, err)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	tb := loaded(t, 20)
	tb.Delete(&expr.Comparison{Col: 0, Op: expr.Lt, Val: value.NewBigint(5)})
	var rows [][]value.Value
	tb.Scan(nil, func(rid int, row []value.Value) bool {
		cp := make([]value.Value, len(row))
		copy(cp, row)
		rows = append(rows, cp)
		return true
	})
	re, err := Load(testSchema(t), rows)
	if err != nil {
		t.Fatal(err)
	}
	if re.Rows() != 15 {
		t.Fatalf("loaded %d rows, want 15", re.Rows())
	}
	for i := int64(5); i < 20; i++ {
		if _, ok := re.LookupPK([]value.Value{value.NewBigint(i)}); !ok {
			t.Fatalf("key %d missing after load", i)
		}
	}
}

func TestInsertBatchAtomic(t *testing.T) {
	tb := loaded(t, 5)
	// Batch whose last row collides with an existing key: nothing from
	// the batch may remain.
	err := tb.Insert([][]value.Value{mkRow(100, 0, 1, "x"), mkRow(3, 0, 1, "y")})
	if err == nil {
		t.Fatal("colliding batch accepted")
	}
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d after failed batch, want 5", tb.Rows())
	}
	if _, ok := tb.LookupPK([]value.Value{value.NewBigint(100)}); ok {
		t.Fatal("prefix of failed batch retained")
	}
	// Batch with an internal duplicate.
	err = tb.Insert([][]value.Value{mkRow(200, 0, 1, "x"), mkRow(200, 0, 2, "y")})
	if err == nil {
		t.Fatal("intra-batch duplicate accepted")
	}
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d after intra-dup batch, want 5", tb.Rows())
	}
}
