package rowstore

import (
	"sort"

	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// orderedPK is an order-preserving index over a single-column numeric
// primary key: row ids sorted by key value. It backs range predicates on
// the primary key — the row-store analogue of a B-tree on the PK, which
// is what makes selective range updates cheap in a row store. Keys are
// compared through value.Compare, so Integer, Bigint, Double and Date
// keys all work.
type orderedPK struct {
	rids []int32 // sorted by key
}

// keyAt returns the PK value of a row id.
func (t *Table) keyAt(rid int32) value.Value {
	return t.Row(int(rid))[t.sch.PrimaryKey[0]]
}

// orderedPKUsable reports whether the table maintains an ordered PK index.
func (t *Table) orderedPKUsable() bool {
	return t.pkOrdered != nil && len(t.sch.PrimaryKey) == 1
}

// insertOrdered adds a freshly inserted row id. The common case — keys
// arriving in increasing order — is O(1); out-of-order keys fall back to
// binary-search insertion.
func (o *orderedPK) insert(t *Table, rid int32) {
	n := len(o.rids)
	if n == 0 || value.Compare(t.keyAt(o.rids[n-1]), t.keyAt(rid)) <= 0 {
		o.rids = append(o.rids, rid)
		return
	}
	key := t.keyAt(rid)
	i := sort.Search(n, func(i int) bool {
		return value.Compare(t.keyAt(o.rids[i]), key) >= 0
	})
	o.rids = append(o.rids, 0)
	copy(o.rids[i+1:], o.rids[i:])
	o.rids[i] = rid
}

// remove drops a row id (identified by its current key).
func (o *orderedPK) remove(t *Table, rid int32) {
	key := t.keyAt(rid)
	n := len(o.rids)
	i := sort.Search(n, func(i int) bool {
		return value.Compare(t.keyAt(o.rids[i]), key) >= 0
	})
	for ; i < n; i++ {
		if o.rids[i] == rid {
			copy(o.rids[i:], o.rids[i+1:])
			o.rids = o.rids[:n-1]
			return
		}
		if value.Compare(t.keyAt(o.rids[i]), key) != 0 {
			return // not found (defensive)
		}
	}
}

// rangeRids returns the row ids whose keys fall into [lo, hi]; nil bounds
// are unbounded.
func (o *orderedPK) rangeRids(t *Table, lo, hi *value.Value) []int32 {
	n := len(o.rids)
	start := 0
	if lo != nil {
		start = sort.Search(n, func(i int) bool {
			return value.Compare(t.keyAt(o.rids[i]), *lo) >= 0
		})
	}
	end := n
	if hi != nil {
		end = sort.Search(n, func(i int) bool {
			return value.Compare(t.keyAt(o.rids[i]), *hi) > 0
		})
	}
	if start >= end {
		return nil
	}
	return o.rids[start:end]
}

// pkRange extracts a usable PK range from a predicate: the predicate must
// constrain the single PK column with at least one bound.
func (t *Table) pkRange(pred expr.Predicate) (expr.Range, bool) {
	if !t.orderedPKUsable() || pred == nil {
		return expr.Range{}, false
	}
	rg, ok := expr.RangeOn(pred, t.sch.PrimaryKey[0])
	if !ok || (rg.Lo == nil && rg.Hi == nil) {
		return expr.Range{}, false
	}
	return rg, true
}
