// Package rowstore implements the row-oriented store of the hybrid engine.
// Tuples are stored contiguously in a flat value arena (row i occupies the
// stride-sized window starting at i*stride), so retrieving or updating a
// complete tuple touches one contiguous memory region — the access pattern
// that makes row stores efficient for OLTP point queries, inserts and
// updates (paper §2). Full-column scans, by contrast, stride across the
// arena and touch every attribute of every tuple, which is what makes the
// row store comparatively slow for analytical aggregation.
package rowstore

import (
	"fmt"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// Table is a row-store table. It is not safe for concurrent mutation; the
// engine serializes DML per table.
type Table struct {
	sch    *schema.Table
	stride int

	data  []value.Value // flat arena; row i at data[i*stride : (i+1)*stride]
	valid []bool        // deletion markers
	live  int

	pkIndex   map[uint64][]int32 // hash(PK) -> candidate row ids
	pkOrdered *orderedPK         // ordered index for single-column PKs
	secondary map[int]map[uint64][]int32
}

// New creates an empty row-store table for the schema. A hash index on the
// primary key is always maintained (it backs uniqueness checks and point
// queries).
func New(sch *schema.Table) *Table {
	t := &Table{
		sch:       sch,
		stride:    sch.NumColumns(),
		secondary: make(map[int]map[uint64][]int32),
	}
	if len(sch.PrimaryKey) > 0 {
		t.pkIndex = make(map[uint64][]int32)
		if len(sch.PrimaryKey) == 1 {
			t.pkOrdered = &orderedPK{}
		}
	}
	return t
}

// Load builds a table from snapshotted rows, rebuilding the arena and
// all primary-key index structures. Tombstones are not part of a
// snapshot, so the loaded table starts compacted.
func Load(sch *schema.Table, rows [][]value.Value) (*Table, error) {
	t := New(sch)
	if err := t.Insert(rows); err != nil {
		return nil, fmt.Errorf("rowstore: load: %w", err)
	}
	return t, nil
}

// Schema returns the table schema.
func (t *Table) Schema() *schema.Table { return t.sch }

// Rows returns the number of live rows.
func (t *Table) Rows() int { return t.live }

// capacityRows returns the number of row slots including deleted ones.
func (t *Table) capacityRows() int { return len(t.valid) }

// Row returns the live row at physical id rid as a view into the arena.
// Callers must not mutate it.
func (t *Table) Row(rid int) []value.Value {
	return t.data[rid*t.stride : (rid+1)*t.stride]
}

// Valid reports whether the row slot rid holds a live row.
func (t *Table) Valid(rid int) bool { return t.valid[rid] }

// pkHash computes the hash of the PK values of a row.
func (t *Table) pkHash(row []value.Value) uint64 {
	return value.HashRow(t.sch.PKValues(row))
}

// pkEqual reports whether the row at rid has the given PK values.
func (t *Table) pkEqual(rid int, key []value.Value) bool {
	row := t.Row(rid)
	for i, k := range t.sch.PrimaryKey {
		if !value.Equal(row[k], key[i]) {
			return false
		}
	}
	return true
}

// LookupPK returns the physical row id for a primary-key value, if present.
func (t *Table) LookupPK(key []value.Value) (int, bool) {
	if t.pkIndex == nil || len(key) != len(t.sch.PrimaryKey) {
		return 0, false
	}
	h := value.HashRow(key)
	for _, rid := range t.pkIndex[h] {
		if t.valid[rid] && t.pkEqual(int(rid), key) {
			return int(rid), true
		}
	}
	return 0, false
}

// Insert appends rows to the table. Each row is validated against the
// schema and, if the table has a primary key, checked for uniqueness — the
// growing-table verification cost the paper models with f_#rows for insert
// queries. The whole batch is validated (including duplicates within the
// batch) before anything is appended, so a failing INSERT is atomic: a
// durable engine that logs only acknowledged statements can replay to
// exactly the same state.
func (t *Table) Insert(rows [][]value.Value) error {
	var batchKeys map[string]struct{}
	for _, row := range rows {
		if err := t.sch.ValidateRow(row); err != nil {
			return err
		}
		if t.pkIndex != nil {
			key := t.sch.PKValues(row)
			if _, dup := t.LookupPK(key); dup {
				return fmt.Errorf("rowstore: duplicate primary key %v in table %q", key, t.sch.Name)
			}
			if batchKeys == nil {
				batchKeys = make(map[string]struct{}, len(rows))
			}
			ks := value.TupleKey(key)
			if _, dup := batchKeys[ks]; dup {
				return fmt.Errorf("rowstore: duplicate primary key %v within insert batch in table %q", key, t.sch.Name)
			}
			batchKeys[ks] = struct{}{}
		}
	}
	for _, row := range rows {
		rid := int32(t.capacityRows())
		t.data = append(t.data, row...)
		t.valid = append(t.valid, true)
		t.live++
		if t.pkIndex != nil {
			h := t.pkHash(row)
			t.pkIndex[h] = append(t.pkIndex[h], rid)
		}
		if t.pkOrdered != nil {
			t.pkOrdered.insert(t, rid)
		}
		for col, idx := range t.secondary {
			h := row[col].Hash()
			idx[h] = append(idx[h], rid)
		}
	}
	return nil
}

// CreateIndex builds a secondary hash index on column col, enabling
// index-assisted equality selections (the paper's f_selectivity for the
// row store is linear only "if an index is available").
func (t *Table) CreateIndex(col int) {
	if _, ok := t.secondary[col]; ok {
		return
	}
	idx := make(map[uint64][]int32)
	for rid := 0; rid < t.capacityRows(); rid++ {
		if !t.valid[rid] {
			continue
		}
		h := t.Row(rid)[col].Hash()
		idx[h] = append(idx[h], int32(rid))
	}
	t.secondary[col] = idx
}

// HasIndex reports whether column col has a secondary index (or is the
// sole PK column, which the PK index covers).
func (t *Table) HasIndex(col int) bool {
	if _, ok := t.secondary[col]; ok {
		return true
	}
	return len(t.sch.PrimaryKey) == 1 && t.sch.PrimaryKey[0] == col && t.pkIndex != nil
}

// candidateRows returns a restricted candidate row set for the predicate
// when an index applies. ok is false when no index serves the predicate
// and the caller must scan everything.
func (t *Table) candidateRows(pred expr.Predicate) ([]int32, bool) {
	if pred == nil {
		return nil, false
	}
	// PK point lookup through the hash index.
	if key, ok := expr.PKEquality(pred, t.sch.PrimaryKey); ok && t.pkIndex != nil {
		return t.pkIndex[value.HashRow(key)], true
	}
	// Secondary index equality.
	for _, c := range expr.Conjuncts(pred) {
		cmp, ok := c.(*expr.Comparison)
		if !ok || cmp.Op != expr.Eq {
			continue
		}
		if idx, ok := t.secondary[cmp.Col]; ok {
			return idx[cmp.Val.Hash()], true
		}
	}
	// PK range through the ordered index (the row-store B-tree analogue).
	if rg, ok := t.pkRange(pred); ok {
		return t.pkOrdered.rangeRids(t, rg.Lo, rg.Hi), true
	}
	return nil, false
}

// Scan calls fn for each live row matching pred, in physical order, until
// fn returns false. The row slice is a view into the arena; fn must not
// retain or mutate it. Index-assisted candidate restriction is applied for
// PK and secondary-index equality predicates.
func (t *Table) Scan(pred expr.Predicate, fn func(rid int, row []value.Value) bool) {
	if cand, ok := t.candidateRows(pred); ok {
		for _, rid := range cand {
			if !t.valid[rid] {
				continue
			}
			row := t.Row(int(rid))
			if pred != nil && !pred.Matches(row) {
				continue
			}
			if !fn(int(rid), row) {
				return
			}
		}
		return
	}
	for rid := 0; rid < t.capacityRows(); rid++ {
		if !t.valid[rid] {
			continue
		}
		row := t.Row(rid)
		if pred != nil && !pred.Matches(row) {
			continue
		}
		if !fn(rid, row) {
			return
		}
	}
}

// Aggregate computes the given aggregates over rows matching pred, grouped
// by the groupBy columns. The row store has no columnar fast path: every
// matching tuple is visited in full, which is exactly the access pattern
// the paper's Figure 1 illustrates for aggregation on a row store.
func (t *Table) Aggregate(specs []agg.Spec, groupBy []int, pred expr.Predicate) *agg.Result {
	return t.AggregateStop(specs, groupBy, pred, nil)
}

// aggregateBatchRows is how many rows AggregateStop accumulates between
// stop checks — the row store's "batch boundary" for cancellation.
const aggregateBatchRows = 1024

// AggregateStop is Aggregate with a cooperative cancellation hook: stop
// (when non-nil) is polled every aggregateBatchRows visited rows, and a
// true return abandons the aggregation, yielding a partial result the
// caller must discard.
func (t *Table) AggregateStop(specs []agg.Spec, groupBy []int, pred expr.Predicate, stop func() bool) *agg.Result {
	res := agg.NewResult(specs, groupBy)
	res.SetOutputTypes(t.sch.ColTypes())
	key := make([]value.Value, len(groupBy))
	visited := 0
	t.Scan(pred, func(rid int, row []value.Value) bool {
		if stop != nil {
			visited++
			if visited%aggregateBatchRows == 0 && stop() {
				return false
			}
		}
		var g *agg.Group
		if len(groupBy) > 0 {
			for i, c := range groupBy {
				key[i] = row[c]
			}
			g = res.GroupFor(key)
		} else {
			g = res.Global()
		}
		for i, s := range specs {
			if s.Col < 0 {
				g.Accs[i].AddCount(1)
			} else {
				g.Accs[i].Add(row[s.Col])
			}
		}
		return true
	})
	return res
}

// Update assigns set values to all live rows matching pred and returns the
// number of rows changed. Updates are in place; indexes on changed columns
// (including the PK index) are maintained.
func (t *Table) Update(pred expr.Predicate, set map[int]value.Value) (int, error) {
	for col, v := range set {
		if col < 0 || col >= t.stride {
			return 0, fmt.Errorf("rowstore: update column %d out of range in %q", col, t.sch.Name)
		}
		c := t.sch.Columns[col]
		if v.IsNull() && !c.Nullable {
			return 0, fmt.Errorf("rowstore: column %q is NOT NULL", c.Name)
		}
		if !v.IsNull() && v.Type() != c.Type {
			return 0, fmt.Errorf("rowstore: column %q expects %s, got %s", c.Name, c.Type, v.Type())
		}
	}
	pkChanged := false
	for _, k := range t.sch.PrimaryKey {
		if _, ok := set[k]; ok {
			pkChanged = true
		}
	}
	var touched []int32
	t.Scan(pred, func(rid int, row []value.Value) bool {
		touched = append(touched, int32(rid))
		return true
	})
	// An update that changes the primary key must not create duplicates:
	// validate every new key — against the pre-statement table state and
	// against the other new keys of the same statement — before mutating
	// anything, so a violating UPDATE fails atomically instead of
	// corrupting pkIndex.
	if pkChanged && t.pkIndex != nil {
		newKeys := make(map[string]struct{}, len(touched))
		for _, rid := range touched {
			row := t.Row(int(rid))
			key := make([]value.Value, len(t.sch.PrimaryKey))
			for i, k := range t.sch.PrimaryKey {
				if v, ok := set[k]; ok {
					key[i] = v
				} else {
					key[i] = row[k]
				}
			}
			ks := value.TupleKey(key)
			if _, dup := newKeys[ks]; dup {
				return 0, fmt.Errorf("rowstore: update would assign duplicate primary key %v to multiple rows in %q", key, t.sch.Name)
			}
			newKeys[ks] = struct{}{}
			if orid, ok := t.LookupPK(key); ok && int32(orid) != rid {
				return 0, fmt.Errorf("rowstore: update would duplicate primary key %v in table %q", key, t.sch.Name)
			}
		}
	}
	for _, rid := range touched {
		row := t.Row(int(rid))
		if pkChanged && t.pkIndex != nil {
			oldH := t.pkHash(row)
			removeRid(t.pkIndex, oldH, rid)
			if t.pkOrdered != nil {
				t.pkOrdered.remove(t, rid)
			}
		}
		for col, v := range set {
			if idx, ok := t.secondary[col]; ok {
				removeRid(idx, row[col].Hash(), rid)
				idx[v.Hash()] = append(idx[v.Hash()], rid)
			}
			row[col] = v
		}
		if pkChanged && t.pkIndex != nil {
			newH := t.pkHash(row)
			t.pkIndex[newH] = append(t.pkIndex[newH], rid)
			if t.pkOrdered != nil {
				t.pkOrdered.insert(t, rid)
			}
		}
	}
	return len(touched), nil
}

// Delete removes all live rows matching pred and returns the count. Slots
// are tombstoned; physical space is reclaimed only by Compact.
func (t *Table) Delete(pred expr.Predicate) int {
	var touched []int32
	t.Scan(pred, func(rid int, row []value.Value) bool {
		touched = append(touched, int32(rid))
		return true
	})
	for _, rid := range touched {
		row := t.Row(int(rid))
		if t.pkIndex != nil {
			removeRid(t.pkIndex, t.pkHash(row), rid)
			if t.pkOrdered != nil {
				t.pkOrdered.remove(t, rid)
			}
		}
		for col, idx := range t.secondary {
			removeRid(idx, row[col].Hash(), rid)
		}
		t.valid[rid] = false
		t.live--
	}
	return len(touched)
}

// Compact rewrites the arena dropping tombstoned rows and rebuilds all
// indexes. Returns the number of slots reclaimed.
func (t *Table) Compact() int {
	reclaimed := t.capacityRows() - t.live
	if reclaimed == 0 {
		return 0
	}
	data := make([]value.Value, 0, t.live*t.stride)
	for rid := 0; rid < t.capacityRows(); rid++ {
		if t.valid[rid] {
			data = append(data, t.Row(rid)...)
		}
	}
	t.data = data
	t.valid = make([]bool, t.live)
	for i := range t.valid {
		t.valid[i] = true
	}
	if t.pkIndex != nil {
		t.pkIndex = make(map[uint64][]int32)
		for rid := 0; rid < t.live; rid++ {
			h := t.pkHash(t.Row(rid))
			t.pkIndex[h] = append(t.pkIndex[h], int32(rid))
		}
		if t.pkOrdered != nil {
			t.pkOrdered = &orderedPK{}
			for rid := 0; rid < t.live; rid++ {
				t.pkOrdered.insert(t, int32(rid))
			}
		}
	}
	for col := range t.secondary {
		t.secondary[col] = nil
		delete(t.secondary, col)
		t.CreateIndex(col)
	}
	return reclaimed
}

// MemoryBytes estimates the arena payload size (values only, uncompressed).
func (t *Table) MemoryBytes() int {
	total := 0
	for rid := 0; rid < t.capacityRows(); rid++ {
		if !t.valid[rid] {
			continue
		}
		for _, v := range t.Row(rid) {
			total += v.Bytes()
		}
	}
	return total
}

func removeRid(idx map[uint64][]int32, h uint64, rid int32) {
	lst := idx[h]
	for i, r := range lst {
		if r == rid {
			lst[i] = lst[len(lst)-1]
			idx[h] = lst[:len(lst)-1]
			return
		}
	}
}
