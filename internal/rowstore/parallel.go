package rowstore

import (
	"hybridstore/internal/agg"
	"hybridstore/internal/exec"
	"hybridstore/internal/expr"
	"hybridstore/internal/value"
)

// rowMorsel is the row-slot range one parallel aggregation morsel covers.
const rowMorsel = 4 * aggregateBatchRows

// parallelMinRows is the arena size below which aggregation stays serial.
const parallelMinRows = 2 * rowMorsel

// AggregateExec is Aggregate driven by an execution context: when no
// index restricts the candidate set, workers claim rowMorsel-sized slot
// ranges of the arena, accumulate into private results and merge them
// after the scan — the row store's full-tuple visit is embarrassingly
// parallel because the arena is immutable during reads. Index-assisted
// predicates (PK point/range, secondary equality) visit few rows and
// stay serial, as do small arenas and serial contexts.
func (t *Table) AggregateExec(specs []agg.Spec, groupBy []int, pred expr.Predicate, ex *exec.Ctx) *agg.Result {
	capRows := t.capacityRows()
	nm := (capRows + rowMorsel - 1) / rowMorsel
	if capRows < parallelMinRows || !ex.Parallel(nm) {
		return t.AggregateStop(specs, groupBy, pred, ex.StopHook())
	}
	if _, ok := t.candidateRows(pred); ok {
		return t.AggregateStop(specs, groupBy, pred, ex.StopHook())
	}
	res := agg.NewResult(specs, groupBy)
	res.SetOutputTypes(t.sch.ColTypes())
	type aggState struct {
		res *agg.Result
		key []value.Value
	}
	states := make([]*aggState, ex.Workers(nm))
	ex.Morsels(nm, func(w, m int) bool {
		st := states[w]
		if st == nil {
			pr := agg.NewResult(specs, groupBy)
			pr.SetOutputTypes(t.sch.ColTypes())
			st = &aggState{res: pr, key: make([]value.Value, len(groupBy))}
			states[w] = st
		}
		lo := m * rowMorsel
		hi := min(capRows, lo+rowMorsel)
		for rid := lo; rid < hi; rid++ {
			if !t.valid[rid] {
				continue
			}
			row := t.Row(rid)
			if pred != nil && !pred.Matches(row) {
				continue
			}
			var g *agg.Group
			if len(groupBy) > 0 {
				for i, c := range groupBy {
					st.key[i] = row[c]
				}
				g = st.res.GroupFor(st.key)
			} else {
				g = st.res.Global()
			}
			for i, s := range specs {
				if s.Col < 0 {
					g.Accs[i].AddCount(1)
				} else {
					g.Accs[i].Add(row[s.Col])
				}
			}
		}
		return true
	})
	if ex.Stopped() {
		return res
	}
	for _, st := range states {
		if st != nil {
			res.Merge(st.res)
		}
	}
	return res
}
