package rowstore

import (
	"math/rand"
	"testing"

	"hybridstore/internal/expr"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func pkSchema() *schema.Table {
	return schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "v", Type: value.Integer},
	}, "id")
}

func TestOrderedPKRangeScan(t *testing.T) {
	tb := New(pkSchema())
	for i := 0; i < 1000; i++ {
		if err := tb.Insert([][]value.Value{{value.NewBigint(int64(i)), value.NewInt(int64(i % 7))}}); err != nil {
			t.Fatal(err)
		}
	}
	pred := &expr.Between{Col: 0, Lo: value.NewBigint(100), Hi: value.NewBigint(149)}
	visited := 0
	tb.Scan(pred, func(rid int, row []value.Value) bool {
		if row[0].Int() < 100 || row[0].Int() > 149 {
			t.Fatalf("out-of-range row %v", row[0])
		}
		visited++
		return true
	})
	if visited != 50 {
		t.Errorf("range scan visited %d, want 50", visited)
	}
	// Half-open ranges work too.
	count := 0
	tb.Scan(&expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(990)}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 10 {
		t.Errorf("open range matched %d", count)
	}
}

func TestOrderedPKOutOfOrderInserts(t *testing.T) {
	tb := New(pkSchema())
	keys := []int64{50, 10, 90, 30, 70, 20, 80, 40, 60, 100}
	for _, k := range keys {
		if err := tb.Insert([][]value.Value{{value.NewBigint(k), value.NewInt(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	tb.Scan(&expr.Between{Col: 0, Lo: value.NewBigint(20), Hi: value.NewBigint(80)}, func(rid int, row []value.Value) bool {
		got = append(got, row[0].Int())
		return true
	})
	if len(got) != 7 {
		t.Fatalf("matched %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("range scan not in key order: %v", got)
		}
	}
}

func TestOrderedPKAfterDeleteAndUpdate(t *testing.T) {
	tb := New(pkSchema())
	for i := 0; i < 100; i++ {
		if err := tb.Insert([][]value.Value{{value.NewBigint(int64(i)), value.NewInt(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	tb.Delete(&expr.Between{Col: 0, Lo: value.NewBigint(10), Hi: value.NewBigint(19)})
	// Move key 5 to 500.
	if _, err := tb.Update(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(5)},
		map[int]value.Value{0: value.NewBigint(500)}); err != nil {
		t.Fatal(err)
	}
	count := 0
	tb.Scan(&expr.Between{Col: 0, Lo: value.NewBigint(0), Hi: value.NewBigint(29)}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	// 0..29 minus deleted 10..19 minus moved 5 = 19 rows.
	if count != 19 {
		t.Errorf("after delete/update: %d, want 19", count)
	}
	found := 0
	tb.Scan(&expr.Comparison{Col: 0, Op: expr.Ge, Val: value.NewBigint(400)}, func(rid int, row []value.Value) bool {
		found++
		return true
	})
	if found != 1 {
		t.Errorf("moved key not found via range: %d", found)
	}
	// Compact rebuilds the ordered index.
	tb.Compact()
	count = 0
	tb.Scan(&expr.Between{Col: 0, Lo: value.NewBigint(0), Hi: value.NewBigint(29)}, func(rid int, row []value.Value) bool {
		count++
		return true
	})
	if count != 19 {
		t.Errorf("after compact: %d, want 19", count)
	}
}

// Property: range scans through the ordered index agree with full scans
// under random mutations.
func TestOrderedPKEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tb := New(pkSchema())
	live := map[int64]bool{}
	for step := 0; step < 500; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			k := rng.Int63n(2000)
			if !live[k] {
				if err := tb.Insert([][]value.Value{{value.NewBigint(k), value.NewInt(0)}}); err != nil {
					t.Fatal(err)
				}
				live[k] = true
			}
		case 2:
			k := rng.Int63n(2000)
			if live[k] {
				tb.Delete(&expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(k)})
				delete(live, k)
			}
		}
		if step%50 == 0 {
			lo, hi := rng.Int63n(1000), 1000+rng.Int63n(1000)
			want := 0
			for k := range live {
				if k >= lo && k <= hi {
					want++
				}
			}
			got := 0
			tb.Scan(&expr.Between{Col: 0, Lo: value.NewBigint(lo), Hi: value.NewBigint(hi)}, func(rid int, row []value.Value) bool {
				got++
				return true
			})
			if got != want {
				t.Fatalf("step %d: range [%d,%d] got %d want %d", step, lo, hi, got, want)
			}
		}
	}
}
