package sql

import (
	"strings"
	"testing"

	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func opResolver(t *testing.T) Resolver {
	t.Helper()
	sch := schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "note", Type: value.Varchar, Nullable: true},
	}, "id")
	return func(name string) *schema.Table {
		if strings.EqualFold(name, "t") {
			return sch
		}
		return nil
	}
}

func TestParseOrderBy(t *testing.T) {
	st, err := Parse("SELECT id, amount FROM t WHERE grp = 3 ORDER BY amount DESC, id LIMIT 5", opResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	q := st.Query
	if q.Kind != query.Select {
		t.Fatalf("kind = %v", q.Kind)
	}
	want := []query.Order{{Col: 2, Desc: true}, {Col: 0}}
	if len(q.OrderBy) != 2 || q.OrderBy[0] != want[0] || q.OrderBy[1] != want[1] {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Fatalf("limit = %d", q.Limit)
	}
	// ASC is the explicit default.
	st, err = Parse("SELECT id FROM t ORDER BY id ASC", opResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.Query.OrderBy[0].Desc {
		t.Fatal("ASC parsed as DESC")
	}
}

func TestParseOrderByAggregate(t *testing.T) {
	st, err := Parse("SELECT grp, SUM(amount) FROM t GROUP BY grp ORDER BY grp DESC", opResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Query.OrderBy) != 1 || st.Query.OrderBy[0].Col != 1 || !st.Query.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", st.Query.OrderBy)
	}
	// Ordering by an ungrouped column is rejected.
	if _, err := Parse("SELECT grp, SUM(amount) FROM t GROUP BY grp ORDER BY amount", opResolver(t)); err == nil {
		t.Fatal("ungrouped ORDER BY column accepted")
	}
}

func TestPrepareBindParams(t *testing.T) {
	pp, err := Prepare("SELECT id FROM t WHERE grp = ? AND amount BETWEEN ? AND ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if pp.NumParams != 3 {
		t.Fatalf("NumParams = %d", pp.NumParams)
	}
	st, err := pp.Bind(opResolver(t), []value.Value{
		value.NewBigint(7), value.NewBigint(1), value.NewDouble(9.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := st.Query.String()
	if !strings.Contains(s, "WHERE") {
		t.Fatalf("bad bound query: %s", s)
	}
	// Wrong arity is rejected.
	if _, err := pp.Bind(opResolver(t), []value.Value{value.NewBigint(1)}); err == nil {
		t.Fatal("short params accepted")
	}
	// Parse rejects parameterized statements outright.
	if _, err := Parse("SELECT id FROM t WHERE grp = ?", opResolver(t)); err == nil {
		t.Fatal("Parse accepted unbound parameters")
	}
}

func TestPrepareBindInsertAndUpdate(t *testing.T) {
	pp, err := Prepare("INSERT INTO t VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if pp.NumParams != 4 {
		t.Fatalf("NumParams = %d", pp.NumParams)
	}
	st, err := pp.Bind(opResolver(t), []value.Value{
		value.NewBigint(1), value.NewBigint(2), value.NewBigint(3), value.Null(value.Varchar),
	})
	if err != nil {
		t.Fatal(err)
	}
	row := st.Query.Rows[0]
	// Values are coerced to the column types at bind time.
	if row[1].Type() != value.Integer || row[2].Type() != value.Double {
		t.Fatalf("bind did not coerce: %v %v", row[1].Type(), row[2].Type())
	}
	if !row[3].IsNull() {
		t.Fatal("null param lost")
	}

	up, err := Prepare("UPDATE t SET amount = ?, note = ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	st, err = up.Bind(opResolver(t), []value.Value{
		value.NewDouble(1.5), value.NewVarchar("x"), value.NewBigint(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Query.Set) != 2 {
		t.Fatalf("set = %v", st.Query.Set)
	}
	// Concurrent binds of one template must be safe (shared cache).
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				if _, err := up.Bind(opResolver(t), []value.Value{
					value.NewDouble(2.5), value.NewVarchar("y"), value.NewBigint(3),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func TestParamErrors(t *testing.T) {
	pp, err := Prepare("SELECT id FROM t WHERE grp = -?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Bind(opResolver(t), []value.Value{value.NewBigint(1)}); err == nil {
		t.Fatal("negated parameter accepted")
	}
}
