package sql

import (
	"fmt"
	"strconv"
	"strings"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// TxnKind identifies a transaction-control statement.
type TxnKind int

const (
	// TxnNone: the statement is not transaction control.
	TxnNone TxnKind = iota
	// TxnBegin: BEGIN [TRANSACTION|WORK] / START TRANSACTION.
	TxnBegin
	// TxnCommit: COMMIT [TRANSACTION|WORK].
	TxnCommit
	// TxnRollback: ROLLBACK [TRANSACTION|WORK].
	TxnRollback
)

// Statement is a parsed SQL statement: either DDL (CreateTable), DML/DQL
// (Query), or transaction control (Txn).
type Statement struct {
	CreateTable *schema.Table
	Query       *query.Query

	// Txn marks BEGIN/COMMIT/ROLLBACK. Parsing is context-free; whether
	// the control statement is legal (e.g. COMMIT outside a transaction)
	// is the session's concern.
	Txn TxnKind

	// ExplainAnalyze marks an EXPLAIN ANALYZE-wrapped Query: execute it
	// traced and return the per-stage trace as the result set.
	ExplainAnalyze bool
	// Explain marks a plain EXPLAIN-wrapped Query: plan it without
	// executing and return the chosen plan tree as the result set.
	// Only read statements (SELECT and aggregates) can be explained.
	Explain bool
	// ShowMetrics marks SHOW METRICS: return the process metrics
	// registry as a (metric, value) result set.
	ShowMetrics bool

	// Copy marks a COPY t FROM VALUES bulk-ingest statement. Query holds
	// the target table and rows like an INSERT, but execution routes
	// through the engine's bulk-ingest fast path: the whole batch is one
	// WAL group-commit record, applied and made durable atomically.
	Copy bool
}

// Resolver looks up table schemas during parsing; the engine's catalog is
// adapted to it.
type Resolver func(table string) *schema.Table

// Parse parses one SQL statement. Column references are resolved against
// the tables' schemas (combined indexing for joins: left columns first).
// Statements containing '?' parameter placeholders must go through
// Prepare/Bind instead.
func Parse(input string, resolve Resolver) (*Statement, error) {
	pp, err := Prepare(input)
	if err != nil {
		return nil, err
	}
	if pp.NumParams > 0 {
		return nil, fmt.Errorf("sql: statement has %d unbound parameters (use Prepare/Bind)", pp.NumParams)
	}
	return pp.Bind(resolve, nil)
}

// Prepared is a tokenized statement template, possibly containing '?'
// parameter placeholders. Preparing once amortizes lexing across
// executions; Bind substitutes parameters and resolves columns against
// the current catalog, so a prepared statement stays valid across schema
// and layout changes. A Prepared is immutable and safe for concurrent
// Bind calls — the server's statement cache shares one instance across
// sessions.
type Prepared struct {
	// Text is the original statement text.
	Text string
	// NumParams is the number of '?' placeholders.
	NumParams int

	toks []token
}

// Prepare tokenizes a statement and counts its parameter placeholders.
// Syntax and column resolution are checked at Bind time (they depend on
// the live catalog).
func Prepare(input string) (*Prepared, error) {
	toks, err := tokenize(input)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, t := range toks {
		if t.kind == tokPunct && t.text == "?" {
			n++
		}
	}
	return &Prepared{Text: input, NumParams: n, toks: toks}, nil
}

// Bind parses the prepared template with the given parameter values
// substituted for its '?' placeholders (in textual order, coerced to the
// referenced column's type). len(params) must equal NumParams.
func (pp *Prepared) Bind(resolve Resolver, params []value.Value) (*Statement, error) {
	if len(params) != pp.NumParams {
		return nil, fmt.Errorf("sql: statement wants %d parameters, got %d", pp.NumParams, len(params))
	}
	p := &parser{toks: pp.toks, resolve: resolve, params: params}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at position %d: %q", p.peek().pos, p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks    []token
	i       int
	resolve Resolver

	// Parameter values bound to '?' placeholders, consumed in textual
	// order.
	params   []value.Value
	paramIdx int

	// Column resolution context for the current statement.
	left      *schema.Table
	right     *schema.Table // set when a JOIN is present
	leftName  string
	rightName string
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// isKeyword reports whether the next token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s at position %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sql: expected %q at position %d, got %q", s, t.pos, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier at position %d, got %q", t.pos, t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) statement() (*Statement, error) {
	switch {
	case p.isKeyword("EXPLAIN"):
		p.advance()
		analyze := p.isKeyword("ANALYZE")
		if analyze {
			p.advance()
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		if st.Query == nil || st.Copy || st.ExplainAnalyze || st.Explain || st.ShowMetrics {
			if analyze {
				return nil, fmt.Errorf("sql: EXPLAIN ANALYZE wants a SELECT/INSERT/UPDATE/DELETE statement")
			}
			return nil, fmt.Errorf("sql: EXPLAIN wants a SELECT statement")
		}
		if analyze {
			st.ExplainAnalyze = true
			return st, nil
		}
		if st.Query.Kind != query.Select && st.Query.Kind != query.Aggregate {
			return nil, fmt.Errorf("sql: EXPLAIN plans read statements only (use EXPLAIN ANALYZE for DML)")
		}
		st.Explain = true
		return st, nil
	case p.isKeyword("SHOW"):
		p.advance()
		if err := p.expectKeyword("METRICS"); err != nil {
			return nil, err
		}
		return &Statement{ShowMetrics: true}, nil
	case p.isKeyword("CREATE"):
		sch, err := p.createTable()
		if err != nil {
			return nil, err
		}
		return &Statement{CreateTable: sch}, nil
	case p.isKeyword("SELECT"):
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	case p.isKeyword("INSERT"):
		q, err := p.insertStmt()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	case p.isKeyword("COPY"):
		q, err := p.copyStmt()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q, Copy: true}, nil
	case p.isKeyword("UPDATE"):
		q, err := p.updateStmt()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	case p.isKeyword("DELETE"):
		q, err := p.deleteStmt()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	case p.isKeyword("BEGIN"):
		p.advance()
		p.acceptTxnNoise()
		return &Statement{Txn: TxnBegin}, nil
	case p.isKeyword("START"):
		p.advance()
		if err := p.expectKeyword("TRANSACTION"); err != nil {
			return nil, err
		}
		return &Statement{Txn: TxnBegin}, nil
	case p.isKeyword("COMMIT"):
		p.advance()
		p.acceptTxnNoise()
		return &Statement{Txn: TxnCommit}, nil
	case p.isKeyword("ROLLBACK"):
		p.advance()
		p.acceptTxnNoise()
		return &Statement{Txn: TxnRollback}, nil
	default:
		return nil, fmt.Errorf("sql: expected statement at position %d, got %q", p.peek().pos, p.peek().text)
	}
}

// acceptTxnNoise consumes the optional TRANSACTION/WORK keyword after
// BEGIN/COMMIT/ROLLBACK.
func (p *parser) acceptTxnNoise() {
	if !p.acceptKeyword("TRANSACTION") {
		p.acceptKeyword("WORK")
	}
}

// createTable parses CREATE TABLE name (col TYPE [NOT NULL], ...,
// [PRIMARY KEY (a, b)]).
func (p *parser) createTable() (*schema.Table, error) {
	p.advance() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []schema.Column
	var pk []string
	for {
		if p.isKeyword("PRIMARY") {
			p.advance()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				k, err := p.ident()
				if err != nil {
					return nil, err
				}
				pk = append(pk, k)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			cname, err := p.ident()
			if err != nil {
				return nil, err
			}
			tname, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := value.ParseType(strings.ToUpper(tname))
			if err != nil {
				return nil, err
			}
			col := schema.Column{Name: cname, Type: typ, Nullable: true}
			if p.acceptKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				col.Nullable = false
			}
			cols = append(cols, col)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Primary-key columns are implicitly NOT NULL.
	sch, err := schema.New(name, cols, pk...)
	if err != nil {
		return nil, err
	}
	for _, k := range sch.PrimaryKey {
		sch.Columns[k].Nullable = false
	}
	return sch, nil
}

// lookupTable resolves a schema.
func (p *parser) lookupTable(name string) (*schema.Table, error) {
	if p.resolve == nil {
		return nil, fmt.Errorf("sql: no schema resolver configured")
	}
	sch := p.resolve(name)
	if sch == nil {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return sch, nil
}

// resolveColumn maps a (qualified) column name to its combined index.
func (p *parser) resolveColumn(qualifier, name string) (int, error) {
	switch {
	case qualifier != "":
		if strings.EqualFold(qualifier, p.leftName) {
			if i := p.left.ColIndex(name); i >= 0 {
				return i, nil
			}
			return 0, fmt.Errorf("sql: unknown column %s.%s", qualifier, name)
		}
		if p.right != nil && strings.EqualFold(qualifier, p.rightName) {
			if i := p.right.ColIndex(name); i >= 0 {
				return p.left.NumColumns() + i, nil
			}
			return 0, fmt.Errorf("sql: unknown column %s.%s", qualifier, name)
		}
		return 0, fmt.Errorf("sql: unknown table qualifier %q", qualifier)
	default:
		if i := p.left.ColIndex(name); i >= 0 {
			if p.right != nil && p.right.ColIndex(name) >= 0 {
				return 0, fmt.Errorf("sql: ambiguous column %q", name)
			}
			return i, nil
		}
		if p.right != nil {
			if i := p.right.ColIndex(name); i >= 0 {
				return p.left.NumColumns() + i, nil
			}
		}
		return 0, fmt.Errorf("sql: unknown column %q", name)
	}
}

// columnRef parses ident[.ident] and resolves it.
func (p *parser) columnRef() (int, error) {
	first, err := p.ident()
	if err != nil {
		return 0, err
	}
	if p.acceptPunct(".") {
		second, err := p.ident()
		if err != nil {
			return 0, err
		}
		return p.resolveColumn(first, second)
	}
	return p.resolveColumn("", first)
}

// columnType returns the value type of a combined column index.
func (p *parser) columnType(idx int) value.Type {
	if idx < p.left.NumColumns() {
		return p.left.Columns[idx].Type
	}
	return p.right.Columns[idx-p.left.NumColumns()].Type
}

// literal parses a (possibly negated) literal value or a '?' parameter
// placeholder.
func (p *parser) literal() (value.Value, error) {
	if p.peek().kind == tokPunct && p.peek().text == "?" {
		pos := p.peek().pos
		p.advance()
		if p.paramIdx >= len(p.params) {
			return value.Value{}, fmt.Errorf("sql: unbound parameter at position %d", pos)
		}
		v := p.params[p.paramIdx]
		p.paramIdx++
		return v, nil
	}
	neg := false
	if p.acceptPunct("-") {
		neg = true
	} else {
		p.acceptPunct("+")
	}
	if neg && p.peek().kind == tokPunct && p.peek().text == "?" {
		return value.Value{}, fmt.Errorf("sql: cannot negate a parameter")
	}
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("sql: bad number %q", t.text)
			}
			if neg {
				f = -f
			}
			return value.NewDouble(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("sql: bad integer %q", t.text)
		}
		if neg {
			n = -n
		}
		return value.NewBigint(n), nil
	case tokString:
		if neg {
			return value.Value{}, fmt.Errorf("sql: cannot negate a string")
		}
		p.advance()
		return value.NewVarchar(t.text), nil
	case tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			if neg {
				return value.Value{}, fmt.Errorf("sql: cannot negate NULL")
			}
			p.advance()
			return value.Null(value.Varchar), nil
		}
	}
	return value.Value{}, fmt.Errorf("sql: expected literal at position %d, got %q", t.pos, t.text)
}

// typedLiteral parses a literal and coerces it to the column's type.
func (p *parser) typedLiteral(col int) (value.Value, error) {
	v, err := p.literal()
	if err != nil {
		return value.Value{}, err
	}
	t := p.columnType(col)
	if v.IsNull() {
		return value.Null(t), nil
	}
	cv, err := value.Coerce(v, t)
	if err != nil {
		return value.Value{}, err
	}
	return cv, nil
}

// wherePredicate parses a WHERE expression.
func (p *parser) wherePredicate() (expr.Predicate, error) {
	return p.orExpr()
}

func (p *parser) orExpr() (expr.Predicate, error) {
	first, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	preds := []expr.Predicate{first}
	for p.acceptKeyword("OR") {
		next, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &expr.Or{Preds: preds}, nil
}

func (p *parser) andExpr() (expr.Predicate, error) {
	first, err := p.primaryPred()
	if err != nil {
		return nil, err
	}
	preds := []expr.Predicate{first}
	for p.acceptKeyword("AND") {
		next, err := p.primaryPred()
		if err != nil {
			return nil, err
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &expr.And{Preds: preds}, nil
}

func (p *parser) primaryPred() (expr.Predicate, error) {
	if p.acceptKeyword("NOT") {
		sub, err := p.primaryPred()
		if err != nil {
			return nil, err
		}
		return &expr.Not{P: sub}, nil
	}
	if p.acceptPunct("(") {
		sub, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return sub, nil
	}
	col, err := p.columnRef()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.typedLiteral(col)
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.typedLiteral(col)
		if err != nil {
			return nil, err
		}
		return &expr.Between{Col: col, Lo: lo, Hi: hi}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []value.Value
		for {
			v, err := p.typedLiteral(col)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &expr.In{Col: col, Vals: vals}, nil
	default:
		t := p.peek()
		if t.kind != tokPunct {
			return nil, fmt.Errorf("sql: expected comparison operator at position %d", t.pos)
		}
		var op expr.CmpOp
		switch t.text {
		case "=":
			op = expr.Eq
		case "<>":
			op = expr.Ne
		case "<":
			op = expr.Lt
		case "<=":
			op = expr.Le
		case ">":
			op = expr.Gt
		case ">=":
			op = expr.Ge
		default:
			return nil, fmt.Errorf("sql: bad operator %q at position %d", t.text, t.pos)
		}
		p.advance()
		v, err := p.typedLiteral(col)
		if err != nil {
			return nil, err
		}
		return &expr.Comparison{Col: col, Op: op, Val: v}, nil
	}
}

// selectStmt parses SELECT ... FROM ... [JOIN ... ON ...] [WHERE ...]
// [GROUP BY ...] [LIMIT n].
func (p *parser) selectStmt() (*query.Query, error) {
	p.advance() // SELECT
	// Scan ahead: the select list is parsed after FROM resolves schemas, so
	// remember its token range and re-parse.
	listStart := p.i
	depth := 0
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil, fmt.Errorf("sql: missing FROM clause")
		}
		if t.kind == tokPunct && t.text == "(" {
			depth++
		}
		if t.kind == tokPunct && t.text == ")" {
			depth--
		}
		if depth == 0 && t.kind == tokIdent && strings.EqualFold(t.text, "FROM") {
			break
		}
		p.advance()
	}
	listEnd := p.i
	p.advance() // FROM
	leftName, err := p.ident()
	if err != nil {
		return nil, err
	}
	left, err := p.lookupTable(leftName)
	if err != nil {
		return nil, err
	}
	p.left, p.leftName = left, leftName
	p.right, p.rightName = nil, ""

	q := &query.Query{Table: leftName}
	if p.acceptKeyword("JOIN") {
		rightName, err := p.ident()
		if err != nil {
			return nil, err
		}
		right, err := p.lookupTable(rightName)
		if err != nil {
			return nil, err
		}
		p.right, p.rightName = right, rightName
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		c1, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		c2, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		nL := left.NumColumns()
		// Normalize to (leftCol, rightCol-local).
		switch {
		case c1 < nL && c2 >= nL:
			q.Join = &query.Join{Table: rightName, LeftCol: c1, RightCol: c2 - nL}
		case c2 < nL && c1 >= nL:
			q.Join = &query.Join{Table: rightName, LeftCol: c2, RightCol: c1 - nL}
		default:
			return nil, fmt.Errorf("sql: join condition must compare columns of both tables")
		}
	}

	// Parse the saved select list with schemas in scope.
	savedI := p.i
	p.i = listStart
	aggs, cols, star, err := p.selectList(listEnd)
	if err != nil {
		return nil, err
	}
	p.i = savedI

	if p.acceptKeyword("WHERE") {
		pred, err := p.wherePredicate()
		if err != nil {
			return nil, err
		}
		q.Pred = pred
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			o := query.Order{Col: c}
			if p.acceptKeyword("DESC") {
				o.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, o)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		p.advance()
		q.Limit = n
	}

	if len(aggs) > 0 {
		q.Kind = query.Aggregate
		q.Aggs = aggs
		for _, o := range q.OrderBy {
			if !containsInt(q.GroupBy, o.Col) {
				return nil, fmt.Errorf("sql: ORDER BY column %d of an aggregate query must appear in GROUP BY", o.Col)
			}
		}
		if len(cols) > 0 {
			// Plain columns in an aggregate query must be grouped.
			for _, c := range cols {
				if !containsInt(q.GroupBy, c) {
					return nil, fmt.Errorf("sql: column %d selected but not grouped", c)
				}
			}
		}
		if len(q.GroupBy) == 0 && len(cols) > 0 {
			return nil, fmt.Errorf("sql: mixing aggregates and columns requires GROUP BY")
		}
	} else {
		q.Kind = query.Select
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: GROUP BY requires aggregates")
		}
		if !star {
			q.Cols = cols
		}
	}
	return q, nil
}

// selectList parses the projection between SELECT and FROM. It returns
// aggregate specs, plain column refs and whether '*' appeared.
func (p *parser) selectList(end int) ([]agg.Spec, []int, bool, error) {
	var aggs []agg.Spec
	var cols []int
	star := false
	for p.i < end {
		t := p.peek()
		if t.kind == tokPunct && t.text == "*" {
			star = true
			p.advance()
		} else if t.kind == tokIdent && p.i+1 < end && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
			fn, err := agg.ParseFunc(strings.ToUpper(t.text))
			if err != nil {
				return nil, nil, false, err
			}
			p.advance() // func name
			p.advance() // (
			if p.peek().kind == tokPunct && p.peek().text == "*" {
				if fn != agg.Count {
					return nil, nil, false, fmt.Errorf("sql: %s(*) is not valid", fn)
				}
				p.advance()
				aggs = append(aggs, agg.Spec{Func: agg.Count, Col: -1})
			} else {
				c, err := p.columnRef()
				if err != nil {
					return nil, nil, false, err
				}
				aggs = append(aggs, agg.Spec{Func: fn, Col: c})
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, nil, false, err
			}
		} else {
			c, err := p.columnRef()
			if err != nil {
				return nil, nil, false, err
			}
			cols = append(cols, c)
		}
		if p.i < end && !p.acceptPunct(",") {
			return nil, nil, false, fmt.Errorf("sql: expected ',' in select list at position %d", p.peek().pos)
		}
	}
	if !star && len(aggs) == 0 && len(cols) == 0 {
		return nil, nil, false, fmt.Errorf("sql: empty select list")
	}
	return aggs, cols, star, nil
}

// insertStmt parses INSERT INTO t VALUES (...), (...).
func (p *parser) insertStmt() (*query.Query, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sch, err := p.lookupTable(name)
	if err != nil {
		return nil, err
	}
	p.left, p.leftName = sch, name
	p.right = nil
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	q := &query.Query{Kind: query.Insert, Table: name}
	q.Rows, err = p.valuesRows(sch, name)
	if err != nil {
		return nil, err
	}
	return q, nil
}

// copyStmt parses COPY t FROM VALUES (...), (...) — the bulk-ingest
// statement. The grammar matches INSERT's VALUES list; only the
// execution path differs (whole batch as one atomic WAL record).
func (p *parser) copyStmt() (*query.Query, error) {
	p.advance() // COPY
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sch, err := p.lookupTable(name)
	if err != nil {
		return nil, err
	}
	p.left, p.leftName = sch, name
	p.right = nil
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	q := &query.Query{Kind: query.Insert, Table: name}
	q.Rows, err = p.valuesRows(sch, name)
	if err != nil {
		return nil, err
	}
	return q, nil
}

// valuesRows parses the (...), (...) literal-row list shared by INSERT
// and COPY, enforcing the table's column arity on every row.
func (p *parser) valuesRows(sch *schema.Table, name string) ([][]value.Value, error) {
	var rows [][]value.Value
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []value.Value
		for col := 0; ; col++ {
			if col >= sch.NumColumns() {
				return nil, fmt.Errorf("sql: too many values for table %q", name)
			}
			v, err := p.typedLiteral(col)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(row) != sch.NumColumns() {
			return nil, fmt.Errorf("sql: table %q expects %d values, got %d", name, sch.NumColumns(), len(row))
		}
		rows = append(rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return rows, nil
}

// updateStmt parses UPDATE t SET col = lit, ... [WHERE ...].
func (p *parser) updateStmt() (*query.Query, error) {
	p.advance() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sch, err := p.lookupTable(name)
	if err != nil {
		return nil, err
	}
	p.left, p.leftName = sch, name
	p.right = nil
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	q := &query.Query{Kind: query.Update, Table: name, Set: map[int]value.Value{}}
	for {
		c, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.typedLiteral(c)
		if err != nil {
			return nil, err
		}
		q.Set[c] = v
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		pred, err := p.wherePredicate()
		if err != nil {
			return nil, err
		}
		q.Pred = pred
	}
	return q, nil
}

// deleteStmt parses DELETE FROM t [WHERE ...].
func (p *parser) deleteStmt() (*query.Query, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sch, err := p.lookupTable(name)
	if err != nil {
		return nil, err
	}
	p.left, p.leftName = sch, name
	p.right = nil
	q := &query.Query{Kind: query.Delete, Table: name}
	if p.acceptKeyword("WHERE") {
		pred, err := p.wherePredicate()
		if err != nil {
			return nil, err
		}
		q.Pred = pred
	}
	return q, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ParseScript splits a multi-statement script on semicolons (respecting
// string literals) and parses each statement. Empty statements and line
// comments starting with "--" are skipped.
func ParseScript(script string, resolve Resolver) ([]*Statement, error) {
	var stmts []*Statement
	for _, raw := range SplitStatements(script) {
		st, err := Parse(raw, resolve)
		if err != nil {
			return nil, fmt.Errorf("%w (in statement %q)", err, truncate(raw, 60))
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// SplitStatements splits a script into individual statements on
// semicolons, honoring quoted strings and stripping "--" comments.
func SplitStatements(script string) []string {
	var out []string
	var b strings.Builder
	inString := false
	lines := strings.Split(script, "\n")
	for _, line := range lines {
		// Strip comments outside strings.
		if !inString {
			if idx := strings.Index(line, "--"); idx >= 0 && !insideString(line[:idx]) {
				line = line[:idx]
			}
		}
		for i := 0; i < len(line); i++ {
			c := line[i]
			if c == '\'' {
				inString = !inString
			}
			if c == ';' && !inString {
				s := strings.TrimSpace(b.String())
				if s != "" {
					out = append(out, s)
				}
				b.Reset()
				continue
			}
			b.WriteByte(c)
		}
		b.WriteByte('\n')
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func insideString(s string) bool {
	return strings.Count(s, "'")%2 == 1
}

func truncate(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
