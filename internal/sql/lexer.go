// Package sql implements a small SQL dialect for the hybrid-store engine:
// CREATE TABLE, SELECT (projections, aggregates, a single equi-join, WHERE
// with AND/OR/NOT/BETWEEN/IN, GROUP BY, ORDER BY, LIMIT), INSERT ...
// VALUES, UPDATE and DELETE. Literal positions accept '?' parameter
// placeholders via Prepare/Bind — the network server's prepared
// statements bind them per execution. The offline advisor consumes
// workloads written in this dialect; the hsql shell speaks it
// interactively.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single characters and two-char operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased identifiers
	pos  int
}

// lexer splits a statement into tokens.
type lexer struct {
	in  string
	pos int
}

func newLexer(in string) *lexer { return &lexer{in: in} }

func (l *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.in[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.in) && isDigit(l.in[l.pos+1]):
		seenDot := false
		for l.pos < len(l.in) && (isDigit(l.in[l.pos]) || l.in[l.pos] == '.' && !seenDot) {
			if l.in[l.pos] == '.' {
				seenDot = true
			}
			l.pos++
		}
		// Exponent part.
		if l.pos < len(l.in) && (l.in[l.pos] == 'e' || l.in[l.pos] == 'E') {
			p := l.pos + 1
			if p < len(l.in) && (l.in[p] == '+' || l.in[p] == '-') {
				p++
			}
			if p < len(l.in) && isDigit(l.in[p]) {
				l.pos = p
				for l.pos < len(l.in) && isDigit(l.in[l.pos]) {
					l.pos++
				}
			}
		}
		return token{kind: tokNumber, text: l.in[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.in) {
			if l.in[l.pos] == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.in[l.pos])
			l.pos++
		}
		return token{}, l.error(start, "unterminated string literal")
	case c == '<':
		l.pos++
		if l.pos < len(l.in) && (l.in[l.pos] == '=' || l.in[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokPunct, text: l.in[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokPunct, text: l.in[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: "<>", pos: start}, nil
		}
		return token{}, l.error(start, "unexpected '!'")
	case strings.IndexByte("(),=*.+-;?", c) >= 0:
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, l.error(start, "unexpected character %q", c)
	}
}

// tokenize lexes the whole input.
func tokenize(in string) ([]token, error) {
	l := newLexer(in)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
