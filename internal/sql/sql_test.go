package sql

import (
	"strings"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func testResolver() Resolver {
	sales := schema.MustNew("sales", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "region", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "status", Type: value.Varchar, Nullable: true},
		{Name: "day", Type: value.Date},
	}, "id")
	dim := schema.MustNew("dim", []schema.Column{
		{Name: "rid", Type: value.Integer},
		{Name: "name", Type: value.Varchar},
	}, "rid")
	return func(name string) *schema.Table {
		switch strings.ToLower(name) {
		case "sales":
			return sales
		case "dim":
			return dim
		default:
			return nil
		}
	}
}

func mustParse(t *testing.T, in string) *Statement {
	t.Helper()
	st, err := Parse(in, testResolver())
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return st
}

func TestTokenize(t *testing.T) {
	toks, err := tokenize("SELECT a, 'it''s', 1.5e-3 FROM t WHERE x >= 10;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[2].kind != tokPunct || toks[2].text != "," {
		t.Errorf("comma token: %+v", toks[2])
	}
	if toks[3].kind != tokString || toks[3].text != "it's" {
		t.Errorf("string token: %+v", toks[3])
	}
	if toks[5].kind != tokNumber || toks[5].text != "1.5e-3" {
		t.Errorf("number token: %+v", toks[5])
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF")
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := tokenize("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := tokenize("a @ b"); err == nil {
		t.Error("bad character accepted")
	}
	// '?' is the parameter placeholder, not an error.
	if toks, err := tokenize("a ? b"); err != nil || toks[1].kind != tokPunct || toks[1].text != "?" {
		t.Errorf("parameter placeholder should tokenize: %v %v", toks, err)
	}
	if _, err := tokenize("a ! b"); err == nil {
		t.Error("lone ! accepted")
	}
	toks, err := tokenize("a != b")
	if err != nil || toks[1].text != "<>" {
		t.Errorf("!= should normalize to <>: %v %v", toks, err)
	}
}

func TestCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE orders (
		o_id BIGINT NOT NULL,
		o_total DOUBLE,
		o_status VARCHAR,
		o_date DATE,
		PRIMARY KEY (o_id)
	)`)
	sch := st.CreateTable
	if sch == nil {
		t.Fatal("no schema")
	}
	if sch.Name != "orders" || sch.NumColumns() != 4 {
		t.Errorf("schema: %v", sch)
	}
	if len(sch.PrimaryKey) != 1 || sch.PrimaryKey[0] != 0 {
		t.Errorf("pk: %v", sch.PrimaryKey)
	}
	if sch.Columns[1].Type != value.Double || !sch.Columns[1].Nullable {
		t.Errorf("col 1: %+v", sch.Columns[1])
	}
	if sch.Columns[0].Nullable {
		t.Error("PK column should be NOT NULL")
	}
}

func TestSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM sales WHERE id = 5")
	q := st.Query
	if q.Kind != query.Select || q.Cols != nil {
		t.Errorf("query: %+v", q)
	}
	cmp, ok := q.Pred.(*expr.Comparison)
	if !ok || cmp.Col != 0 || cmp.Op != expr.Eq {
		t.Errorf("pred: %v", q.Pred)
	}
	if cmp.Val.Type() != value.Bigint || cmp.Val.Int() != 5 {
		t.Errorf("literal not coerced to column type: %v %v", cmp.Val.Type(), cmp.Val)
	}
}

func TestSelectColumnsAndLimit(t *testing.T) {
	st := mustParse(t, "SELECT id, amount FROM sales LIMIT 10")
	q := st.Query
	if len(q.Cols) != 2 || q.Cols[0] != 0 || q.Cols[1] != 2 {
		t.Errorf("cols: %v", q.Cols)
	}
	if q.Limit != 10 {
		t.Errorf("limit: %d", q.Limit)
	}
}

func TestSelectAggregates(t *testing.T) {
	st := mustParse(t, "SELECT SUM(amount), AVG(region), COUNT(*) FROM sales WHERE region BETWEEN 1 AND 3 GROUP BY status")
	q := st.Query
	if q.Kind != query.Aggregate {
		t.Fatalf("kind: %v", q.Kind)
	}
	if len(q.Aggs) != 3 {
		t.Fatalf("aggs: %v", q.Aggs)
	}
	if q.Aggs[0] != (agg.Spec{Func: agg.Sum, Col: 2}) {
		t.Errorf("agg[0]: %v", q.Aggs[0])
	}
	if q.Aggs[2] != (agg.Spec{Func: agg.Count, Col: -1}) {
		t.Errorf("agg[2]: %v", q.Aggs[2])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != 3 {
		t.Errorf("group by: %v", q.GroupBy)
	}
	btw, ok := q.Pred.(*expr.Between)
	if !ok || btw.Col != 1 || btw.Lo.Type() != value.Integer {
		t.Errorf("pred: %v", q.Pred)
	}
}

func TestSelectGroupedColumn(t *testing.T) {
	st := mustParse(t, "SELECT region, SUM(amount) FROM sales GROUP BY region")
	q := st.Query
	if q.Kind != query.Aggregate || len(q.GroupBy) != 1 || q.GroupBy[0] != 1 {
		t.Errorf("grouped aggregate: %+v", q)
	}
}

func TestSelectJoin(t *testing.T) {
	st := mustParse(t, "SELECT dim.name, SUM(sales.amount) FROM sales JOIN dim ON sales.region = dim.rid WHERE dim.name <> 'x' GROUP BY dim.name")
	q := st.Query
	if q.Join == nil || q.Join.Table != "dim" || q.Join.LeftCol != 1 || q.Join.RightCol != 0 {
		t.Fatalf("join: %+v", q.Join)
	}
	// dim.name is combined index 5 + 1 = 6.
	if len(q.GroupBy) != 1 || q.GroupBy[0] != 6 {
		t.Errorf("group by: %v", q.GroupBy)
	}
	if q.Aggs[0].Col != 2 {
		t.Errorf("agg col: %v", q.Aggs[0])
	}
}

func TestSelectJoinReversedOn(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM sales JOIN dim ON dim.rid = sales.region")
	q := st.Query
	if q.Join.LeftCol != 1 || q.Join.RightCol != 0 {
		t.Errorf("reversed join not normalized: %+v", q.Join)
	}
}

func TestWhereCombinators(t *testing.T) {
	st := mustParse(t, "SELECT * FROM sales WHERE (id > 5 AND id < 100) OR NOT status = 'OPEN' OR region IN (1, 2)")
	or, ok := st.Query.Pred.(*expr.Or)
	if !ok || len(or.Preds) != 3 {
		t.Fatalf("pred: %v", st.Query.Pred)
	}
	if _, ok := or.Preds[0].(*expr.And); !ok {
		t.Errorf("first disjunct: %v", or.Preds[0])
	}
	if _, ok := or.Preds[1].(*expr.Not); !ok {
		t.Errorf("second disjunct: %v", or.Preds[1])
	}
	if in, ok := or.Preds[2].(*expr.In); !ok || len(in.Vals) != 2 {
		t.Errorf("third disjunct: %v", or.Preds[2])
	}
}

func TestInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO sales VALUES (1, 2, 3.5, 'OK', '2012-08-27'), (2, 3, 4.5, NULL, '2012-08-28')")
	q := st.Query
	if q.Kind != query.Insert || len(q.Rows) != 2 {
		t.Fatalf("insert: %+v", q)
	}
	if q.Rows[0][0].Type() != value.Bigint || q.Rows[0][2].Type() != value.Double {
		t.Errorf("types: %v", q.Rows[0])
	}
	if q.Rows[0][4].Type() != value.Date {
		t.Errorf("date not coerced: %v", q.Rows[0][4].Type())
	}
	if !q.Rows[1][3].IsNull() {
		t.Errorf("NULL literal: %v", q.Rows[1][3])
	}
}

func TestInsertArityErrors(t *testing.T) {
	if _, err := Parse("INSERT INTO sales VALUES (1, 2)", testResolver()); err == nil {
		t.Error("short row accepted")
	}
	if _, err := Parse("INSERT INTO sales VALUES (1, 2, 3, 'x', '2012-01-01', 9)", testResolver()); err == nil {
		t.Error("long row accepted")
	}
}

func TestUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE sales SET status = 'SHIPPED', amount = 9.5 WHERE id = 3")
	q := st.Query
	if q.Kind != query.Update || len(q.Set) != 2 {
		t.Fatalf("update: %+v", q)
	}
	if q.Set[3].Varchar() != "SHIPPED" || q.Set[2].Double() != 9.5 {
		t.Errorf("set: %v", q.Set)
	}
}

func TestDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM sales WHERE region = 2")
	q := st.Query
	if q.Kind != query.Delete {
		t.Fatalf("delete: %+v", q)
	}
	if _, ok := q.Pred.(*expr.Comparison); !ok {
		t.Errorf("pred: %v", q.Pred)
	}
	st = mustParse(t, "DELETE FROM sales")
	if st.Query.Pred != nil {
		t.Error("unfiltered delete should have nil pred")
	}
}

func TestNegativeNumbers(t *testing.T) {
	st := mustParse(t, "SELECT * FROM sales WHERE amount > -1.5")
	cmp := st.Query.Pred.(*expr.Comparison)
	if cmp.Val.Double() != -1.5 {
		t.Errorf("negative literal: %v", cmp.Val)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE x",
		"SELECT FROM sales",
		"SELECT * FROM ghost",
		"SELECT nope FROM sales",
		"SELECT * FROM sales WHERE",
		"SELECT * FROM sales WHERE id ~ 5",
		"SELECT MEDIAN(amount) FROM sales",
		"SELECT SUM(*) FROM sales",
		"SELECT amount FROM sales GROUP BY region",
		"SELECT region, SUM(amount) FROM sales",
		"SELECT * FROM sales LIMIT x",
		"SELECT * FROM sales trailing garbage",
		"INSERT INTO sales VALUES",
		"UPDATE sales SET",
		"DELETE sales",
		"SELECT * FROM sales JOIN dim ON sales.id = sales.region",
		"SELECT dim.rid FROM sales", // unknown qualifier
		"CREATE TABLE t (a BLOB)",
	}
	for _, in := range bad {
		if _, err := Parse(in, testResolver()); err == nil {
			t.Errorf("accepted: %q", in)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	// Both sales and a self-joined dim have no overlapping names here, so
	// craft one: "name" exists only in dim, "id" only in sales — use region
	// vs rid; nothing ambiguous. Instead check qualifier mismatch.
	if _, err := Parse("SELECT bogus.name FROM sales JOIN dim ON sales.region = dim.rid", testResolver()); err == nil {
		t.Error("unknown qualifier accepted")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	st := mustParse(t, "select Id, AMOUNT from SALES where REGION = 1 limit 3")
	q := st.Query
	if q.Kind != query.Select || len(q.Cols) != 2 || q.Limit != 3 {
		t.Errorf("case-insensitive parse: %+v", q)
	}
}

func TestSplitStatements(t *testing.T) {
	script := `
-- workload file
SELECT * FROM sales;  -- trailing comment
INSERT INTO sales VALUES (1, 2, 3.0, 'a;b', '2012-01-01');

UPDATE sales SET amount = 1 WHERE id = 1
`
	parts := SplitStatements(script)
	if len(parts) != 3 {
		t.Fatalf("parts = %d: %q", len(parts), parts)
	}
	if !strings.Contains(parts[1], "a;b") {
		t.Errorf("semicolon in string mangled: %q", parts[1])
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
SELECT SUM(amount) FROM sales;
UPDATE sales SET status = 'X' WHERE id = 9;
`, testResolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || stmts[0].Query.Kind != query.Aggregate || stmts[1].Query.Kind != query.Update {
		t.Errorf("script: %+v", stmts)
	}
	if _, err := ParseScript("SELECT * FROM ghost;", testResolver()); err == nil {
		t.Error("bad script accepted")
	}
}

func TestNoResolver(t *testing.T) {
	if _, err := Parse("SELECT * FROM sales", nil); err == nil {
		t.Error("missing resolver accepted")
	}
	// CREATE TABLE works without a resolver.
	if _, err := Parse("CREATE TABLE t (a INTEGER)", nil); err != nil {
		t.Errorf("create without resolver: %v", err)
	}
}
