package sql

import (
	"strings"
	"testing"

	"hybridstore/internal/catalog"
	"hybridstore/internal/engine"
	"hybridstore/internal/schema"
)

// execSQL parses one statement against the live engine's catalog and
// executes it — the hsql shell's round trip.
func execSQL(t *testing.T, db *engine.Database, stmt string) *engine.Result {
	t.Helper()
	resolver := func(name string) *schema.Table {
		if e := db.Catalog().Table(name); e != nil {
			return e.Schema
		}
		return nil
	}
	st, err := Parse(stmt, resolver)
	if err != nil {
		t.Fatalf("parse %q: %v", stmt, err)
	}
	if st.CreateTable != nil {
		if err := db.CreateTable(st.CreateTable, catalog.ColumnStore); err != nil {
			t.Fatalf("create: %v", err)
		}
		return nil
	}
	res, err := db.Exec(st.Query)
	if err != nil {
		t.Fatalf("exec %q: %v", stmt, err)
	}
	return res
}

func TestSQLEngineRoundTrip(t *testing.T) {
	db := engine.New()
	execSQL(t, db, `CREATE TABLE orders (
		o_id BIGINT NOT NULL,
		o_region INTEGER,
		o_total DOUBLE,
		o_status VARCHAR,
		o_day DATE,
		PRIMARY KEY (o_id))`)
	execSQL(t, db, `CREATE TABLE region (
		r_id INTEGER NOT NULL,
		r_name VARCHAR,
		PRIMARY KEY (r_id))`)

	execSQL(t, db, `INSERT INTO region VALUES (0, 'north'), (1, 'south'), (2, 'west')`)
	for i := 0; i < 30; i++ {
		stmt := "INSERT INTO orders VALUES (" +
			itoa(i) + ", " + itoa(i%3) + ", " + itoa(i*10) + ".5, 'OPEN', '2012-08-27')"
		execSQL(t, db, stmt)
	}

	// Aggregate with grouping.
	res := execSQL(t, db, `SELECT o_region, SUM(o_total), COUNT(*) FROM orders GROUP BY o_region`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Join with a dimension attribute group-by.
	res = execSQL(t, db, `SELECT r_name, SUM(o_total) FROM orders JOIN region ON orders.o_region = region.r_id GROUP BY r_name`)
	if len(res.Rows) != 3 {
		t.Fatalf("join groups = %d", len(res.Rows))
	}
	if !strings.Contains(res.Cols[0], "r_name") {
		t.Errorf("join col names = %v", res.Cols)
	}

	// Update through SQL, verify through SQL.
	res = execSQL(t, db, `UPDATE orders SET o_status = 'SHIPPED' WHERE o_id BETWEEN 5 AND 9`)
	if res.Affected != 5 {
		t.Fatalf("updated %d", res.Affected)
	}
	res = execSQL(t, db, `SELECT o_id FROM orders WHERE o_status = 'SHIPPED'`)
	if len(res.Rows) != 5 {
		t.Fatalf("shipped rows = %d", len(res.Rows))
	}

	// Date predicate round trip.
	res = execSQL(t, db, `SELECT COUNT(*) FROM orders WHERE o_day = '2012-08-27'`)
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("date filter count = %v", res.Rows[0][0])
	}

	// Delete and re-count.
	res = execSQL(t, db, `DELETE FROM orders WHERE o_region = 2`)
	if res.Affected != 10 {
		t.Fatalf("deleted %d", res.Affected)
	}
	res = execSQL(t, db, `SELECT COUNT(*) FROM orders`)
	if res.Rows[0][0].Int() != 20 {
		t.Fatalf("count after delete = %v", res.Rows[0][0])
	}

	// LIMIT through SQL.
	res = execSQL(t, db, `SELECT o_id, o_total FROM orders LIMIT 7`)
	if len(res.Rows) != 7 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
