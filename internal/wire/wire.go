// Package wire defines the hsqld network protocol: length-prefixed
// binary frames whose payloads are encoded with the internal/wal codec
// (the same uvarint-framed primitives WAL records and snapshots use, so
// values, rows and schemas share one encoding across the log, the
// snapshot and the wire).
//
// A frame is [uint32 LE payload length][payload]; the payload's first
// byte is the message type. Each request frame receives exactly one
// response frame, in request order — the ordering is what lets clients
// pipeline without per-request correlation ids. Frames larger than the
// reader's limit are rejected before any allocation, and truncated
// frames surface as io.ErrUnexpectedEOF, so a malicious or confused peer
// cannot make the server allocate or block unboundedly.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"hybridstore/internal/value"
	"hybridstore/internal/wal"
)

// ProtocolVersion is bumped on incompatible frame-format changes; Hello
// carries the client's version and the server rejects mismatches.
const ProtocolVersion = 1

// DefaultMaxFrame caps the payload size either side accepts (and the
// row payload a response may carry). Large results should be paged with
// LIMIT; large inserts split into batches.
const DefaultMaxFrame = 8 << 20

// frameHeaderLen is the fixed [length] prefix.
const frameHeaderLen = 4

// Request message types.
const (
	// MsgHello opens a session: client name, protocol version and an
	// optional per-statement timeout.
	MsgHello byte = 0x01
	// MsgExec parses and executes one SQL statement (params allowed).
	MsgExec byte = 0x02
	// MsgPrepare registers a prepared statement and returns its handle.
	MsgPrepare byte = 0x03
	// MsgStmtExec executes a prepared statement with bound parameters.
	MsgStmtExec byte = 0x04
	// MsgStmtClose drops a prepared-statement handle.
	MsgStmtClose byte = 0x05
	// MsgPing checks liveness.
	MsgPing byte = 0x06
	// MsgCancel aborts the session's currently executing statement. It
	// is processed out of band (no response frame of its own): the
	// cancelled statement's response reports the cancellation.
	MsgCancel byte = 0x07
	// MsgQuit closes the session after the pipeline drains.
	MsgQuit byte = 0x08
	// MsgCopy appends one bulk-ingest batch (thousands of rows encoded
	// with the shared WAL codec) to a table. The whole frame is applied
	// atomically and durably as one WAL group-commit record; the reply
	// is MsgOK carrying the row count. Frames pipeline like any other
	// request.
	MsgCopy byte = 0x09
)

// Response message types.
const (
	// MsgWelcome answers Hello with the session id.
	MsgWelcome byte = 0x81
	// MsgOK reports a statement that returned no rows.
	MsgOK byte = 0x82
	// MsgRows carries a result set.
	MsgRows byte = 0x83
	// MsgPrepared answers Prepare with the handle and parameter count.
	MsgPrepared byte = 0x84
	// MsgError reports a failed request.
	MsgError byte = 0x85
	// MsgPong answers Ping.
	MsgPong byte = 0x86
)

// Error codes carried by MsgError.
const (
	// CodeSQL: the statement failed to parse, bind or execute.
	CodeSQL byte = 1
	// CodeShutdown: the server is draining; the session should
	// disconnect.
	CodeShutdown byte = 2
	// CodeCancelled: the statement was aborted by a cancel or deadline.
	CodeCancelled byte = 3
	// CodeProtocol: the peer violated the protocol (bad frame, unknown
	// type, oversized result).
	CodeProtocol byte = 4
	// CodeTooBusy: admission control rejected the connection.
	CodeTooBusy byte = 5
	// CodeUnknownStmt: StmtExec/StmtClose named a handle this session
	// does not hold. The statement provably did not execute, so drivers
	// may re-prepare and retry transparently without double-applying.
	CodeUnknownStmt byte = 6
	// CodeTxnConflict: a first-updater-wins write-write conflict aborted
	// the session's transaction under snapshot isolation. The transaction
	// rolled back cleanly; the whole transaction (not the statement) is
	// safe to retry from BEGIN.
	CodeTxnConflict byte = 7
	// CodeUnsupported: the statement is well-formed but the engine
	// genuinely cannot execute it (e.g. COPY inside an open transaction,
	// or versioned DML on a PK-less table). Unlike CodeSQL it is never
	// worth retrying unchanged.
	CodeUnsupported byte = 8
)

// Request is one client→server message; only the fields of its Type are
// meaningful.
type Request struct {
	Type byte

	// Hello.
	ClientName string
	Version    int
	// Timeout is the per-statement deadline the session wants (0 =
	// none); the server clamps it to its configured maximum, when one
	// is set.
	Timeout time.Duration

	// Exec / Prepare: statement text. StmtExec/StmtClose: handle.
	SQL    string
	Stmt   uint64
	Params []value.Value

	// Copy: target table, row arity and the batch itself.
	Table string
	Width int
	Rows  [][]value.Value
}

// Response is one server→client message; only the fields of its Type
// are meaningful.
type Response struct {
	Type byte

	// Welcome.
	Session uint64

	// Prepared.
	Stmt      uint64
	NumParams int

	// OK / Rows.
	Affected int
	Duration time.Duration
	Cols     []string
	Rows     [][]value.Value

	// Error.
	Code byte
	Err  string
}

// WriteFrame frames and writes one payload. The header and payload go
// out in a single Write call, so frames from writers serialized by a
// mutex can never interleave on the socket.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame payload, rejecting frames larger than max
// (0 = DefaultMaxFrame) without allocating for them. A cleanly closed
// connection between frames returns io.EOF; a connection cut inside a
// frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: truncated frame (%d bytes expected): %w", n, io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return payload, nil
}

// EncodeRequest serializes a request into a frame payload.
func EncodeRequest(rq *Request) []byte {
	e := wal.NewEncoder()
	e.Byte(rq.Type)
	switch rq.Type {
	case MsgHello:
		e.String(rq.ClientName)
		e.Uvarint(uint64(rq.Version))
		e.Uvarint(uint64(rq.Timeout))
	case MsgExec:
		e.String(rq.SQL)
		encodeParams(e, rq.Params)
	case MsgPrepare:
		e.String(rq.SQL)
	case MsgStmtExec:
		e.Uvarint(rq.Stmt)
		encodeParams(e, rq.Params)
	case MsgStmtClose:
		e.Uvarint(rq.Stmt)
	case MsgCopy:
		e.String(rq.Table)
		e.Varint(int64(rq.Width))
		e.Rows(rq.Rows)
	case MsgPing, MsgCancel, MsgQuit:
		// Type byte only.
	}
	return e.Bytes()
}

// DecodeRequest parses a frame payload into a request.
func DecodeRequest(payload []byte) (*Request, error) {
	d := wal.NewDecoder(payload)
	rq := &Request{Type: d.Byte()}
	switch rq.Type {
	case MsgHello:
		rq.ClientName = d.String()
		rq.Version = int(d.Uvarint())
		rq.Timeout = time.Duration(d.Uvarint())
	case MsgExec:
		rq.SQL = d.String()
		var perr error
		if rq.Params, perr = decodeParams(d); perr != nil {
			return nil, perr
		}
	case MsgPrepare:
		rq.SQL = d.String()
	case MsgStmtExec:
		rq.Stmt = d.Uvarint()
		var perr error
		if rq.Params, perr = decodeParams(d); perr != nil {
			return nil, perr
		}
	case MsgStmtClose:
		rq.Stmt = d.Uvarint()
	case MsgCopy:
		rq.Table = d.String()
		rq.Width = d.Int()
		if d.Err() == nil && (rq.Width <= 0 || rq.Width > d.Remaining()+1) {
			return nil, fmt.Errorf("wire: implausible copy width %d", rq.Width)
		}
		// The codec's Rows already bounds up-front allocation and
		// validates the claimed count against the remaining bytes.
		rq.Rows = d.Rows(rq.Width)
	case MsgPing, MsgCancel, MsgQuit:
	default:
		return nil, fmt.Errorf("wire: unknown request type 0x%02x", rq.Type)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: bad request: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in request", d.Remaining())
	}
	return rq, nil
}

// EncodeResponse serializes a response into a frame payload.
func EncodeResponse(rs *Response) []byte {
	e := wal.NewEncoder()
	e.Byte(rs.Type)
	switch rs.Type {
	case MsgWelcome:
		e.Uvarint(rs.Session)
	case MsgOK:
		e.Varint(int64(rs.Affected))
		e.Uvarint(uint64(rs.Duration))
	case MsgRows:
		e.Varint(int64(rs.Affected))
		e.Uvarint(uint64(rs.Duration))
		e.Uvarint(uint64(len(rs.Cols)))
		for _, c := range rs.Cols {
			e.String(c)
		}
		e.Rows(rs.Rows)
	case MsgPrepared:
		e.Uvarint(rs.Stmt)
		e.Uvarint(uint64(rs.NumParams))
	case MsgError:
		e.Byte(rs.Code)
		e.String(rs.Err)
	case MsgPong:
	}
	return e.Bytes()
}

// DecodeResponse parses a frame payload into a response.
func DecodeResponse(payload []byte) (*Response, error) {
	d := wal.NewDecoder(payload)
	rs := &Response{Type: d.Byte()}
	switch rs.Type {
	case MsgWelcome:
		rs.Session = d.Uvarint()
	case MsgOK:
		rs.Affected = d.Int()
		rs.Duration = time.Duration(d.Uvarint())
	case MsgRows:
		rs.Affected = d.Int()
		rs.Duration = time.Duration(d.Uvarint())
		n := d.Uvarint()
		if d.Err() == nil && (n == 0 || n > uint64(d.Remaining())) {
			// Zero columns would let a row section of width 0 claim an
			// arbitrary row count at zero bytes each; the server never
			// emits MsgRows without columns.
			return nil, fmt.Errorf("wire: implausible column count %d", n)
		}
		if d.Err() == nil {
			rs.Cols = make([]string, 0, min(n, allocBatch))
			for i := uint64(0); i < n && d.Err() == nil; i++ {
				rs.Cols = append(rs.Cols, d.String())
			}
			rs.Rows = d.Rows(len(rs.Cols))
		}
	case MsgPrepared:
		rs.Stmt = d.Uvarint()
		rs.NumParams = int(d.Uvarint())
	case MsgError:
		rs.Code = d.Byte()
		rs.Err = d.String()
	case MsgPong:
	default:
		return nil, fmt.Errorf("wire: unknown response type 0x%02x", rs.Type)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: bad response: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in response", d.Remaining())
	}
	return rs, nil
}

func encodeParams(e *wal.Encoder, params []value.Value) {
	e.Uvarint(uint64(len(params)))
	for _, v := range params {
		e.Value(v)
	}
}

// allocBatch caps up-front slice capacity when decoding claimed counts:
// growth beyond it is paid only as elements actually decode, so a frame
// claiming millions of entries cannot amplify its own byte size into a
// huge allocation before the first bogus element fails.
const allocBatch = 4096

func decodeParams(d *wal.Decoder) ([]value.Value, error) {
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, nil // surfaced by the caller's d.Err() check
	}
	if n > uint64(d.Remaining()) { // each value takes >= 1 byte
		return nil, fmt.Errorf("wire: implausible parameter count %d", n)
	}
	out := make([]value.Value, 0, min(n, allocBatch))
	for i := uint64(0); i < n; i++ {
		v := d.Value()
		if d.Err() != nil {
			return nil, nil
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// WriteRequest encodes and frames a request.
func WriteRequest(w io.Writer, rq *Request) error { return WriteFrame(w, EncodeRequest(rq)) }

// WriteResponse encodes and frames a response.
func WriteResponse(w io.Writer, rs *Response) error { return WriteFrame(w, EncodeResponse(rs)) }

// ReadRequest reads and decodes one request frame.
func ReadRequest(r io.Reader, max int) (*Request, error) {
	payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	return DecodeRequest(payload)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader, max int) (*Response, error) {
	payload, err := ReadFrame(r, max)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}
