package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"hybridstore/internal/value"
)

func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(6) {
	case 0:
		return value.NewInt(rng.Int63n(1000) - 500)
	case 1:
		return value.NewBigint(rng.Int63() - rng.Int63())
	case 2:
		return value.NewDouble(rng.NormFloat64() * 1e6)
	case 3:
		return value.NewVarchar(strings.Repeat("x", rng.Intn(20)) + "'q\x00")
	case 4:
		return value.NewDate(rng.Int63n(40000))
	default:
		return value.Null(value.Type(1 + rng.Intn(5)))
	}
}

func randParams(rng *rand.Rand) []value.Value {
	n := rng.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]value.Value, n)
	for i := range out {
		out[i] = randValue(rng)
	}
	return out
}

// paramsEqual treats nil and empty as equal (the wire cannot tell them
// apart).
func paramsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestRequestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		var rq Request
		switch rng.Intn(8) {
		case 0:
			rq = Request{Type: MsgHello, ClientName: "bench-w1", Version: ProtocolVersion, Timeout: time.Duration(rng.Intn(5000)) * time.Millisecond}
		case 1:
			rq = Request{Type: MsgExec, SQL: "SELECT * FROM t WHERE a = ? ORDER BY b DESC", Params: randParams(rng)}
		case 2:
			rq = Request{Type: MsgPrepare, SQL: "INSERT INTO t VALUES (?, ?, ?)"}
		case 3:
			rq = Request{Type: MsgStmtExec, Stmt: rng.Uint64() % 1e6, Params: randParams(rng)}
		case 4:
			rq = Request{Type: MsgStmtClose, Stmt: rng.Uint64() % 1e6}
		case 5:
			rq = Request{Type: MsgPing}
		case 6:
			rq = Request{Type: MsgCancel}
		default:
			rq = Request{Type: MsgQuit}
		}
		got, err := DecodeRequest(EncodeRequest(&rq))
		if err != nil {
			t.Fatalf("decode %+v: %v", rq, err)
		}
		if got.Type != rq.Type || got.SQL != rq.SQL || got.Stmt != rq.Stmt ||
			got.ClientName != rq.ClientName || got.Version != rq.Version || got.Timeout != rq.Timeout ||
			!paramsEqual(got.Params, rq.Params) {
			t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", rq, got)
		}
	}
}

func randRows(rng *rand.Rand, width int) [][]value.Value {
	rows := make([][]value.Value, rng.Intn(6))
	for i := range rows {
		row := make([]value.Value, width)
		for j := range row {
			row[j] = randValue(rng)
		}
		rows[i] = row
	}
	if len(rows) == 0 {
		return nil
	}
	return rows
}

func TestResponseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		var rs Response
		switch rng.Intn(6) {
		case 0:
			rs = Response{Type: MsgWelcome, Session: rng.Uint64() % 1e9}
		case 1:
			rs = Response{Type: MsgOK, Affected: rng.Intn(1000), Duration: time.Duration(rng.Intn(1e9))}
		case 2:
			cols := []string{"a", "b", "c"}[:1+rng.Intn(3)]
			rs = Response{Type: MsgRows, Affected: rng.Intn(10), Duration: time.Duration(rng.Intn(1e9)),
				Cols: cols, Rows: randRows(rng, len(cols))}
		case 3:
			rs = Response{Type: MsgPrepared, Stmt: rng.Uint64() % 1e6, NumParams: rng.Intn(10)}
		case 4:
			rs = Response{Type: MsgError, Code: CodeSQL, Err: "sql: boom"}
		default:
			rs = Response{Type: MsgPong}
		}
		got, err := DecodeResponse(EncodeResponse(&rs))
		if err != nil {
			t.Fatalf("decode %+v: %v", rs, err)
		}
		if got.Type != rs.Type || got.Session != rs.Session || got.Stmt != rs.Stmt ||
			got.NumParams != rs.NumParams || got.Affected != rs.Affected ||
			got.Duration != rs.Duration || got.Code != rs.Code || got.Err != rs.Err ||
			!reflect.DeepEqual(got.Cols, rs.Cols) {
			t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", rs, got)
		}
		if len(got.Rows) != len(rs.Rows) {
			t.Fatalf("row count mismatch: %d vs %d", len(got.Rows), len(rs.Rows))
		}
		for r := range rs.Rows {
			if !paramsEqual(got.Rows[r], rs.Rows[r]) {
				t.Fatalf("row %d mismatch", r)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{0x01}, []byte("hello frame"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, 1<<30) // claims 1 GiB
	buf.Write(hdr)
	_, err := ReadFrame(&buf, 1<<20)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame accepted: %v", err)
	}
	// The default limit also rejects it.
	buf.Reset()
	buf.Write(hdr)
	if _, err := ReadFrame(&buf, 0); err == nil {
		t.Fatal("oversized frame accepted under default limit")
	}
}

func TestTruncatedFrameRejected(t *testing.T) {
	full := EncodeRequest(&Request{Type: MsgExec, SQL: "SELECT * FROM t", Params: []value.Value{value.NewInt(7)}})
	var whole bytes.Buffer
	if err := WriteFrame(&whole, full); err != nil {
		t.Fatal(err)
	}
	raw := whole.Bytes()
	// Every proper prefix must fail with ErrUnexpectedEOF (or io.EOF for
	// the empty prefix), never hang or misparse.
	for cut := 0; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]), 0)
		if err == nil {
			t.Fatalf("truncated frame (cut %d/%d) accepted", cut, len(raw))
		}
		if cut > 0 && cut != len(raw) && err != io.EOF && !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
	}
	// Truncated *payloads* inside a well-formed frame must error, not
	// panic.
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeRequest(full[:cut]); err == nil {
			// Some prefixes can decode to a shorter-but-valid request
			// only if every field still parses AND nothing trails;
			// with a trailing-bytes check this should never happen.
			t.Fatalf("truncated payload (cut %d/%d) accepted", cut, len(full))
		}
	}
}

func TestEmptyAndUnknownPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&buf, 0); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := DecodeRequest([]byte{0x7F}); err == nil {
		t.Fatal("unknown request type accepted")
	}
	if _, err := DecodeResponse([]byte{0x10}); err == nil {
		t.Fatal("unknown response type accepted")
	}
	// Trailing garbage after a valid message is a protocol error.
	p := append(EncodeRequest(&Request{Type: MsgPing}), 0xFF)
	if _, err := DecodeRequest(p); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzDecodeRequest asserts decode never panics and that every frame we
// encode survives a round trip.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{Type: MsgExec, SQL: "SELECT 1 FROM t", Params: []value.Value{value.NewInt(1)}}))
	f.Add(EncodeRequest(&Request{Type: MsgHello, ClientName: "c", Version: 1}))
	f.Add(EncodeRequest(&Request{Type: MsgStmtExec, Stmt: 3, Params: []value.Value{value.Null(value.Varchar)}}))
	f.Add([]byte{0x02, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re, err := DecodeRequest(EncodeRequest(rq))
		if err != nil {
			t.Fatalf("re-decode of valid request failed: %v", err)
		}
		if re.Type != rq.Type || re.SQL != rq.SQL || re.Stmt != rq.Stmt || !paramsEqual(re.Params, rq.Params) {
			t.Fatalf("unstable round trip: %+v vs %+v", rq, re)
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the response side.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(&Response{Type: MsgRows, Cols: []string{"a"}, Rows: [][]value.Value{{value.NewInt(1)}}}))
	f.Add(EncodeResponse(&Response{Type: MsgError, Code: CodeSQL, Err: "x"}))
	f.Add([]byte{0x83, 0x00, 0x00, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := DecodeResponse(data)
		if err != nil {
			return
		}
		if _, err := DecodeResponse(EncodeResponse(rs)); err != nil {
			t.Fatalf("re-decode of valid response failed: %v", err)
		}
	})
}
