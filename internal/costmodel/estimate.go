package costmodel

import (
	"strings"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
)

// TableInfo carries the data characteristics of one table (or virtual
// partition) into an estimate. Stats may be nil, in which case default
// selectivities apply.
type TableInfo struct {
	Schema      *schema.Table
	Rows        int
	Compression float64
	Stats       expr.ColumnStats
	HasIndex    func(col int) bool
}

// InfoSource resolves table names to their current characteristics.
type InfoSource func(table string) (TableInfo, bool)

// Placement assigns a store to every table (keys lower-cased).
type Placement map[string]catalog.StoreKind

// StoreOf looks up a table's store, defaulting to the row store.
func (p Placement) StoreOf(table string) catalog.StoreKind {
	if s, ok := p[strings.ToLower(table)]; ok {
		return s
	}
	return catalog.RowStore
}

// Clone copies the placement.
func (p Placement) Clone() Placement {
	out := make(Placement, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// EstimateQuery predicts the runtime of one query in nanoseconds under the
// given placement.
func (m *Model) EstimateQuery(q *query.Query, info InfoSource, place Placement) float64 {
	ti, ok := info(q.Table)
	if !ok {
		return 0
	}
	store := place.StoreOf(q.Table)
	switch q.Kind {
	case query.Aggregate:
		if q.Join != nil {
			return m.estimateJoin(q, ti, info, place)
		}
		return m.estimateAggregate(q, ti, store)
	case query.Select:
		if q.Join != nil {
			return m.estimateJoin(q, ti, info, place)
		}
		return m.estimateSelect(q, ti, store)
	case query.Insert:
		return m.estimateInsert(q, ti, store)
	case query.Update:
		return m.estimateUpdate(q, ti, store)
	case query.Delete:
		return m.estimateDelete(q, ti, store)
	default:
		return 0
	}
}

// EstimateWorkload predicts the total runtime of a workload in
// nanoseconds.
func (m *Model) EstimateWorkload(w *query.Workload, info InfoSource, place Placement) float64 {
	total := 0.0
	for _, q := range w.Queries {
		total += m.EstimateQuery(q, info, place)
	}
	return total
}

// estimateAggregate implements the paper's aggregation-query formula:
//
//	(Σ_i BaseCosts_fn(i) · c_dataType(i)) · c_groupBy · f_#rows(n) · f_compression(r)
func (m *Model) estimateAggregate(q *query.Query, ti TableInfo, store catalog.StoreKind) float64 {
	p := m.params(store)
	base := p.AggQueryBase
	for _, s := range q.Aggs {
		c := p.aggBase(s.Func)
		if s.Col >= 0 && ti.Schema != nil && s.Col < ti.Schema.NumColumns() {
			c *= p.dataTypeC(ti.Schema.Columns[s.Col].Type)
		}
		base += c
	}
	if len(q.GroupBy) > 0 {
		base *= p.GroupByC
	}
	base *= p.RowsF.At(float64(ti.Rows))
	base *= p.CompressionF.At(ti.Compression)
	return base
}

// selectivityOf estimates the matched-row fraction of a predicate.
func selectivityOf(pred expr.Predicate, ti TableInfo) float64 {
	if pred == nil {
		return 1
	}
	if ti.Stats == nil {
		return 0.1
	}
	return expr.EstimateSelectivity(pred, ti.Stats)
}

// indexedAccess reports whether the row store can serve the predicate
// with an index: a PK point lookup, an equality on an indexed column, or
// a bounded range on a single-column primary key (served by the row
// store's ordered PK index).
func indexedAccess(pred expr.Predicate, ti TableInfo) bool {
	if pred == nil || ti.Schema == nil {
		return false
	}
	pk := ti.Schema.PrimaryKey
	if _, ok := expr.PKEquality(pred, pk); ok {
		return true
	}
	if len(pk) == 1 {
		if rg, ok := expr.RangeOn(pred, pk[0]); ok && (rg.Lo != nil || rg.Hi != nil) {
			return true
		}
	}
	if ti.HasIndex == nil {
		return false
	}
	for _, c := range expr.Conjuncts(pred) {
		if cmp, ok := c.(*expr.Comparison); ok && cmp.Op == expr.Eq && ti.HasIndex(cmp.Col) {
			return true
		}
	}
	return false
}

// estimateSelect implements the paper's point/range-query formula:
//
//	BaseSelectCosts · f_#selectedColumns · f_selectivity
//
// (scaled by f_#rows so the base cost transfers across table sizes). For
// the row store f_#selectedColumns is constant and f_selectivity is linear
// only when an index is available; for the column store the dictionary
// provides an implicit index, so f_selectivity is always linear and
// f_#selectedColumns grows with the tuple-reconstruction width.
func (m *Model) estimateSelect(q *query.Query, ti TableInfo, store catalog.StoreKind) float64 {
	p := m.params(store)
	k := len(q.Cols)
	if k == 0 && ti.Schema != nil {
		k = ti.Schema.NumColumns()
	}
	sel := selectivityOf(q.Pred, ti)
	if q.Limit > 0 && ti.Rows > 0 {
		// A limit caps the effective fraction of rows returned.
		if capSel := float64(q.Limit) / float64(ti.Rows); capSel < sel {
			sel = capSel
		}
	}
	var fsel float64
	switch {
	case store == catalog.ColumnStore:
		fsel = p.SelIdxF.At(sel) // implicit dictionary index
	case indexedAccess(q.Pred, ti):
		fsel = p.SelIdxF.At(sel)
	default:
		fsel = p.SelScanF.At(sel) // full table scan
	}
	return p.SelectBase * p.SelColsF.At(float64(k)) * fsel * p.RowsF.At(float64(ti.Rows))
}

// estimateInsert implements Costs = BaseInsertCosts · f_#rows, per
// inserted row (uniqueness verification grows with the table, §3.1).
func (m *Model) estimateInsert(q *query.Query, ti TableInfo, store catalog.StoreKind) float64 {
	p := m.params(store)
	return p.InsertBase * p.InsRowsF.At(float64(ti.Rows)) * float64(len(q.Rows))
}

// locationCost estimates the cost of finding the rows an update or delete
// affects. The paper folds this into f_#affectedRows ("basically reflects
// the selectivity of the query"); we model it explicitly with the same
// store-specific selectivity functions as point/range queries so that the
// location share scales with table size and index availability — without
// it, update estimates calibrated on the reference table do not transfer
// to much smaller or larger tables. This is a documented extension of the
// paper's formula (see DESIGN.md).
func (m *Model) locationCost(pred expr.Predicate, ti TableInfo, store catalog.StoreKind) float64 {
	if pred == nil {
		return 0
	}
	p := m.params(store)
	sel := selectivityOf(pred, ti)
	var fsel float64
	switch {
	case store == catalog.ColumnStore:
		fsel = p.SelIdxF.At(sel)
	case indexedAccess(pred, ti):
		fsel = p.SelIdxF.At(sel)
	default:
		fsel = p.SelScanF.At(sel)
	}
	return p.SelectBase * p.SelColsF.At(1) * fsel * p.RowsF.At(float64(ti.Rows))
}

// estimateUpdate implements
//
//	Costs = BaseUpdateCosts · f_#affectedColumns · f_#affectedRows
//
// plus the explicit row-location term (see locationCost).
func (m *Model) estimateUpdate(q *query.Query, ti TableInfo, store catalog.StoreKind) float64 {
	p := m.params(store)
	affected := selectivityOf(q.Pred, ti) * float64(ti.Rows)
	if affected < 1 {
		affected = 1
	}
	return p.UpdateBase*p.UpdColsF.At(float64(len(q.Set)))*p.UpdRowsF.At(affected) +
		m.locationCost(q.Pred, ti, store)
}

// estimateDelete treats a delete like a one-column update.
func (m *Model) estimateDelete(q *query.Query, ti TableInfo, store catalog.StoreKind) float64 {
	p := m.params(store)
	affected := selectivityOf(q.Pred, ti) * float64(ti.Rows)
	if affected < 1 {
		affected = 1
	}
	return p.UpdateBase*p.UpdColsF.At(1)*p.UpdRowsF.At(affected) +
		m.locationCost(q.Pred, ti, store)
}

// estimateJoin implements the paper's join extension: the base cost is
// selected by the store combination of both tables and adjusted by the
// characteristics of both sides:
//
//	BaseCosts^{s1,s2} · (query adjustments on the probe side) ·
//	f^{s1}_#rows(n1) · f^{s2}_#rows(n2) ·
//	f^{s1}_compression(r1) · f^{s2}_compression(r2)
func (m *Model) estimateJoin(q *query.Query, left TableInfo, info InfoSource, place Placement) float64 {
	right, ok := info(q.Join.Table)
	if !ok {
		return 0
	}
	s1 := place.StoreOf(q.Table)
	s2 := place.StoreOf(q.Join.Table)
	p1 := m.params(s1)
	p2 := m.params(s2)
	base := m.JoinBase[storeKey(s1)][storeKey(s2)]

	// Query adjustment: relative cost of the aggregate list on the probe
	// (left) store, normalized so a single SUM equals 1.
	queryAdj := 1.0
	if q.Kind == query.Aggregate && len(q.Aggs) > 0 {
		ref := p1.AggQueryBase + p1.aggBase(agg.Sum)
		total := p1.AggQueryBase
		nL := 0
		if left.Schema != nil {
			nL = left.Schema.NumColumns()
		}
		for _, s := range q.Aggs {
			c := p1.aggBase(s.Func)
			if s.Col >= 0 && s.Col < nL && left.Schema != nil {
				c *= p1.dataTypeC(left.Schema.Columns[s.Col].Type)
			}
			total += c
		}
		if ref > 0 {
			queryAdj = total / ref
		}
		if len(q.GroupBy) > 0 {
			// Join grouping has its own calibrated multiplier; fall back to
			// the probe store's single-table multiplier when absent.
			c := m.JoinGroupC[storeKey(s1)][storeKey(s2)]
			if c <= 0 {
				c = p1.GroupByC
			}
			queryAdj *= c
		}
	}
	// Predicate selectivity on the probe side shrinks the work — strongly
	// for the column store (the code-level bitmap removes per-row probe
	// work), weakly for the row store (the scan still visits every tuple;
	// only the per-match work shrinks).
	selAdj := 1.0
	if q.Pred != nil {
		leftPred := leftOnlyPred(q.Pred, left)
		if leftPred != nil {
			s := selectivityOf(leftPred, left)
			if s1 == catalog.ColumnStore {
				selAdj = 0.25 + 0.75*s
			} else {
				selAdj = 0.75 + 0.25*s
			}
		}
	}
	return base * queryAdj * selAdj *
		p1.RowsF.At(float64(left.Rows)) * p2.RowsF.At(float64(right.Rows)) *
		p1.CompressionF.At(left.Compression) * p2.CompressionF.At(right.Compression)
}

// leftOnlyPred extracts the conjuncts that reference only left-side
// columns (combined indexing: left columns come first).
func leftOnlyPred(pred expr.Predicate, left TableInfo) expr.Predicate {
	if left.Schema == nil {
		return nil
	}
	nL := left.Schema.NumColumns()
	var keep []expr.Predicate
	for _, c := range expr.Conjuncts(pred) {
		all := true
		for _, col := range expr.ColumnSet(c) {
			if col >= nL {
				all = false
				break
			}
		}
		if all {
			keep = append(keep, c)
		}
	}
	switch len(keep) {
	case 0:
		return nil
	case 1:
		return keep[0]
	default:
		return &expr.And{Preds: keep}
	}
}
