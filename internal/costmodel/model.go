// Package costmodel implements the paper's storage-advisor cost model
// (§3):
//
//	Costs = BaseCosts · QueryAdjustment · DataAdjustment
//
// Base costs are per query type and per store; the adjustments are
// composed from store-specific functions of the query characteristics
// (aggregation functions, grouping, selected columns, selectivity,
// affected rows/columns) and the data characteristics (row count, data
// types, compression rate). Following the paper, the adjustment functions
// are simple — constants, linear functions and piecewise-linear functions
// — and independent of one another, which keeps estimation O(1) per query.
//
// The model is initialized by Calibrate, which runs representative
// micro-benchmarks against the live engine and fits every base cost and
// adjustment function ("based on some representative tests the base costs
// and the adjustment functions are set to reflect the current system's
// hardware settings", §4). DefaultModel ships a deterministic analytic
// profile for tests.
package costmodel

import (
	"encoding/json"
	"fmt"
	"sort"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/value"
)

// LinFn is a linear adjustment function f(x) = A·x + B.
type LinFn struct {
	A, B float64
}

// At evaluates the function.
func (f LinFn) At(x float64) float64 { return f.A*x + f.B }

// Normalized returns the function scaled so that f(x0) = 1.
func (f LinFn) Normalized(x0 float64) LinFn {
	d := f.At(x0)
	if d == 0 {
		return LinFn{A: 0, B: 1}
	}
	return LinFn{A: f.A / d, B: f.B / d}
}

// PiecewiseFn is a piecewise-linear adjustment function defined by sorted
// sample points; evaluation interpolates linearly and clamps at the ends.
type PiecewiseFn struct {
	Xs, Ys []float64
}

// At evaluates the function.
func (f PiecewiseFn) At(x float64) float64 {
	n := len(f.Xs)
	if n == 0 {
		return 1
	}
	if x <= f.Xs[0] {
		return f.Ys[0]
	}
	if x >= f.Xs[n-1] {
		return f.Ys[n-1]
	}
	i := sort.SearchFloat64s(f.Xs, x)
	// f.Xs[i-1] < x <= f.Xs[i]
	x0, x1 := f.Xs[i-1], f.Xs[i]
	y0, y1 := f.Ys[i-1], f.Ys[i]
	if x1 == x0 {
		return y1
	}
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Constant reports whether the function is (numerically) constant.
func (f PiecewiseFn) Constant() bool {
	for _, y := range f.Ys {
		if y != f.Ys[0] {
			return false
		}
	}
	return true
}

// StoreParams holds every base cost and adjustment function for one store.
// All base costs are in nanoseconds at the calibration reference setting
// (RefRows rows, RefCompression compression rate, one aggregate on a
// Double column, no grouping), where every adjustment evaluates to 1.
type StoreParams struct {
	// Aggregation queries. AggQueryBase is the per-query scan cost shared
	// by all aggregates of one query (a calibrated extension of the
	// paper's purely additive formula: engines that compute several
	// aggregates in one pass have a large shared component); AggBase is
	// the marginal cost per aggregate.
	AggQueryBase float64
	AggBase      map[string]float64 // per aggregation function (keyed by name)
	DataTypeC    map[string]float64 // c_dataType, keyed by type name
	GroupByC     float64            // c_groupBy multiplier when grouping present

	RowsF        LinFn       // f_#rows, normalized to 1 at RefRows
	CompressionF PiecewiseFn // f_compression, normalized to 1 at RefCompression

	// Point and range selections.
	SelectBase float64
	SelColsF   LinFn // f_#selectedColumns (constant for the row store)
	SelIdxF    LinFn // f_selectivity when an index is available
	SelScanF   LinFn // f_selectivity without an index (row-store table scan)

	// Inserts.
	InsertBase float64 // per inserted row
	InsRowsF   LinFn   // f_#rows: growth with existing table size

	// Updates.
	UpdateBase float64
	UpdColsF   LinFn // f_#affectedColumns
	UpdRowsF   LinFn // f_#affectedRows
}

// Model is the full two-store cost model plus join base costs for all four
// store combinations.
type Model struct {
	RS, CS StoreParams

	// JoinBase[leftStore][rightStore] is the base cost of a reference join
	// query for that store combination, with left = fact/probe side and
	// right = dimension/build side.
	JoinBase map[string]map[string]float64

	// JoinGroupC[leftStore][rightStore] is the grouping multiplier for
	// join queries (grouping on the dimension side of a join behaves very
	// differently from single-table grouping — dictionary joins resolve
	// build-side groups once per build row).
	JoinGroupC map[string]map[string]float64

	// Calibration reference points.
	RefRows        int
	RefCompression float64
}

// storeKey renders a StoreKind as a JSON-friendly map key.
func storeKey(s catalog.StoreKind) string {
	if s == catalog.RowStore {
		return "ROW"
	}
	return "COLUMN"
}

// params returns the parameter block for a store.
func (m *Model) params(s catalog.StoreKind) *StoreParams {
	if s == catalog.RowStore {
		return &m.RS
	}
	return &m.CS
}

// StoreKey renders a StoreKind as a JSON-friendly map key ("ROW" or
// "COLUMN"); Partitioned placements use the column-store block.
func StoreKey(s catalog.StoreKind) string { return storeKey(s) }

// Params returns the mutable parameter block for a store; the calibrate
// package writes fitted coefficients through it.
func (m *Model) Params(s catalog.StoreKind) *StoreParams { return m.params(s) }

// aggBase returns the base cost for an aggregation function, falling back
// to SUM.
func (p *StoreParams) aggBase(f agg.Func) float64 {
	if c, ok := p.AggBase[f.String()]; ok {
		return c
	}
	return p.AggBase[agg.Sum.String()]
}

// dataTypeC returns c_dataType for a value type (1 when unknown).
func (p *StoreParams) dataTypeC(t value.Type) float64 {
	if c, ok := p.DataTypeC[t.String()]; ok {
		return c
	}
	return 1
}

// MarshalJSON/Unmarshal round-trip the model so offline mode can persist
// the calibrated "system-specific cost model" (paper Figure 4).
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON restores a persisted model.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	if err := json.Unmarshal(data, (*alias)(m)); err != nil {
		return err
	}
	if m.RefRows <= 0 {
		return fmt.Errorf("costmodel: invalid RefRows %d", m.RefRows)
	}
	return nil
}

// DefaultModel returns a deterministic, machine-independent model whose
// parameters reflect the qualitative asymmetries of the two stores: the
// column store aggregates faster (and faster still on well-compressed
// data), the row store inserts, updates and point-selects faster, and
// cross-store joins pay a layout-conversion premium. Absolute values are
// in nanoseconds for a nominal reference of 100k rows.
func DefaultModel() *Model {
	ref := 100_000
	m := &Model{
		RefRows:        ref,
		RefCompression: 0.6,
		RS: StoreParams{
			AggBase: map[string]float64{
				"SUM": 2.0e6, "AVG": 2.1e6, "MIN": 2.0e6, "MAX": 2.0e6, "COUNT": 1.2e6,
			},
			DataTypeC: map[string]float64{
				"DOUBLE": 1, "INTEGER": 0.95, "BIGINT": 1, "VARCHAR": 1.4, "DATE": 1,
			},
			GroupByC:     1.5,
			RowsF:        LinFn{A: 1.0 / float64(ref), B: 0},
			CompressionF: PiecewiseFn{Xs: []float64{0, 1}, Ys: []float64{1, 1}},
			SelectBase:   1.5e6,
			SelColsF:     LinFn{A: 0, B: 1},
			SelIdxF:      LinFn{A: 1.0, B: 0.002},
			SelScanF:     LinFn{A: 0.15, B: 0.85},
			InsertBase:   900,
			InsRowsF:     LinFn{A: 0.1 / float64(ref), B: 0.9},
			UpdateBase:   2.0e4,
			UpdColsF:     LinFn{A: 0.02, B: 0.98},
			UpdRowsF:     LinFn{A: 0.9e-3, B: 0.1},
		},
		CS: StoreParams{
			AggBase: map[string]float64{
				"SUM": 2.5e5, "AVG": 2.6e5, "MIN": 2.5e5, "MAX": 2.5e5, "COUNT": 1.0e5,
			},
			DataTypeC: map[string]float64{
				"DOUBLE": 1, "INTEGER": 0.95, "BIGINT": 1, "VARCHAR": 1.2, "DATE": 1,
			},
			GroupByC:     1.8,
			RowsF:        LinFn{A: 1.0 / float64(ref), B: 0},
			CompressionF: PiecewiseFn{Xs: []float64{0, 0.6, 0.95}, Ys: []float64{1.6, 1.0, 0.55}},
			SelectBase:   2.2e6,
			SelColsF:     LinFn{A: 0.25, B: 0.75},
			SelIdxF:      LinFn{A: 0.6, B: 0.03},
			SelScanF:     LinFn{A: 0.6, B: 0.03},
			InsertBase:   2600,
			InsRowsF:     LinFn{A: 0.5 / float64(ref), B: 0.5},
			UpdateBase:   7.0e4,
			UpdColsF:     LinFn{A: 0.08, B: 0.92},
			UpdRowsF:     LinFn{A: 0.9e-3, B: 0.1},
		},
		// Join base costs are defined at the calibration reference, i.e.
		// divided by f_#rows of both sides; with a 1000-row dimension
		// (RowsF ≈ 0.01) they land at millisecond-scale estimates for a
		// 100k-row probe side.
		JoinBase: map[string]map[string]float64{
			"ROW": {
				"ROW":    6.0e8,
				"COLUMN": 7.0e8,
			},
			"COLUMN": {
				"ROW":    1.2e8,
				"COLUMN": 1.4e8,
			},
		},
		JoinGroupC: map[string]map[string]float64{
			"ROW":    {"ROW": 1.5, "COLUMN": 1.5},
			"COLUMN": {"ROW": 1.1, "COLUMN": 1.1},
		},
	}
	return m
}
