package calibrate

import (
	"encoding/json"
	"testing"

	"hybridstore/internal/costmodel"
)

// Calibration smoke test: run a tiny calibration against the real engine
// and check that the fitted model reproduces the qualitative asymmetries.
func TestCalibrateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timed store asymmetries")
	}
	m, err := Calibrate(Config{RefRows: 8000, Reps: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Compare whole single-aggregate queries (shared scan intercept plus
	// the marginal per-aggregate cost).
	csAgg := m.CS.AggQueryBase + m.CS.AggBase["SUM"]
	rsAgg := m.RS.AggQueryBase + m.RS.AggBase["SUM"]
	if csAgg >= rsAgg {
		t.Errorf("calibrated CS aggregation should be faster: cs=%v rs=%v", csAgg, rsAgg)
	}
	if m.RS.InsertBase >= m.CS.InsertBase {
		t.Errorf("calibrated RS inserts should be faster: rs=%v cs=%v",
			m.RS.InsertBase, m.CS.InsertBase)
	}
	for _, p := range []*costmodel.StoreParams{&m.RS, &m.CS} {
		if p.SelectBase <= 0 || p.UpdateBase <= 0 || p.InsertBase <= 0 {
			t.Errorf("non-positive base costs: %+v", p)
		}
		if p.GroupByC <= 0 {
			t.Errorf("group-by multiplier = %v", p.GroupByC)
		}
	}
	for _, s1 := range []string{"ROW", "COLUMN"} {
		for _, s2 := range []string{"ROW", "COLUMN"} {
			if m.JoinBase[s1][s2] <= 0 {
				t.Errorf("join base %s/%s = %v", s1, s2, m.JoinBase[s1][s2])
			}
		}
	}
	// A calibrated model must serialize (offline-mode persistence).
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("marshal calibrated model: %v", err)
	}
}
