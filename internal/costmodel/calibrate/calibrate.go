package calibrate

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/costmodel"
	"hybridstore/internal/engine"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

// Config tunes the representative tests used to initialize the
// cost model.
type Config struct {
	// RefRows is the reference table size; other sizes are derived from it.
	RefRows int
	// Reps is how many times each probe query runs (the median is used).
	Reps int
	// Seed makes the synthetic calibration data deterministic.
	Seed int64
}

// DefaultConfig returns the standard calibration setting.
func DefaultConfig() Config {
	return Config{RefRows: 40_000, Reps: 3, Seed: 1}
}

// Calibration column layout (see calibSchema).
const (
	calID   = 0  // BIGINT primary key
	calD    = 1  // DOUBLE, moderate distinct count — the reference aggregate
	calI    = 2  // INTEGER
	calB    = 3  // BIGINT
	calV    = 4  // VARCHAR, 100 distinct
	calDT   = 5  // DATE, 365 distinct
	calG    = 6  // INTEGER, 10 distinct — group-by column
	calS10  = 7  // INTEGER, 10 distinct — selectivity 0.1 via equality
	calS100 = 8  // INTEGER, 100 distinct — selectivity 0.01
	calS1K  = 9  // INTEGER, 1000 distinct — selectivity 0.001
	calS10K = 10 // INTEGER, 10000 distinct — selectivity 0.0001
	calJD   = 11 // INTEGER, 1000 distinct — join key into the dimension
	calU    = 12 // DOUBLE — update target, never aggregated
	// Columns 13..29 are representative filler: real enterprise tables are
	// wide (the paper's experiment table has 30 attributes), and the row
	// store's per-tuple cost grows with tuple width, so base costs must be
	// calibrated at a representative width.
	calFiller     = 13
	calNumColumns = 30
)

func calibSchema(name string) *schema.Table {
	cols := []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "d", Type: value.Double},
		{Name: "i", Type: value.Integer},
		{Name: "b", Type: value.Bigint},
		{Name: "v", Type: value.Varchar},
		{Name: "dt", Type: value.Date},
		{Name: "g", Type: value.Integer},
		{Name: "s10", Type: value.Integer},
		{Name: "s100", Type: value.Integer},
		{Name: "s1k", Type: value.Integer},
		{Name: "s10k", Type: value.Integer},
		{Name: "jd", Type: value.Integer},
		{Name: "u", Type: value.Double},
	}
	for c := calFiller; c < calNumColumns; c++ {
		typ := value.Double
		if c%2 == 0 {
			typ = value.Integer
		}
		cols = append(cols, schema.Column{Name: fmt.Sprintf("x%d", c), Type: typ})
	}
	return schema.MustNew(name, cols, "id")
}

// calibRow generates one deterministic row; dDistinct controls the
// distinct count (and thus compression rate) of the d column.
func calibRow(rng *rand.Rand, id int64, dDistinct int) []value.Value {
	row := []value.Value{
		value.NewBigint(id),
		value.NewDouble(float64(rng.Intn(dDistinct))/7 + 0.25),
		value.NewInt(rng.Int63n(1000)),
		value.NewBigint(rng.Int63n(100000)),
		value.NewVarchar(fmt.Sprintf("v%02d", rng.Intn(100))),
		value.NewDate(rng.Int63n(365)),
		value.NewInt(rng.Int63n(10)),
		value.NewInt(rng.Int63n(10)),
		value.NewInt(rng.Int63n(100)),
		value.NewInt(rng.Int63n(1000)),
		value.NewInt(rng.Int63n(10000)),
		value.NewInt(rng.Int63n(1000)),
		value.NewDouble(float64(rng.Intn(100))),
	}
	for c := calFiller; c < calNumColumns; c++ {
		if c%2 == 0 {
			row = append(row, value.NewInt(rng.Int63n(5000)))
		} else {
			row = append(row, value.NewDouble(float64(rng.Intn(5000))/10))
		}
	}
	return row
}

// calibrator bundles the shared state of one calibration run.
type calibrator struct {
	cfg Config
	db  *engine.Database
	rng *rand.Rand
}

// measure runs a query cfg.Reps times and returns the median runtime in
// nanoseconds.
func (c *calibrator) measure(q *query.Query) (float64, error) {
	times := make([]float64, 0, c.cfg.Reps)
	for i := 0; i < c.cfg.Reps; i++ {
		res, err := c.db.Exec(q)
		if err != nil {
			return 0, err
		}
		times = append(times, float64(res.Duration))
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

// loadTable creates and fills a calibration table.
func (c *calibrator) loadTable(name string, store catalog.StoreKind, rows, dDistinct int) error {
	if err := c.db.CreateTable(calibSchema(name), store); err != nil {
		return err
	}
	const batch = 2000
	buf := make([][]value.Value, 0, batch)
	for id := 0; id < rows; id++ {
		buf = append(buf, calibRow(c.rng, int64(id), dDistinct))
		if len(buf) == batch {
			if _, err := c.db.Exec(&query.Query{Kind: query.Insert, Table: name, Rows: buf}); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := c.db.Exec(&query.Query{Kind: query.Insert, Table: name, Rows: buf}); err != nil {
			return err
		}
	}
	// Measure from the merged steady state, as after a bulk load.
	return c.db.Compact(name)
}

// Calibrate initializes a cost model by benchmarking the live engine,
// following the paper's recommendation process ("Initialize cost model",
// Figure 5). It is deterministic given the config seed, up to timing
// noise.
func Calibrate(cfg Config) (*costmodel.Model, error) {
	if cfg.RefRows <= 0 {
		cfg.RefRows = DefaultConfig().RefRows
	}
	if cfg.Reps <= 0 {
		cfg.Reps = DefaultConfig().Reps
	}
	c := &calibrator{cfg: cfg, db: engine.New(), rng: rand.New(rand.NewSource(cfg.Seed))}
	m := &costmodel.Model{
		RefRows:    cfg.RefRows,
		JoinBase:   map[string]map[string]float64{"ROW": {}, "COLUMN": {}},
		JoinGroupC: map[string]map[string]float64{"ROW": {}, "COLUMN": {}},
	}

	// Dimension tables for join calibration (one per store).
	dimSchema := func(name string) *schema.Table {
		return schema.MustNew(name, []schema.Column{
			{Name: "id", Type: value.Integer},
			{Name: "name", Type: value.Varchar},
			{Name: "w", Type: value.Double},
		}, "id")
	}
	for _, d := range []struct {
		name  string
		store catalog.StoreKind
	}{{"dim_rs", catalog.RowStore}, {"dim_cs", catalog.ColumnStore}} {
		if err := c.db.CreateTable(dimSchema(d.name), d.store); err != nil {
			return nil, err
		}
		var rows [][]value.Value
		for i := 0; i < 1000; i++ {
			rows = append(rows, []value.Value{
				value.NewInt(int64(i)),
				value.NewVarchar(fmt.Sprintf("dim%03d", i%50)),
				value.NewDouble(float64(i)),
			})
		}
		if _, err := c.db.Exec(&query.Query{Kind: query.Insert, Table: d.name, Rows: rows}); err != nil {
			return nil, err
		}
	}

	for _, st := range []struct {
		kind   catalog.StoreKind
		prefix string
	}{{catalog.RowStore, "rs"}, {catalog.ColumnStore, "cs"}} {
		params, refCompr, err := c.calibrateStore(st.kind, st.prefix)
		if err != nil {
			return nil, err
		}
		if st.kind == catalog.RowStore {
			m.RS = *params
		} else {
			m.CS = *params
			m.RefCompression = refCompr
		}
	}
	if err := c.calibrateJoins(m); err != nil {
		return nil, err
	}
	return m, nil
}

// calibrateStore fits all costmodel.StoreParams for one store.
func (c *calibrator) calibrateStore(kind catalog.StoreKind, prefix string) (*costmodel.StoreParams, float64, error) {
	ref := c.cfg.RefRows
	// The 2×ref table anchors the f_#rows fit beyond the reference so the
	// linear model captures the out-of-cache growth of larger tables.
	sizes := []int{ref / 4, ref / 2, ref, 2 * ref}
	names := make([]string, len(sizes))
	dDistinct := ref / 4 // moderate compression on the reference column
	for i, n := range sizes {
		names[i] = fmt.Sprintf("%s_n%d", prefix, i)
		if err := c.loadTable(names[i], kind, n, dDistinct); err != nil {
			return nil, 0, err
		}
	}
	refName := names[2] // base costs are defined at ref, not at 2×ref
	if kind == catalog.RowStore {
		// Index the selectivity columns for the indexed-access path.
		for _, col := range []int{calS10, calS100, calS1K, calS10K, calJD} {
			if err := c.db.CreateIndex(refName, col); err != nil {
				return nil, 0, err
			}
		}
	}
	refStats, err := c.db.CollectStats(refName)
	if err != nil {
		return nil, 0, err
	}
	refCompr := refStats.CompressionOf(calD)

	p := &costmodel.StoreParams{
		AggBase:   map[string]float64{},
		DataTypeC: map[string]float64{},
	}

	aggQ := func(table string, f agg.Func, col int, groupBy []int) *query.Query {
		return &query.Query{
			Kind: query.Aggregate, Table: table,
			Aggs:    []agg.Spec{{Func: f, Col: col}},
			GroupBy: groupBy,
		}
	}

	// f_#rows: SUM(d) across sizes.
	var xs, ys []float64
	for i, n := range sizes {
		t, err := c.measure(aggQ(names[i], agg.Sum, calD, nil))
		if err != nil {
			return nil, 0, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, t)
	}
	rowsFit := costmodel.FitLinFn(xs, ys)
	p.RowsF = rowsFit.Normalized(float64(ref))

	// Aggregation base costs at the reference table. The per-query scan
	// intercept is separated from the marginal per-aggregate cost by
	// measuring a one-aggregate and a three-aggregate query.
	t1, err := c.measure(aggQ(refName, agg.Sum, calD, nil))
	if err != nil {
		return nil, 0, err
	}
	t3, err := c.measure(&query.Query{
		Kind: query.Aggregate, Table: refName,
		Aggs: []agg.Spec{{Func: agg.Sum, Col: calD}, {Func: agg.Sum, Col: calD}, {Func: agg.Sum, Col: calD}},
	})
	if err != nil {
		return nil, 0, err
	}
	marginal := (t3 - t1) / 2
	if marginal < 0.05*t1 {
		marginal = 0.05 * t1
	}
	p.AggQueryBase = t1 - marginal
	if p.AggQueryBase < 0 {
		p.AggQueryBase = 0
	}
	p.AggBase[agg.Sum.String()] = marginal
	for _, f := range []agg.Func{agg.Avg, agg.Min, agg.Max} {
		t, err := c.measure(aggQ(refName, f, calD, nil))
		if err != nil {
			return nil, 0, err
		}
		b := t - p.AggQueryBase
		if b < 0.05*t {
			b = 0.05 * t
		}
		p.AggBase[f.String()] = b
	}
	tCount, err := c.measure(&query.Query{
		Kind: query.Aggregate, Table: refName,
		Aggs: []agg.Spec{{Func: agg.Count, Col: -1}},
	})
	if err != nil {
		return nil, 0, err
	}
	bCount := tCount - p.AggQueryBase
	if bCount < 0.02*tCount {
		bCount = 0.02 * tCount
	}
	p.AggBase[agg.Count.String()] = bCount

	// c_dataType: relative marginal cost per aggregated type. Numeric
	// types via SUM; VARCHAR and DATE via MIN (they cannot be summed).
	sumD := p.AggBase[agg.Sum.String()]
	for _, dt := range []struct {
		col int
		typ value.Type
	}{{calD, value.Double}, {calI, value.Integer}, {calB, value.Bigint}} {
		t, err := c.measure(aggQ(refName, agg.Sum, dt.col, nil))
		if err != nil {
			return nil, 0, err
		}
		marg := t - p.AggQueryBase
		if marg < 0.05*t {
			marg = 0.05 * t
		}
		p.DataTypeC[dt.typ.String()] = marg / sumD
	}
	minD, err := c.measure(aggQ(refName, agg.Min, calD, nil))
	if err != nil {
		return nil, 0, err
	}
	for _, dt := range []struct {
		col int
		typ value.Type
	}{{calV, value.Varchar}, {calDT, value.Date}} {
		t, err := c.measure(aggQ(refName, agg.Min, dt.col, nil))
		if err != nil {
			return nil, 0, err
		}
		if minD > 0 {
			p.DataTypeC[dt.typ.String()] = t / minD
		} else {
			p.DataTypeC[dt.typ.String()] = 1
		}
	}

	// c_groupBy: ratio of the grouped to the ungrouped reference query.
	tGrouped, err := c.measure(aggQ(refName, agg.Sum, calD, []int{calG}))
	if err != nil {
		return nil, 0, err
	}
	p.GroupByC = tGrouped / t1

	// f_compression: reference-size tables with varying distinct counts on
	// d. The row store is expected to come out flat; the column store
	// speeds up with compression (per-code aggregation).
	var cxs, cys []float64
	cxs = append(cxs, refCompr)
	cys = append(cys, t1)
	for i, dd := range []int{2, 64, 4096, ref} {
		tn := fmt.Sprintf("%s_c%d", prefix, i)
		if err := c.loadTable(tn, kind, ref, dd); err != nil {
			return nil, 0, err
		}
		st, err := c.db.CollectStats(tn)
		if err != nil {
			return nil, 0, err
		}
		t, err := c.measure(aggQ(tn, agg.Sum, calD, nil))
		if err != nil {
			return nil, 0, err
		}
		cxs = append(cxs, st.CompressionOf(calD))
		cys = append(cys, t)
		if err := c.db.DropTable(tn); err != nil {
			return nil, 0, err
		}
	}
	p.CompressionF = costmodel.NormalizePiecewise(costmodel.FitPiecewise(cxs, cys), refCompr)

	// Selections: equality predicates on columns with controlled distinct
	// counts give controlled selectivities.
	selCols := []struct {
		col int
		sel float64
	}{
		{calS10K, 1.0 / 10000},
		{calS1K, 1.0 / 1000},
		{calS100, 1.0 / 100},
		{calS10, 1.0 / 10},
	}
	selQuery := func(col int, k int) *query.Query {
		cols := make([]int, k)
		for i := range cols {
			cols[i] = []int{calID, calD, calI, calB, calV, calDT, calG, calU}[i]
		}
		return &query.Query{
			Kind: query.Select, Table: refName, Cols: cols,
			Pred: &expr.Comparison{Col: col, Op: expr.Eq, Val: value.NewInt(1)},
		}
	}
	var ixs, iys []float64
	for _, sc := range selCols {
		t, err := c.measure(selQuery(sc.col, 2))
		if err != nil {
			return nil, 0, err
		}
		ixs = append(ixs, sc.sel)
		iys = append(iys, t)
	}
	idxFit := costmodel.FitLinFn(ixs, iys)
	p.SelectBase = idxFit.At(0.01) // reference: selectivity 1%, 2 columns
	if p.SelectBase <= 0 {
		p.SelectBase = iys[len(iys)-1]
	}
	p.SelIdxF = costmodel.LinFn{A: idxFit.A / p.SelectBase, B: idxFit.B / p.SelectBase}

	// Scan path: same predicates on an unindexed same-size table (the
	// second-largest sizing table is unindexed even for the row store).
	scanName := refName
	if kind == catalog.RowStore {
		// Build an unindexed copy at reference size.
		scanName = prefix + "_scan"
		if err := c.loadTable(scanName, kind, ref, dDistinct); err != nil {
			return nil, 0, err
		}
	}
	var sxs, sys []float64
	for _, sc := range selCols {
		q := selQuery(sc.col, 2)
		q.Table = scanName
		t, err := c.measure(q)
		if err != nil {
			return nil, 0, err
		}
		sxs = append(sxs, sc.sel)
		sys = append(sys, t)
	}
	scanFit := costmodel.FitLinFn(sxs, sys)
	p.SelScanF = costmodel.LinFn{A: scanFit.A / p.SelectBase, B: scanFit.B / p.SelectBase}
	if kind == catalog.RowStore {
		if err := c.db.DropTable(scanName); err != nil {
			return nil, 0, err
		}
	}

	// f_#selectedColumns at fixed selectivity 0.01.
	var kxs, kys []float64
	for _, k := range []int{1, 2, 4, 8} {
		t, err := c.measure(selQuery(calS100, k))
		if err != nil {
			return nil, 0, err
		}
		kxs = append(kxs, float64(k))
		kys = append(kys, t)
	}
	p.SelColsF = costmodel.FitLinFn(kxs, kys).Normalized(2)

	// Inserts: amortized per-row cost while growing each sizing table by
	// 15% (enough to cross the column store's delta-merge threshold, so
	// the measurement includes amortized merge cost).
	var inxs, inys []float64
	for i, n := range sizes {
		grow := n * 15 / 100
		if grow < 500 {
			grow = 500
		}
		batchRows := make([][]value.Value, 0, 500)
		start := time.Now()
		inserted := 0
		nextID := int64(10_000_000 * (i + 1))
		for inserted < grow {
			batchRows = batchRows[:0]
			for j := 0; j < 500 && inserted+j < grow; j++ {
				batchRows = append(batchRows, calibRow(c.rng, nextID, dDistinct))
				nextID++
			}
			inserted += len(batchRows)
			if _, err := c.db.Exec(&query.Query{Kind: query.Insert, Table: names[i], Rows: batchRows}); err != nil {
				return nil, 0, err
			}
		}
		perRow := float64(time.Since(start)) / float64(grow)
		inxs = append(inxs, float64(n))
		inys = append(inys, perRow)
	}
	insFit := costmodel.FitLinFn(inxs, inys)
	p.InsertBase = insFit.At(float64(ref))
	if p.InsertBase <= 0 {
		p.InsertBase = inys[len(inys)-1]
	}
	p.InsRowsF = insFit.Normalized(float64(ref))

	// Updates on the dedicated u column. Reference: 1 column, selectivity
	// 0.001 (≈ ref/1000 affected rows).
	updQ := func(setCols []int, selCol int) *query.Query {
		set := map[int]value.Value{}
		for _, sc := range setCols {
			n := int64(c.rng.Intn(1000))
			switch sc {
			case calI:
				set[sc] = value.NewInt(n)
			case calB:
				set[sc] = value.NewBigint(n)
			case calDT:
				set[sc] = value.NewDate(n % 365)
			default:
				set[sc] = value.NewDouble(float64(n))
			}
		}
		return &query.Query{
			Kind: query.Update, Table: refName, Set: set,
			Pred: &expr.Comparison{Col: selCol, Op: expr.Eq, Val: value.NewInt(2)},
		}
	}
	// The measured update time contains the cost of locating the rows
	// (which estimateUpdate models separately via the selection functions)
	// plus the application cost. Back the location share out so that
	// UpdateBase is application-only. The calibration predicates hit
	// indexed columns, so the indexed selectivity function applies.
	loc := func(sel float64) float64 {
		return p.SelectBase * p.SelColsF.At(1) * p.SelIdxF.At(sel)
	}
	refAffected := float64(ref) / 1000
	tUpd, err := c.measure(updQ([]int{calU}, calS1K))
	if err != nil {
		return nil, 0, err
	}
	p.UpdateBase = tUpd - loc(1.0/1000)
	if p.UpdateBase < 0.05*tUpd {
		p.UpdateBase = 0.05 * tUpd
	}

	var uxs, uys []float64
	for _, spec := range []struct {
		cols []int
	}{
		{[]int{calU}},
		{[]int{calU, calI}},
		{[]int{calU, calI, calB, calDT}},
	} {
		t, err := c.measure(updQ(spec.cols, calS1K))
		if err != nil {
			return nil, 0, err
		}
		apply := t - loc(1.0/1000)
		if apply < 0.05*t {
			apply = 0.05 * t
		}
		uxs = append(uxs, float64(len(spec.cols)))
		uys = append(uys, apply/p.UpdateBase)
	}
	p.UpdColsF = costmodel.FitLinFn(uxs, uys).Normalized(1)

	var rxs, rys []float64
	for _, sc := range []struct {
		col int
		sel float64
	}{{calS10K, 1.0 / 10000}, {calS1K, 1.0 / 1000}, {calS100, 1.0 / 100}} {
		t, err := c.measure(updQ([]int{calU}, sc.col))
		if err != nil {
			return nil, 0, err
		}
		apply := t - loc(sc.sel)
		if apply < 0.05*t {
			apply = 0.05 * t
		}
		rxs = append(rxs, sc.sel*float64(ref))
		rys = append(rys, apply/p.UpdateBase)
	}
	p.UpdRowsF = costmodel.FitLinFn(rxs, rys).Normalized(refAffected)

	return p, refCompr, nil
}

// calibrateJoins measures the reference join (SUM over the fact table
// joined with a 1000-row dimension) for all four store combinations and
// backs out the base costs.
func (c *calibrator) calibrateJoins(m *costmodel.Model) error {
	ref := c.cfg.RefRows
	for _, combo := range []struct {
		fact, dim catalog.StoreKind
	}{
		{catalog.RowStore, catalog.RowStore},
		{catalog.RowStore, catalog.ColumnStore},
		{catalog.ColumnStore, catalog.RowStore},
		{catalog.ColumnStore, catalog.ColumnStore},
	} {
		factName := "rs_n2"
		if combo.fact == catalog.ColumnStore {
			factName = "cs_n2"
		}
		dimName := "dim_rs"
		if combo.dim == catalog.ColumnStore {
			dimName = "dim_cs"
		}
		q := &query.Query{
			Kind: query.Aggregate, Table: factName,
			Join: &query.Join{Table: dimName, LeftCol: calJD, RightCol: 0},
			Aggs: []agg.Spec{{Func: agg.Sum, Col: calD}},
		}
		t, err := c.measure(q)
		if err != nil {
			return err
		}
		p1 := m.Params(combo.fact)
		p2 := m.Params(combo.dim)
		denom := p1.RowsF.At(float64(ref)) * p2.RowsF.At(1000)
		denom *= p1.CompressionF.At(m.RefCompression) * p2.CompressionF.At(m.RefCompression)
		if denom <= 0 {
			denom = 1
		}
		m.JoinBase[costmodel.StoreKey(combo.fact)][costmodel.StoreKey(combo.dim)] = t / denom

		// Grouping multiplier: the same join grouped by a dimension
		// attribute (combined index: fact width + dim column 1).
		gq := &query.Query{
			Kind: query.Aggregate, Table: factName,
			Join:    &query.Join{Table: dimName, LeftCol: calJD, RightCol: 0},
			Aggs:    []agg.Spec{{Func: agg.Sum, Col: calD}},
			GroupBy: []int{calNumColumns + 1},
		}
		tg, err := c.measure(gq)
		if err != nil {
			return err
		}
		ratio := 1.0
		if t > 0 {
			ratio = tg / t
		}
		if ratio < 1 {
			ratio = 1
		}
		m.JoinGroupC[costmodel.StoreKey(combo.fact)][costmodel.StoreKey(combo.dim)] = ratio
	}
	return nil
}
