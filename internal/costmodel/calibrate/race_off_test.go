//go:build !race

package calibrate

const raceEnabled = false
