//go:build race

package calibrate

// raceEnabled reports that the race detector instruments this build;
// calibration timing assertions are skipped because instrumentation
// distorts the row/column store cost ratios being asserted.
const raceEnabled = true
