package costmodel

import (
	"encoding/json"
	"math"
	"testing"

	"hybridstore/internal/agg"
	"hybridstore/internal/catalog"
	"hybridstore/internal/expr"
	"hybridstore/internal/query"
	"hybridstore/internal/schema"
	"hybridstore/internal/value"
)

func testSchema() *schema.Table {
	return schema.MustNew("t", []schema.Column{
		{Name: "id", Type: value.Bigint},
		{Name: "grp", Type: value.Integer},
		{Name: "amount", Type: value.Double},
		{Name: "name", Type: value.Varchar},
	}, "id")
}

type fixedStats struct {
	rows     int
	distinct map[int]int
}

func (f *fixedStats) Rows() int            { return f.rows }
func (f *fixedStats) Distinct(col int) int { return f.distinct[col] }
func (f *fixedStats) MinMax(col int) (value.Value, value.Value, bool) {
	return value.NewBigint(0), value.NewBigint(int64(f.rows - 1)), true
}

func infoFor(rows int) InfoSource {
	sch := testSchema()
	ti := TableInfo{
		Schema:      sch,
		Rows:        rows,
		Compression: 0.6,
		Stats:       &fixedStats{rows: rows, distinct: map[int]int{0: rows, 1: 10, 2: rows / 2}},
	}
	dim := schema.MustNew("dim", []schema.Column{
		{Name: "rid", Type: value.Integer},
		{Name: "label", Type: value.Varchar},
	}, "rid")
	di := TableInfo{Schema: dim, Rows: 1000, Compression: 0.6,
		Stats: &fixedStats{rows: 1000, distinct: map[int]int{0: 1000, 1: 50}}}
	return func(table string) (TableInfo, bool) {
		switch table {
		case "t":
			return ti, true
		case "dim":
			return di, true
		default:
			return TableInfo{}, false
		}
	}
}

func placeBoth(s catalog.StoreKind) Placement {
	return Placement{"t": s, "dim": s}
}

func aggQuery(n int) *query.Query {
	aggs := make([]agg.Spec, n)
	for i := range aggs {
		aggs[i] = agg.Spec{Func: agg.Sum, Col: 2}
	}
	return &query.Query{Kind: query.Aggregate, Table: "t", Aggs: aggs}
}

func TestLinFn(t *testing.T) {
	f := LinFn{A: 2, B: 3}
	if f.At(5) != 13 {
		t.Errorf("At = %v", f.At(5))
	}
	n := f.Normalized(5)
	if math.Abs(n.At(5)-1) > 1e-12 {
		t.Errorf("normalized At(x0) = %v", n.At(5))
	}
	z := LinFn{}.Normalized(10)
	if z.At(3) != 1 {
		t.Error("degenerate normalization should be constant 1")
	}
}

func TestPiecewiseFn(t *testing.T) {
	f := PiecewiseFn{Xs: []float64{0, 1, 2}, Ys: []float64{10, 20, 40}}
	cases := map[float64]float64{-1: 10, 0: 10, 0.5: 15, 1: 20, 1.5: 30, 2: 40, 3: 40}
	for x, want := range cases {
		if got := f.At(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
	if (PiecewiseFn{}).At(5) != 1 {
		t.Error("empty piecewise should be 1")
	}
	if !(PiecewiseFn{Xs: []float64{0, 1}, Ys: []float64{2, 2}}).Constant() {
		t.Error("constant detection")
	}
	if (PiecewiseFn{Xs: []float64{0, 1}, Ys: []float64{1, 2}}).Constant() {
		t.Error("non-constant detection")
	}
}

func TestFitLinear(t *testing.T) {
	a, b := FitLinear([]float64{1, 2, 3}, []float64{5, 7, 9})
	if math.Abs(a-2) > 1e-9 || math.Abs(b-3) > 1e-9 {
		t.Errorf("fit = %v, %v", a, b)
	}
	// Constant x degenerates to the mean.
	a, b = FitLinear([]float64{2, 2}, []float64{4, 6})
	if a != 0 || b != 5 {
		t.Errorf("degenerate fit = %v, %v", a, b)
	}
	if a, b := FitLinear(nil, nil); a != 0 || b != 0 {
		t.Error("empty fit")
	}
}

func TestFitLinFnClampsNegativeSlope(t *testing.T) {
	f := FitLinFn([]float64{1, 2, 3}, []float64{10, 9, 8})
	if f.A != 0 {
		t.Errorf("negative slope not clamped: %+v", f)
	}
	if math.Abs(f.B-9) > 1e-9 {
		t.Errorf("clamped mean = %v", f.B)
	}
}

func TestFitPiecewise(t *testing.T) {
	f := FitPiecewise([]float64{2, 0, 2}, []float64{30, 10, 50})
	if len(f.Xs) != 2 || f.Xs[0] != 0 {
		t.Fatalf("piecewise fit = %+v", f)
	}
	if f.Ys[1] != 40 { // duplicates averaged
		t.Errorf("duplicate averaging = %v", f.Ys[1])
	}
	n := NormalizePiecewise(f, 0)
	if n.Ys[0] != 1 {
		t.Errorf("normalization = %+v", n)
	}
}

func TestMeanAbsError(t *testing.T) {
	e := MeanAbsError([]float64{110, 90}, []float64{100, 100})
	if math.Abs(e-0.1) > 1e-9 {
		t.Errorf("MAE = %v", e)
	}
	if MeanAbsError(nil, nil) != 0 {
		t.Error("empty MAE")
	}
	if MeanAbsError([]float64{1}, []float64{0}) != 0 {
		t.Error("zero-actual MAE should be skipped")
	}
}

func TestPlacement(t *testing.T) {
	p := Placement{"t": catalog.ColumnStore}
	if p.StoreOf("T") != catalog.ColumnStore {
		t.Error("case-insensitive placement lookup")
	}
	if p.StoreOf("other") != catalog.RowStore {
		t.Error("default placement should be row store")
	}
	c := p.Clone()
	c["t"] = catalog.RowStore
	if p.StoreOf("t") != catalog.ColumnStore {
		t.Error("clone aliases original")
	}
}

func TestAggregateEstimateOrdering(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	q := aggQuery(1)
	rs := m.EstimateQuery(q, info, placeBoth(catalog.RowStore))
	cs := m.EstimateQuery(q, info, placeBoth(catalog.ColumnStore))
	if cs >= rs {
		t.Errorf("column store should aggregate faster: cs=%v rs=%v", cs, rs)
	}
}

func TestAggregateEstimateScalesWithRows(t *testing.T) {
	m := DefaultModel()
	q := aggQuery(1)
	small := m.EstimateQuery(q, infoFor(50_000), placeBoth(catalog.ColumnStore))
	large := m.EstimateQuery(q, infoFor(200_000), placeBoth(catalog.ColumnStore))
	if large <= small {
		t.Errorf("estimate should grow with rows: %v vs %v", small, large)
	}
	ratio := large / small
	if ratio < 3 || ratio > 5 {
		t.Errorf("linear f_#rows expected ~4x, got %v", ratio)
	}
}

func TestAggregateEstimateAdditiveInAggs(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	place := placeBoth(catalog.ColumnStore)
	one := m.EstimateQuery(aggQuery(1), info, place)
	three := m.EstimateQuery(aggQuery(3), info, place)
	if math.Abs(three-3*one) > 1e-6*one {
		t.Errorf("aggregates should compose additively: 1=%v 3=%v", one, three)
	}
}

func TestGroupByMultiplier(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	place := placeBoth(catalog.ColumnStore)
	q := aggQuery(1)
	plain := m.EstimateQuery(q, info, place)
	qg := aggQuery(1)
	qg.GroupBy = []int{1}
	grouped := m.EstimateQuery(qg, info, place)
	if math.Abs(grouped/plain-m.CS.GroupByC) > 1e-9 {
		t.Errorf("grouping multiplier: %v", grouped/plain)
	}
}

func TestCompressionAffectsOnlyColumnStore(t *testing.T) {
	m := DefaultModel()
	q := aggQuery(1)
	mkInfo := func(compr float64) InfoSource {
		base := infoFor(100_000)
		return func(tb string) (TableInfo, bool) {
			ti, ok := base(tb)
			ti.Compression = compr
			return ti, ok
		}
	}
	csLow := m.EstimateQuery(q, mkInfo(0.1), placeBoth(catalog.ColumnStore))
	csHigh := m.EstimateQuery(q, mkInfo(0.9), placeBoth(catalog.ColumnStore))
	if csHigh >= csLow {
		t.Errorf("better compression should reduce CS cost: %v vs %v", csLow, csHigh)
	}
	rsLow := m.EstimateQuery(q, mkInfo(0.1), placeBoth(catalog.RowStore))
	rsHigh := m.EstimateQuery(q, mkInfo(0.9), placeBoth(catalog.RowStore))
	if rsLow != rsHigh {
		t.Errorf("row store should ignore compression: %v vs %v", rsLow, rsHigh)
	}
}

func TestSelectEstimates(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	point := &query.Query{
		Kind: query.Select, Table: "t", Cols: []int{0, 2},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(5)},
	}
	// PK point query: the row store's indexed path should beat the column
	// store's reconstruction.
	rs := m.EstimateQuery(point, info, placeBoth(catalog.RowStore))
	cs := m.EstimateQuery(point, info, placeBoth(catalog.ColumnStore))
	if rs >= cs {
		t.Errorf("RS point query should be cheaper: rs=%v cs=%v", rs, cs)
	}
	// Unindexed range scan on the row store is flat in selectivity;
	// the estimate must exceed the indexed point query.
	scan := &query.Query{
		Kind: query.Select, Table: "t", Cols: []int{0, 2},
		Pred: &expr.Comparison{Col: 2, Op: expr.Gt, Val: value.NewBigint(10)},
	}
	rsScan := m.EstimateQuery(scan, info, placeBoth(catalog.RowStore))
	if rsScan <= rs {
		t.Errorf("scan should cost more than indexed point: scan=%v point=%v", rsScan, rs)
	}
	// Column-store cost grows with the number of selected columns (tuple
	// reconstruction).
	narrow := &query.Query{Kind: query.Select, Table: "t", Cols: []int{0},
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)}}
	wide := &query.Query{Kind: query.Select, Table: "t", Cols: []int{0, 1, 2, 3},
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)}}
	if m.EstimateQuery(wide, info, placeBoth(catalog.ColumnStore)) <= m.EstimateQuery(narrow, info, placeBoth(catalog.ColumnStore)) {
		t.Error("CS select should grow with selected columns")
	}
	// Row store is flat in selected columns.
	rsNarrow := m.EstimateQuery(narrow, info, placeBoth(catalog.RowStore))
	rsWide := m.EstimateQuery(wide, info, placeBoth(catalog.RowStore))
	if rsNarrow != rsWide {
		t.Errorf("RS select should ignore column count: %v vs %v", rsNarrow, rsWide)
	}
}

func TestSelectLimitCapsSelectivity(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	unlimited := &query.Query{Kind: query.Select, Table: "t",
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)}}
	limited := &query.Query{Kind: query.Select, Table: "t", Limit: 1,
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)}}
	cs := placeBoth(catalog.ColumnStore)
	if m.EstimateQuery(limited, info, cs) >= m.EstimateQuery(unlimited, info, cs) {
		t.Error("limit should reduce the estimate")
	}
}

func TestInsertEstimates(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	ins := &query.Query{Kind: query.Insert, Table: "t",
		Rows: make([][]value.Value, 10)}
	rs := m.EstimateQuery(ins, info, placeBoth(catalog.RowStore))
	cs := m.EstimateQuery(ins, info, placeBoth(catalog.ColumnStore))
	if rs >= cs {
		t.Errorf("RS inserts should be cheaper: rs=%v cs=%v", rs, cs)
	}
	one := &query.Query{Kind: query.Insert, Table: "t", Rows: make([][]value.Value, 1)}
	if r := m.EstimateQuery(ins, info, placeBoth(catalog.RowStore)) / m.EstimateQuery(one, info, placeBoth(catalog.RowStore)); math.Abs(r-10) > 1e-9 {
		t.Errorf("insert cost should scale with row count: %v", r)
	}
}

func TestUpdateDeleteEstimates(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	upd := &query.Query{Kind: query.Update, Table: "t",
		Set:  map[int]value.Value{2: value.NewDouble(1)},
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)}}
	rs := m.EstimateQuery(upd, info, placeBoth(catalog.RowStore))
	cs := m.EstimateQuery(upd, info, placeBoth(catalog.ColumnStore))
	if rs >= cs {
		t.Errorf("RS updates should be cheaper: rs=%v cs=%v", rs, cs)
	}
	del := &query.Query{Kind: query.Delete, Table: "t",
		Pred: &expr.Comparison{Col: 0, Op: expr.Eq, Val: value.NewBigint(1)}}
	if m.EstimateQuery(del, info, placeBoth(catalog.RowStore)) <= 0 {
		t.Error("delete estimate should be positive")
	}
	// Updating more rows costs more.
	broad := &query.Query{Kind: query.Update, Table: "t",
		Set:  map[int]value.Value{2: value.NewDouble(1)},
		Pred: &expr.Comparison{Col: 1, Op: expr.Eq, Val: value.NewInt(1)}} // sel 0.1
	if m.EstimateQuery(broad, info, placeBoth(catalog.RowStore)) <= rs {
		t.Error("broader update should cost more")
	}
}

func TestJoinEstimates(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	jq := &query.Query{
		Kind: query.Aggregate, Table: "t",
		Join: &query.Join{Table: "dim", LeftCol: 1, RightCol: 0},
		Aggs: []agg.Spec{{Func: agg.Sum, Col: 2}},
	}
	costs := map[string]float64{}
	for _, s1 := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
		for _, s2 := range []catalog.StoreKind{catalog.RowStore, catalog.ColumnStore} {
			place := Placement{"t": s1, "dim": s2}
			c := m.EstimateQuery(jq, info, place)
			if c <= 0 {
				t.Fatalf("join estimate %v/%v not positive", s1, s2)
			}
			costs[storeKey(s1)+"/"+storeKey(s2)] = c
		}
	}
	if costs["COLUMN/ROW"] >= costs["ROW/ROW"] {
		t.Errorf("OLAP join should favor CS fact table: %v", costs)
	}
}

func TestEstimateWorkload(t *testing.T) {
	m := DefaultModel()
	info := infoFor(100_000)
	w := &query.Workload{}
	w.Add(aggQuery(1), aggQuery(2))
	place := placeBoth(catalog.ColumnStore)
	total := m.EstimateWorkload(w, info, place)
	sum := m.EstimateQuery(w.Queries[0], info, place) + m.EstimateQuery(w.Queries[1], info, place)
	if math.Abs(total-sum) > 1e-9 {
		t.Errorf("workload estimate should sum queries: %v vs %v", total, sum)
	}
}

func TestUnknownTableEstimatesZero(t *testing.T) {
	m := DefaultModel()
	info := infoFor(1000)
	q := &query.Query{Kind: query.Aggregate, Table: "ghost", Aggs: []agg.Spec{{Func: agg.Sum, Col: 0}}}
	if got := m.EstimateQuery(q, info, Placement{}); got != 0 {
		t.Errorf("unknown table estimate = %v", got)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := DefaultModel()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.RefRows != m.RefRows || back.CS.GroupByC != m.CS.GroupByC {
		t.Error("round trip lost data")
	}
	if back.JoinBase["ROW"]["COLUMN"] != m.JoinBase["ROW"]["COLUMN"] {
		t.Error("join base lost")
	}
	if err := json.Unmarshal([]byte(`{"RefRows":0}`), &back); err == nil {
		t.Error("invalid model accepted")
	}
}
