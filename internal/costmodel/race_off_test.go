//go:build !race

package costmodel

const raceEnabled = false
