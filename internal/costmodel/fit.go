package costmodel

import "sort"

// FitLinear computes the least-squares line y = a·x + b through the
// points. With fewer than two distinct x values it degenerates to a
// constant fit.
func FitLinear(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	if len(xs) == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	return a, b
}

// FitLinFn fits a LinFn through the samples, clamping a slightly negative
// slope (measurement noise on a flat function) to zero.
func FitLinFn(xs, ys []float64) LinFn {
	a, b := FitLinear(xs, ys)
	if a < 0 {
		// Runtimes can only grow with work; a negative slope is noise.
		mean := 0.0
		for _, y := range ys {
			mean += y
		}
		mean /= float64(len(ys))
		return LinFn{A: 0, B: mean}
	}
	return LinFn{A: a, B: b}
}

// FitPiecewise builds a piecewise-linear function from sample points,
// sorting by x and averaging duplicate x values.
func FitPiecewise(xs, ys []float64) PiecewiseFn {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	var out PiecewiseFn
	i := 0
	for i < len(pts) {
		j := i
		sum := 0.0
		for j < len(pts) && pts[j].x == pts[i].x {
			sum += pts[j].y
			j++
		}
		out.Xs = append(out.Xs, pts[i].x)
		out.Ys = append(out.Ys, sum/float64(j-i))
		i = j
	}
	return out
}

// NormalizePiecewise scales the function so that f(x0) = 1.
func NormalizePiecewise(f PiecewiseFn, x0 float64) PiecewiseFn {
	d := f.At(x0)
	if d == 0 {
		return f
	}
	out := PiecewiseFn{Xs: append([]float64{}, f.Xs...), Ys: make([]float64, len(f.Ys))}
	for i, y := range f.Ys {
		out.Ys[i] = y / d
	}
	return out
}

// MeanAbsError computes the mean |pred-actual|/actual over paired samples,
// the estimation-accuracy metric reported in EXPERIMENTS.md for Figure 6.
func MeanAbsError(pred, actual []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		d := (pred[i] - actual[i]) / actual[i]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
