// Package txn implements the MVCC transaction subsystem: a transaction
// manager issuing monotonic begin/commit timestamps, per-primary-key
// version chains layered over the physical stores, snapshot-isolation
// visibility, and first-updater-wins write-write conflict detection.
//
// The package is deliberately storage-agnostic: a Table here is only the
// version overlay of one engine table, keyed by primary key, so it works
// identically over the row store, the column store, and the vertical and
// horizontal partitioned layouts — and survives an online layout
// migration of the underlying storage, since nothing in a chain refers
// to physical row positions.
//
// # Model
//
// Timestamps are a single monotonic counter. A transaction's snapshot is
// the newest commit timestamp at Begin; a version is visible to it when
// the version committed at or before that snapshot (or the transaction
// wrote the version itself). Writers claim a key's chain head before
// commit; a claim fails immediately — first-updater-wins, no waiting —
// when the head is an uncommitted version of another live transaction or
// a version that committed after the claimant's snapshot. Commits stamp
// every claimed version with the next timestamp under the manager's
// commit lock, so the commit order is total and equals the engine's WAL
// order.
//
// The engine folds committed versions into the base storage afterwards;
// a chain may only be dropped (Prune) once its newest version is folded
// AND visible to every live snapshot, because readers older than a
// version must keep resolving the key through the chain instead of the
// (already newer) base row.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hybridstore/internal/value"
)

// ErrConflict is the sentinel wrapped by every serialization failure
// (write-write conflict under snapshot isolation). Callers match it with
// errors.Is; the wire layer maps it to CodeTxnConflict so drivers can
// retry the whole transaction.
var ErrConflict = errors.New("txn: serialization conflict")

// Txn is one transaction. Exported fields are immutable after Begin;
// the write set is guarded by the owning tables' locks plus the
// manager's commit lock.
type Txn struct {
	// BeginTS is the snapshot: versions committed at or before it are
	// visible.
	BeginTS uint64

	mgr *Manager

	// writes lists every chain this transaction holds an uncommitted
	// version on, in claim order. Appended under the claimed table's
	// mutex; read at commit/rollback when no statement of this
	// transaction is in flight.
	writes []claimed

	// buffered holds inserts into PK-less tables. With no primary key
	// there is no chain to claim and no row another transaction could
	// conflict on, so the rows simply wait in the transaction and are
	// appended to base storage atomically at commit. Appended by the
	// transaction's own statements (one statement in flight at a time);
	// read at commit/rollback like writes.
	buffered []BufferedInsert

	// commitTS is set by Commit (0 until then).
	commitTS uint64
}

// BufferedInsert is one PK-less table's batch of rows inserted by a
// still-open transaction, applied to base storage only at commit.
type BufferedInsert struct {
	Table string
	Width int
	Rows  [][]value.Value
}

// BufferInsert queues rows for a PK-less table. Rows for the same table
// accumulate into one batch so the commit record stays one TxnTable per
// table.
func (t *Txn) BufferInsert(table string, width int, rows [][]value.Value) {
	for i := range t.buffered {
		if t.buffered[i].Table == table {
			t.buffered[i].Rows = append(t.buffered[i].Rows, rows...)
			return
		}
	}
	t.buffered = append(t.buffered, BufferedInsert{Table: table, Width: width, Rows: rows})
}

// Buffered calls fn for every PK-less batch the transaction holds.
func (t *Txn) Buffered(fn func(b *BufferedInsert)) {
	for i := range t.buffered {
		fn(&t.buffered[i])
	}
}

// BufferedRows returns the rows buffered for one table (nil when none) —
// the transaction's read-your-writes view of a PK-less table.
func (t *Txn) BufferedRows(table string) [][]value.Value {
	for i := range t.buffered {
		if t.buffered[i].Table == table {
			return t.buffered[i].Rows
		}
	}
	return nil
}

// claimed is one entry of a transaction's write set.
type claimed struct {
	table *Table
	chain *chain
	// fresh marks a claim that created its chain with no base pre-image:
	// the key did not exist anywhere (base storage or overlay) when it
	// was claimed, so folding the commit needs no delete-before-insert.
	fresh bool
}

// CommitTS returns the commit timestamp (0 before Commit).
func (t *Txn) CommitTS() uint64 { return t.commitTS }

// Writes reports how many writes the transaction holds: claimed chains
// plus buffered PK-less batches. Zero means commit is a no-op.
func (t *Txn) Writes() int { return len(t.writes) + len(t.buffered) }

// Pending calls fn for every chain the transaction holds an uncommitted
// version on: the owning overlay table, the chain's primary key and the
// version's row (nil for a tombstone). fresh reports that the key did
// not exist when first claimed (a pure insert — no delete needed when
// folding). The engine assembles the WAL commit record from this before
// Commit stamps the versions. Callers must ensure no statement of the
// transaction is concurrently claiming.
func (t *Txn) Pending(fn func(tb *Table, pk, row []value.Value, fresh bool)) {
	for _, w := range t.writes {
		w.table.mu.Lock()
		var pk, row []value.Value
		ok := len(w.chain.versions) > 0 && w.chain.versions[0].owner == t
		if ok {
			pk, row = w.chain.pk, w.chain.versions[0].row
		}
		w.table.mu.Unlock()
		if ok {
			fn(w.table, pk, row, w.fresh)
		}
	}
}

// Manager issues timestamps and tracks live transactions.
type Manager struct {
	// lastCommitted is the newest commit timestamp; Begin snapshots it.
	// It advances only after the committing transaction's versions are
	// fully stamped, so a snapshot at ts implies every commit <= ts is
	// completely visible.
	lastCommitted atomic.Uint64

	// commitMu serializes commits: timestamp allocation, version
	// stamping and the caller's WAL enqueue happen inside one critical
	// section, so commit-timestamp order equals log order.
	commitMu sync.Mutex

	mu     sync.Mutex
	active map[*Txn]struct{}
}

// NewManager creates an empty transaction manager.
func NewManager() *Manager {
	return &Manager{active: make(map[*Txn]struct{})}
}

// ReadTS returns the snapshot timestamp a statement outside any explicit
// transaction reads at: the newest committed timestamp.
func (m *Manager) ReadTS() uint64 { return m.lastCommitted.Load() }

// Begin starts a transaction with a snapshot of the current committed
// state and registers it as live.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The snapshot is taken under m.mu so MinActiveTS can never race a
	// Begin into reporting a bound above a live snapshot.
	t := &Txn{mgr: m, BeginTS: m.lastCommitted.Load()}
	m.active[t] = struct{}{}
	return t
}

// ActiveCount reports the number of live transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// MinActiveTS returns the oldest live snapshot timestamp — the bound
// below which versions can be garbage-collected. With no live
// transaction it is the newest committed timestamp.
func (m *Manager) MinActiveTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	min := m.lastCommitted.Load()
	for t := range m.active {
		if t.BeginTS < min {
			min = t.BeginTS
		}
	}
	return min
}

// Commit stamps every version the transaction claimed with the next
// commit timestamp and invokes apply inside the commit critical section
// — the engine builds and enqueues the WAL commit record there, so
// timestamp order equals log order. lastCommitted advances only after
// stamping, making the commit atomic for snapshot readers. Returns the
// commit timestamp.
func (m *Manager) Commit(t *Txn, apply func(ts uint64)) uint64 {
	m.commitMu.Lock()
	ts := m.lastCommitted.Load() + 1
	for _, w := range t.writes {
		w.table.stamp(t, w.chain, ts)
	}
	if apply != nil {
		apply(ts)
	}
	m.lastCommitted.Store(ts)
	m.commitMu.Unlock()
	t.commitTS = ts
	m.end(t)
	return ts
}

// Abort releases every uncommitted version the transaction claimed and
// unregisters it.
func (m *Manager) Abort(t *Txn) {
	for _, w := range t.writes {
		w.table.release(t, w.chain)
	}
	t.writes = nil
	t.buffered = nil
	m.end(t)
}

// end unregisters a finished transaction.
func (m *Manager) end(t *Txn) {
	m.mu.Lock()
	delete(m.active, t)
	m.mu.Unlock()
}

// version is one entry of a chain, newest first. A nil Row is a delete
// tombstone. ts==0 with a nil owner marks the base pre-image: the row
// the key had in base storage when the chain was created, visible to
// every snapshot older than the chain's committed versions.
type version struct {
	row   []value.Value
	ts    uint64
	owner *Txn
}

// chain is the version history of one primary key.
type chain struct {
	pk       []value.Value
	versions []version // newest first
}

// Table is the version overlay of one engine table: a chain per written
// primary key. All methods are safe for concurrent use.
type Table struct {
	name   string
	mu     sync.Mutex
	chains map[string]*chain
}

// NewTable creates an empty overlay for the named engine table.
func NewTable(name string) *Table {
	return &Table{name: name, chains: make(map[string]*chain)}
}

// Name returns the engine table this overlay belongs to.
func (tb *Table) Name() string { return tb.name }

// Len reports the number of live chains (written keys not yet pruned).
func (tb *Table) Len() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return len(tb.chains)
}

// VisibleForWrite resolves pk against the overlay for a writing
// statement of t: the transaction's own uncommitted version if it holds
// the chain head, otherwise the newest committed version regardless of
// snapshot — writers validate uniqueness against current reality, not
// their snapshot. Returns the resolved row (nil for a tombstone) and
// whether a chain exists at all; when none does, base storage is
// authoritative for the key.
func (tb *Table) VisibleForWrite(t *Txn, pk []value.Value) (row []value.Value, chained bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	c, ok := tb.chains[value.TupleKey(pk)]
	if !ok {
		return nil, false
	}
	for i := range c.versions {
		v := &c.versions[i]
		if v.owner == t || v.owner == nil {
			return v.row, true
		}
	}
	return nil, true
}

// Claim installs (or rewrites) an uncommitted version of pk owned by t.
// row nil writes a delete tombstone. base is the key's current base-
// storage row — consulted only when the claim creates the chain, where
// it is preserved as the pre-image older snapshots keep reading; pass
// nil when the key has no live base row.
//
// The claim fails with ErrConflict — immediately, first-updater-wins —
// when the chain head is an uncommitted version of another live
// transaction, or a version that committed after t's snapshot.
func (tb *Table) Claim(t *Txn, pk, row, base []value.Value) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	key := value.TupleKey(pk)
	c, ok := tb.chains[key]
	if !ok {
		c = &chain{pk: append([]value.Value(nil), pk...)}
		if base != nil {
			c.versions = append(c.versions, version{row: base})
		}
		c.versions = append([]version{{row: row, owner: t}}, c.versions...)
		tb.chains[key] = c
		t.writes = append(t.writes, claimed{table: tb, chain: c, fresh: base == nil})
		return nil
	}
	head := &c.versions[0]
	switch {
	case head.owner == t:
		// Re-write by the same transaction: replace in place, the claim
		// is already in the write set.
		head.row = row
		return nil
	case head.owner != nil:
		return fmt.Errorf("%w: key %v is write-locked by a concurrent transaction", ErrConflict, pk)
	case head.ts > t.BeginTS:
		return fmt.Errorf("%w: key %v was modified after this transaction began", ErrConflict, pk)
	}
	c.versions = append([]version{{row: row, owner: t}}, c.versions...)
	t.writes = append(t.writes, claimed{table: tb, chain: c})
	return nil
}

// stamp publishes t's uncommitted version on c at commit timestamp ts.
// Called by Manager.Commit under the commit lock.
func (tb *Table) stamp(t *Txn, c *chain, ts uint64) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if len(c.versions) > 0 && c.versions[0].owner == t {
		c.versions[0].owner = nil
		c.versions[0].ts = ts
	}
}

// release drops t's uncommitted version from c (rollback). A chain left
// with nothing but its base pre-image is deleted — base storage is again
// authoritative for the key.
func (tb *Table) release(t *Txn, c *chain) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if len(c.versions) > 0 && c.versions[0].owner == t {
		c.versions = c.versions[1:]
	}
	if len(c.versions) == 0 || (len(c.versions) == 1 && c.versions[0].ts == 0 && c.versions[0].owner == nil) {
		delete(tb.chains, value.TupleKey(c.pk))
	}
}

// Snapshot enumerates every chain with the row visible under snapshot s
// for transaction t (nil outside explicit transactions): the
// transaction's own uncommitted version, else the newest version
// committed at or before s (the ts==0 base pre-image is visible to every
// snapshot). visible=false means the key is absent for this snapshot
// (tombstone, or created entirely after s).
//
// The engine builds one per-statement view from this, so readers never
// block writers: concurrent claims and commits mutate chains under the
// table lock while the statement works off its own materialized view.
func (tb *Table) Snapshot(s uint64, t *Txn, fn func(pk []value.Value, row []value.Value, visible bool)) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for _, c := range tb.chains {
		row, ok := c.visible(s, t)
		fn(c.pk, row, ok && row != nil)
	}
}

// Delta is Snapshot restricted to the chains whose visible version under
// (s, t) differs from the version base storage holds after folds up to
// folded — the only keys a base scan answers incorrectly. Chains whose
// visible version IS the current base authority are skipped, so an
// overlay holding nothing but live uncommitted claims (the steady state
// under OLTP load: claims over unchanged base rows) contributes nothing
// and readers keep the plain base scan path.
func (tb *Table) Delta(s, folded uint64, t *Txn, fn func(pk []value.Value, row []value.Value, visible bool)) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for _, c := range tb.chains {
		visIdx, baseIdx := -1, -1
		for i := range c.versions {
			v := &c.versions[i]
			if v.owner != nil {
				if v.owner == t && visIdx < 0 {
					visIdx = i
				}
				continue
			}
			if visIdx < 0 && v.ts <= s {
				visIdx = i
			}
			if baseIdx < 0 && v.ts <= folded {
				baseIdx = i
			}
			if visIdx >= 0 && baseIdx >= 0 {
				break
			}
		}
		if visIdx == baseIdx {
			continue
		}
		var row []value.Value
		if visIdx >= 0 {
			row = c.versions[visIdx].row
		}
		fn(c.pk, row, row != nil)
	}
}

// NetRows reports how many rows the overlay adds to (positive) or
// removes from (negative) the folded base storage's row count, at
// snapshot s with folds applied up to folded: committed-but-unfolded
// inserts count +1, unfolded deletes -1, updates 0. It makes exact row
// counts possible without forcing a fold.
func (tb *Table) NetRows(s, folded uint64) int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	net := 0
	for _, c := range tb.chains {
		visIdx, baseIdx := -1, -1
		for i := range c.versions {
			v := &c.versions[i]
			if v.owner != nil {
				continue
			}
			if visIdx < 0 && v.ts <= s {
				visIdx = i
			}
			if baseIdx < 0 && v.ts <= folded {
				baseIdx = i
			}
			if visIdx >= 0 && baseIdx >= 0 {
				break
			}
		}
		visPresent := visIdx >= 0 && c.versions[visIdx].row != nil
		basePresent := baseIdx >= 0 && c.versions[baseIdx].row != nil
		if visPresent && !basePresent {
			net++
		} else if !visPresent && basePresent {
			net--
		}
	}
	return net
}

// visible resolves the chain under (s, t); callers hold tb.mu.
func (c *chain) visible(s uint64, t *Txn) ([]value.Value, bool) {
	for i := range c.versions {
		v := &c.versions[i]
		if v.owner != nil {
			if v.owner == t {
				return v.row, true
			}
			continue
		}
		if v.ts <= s {
			return v.row, true
		}
	}
	return nil, false
}

// UncommittedKeys returns the TupleKeys of every chain whose head is an
// uncommitted claim of a live transaction (nil when there are none).
// Bulk ingest consults this before appending to base storage: such keys
// are invisible to the base store's uniqueness check but will surface as
// rows if their owner commits, so a batch must not insert them.
func (tb *Table) UncommittedKeys() map[string]struct{} {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	var keys map[string]struct{}
	for key, c := range tb.chains {
		if len(c.versions) > 0 && c.versions[0].owner != nil {
			if keys == nil {
				keys = make(map[string]struct{})
			}
			keys[key] = struct{}{}
		}
	}
	return keys
}

// Prune drops every chain whose newest committed version is both folded
// into base storage (ts <= folded) and visible to every live snapshot
// (ts <= minActive): base storage then answers the key identically for
// every possible reader, so the chain is dead weight. Chains holding an
// uncommitted claim survive. Returns the number of chains dropped.
func (tb *Table) Prune(folded, minActive uint64) int {
	bound := folded
	if minActive < bound {
		bound = minActive
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	n := 0
	for key, c := range tb.chains {
		if len(c.versions) == 0 {
			delete(tb.chains, key)
			n++
			continue
		}
		head := &c.versions[0]
		if head.owner == nil && head.ts <= bound {
			delete(tb.chains, key)
			n++
		}
	}
	return n
}
